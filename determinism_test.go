// Determinism regression tests for the memoized, arena-reusing fitness
// evaluation engine: with equal seeds, EMTS must produce bit-identical results
// whether or not the cache and per-worker Mapper arenas are in play.
package emts_test

import (
	"reflect"
	"testing"

	"emts/internal/core"
	"emts/internal/dag"
	"emts/internal/daggen"
	"emts/internal/evalpool"
	"emts/internal/model"
	"emts/internal/platform"
)

// determinismGraphs returns the two PTG shapes the regression pins: an FFT
// (regular, wide) and an irregular random graph (the paper's hardest class).
func determinismGraphs(t *testing.T) []*dag.Graph {
	t.Helper()
	fft, err := daggen.FFT(16, daggen.DefaultCosts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := daggen.Random(daggen.RandomConfig{
		N: 60, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 2,
	}, daggen.DefaultCosts(), 5)
	if err != nil {
		t.Fatal(err)
	}
	return []*dag.Graph{fft, rnd}
}

func TestEvaluationEngineDeterminism(t *testing.T) {
	presets := []struct {
		name string
		mk   func(int64) core.Params
	}{
		{"emts5", core.EMTS5},
		{"emts10", core.EMTS10},
	}
	for _, g := range determinismGraphs(t) {
		tab, err := model.NewTable(g, model.Synthetic{}, platform.Grelon())
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range presets {
			for _, useRejection := range []bool{false, true} {
				p := pr.mk(42)
				p.UseRejection = useRejection

				withCache, err := core.Run(g, tab, p)
				if err != nil {
					t.Fatal(err)
				}
				p.DisableCache = true
				plain, err := core.Run(g, tab, p)
				if err != nil {
					t.Fatal(err)
				}

				ctx := g.Name() + "/" + pr.name
				if withCache.Makespan != plain.Makespan {
					t.Errorf("%s rejection=%v: makespan %g with cache, %g without",
						ctx, useRejection, withCache.Makespan, plain.Makespan)
				}
				if !reflect.DeepEqual(withCache.Alloc, plain.Alloc) {
					t.Errorf("%s rejection=%v: best allocations differ", ctx, useRejection)
				}
				if !reflect.DeepEqual(withCache.History, plain.History) {
					t.Errorf("%s rejection=%v: histories differ", ctx, useRejection)
				}
				if withCache.Evaluations != plain.Evaluations {
					t.Errorf("%s rejection=%v: Evaluations %d with cache, %d without — the search budget must not depend on memoization",
						ctx, useRejection, withCache.Evaluations, plain.Evaluations)
				}
				if withCache.Rejections != plain.Rejections {
					t.Errorf("%s rejection=%v: Rejections %d with cache, %d without",
						ctx, useRejection, withCache.Rejections, plain.Rejections)
				}
				if withCache.CacheHits == 0 {
					t.Errorf("%s rejection=%v: expected cache hits (plus-selection re-evaluates parents every generation)",
						ctx, useRejection)
				}
				if plain.CacheHits != 0 {
					t.Errorf("%s rejection=%v: CacheHits = %d with the cache disabled",
						ctx, useRejection, plain.CacheHits)
				}

				// Fast-path axes (DESIGN.md §10): disabling the lower-bound
				// prefilter and/or delta bottom levels must not change any
				// search-visible output relative to the all-layers-on run.
				for _, c := range []struct {
					name           string
					noPre, noDelta bool
				}{
					{"no-prefilter", true, false},
					{"no-delta", false, true},
					{"no-fastpath", true, true},
				} {
					q := pr.mk(42)
					q.UseRejection = useRejection
					q.DisablePrefilter = c.noPre
					q.DisableDelta = c.noDelta
					got, err := core.Run(g, tab, q)
					if err != nil {
						t.Fatal(err)
					}
					if got.Makespan != withCache.Makespan ||
						!reflect.DeepEqual(got.Alloc, withCache.Alloc) ||
						!reflect.DeepEqual(got.History, withCache.History) ||
						got.Evaluations != withCache.Evaluations ||
						got.Rejections != withCache.Rejections ||
						got.CacheHits != withCache.CacheHits {
						t.Errorf("%s rejection=%v %s: diverged from fast-path run (makespan %g vs %g, evals %d vs %d, rejects %d vs %d)",
							ctx, useRejection, c.name, got.Makespan, withCache.Makespan,
							got.Evaluations, withCache.Evaluations, got.Rejections, withCache.Rejections)
					}
					if c.noPre && got.PrefilterRejections != 0 {
						t.Errorf("%s rejection=%v %s: PrefilterRejections = %d with the prefilter disabled",
							ctx, useRejection, c.name, got.PrefilterRejections)
					}
				}
				if useRejection && withCache.PrefilterRejections == 0 {
					t.Errorf("%s: expected prefilter rejections with rejection enabled (rejected fraction is high on these instances)", ctx)
				}
				if !useRejection && withCache.PrefilterRejections != 0 {
					t.Errorf("%s: PrefilterRejections = %d without a rejection bound", ctx, withCache.PrefilterRejections)
				}
			}
		}
	}
}

// TestCrossRequestLayerDeterminism pins the PR 5 axes: the shared Mapper
// pool, the sharded memo cache, and the worker count (the CPU governor's
// lever) must each leave every search-visible output bit-identical.
func TestCrossRequestLayerDeterminism(t *testing.T) {
	pool := evalpool.New(0, 0)
	for _, g := range determinismGraphs(t) {
		tab, err := model.NewTable(g, model.Synthetic{}, platform.Grelon())
		if err != nil {
			t.Fatal(err)
		}
		base := core.EMTS5(42)
		want, err := core.Run(g, tab, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []struct {
			name    string
			pooled  bool
			shards  int
			workers int
		}{
			{"pool", true, 0, 0},
			{"shards1", false, 1, 0},
			{"shards4", false, 4, 4},
			{"workers1", false, 0, 1},
			{"pool+shards64+workers2", true, 64, 2},
		} {
			p := core.EMTS5(42)
			p.CacheShards = c.shards
			p.Workers = c.workers
			if c.pooled {
				p.MapperPool = pool
			}
			got, err := core.Run(g, tab, p)
			if err != nil {
				t.Fatalf("%s/%s: %v", g.Name(), c.name, err)
			}
			if got.Makespan != want.Makespan ||
				!reflect.DeepEqual(got.Alloc, want.Alloc) ||
				!reflect.DeepEqual(got.History, want.History) ||
				got.Evaluations != want.Evaluations ||
				got.CacheHits != want.CacheHits {
				t.Errorf("%s/%s: diverged from baseline (makespan %g vs %g, evals %d vs %d, hits %d vs %d)",
					g.Name(), c.name, got.Makespan, want.Makespan,
					got.Evaluations, want.Evaluations, got.CacheHits, want.CacheHits)
			}
		}
	}
	if hits, misses := pool.Stats(); hits == 0 || misses == 0 {
		t.Errorf("pool Stats = (%d, %d): the pooled runs should both miss (cold) and hit (warm)", hits, misses)
	}
}
