// Determinism regression tests for the memoized, arena-reusing fitness
// evaluation engine: with equal seeds, EMTS must produce bit-identical results
// whether or not the cache and per-worker Mapper arenas are in play.
package emts_test

import (
	"reflect"
	"testing"

	"emts/internal/core"
	"emts/internal/dag"
	"emts/internal/daggen"
	"emts/internal/model"
	"emts/internal/platform"
)

// determinismGraphs returns the two PTG shapes the regression pins: an FFT
// (regular, wide) and an irregular random graph (the paper's hardest class).
func determinismGraphs(t *testing.T) []*dag.Graph {
	t.Helper()
	fft, err := daggen.FFT(16, daggen.DefaultCosts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := daggen.Random(daggen.RandomConfig{
		N: 60, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 2,
	}, daggen.DefaultCosts(), 5)
	if err != nil {
		t.Fatal(err)
	}
	return []*dag.Graph{fft, rnd}
}

func TestEvaluationEngineDeterminism(t *testing.T) {
	presets := []struct {
		name string
		mk   func(int64) core.Params
	}{
		{"emts5", core.EMTS5},
		{"emts10", core.EMTS10},
	}
	for _, g := range determinismGraphs(t) {
		tab, err := model.NewTable(g, model.Synthetic{}, platform.Grelon())
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range presets {
			for _, useRejection := range []bool{false, true} {
				p := pr.mk(42)
				p.UseRejection = useRejection

				withCache, err := core.Run(g, tab, p)
				if err != nil {
					t.Fatal(err)
				}
				p.DisableCache = true
				plain, err := core.Run(g, tab, p)
				if err != nil {
					t.Fatal(err)
				}

				ctx := g.Name() + "/" + pr.name
				if withCache.Makespan != plain.Makespan {
					t.Errorf("%s rejection=%v: makespan %g with cache, %g without",
						ctx, useRejection, withCache.Makespan, plain.Makespan)
				}
				if !reflect.DeepEqual(withCache.Alloc, plain.Alloc) {
					t.Errorf("%s rejection=%v: best allocations differ", ctx, useRejection)
				}
				if !reflect.DeepEqual(withCache.History, plain.History) {
					t.Errorf("%s rejection=%v: histories differ", ctx, useRejection)
				}
				if withCache.Evaluations != plain.Evaluations {
					t.Errorf("%s rejection=%v: Evaluations %d with cache, %d without — the search budget must not depend on memoization",
						ctx, useRejection, withCache.Evaluations, plain.Evaluations)
				}
				if withCache.Rejections != plain.Rejections {
					t.Errorf("%s rejection=%v: Rejections %d with cache, %d without",
						ctx, useRejection, withCache.Rejections, plain.Rejections)
				}
				if withCache.CacheHits == 0 {
					t.Errorf("%s rejection=%v: expected cache hits (plus-selection re-evaluates parents every generation)",
						ctx, useRejection)
				}
				if plain.CacheHits != 0 {
					t.Errorf("%s rejection=%v: CacheHits = %d with the cache disabled",
						ctx, useRejection, plain.CacheHits)
				}
			}
		}
	}
}
