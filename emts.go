// Package emts is a from-scratch Go implementation of EMTS — Evolutionary
// Moldable Task Scheduling — from Hunold & Lepping, "Evolutionary Scheduling
// of Parallel Tasks Graphs onto Homogeneous Clusters" (IEEE CLUSTER 2011),
// together with everything the paper's evaluation depends on: the CPA-family
// baseline heuristics (CPA, HCPA, MCPA, MCPA2), the Δ-critical-path seeding
// heuristic, the list-scheduling mapping step, the execution-time models
// (Amdahl's law and the synthetic non-monotonic Model 2), the PTG generators
// (FFT, Strassen, DAGGEN-style random graphs), a discrete cluster simulator,
// and the experiment harness that regenerates every figure of the paper.
//
// This package is the public facade; the implementation lives in internal/*.
//
// # Quick start
//
//	g, _ := emts.GenerateFFT(8, 42)                   // a 39-task FFT PTG
//	res, _ := emts.Optimize(g, emts.Grelon(), emts.Synthetic(), emts.EMTS5(42))
//	fmt.Printf("makespan: %.2f s\n", res.Makespan)
//	fmt.Print(res.Schedule.ASCII(100))
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package emts

import (
	"context"
	"io"

	"emts/internal/alloc"
	"emts/internal/batch"
	"emts/internal/core"
	"emts/internal/dag"
	"emts/internal/daggen"
	"emts/internal/ea"
	"emts/internal/listsched"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/schedule"
	"emts/internal/search"
	"emts/internal/sim"
)

// Core types, re-exported from the internal packages. See the aliased types
// for full documentation.
type (
	// Graph is an immutable parallel task graph (PTG).
	Graph = dag.Graph
	// GraphBuilder assembles a Graph; obtain one with NewGraph.
	GraphBuilder = dag.Builder
	// Task is one moldable task of a PTG.
	Task = dag.Task
	// TaskID identifies a task within its graph.
	TaskID = dag.TaskID
	// Cluster is a homogeneous cluster: P identical processors of a given
	// speed in GFLOPS.
	Cluster = platform.Cluster
	// Model predicts the execution time of a moldable task on p processors.
	Model = model.Model
	// TimeTable is a fully materialized execution-time table for one graph
	// on one cluster.
	TimeTable = model.Table
	// Allocation maps each task to its processor count — the individual
	// encoding of the evolutionary algorithm.
	Allocation = schedule.Allocation
	// Schedule is a complete mapping of a PTG onto a cluster, with Gantt
	// (ASCII/SVG) rendering and full validation.
	Schedule = schedule.Schedule
	// Allocator is the allocation step of a two-step scheduler.
	Allocator = alloc.Allocator
	// Mutator generates EA offspring; see PaperMutator and UniformMutator.
	Mutator = ea.Mutator
	// Params configures an EMTS run; use EMTS5, EMTS10, or DefaultParams.
	Params = core.Params
	// Result is the outcome of an EMTS run.
	Result = core.Result
	// Report is the outcome of running any algorithm by name via Run.
	Report = sim.Report
	// RandomGraphConfig parametrizes the DAGGEN-style random generator.
	RandomGraphConfig = daggen.RandomConfig
	// CostConfig parametrizes the random task-complexity assignment.
	CostConfig = daggen.CostConfig
	// Profile is a per-processor utilization analysis of a schedule.
	Profile = schedule.Profile
	// GenStats is the per-generation statistics record of the EA; receive
	// them via Params.OnGeneration.
	GenStats = ea.GenStats
	// Strategy selects plus- or comma-selection (Params.Strategy).
	Strategy = ea.Strategy
	// Mapper is the reusable, allocation-free evaluation engine for the
	// mapping step: it owns all per-call scratch state, so repeated
	// Makespan/Map calls against one (graph, table) pair reuse arenas.
	// Not safe for concurrent use — one Mapper per goroutine.
	Mapper = listsched.Mapper
)

// Selection strategies for Params.Strategy.
const (
	// PlusStrategy is the paper's (μ+λ) selection.
	PlusStrategy = ea.Plus
	// CommaStrategy is (μ,λ) selection (future-work comparison).
	CommaStrategy = ea.Comma
)

// Migration topologies for Params.Topology (effective when Params.Islands
// exceeds 1; see the island model in DESIGN.md §17).
const (
	// TopologyRing passes migrants around a directed cycle (the default).
	TopologyRing = ea.TopologyRing
	// TopologyFull sends every island's migrants to every other island.
	TopologyFull = ea.TopologyFull
)

// NewProfile computes the utilization profile of a schedule.
func NewProfile(s *Schedule) *Profile { return schedule.NewProfile(s) }

// Batch-queue scenario types (Section II-A's motivating deployment).
type (
	// BatchJob is one PTG submission with an arrival time.
	BatchJob = batch.Job
	// BatchConfig drives a batch simulation.
	BatchConfig = batch.Config
	// BatchResult aggregates a batch simulation run.
	BatchResult = batch.Result
	// PartitionPolicy decides how many processors a job is granted.
	PartitionPolicy = batch.PartitionPolicy
)

// SimulateBatch runs the paper's motivating scenario: a stream of PTG jobs
// arrives at a space-shared cluster, each is granted a partition by the
// policy, and the configured PTG scheduling algorithm determines its run
// time on that partition.
func SimulateBatch(jobs []BatchJob, cfg BatchConfig) (*BatchResult, error) {
	return batch.Simulate(jobs, cfg)
}

// WholeClusterPolicy grants every job all processors (the paper's setting).
func WholeClusterPolicy() PartitionPolicy { return batch.WholeCluster{} }

// FractionPolicy grants each job the given fraction of the cluster.
func FractionPolicy(frac float64) PartitionPolicy { return batch.FixedFraction{Frac: frac} }

// WidthMatchedPolicy grants each job as many processors as its PTG's maximum
// task parallelism.
func WidthMatchedPolicy() PartitionPolicy { return batch.WidthMatched{} }

// NewGraph returns a builder for a PTG with the given name.
func NewGraph(name string) *GraphBuilder { return dag.NewBuilder(name) }

// ReadGraph decodes a PTG from its JSON file format and validates it.
func ReadGraph(r io.Reader) (*Graph, error) { return dag.Read(r) }

// ReadGraphDOT parses a Graphviz DOT digraph (including the output of
// Suter's DAGGEN tool, the paper's graph generator) into a PTG.
func ReadGraphDOT(r io.Reader) (*Graph, error) { return dag.ReadDOT(r) }

// Chti returns the 20-node, 4.3-GFLOPS Grid'5000 cluster of the paper.
func Chti() Cluster { return platform.Chti() }

// Grelon returns the 120-node, 3.1-GFLOPS Grid'5000 cluster of the paper.
func Grelon() Cluster { return platform.Grelon() }

// NewCluster returns a validated homogeneous cluster.
func NewCluster(name string, procs int, speedGFlops float64) (Cluster, error) {
	return platform.New(name, procs, speedGFlops)
}

// ReadCluster parses a platform file (JSON or one-line text format).
func ReadCluster(r io.Reader) (Cluster, error) { return platform.Read(r) }

// Amdahl returns Model 1 of the paper: T(v,p) = (α + (1-α)/p)·T(v,1).
func Amdahl() Model { return model.Amdahl{} }

// Synthetic returns Model 2 of the paper: Amdahl's law with non-monotonic
// penalties imitating PDGEMM's run-time characteristics.
func Synthetic() Model { return model.Synthetic{} }

// Downey returns the speedup model of Downey with average parallelism a and
// parallelism variance sigma.
func Downey(a, sigma float64) Model { return model.Downey{A: a, Sigma: sigma} }

// Monotonize wraps a model with its lower monotone envelope
// T'(v,p) = min over q <= p of T(v,q) — the related-work technique of
// Günther et al. that lets monotone-assuming heuristics run safely on
// non-monotonic models (a task allocated p processors runs its best q <= p
// configuration).
func Monotonize(m Model) Model { return model.Monotone{Inner: m} }

// ModelFunc adapts a closure into a Model — the hook for user-defined
// (possibly non-monotonic) empirical models; EMTS works with any of them.
func ModelFunc(name string, f func(v Task, p int, c Cluster) float64) Model {
	return model.Func{ModelName: name, F: f}
}

// NewTimeTable evaluates m for every task of g and processor count of c,
// validating that the model produces positive finite times.
func NewTimeTable(g *Graph, m Model, c Cluster) (*TimeTable, error) {
	return model.NewTable(g, m, c)
}

// EMTS5 returns the paper's (5+25)-EA preset, run for 5 generations.
func EMTS5(seed int64) Params { return core.EMTS5(seed) }

// EMTS10 returns the paper's (10+100)-EA preset, run for 10 generations.
func EMTS10(seed int64) Params { return core.EMTS10(seed) }

// DefaultParams is EMTS5, the configuration the paper recommends in practice.
func DefaultParams(seed int64) Params { return core.DefaultParams(seed) }

// Optimize runs EMTS on graph g scheduled onto cluster c under model m.
func Optimize(g *Graph, c Cluster, m Model, p Params) (*Result, error) {
	return OptimizeContext(context.Background(), g, c, m, p)
}

// OptimizeContext is Optimize with cooperative cancellation: the evolutionary
// loop observes ctx once per generation, so an in-flight optimization stops
// within one generation of cancellation. A run that completes is
// bit-identical to the same seed without a context.
func OptimizeContext(ctx context.Context, g *Graph, c Cluster, m Model, p Params) (*Result, error) {
	tab, err := model.NewTable(g, m, c)
	if err != nil {
		return nil, err
	}
	return core.RunContext(ctx, g, tab, p)
}

// OptimizeTable is Optimize for callers that already built the time table.
func OptimizeTable(g *Graph, tab *TimeTable, p Params) (*Result, error) {
	return core.Run(g, tab, p)
}

// Run executes any algorithm by name ("one", "cpa", "hcpa", "mcpa", "mcpa2",
// "delta-cp", "emts5", "emts10") under a named model ("amdahl", "synthetic",
// "synthetic-literal", "downey") and validates the resulting schedule.
func Run(g *Graph, c Cluster, modelName, algorithm string, seed int64) (*Report, error) {
	return sim.Run(g, c, modelName, algorithm, seed)
}

// RunContext is Run with cooperative cancellation (see OptimizeContext).
func RunContext(ctx context.Context, g *Graph, c Cluster, modelName, algorithm string, seed int64) (*Report, error) {
	return sim.RunContext(ctx, g, c, modelName, algorithm, seed)
}

// Typed sentinels distinguishing caller mistakes from internal failures in
// Run, RunContext, and Compare. Servers map them to 4xx responses.
var (
	// ErrUnknownAlgorithm reports an algorithm name outside Algorithms().
	ErrUnknownAlgorithm = sim.ErrUnknownAlgorithm
	// ErrUnknownModel reports a model name outside Models().
	ErrUnknownModel = sim.ErrUnknownModel
	// ErrBadCluster reports an invalid cluster description.
	ErrBadCluster = sim.ErrBadCluster
)

// Compare runs several algorithms on the same instance (sharing one
// execution-time table) and returns the reports sorted by makespan.
func Compare(g *Graph, c Cluster, modelName string, algorithms []string, seed int64) ([]*Report, error) {
	return sim.Compare(g, c, modelName, algorithms, seed)
}

// Algorithms lists the algorithm names accepted by Run and Compare.
func Algorithms() []string { return sim.AlgorithmNames() }

// Models lists the model names accepted by Run and Compare.
func Models() []string { return sim.ModelNames() }

// CPA returns the Critical Path and Area-based allocator.
func CPA() Allocator { return alloc.CPA{} }

// HCPA returns the Heterogeneous CPA allocator (≡ CPA on one homogeneous
// cluster, as used by the paper).
func HCPA() Allocator { return alloc.HCPA{} }

// MCPA returns the Modified CPA allocator with its per-level bound.
func MCPA() Allocator { return alloc.MCPA{} }

// MCPA2 returns the MCPA variant that lets critical tasks reclaim processors
// from non-critical tasks of the same level.
func MCPA2() Allocator { return alloc.MCPA2{} }

// BiCPA returns the bi-criteria allocator of Desprez & Suter (related work):
// theta in [0,1) weighs resource usage against makespan (0 = pure makespan).
func BiCPA(theta float64) Allocator { return alloc.BiCPA{Theta: theta} }

// DeltaCP returns the paper's Δ-critical-path seeding heuristic.
func DeltaCP(delta float64) Allocator { return alloc.DeltaCP{Delta: delta} }

// OneEach returns the one-processor-per-task baseline allocator.
func OneEach() Allocator { return alloc.OneEach{} }

// MapSchedule runs the list-scheduling mapping step for a given allocation,
// producing a validated, fully placed schedule.
func MapSchedule(g *Graph, tab *TimeTable, a Allocation) (*Schedule, error) {
	return listsched.Map(g, tab, a)
}

// MapScheduleInsertion is the insertion-based (gap-filling) variant of the
// mapping step: better packing on fragmented schedules at a higher
// scheduling cost.
func MapScheduleInsertion(g *Graph, tab *TimeTable, a Allocation) (*Schedule, error) {
	return listsched.MapInsertion(g, tab, a)
}

// Makespan maps the allocation and returns only the resulting makespan — the
// EMTS fitness function.
func Makespan(g *Graph, tab *TimeTable, a Allocation) (float64, error) {
	return listsched.Makespan(g, tab, a)
}

// NewMapper returns a reusable evaluation engine for repeated mapping of
// allocations of one graph onto one cluster. After warm-up, Mapper.Makespan
// performs zero heap allocations, which makes it the right primitive for
// custom search loops over allocations (EMTS itself uses one Mapper per
// evaluation worker internally).
func NewMapper(g *Graph, tab *TimeTable) (*Mapper, error) {
	return listsched.NewMapper(g, tab)
}

// DefaultCosts returns the paper's random task-complexity parameters
// (Section IV-C).
func DefaultCosts() CostConfig { return daggen.DefaultCosts() }

// GenerateFFT generates the FFT PTG for the given number of input points
// (2, 4, 8, 16, ... — powers of two) with randomized task complexities.
func GenerateFFT(points int, seed int64) (*Graph, error) {
	return daggen.FFT(points, daggen.DefaultCosts(), seed)
}

// GenerateStrassen generates the 23-task Strassen matrix-multiplication PTG
// with randomized task complexities.
func GenerateStrassen(seed int64) (*Graph, error) {
	return daggen.Strassen(daggen.DefaultCosts(), seed)
}

// GenerateRandom generates a DAGGEN-style random PTG.
func GenerateRandom(cfg RandomGraphConfig, seed int64) (*Graph, error) {
	return daggen.Random(cfg, daggen.DefaultCosts(), seed)
}

// SearchMethod is an alternative meta-heuristic on the EMTS encoding; see
// HillClimber, Annealer, and RandomSearch. The paper lists the comparison of
// search methods as future work (Section VI).
type SearchMethod = search.Method

// HillClimber returns first-improvement stochastic hill climbing.
func HillClimber() SearchMethod { return search.HillClimber{} }

// Annealer returns simulated annealing with geometric cooling.
func Annealer() SearchMethod { return search.Annealer{} }

// RandomSearch returns the uniform random-sampling baseline.
func RandomSearch() SearchMethod { return search.RandomSearch{} }

// OptimizeSearch runs an alternative search method against the same fitness
// function EMTS uses (the list-scheduling makespan), spending at most budget
// fitness evaluations. For a fair comparison, EMTS5 spends 130 evaluations
// and EMTS10 spends 1010.
func OptimizeSearch(g *Graph, tab *TimeTable, m SearchMethod, seeds []Allocation, budget int, seed int64) (Allocation, float64, error) {
	// The search methods evaluate sequentially, so one shared Mapper reuses
	// its scratch arenas across the whole budget.
	mapper, err := listsched.NewMapper(g, tab)
	if err != nil {
		return nil, 0, err
	}
	fitness := func(a schedule.Allocation, rejectAbove float64) (float64, error) {
		return mapper.Makespan(a)
	}
	res, err := m.Optimize(g.NumTasks(), tab.Procs(), seeds, fitness, budget, seed)
	if err != nil {
		return nil, 0, err
	}
	return res.Best.Alloc, res.Best.Fitness, nil
}

// PaperMutator returns the Eq. (1) mutation operator with the paper's
// parameters (shrink probability 0.2, σ₁ = σ₂ = 5).
func PaperMutator() Mutator { return ea.DefaultPaperMutator() }

// UniformMutator returns the uniform-resampling mutation operator used by the
// mutation ablation.
func UniformMutator() Mutator { return ea.UniformMutator{} }
