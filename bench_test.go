// Benchmarks that regenerate every figure and table of the paper's
// evaluation (Section V), plus the ablation studies listed in DESIGN.md and
// micro-benchmarks of the hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Each figure bench executes a scaled-down version of the experiment per
// iteration (the full-scale regeneration is `emts-experiments -scale 1`) and
// reports the headline numbers of the corresponding figure as custom metrics,
// so the paper's qualitative shape is visible straight from the bench output:
// ratios > 1 mean EMTS wins; grelon ratios exceeding chti ratios reproduce
// the paper's platform-size trend.
package emts_test

import (
	"fmt"
	"sync"
	"testing"

	"emts/internal/alloc"
	"emts/internal/core"
	"emts/internal/dag"
	"emts/internal/daggen"
	"emts/internal/ea"
	"emts/internal/exp"
	"emts/internal/listsched"
	"emts/internal/model"
	"emts/internal/onestep"
	"emts/internal/platform"
	"emts/internal/schedule"
	"emts/internal/stats"
)

// benchWorkloads builds the scaled-down paper workloads once.
var benchWorkloads struct {
	once sync.Once
	ws   []exp.Workload
	err  error
}

func workloads(b *testing.B) []exp.Workload {
	b.Helper()
	benchWorkloads.once.Do(func() {
		// ~1/10 of the paper's instance counts: 10 FFT per size, 10
		// Strassen, 1 seed per random combo (12 layered + 36 irregular).
		benchWorkloads.ws, benchWorkloads.err = exp.PaperWorkloads(0.1, 1)
	})
	if benchWorkloads.err != nil {
		b.Fatal(benchWorkloads.err)
	}
	return benchWorkloads.ws
}

// BenchmarkFigure1 regenerates the PDGEMM-like timing curves (Figure 1).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure1(32)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			s := r.Series[0]
			b.ReportMetric(s.Times[4]/s.Times[3], "spike_T5_over_T4")
		}
	}
}

// BenchmarkFigure3 regenerates the mutation-operator density (Figure 3).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure3(100_000, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.MaxAbsError, "max_pmf_error")
		}
	}
}

// relMakespanBench runs the Figure 4/5 experiment and reports the
// irregular-workload ratios (the paper's strongest effect) as metrics.
func relMakespanBench(b *testing.B, modelName, emtsName string) {
	ws := workloads(b)
	cfg := exp.RelMakespanConfig{
		ModelName: modelName,
		EMTS:      emtsName,
		Baselines: []string{"mcpa", "hcpa"},
		Workloads: ws,
		Clusters:  []platform.Cluster{platform.Chti(), platform.Grelon()},
		Seed:      1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.RelativeMakespan(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if c, ok := res.Lookup("irregular n=100", "mcpa", "chti"); ok {
				b.ReportMetric(c.Ratio.Mean, "mcpa_ratio_chti")
			}
			if c, ok := res.Lookup("irregular n=100", "mcpa", "grelon"); ok {
				b.ReportMetric(c.Ratio.Mean, "mcpa_ratio_grelon")
			}
			if c, ok := res.Lookup("irregular n=100", "hcpa", "grelon"); ok {
				b.ReportMetric(c.Ratio.Mean, "hcpa_ratio_grelon")
			}
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: relative makespan of MCPA and HCPA
// vs EMTS5 under the monotone Amdahl model (Model 1).
func BenchmarkFigure4(b *testing.B) { relMakespanBench(b, "amdahl", "emts5") }

// BenchmarkFigure5Top regenerates the upper half of Figure 5: Model 2 with
// EMTS5.
func BenchmarkFigure5Top(b *testing.B) { relMakespanBench(b, "synthetic", "emts5") }

// BenchmarkFigure5Bottom regenerates the lower half of Figure 5: Model 2 with
// EMTS10.
func BenchmarkFigure5Bottom(b *testing.B) { relMakespanBench(b, "synthetic", "emts10") }

// BenchmarkFigure6 regenerates the Gantt comparison of Figure 6.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure6(3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.MCPAMakespan/r.EMTSMakespan, "speedup_vs_mcpa")
			b.ReportMetric(r.EMTSUtilization/r.MCPAUtilization, "utilization_gain")
		}
	}
}

// BenchmarkRuntimeTable regenerates the Section V-B run-time numbers.
func BenchmarkRuntimeTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RuntimeTable(2, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				if row.EMTS == "emts10" && row.Workload == "irregular n=100" && row.Cluster == "grelon" {
					b.ReportMetric(row.Seconds.Mean, "emts10_grelon_large_s")
				}
			}
		}
	}
}

// ablationInstances returns a fixed batch of irregular PTGs with their time
// tables on Grelon under Model 2, the setting where EMTS has the most
// headroom.
func ablationInstances(b *testing.B, n int) []ablationInstance {
	b.Helper()
	w, err := exp.IrregularWorkload(50, 1, 99)
	if err != nil {
		b.Fatal(err)
	}
	if len(w.Graphs) > n {
		w.Graphs = w.Graphs[:n]
	}
	out := make([]ablationInstance, 0, len(w.Graphs))
	for _, g := range w.Graphs {
		tab, err := model.NewTable(g, model.Synthetic{}, platform.Grelon())
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, ablationInstance{g, tab})
	}
	return out
}

type ablationInstance struct {
	g   *dag.Graph
	tab *model.Table
}

// runAblation evaluates a parameter variant over the batch, averaging each
// instance over three EA seeds to damp run-to-run noise, and returns the
// mean makespan.
func runAblation(b *testing.B, insts []ablationInstance, mkParams func(seed int64) core.Params) float64 {
	b.Helper()
	var ms []float64
	for _, in := range insts {
		for seed := int64(0); seed < 3; seed++ {
			res, err := core.Run(in.g, in.tab, mkParams(seed))
			if err != nil {
				b.Fatal(err)
			}
			ms = append(ms, res.Makespan)
		}
	}
	return stats.Mean(ms)
}

// BenchmarkAblationMutation compares the paper's Eq. (1) mutation operator
// against the uniform strawman (DESIGN.md A1). Lower mean makespan wins.
func BenchmarkAblationMutation(b *testing.B) {
	insts := ablationInstances(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mPaper := runAblation(b, insts, core.EMTS5)
		mUniform := runAblation(b, insts, func(seed int64) core.Params {
			p := core.EMTS5(seed)
			p.Mutation = ea.UniformMutator{}
			return p
		})
		mAdaptive := runAblation(b, insts, func(seed int64) core.Params {
			p := core.EMTS5(seed)
			p.SelfAdaptive = true
			return p
		})
		if i == 0 {
			b.ReportMetric(mUniform/mPaper, "uniform_over_eq1")
			b.ReportMetric(mAdaptive/mPaper, "selfadaptive_over_eq1")
		}
	}
}

// BenchmarkAblationSeeding compares heuristic seeding (MCPA/HCPA/Δ-CP)
// against a random-only initial population (DESIGN.md A2).
func BenchmarkAblationSeeding(b *testing.B) {
	insts := ablationInstances(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mSeeded := runAblation(b, insts, core.EMTS5)
		mRandom := runAblation(b, insts, func(seed int64) core.Params {
			p := core.EMTS5(seed)
			p.Seeds = []alloc.Allocator{alloc.Random{Seed: seed}}
			return p
		})
		if i == 0 {
			b.ReportMetric(mRandom/mSeeded, "random_over_seeded")
		}
	}
}

// BenchmarkAblationRejection measures the future-work rejection strategy of
// Section VI: identical results, fewer fully constructed schedules.
func BenchmarkAblationRejection(b *testing.B) {
	insts := ablationInstances(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var evals, rejected int
		for _, in := range insts {
			p := core.EMTS5(1)
			p.UseRejection = true
			res, err := core.Run(in.g, in.tab, p)
			if err != nil {
				b.Fatal(err)
			}
			evals += res.Evaluations
			rejected += res.Rejections
		}
		if i == 0 && evals > 0 {
			b.ReportMetric(float64(rejected)/float64(evals), "rejected_fraction")
		}
	}
}

// BenchmarkAblationCrossover compares mutation-only EMTS against the uniform
// crossover extension (DESIGN.md A4; the paper argues mutation-only suffices).
func BenchmarkAblationCrossover(b *testing.B) {
	insts := ablationInstances(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mPlain := runAblation(b, insts, core.EMTS5)
		mCross := runAblation(b, insts, func(seed int64) core.Params {
			p := core.EMTS5(seed)
			p.CrossoverProb = 0.5
			return p
		})
		if i == 0 {
			b.ReportMetric(mCross/mPlain, "crossover_over_plain")
		}
	}
}

// BenchmarkAblationSearchMethods compares EMTS against hill climbing,
// simulated annealing, random search, and the (μ,λ) comma strategy at an
// equal budget of 130 fitness evaluations (DESIGN.md A5, the paper's
// future-work study).
func BenchmarkAblationSearchMethods(b *testing.B) {
	w, err := exp.IrregularWorkload(50, 1, 99)
	if err != nil {
		b.Fatal(err)
	}
	w.Graphs = w.Graphs[:8]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.CompareSearchMethods(w, platform.Grelon(), "synthetic", 130, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				b.ReportMetric(row.RelativeToEMTS.Mean, row.Method+"_over_emts")
			}
		}
	}
}

// BenchmarkAblationMonotoneEnvelope quantifies how much of EMTS's Model 2
// advantage a monotone-assuming heuristic can recover by running on the
// monotone envelope of the model (Günther et al., DESIGN.md): it reports
// mean makespans of MCPA on raw Model 2, MCPA on the envelope (schedules
// re-costed under the raw model via the envelope's best-q configurations),
// and EMTS5 on raw Model 2.
func BenchmarkAblationMonotoneEnvelope(b *testing.B) {
	insts := ablationInstances(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rawSum, envSum, emtsSum float64
		for _, in := range insts {
			// MCPA on the raw non-monotonic table.
			a, err := (alloc.MCPA{}).Allocate(in.g, in.tab)
			if err != nil {
				b.Fatal(err)
			}
			ms, err := listsched.Makespan(in.g, in.tab, a)
			if err != nil {
				b.Fatal(err)
			}
			rawSum += ms

			// MCPA on the monotone envelope: allocations computed and
			// mapped against envelope times (which are achievable by
			// leaving surplus processors idle).
			envTab, err := model.NewTable(in.g, model.Monotone{Inner: model.Synthetic{}}, platform.Grelon())
			if err != nil {
				b.Fatal(err)
			}
			ae, err := (alloc.MCPA{}).Allocate(in.g, envTab)
			if err != nil {
				b.Fatal(err)
			}
			mse, err := listsched.Makespan(in.g, envTab, ae)
			if err != nil {
				b.Fatal(err)
			}
			envSum += mse

			res, err := core.Run(in.g, in.tab, core.EMTS5(1))
			if err != nil {
				b.Fatal(err)
			}
			emtsSum += res.Makespan
		}
		if i == 0 {
			b.ReportMetric(rawSum/emtsSum, "mcpa_raw_over_emts")
			b.ReportMetric(envSum/emtsSum, "mcpa_envelope_over_emts")
		}
	}
}

// BenchmarkAblationInsertionMapping compares the availability mapper (the
// paper's, used as the EA fitness function) against the insertion-based
// variant: schedule quality vs scheduling cost (Section VI notes the mapping
// step dominates EMTS's run time).
func BenchmarkAblationInsertionMapping(b *testing.B) {
	insts := ablationInstances(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var availSum, insSum float64
		for _, in := range insts {
			a, err := (alloc.MCPA{}).Allocate(in.g, in.tab)
			if err != nil {
				b.Fatal(err)
			}
			ms, err := listsched.Makespan(in.g, in.tab, a)
			if err != nil {
				b.Fatal(err)
			}
			availSum += ms
			ins, err := listsched.MapInsertion(in.g, in.tab, a)
			if err != nil {
				b.Fatal(err)
			}
			insSum += ins.Makespan()
		}
		if i == 0 {
			b.ReportMetric(insSum/availSum, "insertion_over_avail")
		}
	}
}

// BenchmarkInsertionMapping measures one insertion-based mapping of a
// 100-task PTG (compare with BenchmarkMappingFunction).
func BenchmarkInsertionMapping(b *testing.B) {
	g, tab, a := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := listsched.MapInsertion(g, tab, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBiCPAAllocation measures the bi-criteria sweep (related work).
func BenchmarkBiCPAAllocation(b *testing.B) {
	g, tab, _ := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (alloc.BiCPA{}).Allocate(g, tab); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOneStepEFT measures the one-step earliest-finish-time scheduler.
func BenchmarkOneStepEFT(b *testing.B) {
	g, tab, _ := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (onestep.GreedyEFT{}).Schedule(g, tab); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the hot paths ------------------------------------

// benchInstance is a 100-task irregular PTG on Grelon under Model 2.
func benchInstance(b *testing.B) (*dag.Graph, *model.Table, schedule.Allocation) {
	b.Helper()
	g, err := daggen.Random(daggen.RandomConfig{
		N: 100, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 2,
	}, daggen.DefaultCosts(), 7)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := model.NewTable(g, model.Synthetic{}, platform.Grelon())
	if err != nil {
		b.Fatal(err)
	}
	a, err := alloc.MCPA{}.Allocate(g, tab)
	if err != nil {
		b.Fatal(err)
	}
	return g, tab, a
}

// BenchmarkMappingFunction measures one fitness evaluation — the operation
// whose cost dominates EMTS (Section VI).
func BenchmarkMappingFunction(b *testing.B) {
	g, tab, a := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := listsched.Makespan(g, tab, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullMap measures mapping with processor-set recording.
func BenchmarkFullMap(b *testing.B) {
	g, tab, a := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := listsched.Map(g, tab, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPAAllocation measures the CPA allocation procedure
// (O(V(V+E)P), Section III-E).
func BenchmarkCPAAllocation(b *testing.B) {
	g, tab, _ := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (alloc.CPA{}).Allocate(g, tab); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCPAAllocation measures MCPA (CPA plus the level bound).
func BenchmarkMCPAAllocation(b *testing.B) {
	g, tab, _ := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (alloc.MCPA{}).Allocate(g, tab); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimeTableBuild measures building the V x P execution-time table.
func BenchmarkTimeTableBuild(b *testing.B) {
	g, _, _ := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.NewTable(g, model.Synthetic{}, platform.Grelon()); err != nil {
			b.Fatal(err)
		}
	}
}

// emtsInstanceBench measures one complete EMTS optimization of a 100-task
// PTG on Grelon — the unit of the run-time table — and reports the fraction
// of fitness evaluations answered by the memoization cache and the fraction
// cut short by the admissible lower-bound prefilter.
func emtsInstanceBench(b *testing.B, mkParams func(int64) core.Params) {
	g, tab, _ := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(g, tab, mkParams(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && res.Evaluations > 0 {
			b.ReportMetric(float64(res.CacheHits)/float64(res.Evaluations), "cache_hit_rate")
			b.ReportMetric(float64(res.PrefilterRejections)/float64(res.Evaluations), "prefilter_reject_rate")
		}
	}
}

// withRejection enables the Section VI rejection strategy — the setting the
// layered fast path (DESIGN.md §10) targets, and since PR 3 the headline
// configuration of the instance benchmarks.
func withRejection(mk func(int64) core.Params) func(int64) core.Params {
	return func(seed int64) core.Params {
		p := mk(seed)
		p.UseRejection = true
		return p
	}
}

// BenchmarkEMTS5Instance measures one complete EMTS5 optimization of a
// 100-task PTG on Grelon — the unit of the run-time table — with the
// rejection strategy enabled.
func BenchmarkEMTS5Instance(b *testing.B) { emtsInstanceBench(b, withRejection(core.EMTS5)) }

// BenchmarkEMTS10Instance measures one complete EMTS10 optimization.
func BenchmarkEMTS10Instance(b *testing.B) { emtsInstanceBench(b, withRejection(core.EMTS10)) }

// BenchmarkEMTS5InstanceNoRejection is the pre-PR 3 headline workload: no
// rejection bound, so neither the prefilter nor in-loop rejection can fire
// and only memoization and delta bottom levels help.
func BenchmarkEMTS5InstanceNoRejection(b *testing.B) { emtsInstanceBench(b, core.EMTS5) }

// BenchmarkEMTS5InstanceNoFastPath is the A/B control for DESIGN.md §10:
// rejection enabled but the lower-bound prefilter and delta bottom levels
// switched off — the PR 2 evaluation engine on today's workload.
func BenchmarkEMTS5InstanceNoFastPath(b *testing.B) {
	emtsInstanceBench(b, func(seed int64) core.Params {
		p := core.EMTS5(seed)
		p.UseRejection = true
		p.DisablePrefilter = true
		p.DisableDelta = true
		return p
	})
}

// BenchmarkEMTS5InstanceNoBatch is the A/B control for DESIGN.md §13: the
// headline workload with the structure-of-arrays batch path switched off,
// falling back to per-individual scalar dispatch.
func BenchmarkEMTS5InstanceNoBatch(b *testing.B) {
	emtsInstanceBench(b, func(seed int64) core.Params {
		p := core.EMTS5(seed)
		p.UseRejection = true
		p.DisableBatch = true
		return p
	})
}

// BenchmarkEMTS10InstanceNoBatch is the EMTS10 variant of the batch A/B
// control.
func BenchmarkEMTS10InstanceNoBatch(b *testing.B) {
	emtsInstanceBench(b, func(seed int64) core.Params {
		p := core.EMTS10(seed)
		p.UseRejection = true
		p.DisableBatch = true
		return p
	})
}

// perIndividualBench runs a (10+λ)×5 optimization of the 100-task instance
// and reports the average evaluation cost per individual, the number the
// per-individual cost curve of artifacts/BENCH_PR6.json is built from.
// Evaluations counts every individual (cache-answered ones included), so the
// metric is the end-to-end cost of putting one more individual through a
// generation, not just the map-loop time of a cache miss.
func perIndividualBench(b *testing.B, lambda int, disableBatch bool) {
	g, tab, _ := benchInstance(b)
	b.ResetTimer()
	totalEvals := 0
	for i := 0; i < b.N; i++ {
		p := core.EMTS5(1)
		p.Mu = 10
		p.Lambda = lambda
		p.Generations = 5
		p.UseRejection = true
		p.DisableBatch = disableBatch
		res, err := core.Run(g, tab, p)
		if err != nil {
			b.Fatal(err)
		}
		totalEvals += res.Evaluations
	}
	if totalEvals > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalEvals), "ns/individual")
	}
}

// BenchmarkPerIndividual measures the per-individual cost curve at
// λ ∈ {25, 100, 400}, batch vs scalar dispatch (ROADMAP item 5: the batch
// path should flatten the curve as λ grows).
func BenchmarkPerIndividual(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"batch", false}, {"scalar", true}} {
		for _, lambda := range []int{25, 100, 400} {
			b.Run(fmt.Sprintf("%s/lambda%d", mode.name, lambda), func(b *testing.B) {
				perIndividualBench(b, lambda, mode.disable)
			})
		}
	}
}

// BenchmarkEMTS5InstanceNoCache is the A/B control: the same optimization
// with the memoized, arena-reusing evaluation engine (and with it the
// delta-evaluation path) disabled.
func BenchmarkEMTS5InstanceNoCache(b *testing.B) {
	g, tab, _ := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.EMTS5(1)
		p.UseRejection = true
		p.DisableCache = true
		if _, err := core.Run(g, tab, p); err != nil {
			b.Fatal(err)
		}
	}
}

// islandInstanceBench runs the headline 100-task EMTS5 workload as an
// island-model optimization and reports ns/generation — the number the
// islands curve of artifacts/BENCH_PR10.json is built from. A generation of
// an N-island run advances all N populations one step (N×λ offspring), so on
// an M-core host ns/generation should stay roughly flat up to N ≈ M islands
// (the islands hide behind each other), while on a single core it grows
// linearly in N — parity of per-island cost, not wall-clock speedup.
func islandInstanceBench(b *testing.B, islands int, steal bool) {
	g, tab, _ := benchInstance(b)
	b.ResetTimer()
	gens := 0
	for i := 0; i < b.N; i++ {
		p := core.EMTS5(1)
		p.UseRejection = true
		p.Islands = islands
		p.MigrationInterval = 2
		p.DisableWorkStealing = !steal
		res, err := core.Run(g, tab, p)
		if err != nil {
			b.Fatal(err)
		}
		gens += res.Generations
	}
	if gens > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(gens), "ns/generation")
	}
}

// BenchmarkEMTSIslands measures the island-count scaling curve at
// N ∈ {1, 2, 4, 8} with work stealing on, plus the 4-island A/B control with
// stealing disabled (fixed contiguous chunks).
func BenchmarkEMTSIslands(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("islands%d", n), func(b *testing.B) { islandInstanceBench(b, n, true) })
	}
	b.Run("islands4nosteal", func(b *testing.B) { islandInstanceBench(b, 4, false) })
}
