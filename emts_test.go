package emts_test

import (
	"strings"
	"testing"

	"emts"
)

func TestQuickstartFlow(t *testing.T) {
	g, err := emts.GenerateFFT(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := emts.Optimize(g, emts.Grelon(), emts.Synthetic(), emts.EMTS5(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan %g", res.Makespan)
	}
	if out := res.Schedule.ASCII(60); !strings.Contains(out, "makespan") {
		t.Fatal("ASCII Gantt broken")
	}
}

func TestBuildCustomGraphAndRun(t *testing.T) {
	b := emts.NewGraph("workflow")
	prep := b.AddTask(emts.Task{Name: "prepare", Flops: 5e9, Alpha: 0.1})
	simA := b.AddTask(emts.Task{Name: "sim-a", Flops: 40e9, Alpha: 0.05})
	simB := b.AddTask(emts.Task{Name: "sim-b", Flops: 35e9, Alpha: 0.08})
	merge := b.AddTask(emts.Task{Name: "merge", Flops: 3e9, Alpha: 0.2})
	b.AddEdge(prep, simA)
	b.AddEdge(prep, simB)
	b.AddEdge(simA, merge)
	b.AddEdge(simB, merge)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := emts.Run(g, emts.Chti(), "amdahl", "mcpa", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}

func TestCustomModelFlow(t *testing.T) {
	g, err := emts.GenerateStrassen(7)
	if err != nil {
		t.Fatal(err)
	}
	weird := emts.ModelFunc("weird", func(v emts.Task, p int, c emts.Cluster) float64 {
		base := (v.Alpha + (1-v.Alpha)/float64(p)) * c.SequentialTime(v.Flops)
		if p%7 == 3 {
			base *= 2 // arbitrary non-monotonic bump
		}
		return base
	})
	res, err := emts.Optimize(g, emts.Chti(), weird, emts.EMTS5(3))
	if err != nil {
		t.Fatal(err)
	}
	// EMTS must avoid the poisoned processor counts in its final allocation
	// when beneficial; at minimum it returns a valid schedule.
	tab, err := emts.NewTimeTable(g, weird, emts.Chti())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(g, tab); err != nil {
		t.Fatal(err)
	}
}

func TestCompareOrdersAlgorithms(t *testing.T) {
	g, err := emts.GenerateRandom(emts.RandomGraphConfig{
		N: 40, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 2,
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := emts.Compare(g, emts.Grelon(), "synthetic",
		[]string{"one", "cpa", "mcpa", "emts5"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("%d reports", len(reports))
	}
	if reports[0].Algorithm != "emts5" && reports[0].Makespan != reports[1].Makespan {
		t.Fatalf("EMTS5 not best: %+v", reports[0])
	}
}

func TestAllocatorsExposed(t *testing.T) {
	g, err := emts.GenerateFFT(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := emts.NewTimeTable(g, emts.Amdahl(), emts.Chti())
	if err != nil {
		t.Fatal(err)
	}
	for _, al := range []emts.Allocator{
		emts.CPA(), emts.HCPA(), emts.MCPA(), emts.MCPA2(), emts.DeltaCP(0.9), emts.OneEach(),
	} {
		a, err := al.Allocate(g, tab)
		if err != nil {
			t.Fatalf("%s: %v", al.Name(), err)
		}
		s, err := emts.MapSchedule(g, tab, a)
		if err != nil {
			t.Fatalf("%s: %v", al.Name(), err)
		}
		ms, err := emts.Makespan(g, tab, a)
		if err != nil {
			t.Fatal(err)
		}
		if ms != s.Makespan() {
			t.Fatalf("%s: makespan mismatch", al.Name())
		}
	}
}

func TestNamesExposed(t *testing.T) {
	if len(emts.Algorithms()) < 6 || len(emts.Models()) < 3 {
		t.Fatal("name lists truncated")
	}
}

func TestDowneyModelExposed(t *testing.T) {
	g, _ := emts.GenerateStrassen(1)
	res, err := emts.Optimize(g, emts.Chti(), emts.Downey(32, 0.5), emts.EMTS5(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}

func TestMutatorsExposed(t *testing.T) {
	g, _ := emts.GenerateStrassen(2)
	p := emts.EMTS5(1)
	p.Mutation = emts.UniformMutator()
	res, err := emts.Optimize(g, emts.Chti(), emts.Synthetic(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	if emts.PaperMutator().Name() != "paper-eq1" {
		t.Fatal("paper mutator name")
	}
}

func TestSearchMethodsViaFacade(t *testing.T) {
	g, err := emts.GenerateRandom(emts.RandomGraphConfig{
		N: 30, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 1,
	}, 31)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := emts.NewTimeTable(g, emts.Synthetic(), emts.Chti())
	if err != nil {
		t.Fatal(err)
	}
	seed, err := emts.MCPA().Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	seedMS, err := emts.Makespan(g, tab, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []emts.SearchMethod{emts.HillClimber(), emts.Annealer(), emts.RandomSearch()} {
		a, ms, err := emts.OptimizeSearch(g, tab, m, []emts.Allocation{seed}, 130, 1)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if err := a.Validate(g, emts.Chti().Procs); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if ms > seedMS {
			t.Fatalf("%s worse than its seed: %g > %g", m.Name(), ms, seedMS)
		}
	}
}

func TestBiCPAViaFacade(t *testing.T) {
	g, _ := emts.GenerateStrassen(5)
	rep, err := emts.Run(g, emts.Chti(), "synthetic", "bicpa", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}

func TestEFTViaFacade(t *testing.T) {
	g, _ := emts.GenerateStrassen(6)
	rep, err := emts.Run(g, emts.Grelon(), "synthetic", "eft", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}

func TestProfileViaFacade(t *testing.T) {
	g, _ := emts.GenerateFFT(4, 2)
	rep, err := emts.Run(g, emts.Chti(), "amdahl", "mcpa", 1)
	if err != nil {
		t.Fatal(err)
	}
	p := emts.NewProfile(rep.Schedule)
	if p.Utilization <= 0 || p.Utilization > 1 {
		t.Fatalf("utilization %g", p.Utilization)
	}
	if p.MaxConcurrency < 1 || p.MaxConcurrency > emts.Chti().Procs {
		t.Fatalf("peak concurrency %d", p.MaxConcurrency)
	}
}

func TestMonotonizeViaFacade(t *testing.T) {
	g, _ := emts.GenerateStrassen(7)
	env := emts.Monotonize(emts.Synthetic())
	tab, err := emts.NewTimeTable(g, env, emts.Chti())
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Monotone() {
		t.Fatal("Monotonize produced a non-monotone table")
	}
	rep, err := emts.Run(g, emts.Chti(), "synthetic-monotone", "cpa", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}

func TestCommaStrategyViaFacade(t *testing.T) {
	g, _ := emts.GenerateStrassen(8)
	p := emts.EMTS5(1)
	p.Strategy = emts.CommaStrategy
	var gens int
	p.OnGeneration = func(gs emts.GenStats) { gens++ }
	res, err := emts.Optimize(g, emts.Grelon(), emts.Synthetic(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || gens != 5 {
		t.Fatalf("makespan %g, %d generation callbacks", res.Makespan, gens)
	}
}

func TestReadGraphDOTViaFacade(t *testing.T) {
	src := `digraph d { a [size="1e9"] b [size="2e9"] a -> b }`
	g, err := emts.ReadGraphDOT(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 2 {
		t.Fatalf("%d tasks", g.NumTasks())
	}
}
