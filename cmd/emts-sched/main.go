// Command emts-sched schedules a PTG file onto a cluster with any of the
// implemented algorithms and reports the schedule.
//
// Usage:
//
//	emts-sched -ptg graph.json [-platform chti|grelon|file] [-model synthetic]
//	           [-algo emts5] [-seed 1] [-gantt ascii|svg|none] [-out sched.json]
//
// The PTG file format is the JSON structure produced by emts-daggen. The
// platform is either one of the two Grid'5000 presets of the paper or a
// platform file (JSON or "name procs speed_gflops" text).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"emts"
)

func main() {
	var (
		ptgPath      = flag.String("ptg", "", "PTG file (JSON); required")
		platformSpec = flag.String("platform", "chti", "cluster: chti, grelon, or a platform file path")
		modelName    = flag.String("model", "synthetic", "execution-time model: "+strings.Join(emts.Models(), ", "))
		algo         = flag.String("algo", "emts5", "algorithm: "+strings.Join(emts.Algorithms(), ", "))
		seed         = flag.Int64("seed", 1, "random seed (EMTS and random allocators)")
		gantt        = flag.String("gantt", "ascii", "gantt rendering: ascii, svg, none")
		width        = flag.Int("width", 100, "ASCII gantt width in columns")
		outPath      = flag.String("out", "", "write the schedule as JSON to this file")
		profile      = flag.Bool("profile", false, "print the per-processor utilization profile")
		csvPath      = flag.String("csv", "", "write the schedule entries as CSV to this file")
		tracePath    = flag.String("trace", "", "write EA generation statistics as CSV (EMTS algorithms only)")
	)
	flag.Parse()
	opts := outputs{gantt: *gantt, width: *width, out: *outPath, profile: *profile, csv: *csvPath, trace: *tracePath}
	if err := run(*ptgPath, *platformSpec, *modelName, *algo, *seed, opts); err != nil {
		fmt.Fprintln(os.Stderr, "emts-sched:", err)
		os.Exit(1)
	}
}

// outputs bundles the presentation flags.
type outputs struct {
	gantt   string
	width   int
	out     string
	profile bool
	csv     string
	trace   string
}

func run(ptgPath, platformSpec, modelName, algo string, seed int64, o outputs) error {
	if ptgPath == "" {
		return fmt.Errorf("missing -ptg (see -h)")
	}
	f, err := os.Open(ptgPath)
	if err != nil {
		return err
	}
	var g *emts.Graph
	if strings.HasSuffix(strings.ToLower(ptgPath), ".dot") {
		g, err = emts.ReadGraphDOT(f)
	} else {
		g, err = emts.ReadGraph(f)
	}
	f.Close()
	if err != nil {
		return err
	}
	cluster, err := resolveCluster(platformSpec)
	if err != nil {
		return err
	}

	var trace *os.File
	if o.trace != "" {
		if algo != "emts5" && algo != "emts10" {
			return fmt.Errorf("-trace requires -algo emts5 or emts10 (got %q)", algo)
		}
		trace, err = os.Create(o.trace)
		if err != nil {
			return err
		}
		defer trace.Close()
		fmt.Fprintln(trace, "generation,best,mean,worst,best_ever,rejected")
	}

	var rep *emts.Report
	if trace != nil {
		rep, err = runTraced(g, cluster, modelName, algo, seed, trace)
	} else {
		rep, err = emts.Run(g, cluster, modelName, algo, seed)
	}
	if err != nil {
		return err
	}

	fmt.Printf("graph:       %s (%d tasks, %d edges)\n", g.Name(), g.NumTasks(), g.NumEdges())
	fmt.Printf("cluster:     %s\n", cluster)
	fmt.Printf("model:       %s\n", rep.Model)
	fmt.Printf("algorithm:   %s\n", rep.Algorithm)
	fmt.Printf("makespan:    %.4f s\n", rep.Makespan)
	fmt.Printf("utilization: %.1f%%\n", 100*rep.Utilization())
	fmt.Printf("elapsed:     %s\n", rep.Elapsed)
	if rep.EMTS != nil {
		fmt.Printf("evaluations: %d (%d rejected)\n", rep.EMTS.Evaluations, rep.EMTS.Rejections)
		fmt.Printf("seeds:\n")
		for _, s := range rep.EMTS.Seeds {
			if s.Err != nil {
				fmt.Printf("  %-10s failed: %v\n", s.Name, s.Err)
				continue
			}
			fmt.Printf("  %-10s makespan %.4f s\n", s.Name, s.Makespan)
		}
	}

	if o.profile {
		fmt.Println()
		fmt.Print(emts.NewProfile(rep.Schedule).Format())
	}

	switch o.gantt {
	case "ascii":
		fmt.Println()
		fmt.Print(rep.Schedule.ASCII(o.width))
	case "svg":
		fmt.Print(rep.Schedule.SVG(1000, 600))
	case "none":
	default:
		return fmt.Errorf("unknown -gantt %q (ascii, svg, none)", o.gantt)
	}

	if o.out != "" {
		out, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := rep.Schedule.Write(out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "schedule written to %s\n", o.out)
	}
	if o.csv != "" {
		if err := os.WriteFile(o.csv, []byte(rep.Schedule.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "CSV written to %s\n", o.csv)
	}
	return nil
}

// runTraced runs an EMTS preset with a per-generation CSV trace, returning a
// report shaped like emts.Run's.
func runTraced(g *emts.Graph, cluster emts.Cluster, modelName, algo string, seed int64, trace *os.File) (*emts.Report, error) {
	m, err := modelByName(modelName)
	if err != nil {
		return nil, err
	}
	params := emts.EMTS5(seed)
	if algo == "emts10" {
		params = emts.EMTS10(seed)
	}
	params.OnGeneration = func(gs emts.GenStats) {
		fmt.Fprintf(trace, "%d,%g,%g,%g,%g,%d\n",
			gs.Generation, gs.Best, gs.Mean, gs.Worst, gs.BestEver, gs.Rejected)
	}
	res, err := emts.Optimize(g, cluster, m, params)
	if err != nil {
		return nil, err
	}
	return &emts.Report{
		Algorithm: algo,
		Model:     m.Name(),
		Graph:     g.Name(),
		Cluster:   cluster,
		Schedule:  res.Schedule,
		Makespan:  res.Makespan,
		EMTS:      res,
	}, nil
}

// modelByName resolves the models emts-sched supports for traced runs.
func modelByName(name string) (emts.Model, error) {
	switch strings.ToLower(name) {
	case "amdahl", "model1":
		return emts.Amdahl(), nil
	case "synthetic", "model2":
		return emts.Synthetic(), nil
	default:
		return nil, fmt.Errorf("model %q not supported with -trace (amdahl, synthetic)", name)
	}
}

func resolveCluster(spec string) (emts.Cluster, error) {
	switch strings.ToLower(spec) {
	case "chti":
		return emts.Chti(), nil
	case "grelon":
		return emts.Grelon(), nil
	}
	f, err := os.Open(spec)
	if err != nil {
		return emts.Cluster{}, fmt.Errorf("platform %q is neither a preset nor a readable file: %w", spec, err)
	}
	defer f.Close()
	return emts.ReadCluster(f)
}
