package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emts"
	"emts/internal/schedule"
)

// writePTG writes a small FFT PTG to a temp file and returns its path.
func writePTG(t *testing.T) string {
	t.Helper()
	g, err := emts.GenerateFFT(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScheduleWithEMTSAndExport(t *testing.T) {
	ptg := writePTG(t)
	out := filepath.Join(t.TempDir(), "sched.json")
	if err := run(ptg, "grelon", "synthetic", "emts5", 1, outputs{gantt: "none", width: 80, out: out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := schedule.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() <= 0 || len(s.Entries) != 15 {
		t.Fatalf("schedule: makespan %g, %d entries", s.Makespan(), len(s.Entries))
	}
}

func TestScheduleASCIIAndSVGModes(t *testing.T) {
	ptg := writePTG(t)
	for _, mode := range []string{"ascii", "svg"} {
		if err := run(ptg, "chti", "amdahl", "mcpa", 1, outputs{gantt: mode, width: 60}); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
	}
}

func TestPlatformFile(t *testing.T) {
	ptg := writePTG(t)
	plat := filepath.Join(t.TempDir(), "cluster.txt")
	if err := os.WriteFile(plat, []byte("# test\nmini 8 2.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(ptg, plat, "amdahl", "cpa", 1, outputs{gantt: "none", width: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	ptg := writePTG(t)
	if err := run("", "chti", "amdahl", "cpa", 1, outputs{gantt: "none", width: 60}); err == nil {
		t.Fatal("missing -ptg accepted")
	}
	if err := run("/does/not/exist.json", "chti", "amdahl", "cpa", 1, outputs{gantt: "none", width: 60}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run(ptg, "atlantis", "amdahl", "cpa", 1, outputs{gantt: "none", width: 60}); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if err := run(ptg, "chti", "amdahl", "cpa", 1, outputs{gantt: "holographic", width: 60}); err == nil {
		t.Fatal("unknown gantt mode accepted")
	}
	if err := run(ptg, "chti", "amdahl", "warp", 1, outputs{gantt: "none", width: 60}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestScheduleFromDOTFile(t *testing.T) {
	src := `digraph w {
  a [size="4e9", alpha="0.1"]
  b [size="2e9", alpha="0.1"]
  a -> b
}`
	path := filepath.Join(t.TempDir(), "g.dot")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "chti", "amdahl", "mcpa", 1, outputs{gantt: "none", width: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileCSVAndTrace(t *testing.T) {
	ptg := writePTG(t)
	dir := t.TempDir()
	csv := filepath.Join(dir, "sched.csv")
	trace := filepath.Join(dir, "trace.csv")
	o := outputs{gantt: "none", width: 60, profile: true, csv: csv, trace: trace}
	if err := run(ptg, "chti", "synthetic", "emts5", 1, o); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{csv, trace} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("%s empty", path)
		}
	}
	// Trace has header + 5 generations.
	data, _ := os.ReadFile(trace)
	if got := strings.Count(string(data), "\n"); got != 6 {
		t.Fatalf("trace has %d lines, want 6", got)
	}
}

func TestTraceRequiresEMTS(t *testing.T) {
	ptg := writePTG(t)
	o := outputs{gantt: "none", width: 60, trace: filepath.Join(t.TempDir(), "t.csv")}
	if err := run(ptg, "chti", "amdahl", "mcpa", 1, o); err == nil {
		t.Fatal("trace with non-EMTS algorithm accepted")
	}
}
