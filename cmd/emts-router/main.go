// Command emts-router is the horizontal scale-out tier of the scheduling
// service: a stateless reverse proxy that rendezvous-hashes each
// /v1/schedule request's graph digest onto a set of emts-serve backends, so
// every backend's content-addressed caches (graph/table interns, response
// cache) stay hot for their own slice of the key space instead of holding N
// duplicated copies of the whole working set (DESIGN.md §15).
//
// Usage:
//
//	emts-router -backends 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
//	            [-addr :8080] [-health-interval 500ms] [-health-timeout 2s]
//	            [-eject-after 3] [-readmit-after 2] [-upstream-timeout 2m]
//	            [-idle-conns 32] [-max-bytes 8388608] [-drain 1m]
//
// Backends may be given as host:port or full http:// URLs; the spelling on
// the command line is the backend's routing identity, so keep it stable
// across restarts (a renamed backend gets a reshuffled key range).
//
// Endpoints:
//
//	POST /v1/schedule  routed by graph digest (retry-once on connection refused)
//	POST /v1/jobs      async submit, routed by the same graph digest
//	     /v1/jobs/...  polls, results, SSE event streams (unbuffered
//	                   pass-through), and cancels, routed by the graph digest
//	                   embedded in the job id — the backend that ran the
//	                   submit owns every later request for that job
//	GET  /healthz      router liveness
//	GET  /readyz       routability (503 while draining or no healthy backends)
//	GET  /metrics      per-backend counters, latency histograms, ejections,
//	                   rebalances, affinity hit counters
//	(anything else)    forwarded round-robin to a healthy backend
//
// SIGINT/SIGTERM drain gracefully: readiness flips to 503, in-flight proxied
// requests finish, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"emts/internal/route"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		backends       = flag.String("backends", "", "comma-separated backend addresses (host:port or URL); required")
		healthInterval = flag.Duration("health-interval", 500*time.Millisecond, "interval between /readyz probe rounds")
		healthTimeout  = flag.Duration("health-timeout", 2*time.Second, "per-probe timeout")
		ejectAfter     = flag.Int("eject-after", 3, "consecutive probe failures that eject a backend")
		readmitAfter   = flag.Int("readmit-after", 2, "consecutive probe successes that re-admit a backend")
		upstreamTO     = flag.Duration("upstream-timeout", 2*time.Minute, "per-request upstream timeout")
		idleConns      = flag.Int("idle-conns", 32, "idle connections kept per backend")
		maxBytes       = flag.Int64("max-bytes", 8<<20, "largest accepted request body")
		drainWait      = flag.Duration("drain", time.Minute, "shutdown drain budget")
	)
	flag.Parse()
	if err := serve(*addr, *backends, route.HealthConfig{
		Interval:     *healthInterval,
		Timeout:      *healthTimeout,
		EjectAfter:   *ejectAfter,
		ReadmitAfter: *readmitAfter,
	}, *upstreamTO, *idleConns, *maxBytes, *drainWait); err != nil {
		fmt.Fprintln(os.Stderr, "emts-router:", err)
		os.Exit(1)
	}
}

// parseBackends maps the -backends flag to route.Backend values. The given
// spelling is the ID; the URL gains an http:// scheme when missing.
func parseBackends(spec string) ([]route.Backend, error) {
	var out []route.Backend
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		url := f
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		out = append(out, route.Backend{ID: f, URL: strings.TrimSuffix(url, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no backends in -backends")
	}
	return out, nil
}

func serve(addr, backendSpec string, health route.HealthConfig, upstreamTO time.Duration, idleConns int, maxBytes int64, drainWait time.Duration) error {
	backends, err := parseBackends(backendSpec)
	if err != nil {
		return err
	}
	router, err := route.New(route.Config{
		Backends:            backends,
		Health:              health,
		UpstreamTimeout:     upstreamTO,
		MaxRequestBytes:     maxBytes,
		MaxIdleConnsPerHost: idleConns,
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           router.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "emts-router: listening on %s, %d backends\n", addr, len(backends))
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err // listener failed before any signal
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "emts-router: %s, draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	// Drain order mirrors emts-serve: routing tier first (readyz flips, the
	// in-flight proxied requests complete), then the listener.
	if err := router.Shutdown(ctx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "emts-router: drained, bye")
	return nil
}
