package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: emts
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEMTS5Instance  	     195	   6073383 ns/op	         0.007692 cache_hit_rate	         0.9154 prefilter_reject_rate	  368208 B/op	     947 allocs/op
BenchmarkEMTS5InstanceNoCache     	     142	   7215356 ns/op	 1870436 B/op	    2079 allocs/op
PASS
ok  	emts	12.637s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Pkg != "emts" {
		t.Errorf("header = %q/%q/%q", rep.GoOS, rep.GoArch, rep.Pkg)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkEMTS5Instance" || b.Iterations != 195 {
		t.Errorf("first = %q/%d", b.Name, b.Iterations)
	}
	if b.NsPerOp != 6073383 || b.BytesPerOp != 368208 || b.AllocsPerOp != 947 {
		t.Errorf("first numbers = %v %v %v", b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}
	if b.Metrics["cache_hit_rate"] != 0.007692 || b.Metrics["prefilter_reject_rate"] != 0.9154 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	if m := rep.Benchmarks[1].Metrics; m != nil {
		t.Errorf("second benchmark should have no custom metrics, got %v", m)
	}
}

func TestParseBenchRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"PASS\nok\temts\t1s\n", // no benchmark lines at all
		"BenchmarkX 12 34\n",   // odd field count: value without unit
		"BenchmarkX notanint 34 ns/op\n",
		"BenchmarkX 12 nan/op ns/op extra B/op\n",
	} {
		if _, err := parseBench(strings.NewReader(in)); err == nil {
			t.Errorf("parseBench(%q) succeeded, want error", in)
		}
	}
}

func TestParseBenchKeepsProcSuffix(t *testing.T) {
	rep, err := parseBench(strings.NewReader("BenchmarkEMTS5Instance-8 100 5000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmarks[0].Name != "BenchmarkEMTS5Instance-8" {
		t.Errorf("name = %q", rep.Benchmarks[0].Name)
	}
}
