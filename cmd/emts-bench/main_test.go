package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: emts
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEMTS5Instance  	     195	   6073383 ns/op	         0.007692 cache_hit_rate	         0.9154 prefilter_reject_rate	  368208 B/op	     947 allocs/op
BenchmarkEMTS5InstanceNoCache     	     142	   7215356 ns/op	 1870436 B/op	    2079 allocs/op
PASS
ok  	emts	12.637s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Pkg != "emts" {
		t.Errorf("header = %q/%q/%q", rep.GoOS, rep.GoArch, rep.Pkg)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkEMTS5Instance" || b.Iterations != 195 {
		t.Errorf("first = %q/%d", b.Name, b.Iterations)
	}
	if b.NsPerOp != 6073383 || b.BytesPerOp != 368208 || b.AllocsPerOp != 947 {
		t.Errorf("first numbers = %v %v %v", b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}
	if b.Metrics["cache_hit_rate"] != 0.007692 || b.Metrics["prefilter_reject_rate"] != 0.9154 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	if m := rep.Benchmarks[1].Metrics; m != nil {
		t.Errorf("second benchmark should have no custom metrics, got %v", m)
	}
}

func TestParseBenchRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"PASS\nok\temts\t1s\n", // no benchmark lines at all
		"BenchmarkX 12 34\n",   // odd field count: value without unit
		"BenchmarkX notanint 34 ns/op\n",
		"BenchmarkX 12 nan/op ns/op extra B/op\n",
	} {
		if _, err := parseBench(strings.NewReader(in)); err == nil {
			t.Errorf("parseBench(%q) succeeded, want error", in)
		}
	}
}

func TestParseBenchKeepsProcSuffix(t *testing.T) {
	rep, err := parseBench(strings.NewReader("BenchmarkEMTS5Instance-8 100 5000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmarks[0].Name != "BenchmarkEMTS5Instance-8" {
		t.Errorf("name = %q", rep.Benchmarks[0].Name)
	}
}

func TestBuildIslandCurve(t *testing.T) {
	benchmarks := []Benchmark{
		{Name: "BenchmarkEMTSIslands/islands1-8", NsPerOp: 3e6, Metrics: map[string]float64{"ns/generation": 6e5}},
		{Name: "BenchmarkEMTSIslands/islands2-8", NsPerOp: 3.2e6, Metrics: map[string]float64{"ns/generation": 6.4e5}},
		{Name: "BenchmarkEMTSIslands/islands4-8", NsPerOp: 3.5e6, Metrics: map[string]float64{"ns/generation": 7e5}},
		{Name: "BenchmarkEMTSIslands/islands4nosteal-8", NsPerOp: 3.9e6, Metrics: map[string]float64{"ns/generation": 7.8e5}},
	}
	curve, err := buildIslandCurve(benchmarks, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("got %d points, want 3", len(curve))
	}
	p := curve[2]
	if p.Islands != 4 || p.NsPerGeneration != 7e5 || p.PerIslandNsPerGen != 7e5/4 {
		t.Errorf("islands4 point = %+v", p)
	}
	if want := 4 * 6e5 / 7e5; p.ThroughputVsSingle != want {
		t.Errorf("throughput_vs_single = %v, want %v", p.ThroughputVsSingle, want)
	}
	if p.NoStealNsPerGeneration != 7.8e5 {
		t.Errorf("nosteal = %v", p.NoStealNsPerGeneration)
	}
	if curve[0].NoStealNsPerGeneration != 0 {
		t.Errorf("islands1 unexpectedly has a nosteal control: %+v", curve[0])
	}

	// A requested-but-unmeasured count and a missing baseline are errors.
	if _, err := buildIslandCurve(benchmarks, []int{1, 8}); err == nil {
		t.Error("unmeasured count accepted")
	}
	if _, err := buildIslandCurve(benchmarks[1:], []int{2, 4}); err == nil {
		t.Error("missing islands1 baseline accepted")
	}
}

func TestParseIslandCounts(t *testing.T) {
	counts, err := parseIslandCounts("4, 1,2")
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 || counts[0] != 1 || counts[2] != 4 {
		t.Errorf("counts = %v", counts)
	}
	for _, bad := range []string{"", "0", "x", "1,,2"} {
		if _, err := parseIslandCounts(bad); err == nil {
			t.Errorf("parseIslandCounts(%q) succeeded, want error", bad)
		}
	}
}
