// Command emts-bench runs the repo's Go benchmarks and emits the results as
// machine-readable JSON, so perf numbers can be committed as artifacts
// (artifacts/BENCH_PR3.json) and diffed across commits instead of living in
// free-text logs.
//
// It shells out to `go test -run ^$ -bench <pattern> -benchmem` and parses
// the standard benchmark output: the header lines (goos/goarch/pkg/cpu), and
// one record per benchmark with iterations, ns/op, B/op, allocs/op, and any
// custom b.ReportMetric pairs (cache_hit_rate, prefilter_reject_rate, ...).
//
// Usage:
//
//	emts-bench -bench 'EMTS5Instance$' -benchtime 1x
//	emts-bench -bench 'BenchmarkEMTS' -benchtime 2s -out artifacts/BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

func main() {
	var (
		bench     = flag.String("bench", "BenchmarkEMTS", "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime value (e.g. 1s, 100x)")
		count     = flag.Int("count", 1, "go test -count value")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "-", "output file, or - for stdout")
	)
	flag.Parse()
	if err := run(*bench, *benchtime, *count, *pkg, *out); err != nil {
		fmt.Fprintln(os.Stderr, "emts-bench:", err)
		os.Exit(1)
	}
}

func run(bench, benchtime string, count int, pkg, out string) error {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchtime", benchtime,
		"-count", strconv.Itoa(count), "-benchmem", pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test: %w", err)
	}
	rep, err := parseBench(strings.NewReader(string(raw)))
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Report is the JSON document: the benchmark environment plus one record per
// benchmark line, in output order.
type Report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds b.ReportMetric pairs keyed by unit, e.g.
	// "cache_hit_rate" or "prefilter_reject_rate".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// parseBench parses `go test -bench` output. Lines it does not recognize
// (PASS, ok, blank) are skipped; malformed Benchmark lines are an error so
// silent truncation cannot masquerade as a clean run.
func parseBench(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkEMTS5Instance  195  6073383 ns/op  0.0077 cache_hit_rate  368208 B/op  947 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs. The -<procs> suffix
// go test appends for GOMAXPROCS>1 is kept as part of the name.
func parseBenchLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	for i := 2; i < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad value %q in %q: %w", f[i], line, err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		case "MB/s":
			// throughput is not meaningful for these benchmarks; skip
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}
