// Command emts-bench runs the repo's Go benchmarks and emits the results as
// machine-readable JSON, so perf numbers can be committed as artifacts
// (artifacts/BENCH_PR3.json) and diffed across commits instead of living in
// free-text logs.
//
// It shells out to `go test -run ^$ -bench <pattern> -benchmem` and parses
// the standard benchmark output: the header lines (goos/goarch/pkg/cpu), and
// one record per benchmark with iterations, ns/op, B/op, allocs/op, and any
// custom b.ReportMetric pairs (cache_hit_rate, prefilter_reject_rate, ...).
//
// With -curve it additionally runs the per-individual cost-curve benchmark
// (BenchmarkPerIndividual: λ ∈ {25, 100, 400}, batch vs scalar dispatch) and
// distills the ns/individual metrics into a "curve" section — one point per
// λ with both dispatch costs and their ratio — so the flattening effect of
// the structure-of-arrays batch path (ROADMAP item 5) is directly visible in
// the committed artifact.
//
// With -islands it additionally runs the island-count scaling benchmark
// (BenchmarkEMTSIslands) and distills the ns/generation metrics into an
// "islands" section — one point per island count with the per-island cost
// and the search-throughput ratio against the single population — so the
// island model's scaling (DESIGN.md §17) lands in the committed artifact
// (artifacts/BENCH_PR10.json).
//
// Usage:
//
//	emts-bench -bench 'EMTS5Instance$' -benchtime 1x
//	emts-bench -bench 'BenchmarkEMTS' -benchtime 2s -out artifacts/BENCH_PR3.json
//	emts-bench -bench 'EMTS(5|10)Instance(NoBatch)?$' -curve -out artifacts/BENCH_PR6.json
//	emts-bench -bench 'EMTS(5|10)Instance$' -islands 1,2,4,8 -out artifacts/BENCH_PR10.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		bench     = flag.String("bench", "BenchmarkEMTS", "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime value (e.g. 1s, 100x)")
		count     = flag.Int("count", 1, "go test -count value")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "-", "output file, or - for stdout")
		curve     = flag.Bool("curve", false, "also run BenchmarkPerIndividual and emit a per-λ batch-vs-scalar cost curve")
		islands   = flag.String("islands", "", "comma-separated island counts (e.g. 1,2,4,8): also run BenchmarkEMTSIslands and emit an islands scaling curve")
		note      = flag.String("note", "", "free-text annotation recorded in the report (host caveats, run conditions)")
	)
	flag.Parse()
	if err := run(*bench, *benchtime, *count, *pkg, *out, *curve, *islands, *note); err != nil {
		fmt.Fprintln(os.Stderr, "emts-bench:", err)
		os.Exit(1)
	}
}

func run(bench, benchtime string, count int, pkg, out string, curve bool, islands, note string) error {
	rep, err := goBench(bench, benchtime, count, pkg)
	if err != nil {
		return err
	}
	rep.Note = note
	if curve {
		crep, err := goBench("^BenchmarkPerIndividual$", benchtime, count, pkg)
		if err != nil {
			return fmt.Errorf("curve run: %w", err)
		}
		rep.Benchmarks = append(rep.Benchmarks, crep.Benchmarks...)
		rep.Curve, err = buildCurve(crep.Benchmarks)
		if err != nil {
			return err
		}
	}
	if islands != "" {
		counts, err := parseIslandCounts(islands)
		if err != nil {
			return err
		}
		irep, err := goBench("^BenchmarkEMTSIslands$", benchtime, count, pkg)
		if err != nil {
			return fmt.Errorf("islands run: %w", err)
		}
		rep.Benchmarks = append(rep.Benchmarks, irep.Benchmarks...)
		rep.Islands, err = buildIslandCurve(irep.Benchmarks, counts)
		if err != nil {
			return err
		}
	}
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// goBench runs one `go test -bench` invocation and parses its output.
func goBench(bench, benchtime string, count int, pkg string) (*Report, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchtime", benchtime,
		"-count", strconv.Itoa(count), "-benchmem", pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test: %w", err)
	}
	return parseBench(strings.NewReader(string(raw)))
}

// Report is the JSON document: the benchmark environment plus one record per
// benchmark line, in output order.
type Report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Curve is the per-individual cost curve (one point per λ), present only
	// with -curve.
	Curve []CurvePoint `json:"curve,omitempty"`
	// Islands is the island-count scaling curve (one point per island
	// count), present only with -islands.
	Islands []IslandPoint `json:"islands,omitempty"`
}

// CurvePoint is one λ of the per-individual cost curve: the amortized cost of
// evaluating one offspring under scalar and batch dispatch, and their ratio.
type CurvePoint struct {
	Lambda           int     `json:"lambda"`
	ScalarNsPerIndiv float64 `json:"scalar_ns_per_individual"`
	BatchNsPerIndiv  float64 `json:"batch_ns_per_individual"`
	ScalarOverBatch  float64 `json:"scalar_over_batch"`
}

// IslandPoint is one island count of the scaling curve. A generation of an
// N-island run advances all N populations (N×λ offspring), so
// per_island_ns_per_generation is the amortized cost of one population step
// and throughput_vs_single = N × ns_gen(1) / ns_gen(N) is the search-
// throughput ratio against the classic single population: ≈N when the
// islands fully hide behind spare cores, ≈1 on a single core (parity —
// islands then cost exactly their extra work). NoStealNsPerGeneration, when
// present, is the A/B control with work stealing disabled at the same
// island count.
type IslandPoint struct {
	Islands                int     `json:"islands"`
	NsPerOp                float64 `json:"ns_per_op"`
	NsPerGeneration        float64 `json:"ns_per_generation"`
	PerIslandNsPerGen      float64 `json:"per_island_ns_per_generation"`
	ThroughputVsSingle     float64 `json:"throughput_vs_single"`
	NoStealNsPerGeneration float64 `json:"nosteal_ns_per_generation,omitempty"`
}

// parseIslandCounts parses the -islands flag value.
func parseIslandCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad island count %q in -islands", part)
		}
		counts = append(counts, n)
	}
	sort.Ints(counts)
	return counts, nil
}

// buildIslandCurve distills BenchmarkEMTSIslands sub-benchmark results
// (BenchmarkEMTSIslands/islands4-8, BenchmarkEMTSIslands/islands4nosteal-8,
// each reporting an "ns/generation" metric) into one IslandPoint per
// requested count. A requested count with no measurement is an error, not a
// silent gap; the curve needs islands=1 as the throughput baseline.
func buildIslandCurve(benchmarks []Benchmark, counts []int) ([]IslandPoint, error) {
	type meas struct {
		nsPerOp, nsPerGen float64
		noSteal           float64
		ok                bool
	}
	byCount := map[int]*meas{}
	get := func(n int) *meas {
		m := byCount[n]
		if m == nil {
			m = &meas{}
			byCount[n] = m
		}
		return m
	}
	for _, b := range benchmarks {
		rest, ok := strings.CutPrefix(b.Name, "BenchmarkEMTSIslands/islands")
		if !ok {
			continue
		}
		// Strip the -<procs> suffix go test appends for GOMAXPROCS>1.
		if i := strings.IndexByte(rest, '-'); i >= 0 {
			rest = rest[:i]
		}
		noSteal := false
		if s, ok := strings.CutSuffix(rest, "nosteal"); ok {
			rest, noSteal = s, true
		}
		n, err := strconv.Atoi(rest)
		if err != nil {
			return nil, fmt.Errorf("unrecognized islands benchmark name %q", b.Name)
		}
		ns, ok := b.Metrics["ns/generation"]
		if !ok {
			return nil, fmt.Errorf("islands benchmark %q reported no ns/generation metric", b.Name)
		}
		m := get(n)
		if noSteal {
			m.noSteal = ns
		} else {
			m.nsPerOp, m.nsPerGen, m.ok = b.NsPerOp, ns, true
		}
	}
	single, ok := byCount[1]
	if !ok || !single.ok {
		return nil, fmt.Errorf("islands curve needs the islands1 baseline measurement")
	}
	curve := make([]IslandPoint, 0, len(counts))
	for _, n := range counts {
		m := byCount[n]
		if m == nil || !m.ok {
			return nil, fmt.Errorf("island count %d requested but not measured", n)
		}
		curve = append(curve, IslandPoint{
			Islands:                n,
			NsPerOp:                m.nsPerOp,
			NsPerGeneration:        m.nsPerGen,
			PerIslandNsPerGen:      m.nsPerGen / float64(n),
			ThroughputVsSingle:     float64(n) * single.nsPerGen / m.nsPerGen,
			NoStealNsPerGeneration: m.noSteal,
		})
	}
	return curve, nil
}

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds b.ReportMetric pairs keyed by unit, e.g.
	// "cache_hit_rate" or "prefilter_reject_rate".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// buildCurve distills BenchmarkPerIndividual sub-benchmark results
// (BenchmarkPerIndividual/batch/lambda100-8 etc., each reporting an
// "ns/individual" metric) into one CurvePoint per λ. Both dispatch modes must
// be present for every λ; a half-measured point is an error, not a silent gap.
func buildCurve(benchmarks []Benchmark) ([]CurvePoint, error) {
	type pair struct {
		scalar, batch       float64
		hasScalar, hasBatch bool
	}
	pairs := map[int]*pair{}
	var lambdas []int
	for _, b := range benchmarks {
		rest, ok := strings.CutPrefix(b.Name, "BenchmarkPerIndividual/")
		if !ok {
			continue
		}
		mode, rest, ok := strings.Cut(rest, "/lambda")
		if !ok {
			return nil, fmt.Errorf("unrecognized curve benchmark name %q", b.Name)
		}
		// Strip the -<procs> suffix go test appends for GOMAXPROCS>1.
		if i := strings.IndexByte(rest, '-'); i >= 0 {
			rest = rest[:i]
		}
		lambda, err := strconv.Atoi(rest)
		if err != nil {
			return nil, fmt.Errorf("bad λ in curve benchmark name %q: %w", b.Name, err)
		}
		ns, ok := b.Metrics["ns/individual"]
		if !ok {
			return nil, fmt.Errorf("curve benchmark %q reported no ns/individual metric", b.Name)
		}
		p := pairs[lambda]
		if p == nil {
			p = &pair{}
			pairs[lambda] = p
			lambdas = append(lambdas, lambda)
		}
		switch mode {
		case "scalar":
			p.scalar, p.hasScalar = ns, true
		case "batch":
			p.batch, p.hasBatch = ns, true
		default:
			return nil, fmt.Errorf("unrecognized dispatch mode in curve benchmark name %q", b.Name)
		}
	}
	if len(lambdas) == 0 {
		return nil, fmt.Errorf("no BenchmarkPerIndividual results found")
	}
	sort.Ints(lambdas)
	curve := make([]CurvePoint, 0, len(lambdas))
	for _, l := range lambdas {
		p := pairs[l]
		if !p.hasScalar || !p.hasBatch {
			return nil, fmt.Errorf("λ=%d measured under only one dispatch mode", l)
		}
		curve = append(curve, CurvePoint{
			Lambda:           l,
			ScalarNsPerIndiv: p.scalar,
			BatchNsPerIndiv:  p.batch,
			ScalarOverBatch:  p.scalar / p.batch,
		})
	}
	return curve, nil
}

// parseBench parses `go test -bench` output. Lines it does not recognize
// (PASS, ok, blank) are skipped; malformed Benchmark lines are an error so
// silent truncation cannot masquerade as a clean run.
func parseBench(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkEMTS5Instance  195  6073383 ns/op  0.0077 cache_hit_rate  368208 B/op  947 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs. The -<procs> suffix
// go test appends for GOMAXPROCS>1 is kept as part of the name.
func parseBenchLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	for i := 2; i < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad value %q in %q: %w", f[i], line, err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		case "MB/s":
			// throughput is not meaningful for these benchmarks; skip
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}
