package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emts/internal/schedule"
)

func writeSchedule(t *testing.T) string {
	t.Helper()
	s := &schedule.Schedule{
		Graph: "test",
		Procs: 2,
		Entries: []schedule.Entry{
			{Task: 0, Start: 0, End: 1, Procs: []int{0}},
			{Task: 1, Start: 0, End: 2, Procs: []int{1}},
		},
	}
	path := filepath.Join(t.TempDir(), "s.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := s.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestASCIIOutput(t *testing.T) {
	in := writeSchedule(t)
	if err := run(in, "", 60, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSVGOutput(t *testing.T) {
	in := writeSchedule(t)
	out := filepath.Join(t.TempDir(), "s.svg")
	if err := run(in, out, 60, 400, 300); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("not SVG")
	}
}

func TestErrors(t *testing.T) {
	if err := run("", "", 60, 0, 0); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run("/does/not/exist", "", 60, 0, 0); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "", 60, 0, 0); err == nil {
		t.Fatal("garbage schedule accepted")
	}
}
