// Command emts-gantt renders a schedule JSON file (produced by
// emts-sched -out) as an ASCII or SVG Gantt chart.
//
// Usage:
//
//	emts-gantt -in sched.json                    # ASCII to stdout
//	emts-gantt -in sched.json -svg out.svg       # SVG file
package main

import (
	"flag"
	"fmt"
	"os"

	"emts/internal/schedule"
)

func main() {
	var (
		in    = flag.String("in", "", "schedule JSON file (required)")
		svg   = flag.String("svg", "", "write SVG to this file instead of printing ASCII")
		width = flag.Int("width", 120, "ASCII width in columns")
		w     = flag.Int("w", 1200, "SVG width in pixels")
		h     = flag.Int("h", 800, "SVG height in pixels")
	)
	flag.Parse()
	if err := run(*in, *svg, *width, *w, *h); err != nil {
		fmt.Fprintln(os.Stderr, "emts-gantt:", err)
		os.Exit(1)
	}
}

func run(in, svg string, width, w, h int) error {
	if in == "" {
		return fmt.Errorf("missing -in (see -h)")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	s, err := schedule.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	if svg == "" {
		fmt.Print(s.ASCII(width))
		return nil
	}
	if err := os.WriteFile(svg, []byte(s.SVG(w, h)), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (makespan %.4g s, %d tasks on %d procs)\n",
		svg, s.Makespan(), len(s.Entries), s.Procs)
	return nil
}
