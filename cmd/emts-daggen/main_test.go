package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emts"
)

func TestGenerateFFTToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fft.json")
	if err := run("fft", 8, 0, 0, 0, 0, 0, 1, false, false, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := emts.ReadGraph(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 39 {
		t.Fatalf("%d tasks", g.NumTasks())
	}
}

func TestGenerateStrassen(t *testing.T) {
	out := filepath.Join(t.TempDir(), "s.json")
	if err := run("strassen", 0, 0, 0, 0, 0, 0, 2, false, false, out); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateRandomDOT(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.dot")
	if err := run("random", 0, 30, 0.5, 0.5, 0.5, 1, 3, true, false, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Fatal("not DOT output")
	}
}

func TestUnknownType(t *testing.T) {
	if err := run("nope", 0, 0, 0, 0, 0, 0, 1, false, false, ""); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestInvalidParams(t *testing.T) {
	if err := run("fft", 3, 0, 0, 0, 0, 0, 1, false, false, ""); err == nil {
		t.Fatal("fft with 3 points accepted")
	}
	if err := run("random", 0, 0, 0.5, 0.5, 0.5, 0, 1, false, false, ""); err == nil {
		t.Fatal("random with n=0 accepted")
	}
}

func TestStatsMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "stats.txt")
	if err := run("fft", 8, 0, 0, 0, 0, 0, 1, false, true, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tasks:        39", "chti:", "grelon:", "critical path"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("stats missing %q:\n%s", want, data)
		}
	}
}
