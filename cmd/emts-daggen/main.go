// Command emts-daggen generates parallel task graphs in the JSON format the
// other tools consume: FFT graphs, Strassen graphs, and DAGGEN-style random
// graphs (Section IV-C of the paper).
//
// Usage:
//
//	emts-daggen -type fft -points 8 -seed 1 > fft8.json
//	emts-daggen -type strassen -seed 2 > strassen.json
//	emts-daggen -type random -n 100 -width 0.5 -regularity 0.2 -density 0.8 \
//	            -jump 2 -seed 3 > irregular.json
//	emts-daggen -type fft -points 4 -dot      # Graphviz output instead of JSON
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"emts"
)

func main() {
	var (
		typ        = flag.String("type", "random", "graph family: fft, strassen, random")
		points     = flag.Int("points", 8, "fft: input points (power of two; 2,4,8,16 in the paper)")
		n          = flag.Int("n", 100, "random: number of tasks")
		width      = flag.Float64("width", 0.5, "random: width parameter in ]0,1]")
		regularity = flag.Float64("regularity", 0.5, "random: regularity parameter in [0,1]")
		density    = flag.Float64("density", 0.5, "random: density parameter in ]0,1]")
		jump       = flag.Int("jump", 0, "random: jump parameter (0 = layered)")
		seed       = flag.Int64("seed", 1, "random seed for shape and task complexities")
		dot        = flag.Bool("dot", false, "emit Graphviz DOT instead of JSON")
		stats      = flag.Bool("stats", false, "print PTG characterization instead of the graph")
		out        = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*typ, *points, *n, *width, *regularity, *density, *jump, *seed, *dot, *stats, *out); err != nil {
		fmt.Fprintln(os.Stderr, "emts-daggen:", err)
		os.Exit(1)
	}
}

func run(typ string, points, n int, width, regularity, density float64, jump int, seed int64, dot, stats bool, out string) error {
	var (
		g   *emts.Graph
		err error
	)
	switch typ {
	case "fft":
		g, err = emts.GenerateFFT(points, seed)
	case "strassen":
		g, err = emts.GenerateStrassen(seed)
	case "random":
		g, err = emts.GenerateRandom(emts.RandomGraphConfig{
			N: n, Width: width, Regularity: regularity, Density: density, Jump: jump,
		}, seed)
	default:
		return fmt.Errorf("unknown -type %q (fft, strassen, random)", typ)
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if stats {
		return printStats(w, g)
	}
	if dot {
		_, err = fmt.Fprint(w, g.DOT())
		return err
	}
	if err := g.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d tasks, %d edges, depth %d, max width %d\n",
		g.Name(), g.NumTasks(), g.NumEdges(), g.Depth(), g.MaxWidth())
	return nil
}

// printStats characterizes a PTG: shape metrics, cost distribution, and the
// sequential/critical-path bounds on both paper clusters.
func printStats(w io.Writer, g *emts.Graph) error {
	var totalFlops, minFlops, maxFlops float64
	minFlops = math.Inf(1)
	for _, task := range g.Tasks() {
		totalFlops += task.Flops
		if task.Flops < minFlops {
			minFlops = task.Flops
		}
		if task.Flops > maxFlops {
			maxFlops = task.Flops
		}
	}
	fmt.Fprintf(w, "graph:        %s\n", g.Name())
	fmt.Fprintf(w, "tasks:        %d\n", g.NumTasks())
	fmt.Fprintf(w, "edges:        %d\n", g.NumEdges())
	fmt.Fprintf(w, "depth:        %d levels\n", g.Depth())
	fmt.Fprintf(w, "max width:    %d tasks\n", g.MaxWidth())
	fmt.Fprintf(w, "total work:   %.3g GFLOP\n", totalFlops/1e9)
	fmt.Fprintf(w, "task cost:    %.3g .. %.3g GFLOP\n", minFlops/1e9, maxFlops/1e9)
	for _, cluster := range []emts.Cluster{emts.Chti(), emts.Grelon()} {
		tab, err := emts.NewTimeTable(g, emts.Amdahl(), cluster)
		if err != nil {
			return err
		}
		ones := make(emts.Allocation, g.NumTasks())
		for i := range ones {
			ones[i] = 1
		}
		seq, err := emts.Makespan(g, tab, ones)
		if err != nil {
			return err
		}
		cp := g.CriticalPathLength(func(id emts.TaskID) float64 { return tab.Time(id, 1) })
		fmt.Fprintf(w, "%-8s      seq-alloc makespan %.4g s, 1-proc critical path %.4g s\n",
			cluster.Name+":", seq, cp)
	}
	return nil
}
