// Command emts-routersmoke is the scale-out acceptance harness (DESIGN.md
// §15): it stands up three emts-serve backends with deliberately tight cache
// bounds, drives the same repeat-structure workload through the digest
// router and through a round-robin direct sweep, and gates on the properties
// the tier exists for:
//
//   - affinity: routed serving must show a strictly higher graph-intern and
//     response-cache hit rate than round-robin over the same trio (digest
//     sharding partitions the key space; round-robin duplicates it N times
//     into LRUs that cannot hold it),
//   - throughput: routed aggregate req/s must be ≥ 2× a single constrained
//     backend under the same closed-loop offered load,
//   - correctness: zero 5xx anywhere, and routed responses byte-identical
//     to every backend's direct answer for a sample corpus,
//
// then writes the whole comparison to a JSON artifact (BENCH_PR8.json in
// CI).
//
// Usage:
//
//	emts-routersmoke -serve ./emts-serve -router ./emts-router -loadgen ./emts-loadgen
//	                 [-out artifacts/BENCH_PR8.json] [-base-port 18090]
//	                 [-duration 6s] [-warmup 2s] [-rps 25] [-c 6]
//
// The backends are started with -cache 32 -graph-entries 8 -table-entries 12
// against a 12-graph × 4-seed corpus (48 response keys): one backend's worth
// of cache cannot hold the working set, a third of it can. That is the
// regime where routing either proves itself or doesn't.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"emts/internal/daggen"
	"emts/internal/server"
)

func main() {
	var (
		serveBin   = flag.String("serve", "", "path to the emts-serve binary (required)")
		routerBin  = flag.String("router", "", "path to the emts-router binary (required)")
		loadgenBin = flag.String("loadgen", "", "path to the emts-loadgen binary (required)")
		out        = flag.String("out", "artifacts/BENCH_PR8.json", "artifact path")
		basePort   = flag.Int("base-port", 18090, "router listens here, backends on the next three ports")
		duration   = flag.Duration("duration", 6*time.Second, "measured run duration")
		warmup     = flag.Duration("warmup", 3*time.Second, "cache warmup duration before each measured phase")
		rps        = flag.Float64("rps", 25, "open-loop rate for the affinity comparison")
		conc       = flag.Int("c", 6, "closed-loop workers for the capacity comparison")
		note       = flag.String("note", "", "free-form annotation recorded in the artifact")
	)
	flag.Parse()
	if *serveBin == "" || *routerBin == "" || *loadgenBin == "" {
		fmt.Fprintln(os.Stderr, "emts-routersmoke: -serve, -router, and -loadgen are required")
		os.Exit(2)
	}
	h := &harness{
		serveBin:   *serveBin,
		routerBin:  *routerBin,
		loadgenBin: *loadgenBin,
		basePort:   *basePort,
		duration:   *duration,
		warmup:     *warmup,
		rps:        *rps,
		conc:       *conc,
		tmp:        os.TempDir(),
	}
	if err := h.run(*out, *note); err != nil {
		fmt.Fprintln(os.Stderr, "emts-routersmoke:", err)
		os.Exit(1)
	}
}

// The workload: 12 structurally distinct random PTGs × 4 seeds = 48 response
// keys, against backends bounded at 32 response entries and 8 interned
// graphs. graphList must stay in sync with corpusGraphs below.
const (
	graphList    = "random50,random51,random52,random53,random54,random55,random56,random57,random58,random59,random60,random61"
	seedsPerG    = 4
	algo         = "emts5"
	cacheEntries = 32
	graphLRU     = 8
	tableLRU     = 12
)

// summary mirrors the fields of emts-loadgen's -json output the gates read.
type summary struct {
	Mode           string         `json:"mode"`
	Requests       int            `json:"requests"`
	AchievedRPS    float64        `json:"achieved_rps"`
	Codes          map[string]int `json:"codes"`
	CacheHitPct    float64        `json:"cache_hit_pct"`
	InternGraphPct float64        `json:"intern_graph_hit_pct"`
	InternTablePct float64        `json:"intern_table_hit_pct"`
	Instances      map[string]int `json:"instances,omitempty"`
	P50Ms          float64        `json:"p50_ms"`
	P95Ms          float64        `json:"p95_ms"`
}

// artifact is the committed comparison record.
type artifact struct {
	Note         string  `json:"note,omitempty"`
	Workload     string  `json:"workload"`
	SeedsPerG    int     `json:"seeds_per_graph"`
	Algorithm    string  `json:"algorithm"`
	Backends     int     `json:"backends"`
	CacheEntries int     `json:"cache_entries_per_backend"`
	GraphLRU     int     `json:"graph_lru_per_backend"`
	TableLRU     int     `json:"table_lru_per_backend"`
	OpenRPS      float64 `json:"open_loop_rps"`
	ClosedConc   int     `json:"closed_loop_workers"`
	DurationSec  float64 `json:"duration_sec"`

	RouterOpen   summary `json:"router_open"`
	RoundRobin   summary `json:"roundrobin_open"`
	RouterClosed summary `json:"router_closed"`
	Single       summary `json:"single_closed"`

	AffinityGraphDelta float64 `json:"affinity_graph_delta_pct"` // router - rr
	AffinityCacheDelta float64 `json:"affinity_cache_delta_pct"`
	ThroughputRatio    float64 `json:"router_vs_single_rps_ratio"`
	ByteIdentical      bool    `json:"byte_identical"`
}

type harness struct {
	serveBin, routerBin, loadgenBin string
	basePort                        int
	duration, warmup                time.Duration
	rps                             float64
	conc                            int
	tmp                             string
}

func (h *harness) run(outPath, note string) error {
	routerAddr := fmt.Sprintf("127.0.0.1:%d", h.basePort)
	backendAddrs := []string{
		fmt.Sprintf("127.0.0.1:%d", h.basePort+1),
		fmt.Sprintf("127.0.0.1:%d", h.basePort+2),
		fmt.Sprintf("127.0.0.1:%d", h.basePort+3),
	}

	art := artifact{
		Note:         note,
		Workload:     graphList,
		SeedsPerG:    seedsPerG,
		Algorithm:    algo,
		Backends:     len(backendAddrs),
		CacheEntries: cacheEntries,
		GraphLRU:     graphLRU,
		TableLRU:     tableLRU,
		OpenRPS:      h.rps,
		ClosedConc:   h.conc,
		DurationSec:  h.duration.Seconds(),
	}

	// Phase A: three fresh backends behind the router. Warm through the
	// router (each backend fills with its own shard), then measure the
	// open-loop affinity run and the closed-loop capacity run, then check
	// byte identity while the trio is still up.
	err := h.withBackends(backendAddrs, func() error {
		return h.withRouter(routerAddr, backendAddrs, func() error {
			if err := h.loadgen("-url", "http://"+routerAddr, "-c", strconv.Itoa(h.conc),
				"-duration", h.warmup.String()); err != nil {
				return fmt.Errorf("router warmup: %w", err)
			}
			var err error
			if art.RouterOpen, err = h.measure("router_open",
				"-url", "http://"+routerAddr, "-rps", fmt.Sprint(h.rps)); err != nil {
				return err
			}
			if art.RouterClosed, err = h.measure("router_closed",
				"-url", "http://"+routerAddr, "-c", strconv.Itoa(h.conc)); err != nil {
				return err
			}
			ok, err := h.byteIdentity(routerAddr, backendAddrs)
			if err != nil {
				return err
			}
			art.ByteIdentical = ok
			return nil
		})
	})
	if err != nil {
		return err
	}

	// Phase B: a fresh trio swept round-robin with no router — the
	// no-affinity baseline. Warm the same way it is measured.
	direct := strings.Join(backendAddrs, ",")
	err = h.withBackends(backendAddrs, func() error {
		if err := h.loadgen("-direct", direct, "-c", strconv.Itoa(h.conc),
			"-duration", h.warmup.String()); err != nil {
			return fmt.Errorf("roundrobin warmup: %w", err)
		}
		var err error
		art.RoundRobin, err = h.measure("roundrobin_open",
			"-direct", direct, "-rps", fmt.Sprint(h.rps))
		return err
	})
	if err != nil {
		return err
	}

	// Phase C: one fresh constrained backend under the same closed-loop
	// offered load — the scale-up denominator.
	err = h.withBackends(backendAddrs[:1], func() error {
		if err := h.loadgen("-url", "http://"+backendAddrs[0], "-c", strconv.Itoa(h.conc),
			"-duration", h.warmup.String()); err != nil {
			return fmt.Errorf("single warmup: %w", err)
		}
		var err error
		art.Single, err = h.measure("single_closed",
			"-url", "http://"+backendAddrs[0], "-c", strconv.Itoa(h.conc))
		return err
	})
	if err != nil {
		return err
	}

	art.AffinityGraphDelta = art.RouterOpen.InternGraphPct - art.RoundRobin.InternGraphPct
	art.AffinityCacheDelta = art.RouterOpen.CacheHitPct - art.RoundRobin.CacheHitPct
	if art.Single.AchievedRPS > 0 {
		art.ThroughputRatio = art.RouterClosed.AchievedRPS / art.Single.AchievedRPS
	}

	if err := h.gate(&art); err != nil {
		// Write the artifact even on gate failure: the numbers are the
		// diagnosis.
		writeArtifact(outPath, &art)
		return err
	}
	if err := writeArtifact(outPath, &art); err != nil {
		return err
	}
	fmt.Printf("routersmoke: affinity graph %+.1f%% cache %+.1f%%, throughput ratio %.2fx, byte-identical %v -> %s\n",
		art.AffinityGraphDelta, art.AffinityCacheDelta, art.ThroughputRatio, art.ByteIdentical, outPath)
	return nil
}

// gate enforces the PR 8 acceptance criteria.
func (h *harness) gate(art *artifact) error {
	var fails []string
	if art.RouterOpen.InternGraphPct <= art.RoundRobin.InternGraphPct {
		fails = append(fails, fmt.Sprintf("graph-intern hit rate: router %.1f%% <= roundrobin %.1f%%",
			art.RouterOpen.InternGraphPct, art.RoundRobin.InternGraphPct))
	}
	if art.RouterOpen.CacheHitPct <= art.RoundRobin.CacheHitPct {
		fails = append(fails, fmt.Sprintf("response-cache hit rate: router %.1f%% <= roundrobin %.1f%%",
			art.RouterOpen.CacheHitPct, art.RoundRobin.CacheHitPct))
	}
	if art.ThroughputRatio < 2 {
		fails = append(fails, fmt.Sprintf("throughput: router %.1f req/s < 2x single %.1f req/s",
			art.RouterClosed.AchievedRPS, art.Single.AchievedRPS))
	}
	if !art.ByteIdentical {
		fails = append(fails, "routed responses not byte-identical to direct")
	}
	for _, s := range []struct {
		name string
		sum  summary
	}{{"router_open", art.RouterOpen}, {"roundrobin_open", art.RoundRobin},
		{"router_closed", art.RouterClosed}, {"single_closed", art.Single}} {
		if n := fiveHundreds(s.sum.Codes); n > 0 {
			fails = append(fails, fmt.Sprintf("%s: %d 5xx responses", s.name, n))
		}
	}
	if len(art.RouterOpen.Instances) < 2 {
		fails = append(fails, fmt.Sprintf("routed traffic reached only %d backend(s)", len(art.RouterOpen.Instances)))
	}
	if len(fails) > 0 {
		return fmt.Errorf("gates failed:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}

// fiveHundreds counts 5xx responses in a loadgen code map.
func fiveHundreds(codes map[string]int) int {
	keys := make([]string, 0, len(codes))
	for k := range codes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	n := 0
	for _, k := range keys {
		if c, err := strconv.Atoi(k); err == nil && c >= 500 && c < 600 {
			n += codes[k]
		}
	}
	return n
}

// measure runs one loadgen pass with the standard workload and parses its
// JSON summary.
func (h *harness) measure(name string, extra ...string) (summary, error) {
	path := h.tmp + "/routersmoke-" + name + ".json"
	args := append([]string{"-duration", h.duration.String(), "-json", path}, extra...)
	if err := h.loadgen(args...); err != nil {
		return summary{}, fmt.Errorf("%s: %w", name, err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return summary{}, err
	}
	var s summary
	if err := json.Unmarshal(b, &s); err != nil {
		return summary{}, fmt.Errorf("%s summary: %w", name, err)
	}
	fmt.Printf("routersmoke %s: %.1f req/s, cache %.1f%%, intern graph %.1f%% table %.1f%%, p50 %.1fms p95 %.1fms\n",
		name, s.AchievedRPS, s.CacheHitPct, s.InternGraphPct, s.InternTablePct, s.P50Ms, s.P95Ms)
	return s, nil
}

// loadgen invokes the load generator with the standard workload flags.
func (h *harness) loadgen(extra ...string) error {
	args := append([]string{
		"-graphs", graphList, "-seeds", strconv.Itoa(seedsPerG), "-algo", algo,
		"-timeout", "2m",
	}, extra...)
	cmd := exec.Command(h.loadgenBin, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	return cmd.Run()
}

// withBackends starts one constrained emts-serve per address, runs f, and
// tears them down (fresh caches per phase keep the comparison honest).
func (h *harness) withBackends(addrs []string, f func() error) error {
	var procs []*exec.Cmd
	stop := func() {
		for _, p := range procs {
			p.Process.Signal(syscall.SIGTERM)
		}
		for _, p := range procs {
			p.Wait()
		}
	}
	for i, addr := range addrs {
		cmd := exec.Command(h.serveBin,
			"-addr", addr, "-quiet",
			"-instance", fmt.Sprintf("b%d", i+1),
			"-cache", strconv.Itoa(cacheEntries),
			"-graph-entries", strconv.Itoa(graphLRU),
			"-table-entries", strconv.Itoa(tableLRU),
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			stop()
			return fmt.Errorf("starting backend %s: %w", addr, err)
		}
		procs = append(procs, cmd)
	}
	for _, addr := range addrs {
		if err := waitReady("http://" + addr); err != nil {
			stop()
			return err
		}
	}
	err := f()
	stop()
	return err
}

// withRouter starts emts-router over the backends, runs f, tears it down.
func (h *harness) withRouter(addr string, backends []string, f func() error) error {
	cmd := exec.Command(h.routerBin,
		"-addr", addr,
		"-backends", strings.Join(backends, ","),
		"-health-interval", "250ms",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting router: %w", err)
	}
	stop := func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}
	if err := waitReady("http://" + addr); err != nil {
		stop()
		return err
	}
	err := f()
	stop()
	return err
}

// waitReady polls /readyz until 200.
func waitReady(base string) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("%s never became ready", base)
}

// byteIdentity posts a sample corpus through the router and directly to
// every backend and compares bodies: the response is a pure function of the
// request, so all four answers must be equal.
func (h *harness) byteIdentity(routerAddr string, backendAddrs []string) (bool, error) {
	costs := daggen.DefaultCosts()
	var bodies [][]byte
	for _, n := range []int{50, 55, 61} {
		g, err := daggen.Random(daggen.RandomConfig{N: n, Width: 0.5, Regularity: 0.8, Density: 0.5, Jump: 1}, costs, 1)
		if err != nil {
			return false, err
		}
		raw, err := json.Marshal(g)
		if err != nil {
			return false, err
		}
		for seed := int64(1); seed <= 2; seed++ {
			body, err := json.Marshal(server.ScheduleRequest{
				Graph:     raw,
				Cluster:   server.ClusterSpec{Preset: "chti"},
				Algorithm: algo,
				Seed:      seed,
			})
			if err != nil {
				return false, err
			}
			bodies = append(bodies, body)
		}
	}
	for i, body := range bodies {
		routed, code, err := postOnce("http://"+routerAddr, body)
		if err != nil || code != http.StatusOK {
			return false, fmt.Errorf("byte-identity %d via router: code %d err %v", i, code, err)
		}
		for _, addr := range backendAddrs {
			direct, code, err := postOnce("http://"+addr, body)
			if err != nil || code != http.StatusOK {
				return false, fmt.Errorf("byte-identity %d via %s: code %d err %v", i, addr, code, err)
			}
			if !bytes.Equal(routed, direct) {
				fmt.Fprintf(os.Stderr, "byte-identity %d: router and %s disagree\n", i, addr)
				return false, nil
			}
		}
	}
	return true, nil
}

func postOnce(base string, body []byte) ([]byte, int, error) {
	resp, err := http.Post(base+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return b, resp.StatusCode, err
}

func writeArtifact(path string, art *artifact) error {
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
