package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFigures1And3(t *testing.T) {
	if err := run(1, false, false, false, false, 0.1, 1, 1000, 1, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := run(3, false, false, false, false, 0.1, 1, 1000, 1, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestFigure6WritesSVGs(t *testing.T) {
	dir := t.TempDir()
	if err := run(6, false, false, false, false, 0.1, 1, 1000, 1, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"figure6-mcpa.svg", "figure6-emts.svg"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
}

func TestRuntimeTable(t *testing.T) {
	if err := run(0, true, false, false, false, 0.1, 1, 1000, 1, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestNothingToDo(t *testing.T) {
	if err := run(0, false, false, false, false, 0.1, 1, 1000, 1, t.TempDir()); err == nil {
		t.Fatal("no-op invocation accepted")
	}
}

func TestBadScale(t *testing.T) {
	if err := run(4, false, false, false, false, -1, 1, 1000, 1, t.TempDir()); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestSearchComparison(t *testing.T) {
	if err := run(0, false, true, false, false, 0.1, 1, 1000, 1, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestConvergenceMode(t *testing.T) {
	dir := t.TempDir()
	if err := run(0, false, false, true, false, 0.1, 1, 1000, 1, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"convergence.svg", "convergence-emts5.csv", "convergence-emts10.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s", name)
		}
	}
}
