// Command emts-experiments regenerates the paper's evaluation artifacts:
//
//	-fig 1       Figure 1  — PDGEMM-like time vs. processor count (Model 2)
//	-fig 3       Figure 3  — mutation-operator density, empirical vs analytic
//	-fig 4       Figure 4  — rel. makespan MCPA/HCPA vs EMTS5, Model 1
//	-fig 5       Figure 5  — rel. makespan vs EMTS5 and EMTS10, Model 2
//	-fig 6       Figure 6  — MCPA vs EMTS10 Gantt charts (ASCII + SVG files)
//	-runtime     Section V-B run-time table
//	-all         everything above
//
// -scale in ]0,1] shrinks the instance counts of Figures 4/5 (1 = the
// paper's full workload: 400 FFT + 100 Strassen + 36 layered + 108 irregular
// instances per cluster). SVG output for Figure 6 lands in -outdir.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"emts/internal/exp"
	"emts/internal/platform"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure to regenerate (1, 3, 4, 5, 6); 0 = none")
		runtime = flag.Bool("runtime", false, "regenerate the Section V-B run-time table")
		searchC = flag.Bool("search", false, "run the search-method comparison (future work, Section VI)")
		conv    = flag.Bool("convergence", false, "trace EMTS5/EMTS10 convergence (SVG + CSV)")
		all     = flag.Bool("all", false, "regenerate every figure and table")
		scale   = flag.Float64("scale", 0.1, "workload scale in ]0,1] for figures 4/5 (1 = paper size)")
		seed    = flag.Int64("seed", 1, "random seed")
		samples = flag.Int("samples", 1_000_000, "figure 3 sample count")
		inst    = flag.Int("instances", 5, "run-time table instances per class")
		outdir  = flag.String("outdir", ".", "directory for SVG artifacts (figure 6)")
	)
	flag.Parse()
	if err := run(*fig, *runtime, *searchC, *conv, *all, *scale, *seed, *samples, *inst, *outdir); err != nil {
		fmt.Fprintln(os.Stderr, "emts-experiments:", err)
		os.Exit(1)
	}
}

func run(fig int, runtimeTable, searchCmp, convergence, all bool, scale float64, seed int64, samples, instances int, outdir string) error {
	did := false
	want := func(n int) bool { return all || fig == n }

	writeCSV := func(name, content string) error {
		path := filepath.Join(outdir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		return nil
	}

	if want(1) {
		did = true
		r, err := exp.Figure1(32)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		if err := writeCSV("figure1.csv", r.CSV()); err != nil {
			return err
		}
	}
	if want(3) {
		did = true
		r, err := exp.Figure3(samples, seed)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		if err := writeCSV("figure3.csv", r.CSV()); err != nil {
			return err
		}
	}
	if want(4) {
		did = true
		if err := relMakespan("amdahl", "emts5", scale, seed, filepath.Join(outdir, "figure4.svg")); err != nil {
			return err
		}
	}
	if want(5) {
		did = true
		for _, emtsName := range []string{"emts5", "emts10"} {
			svg := filepath.Join(outdir, "figure5-"+emtsName+".svg")
			if err := relMakespan("synthetic", emtsName, scale, seed, svg); err != nil {
				return err
			}
		}
	}
	if want(6) {
		did = true
		r, err := exp.Figure6(seed)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		for _, out := range []struct {
			name string
			s    interface{ SVG(int, int) string }
		}{
			{"figure6-mcpa.svg", r.MCPA},
			{"figure6-emts.svg", r.EMTS},
		} {
			name, s := out.name, out.s
			path := filepath.Join(outdir, name)
			if err := os.WriteFile(path, []byte(s.SVG(1200, 800)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	if all || runtimeTable {
		did = true
		r, err := exp.RuntimeTable(instances, seed)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		if err := writeCSV("runtime.csv", r.CSV()); err != nil {
			return err
		}
	}
	if all || searchCmp {
		did = true
		w, err := exp.IrregularWorkload(50, 1, seed+50_000)
		if err != nil {
			return err
		}
		if len(w.Graphs) > 3*instances {
			w.Graphs = w.Graphs[:3*instances]
		}
		for _, budget := range []int{130, 1010} {
			r, err := exp.CompareSearchMethods(w, platform.Grelon(), "synthetic", budget, seed)
			if err != nil {
				return err
			}
			fmt.Println(r.Format())
			if err := writeCSV(fmt.Sprintf("search-budget%d.csv", budget), r.CSV()); err != nil {
				return err
			}
		}
	}
	if all || convergence {
		did = true
		w, err := exp.IrregularWorkload(100, 1, seed+60_000)
		if err != nil {
			return err
		}
		if len(w.Graphs) > 3*instances {
			w.Graphs = w.Graphs[:3*instances]
		}
		// One call for both variants: the per-instance tables are shared.
		traces, err := exp.ConvergenceTraces(w, platform.Grelon(), "synthetic", []string{"emts5", "emts10"}, seed)
		if err != nil {
			return err
		}
		for _, emtsName := range []string{"emts5", "emts10"} {
			c := traces[emtsName]
			fmt.Printf("%s convergence (mean best relative to seeds, %d instances):\n", emtsName, c.Instances)
			for u, v := range c.MeanRelative {
				fmt.Printf("  gen %2d: %.4f\n", u, v)
			}
			if err := writeCSV("convergence-"+emtsName+".csv", c.CSV()); err != nil {
				return err
			}
		}
		svgPath := filepath.Join(outdir, "convergence.svg")
		if err := os.WriteFile(svgPath, []byte(exp.ConvergenceSVG(traces, 700, 420)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", svgPath)
	}
	if !did {
		return fmt.Errorf("nothing to do: pass -fig N, -runtime, -search, -convergence, or -all (see -h)")
	}
	return nil
}

func relMakespan(modelName, emtsName string, scale float64, seed int64, svgPath string) error {
	ws, err := exp.PaperWorkloads(scale, seed)
	if err != nil {
		return err
	}
	total := 0
	for _, w := range ws {
		total += len(w.Graphs)
	}
	fmt.Fprintf(os.Stderr, "running %s/%s on %d instances x 2 clusters (scale %g)...\n",
		modelName, emtsName, total, scale)
	start := time.Now()
	res, err := exp.RelativeMakespan(exp.RelMakespanConfig{
		ModelName: modelName,
		EMTS:      emtsName,
		Baselines: []string{"mcpa", "hcpa"},
		Workloads: ws,
		Clusters:  []platform.Cluster{platform.Chti(), platform.Grelon()},
		Seed:      seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Millisecond))
	fmt.Println(res.Format())
	if svgPath != "" {
		if err := os.WriteFile(svgPath, []byte(res.SVG(1100, 420)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", svgPath)
		csvPath := strings.TrimSuffix(svgPath, ".svg") + ".csv"
		if err := os.WriteFile(csvPath, []byte(res.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", csvPath)
	}
	return nil
}
