// Command schedlint is the multichecker for this repository's custom
// analyzers (see DESIGN.md §9). It runs in two modes:
//
// Standalone, over go-list package patterns:
//
//	schedlint ./...
//	schedlint -analyzers norandglobal,floateq ./internal/ea
//
// As a go vet tool, which additionally covers test files because cmd/go
// hands the tool every test variant it builds:
//
//	go vet -vettool=$(which schedlint) ./...
//
// Both modes honor the .schedlint.conf allowlist at the module root and
// inline `//schedlint:allow <analyzer> -- <reason>` directives. Exit status
// is 0 when clean, 2 when any diagnostic fires (matching go vet), and 1 on
// operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"emts/internal/lint"
	"emts/internal/lint/config"
	"emts/internal/lint/driver"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet probes its tool's identity with -V=full before anything else,
	// and asks which analyzer flags it accepts with -flags (a JSON array;
	// empty means schedlint exposes none of its flags through go vet).
	if len(args) == 1 && args[0] == "-V=full" {
		// A devel version line must carry a buildID; hashing our own binary
		// makes go vet's result cache invalidate whenever the analyzers
		// change.
		fmt.Printf("schedlint version devel buildID=%s\n", selfID())
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}

	fs := flag.NewFlagSet("schedlint", flag.ContinueOnError)
	confPath := fs.String("c", "", "path to .schedlint.conf (default: auto-discover at the module root)")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.String("json", "", "write findings as a JSON array to the named file ('-' for stdout)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: schedlint [flags] [packages | vet-config.cfg]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	analyzers, ok := lint.ByName(splitNames(*names))
	if !ok {
		fmt.Fprintf(os.Stderr, "schedlint: unknown analyzer in %q\n", *names)
		return 1
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// go vet mode: a single argument naming a *.cfg file written by cmd/go.
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		return runVet(patterns[0], analyzers, *confPath)
	}

	cfg, err := loadConfig(*confPath, ".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 1
	}
	pkgs, err := driver.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 1
	}
	findings, err := driver.Run(pkgs, analyzers, cfg, lint.Names())
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, findings); err != nil {
			fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
			return 1
		}
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// jsonFinding is the machine-readable record emitted by -json, one per
// finding. The CI workflow uploads the array as a build artifact.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func writeJSON(dest string, findings []driver.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Position.Filename,
			Line:     f.Position.Line,
			Column:   f.Position.Column,
			Message:  f.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if dest == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(dest, data, 0o666)
}

// selfID returns a content hash of the running binary, for the -V=full
// build ID. Falls back to a constant if the executable cannot be read.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "schedlint"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "schedlint"
	}
	defer f.Close()
	h := fnv.New64a()
	if _, err := io.Copy(h, f); err != nil {
		return "schedlint"
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func splitNames(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// loadConfig resolves the allowlist: an explicit -c path, or .schedlint.conf
// at the module root of dir (so the tool works from any working directory,
// including the per-package invocations go vet performs).
func loadConfig(explicit, dir string) (*config.Config, error) {
	if explicit != "" {
		return config.Parse(explicit)
	}
	root := moduleRoot(dir)
	if root == "" {
		return config.Empty(dir), nil
	}
	path := filepath.Join(root, config.DefaultFile)
	if _, err := os.Stat(path); err != nil {
		return config.Empty(root), nil
	}
	return config.Parse(path)
}

func moduleRoot(dir string) string {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return ""
	}
	return filepath.Dir(gomod)
}
