package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"emts/internal/lint"
	"emts/internal/lint/analysis"
	"emts/internal/lint/driver"
)

// vetConfig is the JSON configuration cmd/go writes for each package when a
// -vettool is in use. The field set mirrors x/tools/go/analysis/unitchecker;
// only the fields this driver consumes are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes one package under the go vet tool protocol: read the cfg,
// type-check the listed files against the export data cmd/go already built,
// run the analyzers, and leave the (empty — schedlint exports no facts) vetx
// output behind so cmd/go can cache the result.
func runVet(cfgPath string, analyzers []*analysis.Analyzer, confPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	writeVetx := func() {
		if cfg.VetxOutput != "" {
			// Facts file; schedlint analyzers export none.
			_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	imp := driver.ExportDataImporter(fset, func(path string) (string, bool) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := driver.CheckFiles(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 1
	}

	conf, err := loadConfig(confPath, cfg.Dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 1
	}
	findings, err := driver.Run([]*driver.Package{pkg}, analyzers, conf, lint.Names())
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Position, f.Message)
	}
	writeVetx()
	if len(findings) > 0 {
		return 2
	}
	return 0
}
