// Command emts-loadgen is a load generator for emts-serve: it replays
// generated FFT, Strassen, and DAGGEN-style random PTGs against the
// /v1/schedule endpoint and reports throughput and latency percentiles.
//
// Usage:
//
//	emts-loadgen [-url http://localhost:8080] [-direct addr1,addr2,...]
//	             [-c 4] [-duration 10s]
//	             [-graphs fft8,strassen,random50] [-algo emts5]
//	             [-model synthetic] [-cluster chti] [-seeds 8] [-seed 1]
//	             [-islands 0] [-rps 0] [-jobs] [-cancel-at 0] [-json file]
//
// The default mode is closed-loop: each of the c workers keeps exactly one
// request in flight, so offered load adapts to service capacity instead of
// overrunning it. Seeds vary across requests (-seeds distinct values), which
// controls the server's response-cache hit rate: -seeds 1 measures pure cache
// service, large values measure pure compute.
//
// -rps R switches to open-loop mode: requests are dispatched at fixed
// scheduled instants R per second regardless of how the previous ones fare,
// and every latency is measured from the request's *scheduled* start, not its
// actual send — so a stalled server inflates the percentiles instead of
// silently throttling the generator (the coordinated-omission trap of closed
// loops). The report states offered vs achieved rate; a gap means the server
// (or the client host) could not keep up.
//
// -direct addr1,addr2,... replaces -url with a round-robin sweep over
// several backends — the no-affinity baseline the routing tier (emts-router)
// is measured against: every backend sees the whole working set, so bounded
// caches thrash where digest routing would keep them hot. The report's
// interned/cache hit rates and per-instance counts (X-Emts-Instance) make
// the comparison directly readable.
//
// -jobs switches to the async job API: each worker submits POST /v1/jobs
// (unique seed per submission, so the idempotency key never dedups),
// subscribes to the job's SSE event stream, counts per-generation progress
// events, and fetches the final result. With -cancel-at G every second job
// is cancelled (DELETE) once its stream reaches generation G, exercising the
// anytime path: the report counts how many cancelled jobs returned an
// incumbent whose makespan equals the last streamed best_makespan
// (anytime_ok), and how many completed jobs streamed exactly one generation
// event per generation in the final result (sse_match/sse_mismatch).
//
// -islands N stamps the island-model EA parameter into every generated
// request (see README "Parallel search"); the JSON summary echoes the setting
// and the total EA generations the successful responses reported, so a bench
// harness can compare throughput across island counts.
//
// -json FILE additionally writes the machine-readable summary to FILE
// ("-" = stdout) for benchmark harnesses and CI gates.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"emts/internal/dag"
	"emts/internal/daggen"
	"emts/internal/server"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080", "server base URL (router or single backend)")
		direct   = flag.String("direct", "", "comma-separated backend addresses swept round-robin (overrides -url)")
		conc     = flag.Int("c", 4, "concurrent closed-loop workers")
		duration = flag.Duration("duration", 10*time.Second, "test duration")
		graphs   = flag.String("graphs", "fft8,strassen,random50", "comma-separated workloads: fftN, strassen, randomN")
		algo     = flag.String("algo", "emts5", "algorithm to request")
		model    = flag.String("model", "synthetic", "execution-time model to request")
		cluster  = flag.String("cluster", "chti", "cluster preset (chti, grelon)")
		seeds    = flag.Int("seeds", 8, "distinct request seeds per workload (1 = all cache hits after warmup)")
		seed     = flag.Int64("seed", 1, "base seed for graph generation and request seeds")
		islands  = flag.Int("islands", 0, "islands stamped into every request (0 = classic single population)")
		timeout  = flag.Duration("timeout", time.Minute, "per-request client timeout")
		rps      = flag.Float64("rps", 0, "open-loop fixed request rate (0 = closed loop with -c workers)")
		jsonOut  = flag.String("json", "", "also write the summary as JSON to this file (\"-\" = stdout)")
		jobs     = flag.Bool("jobs", false, "exercise the async job API (submit, SSE subscribe, result) instead of /v1/schedule")
		cancelAt = flag.Int("cancel-at", 0, "with -jobs: cancel every second job once its SSE stream reaches this generation (0 = never)")
	)
	flag.Parse()
	opts := loadOpts{
		url:      *url,
		direct:   *direct,
		graphs:   *graphs,
		algo:     *algo,
		model:    *model,
		cluster:  *cluster,
		conc:     *conc,
		seeds:    *seeds,
		seed:     *seed,
		islands:  *islands,
		duration: *duration,
		timeout:  *timeout,
		rps:      *rps,
		jsonOut:  *jsonOut,
		jobs:     *jobs,
		cancelAt: *cancelAt,
	}
	if err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "emts-loadgen:", err)
		os.Exit(1)
	}
}

// loadOpts gathers one run's parameters (the flag surface, testable without
// a flag set).
type loadOpts struct {
	url      string
	direct   string
	graphs   string
	algo     string
	model    string
	cluster  string
	conc     int
	seeds    int
	seed     int64
	islands  int
	duration time.Duration
	timeout  time.Duration
	rps      float64
	jsonOut  string
	jobs     bool
	cancelAt int
}

// buildBodies pre-marshals every request body: workloads × seeds. Marshaling
// outside the measurement loop keeps the client overhead out of the
// latencies.
func buildBodies(graphSpecs, algo, model, cluster string, nSeeds int, baseSeed int64, islands int) ([][]byte, error) {
	var bodies [][]byte
	for _, spec := range strings.Split(graphSpecs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		g, err := generate(spec, baseSeed)
		if err != nil {
			return nil, err
		}
		raw, err := json.Marshal(g)
		if err != nil {
			return nil, err
		}
		for s := 0; s < nSeeds; s++ {
			req := server.ScheduleRequest{
				Graph:     raw,
				Cluster:   server.ClusterSpec{Preset: cluster},
				Model:     model,
				Algorithm: algo,
				Seed:      baseSeed + int64(s),
				Islands:   islands,
			}
			b, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			bodies = append(bodies, b)
		}
	}
	if len(bodies) == 0 {
		return nil, fmt.Errorf("no workloads in -graphs")
	}
	return bodies, nil
}

// generate builds one PTG from a workload spec.
func generate(spec string, seed int64) (*dag.Graph, error) {
	costs := daggen.DefaultCosts()
	switch {
	case spec == "strassen":
		return daggen.Strassen(costs, seed)
	case strings.HasPrefix(spec, "fft"):
		points, err := strconv.Atoi(spec[len("fft"):])
		if err != nil {
			return nil, fmt.Errorf("workload %q: want fftN (e.g. fft8)", spec)
		}
		return daggen.FFT(points, costs, seed)
	case strings.HasPrefix(spec, "random"):
		n, err := strconv.Atoi(spec[len("random"):])
		if err != nil {
			return nil, fmt.Errorf("workload %q: want randomN (e.g. random50)", spec)
		}
		cfg := daggen.RandomConfig{N: n, Width: 0.5, Regularity: 0.8, Density: 0.5, Jump: 1}
		return daggen.Random(cfg, costs, seed)
	}
	return nil, fmt.Errorf("unknown workload %q (fftN, strassen, randomN)", spec)
}

// targets maps the flag surface to the endpoint list: -direct round-robins
// several backends, -url hits one front end (router or single server).
func targets(url, direct string) ([]string, error) {
	if direct == "" {
		return []string{strings.TrimSuffix(url, "/") + "/v1/schedule"}, nil
	}
	var out []string
	for _, f := range strings.Split(direct, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if !strings.Contains(f, "://") {
			f = "http://" + f
		}
		out = append(out, strings.TrimSuffix(f, "/")+"/v1/schedule")
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no addresses in -direct")
	}
	return out, nil
}

// result aggregates one worker's observations.
type result struct {
	latencies   []time.Duration // successful (200) requests only
	codes       map[int]int
	cacheHits   int
	internGraph int            // 200s whose X-Emts-Interned includes "graph"
	internTable int            // ... and "table"
	instances   map[string]int // X-Emts-Instance values of 200s
	generations int            // EA generations reported by 200 bodies
	firstErr    error
}

// respBrief is the slice of a schedule response the generator accounts for.
type respBrief struct {
	Generations int `json:"generations"`
}

// observe folds one response into the result (200s only carry latency,
// cache, intern, generation, and instance accounting). body is the already
// drained response body; decoding it happens after elapsed was taken, so the
// accounting never inflates the latencies.
func (res *result) observe(resp *http.Response, body []byte, elapsed time.Duration) {
	res.codes[resp.StatusCode]++
	if resp.StatusCode != http.StatusOK {
		return
	}
	res.latencies = append(res.latencies, elapsed)
	var rb respBrief
	if err := json.Unmarshal(body, &rb); err == nil {
		res.generations += rb.Generations
	}
	if resp.Header.Get("X-Emts-Cache") == "hit" {
		res.cacheHits++
	}
	switch resp.Header.Get("X-Emts-Interned") {
	case "graph":
		res.internGraph++
	case "table":
		res.internTable++
	case "graph,table":
		res.internGraph++
		res.internTable++
	}
	if id := resp.Header.Get("X-Emts-Instance"); id != "" {
		if res.instances == nil {
			res.instances = make(map[string]int)
		}
		res.instances[id]++
	}
}

func run(out io.Writer, o loadOpts) error {
	if o.conc < 1 {
		return fmt.Errorf("-c %d, want >= 1", o.conc)
	}
	if o.rps < 0 {
		return fmt.Errorf("-rps %g, want >= 0", o.rps)
	}
	if o.jobs {
		return runJobsMode(out, o)
	}
	bodies, err := buildBodies(o.graphs, o.algo, o.model, o.cluster, o.seeds, o.seed, o.islands)
	if err != nil {
		return err
	}
	tgts, err := targets(o.url, o.direct)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: o.timeout}

	var results []result
	if o.rps > 0 {
		results = runOpen(client, tgts, bodies, o.seed, o.duration, o.rps)
	} else {
		results = runClosed(client, tgts, bodies, o.seed, o.duration, o.conc)
	}
	return report(out, results, o)
}

// runClosed is the default mode: conc workers, one request in flight each.
// With several targets each worker round-robins across them per request.
func runClosed(client *http.Client, tgts []string, bodies [][]byte, baseSeed int64, duration time.Duration, conc int) []result {
	deadline := time.Now().Add(duration)
	results := make([]result, conc)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker RNG: pick bodies in a random but reproducible order
			// so concurrent workers don't sweep the cache in lockstep.
			rng := rand.New(rand.NewSource(baseSeed + int64(w)))
			res := result{codes: make(map[int]int)}
			for n := w; time.Now().Before(deadline); n++ {
				body := bodies[rng.Intn(len(bodies))]
				target := tgts[n%len(tgts)]
				start := time.Now()
				resp, err := client.Post(target, "application/json", bytes.NewReader(body))
				elapsed := time.Since(start)
				if err != nil {
					if res.firstErr == nil {
						res.firstErr = err
					}
					res.codes[-1]++
					continue
				}
				rbody, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				res.observe(resp, rbody, elapsed)
				if resp.StatusCode == http.StatusTooManyRequests {
					// Closed-loop backoff: honor Retry-After if parseable.
					if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
						time.Sleep(time.Duration(ra) * time.Second / 4)
					}
				}
			}
			results[w] = res
		}(w)
	}
	wg.Wait()
	return results
}

// runOpen dispatches requests at fixed scheduled instants (1/rps apart) for
// the duration, each on its own goroutine, and measures every latency from
// the scheduled instant — so queueing delay the server induces is charged to
// the request instead of silently pausing the generator (no coordinated
// omission). The dispatcher never waits for responses; if the host cannot
// spawn fast enough the report's achieved-vs-offered gap says so.
func runOpen(client *http.Client, tgts []string, bodies [][]byte, baseSeed int64, duration time.Duration, rps float64) []result {
	interval := time.Duration(float64(time.Second) / rps)
	n := int(duration.Seconds() * rps)
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(baseSeed))
	picks := make([]int, n) // request mix chosen up front: reproducible and race-free
	for i := range picks {
		picks[i] = rng.Intn(len(bodies))
	}

	results := make([]result, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if d := time.Until(scheduled); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, scheduled time.Time) {
			defer wg.Done()
			res := result{codes: make(map[int]int)}
			resp, err := client.Post(tgts[i%len(tgts)], "application/json", bytes.NewReader(bodies[picks[i]]))
			elapsed := time.Since(scheduled) // from the schedule, not the send
			if err != nil {
				res.firstErr = err
				res.codes[-1]++
			} else {
				rbody, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				res.observe(resp, rbody, elapsed)
			}
			results[i] = res
		}(i, scheduled)
	}
	wg.Wait()
	return results
}

// summary is the machine-readable report written by -json.
type summary struct {
	Mode        string         `json:"mode"` // "closed" or "open"
	Requests    int            `json:"requests"`
	DurationSec float64        `json:"duration_sec"`
	OfferedRPS  float64        `json:"offered_rps,omitempty"` // open loop only
	AchievedRPS float64        `json:"achieved_rps"`
	Codes       map[string]int `json:"codes"`
	CacheHits   int            `json:"cache_hits"`
	// Hit rates over successful (200) requests, in percent: the response
	// cache (X-Emts-Cache) and the graph/table interns (X-Emts-Interned).
	// These are the affinity observables digest routing is measured by.
	CacheHitPct    float64 `json:"cache_hit_pct"`
	InternGraphPct float64 `json:"intern_graph_hit_pct"`
	InternTablePct float64 `json:"intern_table_hit_pct"`
	// Instances counts 200s by the X-Emts-Instance header (empty when the
	// backends don't stamp one).
	Instances map[string]int `json:"instances,omitempty"`
	// Islands echoes the -islands request parameter; Generations totals the
	// EA generations the successful responses reported. Together they let a
	// bench harness normalize req/s across island counts.
	Islands     int     `json:"islands,omitempty"`
	Generations int     `json:"generations"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

func report(out io.Writer, results []result, o loadOpts) error {
	duration, rps, jsonOut := o.duration, o.rps, o.jsonOut
	var all []time.Duration
	codes := make(map[int]int)
	hits, internGraph, internTable, generations := 0, 0, 0, 0
	instances := make(map[string]int)
	var firstErr error
	for _, r := range results {
		all = append(all, r.latencies...)
		for c, n := range r.codes {
			codes[c] += n
		}
		hits += r.cacheHits
		internGraph += r.internGraph
		internTable += r.internTable
		generations += r.generations
		for id, n := range r.instances {
			instances[id] += n
		}
		if firstErr == nil {
			firstErr = r.firstErr
		}
	}
	total := 0
	codeList := make([]int, 0, len(codes))
	for c := range codes {
		codeList = append(codeList, c)
	}
	sort.Ints(codeList)
	for _, c := range codeList {
		total += codes[c]
	}

	achieved := float64(total) / duration.Seconds()
	if rps > 0 {
		fmt.Fprintf(out, "open loop:  offered %.1f req/s, achieved %.1f req/s\n", rps, achieved)
	}
	fmt.Fprintf(out, "requests:   %d in %s (%.1f req/s)\n", total, duration, achieved)
	for _, c := range codeList {
		label := strconv.Itoa(c)
		if c == -1 {
			label = "transport error"
		}
		fmt.Fprintf(out, "  %-16s %d\n", label, codes[c])
	}
	if len(all) == 0 {
		if firstErr != nil {
			return fmt.Errorf("no successful requests (first error: %v)", firstErr)
		}
		return fmt.Errorf("no successful requests")
	}
	pct := func(n int) float64 { return 100 * float64(n) / float64(len(all)) }
	fmt.Fprintf(out, "cache hits: %d/%d (%.1f%%)\n", hits, len(all), pct(hits))
	fmt.Fprintf(out, "interned:   graph %.1f%%  table %.1f%%\n", pct(internGraph), pct(internTable))
	if generations > 0 {
		fmt.Fprintf(out, "ea:         %d generations across %d responses (islands=%d)\n", generations, len(all), max(1, o.islands))
	}
	if len(instances) > 0 {
		ids := make([]string, 0, len(instances))
		for id := range instances {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(out, "instances: ")
		for _, id := range ids {
			fmt.Fprintf(out, " %s=%d", id, instances[id])
		}
		fmt.Fprintln(out)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	fmt.Fprintf(out, "latency:    p50 %s  p95 %s  p99 %s  max %s\n",
		percentile(all, 0.50), percentile(all, 0.95), percentile(all, 0.99), all[len(all)-1])

	if jsonOut != "" {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		s := summary{
			Mode:           "closed",
			Requests:       total,
			DurationSec:    duration.Seconds(),
			AchievedRPS:    achieved,
			Codes:          make(map[string]int, len(codes)),
			CacheHits:      hits,
			CacheHitPct:    pct(hits),
			InternGraphPct: pct(internGraph),
			InternTablePct: pct(internTable),
			Islands:        o.islands,
			Generations:    generations,
			P50Ms:          ms(percentile(all, 0.50)),
			P95Ms:          ms(percentile(all, 0.95)),
			P99Ms:          ms(percentile(all, 0.99)),
			MaxMs:          ms(all[len(all)-1]),
		}
		if len(instances) > 0 {
			s.Instances = instances
		}
		if rps > 0 {
			s.Mode, s.OfferedRPS = "open", rps
		}
		for c, n := range codes {
			label := strconv.Itoa(c)
			if c == -1 {
				label = "transport_error"
			}
			s.Codes[label] = n
		}
		b, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if jsonOut == "-" {
			_, err = out.Write(b)
		} else {
			err = os.WriteFile(jsonOut, b, 0o644)
		}
		if err != nil {
			return fmt.Errorf("writing -json summary: %w", err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Async job mode (-jobs)

// jobsResult aggregates one jobs-mode worker's observations.
type jobsResult struct {
	submitted   int
	completed   int             // state "done"
	cancelled   int             // state "cancelled-with-result" (anytime answers)
	aborted     int             // state "cancelled" (never started, no incumbent)
	failed      int             // state "failed"
	anytimeOK   int             // cancelled jobs whose result makespan == last streamed best_makespan
	genEvents   int             // SSE generation events seen across all jobs
	generations int             // generations reported by final results
	sseMatch    int             // completed jobs with one generation event per generation
	sseMismatch int             // completed jobs where the counts diverge
	latencies   []time.Duration // submit -> done-event latency per finished job
	codes       map[int]int     // HTTP status codes of every request issued
	firstErr    error
}

// jobEnvelope is the client-side view of the /v1/jobs status body.
type jobEnvelope struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// genEvent is the client-side view of an SSE "generation" event payload.
type genEvent struct {
	Generation   int     `json:"generation"`
	BestMakespan float64 `json:"best_makespan"`
}

// doneEvent is the client-side view of the terminal SSE "done" payload.
type doneEvent struct {
	State string `json:"state"`
	Code  int    `json:"code"`
}

// jobFinal is the slice of the final schedule response jobs mode checks.
type jobFinal struct {
	Makespan    float64 `json:"makespan"`
	Generations int     `json:"generations"`
}

// runJobsMode drives the async job API: conc closed-loop workers, each
// iteration submitting one job with a globally unique seed (so the
// idempotency key never collapses two submissions into one job), following
// its SSE stream to the terminal event, and fetching the result. With
// cancelAt > 0 every second job is cancelled once its stream reaches that
// generation, which exercises the anytime path end to end.
func runJobsMode(out io.Writer, o loadOpts) error {
	if o.direct != "" {
		return fmt.Errorf("-jobs drives one front end; use -url, not -direct")
	}
	base := strings.TrimSuffix(o.url, "/")
	var graphsRaw []json.RawMessage
	for _, spec := range strings.Split(o.graphs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		g, err := generate(spec, o.seed)
		if err != nil {
			return err
		}
		raw, err := json.Marshal(g)
		if err != nil {
			return err
		}
		graphsRaw = append(graphsRaw, raw)
	}
	if len(graphsRaw) == 0 {
		return fmt.Errorf("no workloads in -graphs")
	}
	client := &http.Client{Timeout: o.timeout}
	// SSE streams live as long as the job runs; a client timeout would cut
	// them mid-run, so the streaming client has none (the server closes the
	// stream after the terminal event).
	sseClient := &http.Client{}

	deadline := time.Now().Add(o.duration)
	var counter atomic.Int64
	results := make([]jobsResult, o.conc)
	var wg sync.WaitGroup
	for w := 0; w < o.conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := jobsResult{codes: make(map[int]int)}
			for time.Now().Before(deadline) {
				n := counter.Add(1)
				req := server.ScheduleRequest{
					Graph:     graphsRaw[int(n)%len(graphsRaw)],
					Cluster:   server.ClusterSpec{Preset: o.cluster},
					Model:     o.model,
					Algorithm: o.algo,
					Seed:      o.seed + n,
					Islands:   o.islands,
				}
				body, err := json.Marshal(req)
				if err != nil {
					if res.firstErr == nil {
						res.firstErr = err
					}
					break
				}
				cancelGen := 0
				if o.cancelAt > 0 && n%2 == 1 {
					cancelGen = o.cancelAt
				}
				runOneJob(&res, client, sseClient, base, body, cancelGen, o.islands)
			}
			results[w] = res
		}(w)
	}
	wg.Wait()
	return reportJobs(out, results, o)
}

// runOneJob submits one job and follows it to a terminal state, folding
// every observation into res. islands is the request's island setting: a
// multi-island run streams one generation event per island per generation,
// so the SSE-vs-result consistency check scales its expectation by it.
func runOneJob(res *jobsResult, client, sseClient *http.Client, base string, body []byte, cancelGen, islands int) {
	start := time.Now()
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		if res.firstErr == nil {
			res.firstErr = err
		}
		res.codes[-1]++
		return
	}
	var env jobEnvelope
	decErr := json.NewDecoder(resp.Body).Decode(&env)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	res.codes[resp.StatusCode]++
	if resp.StatusCode == http.StatusTooManyRequests {
		// Job store or queue full: closed-loop backoff, mirroring the sync mode.
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			time.Sleep(time.Duration(ra) * time.Second / 4)
		}
		return
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return
	}
	if decErr != nil || env.ID == "" {
		if res.firstErr == nil {
			res.firstErr = fmt.Errorf("submit: undecodable envelope (status %d): %v", resp.StatusCode, decErr)
		}
		return
	}
	res.submitted++

	gens, lastBest, done, err := followEvents(res, client, sseClient, base, env.ID, cancelGen)
	if err != nil {
		if res.firstErr == nil {
			res.firstErr = err
		}
		return
	}
	res.latencies = append(res.latencies, time.Since(start))
	res.genEvents += gens

	final, finalOK := fetchResult(res, client, base, env.ID)
	eventsPerGen := max(1, islands)
	switch done.State {
	case "done":
		res.completed++
		if finalOK {
			res.generations += final.Generations
			if gens == final.Generations*eventsPerGen {
				res.sseMatch++
			} else {
				res.sseMismatch++
			}
		}
	case "cancelled-with-result":
		res.cancelled++
		if finalOK {
			res.generations += final.Generations
			//schedlint:allow floateq -- the anytime contract is exact: both values are the same float64 serialized by the server, so any difference is a real bug an epsilon would hide
			if final.Makespan == lastBest {
				res.anytimeOK++
			}
			// The anytime run also streamed one event per completed generation
			// (per island).
			if gens == final.Generations*eventsPerGen {
				res.sseMatch++
			} else {
				res.sseMismatch++
			}
		}
	case "cancelled":
		res.aborted++
	default:
		res.failed++
	}
	// The job is terminal and fully consumed: release its store slot so a
	// long closed loop doesn't exhaust the bounded job store with
	// already-read results.
	cancelJob(res, client, base, env.ID, true)
}

// followEvents subscribes to a job's SSE stream, counts generation events,
// and returns after the terminal "done" event. When cancelGen > 0 it issues
// the DELETE as soon as the stream reaches that generation — the cancel is
// observed by the EA at its next generation boundary, so a few more
// generation events may (correctly) arrive before the terminal one.
func followEvents(res *jobsResult, client, sseClient *http.Client, base, id string, cancelGen int) (gens int, lastBest float64, done doneEvent, err error) {
	resp, err := sseClient.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		res.codes[-1]++
		return 0, 0, done, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	res.codes[resp.StatusCode]++
	if resp.StatusCode != http.StatusOK {
		return 0, 0, done, fmt.Errorf("events: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event, data string
	cancelSent := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "": // blank line terminates one event
			switch event {
			case "generation":
				var ge genEvent
				if err := json.Unmarshal([]byte(data), &ge); err == nil {
					gens++
					lastBest = ge.BestMakespan
					if cancelGen > 0 && !cancelSent && ge.Generation >= cancelGen {
						cancelSent = true
						cancelJob(res, client, base, id, false)
					}
				}
			case "done":
				json.Unmarshal([]byte(data), &done)
				return gens, lastBest, done, nil
			}
			event, data = "", ""
		case strings.HasPrefix(line, ":"): // keep-alive comment
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		}
	}
	if err := sc.Err(); err != nil {
		return gens, lastBest, done, fmt.Errorf("events: stream: %w", err)
	}
	return gens, lastBest, done, fmt.Errorf("events: stream ended without done event")
}

// cancelJob issues the DELETE inline from the SSE read loop. The handler
// waits for the job to reach a terminal state, which happens once the EA
// observes the cancel — independent of this client reading events. The pause
// loses nothing: the event log buffers server-side and the stream replays
// every event up to the terminal one after the DELETE returns. With purge
// the DELETE also releases the job's store slot once terminal.
func cancelJob(res *jobsResult, client *http.Client, base, id string, purge bool) {
	url := base + "/v1/jobs/" + id
	if purge {
		url += "?purge=1"
	}
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		res.codes[-1]++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	res.codes[resp.StatusCode]++
}

// fetchResult reads the job's final response body and extracts the fields
// the mode verifies. ok is false when there is no 200 result (e.g. a job
// cancelled before it started).
func fetchResult(res *jobsResult, client *http.Client, base, id string) (jobFinal, bool) {
	resp, err := client.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		if res.firstErr == nil {
			res.firstErr = err
		}
		res.codes[-1]++
		return jobFinal{}, false
	}
	defer resp.Body.Close()
	res.codes[resp.StatusCode]++
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return jobFinal{}, false
	}
	var final jobFinal
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		if res.firstErr == nil {
			res.firstErr = fmt.Errorf("result: undecodable body: %w", err)
		}
		return jobFinal{}, false
	}
	io.Copy(io.Discard, resp.Body)
	return final, true
}

// jobsSummary is the machine-readable report written by -json in jobs mode.
type jobsSummary struct {
	Mode        string         `json:"mode"` // "jobs"
	Submitted   int            `json:"jobs_submitted"`
	Completed   int            `json:"jobs_completed"`
	Cancelled   int            `json:"jobs_cancelled"` // cancelled-with-result
	Aborted     int            `json:"jobs_cancelled_unstarted"`
	Failed      int            `json:"jobs_failed"`
	AnytimeOK   int            `json:"anytime_ok"`
	SSEEvents   int            `json:"sse_generation_events"`
	Generations int            `json:"generations"`
	Islands     int            `json:"islands,omitempty"`
	SSEMatch    int            `json:"sse_match"`
	SSEMismatch int            `json:"sse_mismatch"`
	Codes       map[string]int `json:"codes"`
	P50Ms       float64        `json:"p50_ms"`
	P95Ms       float64        `json:"p95_ms"`
	MaxMs       float64        `json:"max_ms"`
}

func reportJobs(out io.Writer, results []jobsResult, o loadOpts) error {
	var agg jobsResult
	agg.codes = make(map[int]int)
	var all []time.Duration
	for _, r := range results {
		agg.submitted += r.submitted
		agg.completed += r.completed
		agg.cancelled += r.cancelled
		agg.aborted += r.aborted
		agg.failed += r.failed
		agg.anytimeOK += r.anytimeOK
		agg.genEvents += r.genEvents
		agg.generations += r.generations
		agg.sseMatch += r.sseMatch
		agg.sseMismatch += r.sseMismatch
		all = append(all, r.latencies...)
		for c, n := range r.codes {
			agg.codes[c] += n
		}
		if agg.firstErr == nil {
			agg.firstErr = r.firstErr
		}
	}
	fmt.Fprintf(out, "jobs:       %d submitted in %s: %d done, %d cancelled-with-result, %d cancelled, %d failed\n",
		agg.submitted, o.duration, agg.completed, agg.cancelled, agg.aborted, agg.failed)
	fmt.Fprintf(out, "anytime:    %d/%d cancelled jobs returned the streamed incumbent\n", agg.anytimeOK, agg.cancelled)
	fmt.Fprintf(out, "sse:        %d generation events; %d jobs matched their generation count, %d mismatched\n",
		agg.genEvents, agg.sseMatch, agg.sseMismatch)
	codeList := make([]int, 0, len(agg.codes))
	for c := range agg.codes {
		codeList = append(codeList, c)
	}
	sort.Ints(codeList)
	for _, c := range codeList {
		label := strconv.Itoa(c)
		if c == -1 {
			label = "transport error"
		}
		fmt.Fprintf(out, "  %-16s %d\n", label, agg.codes[c])
	}
	if agg.submitted == 0 {
		if agg.firstErr != nil {
			return fmt.Errorf("no jobs submitted (first error: %v)", agg.firstErr)
		}
		return fmt.Errorf("no jobs submitted")
	}
	if agg.firstErr != nil {
		fmt.Fprintf(out, "first error: %v\n", agg.firstErr)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		fmt.Fprintf(out, "job latency: p50 %s  p95 %s  max %s\n",
			percentile(all, 0.50), percentile(all, 0.95), all[len(all)-1])
	}

	if o.jsonOut != "" {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		s := jobsSummary{
			Mode:        "jobs",
			Submitted:   agg.submitted,
			Completed:   agg.completed,
			Cancelled:   agg.cancelled,
			Aborted:     agg.aborted,
			Failed:      agg.failed,
			AnytimeOK:   agg.anytimeOK,
			SSEEvents:   agg.genEvents,
			Generations: agg.generations,
			Islands:     o.islands,
			SSEMatch:    agg.sseMatch,
			SSEMismatch: agg.sseMismatch,
			Codes:       make(map[string]int, len(agg.codes)),
		}
		if len(all) > 0 {
			s.P50Ms = ms(percentile(all, 0.50))
			s.P95Ms = ms(percentile(all, 0.95))
			s.MaxMs = ms(all[len(all)-1])
		}
		for c, n := range agg.codes {
			label := strconv.Itoa(c)
			if c == -1 {
				label = "transport_error"
			}
			s.Codes[label] = n
		}
		b, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if o.jsonOut == "-" {
			_, err = out.Write(b)
		} else {
			err = os.WriteFile(o.jsonOut, b, 0o644)
		}
		if err != nil {
			return fmt.Errorf("writing -json summary: %w", err)
		}
	}
	return nil
}

// percentile returns the q-quantile by the nearest-rank method; all must be
// sorted ascending.
func percentile(all []time.Duration, q float64) time.Duration {
	if len(all) == 0 {
		return 0
	}
	i := int(q*float64(len(all))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(all) {
		i = len(all) - 1
	}
	return all[i]
}
