package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"emts/internal/server"
)

func TestGenerateSpecs(t *testing.T) {
	for _, spec := range []string{"fft8", "strassen", "random20"} {
		g, err := generate(spec, 1)
		if err != nil {
			t.Fatalf("generate(%q): %v", spec, err)
		}
		if g.NumTasks() == 0 {
			t.Fatalf("generate(%q): empty graph", spec)
		}
	}
	for _, spec := range []string{"fftx", "random", "cube3"} {
		if _, err := generate(spec, 1); err == nil {
			t.Fatalf("generate(%q): want error", spec)
		}
	}
}

func TestBuildBodies(t *testing.T) {
	bodies, err := buildBodies("fft4,strassen", "emts5", "synthetic", "chti", 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 6 { // 2 workloads x 3 seeds
		t.Fatalf("len(bodies) = %d, want 6", len(bodies))
	}
	if _, err := buildBodies(" , ", "emts5", "synthetic", "chti", 1, 1, 0); err == nil {
		t.Fatal("empty workload list accepted")
	}
}

func TestPercentile(t *testing.T) {
	all := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want time.Duration
	}{{0.50, 5}, {0.90, 9}, {0.95, 10}, {0.99, 10}, {1.0, 10}}
	for _, tc := range cases {
		if got := percentile(all, tc.q); got != tc.want {
			t.Errorf("percentile(%.2f) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %d, want 0", got)
	}
}

// opts builds a loadOpts with the test defaults.
func opts(url string, conc, seeds int, duration time.Duration, rps float64, jsonOut string) loadOpts {
	return loadOpts{
		url: url, graphs: "fft4", algo: "cpa", model: "synthetic", cluster: "chti",
		conc: conc, seeds: seeds, seed: 1,
		duration: duration, timeout: 5 * time.Second, rps: rps, jsonOut: jsonOut,
	}
}

// TestRunAgainstServer drives the full closed loop against a real in-process
// server and checks the report, including the interned-rate and instance
// lines added for the routing tier's affinity measurements.
func TestRunAgainstServer(t *testing.T) {
	svc := server.New(server.Config{Workers: 2, InstanceID: "b-test"})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var out strings.Builder
	err := run(&out, opts(ts.URL, 2, 2, 300*time.Millisecond, 0, ""))
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"requests:", "200", "cache hits:", "interned:", "graph", "table", "instances:", "b-test=", "latency:", "p50", "p99"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

// TestRunDirectRoundRobin sweeps two backends round-robin via -direct and
// checks both instances served traffic.
func TestRunDirectRoundRobin(t *testing.T) {
	var urls []string
	for _, id := range []string{"b1", "b2"} {
		svc := server.New(server.Config{Workers: 1, InstanceID: id})
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}

	jsonPath := t.TempDir() + "/summary.json"
	o := opts("", 2, 2, 400*time.Millisecond, 0, jsonPath)
	o.direct = strings.Join(urls, ",")
	var out strings.Builder
	if err := run(&out, o); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var s summary
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatalf("summary JSON: %v\n%s", err, b)
	}
	if s.Instances["b1"] == 0 || s.Instances["b2"] == 0 {
		t.Fatalf("round-robin left a backend idle: %+v\n%s", s.Instances, out.String())
	}
}

// TestRunOpenLoop drives the open-loop mode at a modest fixed rate and checks
// the offered-vs-achieved report plus the JSON summary.
func TestRunOpenLoop(t *testing.T) {
	svc := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	jsonPath := t.TempDir() + "/summary.json"
	var out strings.Builder
	err := run(&out, opts(ts.URL, 1, 2, 500*time.Millisecond, 40, jsonPath))
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"open loop:", "offered 40.0", "achieved", "latency:"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var s summary
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatalf("summary JSON: %v\n%s", err, b)
	}
	if s.Mode != "open" || s.OfferedRPS != 40 || s.Requests == 0 || s.P50Ms <= 0 {
		t.Fatalf("summary %+v not filled", s)
	}
	// The intern-rate fields must be present and sane (the second request of
	// each seed re-uses the interned graph, so rates are nonzero here).
	if s.InternGraphPct < 0 || s.InternGraphPct > 100 || s.InternTablePct < 0 || s.InternTablePct > 100 {
		t.Fatalf("intern rates out of range: %+v", s)
	}
}

func TestTargets(t *testing.T) {
	got, err := targets("http://h:1/", "")
	if err != nil || len(got) != 1 || got[0] != "http://h:1/v1/schedule" {
		t.Fatalf("targets(url) = %v, %v", got, err)
	}
	got, err = targets("ignored", "h1:1, http://h2:2/")
	if err != nil || len(got) != 2 || got[0] != "http://h1:1/v1/schedule" || got[1] != "http://h2:2/v1/schedule" {
		t.Fatalf("targets(direct) = %v, %v", got, err)
	}
	if _, err := targets("ignored", " , "); err == nil {
		t.Fatal("empty -direct accepted")
	}
}

func TestRunRejectsBadConcurrency(t *testing.T) {
	if err := run(&strings.Builder{}, opts("http://localhost:0", 0, 1, time.Millisecond, 0, "")); err == nil {
		t.Fatal("want error for -c 0")
	}
	if err := run(&strings.Builder{}, opts("http://localhost:0", 1, 1, time.Millisecond, -5, "")); err == nil {
		t.Fatal("want error for -rps -5")
	}
}
