package main

import (
	"os"
	"path/filepath"
	"testing"

	"emts"
)

func TestDemoRun(t *testing.T) {
	if err := run("", 3, "chti", "amdahl", "mcpa", "whole", false, 1, 60, true); err != nil {
		t.Fatal(err)
	}
}

func TestSpecFileRun(t *testing.T) {
	dir := t.TempDir()
	g, err := emts.GenerateFFT(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ptg := filepath.Join(dir, "g.json")
	f, err := os.Create(ptg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	spec := filepath.Join(dir, "jobs.json")
	content := `[{"ptg": "` + ptg + `", "arrival": 0}, {"ptg": "` + ptg + `", "arrival": 30}]`
	if err := os.WriteFile(spec, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(spec, 0, "chti", "amdahl", "cpa", "fraction:0.5", true, 1, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyParsing(t *testing.T) {
	for _, spec := range []string{"whole", "width", "fraction:0.25"} {
		if _, err := resolvePolicy(spec); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
	for _, spec := range []string{"", "fraction:x", "fraction:0", "fraction:2", "magic"} {
		if _, err := resolvePolicy(spec); err == nil {
			t.Fatalf("%s accepted", spec)
		}
	}
}

func TestErrors(t *testing.T) {
	if err := run("", 0, "chti", "amdahl", "cpa", "whole", false, 1, 0, false); err == nil {
		t.Fatal("no jobs accepted")
	}
	if err := run("x.json", 3, "chti", "amdahl", "cpa", "whole", false, 1, 0, false); err == nil {
		t.Fatal("spec+demo accepted")
	}
	if err := run("/does/not/exist.json", 0, "chti", "amdahl", "cpa", "whole", false, 1, 0, false); err == nil {
		t.Fatal("missing spec accepted")
	}
	if err := run("", 2, "atlantis", "amdahl", "cpa", "whole", false, 1, 0, false); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if err := run("", 2, "chti", "amdahl", "warp", "whole", false, 1, 0, false); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
