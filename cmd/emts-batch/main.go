// Command emts-batch simulates the paper's motivating deployment scenario
// (Section II-A): a stream of PTG jobs arriving at a space-shared cluster,
// each granted a partition by the batch scheduler and internally scheduled
// by the chosen PTG algorithm.
//
// Jobs come either from a JSON spec file:
//
//	[
//	  {"ptg": "fft8.json", "arrival": 0},
//	  {"ptg": "irregular.json", "arrival": 120}
//	]
//
// or from -demo N, which generates a mixed synthetic stream. Policies:
// "whole" (the paper's one-job-owns-the-cluster setting), "fraction:0.5",
// or "width" (partition matched to the PTG's task parallelism).
//
// Usage:
//
//	emts-batch -demo 8 -platform grelon -model synthetic -algo emts5 -policy fraction:0.5 -backfill
//	emts-batch -spec jobs.json -algo mcpa
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"emts"
)

func main() {
	var (
		spec         = flag.String("spec", "", "JSON job-spec file (mutually exclusive with -demo)")
		demo         = flag.Int("demo", 0, "generate this many synthetic jobs instead of reading -spec")
		platformSpec = flag.String("platform", "grelon", "cluster: chti, grelon, or a platform file path")
		modelName    = flag.String("model", "synthetic", "execution-time model")
		algo         = flag.String("algo", "emts5", "PTG scheduling algorithm")
		policySpec   = flag.String("policy", "whole", "partition policy: whole, fraction:<f>, width")
		backfill     = flag.Bool("backfill", false, "enable backfilling (out-of-order starts)")
		seed         = flag.Int64("seed", 1, "random seed")
		gap          = flag.Float64("gap", 240, "demo mode: arrival gap between jobs in seconds")
		perJob       = flag.Bool("jobs", false, "print the per-job table, not only the aggregate")
	)
	flag.Parse()
	if err := run(*spec, *demo, *platformSpec, *modelName, *algo, *policySpec, *backfill, *seed, *gap, *perJob); err != nil {
		fmt.Fprintln(os.Stderr, "emts-batch:", err)
		os.Exit(1)
	}
}

func run(spec string, demo int, platformSpec, modelName, algo, policySpec string, backfill bool, seed int64, gap float64, perJob bool) error {
	jobs, err := loadJobs(spec, demo, gap, seed)
	if err != nil {
		return err
	}
	cluster, err := resolveCluster(platformSpec)
	if err != nil {
		return err
	}
	policy, err := resolvePolicy(policySpec)
	if err != nil {
		return err
	}
	res, err := emts.SimulateBatch(jobs, emts.BatchConfig{
		Cluster:   cluster,
		ModelName: modelName,
		Algorithm: algo,
		Policy:    policy,
		Backfill:  backfill,
		Seed:      seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if perJob {
		fmt.Printf("\n%6s %8s %12s %12s %12s %12s\n", "job", "procs", "duration", "start", "finish", "wait")
		for _, j := range res.Jobs {
			fmt.Printf("%6d %8d %12.2f %12.2f %12.2f %12.2f\n",
				j.ID, j.Procs, j.Duration, j.Start, j.Finish, j.Wait)
		}
	}
	return nil
}

// jobSpec is one entry of the JSON spec file.
type jobSpec struct {
	PTG     string  `json:"ptg"`
	Arrival float64 `json:"arrival"`
}

func loadJobs(spec string, demo int, gap float64, seed int64) ([]emts.BatchJob, error) {
	switch {
	case spec != "" && demo > 0:
		return nil, fmt.Errorf("use either -spec or -demo, not both")
	case spec != "":
		data, err := os.ReadFile(spec)
		if err != nil {
			return nil, err
		}
		var specs []jobSpec
		if err := json.Unmarshal(data, &specs); err != nil {
			return nil, fmt.Errorf("decoding %s: %w", spec, err)
		}
		jobs := make([]emts.BatchJob, 0, len(specs))
		for i, js := range specs {
			f, err := os.Open(js.PTG)
			if err != nil {
				return nil, err
			}
			var g *emts.Graph
			if strings.HasSuffix(strings.ToLower(js.PTG), ".dot") {
				g, err = emts.ReadGraphDOT(f)
			} else {
				g, err = emts.ReadGraph(f)
			}
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", js.PTG, err)
			}
			jobs = append(jobs, emts.BatchJob{ID: i, Graph: g, Arrival: js.Arrival})
		}
		return jobs, nil
	case demo > 0:
		jobs := make([]emts.BatchJob, 0, demo)
		for i := 0; i < demo; i++ {
			var (
				g   *emts.Graph
				err error
			)
			switch i % 3 {
			case 0:
				g, err = emts.GenerateFFT(16, seed+int64(i))
			case 1:
				g, err = emts.GenerateStrassen(seed + int64(i))
			default:
				g, err = emts.GenerateRandom(emts.RandomGraphConfig{
					N: 100, Width: 0.5, Regularity: 0.2, Density: 0.5, Jump: 2,
				}, seed+int64(i))
			}
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, emts.BatchJob{ID: i, Graph: g, Arrival: float64(i) * gap})
		}
		return jobs, nil
	}
	return nil, fmt.Errorf("no jobs: pass -spec file or -demo N")
}

func resolveCluster(spec string) (emts.Cluster, error) {
	switch strings.ToLower(spec) {
	case "chti":
		return emts.Chti(), nil
	case "grelon":
		return emts.Grelon(), nil
	}
	f, err := os.Open(spec)
	if err != nil {
		return emts.Cluster{}, fmt.Errorf("platform %q is neither a preset nor a readable file: %w", spec, err)
	}
	defer f.Close()
	return emts.ReadCluster(f)
}

func resolvePolicy(spec string) (emts.PartitionPolicy, error) {
	switch {
	case spec == "whole":
		return emts.WholeClusterPolicy(), nil
	case spec == "width":
		return emts.WidthMatchedPolicy(), nil
	case strings.HasPrefix(spec, "fraction:"):
		f, err := strconv.ParseFloat(strings.TrimPrefix(spec, "fraction:"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad fraction in -policy %q: %w", spec, err)
		}
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("fraction %g outside ]0,1]", f)
		}
		return emts.FractionPolicy(f), nil
	}
	return nil, fmt.Errorf("unknown -policy %q (whole, fraction:<f>, width)", spec)
}
