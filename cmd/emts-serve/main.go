// Command emts-serve runs the EMTS scheduling service: an HTTP/JSON API over
// every scheduler in the repository, with a bounded worker pool, admission
// control, request deadlines, a canonical-hash response cache, Prometheus
// metrics, and graceful shutdown.
//
// Usage:
//
//	emts-serve [-addr :8080] [-workers N] [-queue 64] [-timeout 30s]
//	           [-cache 256] [-max-tasks 20000] [-quiet]
//
// Endpoints:
//
//	POST /v1/schedule   schedule a PTG (see README "Serving" for the body)
//	GET  /v1/algorithms list accepted algorithm and model names
//	GET  /healthz       liveness
//	GET  /readyz        readiness (503 while draining)
//	GET  /metrics       Prometheus text metrics
//
// SIGINT/SIGTERM initiate a graceful shutdown: readiness flips to 503,
// queued requests finish, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"emts/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "admission queue depth (overflow returns 429)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request compute deadline (negative disables)")
		cache     = flag.Int("cache", 256, "response cache entries (negative disables)")
		maxTasks  = flag.Int("max-tasks", 20000, "largest accepted graph (negative disables)")
		drainWait = flag.Duration("drain", time.Minute, "shutdown drain budget")
		quiet     = flag.Bool("quiet", false, "suppress request logs")
	)
	flag.Parse()
	var logW io.Writer = os.Stderr
	if *quiet {
		logW = nil
	}
	cfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		CacheEntries:   *cache,
		MaxTasks:       *maxTasks,
		LogWriter:      logW,
	}
	if err := serve(*addr, cfg, *drainWait); err != nil {
		fmt.Fprintln(os.Stderr, "emts-serve:", err)
		os.Exit(1)
	}
}

func serve(addr string, cfg server.Config, drainWait time.Duration) error {
	svc := server.New(cfg)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "emts-serve: listening on %s\n", addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err // listener failed before any signal
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "emts-serve: %s, draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	// Drain order: service first (readiness flips, queue drains, workers
	// idle), then the HTTP listener (open connections finish their writes).
	if err := svc.Shutdown(ctx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "emts-serve: drained, bye")
	return nil
}
