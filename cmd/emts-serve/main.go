// Command emts-serve runs the EMTS scheduling service: an HTTP/JSON API over
// every scheduler in the repository, with a bounded worker pool, admission
// control, request deadlines, a canonical-hash response cache, Prometheus
// metrics, and graceful shutdown.
//
// Usage:
//
//	emts-serve [-addr :8080] [-workers N] [-queue 64] [-timeout 30s]
//	           [-cache 256] [-max-tasks 20000] [-max-islands 16]
//	           [-quiet] [-instance id]
//	           [-graph-entries 64] [-table-entries 128] [-cache-shards 0]
//	           [-max-jobs 256] [-job-ttl 10m] [-sse-keepalive 15s]
//	           [-no-intern] [-no-pool] [-no-governor]
//	           [-pprof addr] [-mutex-profile-fraction 0] [-block-profile-rate 0]
//
// The -no-* switches disable individual pieces of the cross-request
// performance layer (graph/table interning, the shared Mapper pool, the CPU
// governor) for A/B measurement; responses are bit-identical either way.
//
// -pprof starts net/http/pprof on a second listener (e.g. localhost:6060),
// kept off the service address so profiles are never internet-facing by
// accident. See README "Profiling" for the workflow.
//
// Endpoints:
//
//	POST   /v1/schedule          schedule a PTG (see README "Serving")
//	POST   /v1/jobs              submit an async job (same body; 202 + id)
//	GET    /v1/jobs/{id}         poll job status/result
//	GET    /v1/jobs/{id}/result  the raw final response (byte-identical to
//	                             the synchronous answer)
//	GET    /v1/jobs/{id}/events  SSE per-generation progress stream
//	DELETE /v1/jobs/{id}         cancel; mid-run returns the incumbent as a
//	                             "cancelled-with-result" anytime answer
//	GET    /v1/algorithms        list accepted algorithm and model names
//	GET    /healthz              liveness
//	GET    /readyz               readiness (503 while draining)
//	GET    /metrics              Prometheus text metrics
//
// SIGINT/SIGTERM initiate a graceful shutdown: readiness flips to 503,
// queued requests finish, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"emts/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "admission queue depth (overflow returns 429)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request compute deadline (negative disables)")
		cache     = flag.Int("cache", 256, "response cache entries (negative disables)")
		maxTasks  = flag.Int("max-tasks", 20000, "largest accepted graph (negative disables)")
		maxIsl    = flag.Int("max-islands", 0, "largest accepted islands request (0 = default 16, negative disables)")
		drainWait = flag.Duration("drain", time.Minute, "shutdown drain budget")
		quiet     = flag.Bool("quiet", false, "suppress request logs")
		instance  = flag.String("instance", "", "instance id stamped on responses as X-Emts-Instance (empty omits the header)")

		graphEntries = flag.Int("graph-entries", 0, "interned-graph LRU entries (0 = default 64, negative disables)")
		tableEntries = flag.Int("table-entries", 0, "interned-table LRU entries (0 = default 128, negative disables)")
		cacheShards  = flag.Int("cache-shards", 0, "fitness memo cache shards per run (0 = auto)")
		maxJobs      = flag.Int("max-jobs", 0, "async job store bound (0 = default 256, negative disables /v1/jobs)")
		jobTTL       = flag.Duration("job-ttl", 0, "finished-job retention for polling and SSE replay (0 = default 10m)")
		sseKeepalive = flag.Duration("sse-keepalive", 0, "SSE keep-alive comment period (0 = default 15s)")
		noIntern     = flag.Bool("no-intern", false, "disable graph/table interning (A/B switch)")
		noPool       = flag.Bool("no-pool", false, "disable the shared Mapper pool (A/B switch)")
		noGovernor   = flag.Bool("no-governor", false, "disable the CPU governor (A/B switch)")

		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
		mutexFraction = flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction value (0 disables)")
		blockRate     = flag.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate value in ns (0 disables)")
	)
	flag.Parse()
	var logW io.Writer = os.Stderr
	if *quiet {
		logW = nil
	}
	cfg := server.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		RequestTimeout:   *timeout,
		CacheEntries:     *cache,
		MaxTasks:         *maxTasks,
		MaxIslands:       *maxIsl,
		LogWriter:        logW,
		InstanceID:       *instance,
		GraphEntries:     *graphEntries,
		TableEntries:     *tableEntries,
		CacheShards:      *cacheShards,
		MaxJobs:          *maxJobs,
		JobTTL:           *jobTTL,
		SSEKeepAlive:     *sseKeepalive,
		DisableInterning: *noIntern,
		DisablePooling:   *noPool,
		DisableGovernor:  *noGovernor,
	}
	if *mutexFraction > 0 {
		runtime.SetMutexProfileFraction(*mutexFraction)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}
	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}
	if err := serve(*addr, cfg, *drainWait); err != nil {
		fmt.Fprintln(os.Stderr, "emts-serve:", err)
		os.Exit(1)
	}
}

// servePprof exposes the net/http/pprof handlers on their own listener and
// mux — deliberately not the service mux, so the profiling surface is bound
// to a loopback address while the API faces the network. Failure to listen is
// logged, not fatal: profiling is an operator convenience.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(os.Stderr, "emts-serve: pprof on %s\n", addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "emts-serve: pprof listener:", err)
	}
}

func serve(addr string, cfg server.Config, drainWait time.Duration) error {
	svc := server.New(cfg)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "emts-serve: listening on %s\n", addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err // listener failed before any signal
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "emts-serve: %s, draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	// Drain order: service first (readiness flips, queue drains, workers
	// idle), then the HTTP listener (open connections finish their writes).
	if err := svc.Shutdown(ctx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "emts-serve: drained, bye")
	return nil
}
