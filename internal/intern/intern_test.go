package intern

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"emts/internal/model"
	"emts/internal/platform"
)

// graphJSON builds a small valid PTG in the file format, with an adjustable
// task count so tests can mint distinct graphs.
func graphJSON(n int, name string) []byte {
	type task struct {
		ID    int     `json:"id"`
		Flops float64 `json:"flops"`
		Alpha float64 `json:"alpha"`
	}
	doc := map[string]any{"name": name}
	tasks := make([]task, n)
	for i := range tasks {
		tasks[i] = task{ID: i, Flops: 1e9 + float64(i)*1e8, Alpha: 0.2}
	}
	doc["tasks"] = tasks
	edges := make([][2]int, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{i - 1, i})
	}
	doc["edges"] = edges
	b, err := json.Marshal(doc)
	if err != nil {
		panic(err)
	}
	return b
}

func TestGraphsInternAndStats(t *testing.T) {
	c := NewGraphs(4)
	raw := graphJSON(5, "g")

	e1, hit, err := c.Get(raw)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first Get reported a hit")
	}
	e2, hit, err := c.Get(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second Get missed")
	}
	if e1 != e2 || e1.Graph != e2.Graph {
		t.Fatal("repeat Get did not share the interned entry")
	}
	if e1.Graph.NumTasks() != 5 {
		t.Fatalf("decoded %d tasks, want 5", e1.Graph.NumTasks())
	}
	if len(e1.CanonKey) != 64 {
		t.Fatalf("CanonKey %q is not a sha256 hex digest", e1.CanonKey)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("Stats = (%d, %d), want (1, 1)", hits, misses)
	}
}

// TestGraphsCanonicalConvergence: two spellings of the same graph intern as
// separate raw entries but share the canonical identity.
func TestGraphsCanonicalConvergence(t *testing.T) {
	c := NewGraphs(4)
	raw := graphJSON(4, "g")
	spaced := append([]byte("  "), raw...) // same document, different bytes

	a, _, err := c.Get(raw)
	if err != nil {
		t.Fatal(err)
	}
	b, hit, err := c.Get(spaced)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("different raw bytes reported as a raw-key hit")
	}
	if a.CanonKey != b.CanonKey {
		t.Fatalf("canonical keys differ for equivalent graphs: %s vs %s", a.CanonKey, b.CanonKey)
	}
	if string(a.Canon) != string(b.Canon) {
		t.Fatal("canonical encodings differ for equivalent graphs")
	}
}

func TestGraphsEviction(t *testing.T) {
	c := NewGraphs(2)
	g0, g1, g2 := graphJSON(3, "a"), graphJSON(4, "b"), graphJSON(5, "c")
	for _, raw := range [][]byte{g0, g1, g2} {
		if _, _, err := c.Get(raw); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d after exceeding capacity 2", got)
	}
	// g0 is the LRU victim; re-interning it must miss.
	if _, hit, err := c.Get(g0); err != nil || hit {
		t.Fatalf("evicted entry reported (hit=%v, err=%v), want fresh miss", hit, err)
	}
}

func TestGraphsDecodeErrorNotCached(t *testing.T) {
	c := NewGraphs(2)
	bad := []byte(`{"name":"x","tasks":[{"id":0,"flops":-1,"alpha":0}]}`)
	for i := 0; i < 2; i++ {
		if _, _, err := c.Get(bad); err == nil {
			t.Fatal("invalid graph interned without error")
		}
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("failed decode left %d entries in the cache", got)
	}
}

func TestTablesIntern(t *testing.T) {
	gc := NewGraphs(2)
	entry, _, err := gc.Get(graphJSON(6, "g"))
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTables(2)
	key := TableKey{GraphKey: entry.CanonKey, Model: "synthetic", Cluster: platform.Chti()}
	builds := 0
	build := func() (*model.Table, error) {
		builds++
		return model.NewTable(entry.Graph, model.Synthetic{}, platform.Chti())
	}
	t1, hit, err := tc.Get(key, build)
	if err != nil || hit {
		t.Fatalf("first Get: hit=%v err=%v", hit, err)
	}
	t2, hit, err := tc.Get(key, build)
	if err != nil || !hit {
		t.Fatalf("second Get: hit=%v err=%v", hit, err)
	}
	if t1 != t2 || builds != 1 {
		t.Fatalf("table not shared (builds=%d)", builds)
	}
	// A different model under the same graph is a distinct table.
	key2 := key
	key2.Model = "amdahl"
	if _, hit, err := tc.Get(key2, func() (*model.Table, error) {
		return model.NewTable(entry.Graph, model.Amdahl{}, platform.Chti())
	}); err != nil || hit {
		t.Fatalf("distinct model key: hit=%v err=%v", hit, err)
	}
}

// TestGraphsConcurrent interns the same few graphs from many goroutines
// under -race; all winners of an insert race must converge on one entry.
func TestGraphsConcurrent(t *testing.T) {
	c := NewGraphs(8)
	raws := make([][]byte, 4)
	for i := range raws {
		raws[i] = graphJSON(3+i, fmt.Sprintf("g%d", i))
	}
	var wg sync.WaitGroup
	entries := make([][]*GraphEntry, 8)
	for w := range entries {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			entries[w] = make([]*GraphEntry, len(raws))
			for i := 0; i < 100; i++ {
				for j, raw := range raws {
					e, _, err := c.Get(raw)
					if err != nil {
						t.Error(err)
						return
					}
					entries[w][j] = e
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < len(entries); w++ {
		for j := range raws {
			if entries[w][j] != entries[0][j] {
				t.Fatalf("goroutine %d holds a different interned entry for graph %d", w, j)
			}
		}
	}
}
