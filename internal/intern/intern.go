// Package intern provides content-addressed caches for the two immutable,
// expensive-to-build objects on the serving path: decoded dag.Graphs and
// model execution-time Tables (DESIGN.md §12).
//
// Repeat-structure traffic — the loadgen seed-sweep case, or any client
// scheduling the same PTG under many seeds or algorithms — used to pay JSON
// decode, graph validation, topo/CSR construction, and the V×P model
// evaluation on every request. Both object kinds are deeply immutable after
// construction (dag.Graph documents itself safe for concurrent use; a Table
// is never written after NewTable), so one instance can serve any number of
// concurrent requests. Interning them keyed by content hash makes the warm
// path a map lookup.
//
// Graphs are keyed by the SHA-256 of the raw request bytes — computable
// before any decoding, so a hit skips the decoder entirely. Two spellings of
// the same graph (whitespace, field order) intern separately, but converge at
// the canonical layer: every entry carries the canonical re-encoding and its
// digest, which downstream caches (response cache, table intern) key on.
// Tables are keyed by (canonical graph digest, model name, cluster).
//
// Both caches are bounded LRUs and safe for concurrent use.
package intern

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"
	"sync/atomic"

	"emts/internal/dag"
	"emts/internal/model"
	"emts/internal/platform"
)

// DefaultEntries is the capacity used when a cache is constructed with a
// non-positive bound.
const DefaultEntries = 64

// RawKey is the content key the graph intern derives from raw submitted
// graph bytes: SHA-256 over the bytes as sent, computable without any
// decoding. It is exported so the routing tier (internal/route) can shard
// requests by the exact digest each backend's graph intern will look up —
// cache affinity holds because both sides hash the same bytes the same way.
func RawKey(raw []byte) [sha256.Size]byte {
	return sha256.Sum256(raw)
}

// GraphEntry is one interned graph: the decoded DAG plus its canonical
// encoding, shared by every request that submits the same bytes. All fields
// are read-only after interning.
type GraphEntry struct {
	// Graph is the decoded, validated DAG (safe for concurrent use).
	Graph *dag.Graph
	// Canon is the canonical JSON re-encoding (deterministic task and edge
	// order) — the bytes the response-cache key is computed over. Callers
	// must not modify it.
	Canon []byte
	// CanonKey is hex(SHA-256(Canon)): the canonical identity of the graph,
	// independent of the submitted spelling. Table interning keys on it.
	CanonKey string
}

// Graphs is a bounded LRU of decoded graphs keyed by the SHA-256 of the raw
// submitted bytes.
type Graphs struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	byKey map[[sha256.Size]byte]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type graphItem struct {
	key   [sha256.Size]byte
	entry *GraphEntry
}

// NewGraphs returns a graph intern holding at most capacity entries
// (non-positive selects DefaultEntries).
func NewGraphs(capacity int) *Graphs {
	if capacity <= 0 {
		capacity = DefaultEntries
	}
	return &Graphs{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[[sha256.Size]byte]*list.Element, capacity),
	}
}

// Get returns the interned entry for the raw graph bytes, decoding and
// interning on first sight. The second result reports whether the entry was
// already interned. Decode failures are returned verbatim (and never cached):
// the caller's validation taxonomy is unchanged.
//
// The warm path is lookup — a hash, one mutex hold, one map probe — and is
// kept in its own hotpath-annotated function so schedlint verifies it stays
// allocation-free; intern is the cold decode-and-insert path.
func (c *Graphs) Get(raw []byte) (*GraphEntry, bool, error) {
	key := RawKey(raw)
	if entry, ok := c.lookup(key); ok {
		return entry, true, nil
	}
	return c.intern(key, raw)
}

// lookup probes the cache for key, refreshing the entry's LRU position on a
// hit. This is the entire warm serving path of a repeat-structure request.
//
//schedlint:hotpath
func (c *Graphs) lookup(key [sha256.Size]byte) (*GraphEntry, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*graphItem).entry, true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// intern decodes, canonicalizes, and inserts a first-sighted graph.
func (c *Graphs) intern(key [sha256.Size]byte, raw []byte) (*GraphEntry, bool, error) {
	// Decode and canonicalize outside the lock: this is the expensive part,
	// and concurrent first sightings of the same graph merely race to insert
	// equivalent entries — the re-check below keeps one.
	g, err := dag.UnmarshalGraph(raw)
	if err != nil {
		return nil, false, err
	}
	canon, err := json.Marshal(g)
	if err != nil {
		return nil, false, err
	}
	sum := sha256.Sum256(canon)
	entry := &GraphEntry{Graph: g, Canon: canon, CanonKey: hex.EncodeToString(sum[:])}

	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		// Lost the insert race; adopt the winner so all requests share one
		// graph instance.
		c.ll.MoveToFront(el)
		entry = el.Value.(*graphItem).entry
	} else {
		c.byKey[key] = c.ll.PushFront(&graphItem{key: key, entry: entry})
		for c.ll.Len() > c.cap {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.byKey, oldest.Value.(*graphItem).key)
		}
	}
	c.mu.Unlock()
	return entry, false, nil
}

// Stats reports lookup hits and misses since construction.
func (c *Graphs) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the current number of interned graphs.
func (c *Graphs) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// TableKey identifies an execution-time table: the canonical graph digest
// plus everything NewTable consumes. platform.Cluster is a comparable value
// type, so the struct is directly usable as a map key.
type TableKey struct {
	// GraphKey is GraphEntry.CanonKey — canonical, so two spellings of the
	// same graph share tables.
	GraphKey string
	// Model is the normalized (lowercased) model name.
	Model string
	// Cluster is the resolved platform.
	Cluster platform.Cluster
}

// Tables is a bounded LRU of execution-time tables.
type Tables struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	byKey map[TableKey]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type tableItem struct {
	key TableKey
	tab *model.Table
}

// NewTables returns a table intern holding at most capacity entries
// (non-positive selects DefaultEntries).
func NewTables(capacity int) *Tables {
	if capacity <= 0 {
		capacity = DefaultEntries
	}
	return &Tables{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[TableKey]*list.Element, capacity),
	}
}

// Get returns the interned table for key, calling build to construct it on
// first sight. The second result reports whether the table was already
// interned. Build failures are returned verbatim and never cached. As with
// Graphs.Get, the warm path lives in the hotpath-annotated lookup.
func (c *Tables) Get(key TableKey, build func() (*model.Table, error)) (*model.Table, bool, error) {
	if tab, ok := c.lookup(key); ok {
		return tab, true, nil
	}

	tab, err := c.build(key, build)
	return tab, false, err
}

// lookup probes the cache for key, refreshing the entry's LRU position on a
// hit. A hit skips the V×P model evaluation entirely.
//
//schedlint:hotpath
func (c *Tables) lookup(key TableKey) (*model.Table, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*tableItem).tab, true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// build constructs and inserts a first-sighted table.
func (c *Tables) build(key TableKey, build func() (*model.Table, error)) (*model.Table, error) {
	tab, err := build()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		tab = el.Value.(*tableItem).tab
	} else {
		c.byKey[key] = c.ll.PushFront(&tableItem{key: key, tab: tab})
		for c.ll.Len() > c.cap {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.byKey, oldest.Value.(*tableItem).key)
		}
	}
	c.mu.Unlock()
	return tab, nil
}

// Stats reports lookup hits and misses since construction.
func (c *Tables) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the current number of interned tables.
func (c *Tables) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
