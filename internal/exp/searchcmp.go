package exp

import (
	"fmt"
	"strings"

	"emts/internal/alloc"
	"emts/internal/core"
	"emts/internal/ea"
	"emts/internal/listsched"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/schedule"
	"emts/internal/search"
	"emts/internal/stats"
)

// SearchRow summarizes one optimization method in the search-method
// comparison (the future-work study of Section VI, DESIGN.md A5).
type SearchRow struct {
	Method string
	// RelativeToEMTS summarizes makespan(method) / makespan(EMTS) per
	// instance; > 1 means EMTS found the shorter schedule.
	RelativeToEMTS stats.Summary
}

// SearchComparison is the full study result.
type SearchComparison struct {
	Budget  int
	Cluster string
	Rows    []SearchRow
}

// CompareSearchMethods runs EMTS and the alternative meta-heuristics
// (hill climbing, simulated annealing, random search, and the (μ,λ) comma
// strategy) on every graph of the workload with an equal budget of fitness
// evaluations, all seeded from the MCPA allocation. budget should match an
// EMTS preset for a fair fight: 130 (EMTS5) or 1010 (EMTS10).
func CompareSearchMethods(w Workload, cluster platform.Cluster, modelName string, budget int, seed int64) (*SearchComparison, error) {
	m, err := modelByName(modelName)
	if err != nil {
		return nil, err
	}
	if budget < 10 {
		return nil, fmt.Errorf("exp: budget %d too small", budget)
	}
	// Match the EA shape to the budget: mu + U*lambda == budget.
	params := core.EMTS5(seed)
	if budget >= 1010 {
		params = core.EMTS10(seed)
	}

	ratios := map[string][]float64{}
	methods := search.Methods()
	for _, g := range w.Graphs {
		tab, err := model.NewTable(g, m, cluster)
		if err != nil {
			return nil, err
		}
		emtsRes, err := core.Run(g, tab, params)
		if err != nil {
			return nil, err
		}

		mcpaAlloc, err := alloc.MCPA{}.Allocate(g, tab)
		if err != nil {
			return nil, err
		}
		seeds := []schedule.Allocation{mcpaAlloc}
		// The search methods evaluate sequentially, so one Mapper per
		// instance serves the whole budget from warm arenas.
		mapper, err := listsched.NewMapper(g, tab)
		if err != nil {
			return nil, err
		}
		fitness := func(a schedule.Allocation, _ float64) (float64, error) {
			return mapper.Makespan(a)
		}
		for _, method := range methods {
			res, err := method.Optimize(g.NumTasks(), tab.Procs(), seeds, fitness, budget, seed)
			if err != nil {
				return nil, err
			}
			ratios[method.Name()] = append(ratios[method.Name()], res.Best.Fitness/emtsRes.Makespan)
		}

		// The (μ,λ) comma strategy on the same budget.
		comma := params
		comma.Strategy = ea.Comma
		commaRes, err := core.Run(g, tab, comma)
		if err != nil {
			return nil, err
		}
		ratios["comma-es"] = append(ratios["comma-es"], commaRes.Makespan/emtsRes.Makespan)
	}

	out := &SearchComparison{Budget: budget, Cluster: cluster.Name}
	order := []string{"hillclimb", "anneal", "random-search", "comma-es"}
	for _, name := range order {
		out.Rows = append(out.Rows, SearchRow{
			Method:         name,
			RelativeToEMTS: stats.Summarize(ratios[name]),
		})
	}
	return out, nil
}

// Format renders the comparison table.
func (c *SearchComparison) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Search-method comparison on %s (budget %d fitness evaluations; ratio > 1 means EMTS wins)\n",
		c.Cluster, c.Budget)
	fmt.Fprintf(&sb, "%-14s %10s %12s %6s\n", "method", "ratio", "95% CI", "n")
	for _, r := range c.Rows {
		fmt.Fprintf(&sb, "%-14s %10.3f %12s %6d\n",
			r.Method, r.RelativeToEMTS.Mean, fmt.Sprintf("±%.3f", r.RelativeToEMTS.CI95), r.RelativeToEMTS.N)
	}
	return sb.String()
}
