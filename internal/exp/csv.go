package exp

import (
	"fmt"
	"strings"
)

// CSV exporters: every experiment result renders as a machine-readable table
// so external tooling (R, gnuplot, pandas) can re-plot the paper's figures
// from this reproduction's raw numbers.

// CSV renders the relative-makespan result (Figures 4/5).
func (r *RelMakespanResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("model,emts,workload,baseline,cluster,mean_ratio,ci95,sd,n,min,max\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%s,%g,%g,%g,%d,%g,%g\n",
			r.ModelName, r.EMTS, c.Workload, c.Baseline, c.Cluster,
			c.Ratio.Mean, c.Ratio.CI95, c.Ratio.SD, c.Ratio.N, c.Ratio.Min, c.Ratio.Max)
	}
	return sb.String()
}

// CSV renders the PDGEMM-like curves (Figure 1).
func (r *Figure1Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("procs")
	for _, s := range r.Series {
		fmt.Fprintf(&sb, ",time_%dx%d_s", s.MatrixSize, s.MatrixSize)
	}
	sb.WriteString("\n")
	for p := 1; p <= r.MaxProcs; p++ {
		fmt.Fprintf(&sb, "%d", p)
		for _, s := range r.Series {
			fmt.Fprintf(&sb, ",%g", s.Times[p-1])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CSV renders the mutation-operator densities (Figure 3).
func (r *Figure3Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("adjustment,empirical,analytic\n")
	for c := r.Lo; c <= r.Hi; c++ {
		fmt.Fprintf(&sb, "%d,%g,%g\n", c, r.Empirical[c-r.Lo], r.Analytic[c-r.Lo])
	}
	return sb.String()
}

// CSV renders the run-time table (Section V-B).
func (r *RuntimeResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("ea,workload,cluster,mean_s,sd_s,ci95_s,n\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s,%s,%s,%g,%g,%g,%d\n",
			row.EMTS, row.Workload, row.Cluster,
			row.Seconds.Mean, row.Seconds.SD, row.Seconds.CI95, row.Seconds.N)
	}
	return sb.String()
}

// CSV renders the search-method comparison.
func (c *SearchComparison) CSV() string {
	var sb strings.Builder
	sb.WriteString("cluster,budget,method,mean_ratio,ci95,sd,n\n")
	for _, row := range c.Rows {
		fmt.Fprintf(&sb, "%s,%d,%s,%g,%g,%g,%d\n",
			c.Cluster, c.Budget, row.Method,
			row.RelativeToEMTS.Mean, row.RelativeToEMTS.CI95, row.RelativeToEMTS.SD, row.RelativeToEMTS.N)
	}
	return sb.String()
}
