package exp

import (
	"fmt"
	"strings"
	"time"

	"emts/internal/core"
	"emts/internal/dag"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/stats"
)

// RuntimeRow is one entry of the run-time report of Section V-B: the
// wall-clock time EMTS spends optimizing schedules of one PTG class on one
// platform model.
type RuntimeRow struct {
	EMTS     string
	Workload string
	Cluster  string
	// Seconds summarizes the optimization wall-clock over the instances.
	Seconds stats.Summary
}

// RuntimeResult is the full table.
type RuntimeResult struct {
	ModelName string
	Rows      []RuntimeRow
}

// RuntimeTable measures EMTS5 and EMTS10 optimization times for a small PTG
// class (Strassen) and a large one (irregular n=100) on Chti and Grelon,
// mirroring the numbers quoted in Section V-B's prose. instances bounds the
// number of PTGs measured per class.
//
// The paper's prototype was Python on an Intel Core i5 (EMTS5: 0.45 s–5.5 s,
// EMTS10 on Grelon: 9.6 s–38.1 s) and the authors expected "a reduction of
// the run time by a factor of 10 for an optimized C program"; this Go
// implementation plays that role, so absolute values are expected to be
// roughly two orders of magnitude below the Python numbers while preserving
// the orderings (EMTS10 ≈ 8x EMTS5 in evaluations; larger PTGs and platforms
// cost more).
func RuntimeTable(instances int, seed int64) (*RuntimeResult, error) {
	if instances < 1 {
		return nil, fmt.Errorf("exp: runtime table needs instances >= 1")
	}
	strassen, err := StrassenWorkload(instances, seed)
	if err != nil {
		return nil, err
	}
	irregular, err := IrregularWorkload(100, 1, seed+1000)
	if err != nil {
		return nil, err
	}
	if len(irregular.Graphs) > instances {
		irregular.Graphs = irregular.Graphs[:instances]
	}
	res := &RuntimeResult{ModelName: "synthetic"}
	// Tables are a pure function of (graph, cluster); memoize them so the
	// EMTS5 and EMTS10 sweeps over the same instances don't rebuild each
	// (and table construction stays out of the measured optimization times).
	type tabKey struct {
		g       *dag.Graph
		cluster platform.Cluster
	}
	tabs := make(map[tabKey]*model.Table)
	tableFor := func(g *dag.Graph, cluster platform.Cluster) (*model.Table, error) {
		key := tabKey{g: g, cluster: cluster}
		if tab, ok := tabs[key]; ok {
			return tab, nil
		}
		tab, err := model.NewTable(g, model.Synthetic{}, cluster)
		if err != nil {
			return nil, err
		}
		tabs[key] = tab
		return tab, nil
	}
	for _, emtsName := range []string{"emts5", "emts10"} {
		for _, w := range []Workload{strassen, irregular} {
			for _, cluster := range []platform.Cluster{platform.Chti(), platform.Grelon()} {
				times := make([]float64, 0, len(w.Graphs))
				for _, g := range w.Graphs {
					tab, err := tableFor(g, cluster)
					if err != nil {
						return nil, err
					}
					params, err := emtsParams(emtsName, seed)
					if err != nil {
						return nil, err
					}
					start := time.Now()
					if _, err := core.Run(g, tab, params); err != nil {
						return nil, err
					}
					times = append(times, time.Since(start).Seconds())
				}
				res.Rows = append(res.Rows, RuntimeRow{
					EMTS:     emtsName,
					Workload: w.Name,
					Cluster:  cluster.Name,
					Seconds:  stats.Summarize(times),
				})
			}
		}
	}
	return res, nil
}

// Format renders the table next to the paper's quoted Python numbers.
func (r *RuntimeResult) Format() string {
	paper := map[string]string{
		"emts5/Strassen/chti":           "0.45 s (SD 0.01)",
		"emts5/irregular n=100/chti":    "2.7 s (SD 1.1)",
		"emts5/Strassen/grelon":         "1.3 s (SD 0.07)",
		"emts5/irregular n=100/grelon":  "5.5 s (SD 1.7)",
		"emts10/Strassen/grelon":        "9.6 s (SD 0.5)",
		"emts10/irregular n=100/grelon": "38.1 s (SD 9.5)",
	}
	var sb strings.Builder
	sb.WriteString("EMTS optimization run time (Section V-B; paper numbers are the Python prototype on an i5)\n")
	fmt.Fprintf(&sb, "%-8s %-18s %-8s %14s %12s   %s\n",
		"EA", "workload", "cluster", "mean [s]", "SD [s]", "paper (Python)")
	for _, row := range r.Rows {
		key := row.EMTS + "/" + row.Workload + "/" + row.Cluster
		fmt.Fprintf(&sb, "%-8s %-18s %-8s %14.4f %12.4f   %s\n",
			row.EMTS, row.Workload, row.Cluster, row.Seconds.Mean, row.Seconds.SD, paper[key])
	}
	return sb.String()
}
