// Package exp regenerates the paper's evaluation: every figure of Section V
// and the run-time numbers quoted in its prose. Each experiment returns a
// typed result that renders as a text table mirroring the paper's artifact,
// so paper-vs-measured comparisons (EXPERIMENTS.md) are mechanical.
package exp

import (
	"fmt"

	"emts/internal/dag"
	"emts/internal/daggen"
)

// Workload is a named collection of PTG instances of one class (FFT,
// Strassen, layered, irregular).
type Workload struct {
	// Name labels the class, matching the paper's figure captions
	// ("FFT", "Strassen", "layered n=100", "irregular n=100").
	Name string
	// Graphs holds the instances.
	Graphs []*dag.Graph
}

// FFTWorkload generates perSize instances for each of the paper's four FFT
// sizes (2, 4, 8, 16 input points → 5, 15, 39, 95 tasks). The paper uses
// perSize = 100 (400 FFT PTGs).
func FFTWorkload(perSize int, baseSeed int64) (Workload, error) {
	w := Workload{Name: "FFT"}
	seed := baseSeed
	for _, points := range []int{2, 4, 8, 16} {
		for i := 0; i < perSize; i++ {
			g, err := daggen.FFT(points, daggen.DefaultCosts(), seed)
			if err != nil {
				return Workload{}, err
			}
			w.Graphs = append(w.Graphs, g)
			seed++
		}
	}
	return w, nil
}

// StrassenWorkload generates instances of the Strassen PTG differing only in
// task complexities. The paper uses instances = 100.
func StrassenWorkload(instances int, baseSeed int64) (Workload, error) {
	w := Workload{Name: "Strassen"}
	for i := 0; i < instances; i++ {
		g, err := daggen.Strassen(daggen.DefaultCosts(), baseSeed+int64(i))
		if err != nil {
			return Workload{}, err
		}
		w.Graphs = append(w.Graphs, g)
	}
	return w, nil
}

// shapeParams are the paper's DAGGEN parameter grids (Section IV-C).
var (
	widths       = []float64{0.2, 0.5, 0.8}
	regularities = []float64{0.2, 0.8}
	densities    = []float64{0.2, 0.8}
	jumps        = []int{1, 2, 4}
)

// LayeredWorkload generates layered random PTGs (jump = 0) with n tasks:
// every width × regularity × density combination, seedsPerCombo instances
// each. The paper's figures use n = 100 with 3 seeds per combination
// (36 instances; 108 across all three sizes).
func LayeredWorkload(n, seedsPerCombo int, baseSeed int64) (Workload, error) {
	w := Workload{Name: fmt.Sprintf("layered n=%d", n)}
	seed := baseSeed
	for _, width := range widths {
		for _, reg := range regularities {
			for _, dens := range densities {
				for k := 0; k < seedsPerCombo; k++ {
					g, err := daggen.Random(daggen.RandomConfig{
						N: n, Width: width, Regularity: reg, Density: dens, Jump: 0,
					}, daggen.DefaultCosts(), seed)
					if err != nil {
						return Workload{}, err
					}
					w.Graphs = append(w.Graphs, g)
					seed++
				}
			}
		}
	}
	return w, nil
}

// IrregularWorkload generates irregular random PTGs with n tasks: every
// width × regularity × density × jump∈{1,2,4} combination, seedsPerCombo
// instances each. The paper's figures use n = 100 with 3 seeds per
// combination (108 instances; 324 across all three sizes).
func IrregularWorkload(n, seedsPerCombo int, baseSeed int64) (Workload, error) {
	w := Workload{Name: fmt.Sprintf("irregular n=%d", n)}
	seed := baseSeed
	for _, width := range widths {
		for _, reg := range regularities {
			for _, dens := range densities {
				for _, jump := range jumps {
					for k := 0; k < seedsPerCombo; k++ {
						g, err := daggen.Random(daggen.RandomConfig{
							N: n, Width: width, Regularity: reg, Density: dens, Jump: jump,
						}, daggen.DefaultCosts(), seed)
						if err != nil {
							return Workload{}, err
						}
						w.Graphs = append(w.Graphs, g)
						seed++
					}
				}
			}
		}
	}
	return w, nil
}

// PaperWorkloads builds the four workload classes of Figures 4 and 5. scale
// in ]0, 1] shrinks instance counts proportionally for quick runs: scale = 1
// reproduces the paper's counts for the plotted classes (400 FFT, 100
// Strassen, 36 layered n=100, 108 irregular n=100); scale = 0.1 is a
// smoke-test sweep.
func PaperWorkloads(scale float64, baseSeed int64) ([]Workload, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("exp: scale %g outside ]0, 1]", scale)
	}
	count := func(full int) int {
		c := int(float64(full)*scale + 0.5)
		if c < 1 {
			c = 1
		}
		return c
	}
	fft, err := FFTWorkload(count(100), baseSeed)
	if err != nil {
		return nil, err
	}
	strassen, err := StrassenWorkload(count(100), baseSeed+10_000)
	if err != nil {
		return nil, err
	}
	layered, err := LayeredWorkload(100, count(3), baseSeed+20_000)
	if err != nil {
		return nil, err
	}
	irregular, err := IrregularWorkload(100, count(3), baseSeed+30_000)
	if err != nil {
		return nil, err
	}
	return []Workload{fft, strassen, layered, irregular}, nil
}
