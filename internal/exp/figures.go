package exp

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"emts/internal/core"
	"emts/internal/dag"
	"emts/internal/daggen"
	"emts/internal/ea"
	"emts/internal/listsched"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/schedule"
	"emts/internal/stats"
)

// ---------------------------------------------------------------------------
// Figure 1 — execution time of a PDGEMM-like parallel task vs. processor
// count for two matrix sizes. The paper measured ScaLAPACK PDGEMM on the Cray
// XT4 of LBNL; we have no Cray, so the curve is regenerated from the
// synthetic non-monotonic model (Model 2), which the paper designed to
// "imitate the execution time characteristics shown in Figure 1" — the
// substitution exercises exactly the code path the figure motivates
// (DESIGN.md item 4.13a).
// ---------------------------------------------------------------------------

// Figure1Series is the timing curve for one matrix size.
type Figure1Series struct {
	// MatrixSize is the square-matrix dimension (1024, 2048).
	MatrixSize int
	// Times[p-1] is the predicted execution time on p processors.
	Times []float64
}

// Figure1Result holds both series of Figure 1.
type Figure1Result struct {
	MaxProcs int
	Series   []Figure1Series
}

// Figure1 computes the PDGEMM-like curves for matrix sizes 1024 and 2048 on
// processor counts 1..maxProcs (the paper plots 2..32), using Model 2 with a
// small Amdahl fraction (PDGEMM is highly scalable).
func Figure1(maxProcs int) (*Figure1Result, error) {
	if maxProcs < 2 {
		return nil, fmt.Errorf("exp: figure 1 needs maxProcs >= 2, got %d", maxProcs)
	}
	cluster := platform.Cluster{Name: "xt4-like", Procs: maxProcs, SpeedGFlops: 8}
	res := &Figure1Result{MaxProcs: maxProcs}
	for _, n := range []int{1024, 2048} {
		task := dag.Task{
			Name:  fmt.Sprintf("pdgemm-%d", n),
			Flops: 2 * float64(n) * float64(n) * float64(n), // 2n^3 FLOP for n x n GEMM
			Alpha: 0.02,
			Data:  float64(n) * float64(n),
		}
		s := Figure1Series{MatrixSize: n, Times: make([]float64, maxProcs)}
		for p := 1; p <= maxProcs; p++ {
			s.Times[p-1] = model.Synthetic{}.Time(task, p, cluster)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// NonMonotonic reports whether a series contains at least one increase — the
// property Figure 1 exists to demonstrate.
func (s Figure1Series) NonMonotonic() bool {
	for p := 1; p < len(s.Times); p++ {
		if s.Times[p] > s.Times[p-1] {
			return true
		}
	}
	return false
}

// Format renders the two curves as aligned columns.
func (r *Figure1Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 1 — PDGEMM-like execution time vs. processors (Model 2 substitution)\n")
	sb.WriteString("procs")
	for _, s := range r.Series {
		fmt.Fprintf(&sb, " %14s", fmt.Sprintf("%dx%d [s]", s.MatrixSize, s.MatrixSize))
	}
	sb.WriteString("\n")
	for p := 1; p <= r.MaxProcs; p++ {
		fmt.Fprintf(&sb, "%5d", p)
		for _, s := range r.Series {
			fmt.Fprintf(&sb, " %14.4f", s.Times[p-1])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figure 3 — probability density function of the mutation operator with
// sigma1 = sigma2 = 5 and a = 0.2.
// ---------------------------------------------------------------------------

// Figure3Result compares the empirical distribution of sampled allocation
// adjustments C with the analytic probability mass function.
type Figure3Result struct {
	// Lo and Hi bound the plotted adjustments (paper: -20..20).
	Lo, Hi int
	// Empirical[c-Lo] is the sampled probability of adjustment c.
	Empirical []float64
	// Analytic[c-Lo] is the exact probability of adjustment c.
	Analytic []float64
	// Samples is the number of draws.
	Samples int
	// MaxAbsError is the largest |empirical - analytic| over the range.
	MaxAbsError float64
}

// Figure3 samples the Eq. (1) mutation operator and compares it against the
// exact probability mass function
//
//	P(C = -k) = a   · (Φ(k/σ₁) - Φ((k-1)/σ₁)) · 2
//	P(C = +k) = (1-a) · (Φ(k/σ₂) - Φ((k-1)/σ₂)) · 2,  k >= 1
//
// (|X| has a folded normal distribution, so ⌊|X|⌋ = k-1 with probability
// 2(Φ(k/σ) - Φ((k-1)/σ))).
func Figure3(samples int, seed int64) (*Figure3Result, error) {
	if samples < 1 {
		return nil, fmt.Errorf("exp: figure 3 needs samples >= 1, got %d", samples)
	}
	const lo, hi = -20, 20
	pm := ea.DefaultPaperMutator()
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int, hi-lo+1)
	for i := 0; i < samples; i++ {
		c := pm.Delta(rng)
		if c < lo || c > hi {
			continue // tail mass outside the plotted range
		}
		counts[c-lo]++
	}
	res := &Figure3Result{
		Lo: lo, Hi: hi, Samples: samples,
		Empirical: make([]float64, hi-lo+1),
		Analytic:  make([]float64, hi-lo+1),
	}
	for c := lo; c <= hi; c++ {
		res.Empirical[c-lo] = float64(counts[c-lo]) / float64(samples)
		res.Analytic[c-lo] = mutationPMF(c, pm)
		if d := math.Abs(res.Empirical[c-lo] - res.Analytic[c-lo]); d > res.MaxAbsError {
			res.MaxAbsError = d
		}
	}
	return res, nil
}

// mutationPMF is the exact probability of adjustment c under the operator.
func mutationPMF(c int, pm ea.PaperMutator) float64 {
	if c == 0 {
		return 0
	}
	k := float64(c)
	if c < 0 {
		k = -k
	}
	phi := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
	if c < 0 {
		return pm.A * 2 * (phi(k/pm.Sigma1) - phi((k-1)/pm.Sigma1))
	}
	return (1 - pm.A) * 2 * (phi(k/pm.Sigma2) - phi((k-1)/pm.Sigma2))
}

// Format renders the densities with an ASCII bar per adjustment.
func (r *Figure3Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3 — mutation operator density (σ₁=σ₂=5, a=0.2, %d samples)\n", r.Samples)
	fmt.Fprintf(&sb, "%6s %10s %10s\n", "C", "empirical", "analytic")
	maxP := 0.0
	for _, p := range r.Analytic {
		if p > maxP {
			maxP = p
		}
	}
	for c := r.Lo; c <= r.Hi; c++ {
		bar := ""
		if maxP > 0 {
			bar = strings.Repeat("#", int(r.Empirical[c-r.Lo]/maxP*40+0.5))
		}
		fmt.Fprintf(&sb, "%6d %10.5f %10.5f %s\n", c, r.Empirical[c-r.Lo], r.Analytic[c-r.Lo], bar)
	}
	fmt.Fprintf(&sb, "max |empirical-analytic| = %.5f\n", r.MaxAbsError)
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figure 6 — side-by-side schedules of MCPA and EMTS10 for an irregular
// 100-node PTG on Grelon under Model 2.
// ---------------------------------------------------------------------------

// Figure6Result holds the two schedules of the comparison.
type Figure6Result struct {
	Graph *dag.Graph
	// MCPA and EMTS are the two validated schedules.
	MCPA, EMTS *schedule.Schedule
	// MCPAMakespan, EMTSMakespan, and the utilizations quantify the
	// "poor resource utilization" contrast the paper draws.
	MCPAMakespan, EMTSMakespan       float64
	MCPAUtilization, EMTSUtilization float64
}

// Figure6 schedules one irregular 100-task PTG on Grelon with Model 2 using
// MCPA and EMTS10, reproducing the paper's qualitative comparison: MCPA's
// small allocations under-use the cluster, EMTS stretches the big tasks.
func Figure6(seed int64) (*Figure6Result, error) {
	g, err := daggen.Random(daggen.RandomConfig{
		N: 100, Width: 0.5, Regularity: 0.2, Density: 0.2, Jump: 2,
	}, daggen.DefaultCosts(), seed)
	if err != nil {
		return nil, err
	}
	cluster := platform.Grelon()
	tab, err := model.NewTable(g, model.Synthetic{}, cluster)
	if err != nil {
		return nil, err
	}
	mcpaAlloc, err := baselineMust("mcpa").Allocate(g, tab)
	if err != nil {
		return nil, err
	}
	mcpaSched, err := listsched.Map(g, tab, mcpaAlloc)
	if err != nil {
		return nil, err
	}
	emtsRes, err := core.Run(g, tab, core.EMTS10(seed))
	if err != nil {
		return nil, err
	}
	return &Figure6Result{
		Graph:           g,
		MCPA:            mcpaSched,
		EMTS:            emtsRes.Schedule,
		MCPAMakespan:    mcpaSched.Makespan(),
		EMTSMakespan:    emtsRes.Makespan,
		MCPAUtilization: mcpaSched.Utilization(),
		EMTSUtilization: emtsRes.Schedule.Utilization(),
	}, nil
}

func baselineMust(name string) allocAllocator {
	a, err := baselineByName(name)
	if err != nil {
		panic(err)
	}
	return a
}

// allocAllocator is a local alias to avoid re-importing alloc here.
type allocAllocator = interface {
	Name() string
	Allocate(*dag.Graph, *model.Table) (schedule.Allocation, error)
}

// Format renders both Gantt charts and the headline numbers.
func (r *Figure6Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 6 — MCPA vs EMTS10 schedules (irregular n=100, Grelon, Model 2)\n\n")
	fmt.Fprintf(&sb, "MCPA:   makespan %8.2f s, utilization %5.1f%%\n", r.MCPAMakespan, 100*r.MCPAUtilization)
	fmt.Fprintf(&sb, "EMTS10: makespan %8.2f s, utilization %5.1f%%\n", r.EMTSMakespan, 100*r.EMTSUtilization)
	fmt.Fprintf(&sb, "speedup: %.2fx\n\n", r.MCPAMakespan/r.EMTSMakespan)
	sb.WriteString(r.MCPA.ASCII(100))
	sb.WriteString("\n")
	sb.WriteString(r.EMTS.ASCII(100))
	return sb.String()
}

// ---------------------------------------------------------------------------
// Convergence — not a numbered figure, but the paper's Section V discussion
// of EMTS5 vs EMTS10 implies the best-makespan-per-generation trace; exposed
// for the ablation benches and the examples.
// ---------------------------------------------------------------------------

// Convergence summarizes best-fitness histories across instances: mean best
// makespan (relative to the starting value) after each generation.
type Convergence struct {
	// MeanRelative[u] is mean(history[u] / history[0]) over instances.
	MeanRelative []float64
	Instances    int
}

// ConvergenceTrace runs EMTS on every graph of a workload and aggregates the
// per-generation improvement.
func ConvergenceTrace(w Workload, cluster platform.Cluster, modelName, emtsName string, seed int64) (*Convergence, error) {
	traces, err := ConvergenceTraces(w, cluster, modelName, []string{emtsName}, seed)
	if err != nil {
		return nil, err
	}
	return traces[emtsName], nil
}

// ConvergenceTraces is ConvergenceTrace for several EMTS variants at once,
// building each instance's execution-time table exactly once — the table is a
// pure function of (graph, model, cluster), so the EMTS5 and EMTS10 sweeps
// share it. Results are identical to separate ConvergenceTrace calls.
func ConvergenceTraces(w Workload, cluster platform.Cluster, modelName string, emtsNames []string, seed int64) (map[string]*Convergence, error) {
	m, err := modelByName(modelName)
	if err != nil {
		return nil, err
	}
	if len(w.Graphs) == 0 {
		return nil, fmt.Errorf("exp: empty workload %q", w.Name)
	}
	tabs := make([]*model.Table, len(w.Graphs))
	for i, g := range w.Graphs {
		if tabs[i], err = model.NewTable(g, m, cluster); err != nil {
			return nil, err
		}
	}
	traces := make(map[string]*Convergence, len(emtsNames))
	for _, emtsName := range emtsNames {
		params, err := emtsParams(emtsName, seed)
		if err != nil {
			return nil, err
		}
		var rel [][]float64
		for i, g := range w.Graphs {
			res, err := core.Run(g, tabs[i], params)
			if err != nil {
				return nil, err
			}
			r := make([]float64, len(res.History))
			for j, h := range res.History {
				r[j] = h / res.History[0]
			}
			rel = append(rel, r)
		}
		conv := &Convergence{Instances: len(rel), MeanRelative: make([]float64, len(rel[0]))}
		for u := range conv.MeanRelative {
			col := make([]float64, len(rel))
			for i := range rel {
				col[i] = rel[i][u]
			}
			conv.MeanRelative[u] = stats.Mean(col)
		}
		traces[emtsName] = conv
	}
	return traces, nil
}

// CSV renders a convergence trace: generation, mean best makespan relative
// to the initial population's best.
func (c *Convergence) CSV() string {
	var sb strings.Builder
	sb.WriteString("generation,mean_relative_best\n")
	for u, v := range c.MeanRelative {
		fmt.Fprintf(&sb, "%d,%g\n", u, v)
	}
	return sb.String()
}

// SVG renders convergence traces as a line chart: one polyline per labelled
// trace, y = mean best makespan relative to the seeds (1.0 at generation 0).
func ConvergenceSVG(traces map[string]*Convergence, width, height int) string {
	const margin = 46
	yMin := 1.0
	maxGens := 1
	for _, c := range traces {
		for _, v := range c.MeanRelative {
			if v < yMin {
				yMin = v
			}
		}
		if len(c.MeanRelative) > maxGens {
			maxGens = len(c.MeanRelative)
		}
	}
	yMin -= (1 - yMin) * 0.1
	if yMin >= 1 {
		yMin = 0.9
	}
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)
	xOf := func(u int) float64 { return margin + float64(u)/float64(maxGens-1)*plotW }
	yOf := func(v float64) float64 { return margin + (1-(v-yMin)/(1-yMin))*plotH }

	colors := []string{"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1"}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="%d" y="18" font-family="sans-serif" font-size="13">EMTS convergence: mean best makespan relative to the seeded start</text>`+"\n", margin)
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#999"/>`+"\n",
		margin, margin, plotW, plotH)
	// Sorted labels for deterministic output.
	var labels []string
	for name := range traces {
		labels = append(labels, name)
	}
	sort.Strings(labels)
	for li, name := range labels {
		c := traces[name]
		var pts []string
		for u, v := range c.MeanRelative {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xOf(u), yOf(v)))
		}
		color := colors[li%len(colors)]
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" fill="%s">%s (n=%d)</text>`+"\n",
			margin+8, margin+16+14*li, color, escapeXML(name), c.Instances)
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">1.00</text>`+"\n",
		margin-4, margin+4)
	fmt.Fprintf(&sb, `<text x="%d" y="%.0f" font-family="sans-serif" font-size="10" text-anchor="end">%.2f</text>`+"\n",
		margin-4, margin+plotH, yMin)
	fmt.Fprintf(&sb, `<text x="%.0f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">generation</text>`+"\n",
		margin+plotW/2, height-10)
	sb.WriteString("</svg>\n")
	return sb.String()
}
