package exp

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"emts/internal/alloc"
	"emts/internal/core"
	"emts/internal/dag"
	"emts/internal/listsched"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/stats"
)

// RelMakespanConfig drives the Figure 4 / Figure 5 experiment: for every PTG
// instance, run the baseline heuristics and EMTS on the same execution-time
// table, and aggregate the per-instance relative makespans
// T_baseline / T_EMTS (e.g. T_MCPA / T_EMTS5) per workload class and cluster.
type RelMakespanConfig struct {
	// ModelName selects the execution-time model ("amdahl" for Figure 4,
	// "synthetic" for Figure 5).
	ModelName string
	// EMTS selects the preset: "emts5" or "emts10".
	EMTS string
	// Baselines are the comparison heuristics (paper: MCPA and HCPA).
	Baselines []string
	// Workloads are the PTG classes (PaperWorkloads).
	Workloads []Workload
	// Clusters are the platforms (paper: Chti and Grelon).
	Clusters []platform.Cluster
	// Seed drives EMTS; the same seed is used for every instance, mirroring
	// the paper's "same (random) seed for all experiments".
	Seed int64
	// Workers bounds instance-level parallelism (0 = GOMAXPROCS). EMTS runs
	// single-threaded inside so parallel instances do not oversubscribe.
	Workers int
}

// Cell is one bar of Figures 4/5: the average relative makespan of one
// baseline vs. EMTS for one workload class on one cluster, with its 95%
// confidence interval.
type Cell struct {
	Workload string
	Baseline string
	Cluster  string
	// Ratio summarizes T_baseline / T_EMTS over the class's instances;
	// values > 1 mean EMTS produced the shorter schedule.
	Ratio stats.Summary
}

// RelMakespanResult is a complete Figure 4 or Figure 5 (half).
type RelMakespanResult struct {
	ModelName string
	EMTS      string
	Cells     []Cell
}

// instanceOutcome carries the ratios computed for one PTG on one cluster.
type instanceOutcome struct {
	workload int
	cluster  int
	ratios   map[string]float64 // baseline name -> ratio
	err      error
}

// RelativeMakespan runs the experiment. Instances fan out across a worker
// pool; every (instance, cluster) pair shares a single execution-time table
// across the baselines and EMTS, so all algorithms see identical task times.
func RelativeMakespan(cfg RelMakespanConfig) (*RelMakespanResult, error) {
	if len(cfg.Baselines) == 0 || len(cfg.Workloads) == 0 || len(cfg.Clusters) == 0 {
		return nil, fmt.Errorf("exp: empty baselines, workloads, or clusters")
	}
	m, err := modelByName(cfg.ModelName)
	if err != nil {
		return nil, err
	}
	params, err := emtsParams(cfg.EMTS, cfg.Seed)
	if err != nil {
		return nil, err
	}
	params.Workers = 1 // parallelism lives at the instance level

	// Baselines stay an ordered slice, not a map: runInstance surfaces the
	// FIRST baseline error per instance, and "first" must mean cfg.Baselines
	// order, not map iteration order, for equal configs to fail identically.
	baseliners := make([]namedAllocator, 0, len(cfg.Baselines))
	for _, b := range cfg.Baselines {
		al, err := baselineByName(b)
		if err != nil {
			return nil, err
		}
		baseliners = append(baseliners, namedAllocator{name: b, al: al})
	}

	type job struct {
		workload, cluster int
		g                 *dag.Graph
	}
	var jobs []job
	for wi, w := range cfg.Workloads {
		for ci := range cfg.Clusters {
			for _, g := range w.Graphs {
				jobs = append(jobs, job{wi, ci, g})
			}
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobCh := make(chan job)
	outCh := make(chan instanceOutcome, len(jobs))
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				outCh <- runInstance(j.g, cfg.Clusters[j.cluster], m, baseliners, params, j.workload, j.cluster)
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	close(outCh)

	// Aggregate ratios per (workload, baseline, cluster).
	type key struct {
		workload, cluster int
		baseline          string
	}
	ratios := map[key][]float64{}
	for out := range outCh {
		if out.err != nil {
			return nil, out.err
		}
		for b, r := range out.ratios {
			k := key{out.workload, out.cluster, b}
			ratios[k] = append(ratios[k], r)
		}
	}

	res := &RelMakespanResult{ModelName: cfg.ModelName, EMTS: cfg.EMTS}
	for wi, w := range cfg.Workloads {
		for _, b := range cfg.Baselines {
			for ci, cl := range cfg.Clusters {
				rs := ratios[key{wi, ci, b}]
				res.Cells = append(res.Cells, Cell{
					Workload: w.Name,
					Baseline: b,
					Cluster:  cl.Name,
					Ratio:    stats.Summarize(rs),
				})
			}
		}
	}
	return res, nil
}

// namedAllocator pairs a baseline heuristic with its config name, preserving
// cfg.Baselines order through the per-instance loop.
type namedAllocator struct {
	name string
	al   alloc.Allocator
}

// runInstance computes T_baseline / T_EMTS for one PTG on one cluster.
// Baselines run in slice order so a failing instance reports the same
// baseline's error on every run.
func runInstance(g *dag.Graph, cluster platform.Cluster, m model.Model,
	baseliners []namedAllocator, params core.Params, wi, ci int) instanceOutcome {

	out := instanceOutcome{workload: wi, cluster: ci, ratios: map[string]float64{}}
	tab, err := model.NewTable(g, m, cluster)
	if err != nil {
		out.err = err
		return out
	}
	emtsRes, err := core.Run(g, tab, params)
	if err != nil {
		out.err = fmt.Errorf("exp: EMTS on %s/%s: %w", g.Name(), cluster.Name, err)
		return out
	}
	// One Mapper per instance: every baseline makespan reuses its arenas.
	mapper, err := listsched.NewMapper(g, tab)
	if err != nil {
		out.err = err
		return out
	}
	for _, b := range baseliners {
		a, err := b.al.Allocate(g, tab)
		if err != nil {
			out.err = fmt.Errorf("exp: %s on %s/%s: %w", b.name, g.Name(), cluster.Name, err)
			return out
		}
		ms, err := mapper.Makespan(a)
		if err != nil {
			out.err = err
			return out
		}
		out.ratios[b.name] = ms / emtsRes.Makespan
	}
	return out
}

// Format renders the result as a text table in the layout of Figures 4/5:
// one block per workload class, rows per baseline, columns per cluster.
func (r *RelMakespanResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Average relative makespan vs %s (model %s); > 1.00 means %s wins\n",
		strings.ToUpper(r.EMTS), r.ModelName, strings.ToUpper(r.EMTS))
	byWorkload := map[string][]Cell{}
	var order []string
	for _, c := range r.Cells {
		if _, ok := byWorkload[c.Workload]; !ok {
			order = append(order, c.Workload)
		}
		byWorkload[c.Workload] = append(byWorkload[c.Workload], c)
	}
	for _, w := range order {
		fmt.Fprintf(&sb, "\n%s\n", w)
		fmt.Fprintf(&sb, "  %-10s %-10s %10s %12s %6s\n", "baseline", "cluster", "ratio", "95% CI", "n")
		for _, c := range byWorkload[w] {
			fmt.Fprintf(&sb, "  %-10s %-10s %10.3f %12s %6d\n",
				strings.ToUpper(c.Baseline), c.Cluster, c.Ratio.Mean,
				fmt.Sprintf("±%.3f", c.Ratio.CI95), c.Ratio.N)
		}
	}
	return sb.String()
}

// Lookup returns the cell for (workload, baseline, cluster), or false.
func (r *RelMakespanResult) Lookup(workload, baseline, cluster string) (Cell, bool) {
	for _, c := range r.Cells {
		if c.Workload == workload && c.Baseline == baseline && c.Cluster == cluster {
			return c, true
		}
	}
	return Cell{}, false
}

func modelByName(name string) (model.Model, error) {
	switch strings.ToLower(name) {
	case "amdahl", "model1":
		return model.Amdahl{}, nil
	case "synthetic", "model2":
		return model.Synthetic{}, nil
	case "synthetic-literal":
		return model.SyntheticLiteral{}, nil
	case "synthetic-monotone":
		return model.Monotone{Inner: model.Synthetic{}}, nil
	}
	return nil, fmt.Errorf("exp: unknown model %q", name)
}

func emtsParams(name string, seed int64) (core.Params, error) {
	switch strings.ToLower(name) {
	case "emts5", "":
		return core.EMTS5(seed), nil
	case "emts10":
		return core.EMTS10(seed), nil
	}
	return core.Params{}, fmt.Errorf("exp: unknown EMTS preset %q", name)
}

func baselineByName(name string) (alloc.Allocator, error) {
	switch strings.ToLower(name) {
	case "cpa":
		return alloc.CPA{}, nil
	case "hcpa":
		return alloc.HCPA{}, nil
	case "mcpa":
		return alloc.MCPA{}, nil
	case "mcpa2":
		return alloc.MCPA2{}, nil
	case "delta-cp":
		return alloc.DeltaCP{Delta: 0.9}, nil
	case "one":
		return alloc.OneEach{}, nil
	}
	return nil, fmt.Errorf("exp: unknown baseline %q", name)
}
