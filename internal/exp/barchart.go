package exp

import (
	"fmt"
	"sort"
	"strings"
)

// SVG renders the relative-makespan result as a multi-panel grouped bar
// chart in the layout of the paper's Figures 4 and 5: one panel per workload
// class, one bar group per baseline, one bar per cluster, each bar with its
// 95% confidence-interval whisker. The y axis starts at 1.0 (parity with
// EMTS) like the paper's plots.
func (r *RelMakespanResult) SVG(width, height int) string {
	byWorkload := map[string][]Cell{}
	var order []string
	for _, c := range r.Cells {
		if _, ok := byWorkload[c.Workload]; !ok {
			order = append(order, c.Workload)
		}
		byWorkload[c.Workload] = append(byWorkload[c.Workload], c)
	}
	panels := len(order)
	if panels == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg"/>`
	}

	// Shared y range across panels, padded above the largest mean+CI.
	yMax := 1.0
	for _, c := range r.Cells {
		if v := c.Ratio.Mean + c.Ratio.CI95; v > yMax {
			yMax = v
		}
	}
	yMax = 1.0 + (yMax-1.0)*1.15
	if yMax < 1.1 {
		yMax = 1.1
	}

	const (
		marginTop    = 36
		marginBottom = 44
		marginLeft   = 46
		gapX         = 18
	)
	panelW := (float64(width) - marginLeft - float64(gapX*(panels))) / float64(panels)
	plotH := float64(height - marginTop - marginBottom)

	clusterFill := map[string]string{}
	fills := []string{"#4e79a7", "#f28e2b", "#59a14f", "#e15759"}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="%d" y="18" font-family="sans-serif" font-size="13">Average relative makespan vs %s (model %s), 95%% CI</text>`+"\n",
		marginLeft, strings.ToUpper(r.EMTS), r.ModelName)

	yOf := func(v float64) float64 {
		frac := (v - 1.0) / (yMax - 1.0)
		return marginTop + plotH*(1-frac)
	}

	for pi, wname := range order {
		x0 := float64(marginLeft) + float64(pi)*(panelW+gapX)
		cells := byWorkload[wname]

		// Panel frame, title, and y grid.
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%d" width="%.1f" height="%.1f" fill="none" stroke="#999"/>`+"\n",
			x0, marginTop, panelW, plotH)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x0+panelW/2, float64(marginTop)-6, escapeXML(wname))
		for _, tick := range yTicks(yMax) {
			y := yOf(tick)
			fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
				x0, y, x0+panelW, y)
			if pi == 0 {
				fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="9" text-anchor="end">%.2f</text>`+"\n",
					x0-4, y+3, tick)
			}
		}

		// Group cells by baseline, preserving order.
		groups := map[string][]Cell{}
		var gOrder []string
		for _, c := range cells {
			if _, ok := groups[c.Baseline]; !ok {
				gOrder = append(gOrder, c.Baseline)
			}
			groups[c.Baseline] = append(groups[c.Baseline], c)
		}
		groupW := panelW / float64(len(gOrder))
		for gi, baseline := range gOrder {
			bars := groups[baseline]
			barW := groupW / float64(len(bars)+1)
			for bi, c := range bars {
				if _, ok := clusterFill[c.Cluster]; !ok {
					clusterFill[c.Cluster] = fills[len(clusterFill)%len(fills)]
				}
				x := x0 + float64(gi)*groupW + barW*(0.5+float64(bi))
				yTop := yOf(c.Ratio.Mean)
				fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s %s: %.3f ±%.3f (n=%d)</title></rect>`+"\n",
					x, yTop, barW*0.9, yOf(1.0)-yTop, clusterFill[c.Cluster],
					escapeXML(wname), strings.ToUpper(c.Baseline), c.Cluster,
					c.Ratio.Mean, c.Ratio.CI95, c.Ratio.N)
				// CI whisker.
				cx := x + barW*0.45
				if c.Ratio.CI95 > 0 {
					fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
						cx, yOf(c.Ratio.Mean+c.Ratio.CI95), cx, yOf(c.Ratio.Mean-c.Ratio.CI95))
					for _, yv := range []float64{c.Ratio.Mean + c.Ratio.CI95, c.Ratio.Mean - c.Ratio.CI95} {
						fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
							cx-3, yOf(yv), cx+3, yOf(yv))
					}
				}
			}
			fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
				x0+float64(gi)*groupW+groupW/2, height-marginBottom+14, strings.ToUpper(baseline))
		}
	}

	// Legend.
	lx := float64(marginLeft)
	ly := float64(height - 14)
	for _, cl := range sortedKeys(clusterFill) {
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n", lx, ly-9, clusterFill[cl])
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10">%s</text>`+"\n", lx+13, ly, escapeXML(cl))
		lx += 13 + 7*float64(len(cl)) + 20
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// yTicks picks round tick values for a [1, yMax] axis.
func yTicks(yMax float64) []float64 {
	step := 0.1
	if yMax-1 > 1 {
		step = 0.25
	} else if yMax-1 < 0.3 {
		step = 0.05
	}
	var ticks []float64
	for v := 1.0; v <= yMax+1e-9; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
