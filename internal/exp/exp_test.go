package exp

import (
	"math"
	"strings"
	"testing"

	"emts/internal/platform"
)

func TestFFTWorkloadCounts(t *testing.T) {
	w, err := FFTWorkload(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Graphs) != 8 {
		t.Fatalf("%d graphs, want 8 (2 per size)", len(w.Graphs))
	}
	sizes := map[int]int{}
	for _, g := range w.Graphs {
		sizes[g.NumTasks()]++
	}
	for _, n := range []int{5, 15, 39, 95} {
		if sizes[n] != 2 {
			t.Fatalf("size histogram %v", sizes)
		}
	}
}

func TestStrassenWorkload(t *testing.T) {
	w, err := StrassenWorkload(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Graphs) != 3 {
		t.Fatalf("%d graphs", len(w.Graphs))
	}
	for _, g := range w.Graphs {
		if g.NumTasks() != 23 {
			t.Fatalf("%d tasks", g.NumTasks())
		}
	}
	// Same shape, different costs.
	if w.Graphs[0].Task(3).Flops == w.Graphs[1].Task(3).Flops {
		t.Fatal("instances share costs")
	}
}

func TestLayeredAndIrregularWorkloadCounts(t *testing.T) {
	l, err := LayeredWorkload(100, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Graphs) != 12 { // 3 widths * 2 regs * 2 densities
		t.Fatalf("layered: %d graphs, want 12", len(l.Graphs))
	}
	ir, err := IrregularWorkload(100, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ir.Graphs) != 36 { // 12 combos * 3 jumps
		t.Fatalf("irregular: %d graphs, want 36", len(ir.Graphs))
	}
	for _, g := range append(l.Graphs, ir.Graphs...) {
		if g.NumTasks() != 100 {
			t.Fatalf("%d tasks, want 100", g.NumTasks())
		}
	}
}

func TestPaperWorkloadsFullScaleCounts(t *testing.T) {
	ws, err := PaperWorkloads(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"FFT": 400, "Strassen": 100, "layered n=100": 36, "irregular n=100": 108,
	}
	for _, w := range ws {
		if len(w.Graphs) != want[w.Name] {
			t.Fatalf("%s: %d graphs, want %d", w.Name, len(w.Graphs), want[w.Name])
		}
	}
	if _, err := PaperWorkloads(0, 1); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := PaperWorkloads(1.5, 1); err == nil {
		t.Fatal("scale > 1 accepted")
	}
}

func TestFigure1Shape(t *testing.T) {
	r, err := Figure1(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("%d series", len(r.Series))
	}
	for _, s := range r.Series {
		if !s.NonMonotonic() {
			t.Fatalf("series %d is monotonic — figure 1's point is lost", s.MatrixSize)
		}
		// Spikes at odd processor counts: T(5) > T(4) (1.3 penalty).
		if s.Times[4] <= s.Times[3] {
			t.Fatalf("size %d: no odd-count spike at p=5", s.MatrixSize)
		}
		// Large-p times still well below sequential (the task scales).
		if s.Times[31] >= s.Times[0] {
			t.Fatalf("size %d: no speedup at 32 procs", s.MatrixSize)
		}
	}
	// The larger matrix takes longer at every p.
	for p := 0; p < 32; p++ {
		if r.Series[1].Times[p] <= r.Series[0].Times[p] {
			t.Fatal("2048 curve not above 1024 curve")
		}
	}
	if _, err := Figure1(1); err == nil {
		t.Fatal("maxProcs=1 accepted")
	}
	if out := r.Format(); !strings.Contains(out, "1024x1024") {
		t.Fatal("Format missing series header")
	}
}

func TestFigure3MatchesAnalyticPMF(t *testing.T) {
	r, err := Figure3(200000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxAbsError > 0.005 {
		t.Fatalf("empirical vs analytic error %g", r.MaxAbsError)
	}
	// Asymmetry: stretching (C=+1) four times as likely as shrinking (C=-1).
	p1 := r.Analytic[1-r.Lo]
	m1 := r.Analytic[-1-r.Lo]
	if math.Abs(p1/m1-4) > 1e-9 {
		t.Fatalf("P(+1)/P(-1) = %g, want 4 (a=0.2)", p1/m1)
	}
	// C=0 never happens.
	if r.Analytic[0-r.Lo] != 0 || r.Empirical[0-r.Lo] != 0 {
		t.Fatal("mass at C=0")
	}
	// Total analytic mass within the plotted range is essentially 1
	// (sigma=5, range ±20 covers 4 sigma).
	sum := 0.0
	for _, p := range r.Analytic {
		sum += p
	}
	if sum < 0.999 {
		t.Fatalf("analytic mass %g", sum)
	}
	if _, err := Figure3(0, 1); err == nil {
		t.Fatal("0 samples accepted")
	}
	if out := r.Format(); !strings.Contains(out, "analytic") {
		t.Fatal("Format output broken")
	}
}

func TestRelativeMakespanSmall(t *testing.T) {
	// Scaled-down Figure 5 (top): a few irregular PTGs, both clusters.
	w, err := IrregularWorkload(50, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	w.Graphs = w.Graphs[:6]
	w.Name = "irregular n=50"
	cfg := RelMakespanConfig{
		ModelName: "synthetic",
		EMTS:      "emts5",
		Baselines: []string{"mcpa", "hcpa"},
		Workloads: []Workload{w},
		Clusters:  []platform.Cluster{platform.Chti(), platform.Grelon()},
		Seed:      1,
	}
	res, err := RelativeMakespan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 { // 1 workload * 2 baselines * 2 clusters
		t.Fatalf("%d cells", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Ratio.N != 6 {
			t.Fatalf("cell %v has n=%d", c, c.Ratio.N)
		}
		// EMTS seeds from the baselines, so every ratio is >= 1.
		if c.Ratio.Mean < 1-1e-9 {
			t.Fatalf("ratio %g < 1 for %s/%s", c.Ratio.Mean, c.Baseline, c.Cluster)
		}
	}
	// Paper shape: gains on the larger platform are at least as big.
	chti, _ := res.Lookup("irregular n=50", "mcpa", "chti")
	grelon, _ := res.Lookup("irregular n=50", "mcpa", "grelon")
	if grelon.Ratio.Mean < chti.Ratio.Mean-0.05 {
		t.Fatalf("grelon ratio %g much below chti %g", grelon.Ratio.Mean, chti.Ratio.Mean)
	}
	if out := res.Format(); !strings.Contains(out, "MCPA") {
		t.Fatal("Format broken")
	}
}

func TestRelativeMakespanValidation(t *testing.T) {
	if _, err := RelativeMakespan(RelMakespanConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	w, _ := StrassenWorkload(1, 1)
	base := RelMakespanConfig{
		ModelName: "amdahl", EMTS: "emts5", Baselines: []string{"mcpa"},
		Workloads: []Workload{w}, Clusters: []platform.Cluster{platform.Chti()},
	}
	bad := base
	bad.ModelName = "nope"
	if _, err := RelativeMakespan(bad); err == nil {
		t.Fatal("bad model accepted")
	}
	bad = base
	bad.EMTS = "emts7"
	if _, err := RelativeMakespan(bad); err == nil {
		t.Fatal("bad EMTS preset accepted")
	}
	bad = base
	bad.Baselines = []string{"nope"}
	if _, err := RelativeMakespan(bad); err == nil {
		t.Fatal("bad baseline accepted")
	}
}

func TestFigure6(t *testing.T) {
	r, err := Figure6(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Graph.NumTasks() != 100 {
		t.Fatalf("%d tasks", r.Graph.NumTasks())
	}
	// Paper shape: EMTS10 finds a shorter schedule with better utilization.
	if r.EMTSMakespan > r.MCPAMakespan {
		t.Fatalf("EMTS10 (%g) worse than MCPA (%g)", r.EMTSMakespan, r.MCPAMakespan)
	}
	if r.EMTSUtilization < r.MCPAUtilization {
		t.Logf("note: EMTS utilization %g below MCPA %g (allowed; makespan is the objective)",
			r.EMTSUtilization, r.MCPAUtilization)
	}
	out := r.Format()
	for _, want := range []string{"MCPA", "EMTS10", "makespan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q", want)
		}
	}
}

func TestRuntimeTableSmall(t *testing.T) {
	r, err := RuntimeTable(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 { // 2 EAs * 2 workloads * 2 clusters
		t.Fatalf("%d rows", len(r.Rows))
	}
	byKey := map[string]RuntimeRow{}
	for _, row := range r.Rows {
		byKey[row.EMTS+"/"+row.Workload+"/"+row.Cluster] = row
		if row.Seconds.Mean <= 0 {
			t.Fatalf("non-positive runtime for %+v", row)
		}
	}
	// EMTS10 must cost more than EMTS5 on the same workload/cluster.
	small5 := byKey["emts5/Strassen/grelon"].Seconds.Mean
	small10 := byKey["emts10/Strassen/grelon"].Seconds.Mean
	if small10 <= small5 {
		t.Fatalf("EMTS10 (%g s) not slower than EMTS5 (%g s)", small10, small5)
	}
	if _, err := RuntimeTable(0, 1); err == nil {
		t.Fatal("0 instances accepted")
	}
	if out := r.Format(); !strings.Contains(out, "Python") {
		t.Fatal("Format missing paper reference")
	}
}

func TestConvergenceTrace(t *testing.T) {
	w, err := StrassenWorkload(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := ConvergenceTrace(w, platform.Grelon(), "synthetic", "emts5", 1)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Instances != 3 || len(conv.MeanRelative) != 6 {
		t.Fatalf("conv = %+v", conv)
	}
	if conv.MeanRelative[0] != 1 {
		t.Fatalf("first point %g, want 1", conv.MeanRelative[0])
	}
	for i := 1; i < len(conv.MeanRelative); i++ {
		if conv.MeanRelative[i] > conv.MeanRelative[i-1]+1e-12 {
			t.Fatal("mean relative best increased")
		}
	}
}

func TestRelMakespanSVG(t *testing.T) {
	w, err := StrassenWorkload(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RelativeMakespan(RelMakespanConfig{
		ModelName: "synthetic", EMTS: "emts5", Baselines: []string{"mcpa", "hcpa"},
		Workloads: []Workload{w},
		Clusters:  []platform.Cluster{platform.Chti(), platform.Grelon()},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	svg := res.SVG(800, 400)
	for _, want := range []string{"<svg", "</svg>", "<rect", "MCPA", "chti", "grelon"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Every bar must carry a tooltip with its CI.
	if !strings.Contains(svg, "±") {
		t.Fatal("SVG missing CI annotations")
	}
	empty := &RelMakespanResult{}
	if out := empty.SVG(100, 100); !strings.Contains(out, "svg") {
		t.Fatal("empty SVG broken")
	}
}

func TestConvergenceCSVAndSVG(t *testing.T) {
	w, err := StrassenWorkload(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	c5, err := ConvergenceTrace(w, platform.Grelon(), "synthetic", "emts5", 1)
	if err != nil {
		t.Fatal(err)
	}
	c10, err := ConvergenceTrace(w, platform.Grelon(), "synthetic", "emts10", 1)
	if err != nil {
		t.Fatal(err)
	}
	csv := c5.CSV()
	if !strings.Contains(csv, "generation,mean_relative_best") || strings.Count(csv, "\n") != 7 {
		t.Fatalf("CSV:\n%s", csv)
	}
	svg := ConvergenceSVG(map[string]*Convergence{"emts5": c5, "emts10": c10}, 600, 400)
	for _, want := range []string{"<svg", "polyline", "emts5", "emts10", "generation"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}
