package exp

import (
	"strings"
	"testing"

	"emts/internal/platform"
)

func TestFigure1CSV(t *testing.T) {
	r, err := Figure1(4)
	if err != nil {
		t.Fatal(err)
	}
	out := r.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + p=1..4
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "procs,time_1024x1024_s") {
		t.Fatalf("header %q", lines[0])
	}
}

func TestFigure3CSV(t *testing.T) {
	r, err := Figure3(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := r.CSV()
	if !strings.Contains(out, "adjustment,empirical,analytic") {
		t.Fatal("header missing")
	}
	if got := strings.Count(out, "\n"); got != 42 { // header + 41 adjustments
		t.Fatalf("%d lines", got)
	}
}

func TestRelMakespanCSV(t *testing.T) {
	w, err := StrassenWorkload(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RelativeMakespan(RelMakespanConfig{
		ModelName: "amdahl", EMTS: "emts5", Baselines: []string{"mcpa"},
		Workloads: []Workload{w}, Clusters: []platform.Cluster{platform.Chti()},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.CSV()
	if !strings.Contains(out, "amdahl,emts5,Strassen,mcpa,chti,") {
		t.Fatalf("CSV row missing:\n%s", out)
	}
}

func TestRuntimeCSV(t *testing.T) {
	r, err := RuntimeTable(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := r.CSV()
	if got := strings.Count(out, "\n"); got != 9 { // header + 8 rows
		t.Fatalf("%d lines", got)
	}
}

func TestSearchComparisonCSV(t *testing.T) {
	w, err := StrassenWorkload(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompareSearchMethods(w, platform.Chti(), "synthetic", 130, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := res.CSV()
	for _, m := range []string{"hillclimb", "anneal", "random-search", "comma-es"} {
		if !strings.Contains(out, m) {
			t.Fatalf("CSV missing %s", m)
		}
	}
}
