package exp

import (
	"strings"
	"testing"

	"emts/internal/platform"
)

func TestCompareSearchMethods(t *testing.T) {
	w, err := IrregularWorkload(50, 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	w.Graphs = w.Graphs[:4]
	res, err := CompareSearchMethods(w, platform.Grelon(), "synthetic", 130, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	byName := map[string]SearchRow{}
	for _, r := range res.Rows {
		if r.RelativeToEMTS.N != 4 {
			t.Fatalf("%s has n=%d", r.Method, r.RelativeToEMTS.N)
		}
		if r.RelativeToEMTS.Mean <= 0 {
			t.Fatalf("%s ratio %g", r.Method, r.RelativeToEMTS.Mean)
		}
		byName[r.Method] = r
	}
	// Random search on a 50-task, 120-proc space with 130 samples must be
	// clearly worse than EMTS with MCPA seeding.
	if byName["random-search"].RelativeToEMTS.Mean < 1 {
		t.Fatalf("random search beat EMTS: %+v", byName["random-search"])
	}
	out := res.Format()
	for _, want := range []string{"hillclimb", "anneal", "random-search", "comma-es"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %s", want)
		}
	}
}

func TestCompareSearchMethodsValidation(t *testing.T) {
	w, _ := StrassenWorkload(1, 1)
	if _, err := CompareSearchMethods(w, platform.Chti(), "nope", 130, 1); err == nil {
		t.Fatal("bad model accepted")
	}
	if _, err := CompareSearchMethods(w, platform.Chti(), "amdahl", 1, 1); err == nil {
		t.Fatal("tiny budget accepted")
	}
}
