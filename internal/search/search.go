// Package search implements alternative meta-heuristics for the moldable
// allocation problem on the same encoding and fitness function as EMTS:
// stochastic hill climbing, simulated annealing, and pure random search.
//
// Section VI of the paper names the comparison of "different evolutionary
// methods ... with respect to scheduling performance and speed" as future
// work; these methods (together with the (μ,λ)-strategy in package ea) are
// that comparison's subjects. All methods consume an explicit budget of
// fitness evaluations so they can be compared fairly against EMTS5
// (5 + 5·25 = 130 evaluations) and EMTS10 (10 + 10·100 = 1010).
package search

import (
	"fmt"
	"math"
	"math/rand"

	"emts/internal/ea"
	"emts/internal/schedule"
)

// Result reports the outcome of one optimization run.
type Result struct {
	// Best is the fittest allocation found and its fitness.
	Best ea.Individual
	// Evaluations counts fitness-function calls (== the requested budget
	// unless the method converged or an error occurred).
	Evaluations int
	// Accepted counts accepted moves (method-specific diagnostics).
	Accepted int
}

// Method optimizes an allocation vector of length v for a platform with
// procs processors against a fitness function, spending at most budget
// evaluations. seeds provides starting points (the first is used as the
// incumbent; an empty list starts from a random allocation).
type Method interface {
	// Name identifies the method in reports.
	Name() string
	// Optimize runs the search.
	Optimize(v, procs int, seeds []schedule.Allocation, fitness ea.Evaluator, budget int, seed int64) (*Result, error)
}

// validate checks the shared preconditions and returns the evaluated
// incumbent (best seed by fitness, or a random individual).
func validate(v, procs, budget int, seeds []schedule.Allocation, fitness ea.Evaluator, rng *rand.Rand) (ea.Individual, int, error) {
	if v < 1 || procs < 1 {
		return ea.Individual{}, 0, fmt.Errorf("search: v=%d procs=%d, want >= 1", v, procs)
	}
	if budget < 1 {
		return ea.Individual{}, 0, fmt.Errorf("search: budget %d, want >= 1", budget)
	}
	evals := 0
	var best ea.Individual
	bestSet := false
	for _, s := range seeds {
		if len(s) != v {
			return ea.Individual{}, 0, fmt.Errorf("search: seed has %d alleles, want %d", len(s), v)
		}
		if evals >= budget {
			break
		}
		cand := s.Clone().Clamp(procs)
		f, err := fitness(cand, 0)
		if err != nil {
			return ea.Individual{}, 0, err
		}
		evals++
		if !bestSet || f < best.Fitness {
			best = ea.Individual{Alloc: cand, Fitness: f}
			bestSet = true
		}
	}
	if !bestSet {
		cand := make(schedule.Allocation, v)
		for i := range cand {
			cand[i] = 1 + rng.Intn(procs)
		}
		f, err := fitness(cand, 0)
		if err != nil {
			return ea.Individual{}, 0, err
		}
		evals++
		best = ea.Individual{Alloc: cand, Fitness: f}
	}
	return best, evals, nil
}

// HillClimber is first-improvement stochastic hill climbing: each step
// mutates a few alleles of the incumbent with the paper's mutation operator
// and accepts the neighbour only if it is strictly better.
type HillClimber struct {
	// Mutations is the number of alleles changed per step (default 1).
	Mutations int
	// Mutator generates neighbours; nil means the paper's Eq. (1) operator.
	Mutator ea.Mutator
}

// Name implements Method.
func (HillClimber) Name() string { return "hillclimb" }

// Optimize implements Method.
func (h HillClimber) Optimize(v, procs int, seeds []schedule.Allocation, fitness ea.Evaluator, budget int, seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed))
	cur, evals, err := validate(v, procs, budget, seeds, fitness, rng)
	if err != nil {
		return nil, err
	}
	mut := h.Mutator
	if mut == nil {
		mut = ea.DefaultPaperMutator()
	}
	m := h.Mutations
	if m < 1 {
		m = 1
	}
	res := &Result{Best: cur.Clone(), Evaluations: evals}
	for res.Evaluations < budget {
		cand := cur.Alloc.Clone()
		mut.Mutate(rng, cand, m, procs)
		f, err := fitness(cand, 0)
		if err != nil {
			return nil, err
		}
		res.Evaluations++
		if f < cur.Fitness {
			cur = ea.Individual{Alloc: cand, Fitness: f}
			res.Accepted++
			if f < res.Best.Fitness {
				res.Best = cur.Clone()
			}
		}
	}
	return res, nil
}

// Annealer is simulated annealing with geometric cooling: worse neighbours
// are accepted with probability exp(-Δ/T), where Δ is the relative fitness
// degradation and T cools from T0 to roughly T0·Cooling^budget.
type Annealer struct {
	// T0 is the initial temperature on the relative-degradation scale
	// (default 0.05: a 5% worse neighbour starts ~37% acceptable).
	T0 float64
	// Cooling is the per-evaluation temperature factor (default set so the
	// temperature decays by ~100x across the budget).
	Cooling float64
	// Mutations is the number of alleles changed per step (default 1).
	Mutations int
	// Mutator generates neighbours; nil means the paper's Eq. (1) operator.
	Mutator ea.Mutator
}

// Name implements Method.
func (Annealer) Name() string { return "anneal" }

// Optimize implements Method.
func (a Annealer) Optimize(v, procs int, seeds []schedule.Allocation, fitness ea.Evaluator, budget int, seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed))
	cur, evals, err := validate(v, procs, budget, seeds, fitness, rng)
	if err != nil {
		return nil, err
	}
	mut := a.Mutator
	if mut == nil {
		mut = ea.DefaultPaperMutator()
	}
	m := a.Mutations
	if m < 1 {
		m = 1
	}
	t0 := a.T0
	if t0 <= 0 {
		t0 = 0.05
	}
	cooling := a.Cooling
	if cooling <= 0 || cooling >= 1 {
		// Decay to t0/100 across the remaining budget.
		steps := budget - evals
		if steps < 1 {
			steps = 1
		}
		cooling = math.Pow(0.01, 1/float64(steps))
	}
	res := &Result{Best: cur.Clone(), Evaluations: evals}
	temp := t0
	for res.Evaluations < budget {
		cand := cur.Alloc.Clone()
		mut.Mutate(rng, cand, m, procs)
		f, err := fitness(cand, 0)
		if err != nil {
			return nil, err
		}
		res.Evaluations++
		accept := f < cur.Fitness
		if !accept && cur.Fitness > 0 && temp > 0 {
			delta := (f - cur.Fitness) / cur.Fitness
			accept = rng.Float64() < math.Exp(-delta/temp)
		}
		if accept {
			cur = ea.Individual{Alloc: cand, Fitness: f}
			res.Accepted++
			if f < res.Best.Fitness {
				res.Best = cur.Clone()
			}
		}
		temp *= cooling
	}
	return res, nil
}

// RandomSearch samples uniform random allocations and keeps the best — the
// baseline every informed method must beat.
type RandomSearch struct{}

// Name implements Method.
func (RandomSearch) Name() string { return "random-search" }

// Optimize implements Method.
func (RandomSearch) Optimize(v, procs int, seeds []schedule.Allocation, fitness ea.Evaluator, budget int, seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed))
	best, evals, err := validate(v, procs, budget, seeds, fitness, rng)
	if err != nil {
		return nil, err
	}
	res := &Result{Best: best.Clone(), Evaluations: evals}
	cand := make(schedule.Allocation, v)
	for res.Evaluations < budget {
		for i := range cand {
			cand[i] = 1 + rng.Intn(procs)
		}
		f, err := fitness(cand, 0)
		if err != nil {
			return nil, err
		}
		res.Evaluations++
		if f < res.Best.Fitness {
			res.Best = ea.Individual{Alloc: cand.Clone(), Fitness: f}
			res.Accepted++
		}
	}
	return res, nil
}

// Methods returns the implemented methods with default parameters.
func Methods() []Method {
	return []Method{HillClimber{}, Annealer{}, RandomSearch{}}
}
