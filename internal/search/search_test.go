package search

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"emts/internal/ea"
	"emts/internal/schedule"
)

// sphere is the same synthetic fitness the ea tests use.
func sphere(target schedule.Allocation) ea.Evaluator {
	return func(a schedule.Allocation, _ float64) (float64, error) {
		sum := 0.0
		for i := range a {
			d := float64(a[i] - target[i])
			sum += d * d
		}
		return sum, nil
	}
}

func target(v, procs int, seed int64) schedule.Allocation {
	rng := rand.New(rand.NewSource(seed))
	t := make(schedule.Allocation, v)
	for i := range t {
		t[i] = 1 + rng.Intn(procs)
	}
	return t
}

func TestAllMethodsRespectBudget(t *testing.T) {
	const v, procs, budget = 15, 12, 200
	tgt := target(v, procs, 1)
	for _, m := range Methods() {
		res, err := m.Optimize(v, procs, nil, sphere(tgt), budget, 7)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.Evaluations != budget {
			t.Fatalf("%s: %d evaluations, want %d", m.Name(), res.Evaluations, budget)
		}
		if len(res.Best.Alloc) != v {
			t.Fatalf("%s: result length %d", m.Name(), len(res.Best.Alloc))
		}
		for _, s := range res.Best.Alloc {
			if s < 1 || s > procs {
				t.Fatalf("%s: allele %d out of range", m.Name(), s)
			}
		}
	}
}

func TestAllMethodsImproveOverStart(t *testing.T) {
	const v, procs, budget = 20, 16, 500
	tgt := target(v, procs, 3)
	start := schedule.Ones(v)
	startFit, _ := sphere(tgt)(start, 0)
	for _, m := range Methods() {
		res, err := m.Optimize(v, procs, []schedule.Allocation{start}, sphere(tgt), budget, 11)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.Best.Fitness >= startFit {
			t.Fatalf("%s made no progress: %g vs %g", m.Name(), res.Best.Fitness, startFit)
		}
	}
}

func TestSeedConservedWhenOptimal(t *testing.T) {
	const v, procs, budget = 10, 8, 100
	tgt := target(v, procs, 5)
	for _, m := range Methods() {
		res, err := m.Optimize(v, procs, []schedule.Allocation{tgt.Clone()}, sphere(tgt), budget, 13)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.Best.Fitness != 0 {
			t.Fatalf("%s lost the optimal seed: %g", m.Name(), res.Best.Fitness)
		}
	}
}

func TestHillClimberNeverAcceptsWorse(t *testing.T) {
	// Track the incumbent's fitness through accepted moves by re-running
	// with a probe fitness that records calls; simpler: hill climbing from
	// the optimum must accept nothing.
	const v, procs = 8, 6
	tgt := target(v, procs, 9)
	res, err := HillClimber{}.Optimize(v, procs, []schedule.Allocation{tgt.Clone()}, sphere(tgt), 300, 17)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 {
		t.Fatalf("hill climber accepted %d worse moves from the optimum", res.Accepted)
	}
}

func TestAnnealerAcceptsSomeWorseMoves(t *testing.T) {
	// Makespans are always positive, so model that: fitness = 1 + distance.
	// Seeded at the optimum, every accepted move is a worse move; annealing
	// at a high temperature should take some.
	const v, procs = 8, 6
	tgt := target(v, procs, 21)
	offset := func(a schedule.Allocation, b float64) (float64, error) {
		f, err := sphere(tgt)(a, b)
		return 1 + f, err
	}
	res, err := Annealer{T0: 0.5}.Optimize(v, procs, []schedule.Allocation{tgt.Clone()}, offset, 300, 19)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted == 0 {
		t.Fatal("annealer behaved like a pure hill climber at high temperature")
	}
	if res.Best.Fitness != 1 {
		t.Fatalf("annealer lost the best-ever solution: %g", res.Best.Fitness)
	}
}

func TestMethodsDeterministic(t *testing.T) {
	const v, procs, budget = 12, 10, 150
	tgt := target(v, procs, 23)
	for _, m := range Methods() {
		r1, err := m.Optimize(v, procs, nil, sphere(tgt), budget, 29)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := m.Optimize(v, procs, nil, sphere(tgt), budget, 29)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Best.Fitness != r2.Best.Fitness {
			t.Fatalf("%s not deterministic", m.Name())
		}
	}
}

func TestValidationErrors(t *testing.T) {
	tgt := target(5, 4, 1)
	fit := sphere(tgt)
	for _, m := range Methods() {
		if _, err := m.Optimize(0, 4, nil, fit, 10, 1); err == nil {
			t.Fatalf("%s: v=0 accepted", m.Name())
		}
		if _, err := m.Optimize(5, 0, nil, fit, 10, 1); err == nil {
			t.Fatalf("%s: procs=0 accepted", m.Name())
		}
		if _, err := m.Optimize(5, 4, nil, fit, 0, 1); err == nil {
			t.Fatalf("%s: budget=0 accepted", m.Name())
		}
		if _, err := m.Optimize(5, 4, []schedule.Allocation{schedule.Ones(3)}, fit, 10, 1); err == nil {
			t.Fatalf("%s: short seed accepted", m.Name())
		}
	}
}

func TestFitnessErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	bad := func(schedule.Allocation, float64) (float64, error) { return 0, boom }
	for _, m := range Methods() {
		if _, err := m.Optimize(5, 4, nil, bad, 10, 1); !errors.Is(err, boom) {
			t.Fatalf("%s: err = %v", m.Name(), err)
		}
	}
}

func TestResultAllocInRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := 2 + rng.Intn(20)
		procs := 2 + rng.Intn(20)
		tgt := target(v, procs, seed)
		for _, m := range Methods() {
			res, err := m.Optimize(v, procs, nil, sphere(tgt), 50, seed)
			if err != nil {
				return false
			}
			for _, s := range res.Best.Alloc {
				if s < 1 || s > procs {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
