package jobs

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestStore builds a store on a fake clock with a sweeper period long
// enough that only explicit Sweep calls matter within a test.
func newTestStore(t *testing.T, maxJobs int, ttl time.Duration) (*Store, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	s := NewStore(Config{MaxJobs: maxJobs, TTL: ttl, SweepEvery: time.Hour, Now: clk.Now})
	t.Cleanup(s.Close)
	return s, clk
}

func TestStoreDedupByKey(t *testing.T) {
	s, _ := newTestStore(t, 4, time.Minute)
	_, cancel := context.WithCancel(context.Background())
	defer cancel()
	j1, created, err := s.GetOrCreate("id1", "key1", cancel)
	if err != nil || !created {
		t.Fatalf("first GetOrCreate: created=%v err=%v", created, err)
	}
	j2, created, err := s.GetOrCreate("id1", "key1", cancel)
	if err != nil || created {
		t.Fatalf("resubmit: created=%v err=%v, want dedup", created, err)
	}
	if j1 != j2 {
		t.Fatal("resubmit returned a different job")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestStoreFull(t *testing.T) {
	s, _ := newTestStore(t, 2, time.Minute)
	_, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		if _, _, err := s.GetOrCreate("id"+strconv.Itoa(i), "key"+strconv.Itoa(i), cancel); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.GetOrCreate("id2", "key2", cancel); err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	// A known key still dedups even at the bound.
	if _, created, err := s.GetOrCreate("id0", "key0", cancel); err != nil || created {
		t.Fatalf("dedup at bound: created=%v err=%v", created, err)
	}
}

func TestStoreTTLExpiry(t *testing.T) {
	s, clk := newTestStore(t, 2, time.Minute)
	_, cancel := context.WithCancel(context.Background())
	defer cancel()
	j, _, err := s.GetOrCreate("id1", "key1", cancel)
	if err != nil {
		t.Fatal(err)
	}

	// Running jobs never expire, no matter how old.
	clk.Advance(time.Hour)
	if n := s.Sweep(); n != 0 {
		t.Fatalf("swept %d live jobs", n)
	}

	j.Finish(StateDone, 200, []byte("{}"), []byte("{}"))
	clk.Advance(time.Minute - time.Second)
	if _, ok := s.Get("id1"); !ok {
		t.Fatal("job expired before TTL")
	}
	clk.Advance(2 * time.Second)
	if _, ok := s.Get("id1"); ok {
		t.Fatal("expired job still served")
	}
	if n := s.Sweep(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after sweep, want 0", s.Len())
	}

	// A resubmit after expiry runs fresh.
	j2, created, err := s.GetOrCreate("id1", "key1", cancel)
	if err != nil || !created {
		t.Fatalf("resubmit after expiry: created=%v err=%v", created, err)
	}
	if j2 == j {
		t.Fatal("resubmit after expiry returned the expired job")
	}

	// Expiry also frees capacity for new keys: fill the 2-slot store with
	// terminal jobs, expire them, and admit a fresh key without an explicit
	// Sweep (GetOrCreate sweeps on demand).
	j2.Finish(StateDone, 200, []byte("{}"), []byte("{}"))
	jb, _, err := s.GetOrCreate("idb", "keyb", cancel)
	if err != nil {
		t.Fatal(err)
	}
	jb.Finish(StateDone, 200, []byte("{}"), []byte("{}"))
	clk.Advance(2 * time.Minute)
	if _, created, err := s.GetOrCreate("idc", "keyc", cancel); err != nil || !created {
		t.Fatalf("create after implicit sweep: created=%v err=%v", created, err)
	}
}

func TestStoreCounts(t *testing.T) {
	s, _ := newTestStore(t, 8, time.Minute)
	_, cancel := context.WithCancel(context.Background())
	defer cancel()
	j1, _, _ := s.GetOrCreate("id1", "key1", cancel)
	j2, _, _ := s.GetOrCreate("id2", "key2", cancel)
	s.GetOrCreate("id3", "key3", cancel)
	j1.Start()
	j2.Start()
	j2.Finish(StateCancelledWithResult, 200, []byte("{}"), []byte("{}"))
	got := s.Counts()
	want := map[State]int{
		StateQueued:              1,
		StateRunning:             1,
		StateDone:                0,
		StateFailed:              0,
		StateCancelled:           0,
		StateCancelledWithResult: 1,
	}
	for st, n := range want {
		if got[st] != n {
			t.Errorf("Counts[%s] = %d, want %d", st, got[st], n)
		}
	}
	if len(got) != len(want) {
		t.Errorf("Counts has %d states, want all %d (zero-filled)", len(got), len(want))
	}
}

func TestJobLifecycle(t *testing.T) {
	s, _ := newTestStore(t, 4, time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	j, _, err := s.GetOrCreate("id1", "key1", cancel)
	if err != nil {
		t.Fatal(err)
	}
	if st := j.State(); st != StateQueued {
		t.Fatalf("state = %s, want queued", st)
	}
	j.Start()
	if st := j.State(); st != StateRunning {
		t.Fatalf("state = %s, want running", st)
	}
	j.Start() // idempotent
	j.Publish("generation", []byte(`{"generation":0}`))
	j.Publish("generation", []byte(`{"generation":1}`))
	j.Finish(StateDone, 200, []byte(`{"ok":true}`), []byte(`{"state":"done"}`))
	select {
	case <-j.Done():
	default:
		t.Fatal("Done not closed after Finish")
	}
	// Later transitions are no-ops: the first outcome sticks.
	j.Finish(StateFailed, 500, []byte("nope"), []byte("nope"))
	j.Publish("generation", []byte("late"))
	snap := j.Snapshot()
	if snap.State != StateDone || snap.Code != 200 || string(snap.Body) != `{"ok":true}` {
		t.Fatalf("snapshot after racing Finish: %+v", snap)
	}
	if snap.Events != 3 {
		t.Fatalf("events = %d, want 3 (2 generations + done)", snap.Events)
	}

	evs := j.EventsSince(0)
	if len(evs) != 3 || evs[0].Seq != 1 || evs[2].Seq != 3 || evs[2].Type != "done" {
		t.Fatalf("EventsSince(0) = %+v", evs)
	}
	if got := j.EventsSince(2); len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("EventsSince(2) = %+v", got)
	}
	if got := j.EventsSince(3); got != nil {
		t.Fatalf("EventsSince(3) = %+v, want nil", got)
	}

	// Cancel after terminal is harmless (the context is long dead).
	j.Cancel()
	<-ctx.Done()
}

func TestSubscribeWakeup(t *testing.T) {
	s, _ := newTestStore(t, 4, time.Minute)
	_, cancel := context.WithCancel(context.Background())
	defer cancel()
	j, _, _ := s.GetOrCreate("id1", "key1", cancel)

	wake, unsub := j.Subscribe()
	defer unsub()
	// The channel is primed: a subscriber always checks the log once.
	select {
	case <-wake:
	default:
		t.Fatal("subscribe channel not primed")
	}
	j.Publish("generation", []byte("{}"))
	select {
	case <-wake:
	default:
		t.Fatal("no wake-up after Publish")
	}
	if got := len(j.EventsSince(0)); got != 1 {
		t.Fatalf("events = %d, want 1", got)
	}
	if n := j.Subscribers(); n != 1 {
		t.Fatalf("Subscribers = %d, want 1", n)
	}
	unsub()
	if n := j.Subscribers(); n != 0 {
		t.Fatalf("Subscribers after unsubscribe = %d, want 0", n)
	}
}

// TestConcurrentSubscribers is the -race stress of the one-publisher /
// many-subscriber protocol: every subscriber must observe the full event log
// in order, with no drops, while the publisher runs flat out.
func TestConcurrentSubscribers(t *testing.T) {
	s, _ := newTestStore(t, 4, time.Minute)
	_, cancel := context.WithCancel(context.Background())
	defer cancel()
	j, _, _ := s.GetOrCreate("id1", "key1", cancel)

	const subscribers = 8
	const events = 200

	var wg sync.WaitGroup
	errs := make(chan error, subscribers)
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wake, unsub := j.Subscribe()
			defer unsub()
			after := 0
			for range wake {
				for _, ev := range j.EventsSince(after) {
					if ev.Seq != after+1 {
						errs <- fmt.Errorf("gap: seq %d after %d", ev.Seq, after)
						return
					}
					after = ev.Seq
					if ev.Type == "done" {
						if after != events+1 {
							errs <- fmt.Errorf("done at seq %d, want %d", after, events+1)
						}
						return
					}
				}
			}
		}()
	}

	go func() {
		j.Start()
		for i := 0; i < events; i++ {
			j.Publish("generation", []byte(`{}`))
		}
		j.Finish(StateDone, 200, []byte(`{}`), []byte(`{}`))
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestStoreCloseCancelsLiveJobs(t *testing.T) {
	clk := newFakeClock()
	s := NewStore(Config{MaxJobs: 4, TTL: time.Minute, SweepEvery: time.Hour, Now: clk.Now})
	ctx, cancel := context.WithCancel(context.Background())
	if _, _, err := s.GetOrCreate("id1", "key1", cancel); err != nil {
		t.Fatal(err)
	}
	s.Close()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("Close did not cancel the live job's context")
	}
}
