// Package jobs implements the in-memory async job subsystem behind the
// server's /v1/jobs API (DESIGN.md §16): a bounded, TTL-swept store of
// schedule jobs keyed for idempotency by the canonical request digest, each
// job carrying an append-only progress-event log that Server-Sent-Events
// subscribers replay byte-identically.
//
// The package is deliberately transport-free: it knows nothing about HTTP,
// SSE framing, or the EA. The server renders each event's payload exactly
// once (at publish time) and stores the bytes here, which is what makes a
// late subscriber's replay byte-stable — there is no re-marshalling path.
//
// Concurrency model: one publisher (the worker goroutine running the EA via
// the OnGeneration observer, then the finalizer) and any number of
// subscribers. Subscribers do not receive events over channels — they hold a
// coalescing wake-up channel and pull new events themselves via EventsSince,
// so a slow SSE client can never drop an event or apply backpressure to the
// EA's generation loop.
package jobs

import (
	"context"
	"errors"
	"sync"
	"time"
)

// State is a job's position in the lifecycle state machine:
//
//	queued ──► running ──► done
//	   │          │    ├──► failed
//	   │          │    └──► cancelled-with-result
//	   └──────────┴───────► cancelled
//
// Terminal states (done, failed, cancelled, cancelled-with-result) are
// never left; the TTL sweeper only removes terminal jobs.
type State string

const (
	// StateQueued: admitted to the store, waiting for a worker slot.
	StateQueued State = "queued"
	// StateRunning: a worker is executing the schedule run.
	StateRunning State = "running"
	// StateDone: completed normally; Result holds the response body, which
	// is byte-identical to the synchronous /v1/schedule answer.
	StateDone State = "done"
	// StateFailed: the run failed; Result holds the error body.
	StateFailed State = "failed"
	// StateCancelled: cancelled before any generation completed — no
	// incumbent to hand out.
	StateCancelled State = "cancelled"
	// StateCancelledWithResult: cancelled mid-run with the incumbent
	// schedule snapshotted as a first-class anytime answer (the (μ+λ)
	// plus-strategy is incumbent-monotone, so every intermediate best is a
	// valid schedule).
	StateCancelledWithResult State = "cancelled-with-result"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateCancelledWithResult:
		return true
	}
	return false
}

// Event is one progress event of a job: an SSE frame minus the wire framing.
// Data is rendered exactly once by the publisher and never mutated, so
// replaying the log to a late or resuming subscriber is byte-stable.
type Event struct {
	// Seq is the 1-based sequence number, used as the SSE event id and as
	// the Last-Event-ID resume cursor.
	Seq int
	// Type is the SSE event name ("generation" or "done").
	Type string
	// Data is the UTF-8 JSON payload (no trailing newline).
	Data []byte
}

// ErrFull reports that the store's MaxJobs bound is reached and no expired
// job could be evicted; the server maps it to 429 like queue admission.
var ErrFull = errors.New("jobs: store full")

// Job is one asynchronous schedule run. All exported methods are safe for
// concurrent use.
type Job struct {
	// ID is the public job identifier: "<graph-digest>-<canonical-digest>"
	// in hex. The leading graph digest is what the router's affinity
	// hashing recovers from /v1/jobs/{id} paths.
	ID string
	// Key is the canonical request digest (graph+cluster+model+algorithm+
	// seed), the idempotency key: resubmitting an equivalent request
	// returns this job instead of creating a duplicate.
	Key string

	now    func() time.Time
	cancel context.CancelFunc

	mu       sync.Mutex
	state    State
	code     int
	body     []byte
	events   []Event
	subs     map[chan struct{}]struct{}
	done     chan struct{}
	created  time.Time
	started  time.Time
	finished time.Time
}

// Snapshot is a point-in-time copy of a job's observable state.
type Snapshot struct {
	ID    string
	Key   string
	State State
	// Code and Body are the final HTTP status and response body; zero/nil
	// until the job reaches a terminal state.
	Code int
	Body []byte
	// Events is the number of progress events published so far.
	Events int
	// Created, Started, Finished are the lifecycle timestamps; Started and
	// Finished are zero until the respective transition.
	Created, Started, Finished time.Time
}

// Snapshot returns the job's current observable state. Body aliases the
// stored result bytes; callers must not mutate it.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:       j.ID,
		Key:      j.Key,
		State:    j.state,
		Code:     j.code,
		Body:     j.body,
		Events:   len(j.events),
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cooperative cancellation of the job's run context. The
// job does not transition here — the worker observes the context at its next
// generation boundary and the finalizer records the outcome (cancelled, or
// cancelled-with-result when an incumbent exists).
func (j *Job) Cancel() { j.cancel() }

// Start transitions queued → running. It is a no-op if the job already left
// the queued state (e.g. finalized as cancelled while still queued).
func (j *Job) Start() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return
	}
	j.state = StateRunning
	j.started = j.now()
}

// Publish appends one progress event (rendering is the caller's job; data
// must not be mutated afterwards) and wakes every subscriber. Events
// published after the job reached a terminal state are dropped.
func (j *Job) Publish(typ string, data []byte) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.events = append(j.events, Event{Seq: len(j.events) + 1, Type: typ, Data: data})
	j.notifyLocked()
	j.mu.Unlock()
}

// Finish transitions the job to a terminal state, records the final
// response, appends the terminal "done" event (carrying eventData, rendered
// by the caller), closes Done, and wakes every subscriber. Later Finish
// calls are no-ops, so racing finalizers (e.g. cancel-while-completing) keep
// the first outcome.
func (j *Job) Finish(state State, code int, body []byte, eventData []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.code = code
	j.body = body
	j.finished = j.now()
	j.events = append(j.events, Event{Seq: len(j.events) + 1, Type: "done", Data: eventData})
	j.notifyLocked()
	close(j.done)
}

// notifyLocked wakes every subscriber with a coalescing, non-blocking send;
// j.mu must be held. A subscriber that has not drained its previous wake-up
// keeps the one pending token — it will pull all new events on its next
// EventsSince call anyway.
func (j *Job) notifyLocked() {
	for ch := range j.subs { //schedlint:allow mapiterorder -- wake-up order is irrelevant: subscribers pull events themselves, in Seq order
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// Subscribe registers a coalescing wake-up channel: it receives (at least)
// one token after every Publish/Finish. The caller pulls the actual events
// with EventsSince and must call the returned cancel function when done.
func (j *Job) Subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = make(map[chan struct{}]struct{})
	}
	j.subs[ch] = struct{}{}
	// Prime the channel so a subscriber that raced a Publish (or attached
	// to an already-terminal job) checks the log once before blocking.
	//schedlint:allow lockscope -- non-blocking send on a cap-1 channel (default case): nothing can block while j.mu is held
	select {
	case ch <- struct{}{}:
	default:
	}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// Subscribers returns the number of registered subscribers.
func (j *Job) Subscribers() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.subs)
}

// EventsSince returns a copy of the event log entries with Seq > after
// (after = 0 returns everything). The Data bytes are shared, immutable by
// contract.
func (j *Job) EventsSince(after int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if after < 0 {
		after = 0
	}
	if after >= len(j.events) {
		return nil
	}
	out := make([]Event, len(j.events)-after)
	copy(out, j.events[after:])
	return out
}

// Config parametrizes a Store. The zero value picks the defaults below.
type Config struct {
	// MaxJobs bounds the number of jobs held at once (queued, running, and
	// terminal-awaiting-sweep all count). 0 means 256.
	MaxJobs int
	// TTL is how long a terminal job's result and event log stay available
	// for polling and SSE replay after it finishes. 0 means 10 minutes.
	TTL time.Duration
	// SweepEvery is the sweeper goroutine's period. 0 means TTL/4, clamped
	// to [1s, 1m].
	SweepEvery time.Duration
	// Now supplies the clock; nil means time.Now. Tests inject a fake clock
	// to exercise TTL expiry deterministically.
	Now func() time.Time
}

// Store is a bounded, TTL-swept collection of jobs with idempotency-key
// dedup. All methods are safe for concurrent use.
type Store struct {
	cfg Config

	mu    sync.Mutex
	byID  map[string]*Job
	byKey map[string]*Job

	stop     chan struct{}
	stopOnce sync.Once
	swept    sync.WaitGroup
}

// NewStore creates a store and starts its background sweeper.
func NewStore(cfg Config) *Store {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 256
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 10 * time.Minute
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = cfg.TTL / 4
		if cfg.SweepEvery < time.Second {
			cfg.SweepEvery = time.Second
		}
		if cfg.SweepEvery > time.Minute {
			cfg.SweepEvery = time.Minute
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Store{
		cfg:   cfg,
		byID:  make(map[string]*Job),
		byKey: make(map[string]*Job),
		stop:  make(chan struct{}),
	}
	s.swept.Add(1)
	go s.sweeper()
	return s
}

// Close stops the sweeper and cancels every non-terminal job so their
// workers unwind. It does not wait for the jobs to finish — the server's
// drain logic owns that.
func (s *Store) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.swept.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.byID { //schedlint:allow mapiterorder -- cancellation fan-out, order-free
		j.cancel()
	}
}

func (s *Store) sweeper() {
	defer s.swept.Done()
	t := time.NewTicker(s.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Sweep()
		}
	}
}

// GetOrCreate returns the job registered under the idempotency key, or
// creates one with the given id and cancel function. created reports
// whether a new job was made; ErrFull when the store is at MaxJobs and the
// key is new. An expired terminal job under the same key is replaced, not
// returned — a resubmit after TTL runs fresh.
func (s *Store) GetOrCreate(id, key string, cancel context.CancelFunc) (j *Job, created bool, err error) {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.byKey[key]; ok && !s.expiredLocked(j, now) {
		return j, false, nil
	}
	s.sweepLocked(now)
	if len(s.byID) >= s.cfg.MaxJobs {
		return nil, false, ErrFull
	}
	j = &Job{
		ID:      id,
		Key:     key,
		now:     s.cfg.Now,
		cancel:  cancel,
		state:   StateQueued,
		done:    make(chan struct{}),
		created: now,
	}
	s.byID[id] = j
	s.byKey[key] = j
	return j, true, nil
}

// Get returns the job with the given id, if present and unexpired.
func (s *Store) Get(id string) (*Job, bool) {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok || s.expiredLocked(j, now) {
		return nil, false
	}
	return j, true
}

// Remove deletes the job regardless of state. The admission path uses it to
// roll back a job whose worker-queue enqueue was refused.
func (s *Store) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.byID[id]; ok {
		delete(s.byID, j.ID)
		delete(s.byKey, j.Key)
	}
}

// Len returns the number of stored jobs (all states).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// Counts returns the number of stored jobs per lifecycle state, always
// including every state (zero-valued) so metrics gauges reset cleanly.
func (s *Store) Counts() map[State]int {
	out := map[State]int{
		StateQueued:              0,
		StateRunning:             0,
		StateDone:                0,
		StateFailed:              0,
		StateCancelled:           0,
		StateCancelledWithResult: 0,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.byID { //schedlint:allow mapiterorder -- counting, order-free
		out[j.State()]++
	}
	return out
}

// Sweep removes terminal jobs whose TTL elapsed and returns how many were
// removed. The background sweeper calls it periodically; tests call it
// directly against an injected clock.
func (s *Store) Sweep() int {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweepLocked(now)
}

func (s *Store) sweepLocked(now time.Time) int {
	n := 0
	for id, j := range s.byID { //schedlint:allow mapiterorder -- expiry is a per-job predicate, removal order irrelevant
		if s.expiredLocked(j, now) {
			delete(s.byID, id)
			delete(s.byKey, j.Key)
			n++
		}
	}
	return n
}

// expiredLocked reports whether j is terminal and past its retention TTL.
func (s *Store) expiredLocked(j *Job, now time.Time) bool {
	snap := j.Snapshot()
	return snap.State.Terminal() && now.Sub(snap.Finished) >= s.cfg.TTL
}
