// Package stats provides the small statistical toolkit the experiment
// harness needs: sample summaries with 95% Student-t confidence intervals
// (every bar of Figures 4 and 5 carries one) and histograms/empirical
// densities (Figure 3).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample: size, mean, sample standard deviation, and the
// half-width of the two-sided 95% confidence interval of the mean.
type Summary struct {
	N    int
	Mean float64
	SD   float64
	// CI95 is the half-width h such that [Mean-h, Mean+h] is the 95%
	// confidence interval; 0 for N < 2.
	CI95 float64
	Min  float64
	Max  float64
}

// Summarize computes the summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.SD = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = TQuantile(0.975, s.N-1) * s.SD / math.Sqrt(float64(s.N))
	return s
}

// String formats the summary as "mean ± ci (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95, s.N)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for n < 2).
func StdDev(xs []float64) float64 { return Summarize(xs).SD }

// Median returns the sample median (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// NormQuantile returns the quantile function (inverse CDF) of the standard
// normal distribution, using Acklam's rational approximation (relative error
// below 1.15e-9 over (0, 1)).
func NormQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// TQuantile returns the quantile function of Student's t distribution with
// df degrees of freedom. A Cornish-Fisher expansion around the normal
// quantile (Abramowitz & Stegun 26.7.5) provides the initial guess, which is
// polished with Newton steps against the exact CDF (regularized incomplete
// beta function); df 1 and 2 use exact closed forms.
func TQuantile(p float64, df int) float64 {
	if df < 1 {
		return math.NaN()
	}
	if p == 0.5 {
		return 0
	}
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	switch df {
	case 1:
		return math.Tan(math.Pi * (p - 0.5))
	case 2:
		a := 4 * p * (1 - p)
		return 2 * (p - 0.5) * math.Sqrt(2/a)
	}
	z := NormQuantile(p)
	n := float64(df)
	z3 := z * z * z
	z5 := z3 * z * z
	z7 := z5 * z * z
	z9 := z7 * z * z
	t := z +
		(z3+z)/(4*n) +
		(5*z5+16*z3+3*z)/(96*n*n) +
		(3*z7+19*z5+17*z3-15*z)/(384*n*n*n) +
		(79*z9+776*z7+1482*z5-1920*z3-945*z)/(92160*n*n*n*n)
	// Newton refinement: solve TCDF(t) = p. The density is strictly positive,
	// so a handful of steps converges from the already-close expansion.
	for i := 0; i < 8; i++ {
		f := TCDF(t, df) - p
		d := tPDF(t, n)
		if d == 0 {
			break
		}
		step := f / d
		t -= step
		if math.Abs(step) < 1e-12*(1+math.Abs(t)) {
			break
		}
	}
	return t
}

// TCDF returns the cumulative distribution function of Student's t
// distribution with df degrees of freedom, via the regularized incomplete
// beta function.
func TCDF(t float64, df int) float64 {
	n := float64(df)
	if t == 0 {
		return 0.5
	}
	x := n / (n + t*t)
	ib := 0.5 * RegIncBeta(n/2, 0.5, x)
	if t > 0 {
		return 1 - ib
	}
	return ib
}

// tPDF is the density of the t distribution with n degrees of freedom.
func tPDF(t, n float64) float64 {
	lg1, _ := math.Lgamma((n + 1) / 2)
	lg2, _ := math.Lgamma(n / 2)
	logC := lg1 - lg2 - 0.5*math.Log(n*math.Pi)
	return math.Exp(logC - (n+1)/2*math.Log1p(t*t/n))
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Lentz's method, as in Numerical
// Recipes), valid for a, b > 0 and x in [0, 1].
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lga, _ := math.Lgamma(a + b)
	lgb, _ := math.Lgamma(a)
	lgc, _ := math.Lgamma(b)
	front := math.Exp(lga - lgb - lgc + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction of the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpMin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Histogram bins samples into equal-width buckets over [lo, hi); samples
// outside the range are clamped into the edge buckets.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram creates a histogram with the given bucket count.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram range [%g, %g) empty", lo, hi)
	}
	if buckets < 1 {
		return nil, fmt.Errorf("stats: %d buckets, want >= 1", buckets)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.Total++
}

// Density returns the empirical probability density of bucket i (count
// normalized by total mass and bucket width).
func (h *Histogram) Density(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.Total) * width)
}

// BucketCenter returns the midpoint of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}
