package stats

import "math"

// This file holds the repo's designated epsilon-comparison helpers. The
// floateq analyzer (internal/lint/floateq, DESIGN.md §9) flags every direct
// == / != between floating-point variables elsewhere in the tree; code that
// genuinely wants tolerant comparison routes through these functions, and
// code that genuinely wants exact comparison (sort tie-breaks, identity
// short-circuits) carries an inline //schedlint:allow with its reason.
//
// Exact comparisons below are intentional — they classify infinities, NaNs,
// and exact zeros before a tolerance applies — so .schedlint.conf exempts
// this one file.

// DefaultEpsilon is the relative tolerance used by ApproxEqual. Makespans
// are sums of O(V) IEEE-754 products; 1e-9 absorbs the accumulated rounding
// of any realistic PTG while staying far below meaningful time differences.
const DefaultEpsilon = 1e-9

// ApproxEqual reports whether a and b are equal within DefaultEpsilon
// relative tolerance (absolute near zero).
func ApproxEqual(a, b float64) bool {
	return ApproxEqualEps(a, b, DefaultEpsilon)
}

// ApproxEqualEps reports whether a and b are equal within eps. The tolerance
// is relative to the larger magnitude, falling back to an absolute tolerance
// when both values are within eps of zero. NaN never compares equal;
// infinities compare equal only to themselves.
func ApproxEqualEps(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { // covers equal infinities, signed zeros, exact hits
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale <= eps {
		return diff <= eps
	}
	return diff <= eps*scale
}

// ApproxZero reports whether x is within DefaultEpsilon of zero.
func ApproxZero(x float64) bool {
	return math.Abs(x) <= DefaultEpsilon
}

// ApproxLessOrEqual reports whether a <= b up to DefaultEpsilon relative
// tolerance — useful for asserting "no worse than" on computed makespans.
func ApproxLessOrEqual(a, b float64) bool {
	return a <= b || ApproxEqual(a, b)
}
