package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("N=%d mean=%g", s.N, s.Mean)
	}
	// Sample SD of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.SD-want) > 1e-12 {
		t.Fatalf("SD = %g, want %g", s.SD, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
	if s.CI95 <= 0 {
		t.Fatalf("CI95 = %g", s.CI95)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty: %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.SD != 0 || s.CI95 != 0 {
		t.Fatalf("singleton: %+v", s)
	}
}

func TestCI95KnownValue(t *testing.T) {
	// n=4, sd=2: half-width = t(0.975,3)*2/sqrt(4) = 3.1824*1 = 3.1824.
	s := Summarize([]float64{-2, 0, 0, 2}) // mean 0, sd sqrt(8/3)
	sd := math.Sqrt(8.0 / 3.0)
	want := 3.182446 * sd / 2
	if math.Abs(s.CI95-want) > 1e-3 {
		t.Fatalf("CI95 = %g, want %g", s.CI95, want)
	}
}

func TestMeanMedianStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	if Mean(xs) != 22 {
		t.Fatalf("Mean = %g", Mean(xs))
	}
	if Median(xs) != 3 {
		t.Fatalf("Median = %g", Median(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median")
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice helpers")
	}
}

func TestNormQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.995, 2.575829},
		{0.84134, 0.99998}, // ~Phi(1)
	}
	for _, c := range cases {
		if got := NormQuantile(c.p); math.Abs(got-c.z) > 1e-4 {
			t.Errorf("NormQuantile(%g) = %g, want %g", c.p, got, c.z)
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Fatal("boundary quantiles")
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	// Phi(NormQuantile(p)) == p, using the erf-based CDF as reference.
	f := func(raw float64) bool {
		p := 0.001 + 0.998*math.Abs(math.Mod(raw, 1))
		z := NormQuantile(p)
		cdf := 0.5 * (1 + math.Erf(z/math.Sqrt2))
		return math.Abs(cdf-p) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p    float64
		df   int
		want float64
	}{
		{0.975, 1, 12.7062},
		{0.975, 2, 4.30265},
		{0.975, 4, 2.77645},
		{0.975, 9, 2.26216},
		{0.975, 29, 2.04523},
		{0.975, 99, 1.98422},
		{0.95, 9, 1.83311},
		{0.5, 7, 0},
	}
	for _, c := range cases {
		if got := TQuantile(c.p, c.df); math.Abs(got-c.want) > 5e-3 {
			t.Errorf("TQuantile(%g, %d) = %g, want %g", c.p, c.df, got, c.want)
		}
	}
	if !math.IsNaN(TQuantile(0.975, 0)) {
		t.Fatal("df=0 must be NaN")
	}
}

func TestTQuantileSymmetric(t *testing.T) {
	for _, df := range []int{1, 2, 3, 5, 10, 50} {
		for _, p := range []float64{0.6, 0.8, 0.95, 0.99} {
			a, b := TQuantile(p, df), TQuantile(1-p, df)
			if math.Abs(a+b) > 1e-9*math.Abs(a)+1e-9 {
				t.Fatalf("asymmetric: Q(%g,%d)=%g, Q(%g,%d)=%g", p, df, a, 1-p, df, b)
			}
		}
	}
}

func TestTQuantileApproachesNormal(t *testing.T) {
	z := NormQuantile(0.975)
	tq := TQuantile(0.975, 10000)
	if math.Abs(tq-z) > 1e-3 {
		t.Fatalf("t(10000) = %g, z = %g", tq, z)
	}
}

func TestCIShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		return xs
	}
	small := Summarize(gen(10))
	large := Summarize(gen(1000))
	if large.CI95 >= small.CI95 {
		t.Fatalf("CI did not shrink: %g vs %g", large.CI95, small.CI95)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1, 3, 3.9, 9.9, -5, 15} {
		h.Add(x)
	}
	if h.Total != 7 {
		t.Fatalf("total = %d", h.Total)
	}
	// Bucket 0 ([0,2)): 0.5, 1, and the clamped -5 → 3 samples.
	if h.Counts[0] != 3 {
		t.Fatalf("bucket 0 = %d", h.Counts[0])
	}
	// Bucket 4 ([8,10)): 9.9 and the clamped 15 → 2 samples.
	if h.Counts[4] != 2 {
		t.Fatalf("bucket 4 = %d", h.Counts[4])
	}
	if c := h.BucketCenter(0); c != 1 {
		t.Fatalf("center 0 = %g", c)
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	h, _ := NewHistogram(-10, 10, 40)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		h.Add(rng.NormFloat64() * 3)
	}
	width := 0.5
	sum := 0.0
	for i := range h.Counts {
		sum += h.Density(i) * width
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("density mass = %g", sum)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(1, 1, 5); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("zero buckets accepted")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
}
