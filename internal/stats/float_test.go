package stats

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		name string
		a, b float64
		want bool
	}{
		{"exact", 1.5, 1.5, true},
		{"within relative eps", 1e12, 1e12 * (1 + 1e-12), true},
		{"outside relative eps", 1e12, 1e12 * (1 + 1e-6), false},
		{"near zero absolute", 1e-12, -1e-12, true},
		{"zero vs tiny", 0, 1e-10, true},
		{"zero vs small", 0, 1e-3, false},
		{"signed zeros", 0.0, math.Copysign(0, -1), true},
		{"equal infinities", inf, inf, true},
		{"opposite infinities", inf, -inf, false},
		{"inf vs finite", inf, 1e300, false},
		{"nan vs nan", nan, nan, false},
		{"nan vs finite", nan, 1, false},
	}
	for _, tc := range cases {
		if got := ApproxEqual(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: ApproxEqual(%g, %g) = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
		}
		if got := ApproxEqual(tc.b, tc.a); got != tc.want {
			t.Errorf("%s: ApproxEqual(%g, %g) = %v, want %v (symmetry)", tc.name, tc.b, tc.a, got, tc.want)
		}
	}
}

func TestApproxEqualEpsCustom(t *testing.T) {
	if !ApproxEqualEps(100, 101, 0.02) {
		t.Error("ApproxEqualEps(100, 101, 0.02) should hold (1% apart, 2% tolerance)")
	}
	if ApproxEqualEps(100, 103, 0.02) {
		t.Error("ApproxEqualEps(100, 103, 0.02) should fail (3% apart, 2% tolerance)")
	}
}

func TestApproxZero(t *testing.T) {
	if !ApproxZero(0) || !ApproxZero(1e-12) || !ApproxZero(-1e-12) {
		t.Error("values within eps of zero must be approx zero")
	}
	if ApproxZero(1e-3) || ApproxZero(math.NaN()) {
		t.Error("1e-3 and NaN must not be approx zero")
	}
}

func TestApproxLessOrEqual(t *testing.T) {
	if !ApproxLessOrEqual(1, 2) {
		t.Error("1 <= 2 must hold")
	}
	if !ApproxLessOrEqual(2, 2*(1-1e-12)) {
		t.Error("2 <= 2-tiny must hold within tolerance")
	}
	if ApproxLessOrEqual(2.1, 2) {
		t.Error("2.1 <= 2 must fail")
	}
}
