package model

import (
	"testing"

	"emts/internal/dag"
)

func TestMonotoneEnvelope(t *testing.T) {
	v := dag.Task{Flops: 10e9, Alpha: 0.05}
	wrapped := Monotone{Inner: Synthetic{}}
	prev := wrapped.Time(v, 1, testCluster)
	for p := 2; p <= testCluster.Procs; p++ {
		cur := wrapped.Time(v, p, testCluster)
		if cur > prev {
			t.Fatalf("envelope not monotone at p=%d: %g > %g", p, cur, prev)
		}
		// Never better than the best raw configuration up to p.
		bestRaw := (Synthetic{}).Time(v, 1, testCluster)
		for q := 2; q <= p; q++ {
			if raw := (Synthetic{}).Time(v, q, testCluster); raw < bestRaw {
				bestRaw = raw
			}
		}
		if cur != bestRaw {
			t.Fatalf("envelope at p=%d is %g, want %g", p, cur, bestRaw)
		}
		prev = cur
	}
}

func TestMonotoneTableIsMonotone(t *testing.T) {
	g := singleTaskGraph(t, 10e9, 0.1)
	tab := MustTable(g, Monotone{Inner: Synthetic{}}, testCluster)
	if !tab.Monotone() {
		t.Fatal("monotonized table reports non-monotone")
	}
}

func TestMonotoneName(t *testing.T) {
	if (Monotone{Inner: Synthetic{}}).Name() != "synthetic-monotone" {
		t.Fatal("name")
	}
}

func TestMonotonePreservesMonotoneModels(t *testing.T) {
	v := dag.Task{Flops: 10e9, Alpha: 0.2}
	wrapped := Monotone{Inner: Amdahl{}}
	for p := 1; p <= testCluster.Procs; p++ {
		if wrapped.Time(v, p, testCluster) != (Amdahl{}).Time(v, p, testCluster) {
			t.Fatalf("envelope changed a monotone model at p=%d", p)
		}
	}
}
