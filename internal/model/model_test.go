package model

import (
	"math"
	"testing"
	"testing/quick"

	"emts/internal/dag"
	"emts/internal/platform"
)

var testCluster = platform.Cluster{Name: "test", Procs: 32, SpeedGFlops: 1}

func task(flops, alpha float64) dag.Task {
	return dag.Task{Flops: flops, Alpha: alpha}
}

func TestAmdahlSequential(t *testing.T) {
	// 10 GFLOP on a 1 GFLOPS processor: 10 s sequential.
	v := task(10e9, 0.2)
	if got := (Amdahl{}).Time(v, 1, testCluster); math.Abs(got-10) > 1e-12 {
		t.Fatalf("T(v,1) = %g, want 10", got)
	}
}

func TestAmdahlFormula(t *testing.T) {
	v := task(10e9, 0.2)
	// T(v,4) = (0.2 + 0.8/4) * 10 = 4
	if got := (Amdahl{}).Time(v, 4, testCluster); math.Abs(got-4) > 1e-12 {
		t.Fatalf("T(v,4) = %g, want 4", got)
	}
}

func TestAmdahlLimit(t *testing.T) {
	// As p grows, time approaches alpha * Tseq.
	v := task(10e9, 0.25)
	big := (Amdahl{}).Time(v, 10000, platform.Cluster{Name: "big", Procs: 10000, SpeedGFlops: 1})
	if big < 2.5 || big > 2.6 {
		t.Fatalf("T(v,10000) = %g, want just above 2.5", big)
	}
}

func TestAmdahlMonotone(t *testing.T) {
	f := func(rawFlops, rawAlpha float64) bool {
		flops := 1e6 + math.Abs(rawFlops)
		alpha := math.Mod(math.Abs(rawAlpha), 1)
		v := task(flops, alpha)
		prev := math.Inf(1)
		for p := 1; p <= testCluster.Procs; p++ {
			cur := (Amdahl{}).Time(v, p, testCluster)
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticPenalties(t *testing.T) {
	v := task(10e9, 0.0) // fully parallel so base times are easy
	amdahl := Amdahl{}
	syn := Synthetic{}
	cases := []struct {
		p       int
		penalty float64
	}{
		{1, 1.0},  // no penalty at p = 1
		{2, 1.1},  // even, not a perfect square
		{3, 1.3},  // odd
		{4, 1.0},  // even perfect square
		{5, 1.3},  // odd (also perfect-square-free, odd wins)
		{6, 1.1},  // even non-square
		{9, 1.3},  // odd perfect square: odd penalty applies
		{16, 1.0}, // even perfect square
		{25, 1.3}, // odd perfect square
		{32, 1.1}, // even non-square
	}
	for _, c := range cases {
		want := penaltyTimes(amdahl.Time(v, c.p, testCluster), c.penalty)
		if got := syn.Time(v, c.p, testCluster); math.Abs(got-want) > 1e-12 {
			t.Errorf("Synthetic T(v,%d) = %g, want %g (penalty %g)", c.p, got, want, c.penalty)
		}
	}
}

func penaltyTimes(base, f float64) float64 { return base * f }

func TestSyntheticIsNonMonotone(t *testing.T) {
	g := singleTaskGraph(t, 10e9, 0.05)
	tab := MustTable(g, Synthetic{}, testCluster)
	if tab.Monotone() {
		t.Fatal("Synthetic model should be non-monotonic")
	}
	// Concretely: T(v,5) should exceed T(v,4), imitating Figure 1.
	if tab.Time(0, 5) <= tab.Time(0, 4) {
		t.Fatalf("T(v,5)=%g <= T(v,4)=%g, want penalty spike", tab.Time(0, 5), tab.Time(0, 4))
	}
}

func TestSyntheticLiteralDiffersFromProse(t *testing.T) {
	v := task(10e9, 0.0)
	// p = 4: prose model has no penalty, literal pseudo-code penalizes squares.
	prose := (Synthetic{}).Time(v, 4, testCluster)
	literal := (SyntheticLiteral{}).Time(v, 4, testCluster)
	if literal <= prose {
		t.Fatalf("literal(4)=%g should exceed prose(4)=%g", literal, prose)
	}
	// p = 6: prose penalizes the non-square, literal does not.
	prose6 := (Synthetic{}).Time(v, 6, testCluster)
	literal6 := (SyntheticLiteral{}).Time(v, 6, testCluster)
	if prose6 <= literal6 {
		t.Fatalf("prose(6)=%g should exceed literal(6)=%g", prose6, literal6)
	}
}

func TestDowneySpeedupProperties(t *testing.T) {
	// S(1) = 1, S is capped at A, monotone non-decreasing for sigma <= 1.
	for _, sigma := range []float64{0, 0.5, 1, 2} {
		a := 16.0
		if s := Speedup(1, a, sigma); math.Abs(s-1) > 1e-9 {
			t.Fatalf("S(1) = %g with sigma=%g, want 1", s, sigma)
		}
		prev := 0.0
		for p := 1; p <= 200; p++ {
			s := Speedup(p, a, sigma)
			if s > a+1e-9 {
				t.Fatalf("S(%d)=%g exceeds A=%g (sigma=%g)", p, s, a, sigma)
			}
			if s+1e-9 < prev {
				t.Fatalf("S(%d)=%g < S(%d)=%g (sigma=%g): not monotone", p, s, p-1, prev, sigma)
			}
			prev = s
		}
		if s := Speedup(200, a, sigma); math.Abs(s-a) > 1e-6 {
			t.Fatalf("S(200)=%g, want A=%g (sigma=%g)", s, a, sigma)
		}
	}
}

func TestDowneyTime(t *testing.T) {
	d := Downey{A: 8, Sigma: 0}
	v := task(8e9, 0)
	// sigma=0: perfect speedup up to A processors.
	if got := d.Time(v, 8, testCluster); math.Abs(got-1) > 1e-9 {
		t.Fatalf("T(v,8) = %g, want 1", got)
	}
	if got := d.Time(v, 32, testCluster); math.Abs(got-1) > 1e-9 {
		t.Fatalf("T(v,32) = %g, want 1 (speedup capped at A)", got)
	}
}

func TestDowneyPerTask(t *testing.T) {
	d := Downey{A: 2, Sigma: 0, PerTask: func(v dag.Task) (float64, float64) { return 4, 0 }}
	v := task(4e9, 0)
	if got := d.Time(v, 4, testCluster); math.Abs(got-1) > 1e-9 {
		t.Fatalf("per-task A not used: T = %g, want 1", got)
	}
}

func TestFuncModel(t *testing.T) {
	m := Func{ModelName: "custom", F: func(v dag.Task, p int, c platform.Cluster) float64 {
		return float64(p)
	}}
	if m.Name() != "custom" {
		t.Fatalf("Name = %q", m.Name())
	}
	if got := m.Time(dag.Task{}, 7, testCluster); got != 7 {
		t.Fatalf("Time = %g", got)
	}
	anon := Func{F: m.F}
	if anon.Name() != "func" {
		t.Fatalf("default name = %q", anon.Name())
	}
}

func singleTaskGraph(t *testing.T, flops, alpha float64) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("one")
	b.AddTask(dag.Task{Flops: flops, Alpha: alpha})
	return b.MustBuild()
}

func TestTableMatchesModel(t *testing.T) {
	g := singleTaskGraph(t, 10e9, 0.1)
	tab := MustTable(g, Amdahl{}, testCluster)
	if tab.Procs() != testCluster.Procs || tab.NumTasks() != 1 {
		t.Fatalf("table dims: %d procs, %d tasks", tab.Procs(), tab.NumTasks())
	}
	for p := 1; p <= testCluster.Procs; p++ {
		want := (Amdahl{}).Time(g.Task(0), p, testCluster)
		if got := tab.Time(0, p); got != want {
			t.Fatalf("Table.Time(0,%d) = %g, want %g", p, got, want)
		}
	}
	if !tab.Monotone() {
		t.Fatal("Amdahl table should be monotone")
	}
}

func TestTableRejectsBrokenModel(t *testing.T) {
	g := singleTaskGraph(t, 10e9, 0.1)
	bad := Func{F: func(v dag.Task, p int, c platform.Cluster) float64 {
		if p == 5 {
			return -1
		}
		return 1
	}}
	if _, err := NewTable(g, bad, testCluster); err == nil {
		t.Fatal("expected error for negative time")
	}
	nan := Func{F: func(v dag.Task, p int, c platform.Cluster) float64 { return math.NaN() }}
	if _, err := NewTable(g, nan, testCluster); err == nil {
		t.Fatal("expected error for NaN time")
	}
	inf := Func{F: func(v dag.Task, p int, c platform.Cluster) float64 { return math.Inf(1) }}
	if _, err := NewTable(g, inf, testCluster); err == nil {
		t.Fatal("expected error for Inf time")
	}
}

func TestTableRejectsBadCluster(t *testing.T) {
	g := singleTaskGraph(t, 1e9, 0)
	if _, err := NewTable(g, Amdahl{}, platform.Cluster{Procs: 0, SpeedGFlops: 1}); err == nil {
		t.Fatal("expected cluster validation error")
	}
}

func TestBestProcs(t *testing.T) {
	g := singleTaskGraph(t, 10e9, 0.0)
	tabA := MustTable(g, Amdahl{}, testCluster)
	if got := tabA.BestProcs(0); got != testCluster.Procs {
		t.Fatalf("Amdahl BestProcs = %d, want %d", got, testCluster.Procs)
	}
	// Under the synthetic model with alpha = 0.3 the best count lands on an
	// even perfect square or power-of-two-like value, not necessarily P.
	g2 := singleTaskGraph(t, 10e9, 0.3)
	tabS := MustTable(g2, Synthetic{}, testCluster)
	best := tabS.BestProcs(0)
	for p := 1; p <= testCluster.Procs; p++ {
		if tabS.Time(0, p) < tabS.Time(0, best) {
			t.Fatalf("BestProcs=%d but p=%d is faster", best, p)
		}
	}
}

func TestModelNames(t *testing.T) {
	if (Amdahl{}).Name() != "amdahl" ||
		(Synthetic{}).Name() != "synthetic" ||
		(SyntheticLiteral{}).Name() != "synthetic-literal" ||
		(Downey{}).Name() != "downey" {
		t.Fatal("unexpected model name")
	}
}
