package model

import (
	"emts/internal/dag"
	"emts/internal/platform"
)

// Monotone wraps a (possibly non-monotonic) model with the lower monotone
// envelope: T'(v, p) = min over q <= p of T(v, q).
//
// This realizes the related-work approach of Günther, König & Megow
// (Section II-B): algorithms built on the "monotonous penalty assumption"
// are protected from penalty spikes by never *using* an allocation that a
// smaller one beats — operationally, a task allocated p processors simply
// runs its best q <= p configuration and leaves the remaining p−q idle.
// Comparing CPA-family heuristics under Monotone{Synthetic{}} against EMTS
// under the raw Synthetic{} model quantifies how much of EMTS's advantage
// comes from dodging penalties versus genuinely better packing.
type Monotone struct {
	// Inner is the wrapped model.
	Inner Model
}

// Name implements Model.
func (m Monotone) Name() string { return m.Inner.Name() + "-monotone" }

// Time implements Model. It evaluates the inner model for all q <= p; for
// table-driven use this cost is paid once at table construction.
func (m Monotone) Time(v dag.Task, p int, c platform.Cluster) float64 {
	best := m.Inner.Time(v, 1, c)
	for q := 2; q <= p; q++ {
		if t := m.Inner.Time(v, q, c); t < best {
			best = t
		}
	}
	return best
}
