// Package model implements the execution-time models of Section IV-B used to
// predict the run time of moldable parallel tasks, plus related-work models
// (Downey) and an empirical table-driven model.
//
// A Model answers one question: how long does task v take on p processors of
// cluster c? EMTS is deliberately model-agnostic (Section III), so every
// algorithm in this repository only interacts with models through this
// interface. The Table type precomputes all (task, p) times for one graph and
// cluster, which is what makes the evolutionary search's fitness evaluation
// cheap.
package model

import (
	"fmt"
	"math"

	"emts/internal/dag"
	"emts/internal/platform"
)

// Model predicts the execution time of moldable tasks.
type Model interface {
	// Name identifies the model in reports ("amdahl", "synthetic", ...).
	Name() string
	// Time returns the predicted execution time in seconds of task v running
	// on p processors of cluster c, for 1 <= p <= c.Procs. Implementations
	// must return a positive, finite value for valid inputs.
	Time(v dag.Task, p int, c platform.Cluster) float64
}

// Amdahl is Model 1 of the paper: with alpha the fraction of
// non-parallelizable code of a task, T(v,p) = (alpha + (1-alpha)/p) * T(v,1),
// where T(v,1) = Flops / speed. The execution time is monotonically
// non-increasing in p.
type Amdahl struct{}

// Name implements Model.
func (Amdahl) Name() string { return "amdahl" }

// Time implements Model.
func (Amdahl) Time(v dag.Task, p int, c platform.Cluster) float64 {
	seq := c.SequentialTime(v.Flops)
	return (v.Alpha + (1-v.Alpha)/float64(p)) * seq
}

// Synthetic is Model 2 of the paper: Amdahl's law with penalties that imitate
// the non-monotonic run-time characteristics of PDGEMM (Figure 1). Following
// the prose of Section IV-B ("slightly increases the execution time ... if the
// number of processors is not a multiple of 2 or if this number has no integer
// square root"):
//
//	T(v,p) = Amdahl(v,p)        if p == 1
//	T(v,p) = 1.3 * Amdahl(v,p)  if p > 1 and p is odd
//	T(v,p) = 1.1 * Amdahl(v,p)  if p > 1, p is even and sqrt(p) is not integer
//	T(v,p) = Amdahl(v,p)        otherwise (even perfect squares: 4, 16, 36, ...)
//
// See DESIGN.md item 4.1 for why the prose, not the garbled pseudo-code, is
// followed; SyntheticLiteral implements the literal pseudo-code for
// comparison.
type Synthetic struct{}

// Name implements Model.
func (Synthetic) Name() string { return "synthetic" }

// Time implements Model.
func (Synthetic) Time(v dag.Task, p int, c platform.Cluster) float64 {
	t := Amdahl{}.Time(v, p, c)
	if p > 1 {
		switch {
		case p%2 == 1:
			t *= 1.3
		case !isPerfectSquare(p):
			t *= 1.1
		}
	}
	return t
}

// SyntheticLiteral implements Algorithm 1 exactly as printed in the paper
// (penalizing perfect squares with 1.1 instead of non-squares). It exists only
// to document and test the difference from the prose-based Synthetic model.
type SyntheticLiteral struct{}

// Name implements Model.
func (SyntheticLiteral) Name() string { return "synthetic-literal" }

// Time implements Model.
func (SyntheticLiteral) Time(v dag.Task, p int, c platform.Cluster) float64 {
	t := Amdahl{}.Time(v, p, c)
	if p > 1 {
		switch {
		case p%2 == 1:
			t *= 1.3
		case isPerfectSquare(p):
			t *= 1.1
		}
	}
	return t
}

func isPerfectSquare(p int) bool {
	r := int(math.Round(math.Sqrt(float64(p))))
	return r*r == p
}

// Downey implements the speedup model of Downey (related work, Section II-B:
// "A Model for Speedup of Parallel Programs", UCB CSD-97-933). Each task is
// characterized by its average parallelism A and the variance of parallelism
// sigma. T(v,p) = T(v,1) / S(p) with the piecewise speedup function below.
//
// If PerTask is nil, A and Sigma apply to every task; otherwise PerTask
// supplies per-task parameters (e.g. derived from the task's alpha).
type Downey struct {
	// A is the average parallelism (>= 1).
	A float64
	// Sigma is the coefficient of variance of parallelism (>= 0).
	Sigma float64
	// PerTask optionally overrides A and Sigma per task.
	PerTask func(v dag.Task) (a, sigma float64)
}

// Name implements Model.
func (Downey) Name() string { return "downey" }

// Speedup returns Downey's speedup S(p) for average parallelism a and
// variance sigma.
func Speedup(p int, a, sigma float64) float64 {
	n := float64(p)
	if a <= 1 {
		return 1
	}
	switch {
	case sigma <= 1:
		switch {
		case n <= a:
			s := a * n / (a + sigma/2*(n-1))
			return s
		case n <= 2*a-1:
			return a * n / (sigma*(a-0.5) + n*(1-sigma/2))
		default:
			return a
		}
	default:
		if n <= a+a*sigma-sigma {
			return n * a * (sigma + 1) / (sigma*(n+a-1) + a)
		}
		return a
	}
}

// Time implements Model.
func (d Downey) Time(v dag.Task, p int, c platform.Cluster) float64 {
	a, sigma := d.A, d.Sigma
	if d.PerTask != nil {
		a, sigma = d.PerTask(v)
	}
	s := Speedup(p, a, sigma)
	if s < 1 {
		s = 1
	}
	return c.SequentialTime(v.Flops) / s
}

// Func adapts a closure into a Model, for user-defined (possibly
// non-monotonic) empirical models; see examples/custommodel.
type Func struct {
	// ModelName is returned by Name.
	ModelName string
	// F computes the execution time.
	F func(v dag.Task, p int, c platform.Cluster) float64
}

// Name implements Model.
func (f Func) Name() string {
	if f.ModelName == "" {
		return "func"
	}
	return f.ModelName
}

// Time implements Model.
func (f Func) Time(v dag.Task, p int, c platform.Cluster) float64 { return f.F(v, p, c) }

// Table is a fully materialized execution-time table for one graph on one
// cluster: T(v, p) = times[v*procs + p-1]. Building the table evaluates the
// underlying model V*P times once; afterwards every query is an array load.
// All scheduling algorithms in this repository work from a Table.
//
// The layout is a single row-major []float64 rather than a slice of per-task
// rows: Time is the single most frequent call in the fitness evaluation (V·P
// probes per mapping), and the flat layout removes one pointer chase per
// probe while keeping each task's row contiguous and cache-resident.
type Table struct {
	name  string
	procs int
	tasks int
	times []float64
}

// row returns the contiguous P execution times of task v.
func (t *Table) row(v dag.TaskID) []float64 {
	lo := int(v) * t.procs
	return t.times[lo : lo+t.procs]
}

// NewTable evaluates m for every task of g and every processor count
// 1..c.Procs. It fails if the model produces a non-positive or non-finite
// time, so broken models are caught at the boundary instead of corrupting
// schedules.
func NewTable(g *dag.Graph, m Model, c platform.Cluster) (*Table, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := g.NumTasks()
	t := &Table{name: m.Name(), procs: c.Procs, tasks: n, times: make([]float64, n*c.Procs)}
	for i := 0; i < n; i++ {
		task := g.Task(dag.TaskID(i))
		row := t.row(dag.TaskID(i))
		for p := 1; p <= c.Procs; p++ {
			v := m.Time(task, p, c)
			if !(v > 0) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("model %s: T(task %d, p=%d) = %g, want positive finite", m.Name(), i, p, v)
			}
			row[p-1] = v
		}
	}
	return t, nil
}

// MustTable is NewTable for inputs known to be valid; it panics on error.
func MustTable(g *dag.Graph, m Model, c platform.Cluster) *Table {
	t, err := NewTable(g, m, c)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the name of the underlying model.
func (t *Table) Name() string { return t.name }

// Procs returns the number of processors the table covers.
func (t *Table) Procs() int { return t.procs }

// NumTasks returns the number of tasks the table covers.
func (t *Table) NumTasks() int { return t.tasks }

// Time returns T(v, p). It panics if v or p is out of range, consistent with
// slice indexing: allocation code must clamp p to [1, Procs] beforehand.
//
//schedlint:hotpath
func (t *Table) Time(v dag.TaskID, p int) float64 { return t.times[int(v)*t.procs+p-1] }

// Monotone reports whether T(v, p) is non-increasing in p for every task,
// i.e. whether the "monotonous penalty assumption" holds for this table.
func (t *Table) Monotone() bool {
	for v := 0; v < t.tasks; v++ {
		row := t.row(dag.TaskID(v))
		for p := 1; p < len(row); p++ {
			if row[p] > row[p-1] {
				return false
			}
		}
	}
	return true
}

// BestProcs returns, for task v, the processor count in [1, Procs] minimizing
// T(v, p), with ties broken toward fewer processors. Useful for bounding and
// diagnostics under non-monotonic models.
func (t *Table) BestProcs(v dag.TaskID) int {
	row := t.row(v)
	best := 0
	for p := 1; p < len(row); p++ {
		if row[p] < row[best] {
			best = p
		}
	}
	return best + 1
}
