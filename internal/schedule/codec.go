package schedule

import (
	"encoding/json"
	"fmt"
	"io"
)

// Write encodes the schedule as indented JSON to w.
func (s *Schedule) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Read decodes a schedule from JSON. Structural validation against a graph is
// the caller's job (Validate); Read only checks basic well-formedness.
func Read(r io.Reader) (*Schedule, error) {
	var s Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("schedule: decoding: %w", err)
	}
	if s.Procs < 0 {
		return nil, fmt.Errorf("schedule: negative processor count %d", s.Procs)
	}
	return &s, nil
}
