package schedule

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt rendering used to regenerate Figure 6: side-by-side schedule plots of
// MCPA and EMTS10. Two renderers are provided: an ASCII renderer for the
// terminal and an SVG renderer for reports.

// ganttGlyphs is the symbol alphabet for ASCII charts: task i uses glyph
// i mod len(ganttGlyphs).
const ganttGlyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// ASCII renders the schedule as a text Gantt chart, one row per processor and
// width columns across the makespan. Idle time renders as '.', and each task
// as a repeating glyph derived from its ID. Processors are ordered top to
// bottom.
func (s *Schedule) ASCII(width int) string {
	if width < 10 {
		width = 10
	}
	ms := s.Makespan()
	var sb strings.Builder
	fmt.Fprintf(&sb, "schedule %q: %d tasks on %d procs, makespan %.4g s\n", s.Graph, len(s.Entries), s.Procs, ms)
	if ms == 0 {
		return sb.String()
	}
	rows := make([][]byte, s.Procs)
	for p := range rows {
		rows[p] = []byte(strings.Repeat(".", width))
	}
	for _, e := range s.Entries {
		lo := int(e.Start / ms * float64(width))
		hi := int(e.End / ms * float64(width))
		if lo < 0 {
			lo = 0 // unvalidated schedules may carry negative times
		}
		if hi <= lo {
			hi = lo + 1 // every task paints at least one cell
		}
		if hi > width {
			hi = width
		}
		if lo >= width {
			continue
		}
		glyph := ganttGlyphs[abs(int(e.Task))%len(ganttGlyphs)]
		for _, p := range e.Procs {
			if p < 0 || p >= len(rows) {
				continue // unvalidated schedule; rendering stays best-effort
			}
			for c := lo; c < hi; c++ {
				rows[p][c] = glyph
			}
		}
	}
	for p, row := range rows {
		fmt.Fprintf(&sb, "p%03d |%s|\n", p, row)
	}
	// Time axis.
	fmt.Fprintf(&sb, "     %s\n", strings.Repeat(" ", 1))
	fmt.Fprintf(&sb, "     0%s%.4g s\n", strings.Repeat(" ", width-len(fmt.Sprintf("%.4g s", ms))), ms)
	return sb.String()
}

// svgPalette holds visually distinct fill colors; task i uses color
// i mod len(svgPalette).
var svgPalette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948",
	"#b07aa1", "#ff9da7", "#9c755f", "#bab0ac", "#86bcb6", "#d37295",
}

// SVG renders the schedule as a standalone SVG Gantt chart of the given pixel
// dimensions. Time runs left to right, processors top to bottom. Each task is
// a colored rectangle labelled with its ID (when it is wide enough).
func (s *Schedule) SVG(width, height int) string {
	const margin = 40
	ms := s.Makespan()
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="%d" y="16" font-family="sans-serif" font-size="12">%s — makespan %.4g s on %d procs</text>`+"\n",
		margin, escapeXML(s.Graph), ms, s.Procs)
	if ms == 0 || s.Procs == 0 {
		sb.WriteString("</svg>\n")
		return sb.String()
	}
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)
	rowH := plotH / float64(s.Procs)
	xOf := func(t float64) float64 { return margin + t/ms*plotW }

	// Draw longer tasks first so tiny tasks stay visible on top.
	order := make([]int, len(s.Entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da := s.Entries[order[a]].End - s.Entries[order[a]].Start
		db := s.Entries[order[b]].End - s.Entries[order[b]].Start
		return da > db
	})
	for _, i := range order {
		e := s.Entries[i]
		color := svgPalette[abs(int(e.Task))%len(svgPalette)]
		x := xOf(e.Start)
		w := xOf(e.End) - x
		if w < 1 {
			w = 1
		}
		// One rectangle per contiguous run of processors.
		procs := append([]int(nil), e.Procs...)
		sort.Ints(procs)
		for lo := 0; lo < len(procs); {
			hi := lo
			for hi+1 < len(procs) && procs[hi+1] == procs[hi]+1 {
				hi++
			}
			y := float64(margin) + float64(procs[lo])*rowH
			h := float64(hi-lo+1) * rowH
			fmt.Fprintf(&sb, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="black" stroke-width="0.4"><title>task %d: [%.4g, %.4g) on %d procs</title></rect>`+"\n",
				x, y, w, h, color, e.Task, e.Start, e.End, len(e.Procs))
			if w > 18 && h > 10 {
				fmt.Fprintf(&sb, `<text x="%.2f" y="%.2f" font-family="sans-serif" font-size="9" fill="white">%d</text>`+"\n",
					x+2, y+h/2+3, e.Task)
			}
			lo = hi + 1
		}
	}
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, height-margin, width-margin, height-margin)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, margin, margin, height-margin)
	for i := 0; i <= 4; i++ {
		tv := ms * float64(i) / 4
		fmt.Fprintf(&sb, `<text x="%.2f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%.3g</text>`+"\n",
			xOf(tv), height-margin+14, tv)
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%.2f" font-family="sans-serif" font-size="10" text-anchor="end">p0</text>`+"\n",
		margin-4, float64(margin)+rowH*0.7)
	fmt.Fprintf(&sb, `<text x="%d" y="%.2f" font-family="sans-serif" font-size="10" text-anchor="end">p%d</text>`+"\n",
		margin-4, float64(height-margin), s.Procs-1)
	sb.WriteString("</svg>\n")
	return sb.String()
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Utilization returns the fraction of processor-time busy before the
// makespan: sum over tasks of duration*procs divided by makespan*P. The
// paper's Figure 6 discussion contrasts MCPA's "poor resource utilization"
// with EMTS's; this is the corresponding number.
func (s *Schedule) Utilization() float64 {
	ms := s.Makespan()
	if ms == 0 || s.Procs == 0 {
		return 0
	}
	busy := 0.0
	for _, e := range s.Entries {
		busy += (e.End - e.Start) * float64(len(e.Procs))
	}
	return busy / (ms * float64(s.Procs))
}
