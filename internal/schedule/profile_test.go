package schedule

import (
	"strings"
	"testing"
)

// profSchedule: 4 procs; task 0 on {0,1} [0,2); task 1 on {0} [2,4);
// task 2 on {2,3} [1,3).
func profSchedule() *Schedule {
	return &Schedule{
		Graph: "prof",
		Procs: 4,
		Entries: []Entry{
			{Task: 0, Start: 0, End: 2, Procs: []int{0, 1}},
			{Task: 1, Start: 2, End: 4, Procs: []int{0}},
			{Task: 2, Start: 1, End: 3, Procs: []int{2, 3}},
		},
	}
}

func TestProfileBasics(t *testing.T) {
	p := NewProfile(profSchedule())
	if p.Makespan != 4 {
		t.Fatalf("makespan %g", p.Makespan)
	}
	// Busy: p0 = 2+2 = 4, p1 = 2, p2 = 2, p3 = 2; total 10 of 16.
	if p.BusyTime[0] != 4 || p.BusyTime[1] != 2 || p.BusyTime[2] != 2 {
		t.Fatalf("busy: %v", p.BusyTime)
	}
	if p.Utilization != 10.0/16.0 {
		t.Fatalf("utilization %g", p.Utilization)
	}
	if p.IdleProcs != 0 {
		t.Fatalf("idle %d", p.IdleProcs)
	}
	if p.TaskCount[0] != 2 || p.TaskCount[3] != 1 {
		t.Fatalf("task counts: %v", p.TaskCount)
	}
	// Peak concurrency: at t in [1,2): tasks 0 (2 procs) + 2 (2 procs) = 4.
	if p.MaxConcurrency != 4 {
		t.Fatalf("peak concurrency %d", p.MaxConcurrency)
	}
	// Mean start = (0+2+1)/3 = 1.
	if p.MeanWait != 1 {
		t.Fatalf("mean wait %g", p.MeanWait)
	}
	if out := p.Format(); !strings.Contains(out, "utilization") {
		t.Fatal("Format broken")
	}
}

func TestProfileIdleProcs(t *testing.T) {
	s := &Schedule{Graph: "idle", Procs: 3, Entries: []Entry{
		{Task: 0, Start: 0, End: 1, Procs: []int{1}},
	}}
	p := NewProfile(s)
	if p.IdleProcs != 2 {
		t.Fatalf("idle %d, want 2", p.IdleProcs)
	}
}

func TestProfileEmptySchedule(t *testing.T) {
	p := NewProfile(&Schedule{Procs: 2})
	if p.Utilization != 0 || p.MaxConcurrency != 0 || p.MeanWait != 0 {
		t.Fatalf("empty profile: %+v", p)
	}
}

func TestEventsOrdering(t *testing.T) {
	evs := profSchedule().Events()
	if len(evs) != 6 {
		t.Fatalf("%d events", len(evs))
	}
	// Time-ordered; completions before starts at equal times.
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatal("events out of order")
		}
		if evs[i].Time == evs[i-1].Time && evs[i-1].Start && !evs[i].Start {
			t.Fatal("start ordered before completion at equal time")
		}
	}
	// Playback never exceeds the platform size.
	cur := 0
	for _, ev := range evs {
		if ev.Start {
			cur += ev.Procs
		} else {
			cur -= ev.Procs
		}
		if cur < 0 || cur > 4 {
			t.Fatalf("concurrency %d out of range during playback", cur)
		}
	}
}

func TestCSVExport(t *testing.T) {
	out := profSchedule().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[0] != "task,start,end,procs,proc_list" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "0,0,2,2,0 1") {
		t.Fatalf("row %q", lines[1])
	}
}
