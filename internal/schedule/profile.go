package schedule

import (
	"fmt"
	"sort"
	"strings"

	"emts/internal/dag"
)

// Profile is a per-processor and aggregate utilization analysis of a
// schedule — the quantitative counterpart of the Figure 6 discussion
// ("poor resource utilization").
type Profile struct {
	// Makespan is the schedule completion time.
	Makespan float64
	// Procs is the platform size.
	Procs int
	// BusyTime[p] is the total time processor p executes tasks.
	BusyTime []float64
	// TaskCount[p] is the number of tasks processor p takes part in.
	TaskCount []int
	// Utilization is total busy processor-time / (Makespan * Procs).
	Utilization float64
	// IdleProcs is the number of processors that never execute anything.
	IdleProcs int
	// MaxConcurrency is the largest number of simultaneously busy
	// processors.
	MaxConcurrency int
	// MeanWait is the average task waiting time: start minus the latest
	// predecessor-independent ready estimate is not recoverable from the
	// schedule alone, so MeanWait here is the mean start time (how late
	// tasks begin), a proxy for queueing depth.
	MeanWait float64
}

// Event is one start or end of a task, for event-ordered playback.
type Event struct {
	// Time of the event.
	Time float64
	// Task concerned.
	Task dag.TaskID
	// Start is true for a task start, false for completion.
	Start bool
	// Procs is the number of processors the task holds.
	Procs int
}

// Events returns the schedule's start/end events in time order (ends before
// starts at equal times, so processor counts never exceed P during
// playback).
func (s *Schedule) Events() []Event {
	evs := make([]Event, 0, 2*len(s.Entries))
	for _, e := range s.Entries {
		evs = append(evs, Event{Time: e.Start, Task: e.Task, Start: true, Procs: len(e.Procs)})
		evs = append(evs, Event{Time: e.End, Task: e.Task, Start: false, Procs: len(e.Procs)})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		//schedlint:allow floateq -- exact tie-break: events at bit-equal times order (completion, task ID) so playback is deterministic
		if evs[i].Time != evs[j].Time {
			return evs[i].Time < evs[j].Time
		}
		if evs[i].Start != evs[j].Start {
			return !evs[i].Start // completions first
		}
		return evs[i].Task < evs[j].Task
	})
	return evs
}

// NewProfile computes the utilization profile of a schedule.
func NewProfile(s *Schedule) *Profile {
	p := &Profile{
		Makespan:  s.Makespan(),
		Procs:     s.Procs,
		BusyTime:  make([]float64, s.Procs),
		TaskCount: make([]int, s.Procs),
	}
	sumStart := 0.0
	for _, e := range s.Entries {
		dur := e.End - e.Start
		sumStart += e.Start
		for _, proc := range e.Procs {
			if proc < 0 || proc >= s.Procs {
				continue
			}
			p.BusyTime[proc] += dur
			p.TaskCount[proc]++
		}
	}
	busy := 0.0
	for proc := range p.BusyTime {
		busy += p.BusyTime[proc]
		if p.TaskCount[proc] == 0 {
			p.IdleProcs++
		}
	}
	if p.Makespan > 0 && p.Procs > 0 {
		p.Utilization = busy / (p.Makespan * float64(p.Procs))
	}
	if len(s.Entries) > 0 {
		p.MeanWait = sumStart / float64(len(s.Entries))
	}
	// Playback for peak concurrency.
	cur := 0
	for _, ev := range s.Events() {
		if ev.Start {
			cur += ev.Procs
			if cur > p.MaxConcurrency {
				p.MaxConcurrency = cur
			}
		} else {
			cur -= ev.Procs
		}
	}
	return p
}

// Format renders the profile as a short report.
func (p *Profile) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "makespan:        %.4g s\n", p.Makespan)
	fmt.Fprintf(&sb, "utilization:     %.1f%%\n", 100*p.Utilization)
	fmt.Fprintf(&sb, "idle processors: %d of %d\n", p.IdleProcs, p.Procs)
	fmt.Fprintf(&sb, "peak concurrency: %d processors busy\n", p.MaxConcurrency)
	fmt.Fprintf(&sb, "mean task start: %.4g s\n", p.MeanWait)
	return sb.String()
}

// CSV renders the schedule entries as CSV (task,start,end,procs,proc_list)
// for external analysis/plotting.
func (s *Schedule) CSV() string {
	var sb strings.Builder
	sb.WriteString("task,start,end,procs,proc_list\n")
	for _, e := range s.Entries {
		ids := make([]string, len(e.Procs))
		for i, p := range e.Procs {
			ids[i] = fmt.Sprint(p)
		}
		fmt.Fprintf(&sb, "%d,%g,%g,%d,%s\n", e.Task, e.Start, e.End, len(e.Procs), strings.Join(ids, " "))
	}
	return sb.String()
}
