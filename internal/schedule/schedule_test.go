package schedule

import (
	"bytes"
	"strings"
	"testing"

	"emts/internal/dag"
	"emts/internal/model"
	"emts/internal/platform"
)

var testCluster = platform.Cluster{Name: "test", Procs: 4, SpeedGFlops: 1}

func chainGraph(t *testing.T) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("chain")
	b.AddTask(dag.Task{Flops: 4e9, Alpha: 0}) // 4 s sequential
	b.AddTask(dag.Task{Flops: 2e9, Alpha: 0}) // 2 s sequential
	b.AddEdge(0, 1)
	return b.MustBuild()
}

// validChainSchedule: task 0 on procs {0,1} for [0,2), task 1 on {0} for [2,4).
func validChainSchedule() *Schedule {
	return &Schedule{
		Graph: "chain",
		Procs: 4,
		Entries: []Entry{
			{Task: 0, Start: 0, End: 2, Procs: []int{0, 1}},
			{Task: 1, Start: 2, End: 4, Procs: []int{0}},
		},
	}
}

func TestAllocationHelpers(t *testing.T) {
	a := Ones(3)
	if a.TotalProcs() != 3 {
		t.Fatalf("TotalProcs = %d", a.TotalProcs())
	}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone aliases original")
	}
	b.Clamp(4)
	if b[0] != 4 {
		t.Fatalf("Clamp upper: %d", b[0])
	}
	c := Allocation{0, -5, 2}
	c.Clamp(4)
	if c[0] != 1 || c[1] != 1 || c[2] != 2 {
		t.Fatalf("Clamp lower: %v", c)
	}
}

func TestAllocationValidate(t *testing.T) {
	g := chainGraph(t)
	if err := (Allocation{1, 2}).Validate(g, 4); err != nil {
		t.Fatalf("valid allocation rejected: %v", err)
	}
	if err := (Allocation{1}).Validate(g, 4); err == nil {
		t.Fatal("wrong length accepted")
	}
	if err := (Allocation{1, 5}).Validate(g, 4); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if err := (Allocation{0, 1}).Validate(g, 4); err == nil {
		t.Fatal("zero allocation accepted")
	}
}

func TestValidateAcceptsCorrectSchedule(t *testing.T) {
	g := chainGraph(t)
	s := validChainSchedule()
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	if err := s.Validate(g, tab); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if s.Makespan() != 4 {
		t.Fatalf("Makespan = %g", s.Makespan())
	}
	alloc := s.Allocation()
	if alloc[0] != 2 || alloc[1] != 1 {
		t.Fatalf("Allocation = %v", alloc)
	}
}

func TestValidateCatchesPrecedenceViolation(t *testing.T) {
	g := chainGraph(t)
	s := validChainSchedule()
	s.Entries[1].Start = 1 // starts before predecessor finishes
	s.Entries[1].End = 3
	if err := s.Validate(g, nil); err == nil {
		t.Fatal("precedence violation accepted")
	}
}

func TestValidateCatchesProcessorOverlap(t *testing.T) {
	g := chainGraph(t)
	s := &Schedule{Graph: "chain", Procs: 4, Entries: []Entry{
		{Task: 0, Start: 0, End: 2, Procs: []int{0, 1}},
		{Task: 1, Start: 1, End: 3, Procs: []int{1}}, // overlaps task 0 on proc 1
	}}
	// Remove the edge so only the overlap can fail: use a 2-task graph with no
	// edges.
	b := dag.NewBuilder("par")
	b.AddTask(dag.Task{Flops: 1e9})
	b.AddTask(dag.Task{Flops: 1e9})
	g = b.MustBuild()
	if err := s.Validate(g, nil); err == nil {
		t.Fatal("processor overlap accepted")
	}
}

func TestValidateCatchesStructuralErrors(t *testing.T) {
	g := chainGraph(t)
	cases := []func(*Schedule){
		func(s *Schedule) { s.Entries = s.Entries[:1] },                 // missing task
		func(s *Schedule) { s.Entries[0].Task = 1 },                     // wrong index
		func(s *Schedule) { s.Entries[0].Start = -1 },                   // negative start
		func(s *Schedule) { s.Entries[0].End = s.Entries[0].Start - 1 }, // end before start
		func(s *Schedule) { s.Entries[0].Procs = nil },                  // no processors
		func(s *Schedule) { s.Entries[0].Procs = []int{0, 0} },          // duplicate proc
		func(s *Schedule) { s.Entries[0].Procs = []int{7} },             // proc out of range
		func(s *Schedule) { s.Entries[0].Procs = []int{0, 1, 2, 3, 3} }, // > P procs via dup
		func(s *Schedule) { s.Entries[0].Procs = []int{-1} },            // negative proc
	}
	for i, mutate := range cases {
		s := validChainSchedule()
		mutate(s)
		if err := s.Validate(g, nil); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestValidateCatchesWrongDuration(t *testing.T) {
	g := chainGraph(t)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	s := validChainSchedule()
	s.Entries[1].End = 5 // duration 3 != model time 2
	if err := s.Validate(g, tab); err == nil {
		t.Fatal("wrong duration accepted")
	}
}

func TestBackToBackOnSameProcessorAllowed(t *testing.T) {
	// End of one task == start of the next on the same processor is legal.
	b := dag.NewBuilder("par")
	b.AddTask(dag.Task{Flops: 1e9})
	b.AddTask(dag.Task{Flops: 1e9})
	g := b.MustBuild()
	s := &Schedule{Graph: "par", Procs: 1, Entries: []Entry{
		{Task: 0, Start: 0, End: 1, Procs: []int{0}},
		{Task: 1, Start: 1, End: 2, Procs: []int{0}},
	}}
	if err := s.Validate(g, nil); err != nil {
		t.Fatalf("back-to-back rejected: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := validChainSchedule()
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Makespan() != s.Makespan() || len(s2.Entries) != len(s.Entries) {
		t.Fatalf("round trip mismatch: %+v", s2)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"procs": -1}`)); err == nil {
		t.Fatal("negative procs accepted")
	}
}

func TestASCIIGantt(t *testing.T) {
	s := validChainSchedule()
	out := s.ASCII(40)
	if !strings.Contains(out, "p000") || !strings.Contains(out, "makespan") {
		t.Fatalf("ASCII output malformed:\n%s", out)
	}
	// Task 0 paints glyph '0' on two processor rows.
	if strings.Count(out, "0000") < 2 {
		t.Fatalf("task 0 not visible on two rows:\n%s", out)
	}
}

func TestASCIIGanttEmpty(t *testing.T) {
	s := &Schedule{Graph: "empty", Procs: 2}
	out := s.ASCII(5)
	if !strings.Contains(out, "makespan 0") {
		t.Fatalf("empty schedule output: %s", out)
	}
}

func TestSVGGantt(t *testing.T) {
	s := validChainSchedule()
	svg := s.SVG(400, 200)
	for _, want := range []string{"<svg", "</svg>", "<rect", "task 0"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestSVGEscapesName(t *testing.T) {
	s := &Schedule{Graph: `a<b>&"c`, Procs: 1, Entries: []Entry{
		{Task: 0, Start: 0, End: 1, Procs: []int{0}},
	}}
	svg := s.SVG(100, 100)
	if strings.Contains(svg, "a<b>") {
		t.Fatal("graph name not escaped in SVG")
	}
}

func TestUtilization(t *testing.T) {
	s := validChainSchedule()
	// busy = 2s*2procs + 2s*1proc = 6 proc-s; total = 4s * 4 procs = 16.
	if got := s.Utilization(); got != 6.0/16.0 {
		t.Fatalf("Utilization = %g, want 0.375", got)
	}
	empty := &Schedule{Procs: 4}
	if empty.Utilization() != 0 {
		t.Fatal("empty utilization != 0")
	}
}
