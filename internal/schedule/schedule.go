// Package schedule defines processor allocations and schedules for parallel
// task graphs, together with correctness validation and Gantt-chart rendering
// (used to regenerate Figure 6 of the paper).
//
// An Allocation is the paper's "individual" encoding (Section III-A,
// Figure 2): position i holds s(v_i), the number of processors allocated to
// task v_i. A Schedule is the output of the mapping step: for every task a
// start time, an end time, and the concrete set of processors it occupies.
package schedule

import (
	"fmt"
	"math"
	"sort"

	"emts/internal/dag"
	"emts/internal/model"
)

// Allocation holds the number of processors allocated to each task, indexed
// by dag.TaskID. It is exactly the individual encoding of Figure 2.
type Allocation []int

// Ones returns the allocation that gives every one of n tasks a single
// processor — the starting point of the CPA-family heuristics.
func Ones(n int) Allocation {
	a := make(Allocation, n)
	for i := range a {
		a[i] = 1
	}
	return a
}

// Clone returns an independent copy of a.
func (a Allocation) Clone() Allocation { return append(Allocation(nil), a...) }

// Validate checks that the allocation covers every task of g and that every
// entry lies in [1, procs].
func (a Allocation) Validate(g *dag.Graph, procs int) error {
	if len(a) != g.NumTasks() {
		return fmt.Errorf("schedule: allocation has %d entries for %d tasks", len(a), g.NumTasks())
	}
	for i, s := range a {
		if s < 1 || s > procs {
			return fmt.Errorf("schedule: allocation of task %d is %d, want 1..%d", i, s, procs)
		}
	}
	return nil
}

// Clamp forces every entry into [1, procs] in place and returns a.
func (a Allocation) Clamp(procs int) Allocation {
	for i, s := range a {
		if s < 1 {
			a[i] = 1
		} else if s > procs {
			a[i] = procs
		}
	}
	return a
}

// TotalProcs returns the sum of all allocations (the "area" in processors).
func (a Allocation) TotalProcs() int {
	sum := 0
	for _, s := range a {
		sum += s
	}
	return sum
}

// Entry records the placement of one task: the half-open time interval
// [Start, End) on the processors listed in Procs.
type Entry struct {
	Task  dag.TaskID `json:"task"`
	Start float64    `json:"start"`
	End   float64    `json:"end"`
	Procs []int      `json:"procs"`
}

// Schedule is a complete mapping of a PTG onto a cluster. Entries is indexed
// by task ID (Entries[i].Task == i).
type Schedule struct {
	// Graph is the name of the scheduled PTG (informational).
	Graph string `json:"graph"`
	// Procs is the number of processors of the platform.
	Procs int `json:"procs"`
	// Entries holds one entry per task, indexed by task ID.
	Entries []Entry `json:"entries"`
}

// Makespan returns the completion time of the schedule: the maximum entry end
// time, or 0 for an empty schedule.
func (s *Schedule) Makespan() float64 {
	max := 0.0
	for _, e := range s.Entries {
		if e.End > max {
			max = e.End
		}
	}
	return max
}

// Allocation extracts the allocation vector realized by the schedule.
func (s *Schedule) Allocation() Allocation {
	a := make(Allocation, len(s.Entries))
	for i, e := range s.Entries {
		a[i] = len(e.Procs)
	}
	return a
}

// timeEps is the relative tolerance used when validating schedule timings.
const timeEps = 1e-9

// Validate performs a full correctness audit of the schedule against its
// graph, the platform size, and (optionally) an execution-time table:
//
//  1. every task of g has exactly one entry, with Start >= 0, End >= Start;
//  2. every entry occupies between 1 and Procs distinct in-range processors;
//  3. no processor executes two tasks at overlapping times (Section IV:
//     "a processor only executes one task at a time");
//  4. precedence constraints hold: a task starts no earlier than the end of
//     each of its predecessors;
//  5. if tab is non-nil, End - Start equals tab.Time(v, len(Procs)).
func (s *Schedule) Validate(g *dag.Graph, tab *model.Table) error {
	if len(s.Entries) != g.NumTasks() {
		return fmt.Errorf("schedule: %d entries for %d tasks", len(s.Entries), g.NumTasks())
	}
	type span struct {
		start, end float64
		task       dag.TaskID
	}
	perProc := make([][]span, s.Procs)
	for i, e := range s.Entries {
		if e.Task != dag.TaskID(i) {
			return fmt.Errorf("schedule: entry %d holds task %d", i, e.Task)
		}
		if e.Start < 0 || e.End < e.Start {
			return fmt.Errorf("schedule: task %d has invalid interval [%g, %g)", i, e.Start, e.End)
		}
		if len(e.Procs) < 1 || len(e.Procs) > s.Procs {
			return fmt.Errorf("schedule: task %d uses %d processors, want 1..%d", i, len(e.Procs), s.Procs)
		}
		seen := make(map[int]bool, len(e.Procs))
		for _, p := range e.Procs {
			if p < 0 || p >= s.Procs {
				return fmt.Errorf("schedule: task %d placed on processor %d, want 0..%d", i, p, s.Procs-1)
			}
			if seen[p] {
				return fmt.Errorf("schedule: task %d lists processor %d twice", i, p)
			}
			seen[p] = true
			perProc[p] = append(perProc[p], span{e.Start, e.End, e.Task})
		}
		if tab != nil {
			want := tab.Time(e.Task, len(e.Procs))
			got := e.End - e.Start
			if relDiff(got, want) > timeEps {
				return fmt.Errorf("schedule: task %d duration %g != model time %g for %d procs",
					i, got, want, len(e.Procs))
			}
		}
	}
	for p, spans := range perProc {
		sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
		for k := 1; k < len(spans); k++ {
			prev, cur := spans[k-1], spans[k]
			if cur.start < prev.end-absEps(prev.end) {
				return fmt.Errorf("schedule: processor %d runs task %d [%g,%g) and task %d [%g,%g) concurrently",
					p, prev.task, prev.start, prev.end, cur.task, cur.start, cur.end)
			}
		}
	}
	for _, e := range g.Edges() {
		pred, succ := s.Entries[e.Src], s.Entries[e.Dst]
		if succ.Start < pred.End-absEps(pred.End) {
			return fmt.Errorf("schedule: task %d starts at %g before predecessor %d ends at %g",
				e.Dst, succ.Start, e.Src, pred.End)
		}
	}
	return nil
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return d
	}
	return d / scale
}

func absEps(v float64) float64 { return timeEps * math.Max(1, math.Abs(v)) }
