package schedule

import (
	"strings"
	"testing"
)

// FuzzRead checks the schedule reader never panics and that accepted
// schedules have a non-negative makespan and usable renderers.
func FuzzRead(f *testing.F) {
	f.Add(`{"graph":"g","procs":2,"entries":[{"task":0,"start":0,"end":1,"procs":[0]}]}`)
	f.Add(`{"procs":-1}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		if s.Makespan() < 0 {
			t.Fatal("negative makespan accepted")
		}
		// Renderers must not panic on any accepted schedule.
		_ = s.ASCII(20)
		_ = s.SVG(100, 100)
		_ = s.Utilization()
	})
}
