package evalpool

import (
	"math/rand"
	"sync"
	"testing"

	"emts/internal/dag"
	"emts/internal/daggen"
	"emts/internal/listsched"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/schedule"
)

func testInstance(t testing.TB, n int, seed int64) (*dag.Graph, *model.Table) {
	t.Helper()
	g, err := daggen.Random(daggen.RandomConfig{
		N: n, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 2,
	}, daggen.DefaultCosts(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return g, model.MustTable(g, model.Synthetic{}, platform.Grelon())
}

// TestPoolReuseSameShape: a returned Mapper must come back on the next
// same-shape checkout (pointer identity), counted as a hit, and behave
// exactly like a fresh Mapper on the new instance.
func TestPoolReuseSameShape(t *testing.T) {
	p := New(0, 0)
	gA, tabA := testInstance(t, 60, 1)
	gB, tabB := testInstance(t, 60, 2)

	m1, err := p.Get(gA, tabA)
	if err != nil {
		t.Fatal(err)
	}
	alloc := schedule.Ones(gA.NumTasks())
	if _, err := m1.Makespan(alloc); err != nil {
		t.Fatal(err)
	}
	p.Put(m1)
	if got := p.Len(); got != 1 {
		t.Fatalf("Len after Put = %d, want 1", got)
	}

	m2, err := p.Get(gB, tabB)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m1 {
		t.Fatal("same-shape checkout did not reuse the pooled Mapper")
	}
	fresh, err := p.Get(gB, tabB) // pool now empty for this shape → fresh
	if err != nil {
		t.Fatal(err)
	}
	if fresh == m2 {
		t.Fatal("second checkout returned the same Mapper twice")
	}
	for i := range alloc {
		alloc[i] = 1 + i%tabB.Procs()
	}
	got, err := m2.Makespan(alloc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Makespan(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("pooled Mapper makespan = %g, fresh = %g", got, want)
	}
	hits, misses := p.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("Stats = (%d hits, %d misses), want (1, 2)", hits, misses)
	}
}

// TestPoolShapeKeying: different shapes never share arenas.
func TestPoolShapeKeying(t *testing.T) {
	p := New(0, 0)
	gA, tabA := testInstance(t, 40, 1)
	gB, tabB := testInstance(t, 41, 1)
	m, err := p.Get(gA, tabA)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(m)
	other, err := p.Get(gB, tabB)
	if err != nil {
		t.Fatal(err)
	}
	if other == m {
		t.Fatal("checkout for a different shape reused a mismatched arena")
	}
	if _, misses := p.Stats(); misses != 2 {
		t.Fatalf("misses = %d, want 2", misses)
	}
}

// TestPoolBounds: the per-shape cap drops surplus Mappers and the shape cap
// evicts the least recently used class wholesale.
func TestPoolBounds(t *testing.T) {
	p := New(2, 2)
	gA, tabA := testInstance(t, 30, 1)
	gB, tabB := testInstance(t, 31, 1)
	gC, tabC := testInstance(t, 32, 1)

	three := make([]*listsched.Mapper, 3)
	for i := range three {
		m, err := p.Get(gA, tabA)
		if err != nil {
			t.Fatal(err)
		}
		three[i] = m
	}
	for _, m := range three {
		p.Put(m)
	}
	if got := p.Len(); got != 2 {
		t.Fatalf("Len after returning 3 to a maxPerShape=2 pool = %d, want 2", got)
	}

	// Introduce shapes B then C; with maxShapes=2 and A least recently used,
	// A's bucket must be evicted.
	for _, in := range []struct {
		g   *dag.Graph
		tab *model.Table
	}{{gB, tabB}, {gC, tabC}} {
		m, err := p.Get(in.g, in.tab)
		if err != nil {
			t.Fatal(err)
		}
		p.Put(m)
	}
	m, err := p.Get(gA, tabA)
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range three {
		if m == old {
			t.Fatal("checkout for evicted shape A returned a pooled Mapper; expected a fresh one")
		}
	}
	p.Put(m)
}

// TestPoolConcurrent hammers the pool from many goroutines under -race: each
// worker loops checkout → evaluate → return on a shared instance and checks
// the makespan against a reference value.
func TestPoolConcurrent(t *testing.T) {
	p := New(0, 0)
	g, tab := testInstance(t, 80, 9)
	alloc := schedule.Ones(g.NumTasks())
	for i := range alloc {
		alloc[i] = 1 + i%tab.Procs()
	}
	ref, err := listsched.Makespan(g, tab, alloc)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				m, err := p.Get(g, tab)
				if err != nil {
					errs <- err
					return
				}
				got, err := m.Makespan(alloc)
				if err != nil {
					errs <- err
					return
				}
				if got != ref {
					errs <- errMakespanMismatch
					return
				}
				if rng.Intn(4) > 0 { // occasionally abandon instead of returning
					p.Put(m)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMakespanMismatch = errMismatch{}

type errMismatch struct{}

func (errMismatch) Error() string { return "pooled Mapper makespan differs from reference" }
