// Package evalpool pools listsched.Mapper evaluation arenas across EMTS
// runs. A Mapper owns ~10 per-instance scratch arrays (bottom levels, ready
// heap, processor availability, delta state — see listsched.Mapper); under
// serving load every request used to allocate one Mapper per EA worker and
// throw them all away. The pool keeps released Mappers filed by shape
// (task count, processor count): a warm checkout rebinds an existing arena to
// the request's (graph, table) pair in O(V) with zero heap allocations
// (listsched.Mapper.Rebind), which is what makes warm server requests
// allocate ~nothing on the evaluation path (DESIGN.md §12).
//
// Checked-out Mappers are exclusively owned by the caller; the pool itself is
// safe for concurrent use. Returned Mappers are Released first, so the pool
// never pins a request's graph or table — interned objects stay evictable.
package evalpool

import (
	"runtime"
	"sync"
	"sync/atomic"

	"emts/internal/dag"
	"emts/internal/listsched"
	"emts/internal/model"
)

// shape identifies an arena size class: every Mapper bound to a graph with
// `tasks` tasks on a cluster with `procs` processors uses identically sized
// arenas, so any released Mapper of the right shape serves any such request.
type shape struct {
	tasks, procs int
}

// bucket is one shape class: a LIFO stack of released Mappers plus intrusive
// LRU links (container/list would box every bucket through `any` on the
// checkout path, which the hot-path lint forbids). Batch mappers share the
// bucket — their planes are row-multiples of the same shape, so the same
// size-class filing, LRU position, and per-shape bound apply.
type bucket struct {
	key        shape
	mappers    []*listsched.Mapper
	batch      []*listsched.BatchMapper
	prev, next *bucket
}

// Pool is a bounded, shape-keyed free list of Mapper arenas.
type Pool struct {
	mu     sync.Mutex
	shapes map[shape]*bucket
	// head/tail of the shape LRU: head is most recently used. When a new
	// shape would exceed maxShapes, the least recently used bucket is
	// dropped wholesale — rotating workloads keep their hot shapes.
	head, tail  *bucket
	maxShapes   int
	maxPerShape int

	hits   atomic.Uint64
	misses atomic.Uint64
}

// Defaults bound worst-case retained memory: 64 shapes × 2·GOMAXPROCS
// Mappers, each holding O(V + P) scratch for its shape.
const defaultMaxShapes = 64

// New returns a Pool holding at most maxShapes size classes of maxPerShape
// Mappers each. Zero (or negative) values select the defaults: 64 shapes and
// 2×GOMAXPROCS Mappers per shape — enough for every EA worker of one request
// plus a second request of the same shape warming up.
func New(maxShapes, maxPerShape int) *Pool {
	if maxShapes <= 0 {
		maxShapes = defaultMaxShapes
	}
	if maxPerShape <= 0 {
		maxPerShape = 2 * runtime.GOMAXPROCS(0)
	}
	return &Pool{
		shapes:      make(map[shape]*bucket, maxShapes),
		maxShapes:   maxShapes,
		maxPerShape: maxPerShape,
	}
}

// Get checks a Mapper out of the pool, bound to (g, tab) and ready for use.
// On a pool hit the Mapper is a rebound arena (zero allocations); on a miss a
// fresh one is constructed. Either way the caller owns it exclusively until
// Put.
//
//schedlint:hotpath
func (p *Pool) Get(g *dag.Graph, tab *model.Table) (*listsched.Mapper, error) {
	k := shape{tasks: tab.NumTasks(), procs: tab.Procs()}
	var m *listsched.Mapper
	p.mu.Lock()
	if b := p.shapes[k]; b != nil {
		if n := len(b.mappers); n > 0 {
			m = b.mappers[n-1]
			b.mappers[n-1] = nil
			b.mappers = b.mappers[:n-1]
		}
		p.touch(b)
	}
	p.mu.Unlock()
	if m == nil {
		p.misses.Add(1)
		return listsched.NewMapper(g, tab)
	}
	// Rebind outside the lock: it is O(V) work that only touches the
	// checked-out Mapper.
	if err := m.Rebind(g, tab); err != nil {
		return nil, err
	}
	p.hits.Add(1)
	return m, nil
}

// Put releases m's graph/table references and returns its arenas to the
// pool. Mappers beyond the per-shape bound are dropped for the collector.
// m must not be used after Put.
//
//schedlint:hotpath
func (p *Pool) Put(m *listsched.Mapper) {
	if m == nil {
		return
	}
	m.Release()
	tasks, procs := m.Shape()
	if tasks == 0 || procs == 0 {
		return // never bound; nothing worth pooling
	}
	k := shape{tasks: tasks, procs: procs}
	p.mu.Lock()
	b := p.shapes[k]
	if b == nil {
		//schedlint:allow hotescape -- cold first-sight-of-shape path: one bucket per (tasks, procs) shape for the pool's lifetime
		b = &bucket{key: k, mappers: make([]*listsched.Mapper, 0, p.maxPerShape)}
		p.shapes[k] = b
		p.pushFront(b)
		if len(p.shapes) > p.maxShapes {
			p.evictLRU()
		}
	} else {
		p.touch(b)
	}
	if len(b.mappers) < p.maxPerShape {
		b.mappers = append(b.mappers, m)
	}
	p.mu.Unlock()
}

// GetBatch checks a BatchMapper out of the pool, bound to (g, tab) and ready
// for use — the batch twin of Get. On a pool hit the planes of the previous
// run of this shape are rebound with zero allocations (the first EvalBatch
// regrows them only if the batch is larger than any the instance has seen).
//
//schedlint:hotpath
func (p *Pool) GetBatch(g *dag.Graph, tab *model.Table) (*listsched.BatchMapper, error) {
	k := shape{tasks: tab.NumTasks(), procs: tab.Procs()}
	var bm *listsched.BatchMapper
	p.mu.Lock()
	if b := p.shapes[k]; b != nil {
		if n := len(b.batch); n > 0 {
			bm = b.batch[n-1]
			b.batch[n-1] = nil
			b.batch = b.batch[:n-1]
		}
		p.touch(b)
	}
	p.mu.Unlock()
	if bm == nil {
		p.misses.Add(1)
		return listsched.NewBatchMapper(g, tab)
	}
	if err := bm.Rebind(g, tab); err != nil {
		return nil, err
	}
	p.hits.Add(1)
	return bm, nil
}

// PutBatch releases bm's graph/table references and returns its planes to
// the pool — the batch twin of Put. bm must not be used after PutBatch.
//
//schedlint:hotpath
func (p *Pool) PutBatch(bm *listsched.BatchMapper) {
	if bm == nil {
		return
	}
	bm.Release()
	tasks, procs := bm.Shape()
	if tasks == 0 || procs == 0 {
		return
	}
	k := shape{tasks: tasks, procs: procs}
	p.mu.Lock()
	b := p.shapes[k]
	if b == nil {
		//schedlint:allow hotescape -- cold first-sight-of-shape path: one bucket per (tasks, procs) shape for the pool's lifetime
		b = &bucket{key: k, mappers: make([]*listsched.Mapper, 0, p.maxPerShape)}
		p.shapes[k] = b
		p.pushFront(b)
		if len(p.shapes) > p.maxShapes {
			p.evictLRU()
		}
	} else {
		p.touch(b)
	}
	if len(b.batch) < p.maxPerShape {
		b.batch = append(b.batch, bm)
	}
	p.mu.Unlock()
}

// Stats reports checkout hits (arena reused) and misses (fresh Mapper
// constructed) since the pool was created.
func (p *Pool) Stats() (hits, misses uint64) {
	return p.hits.Load(), p.misses.Load()
}

// Len reports the number of Mappers currently parked in the pool.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, b := range p.shapes {
		n += len(b.mappers) + len(b.batch)
	}
	return n
}

// pushFront links b at the head of the shape LRU. Caller holds p.mu.
func (p *Pool) pushFront(b *bucket) {
	b.prev = nil
	b.next = p.head
	if p.head != nil {
		p.head.prev = b
	}
	p.head = b
	if p.tail == nil {
		p.tail = b
	}
}

// touch moves b to the head of the shape LRU. Caller holds p.mu.
//
//schedlint:hotpath
func (p *Pool) touch(b *bucket) {
	if p.head == b {
		return
	}
	if b.prev != nil {
		b.prev.next = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
	if p.tail == b {
		p.tail = b.prev
	}
	b.prev = nil
	b.next = p.head
	if p.head != nil {
		p.head.prev = b
	}
	p.head = b
}

// evictLRU drops the least recently used shape class. Caller holds p.mu.
func (p *Pool) evictLRU() {
	b := p.tail
	if b == nil {
		return
	}
	if b.prev != nil {
		b.prev.next = nil
	}
	p.tail = b.prev
	if p.head == b {
		p.head = nil
	}
	delete(p.shapes, b.key)
}
