package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"emts/internal/model"
)

// TestRunDeterministicAcrossGOMAXPROCS is the meta-test behind the schedlint
// determinism analyzers (DESIGN.md §9): the full EMTS pipeline — seeding,
// (μ+λ) evolution with parallel fitness evaluation, memoization, final
// mapping — must produce bit-identical results regardless of how many OS
// threads the worker pool actually gets. It runs the pipeline twice at
// GOMAXPROCS=1 (fully serialized workers) and twice at GOMAXPROCS=8 (real
// interleaving) and requires all four Results to be deeply equal, histories
// and evaluation counters included. Run under -race this also shakes out
// unsynchronized sharing in the evaluation engine.
func TestRunDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomPTG(rng, 30)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)

	runAt := func(procs int) *Result {
		t.Helper()
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		p := EMTS10(99)
		p.Workers = 0 // resolve to GOMAXPROCS so parallelism really differs
		res, err := Run(g, tab, p)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		return res
	}

	ref := runAt(1)
	for _, procs := range []int{1, 8, 8, 1} {
		got := runAt(procs)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("GOMAXPROCS=%d diverged from reference run:\n got: makespan=%v history=%v evals=%d hits=%d\n ref: makespan=%v history=%v evals=%d hits=%d",
				procs, got.Makespan, got.History, got.Evaluations, got.CacheHits,
				ref.Makespan, ref.History, ref.Evaluations, ref.CacheHits)
		}
	}
}

// TestRunDeterministicCacheOnOff checks the companion claim documented on
// Params.DisableCache: the memoized evaluation engine is an optimization,
// not a semantic change, so cache on and cache off must agree on every
// search-visible output (schedule, allocation, history, evaluation budget).
// Cache bookkeeping itself is excluded: CacheHits is zero when disabled.
func TestRunDeterministicCacheOnOff(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomPTG(rng, 25)
	tab := model.MustTable(g, model.Synthetic{}, testCluster)

	pOn := EMTS5(5)
	pOff := EMTS5(5)
	pOff.DisableCache = true
	on, err := Run(g, tab, pOn)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(g, tab, pOff)
	if err != nil {
		t.Fatal(err)
	}
	// Cache bookkeeping is mode-dependent by design: CacheHits is zero with
	// the cache off, and PrefilterRejections counts only actual evaluator
	// calls, of which the uncached run makes more.
	on.CacheHits, off.CacheHits = 0, 0
	on.PrefilterRejections, off.PrefilterRejections = 0, 0
	if !reflect.DeepEqual(on, off) {
		t.Fatalf("cache on/off diverged:\n on:  makespan=%v history=%v evals=%d\n off: makespan=%v history=%v evals=%d",
			on.Makespan, on.History, on.Evaluations,
			off.Makespan, off.History, off.Evaluations)
	}
}

// TestRunDeterministicFastPathOnOff extends the cache meta-test to the PR 3
// evaluation fast path (DESIGN.md §10): the admissible lower-bound prefilter
// (Layer 1) and delta-aware bottom levels (Layer 3) are optimizations, not
// semantic changes, so every combination of the two switches must produce
// bit-identical search results — with rejection enabled, where both layers
// actually fire.
func TestRunDeterministicFastPathOnOff(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomPTG(rng, 25)
	tab := model.MustTable(g, model.Synthetic{}, testCluster)

	run := func(noPrefilter, noDelta bool) *Result {
		t.Helper()
		p := EMTS5(5)
		p.UseRejection = true
		p.DisablePrefilter = noPrefilter
		p.DisableDelta = noDelta
		res, err := Run(g, tab, p)
		if err != nil {
			t.Fatalf("prefilter=%v delta=%v: %v", !noPrefilter, !noDelta, err)
		}
		// PrefilterRejections is necessarily mode-dependent (zero with the
		// prefilter off); everything else must match bit for bit.
		res.PrefilterRejections = 0
		return res
	}

	ref := run(true, true) // both layers off: the PR 2 baseline behavior
	for _, c := range []struct{ noPre, noDelta bool }{{false, true}, {true, false}, {false, false}} {
		got := run(c.noPre, c.noDelta)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("fast path (prefilter=%v, delta=%v) diverged from baseline:\n got: makespan=%v history=%v evals=%d rejects=%d\n ref: makespan=%v history=%v evals=%d rejects=%d",
				!c.noPre, !c.noDelta, got.Makespan, got.History, got.Evaluations, got.Rejections,
				ref.Makespan, ref.History, ref.Evaluations, ref.Rejections)
		}
	}
}
