// Package core implements EMTS — Evolutionary Moldable Task Scheduling — the
// primary contribution of Hunold & Lepping (CLUSTER 2011), Section III.
//
// EMTS is a two-step scheduler. The allocation step is a (μ+λ) evolution
// strategy over allocation vectors whose fitness is the makespan produced by
// the list-scheduling mapping step (package listsched). The initial
// population is seeded with the allocations computed by other heuristics —
// MCPA, HCPA, and the Δ-critical-path heuristic (package alloc) — so the
// search starts from already-good solutions and improves them within a small,
// fixed number of generations. Because the fitness function only queries an
// execution-time table, EMTS works unchanged with any model, monotonic or
// not.
//
// The two configurations evaluated in the paper are provided as presets:
// EMTS5, a (5+25)-EA run for 5 generations, and EMTS10, a (10+100)-EA run for
// 10 generations.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"emts/internal/alloc"
	"emts/internal/dag"
	"emts/internal/ea"
	"emts/internal/evalpool"
	"emts/internal/listsched"
	"emts/internal/model"
	"emts/internal/schedule"
)

// Params configures one EMTS run. The zero value is not runnable; start from
// EMTS5, EMTS10, or DefaultParams and override fields as needed.
type Params struct {
	// Mu, Lambda, Generations define the (μ+λ)-EA (Section IV: (5+25)×5 for
	// EMTS5, (10+100)×10 for EMTS10).
	Mu, Lambda, Generations int
	// Fm is the initial mutation fraction (paper: 0.33).
	Fm float64
	// Mutation is the offspring operator; nil means the paper's Eq. (1)
	// operator with a = 0.2, σ₁ = σ₂ = 5.
	Mutation ea.Mutator
	// CrossoverProb enables the optional uniform-crossover extension
	// (ablation A4); the paper's EMTS is mutation-only (0).
	CrossoverProb float64
	// Seeds produce the starting individuals (Section III-B). Nil means
	// DefaultSeeds(Seed): MCPA, HCPA, Δ-CP(0.9), the all-ones allocation,
	// and one random individual. Seed allocators that fail are skipped (the
	// EA pads with random individuals); at least one must succeed.
	Seeds []alloc.Allocator
	// Strategy selects plus- (default, the paper's choice) or
	// comma-selection; see ea.Strategy.
	Strategy ea.Strategy
	// SelfAdaptive enables per-individual mutation step sizes (contemporary
	// ES style); see ea.Config.SelfAdaptive. InitialSigma 0 means the
	// paper's σ = 5.
	SelfAdaptive bool
	// InitialSigma is the starting step size for self-adaptation.
	InitialSigma float64
	// OnGeneration, when non-nil, receives per-generation statistics.
	OnGeneration func(ea.GenStats)
	// UseRejection enables the future-work rejection strategy of Section VI
	// inside the fitness function.
	UseRejection bool
	// DisableCache turns off the memoized, arena-reusing fitness-evaluation
	// engine: every evaluation then rebuilds its scratch state and duplicate
	// allocations are re-mapped from scratch. Results are bit-identical
	// either way; the switch exists for A/B measurement and the determinism
	// regression tests.
	DisableCache bool
	// DisablePrefilter turns off the O(V) admissible lower-bound prefilter
	// that short-circuits the map loop for rejected individuals when
	// UseRejection is set (DESIGN.md §10, Layer 1). Results are bit-identical
	// either way; A/B switch like DisableCache.
	DisablePrefilter bool
	// DisableDelta turns off delta-aware bottom-level evaluation: offspring
	// are then evaluated with a full O(V+E) bottom-level sweep instead of
	// recomputing only the alleles their mutation touched plus affected
	// ancestors (DESIGN.md §10, Layer 3). Results are bit-identical either
	// way; A/B switch like DisableCache. Delta evaluation requires the
	// engine, so DisableCache implies it.
	DisableDelta bool
	// DisableBatch turns off structure-of-arrays batch evaluation: each
	// generation's cache misses are then dispatched to the workers one
	// individual at a time through scalar Mappers instead of per-worker
	// chunks over a listsched.BatchMapper (DESIGN.md §13). Results are
	// bit-identical either way; A/B switch like DisableCache.
	DisableBatch bool
	// DisableWorkStealing forces the fixed contiguous-chunk batch dispatch
	// instead of the work-stealing deques (DESIGN.md §17). Results are
	// bit-identical either way; A/B switch like DisableBatch.
	DisableWorkStealing bool
	// Islands, when > 1, runs the EA as that many independent populations
	// with periodic migration (the island model, DESIGN.md §17). Each island
	// derives a private RNG stream from Seed, so results are deterministic
	// for any worker count; 0 and 1 mean the classic single population,
	// bit-identical to pre-island runs. See ea.Config.Islands.
	Islands int
	// MigrationInterval is the number of generations between migrations when
	// Islands > 1 (0 = every generation); see ea.Config.MigrationInterval.
	MigrationInterval int
	// MigrationCount is the number of top individuals each island emits per
	// migration (0 = 1); see ea.Config.MigrationCount.
	MigrationCount int
	// Topology selects the migration topology: ea.TopologyRing (default,
	// also "") or ea.TopologyFull.
	Topology string
	// Workers bounds fitness-evaluation parallelism (0 = GOMAXPROCS). With
	// Islands > 1 the budget is divided evenly across the islands.
	Workers int
	// CacheShards stripes the fitness memo cache (see ea.Config.CacheShards).
	// Results are bit-identical for any value; 0 picks a default.
	CacheShards int
	// MapperPool, when non-nil, supplies the listsched.Mapper arenas for this
	// run — the seed evaluator, every EA worker's evaluator pair, and the
	// final schedule materialization — instead of constructing fresh ones.
	// All checked-out Mappers are returned before RunContext returns. Results
	// are bit-identical with or without a pool (Mapper.Rebind resets all
	// instance state); nil means allocate per run, the pre-pool behavior.
	MapperPool *evalpool.Pool
	// Seed drives every stochastic choice. Equal seeds ⇒ identical results,
	// which is how the paper guarantees EMTS10 finds every EMTS5 solution.
	Seed int64
}

// EMTS5 returns the paper's (5+25)-EA preset, run for 5 generations.
func EMTS5(seed int64) Params {
	return Params{Mu: 5, Lambda: 25, Generations: 5, Fm: 0.33, Seed: seed}
}

// EMTS10 returns the paper's (10+100)-EA preset, run for 10 generations.
func EMTS10(seed int64) Params {
	return Params{Mu: 10, Lambda: 100, Generations: 10, Fm: 0.33, Seed: seed}
}

// DefaultParams is an alias for EMTS5, the configuration the paper deems
// applicable in practice for every workload size.
func DefaultParams(seed int64) Params { return EMTS5(seed) }

// DefaultSeeds returns the paper's starting-solution providers: the
// allocation functions of MCPA and HCPA (Section III-B), the Δ-critical-path
// heuristic with Δ = 0.9 (Section IV), the all-ones allocation, and one
// seeded random individual.
func DefaultSeeds(seed int64) []alloc.Allocator {
	return []alloc.Allocator{
		alloc.MCPA{},
		alloc.HCPA{},
		alloc.DeltaCP{Delta: 0.9},
		alloc.OneEach{},
		alloc.Random{Seed: seed},
	}
}

// SeedResult records how one starting heuristic performed, for reporting and
// for the relative-makespan figures.
type SeedResult struct {
	// Name is the allocator's name.
	Name string
	// Makespan is the fitness of the heuristic's allocation under the EMTS
	// mapping function.
	Makespan float64
	// Err is non-nil when the allocator failed and was skipped.
	Err error
}

// Result is the outcome of one EMTS run.
type Result struct {
	// Schedule is the fully mapped best schedule (passes Validate).
	Schedule *schedule.Schedule
	// Alloc is the best allocation vector found.
	Alloc schedule.Allocation
	// Makespan is the fitness of Alloc — the optimization objective.
	Makespan float64
	// Seeds reports the starting heuristics and their makespans.
	Seeds []SeedResult
	// History is the best makespan after initialization and after each
	// generation (non-increasing).
	History []float64
	// Evaluations counts fitness evaluations; Rejections counts the ones cut
	// short by the rejection bound. Evaluations is independent of the
	// fitness cache: memoized answers still count toward the budget.
	Evaluations, Rejections int
	// CacheHits counts fitness evaluations answered by the memoization
	// cache instead of a fresh list-scheduling pass (see ea.Result.CacheHits).
	CacheHits int
	// PrefilterRejections counts the rejections decided by the O(V)
	// lower-bound prefilter instead of the map loop (see
	// ea.Result.PrefilterRejections) — map loops skipped entirely.
	PrefilterRejections int
	// Generations counts the EA generations actually completed (see
	// ea.Result.Generations). It is smaller than Params.Generations when the
	// run was cancelled mid-flight and the Result is the anytime incumbent.
	Generations int
	// Islands is the effective island count the run used: 1 for the classic
	// single population (Params.Islands <= 1), Params.Islands otherwise.
	Islands int
}

// BestSeedMakespan returns the smallest makespan among successful starting
// heuristics, or +Inf if none succeeded. By plus-selection,
// Result.Makespan <= BestSeedMakespan always holds.
func (r *Result) BestSeedMakespan() float64 {
	best := math.Inf(1)
	for _, s := range r.Seeds {
		if s.Err == nil && s.Makespan < best {
			best = s.Makespan
		}
	}
	return best
}

// Run executes EMTS on graph g with execution times tab (which also carries
// the processor count of the platform).
func Run(g *dag.Graph, tab *model.Table, p Params) (*Result, error) {
	return RunContext(context.Background(), g, tab, p)
}

// RunContext is Run with cooperative cancellation: the evolutionary loop
// observes ctx once per generation (see ea.RunContext), so an in-flight
// optimization stops within one generation of ctx being cancelled or its
// deadline passing. Cancellation never perturbs results — a run that
// completes is bit-identical to the same seed without a context.
//
// A cancellation after the EA's initial evaluation returns the partial
// Result alongside the context error: the incumbent allocation is
// materialized into a fully validated schedule exactly like a completed
// run's, and Result.Generations records how many generations finished —
// the anytime contract of the (μ+λ) plus-strategy (paper §III: the
// population never worsens, so every intermediate best is a valid answer).
// Callers distinguish the cases by (res, err): complete (res, nil), anytime
// partial (res, ctx error), nothing usable (nil, err).
func RunContext(ctx context.Context, g *dag.Graph, tab *model.Table, p Params) (*Result, error) {
	if g.NumTasks() == 0 {
		return nil, errors.New("emts: empty graph")
	}
	if tab.NumTasks() != g.NumTasks() {
		return nil, fmt.Errorf("emts: table covers %d tasks, graph has %d", tab.NumTasks(), g.NumTasks())
	}
	procs := tab.Procs()

	seeders := p.Seeds
	if seeders == nil {
		seeders = DefaultSeeds(p.Seed)
	}
	res := &Result{}

	// newMapper checks arenas out of the configured pool (warm checkouts
	// rebind existing arenas with zero allocations) or constructs them fresh;
	// every checked-out Mapper is returned when the run ends. Within one
	// evaluation engine the factories run serially before its worker
	// goroutines (evalEngine.evaluator documents the contract), but an
	// Islands > 1 run constructs N engines' evaluators concurrently — one
	// per island goroutine — so the checkout lists take a mutex. Cold path:
	// O(workers + islands) acquisitions per run, never per evaluation.
	var (
		mapperMu        sync.Mutex
		checkedOut      []*listsched.Mapper
		checkedOutBatch []*listsched.BatchMapper
	)
	newMapper := func() (*listsched.Mapper, error) {
		if p.MapperPool == nil {
			return listsched.NewMapper(g, tab)
		}
		m, err := p.MapperPool.Get(g, tab)
		if err != nil {
			return nil, err
		}
		mapperMu.Lock()
		checkedOut = append(checkedOut, m)
		mapperMu.Unlock()
		return m, nil
	}
	newBatchMapper := func() (*listsched.BatchMapper, error) {
		if p.MapperPool == nil {
			return listsched.NewBatchMapper(g, tab)
		}
		bm, err := p.MapperPool.GetBatch(g, tab)
		if err != nil {
			return nil, err
		}
		mapperMu.Lock()
		checkedOutBatch = append(checkedOutBatch, bm)
		mapperMu.Unlock()
		return bm, nil
	}
	defer func() {
		for _, m := range checkedOut {
			p.MapperPool.Put(m)
		}
		for _, bm := range checkedOutBatch {
			p.MapperPool.PutBatch(bm)
		}
	}()

	seedMapper, err := newMapper()
	if err != nil {
		return nil, err
	}
	var seedAllocs []schedule.Allocation
	for _, s := range seeders {
		a, err := s.Allocate(g, tab)
		if err != nil {
			res.Seeds = append(res.Seeds, SeedResult{Name: s.Name(), Err: err})
			continue
		}
		a.Clamp(procs)
		ms, err := seedMapper.Makespan(a)
		if err != nil {
			res.Seeds = append(res.Seeds, SeedResult{Name: s.Name(), Err: err})
			continue
		}
		res.Seeds = append(res.Seeds, SeedResult{Name: s.Name(), Makespan: ms})
		seedAllocs = append(seedAllocs, a)
	}
	if len(seedAllocs) == 0 && len(seeders) > 0 {
		return nil, fmt.Errorf("emts: every starting heuristic failed (first: %v)", res.Seeds[0].Err)
	}

	// mapErr translates listsched sentinels into their ea mirrors so the
	// evaluation engine can count rejections (and prefilter rejections)
	// without importing listsched. The prefilter variant wraps the generic
	// one, so it must be tested first.
	mapErr := func(err error) error {
		if errors.Is(err, listsched.ErrRejectedPrefilter) {
			return ea.ErrRejectedPrefilter
		}
		if errors.Is(err, listsched.ErrRejected) {
			return ea.ErrRejected
		}
		return err
	}

	// fitness is the legacy shared evaluator; with the evaluation engine
	// enabled (the default) each EA worker instead owns an arena-backed
	// Mapper from the factory below, so a warm fitness call allocates
	// nothing. Both paths produce bit-identical makespans.
	fitness := func(a schedule.Allocation, rejectAbove float64) (float64, error) {
		s, err := listsched.MapWithOptions(g, tab, a, listsched.Options{
			SkipProcSets:     true,
			RejectAbove:      rejectAbove,
			DisablePrefilter: p.DisablePrefilter,
		})
		if err != nil {
			return 0, mapErr(err)
		}
		return s.Makespan(), nil
	}
	var deltaFactory func() (ea.Evaluator, ea.DeltaEvaluator)
	if !p.DisableCache {
		baseOpt := listsched.Options{SkipProcSets: true, DisablePrefilter: p.DisablePrefilter}
		deltaFactory = func() (ea.Evaluator, ea.DeltaEvaluator) {
			m, err := newMapper()
			if err != nil {
				return fitness, nil // unreachable: sizes were validated above
			}
			// Both closures share one Mapper (and thus its bottom-level
			// arena and parent-baseline cache); the engine calls them from a
			// single worker goroutine, never concurrently.
			plain := func(a schedule.Allocation, rejectAbove float64) (float64, error) {
				opt := baseOpt
				opt.RejectAbove = rejectAbove
				f, err := m.MakespanOpts(a, opt)
				if err != nil {
					return 0, mapErr(err)
				}
				return f, nil
			}
			delta := func(a, parent schedule.Allocation, mutated []int, rejectAbove float64) (float64, error) {
				opt := baseOpt
				opt.RejectAbove = rejectAbove
				f, err := m.MakespanDelta(a, parent, mutated, opt)
				if err != nil {
					return 0, mapErr(err)
				}
				return f, nil
			}
			return plain, delta
		}
	}

	// The batch factory hands each EA worker a BatchMapper evaluating its
	// whole chunk of the generation over structure-of-arrays planes
	// (DESIGN.md §13). It is independent of the cache switch: with the
	// cache off every individual reaches the batch; with it on, only misses
	// do. The ea mirror types are converted into listsched items through a
	// closure-owned scratch slice, reused across generations.
	var batchFactory func() ea.BatchEvaluator
	if !p.DisableBatch {
		batchOpt := listsched.Options{SkipProcSets: true, DisablePrefilter: p.DisablePrefilter}
		batchFactory = func() ea.BatchEvaluator {
			bm, err := newBatchMapper()
			if err != nil {
				// Unreachable (sizes were validated above), but a constructor
				// error must surface: the engine files it on every individual
				// of the chunk.
				return func([]ea.BatchItem, float64, []float64, []error) error { return err }
			}
			var scratch []listsched.BatchItem
			return func(items []ea.BatchItem, rejectAbove float64, fitness []float64, errs []error) error {
				if cap(scratch) < len(items) {
					scratch = make([]listsched.BatchItem, len(items))
				}
				scratch = scratch[:len(items)]
				for i := range items {
					scratch[i] = listsched.BatchItem{
						Alloc:   items[i].Alloc,
						Parent:  items[i].Parent,
						Mutated: items[i].Mutated,
					}
				}
				opt := batchOpt
				opt.RejectAbove = rejectAbove
				bm.EvalBatch(scratch, opt, fitness, errs)
				for i := range scratch {
					if errs[i] != nil {
						errs[i] = mapErr(errs[i])
					}
				}
				return nil
			}
		}
	}

	cfg := ea.Config{
		Mu:                    p.Mu,
		Lambda:                p.Lambda,
		Generations:           p.Generations,
		Fm:                    p.Fm,
		Mutator:               p.Mutation,
		CrossoverProb:         p.CrossoverProb,
		UseRejection:          p.UseRejection,
		Workers:               p.Workers,
		Seed:                  p.Seed,
		DeltaEvaluatorFactory: deltaFactory,
		BatchEvaluatorFactory: batchFactory,
		DisableBatch:          p.DisableBatch,
		DisableDelta:          p.DisableDelta,
		DisableCache:          p.DisableCache,
		DisableWorkStealing:   p.DisableWorkStealing,
		Islands:               p.Islands,
		MigrationInterval:     p.MigrationInterval,
		MigrationCount:        p.MigrationCount,
		Topology:              p.Topology,
		CacheShards:           p.CacheShards,
		Strategy:              p.Strategy,
		SelfAdaptive:          p.SelfAdaptive,
		InitialSigma:          p.InitialSigma,
		OnGeneration:          p.OnGeneration,
	}
	run, runErr := ea.RunContext(ctx, cfg, g.NumTasks(), procs, seedAllocs, fitness)
	if run == nil {
		// Hard failure or a cancellation before the initial evaluation:
		// nothing usable to materialize.
		return nil, runErr
	}

	// Materialize the best schedule on the seed Mapper instead of the one-shot
	// package function: Mapper results are bit-identical to listsched.Map, and
	// reusing the arena saves a full Mapper construction per run. The same
	// path materializes the incumbent of a cancelled run (runErr non-nil),
	// so an anytime answer passes the exact validation a completed one does.
	sched, err := seedMapper.Map(run.Best.Alloc)
	if err != nil {
		return nil, fmt.Errorf("emts: mapping best allocation: %w", err)
	}
	res.Schedule = sched
	res.Alloc = run.Best.Alloc
	res.Makespan = run.Best.Fitness
	res.History = run.History
	res.Evaluations = run.Evaluations
	res.Rejections = run.Rejections
	res.CacheHits = run.CacheHits
	res.PrefilterRejections = run.PrefilterRejections
	res.Generations = run.Generations
	res.Islands = 1
	if p.Islands > 1 {
		res.Islands = p.Islands
	}
	return res, runErr
}
