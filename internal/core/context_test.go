package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"emts/internal/ea"
	"emts/internal/model"
)

// TestRunContextCancelMidEA cancels an EMTS run from the per-generation hook
// and asserts the run aborts with context.Canceled instead of completing all
// generations.
func TestRunContextCancelMidEA(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomPTG(rng, 25)
	tab := model.MustTable(g, model.Synthetic{}, testCluster)

	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := EMTS10(9)
	p.OnGeneration = func(ea.GenStats) {
		calls++
		cancel()
	}
	_, err := RunContext(ctx, g, tab, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("EA ran %d generations after cancellation, want stop within one", calls-1)
	}
}

// TestRunContextTransparent asserts that running under a live context is
// bit-identical to Run with the same seed.
func TestRunContextTransparent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomPTG(rng, 25)
	tab := model.MustTable(g, model.Synthetic{}, testCluster)

	plain, err := Run(g, tab, EMTS5(21))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx, err := RunContext(ctx, g, tab, EMTS5(21))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan != withCtx.Makespan || !reflect.DeepEqual(plain.Alloc, withCtx.Alloc) ||
		!reflect.DeepEqual(plain.History, withCtx.History) {
		t.Fatal("RunContext result differs from Run with the same seed")
	}
}
