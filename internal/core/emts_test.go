package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"emts/internal/alloc"
	"emts/internal/dag"
	"emts/internal/listsched"
	"emts/internal/model"
	"emts/internal/platform"
)

var testCluster = platform.Cluster{Name: "test", Procs: 16, SpeedGFlops: 1}

// randomPTG builds a random layered PTG with n tasks.
func randomPTG(rng *rand.Rand, n int) *dag.Graph {
	b := dag.NewBuilder("rand")
	for i := 0; i < n; i++ {
		b.AddTask(dag.Task{Flops: 1e9 + rng.Float64()*40e9, Alpha: rng.Float64() / 4})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.15 {
				b.AddEdge(dag.TaskID(i), dag.TaskID(j))
			}
		}
	}
	return b.MustBuild()
}

func TestPresetsMatchPaper(t *testing.T) {
	p5 := EMTS5(1)
	if p5.Mu != 5 || p5.Lambda != 25 || p5.Generations != 5 || p5.Fm != 0.33 {
		t.Fatalf("EMTS5 = %+v", p5)
	}
	p10 := EMTS10(1)
	if p10.Mu != 10 || p10.Lambda != 100 || p10.Generations != 10 {
		t.Fatalf("EMTS10 = %+v", p10)
	}
	if !reflect.DeepEqual(DefaultParams(3), EMTS5(3)) {
		t.Fatal("DefaultParams != EMTS5")
	}
}

func TestDefaultSeedsArePaperHeuristics(t *testing.T) {
	names := map[string]bool{}
	for _, s := range DefaultSeeds(1) {
		names[s.Name()] = true
	}
	for _, want := range []string{"mcpa", "hcpa", "delta-cp"} {
		if !names[want] {
			t.Errorf("default seeds missing %s", want)
		}
	}
}

func TestRunProducesValidScheduleBothModels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomPTG(rng, 25)
	for _, m := range []model.Model{model.Amdahl{}, model.Synthetic{}} {
		tab := model.MustTable(g, m, testCluster)
		res, err := Run(g, tab, EMTS5(42))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if err := res.Schedule.Validate(g, tab); err != nil {
			t.Fatalf("%s: invalid schedule: %v", m.Name(), err)
		}
		if res.Schedule.Makespan() != res.Makespan {
			t.Fatalf("%s: schedule makespan %g != reported %g",
				m.Name(), res.Schedule.Makespan(), res.Makespan)
		}
		if err := res.Alloc.Validate(g, testCluster.Procs); err != nil {
			t.Fatalf("%s: invalid best allocation: %v", m.Name(), err)
		}
	}
}

func TestRunNeverWorseThanSeeds(t *testing.T) {
	// Plus-selection with heuristic seeds: EMTS must return a makespan no
	// larger than the best seed's, for random graphs and both models.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomPTG(rng, 5+rng.Intn(25))
		var m model.Model = model.Amdahl{}
		if rng.Intn(2) == 0 {
			m = model.Synthetic{}
		}
		tab := model.MustTable(g, m, testCluster)
		res, err := Run(g, tab, EMTS5(seed))
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		return res.Makespan <= res.BestSeedMakespan()*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRunImprovesOverMCPAUnderModel2(t *testing.T) {
	// The paper's headline: under the non-monotonic model EMTS reduces the
	// makespan relative to MCPA/HCPA, and the gains are largest on bigger
	// platforms (Section V-B) — on a 16-proc cluster MCPA can already be
	// optimal, so use a 64-proc cluster where slack exists. Require a strict
	// improvement for at least one of a few seeds to keep the test robust.
	big := platform.Cluster{Name: "big", Procs: 64, SpeedGFlops: 1}
	rng := rand.New(rand.NewSource(7))
	g := randomPTG(rng, 40)
	tab := model.MustTable(g, model.Synthetic{}, big)
	mcpaAlloc, err := alloc.MCPA{}.Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	mcpaMS, err := listsched.Makespan(g, tab, mcpaAlloc)
	if err != nil {
		t.Fatal(err)
	}
	improved := false
	for seed := int64(0); seed < 3; seed++ {
		res, err := Run(g, tab, EMTS5(seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < mcpaMS {
			improved = true
			break
		}
	}
	if !improved {
		t.Fatalf("EMTS5 never beat MCPA (%g) in 3 seeds", mcpaMS)
	}
}

func TestRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomPTG(rng, 20)
	tab := model.MustTable(g, model.Synthetic{}, testCluster)
	r1, err := Run(g, tab, EMTS5(11))
	if err != nil {
		t.Fatal(err)
	}
	p := EMTS5(11)
	p.Workers = 1
	r2, err := Run(g, tab, p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan || !reflect.DeepEqual(r1.Alloc, r2.Alloc) {
		t.Fatal("EMTS not deterministic across worker counts")
	}
	if !reflect.DeepEqual(r1.History, r2.History) {
		t.Fatalf("histories differ: %v vs %v", r1.History, r2.History)
	}
}

func TestHistoryNonIncreasingAndSized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomPTG(rng, 15)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	res, err := Run(g, tab, EMTS10(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 11 {
		t.Fatalf("history length %d, want 11", len(res.History))
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatal("history increased")
		}
	}
}

func TestSeedReportIncludesMakespans(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomPTG(rng, 12)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	res, err := Run(g, tab, EMTS5(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != len(DefaultSeeds(1)) {
		t.Fatalf("%d seed results, want %d", len(res.Seeds), len(DefaultSeeds(1)))
	}
	for _, s := range res.Seeds {
		if s.Err == nil && s.Makespan <= 0 {
			t.Fatalf("seed %s has makespan %g", s.Name, s.Makespan)
		}
	}
}

func TestRunWithRejectionSameResult(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomPTG(rng, 20)
	tab := model.MustTable(g, model.Synthetic{}, testCluster)
	plain, err := Run(g, tab, EMTS5(2))
	if err != nil {
		t.Fatal(err)
	}
	p := EMTS5(2)
	p.UseRejection = true
	rej, err := Run(g, tab, p)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan != rej.Makespan {
		t.Fatalf("rejection changed result: %g vs %g", plain.Makespan, rej.Makespan)
	}
	if rej.Rejections == 0 {
		t.Log("note: no rejections fired on this instance (allowed but unusual)")
	}
}

func TestRunCustomSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomPTG(rng, 10)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	p := EMTS5(1)
	p.Seeds = []alloc.Allocator{alloc.OneEach{}}
	res, err := Run(g, tab, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 || res.Seeds[0].Name != "one" {
		t.Fatalf("seed report: %+v", res.Seeds)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := randomPTG(rng, 5)
	small := randomPTG(rng, 3)
	tab := model.MustTable(small, model.Amdahl{}, testCluster)
	if _, err := Run(g, tab, EMTS5(1)); err == nil {
		t.Fatal("mismatched table accepted")
	}
	empty := dag.NewBuilder("empty").MustBuild()
	emptyTab := model.MustTable(empty, model.Amdahl{}, testCluster)
	if _, err := Run(empty, emptyTab, EMTS5(1)); err == nil {
		t.Fatal("empty graph accepted")
	}
	bad := EMTS5(1)
	bad.Mu = 0
	if _, err := Run(g, model.MustTable(g, model.Amdahl{}, testCluster), bad); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestEMTS10AtLeastAsGoodAsEMTS5(t *testing.T) {
	// Same seed: EMTS10 explores a superset of configurations in expectation.
	// The paper observes EMTS10 >= EMTS5 with the same RNG seed; our RNG
	// consumption differs between configs, so assert the weaker (and still
	// meaningful) property on the *seeded* start: both must beat the best
	// seed, and EMTS10 must not be worse than EMTS5 by more than noise on a
	// batch of instances.
	rng := rand.New(rand.NewSource(23))
	worse := 0
	const instances = 5
	for k := 0; k < instances; k++ {
		g := randomPTG(rng, 30)
		tab := model.MustTable(g, model.Synthetic{}, testCluster)
		r5, err := Run(g, tab, EMTS5(int64(k)))
		if err != nil {
			t.Fatal(err)
		}
		r10, err := Run(g, tab, EMTS10(int64(k)))
		if err != nil {
			t.Fatal(err)
		}
		if r10.Makespan > r5.Makespan {
			worse++
		}
	}
	if worse > instances/2 {
		t.Fatalf("EMTS10 worse than EMTS5 on %d/%d instances", worse, instances)
	}
}
