package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"emts/internal/daggen"
)

// perfConfigs enumerates the cross-request performance layer's A/B corners:
// every switch in both positions plus shard-count extremes. Responses must be
// byte-identical across all of them.
func perfConfigs() map[string]Config {
	return map[string]Config{
		"all-on":      {Workers: 2},
		"no-intern":   {Workers: 2, DisableInterning: true},
		"no-pool":     {Workers: 2, DisablePooling: true},
		"no-governor": {Workers: 2, DisableGovernor: true},
		"all-off":     {Workers: 2, DisableInterning: true, DisablePooling: true, DisableGovernor: true},
		"shards1":     {Workers: 2, CacheShards: 1},
		"shards64":    {Workers: 2, CacheShards: 64},
	}
}

// TestPerfLayerBitIdentical is the server-level determinism meta-test of
// DESIGN.md §12: for a fixed request stream, every combination of interning,
// pooling, governor, and shard count must produce byte-identical response
// bodies.
func TestPerfLayerBitIdentical(t *testing.T) {
	graph := testGraphJSON(t)
	var requests [][]byte
	for _, algo := range []string{"emts5", "mcpa"} {
		for seed := int64(1); seed <= 3; seed++ {
			requests = append(requests, []byte(fmt.Sprintf(
				`{"graph":%s,"cluster":{"preset":"chti"},"algorithm":%q,"seed":%d}`, graph, algo, seed)))
		}
	}
	// The request set is replayed twice per server so warm-path code (intern
	// hits, pooled mappers) actually executes; the response cache would mask
	// it, so it is disabled.
	var baseline [][]byte
	for _, name := range []string{"all-on", "no-intern", "no-pool", "no-governor", "all-off", "shards1", "shards64"} {
		cfg := perfConfigs()[name]
		cfg.CacheEntries = -1
		s, ts := newTestServer(t, cfg)
		_ = s
		var bodies [][]byte
		for round := 0; round < 2; round++ {
			for _, req := range requests {
				resp := post(t, ts.URL, req)
				b := readAll(t, resp)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s: status %d: %s", name, resp.StatusCode, b)
				}
				bodies = append(bodies, b)
			}
		}
		if baseline == nil {
			baseline = bodies
			continue
		}
		for i := range bodies {
			if !bytes.Equal(bodies[i], baseline[i]) {
				t.Fatalf("%s: response %d differs from the all-on baseline:\n%s\nvs\n%s",
					name, i, bodies[i], baseline[i])
			}
		}
	}
}

// TestInternedGraphStress hammers one interned graph from many goroutines —
// all requests share a single dag.Graph and model.Table instance, so this is
// the -race proof that interned objects are safe for concurrent use.
func TestInternedGraphStress(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, CacheEntries: -1})
	graph := testGraphJSON(t)

	const goroutines = 8
	const perG = 10
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Few distinct seeds: every goroutine computes on the shared
				// graph/table instead of replaying cached bodies.
				body := []byte(fmt.Sprintf(
					`{"graph":%s,"cluster":{"preset":"chti"},"algorithm":"emts5","seed":%d}`, graph, i%3))
				resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d: status %d: %s", w, resp.StatusCode, b)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if hits, _ := s.graphs.Stats(); hits == 0 {
		t.Error("no graph-intern hits after hammering one graph")
	}
	if hits, _ := s.tables.Stats(); hits == 0 {
		t.Error("no table-intern hits after hammering one graph")
	}
	if hits, _ := s.pool.Stats(); hits == 0 {
		t.Error("no mapper-pool hits after repeated EMTS runs")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readAll(t, resp))
	for _, series := range []string{
		"emts_intern_graph_hits_total", "emts_intern_table_hits_total",
		"emts_mapper_pool_hits_total", "emts_governor_tokens_capacity",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing %s:\n%s", series, metrics)
		}
	}
}

// TestInternedHeader checks the X-Emts-Interned response header: absent on
// first sight, "graph,table" once both caches are warm.
func TestInternedHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, CacheEntries: -1})
	body := scheduleBody(t, "mcpa", 7)

	first := post(t, ts.URL, body)
	readAll(t, first)
	if got := first.Header.Get("X-Emts-Interned"); got != "" {
		t.Fatalf("first request interned header %q, want empty", got)
	}
	second := post(t, ts.URL, body)
	readAll(t, second)
	if got := second.Header.Get("X-Emts-Interned"); got != "graph,table" {
		t.Fatalf("warm request interned header %q, want graph,table", got)
	}
}

// computeJob builds a job for s.compute directly (bypassing HTTP), the warm
// schedule path the allocation regression measures.
func computeJob(t testing.TB, s *Server, body []byte) *job {
	t.Helper()
	p, err := parseScheduleRequest(body, 0, 0, s.graphs)
	if err != nil {
		t.Fatal(err)
	}
	return &job{ctx: context.Background(), parsed: p}
}

// TestWarmRequestAllocations extends PR 1's zero-alloc regression to the full
// server schedule path: once graph, table, and mappers are warm, a repeat
// request must allocate several times less than the everything-disabled
// configuration. The workload is the repeat-structure benchmark shape (one
// 300-task irregular PTG, many seeds), where the warm path skips JSON decode,
// graph construction, V×P table evaluation, and Mapper construction; what
// remains is EA-inherent per-run state (population clones, memo maps) plus
// the response marshal, which both paths pay. The precise factor is recorded
// in artifacts/BENCH_PR5.json; this floor is conservative so the test stays
// green across toolchains.
func TestWarmRequestAllocations(t *testing.T) {
	g, err := daggen.Random(daggen.RandomConfig{
		N: 300, Width: 0.5, Regularity: 0.8, Density: 0.5, Jump: 1,
	}, daggen.DefaultCosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(fmt.Sprintf(
		`{"graph":%s,"cluster":{"preset":"chti"},"algorithm":"emts5","seed":11}`, raw))

	warmSrv := New(Config{Workers: 1, CacheEntries: -1})
	defer warmSrv.Shutdown(context.Background())
	coldSrv := New(Config{Workers: 1, CacheEntries: -1,
		DisableInterning: true, DisablePooling: true, DisableGovernor: true})
	defer coldSrv.Shutdown(context.Background())

	measure := func(s *Server) float64 {
		// Warm-up run: populates interns and the mapper pool where enabled.
		if res := s.compute(computeJob(t, s, body)); res.code != http.StatusOK {
			t.Fatalf("warm-up compute: %d %s", res.code, res.body)
		}
		return testing.AllocsPerRun(10, func() {
			if res := s.compute(computeJob(t, s, body)); res.code != http.StatusOK {
				t.Fatalf("compute: %d %s", res.code, res.body)
			}
		})
	}
	warm := measure(warmSrv)
	cold := measure(coldSrv)
	t.Logf("allocations per request: warm path %.0f, cold path %.0f (%.1fx)", warm, cold, cold/warm)
	if warm*3 > cold {
		t.Errorf("warm path allocates %.0f/request vs %.0f cold — want at least a 3x reduction", warm, cold)
	}
}
