package server

import (
	"errors"
	"testing"

	"emts/internal/dag"
)

const keyGraph = `{"tasks":[{"flops":1,"alpha":0.5},{"flops":2,"alpha":0.5}],"edges":[[0,1]]}`

func mustParse(t *testing.T, body string) *parsedRequest {
	t.Helper()
	p, err := parseScheduleRequest([]byte(body), 0, 0, nil)
	if err != nil {
		t.Fatalf("parseScheduleRequest(%q): %v", body, err)
	}
	return p
}

// TestCanonicalKeyInvariance: the cache key depends on the decoded request,
// not its serialization — whitespace, field order, and equivalent encodings
// all map to the same key.
func TestCanonicalKeyInvariance(t *testing.T) {
	base := mustParse(t, `{"graph":`+keyGraph+`,"cluster":{"preset":"chti"},"algorithm":"emts5","seed":3}`)
	same := []string{
		// Field order shuffled, whitespace added.
		`{ "seed": 3, "algorithm": "EMTS5", "cluster": { "preset": "chti" },
		   "graph": ` + keyGraph + ` }`,
		// Model defaulting: "synthetic" is the default.
		`{"graph":` + keyGraph + `,"cluster":{"preset":"chti"},"model":"synthetic","algorithm":"emts5","seed":3}`,
	}
	for i, body := range same {
		if got := mustParse(t, body).key; got != base.key {
			t.Errorf("variant %d: key %s != base %s", i, got, base.key)
		}
	}

	different := []string{
		// Different seed.
		`{"graph":` + keyGraph + `,"cluster":{"preset":"chti"},"algorithm":"emts5","seed":4}`,
		// Different algorithm.
		`{"graph":` + keyGraph + `,"cluster":{"preset":"chti"},"algorithm":"emts10","seed":3}`,
		// Different cluster.
		`{"graph":` + keyGraph + `,"cluster":{"preset":"grelon"},"algorithm":"emts5","seed":3}`,
		// Different model.
		`{"graph":` + keyGraph + `,"cluster":{"preset":"chti"},"model":"amdahl","algorithm":"emts5","seed":3}`,
		// Different graph weight.
		`{"graph":{"tasks":[{"flops":1,"alpha":0.5},{"flops":3,"alpha":0.5}],"edges":[[0,1]]},"cluster":{"preset":"chti"},"algorithm":"emts5","seed":3}`,
	}
	for i, body := range different {
		if got := mustParse(t, body).key; got == base.key {
			t.Errorf("variant %d: key collides with base (%s)", i, got)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	p := mustParse(t, `{"graph":`+keyGraph+`,"cluster":{"preset":"chti"}}`)
	if p.model != "synthetic" || p.algorithm != "emts5" {
		t.Fatalf("defaults = %q/%q, want synthetic/emts5", p.model, p.algorithm)
	}
	if p.cluster.Procs != 20 {
		t.Fatalf("chti procs = %d, want 20", p.cluster.Procs)
	}
}

func TestParseMaxTasks(t *testing.T) {
	_, err := parseScheduleRequest([]byte(`{"graph":`+keyGraph+`,"cluster":{"preset":"chti"}}`), 1, 0, nil)
	var reqErr *RequestError
	if !errors.As(err, &reqErr) || reqErr.Field != "graph.tasks" {
		t.Fatalf("want RequestError on graph.tasks, got %v", err)
	}
}

func TestParseStrictGraph(t *testing.T) {
	_, err := parseScheduleRequest([]byte(`{"graph":{"tasks":[{"flops":1}],"edges":[[0,5]]},"cluster":{"preset":"chti"}}`), 0, 0, nil)
	var decErr *dag.DecodeError
	if !errors.As(err, &decErr) {
		t.Fatalf("want dag.DecodeError for out-of-range edge, got %v", err)
	}
}
