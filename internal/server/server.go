// Package server implements emts-serve: a stdlib-only HTTP/JSON scheduling
// service in front of the simulator's by-name interface (package sim).
//
// # Request lifecycle
//
// POST /v1/schedule carries a PTG (the dag JSON codec), a cluster, a model
// name, an algorithm name, and a seed. The handler validates the body with
// typed errors (400), consults a canonical-hash response cache, and admits
// the request to a depth-limited queue in front of a bounded worker pool;
// queue overflow returns 429 with Retry-After. Each admitted request carries
// a context assembled from the client connection and the per-request
// deadline, and the evolutionary algorithm observes that context once per
// generation (ea.RunContext) — a dropped connection or an expired deadline
// stops an in-flight optimization within one generation, at zero cost on the
// hot fitness path.
//
// Because every scheduler in the repository is deterministic under a fixed
// seed, the response body is a pure function of the request (wall-clock
// observables live in logs and /metrics only), which is what makes the
// response cache exact: repeat submissions are byte-identical replays.
//
// # Operations
//
// /healthz reports process liveness, /readyz flips to 503 the moment
// shutdown begins (so load balancers drain ahead of the listener closing),
// and /metrics exposes hand-rolled Prometheus text series: request counts,
// queue depth, in-flight gauge, cache hit/miss counters, and per-algorithm
// latency histograms. Shutdown stops admission, drains the queue, and waits
// for the workers to go idle.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"emts/internal/dag"
	"emts/internal/ea"
	"emts/internal/evalpool"
	"emts/internal/intern"
	"emts/internal/jobs"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/sim"
)

// Config parametrizes a Server. The zero value gets sensible defaults from
// New.
type Config struct {
	// Workers bounds the number of concurrent schedule computations
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue in front of the workers
	// (default 64). A full queue answers 429 with Retry-After.
	QueueDepth int
	// RequestTimeout is the per-request compute deadline (default 30s;
	// negative disables). Requests may lower it via timeout_ms, never raise
	// it.
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// CacheEntries bounds the canonical-hash response cache (default 256;
	// negative disables caching).
	CacheEntries int
	// MaxTasks rejects graphs larger than this at admission (default 20000;
	// negative disables the limit).
	MaxTasks int
	// MaxIslands rejects requests asking for more EA islands than this at
	// admission (default 16; negative disables the limit). Each island runs
	// its own subpopulation, so the cap bounds per-request memory the same
	// way MaxTasks bounds graph size.
	MaxIslands int
	// MaxRequestBytes bounds the request body (default 8 MiB).
	MaxRequestBytes int64
	// LogWriter receives JSON-line request logs (nil disables logging).
	LogWriter io.Writer
	// InstanceID, when non-empty, is stamped on every response as the
	// X-Emts-Instance header. The routing tier's tests and smoke harness use
	// it to assert which backend actually served a request.
	InstanceID string
	// GraphEntries bounds the interned-graph LRU (default 64; negative
	// disables graph interning).
	GraphEntries int
	// TableEntries bounds the interned-table LRU (default 128; negative
	// disables table interning).
	TableEntries int
	// CacheShards stripes each run's fitness memo cache (see
	// ea.Config.CacheShards; 0 picks a default).
	CacheShards int
	// DisableInterning turns off graph and table interning: every request
	// then decodes its graph and builds its table from scratch. Responses
	// are bit-identical either way (interned objects are immutable and
	// keyed by content) — the switch exists for A/B measurement and the
	// determinism meta-tests.
	DisableInterning bool
	// DisablePooling turns off the shared Mapper arena pool: every run then
	// allocates fresh evaluation state. Responses are bit-identical either
	// way (Mapper.Rebind resets all instance state); A/B switch like
	// DisableInterning.
	DisablePooling bool
	// DisableGovernor turns off the global CPU governor: every run then
	// fans out to GOMAXPROCS EA workers regardless of concurrent load.
	// Responses are bit-identical either way (ea results are independent of
	// worker count); A/B switch like DisableInterning.
	DisableGovernor bool
	// MaxJobs bounds the async job store behind /v1/jobs (default 256;
	// negative disables the job API entirely — the routes are then not
	// registered). A full store answers 429, like queue admission.
	MaxJobs int
	// JobTTL is how long a finished job's result and event log stay
	// available for polling and SSE replay (default 10m).
	JobTTL time.Duration
	// SSEKeepAlive is the comment-frame period on idle /v1/jobs/{id}/events
	// streams, keeping proxies from severing them (default 15s).
	SSEKeepAlive time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.MaxTasks == 0 {
		c.MaxTasks = 20000
	}
	if c.MaxIslands == 0 {
		c.MaxIslands = 16
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.GraphEntries == 0 {
		c.GraphEntries = intern.DefaultEntries
	}
	if c.TableEntries == 0 {
		c.TableEntries = 2 * intern.DefaultEntries
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 256
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.SSEKeepAlive <= 0 {
		c.SSEKeepAlive = 15 * time.Second
	}
	return c
}

// runFunc is the compute seam: production servers schedule through
// sim.RunTableOpts; lifecycle tests substitute controllable stubs. The table
// is resolved by the server (through the intern when enabled) before the seam
// is crossed.
type runFunc func(ctx context.Context, g *dag.Graph, cluster platform.Cluster, tab *model.Table, algorithm string, seed int64, opt sim.Options) (*sim.Report, error)

// Server is the scheduling service. Create with New, expose via Handler, and
// stop with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *metrics
	log     *logger
	run     runFunc

	queue   chan *job
	workers sync.WaitGroup

	// admission guards queue against send-after-close: enqueuers hold the
	// read lock, Shutdown takes the write lock to flip draining and close the
	// queue exactly once.
	admission sync.RWMutex
	draining  bool

	cacheMu sync.Mutex
	cache   *responseCache

	// Cross-request performance layer (DESIGN.md §12): content-addressed
	// graph/table interns, the shared Mapper arena pool, and the CPU
	// governor. Each is nil when its Config switch disables it; responses
	// are bit-identical in every combination.
	graphs *intern.Graphs
	tables *intern.Tables
	pool   *evalpool.Pool
	gov    *governor

	// jobStore backs the /v1/jobs API; nil when Config.MaxJobs < 0.
	jobStore *jobs.Store

	reqID atomic.Uint64
	ready atomic.Bool
}

// job is one admitted schedule computation.
type job struct {
	ctx    context.Context
	parsed *parsedRequest
	// result is buffered (capacity 1): the worker never blocks on a handler
	// that gave up waiting.
	result chan jobResult
	// onGen, when non-nil, observes per-generation EA statistics (the async
	// job path streams them as SSE events). It is threaded through
	// sim.Options and called once per generation — never on the hot fitness
	// path.
	onGen func(ea.GenStats)
	// anytime marks an async job: a mid-run cancellation then salvages the
	// EA's incumbent as a 200 "anytime" result instead of a 499/504. The
	// synchronous path leaves it false and keeps its status-code contract.
	anytime bool
	// started, when non-nil, is called by the worker the moment the job
	// leaves the queue (the jobs store's queued → running transition).
	started func()
}

// jobResult is the worker's verdict: an HTTP status, a response body, and the
// classified outcome label for metrics.
type jobResult struct {
	code    int
	body    []byte
	outcome string
	// interned is the X-Emts-Interned header value ("graph", "table",
	// "graph,table", or "") describing which interned objects served this
	// computation.
	interned string
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: newMetrics(),
		cache:   newResponseCache(cfg.CacheEntries),
		queue:   make(chan *job, cfg.QueueDepth),
		run:     sim.RunTableOpts,
	}
	if cfg.LogWriter != nil {
		s.log = &logger{w: cfg.LogWriter}
	}
	if !cfg.DisableInterning {
		if cfg.GraphEntries > 0 {
			s.graphs = intern.NewGraphs(cfg.GraphEntries)
		}
		if cfg.TableEntries > 0 {
			s.tables = intern.NewTables(cfg.TableEntries)
		}
	}
	if !cfg.DisablePooling {
		s.pool = evalpool.New(0, 0)
	}
	if !cfg.DisableGovernor {
		s.gov = newGovernor(runtime.GOMAXPROCS(0))
	}
	s.metrics.queueDepth = func() int { return len(s.queue) }
	s.metrics.queueCapacity = cfg.QueueDepth
	s.metrics.cacheEntries = func() int {
		s.cacheMu.Lock()
		defer s.cacheMu.Unlock()
		return s.cache.len()
	}
	if s.graphs != nil {
		s.metrics.graphStats = s.graphs.Stats
	}
	if s.tables != nil {
		s.metrics.tableStats = s.tables.Stats
	}
	if s.pool != nil {
		s.metrics.poolStats = s.pool.Stats
	}
	if s.gov != nil {
		s.metrics.governorAvailable = s.gov.Available
		s.metrics.governorCapacity = s.gov.capacity
	}

	if cfg.MaxJobs > 0 {
		s.jobStore = jobs.NewStore(jobs.Config{MaxJobs: cfg.MaxJobs, TTL: cfg.JobTTL})
		s.metrics.jobStates = s.jobStore.Counts
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.jobStore != nil {
		mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
		mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
		mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
		mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
		mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	}
	s.mux = mux

	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	s.ready.Store(true)
	return s
}

// Handler returns the HTTP handler tree, wrapped with request-ID assignment,
// status accounting, and structured logging.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = "r" + strconv.FormatUint(s.reqID.Add(1), 10)
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		rec.Header().Set("X-Request-Id", id)
		if s.cfg.InstanceID != "" {
			rec.Header().Set("X-Emts-Instance", s.cfg.InstanceID)
		}
		start := time.Now()
		s.mux.ServeHTTP(rec, r.WithContext(withRequestID(r.Context(), id)))
		s.metrics.countRequest(rec.code)
		s.log.log(accessLog{
			Req:    id,
			Method: r.Method,
			Path:   r.URL.Path,
			Code:   rec.code,
			DurMS:  float64(time.Since(start)) / float64(time.Millisecond),
			Cache:  rec.Header().Get("X-Emts-Cache"),
		})
	})
}

// Shutdown drains the service: readiness flips to 503 immediately, admission
// of new work stops (503), queued and in-flight jobs run to completion, and
// the worker pool exits. It returns ctx's error if draining outlasts it; the
// pool keeps draining in the background in that case.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	s.admission.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.admission.Unlock()
	if s.jobStore != nil {
		// Stop the sweeper and cancel every non-terminal job: queued and
		// running jobs then finalize as cancelled (or cancelled-with-result)
		// within one EA generation, so the drain below is prompt.
		s.jobStore.Close()
	}
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
}

// worker executes admitted jobs until the queue closes and drains.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.metrics.inflight.Add(1)
		if j.started != nil {
			j.started()
		}
		j.result <- s.compute(j)
		s.metrics.inflight.Add(-1)
	}
}

// resolveTable builds (or fetches from the intern) the execution-time table
// for the request's graph, model, and cluster. Interned hits skip the V×P
// model evaluation entirely. Errors come from sim.ModelByName
// (sim.ErrUnknownModel → 400) or model.NewTable, identical with or without
// the intern.
func (s *Server) resolveTable(p *parsedRequest) (tab *model.Table, interned bool, err error) {
	build := func() (*model.Table, error) {
		m, err := sim.ModelByName(p.model)
		if err != nil {
			return nil, err
		}
		return model.NewTable(p.graph, m, p.cluster)
	}
	if s.tables == nil {
		tab, err = build()
		return tab, false, err
	}
	key := intern.TableKey{GraphKey: p.graphKey, Model: p.model, Cluster: p.cluster}
	return s.tables.Get(key, build)
}

// errorResult classifies a computation failure into an HTTP result.
func (s *Server) errorResult(err error, algorithm string) jobResult {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return s.cancelResult(err, algorithm)
	case errors.Is(err, sim.ErrUnknownAlgorithm), errors.Is(err, sim.ErrUnknownModel), errors.Is(err, sim.ErrBadCluster):
		s.metrics.countOutcome(algorithm, "client_error")
		return jobResult{code: http.StatusBadRequest, body: errorBody(err.Error(), ""), outcome: "client_error"}
	default:
		s.metrics.countOutcome(algorithm, "error")
		return jobResult{code: http.StatusInternalServerError, body: errorBody(err.Error(), ""), outcome: "error"}
	}
}

// compute runs one schedule computation and classifies the outcome.
func (s *Server) compute(j *job) jobResult {
	p := j.parsed
	// The client may have vanished (or the deadline passed) while the job sat
	// in the queue; skip the work entirely in that case.
	if err := j.ctx.Err(); err != nil {
		return s.cancelResult(err, p.algorithm)
	}
	tab, tableInterned, err := s.resolveTable(p)
	if err != nil {
		return s.errorResult(err, p.algorithm)
	}
	interned := ""
	switch {
	case p.graphInterned && tableInterned:
		interned = "graph,table"
	case p.graphInterned:
		interned = "graph"
	case tableInterned:
		interned = "table"
	}

	// The governor sizes this run's EA parallelism to the tokens currently
	// free; responses are identical for any grant (worker-count-independent
	// engine), so only throughput depends on the grant.
	opt := sim.Options{
		CacheShards:       s.cfg.CacheShards,
		MapperPool:        s.pool,
		OnGeneration:      j.onGen,
		Islands:           p.req.Islands,
		MigrationInterval: p.req.MigrationInterval,
	}
	if s.gov != nil {
		tokens, release := s.gov.acquire()
		defer release()
		opt.Workers = tokens
	}

	start := time.Now()
	rep, err := s.run(j.ctx, p.graph, p.cluster, tab, p.algorithm, p.req.Seed, opt)
	elapsed := time.Since(start)
	if err != nil {
		// Anytime salvage (async jobs only): a mid-run cancellation that
		// still yielded a materialized incumbent (see sim.RunTableOpts) is a
		// first-class 200 answer. It is deliberately NOT inserted into the
		// response cache — the partial result is not the canonical response
		// for this digest. The synchronous path keeps its 504/499 contract.
		if j.anytime && rep != nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			body, merr := marshalResponse(rep)
			if merr == nil {
				s.metrics.countOutcome(p.algorithm, "anytime")
				return jobResult{code: http.StatusOK, body: body, outcome: "anytime", interned: interned}
			}
		}
		return s.errorResult(err, p.algorithm)
	}
	body, merr := marshalResponse(rep)
	if merr != nil {
		s.metrics.countOutcome(p.algorithm, "error")
		return jobResult{code: http.StatusInternalServerError, body: errorBody("encoding response: "+merr.Error(), ""), outcome: "error"}
	}
	s.metrics.countOutcome(p.algorithm, "ok")
	s.metrics.observeLatency(p.algorithm, elapsed.Seconds())
	s.cacheMu.Lock()
	s.cache.put(p.key, body)
	s.cacheMu.Unlock()
	return jobResult{code: http.StatusOK, body: body, outcome: "ok", interned: interned}
}

// cancelResult classifies a context failure: deadline expiry is reported as
// 504 (the handler may still be waiting on the result), client cancellation
// as the conventional 499 (undeliverable — the connection is gone — but it
// keeps the accounting honest).
func (s *Server) cancelResult(err error, algorithm string) jobResult {
	if errors.Is(err, context.DeadlineExceeded) {
		s.metrics.countOutcome(algorithm, "deadline")
		return jobResult{code: http.StatusGatewayTimeout, body: errorBody("deadline exceeded", ""), outcome: "deadline"}
	}
	s.metrics.countOutcome(algorithm, "cancelled")
	return jobResult{code: 499, body: errorBody("client cancelled", ""), outcome: "cancelled"}
}

// handleSchedule is the POST /v1/schedule lifecycle described in the package
// comment.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	body, err := readRequestBody(w, r, s.cfg.MaxRequestBytes)
	if err != nil {
		return // readRequestBody already answered
	}
	parsed, err := parseScheduleRequest(body, s.maxTasks(), s.maxIslands(), s.graphs)
	if err != nil {
		writeParseError(w, err)
		return
	}

	// Cache fast path: a hit bypasses admission entirely.
	s.cacheMu.Lock()
	cached, hit := s.cache.get(parsed.key)
	s.cacheMu.Unlock()
	if hit {
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Emts-Cache", "hit")
		if parsed.graphInterned {
			// Only the graph component is known on the fast path — no table
			// was consulted.
			w.Header().Set("X-Emts-Interned", "graph")
		}
		writeBody(w, http.StatusOK, cached)
		return
	}
	s.metrics.cacheMisses.Add(1)
	w.Header().Set("X-Emts-Cache", "miss")

	ctx := r.Context()
	if timeout := s.requestTimeout(parsed); timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	j := &job{ctx: ctx, parsed: parsed, result: make(chan jobResult, 1)}

	s.admission.RLock()
	if s.draining {
		s.admission.RUnlock()
		writeJSONError(w, http.StatusServiceUnavailable, "server is shutting down", "")
		return
	}
	admitted := false
	//schedlint:allow lockscope -- send-vs-close protocol: the send is non-blocking (default case) and MUST happen under the read lock, so Shutdown's write lock can guarantee no send is in flight when it closes the queue
	select {
	case s.queue <- j:
		admitted = true
	default:
	}
	s.admission.RUnlock()
	if !admitted {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeJSONError(w, http.StatusTooManyRequests, "admission queue full", "")
		return
	}

	// Either the worker answers, or the context ends first — on deadline the
	// client gets a prompt 504 instead of waiting for the EA to notice; on
	// client cancellation the 499 write goes nowhere but keeps logs and
	// metrics honest. The worker observes the same context either way and
	// aborts the EA within one generation, freeing the slot.
	select {
	case res := <-j.result:
		if res.interned != "" {
			w.Header().Set("X-Emts-Interned", res.interned)
		}
		writeBody(w, res.code, res.body)
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			writeJSONError(w, http.StatusGatewayTimeout, "deadline exceeded", "")
		} else {
			writeJSONError(w, 499, "client cancelled", "")
		}
	}
}

// maxTasks is the admission graph-size limit (0 = unlimited).
func (s *Server) maxTasks() int {
	if s.cfg.MaxTasks < 0 {
		return 0
	}
	return s.cfg.MaxTasks
}

// maxIslands is the admission island-count limit (0 = unlimited).
func (s *Server) maxIslands() int {
	if s.cfg.MaxIslands < 0 {
		return 0
	}
	return s.cfg.MaxIslands
}

// requestTimeout resolves the compute deadline for a parsed request: the
// server cap, tightened (never raised) by the request's timeout_ms. 0 means
// no deadline.
func (s *Server) requestTimeout(parsed *parsedRequest) time.Duration {
	timeout := s.cfg.RequestTimeout
	if timeout < 0 {
		timeout = 0
	}
	if reqTimeout := time.Duration(parsed.req.TimeoutMS) * time.Millisecond; reqTimeout > 0 && (timeout == 0 || reqTimeout < timeout) {
		timeout = reqTimeout
	}
	return timeout
}

// handleAlgorithms lists the accepted algorithm and model names.
func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Algorithms []string `json:"algorithms"`
		Models     []string `json:"models"`
	}{sim.AlgorithmNames(), sim.ModelNames()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeText(w, http.StatusOK, "ok\n")
}

// handleReadyz keeps the PR 4 status-code contract (200 ready, 503
// draining) and adds a small JSON detail body consumed by the routing
// tier's health checker: the draining flag plus the queue depth and
// in-flight gauge, so an operator (or a future load-aware router) can see
// saturation without scraping the full metrics page.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	code := http.StatusOK
	draining := !s.ready.Load()
	if draining {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"draining\":%v,\"queue_depth\":%d,\"inflight\":%d}\n",
		draining, len(s.queue), s.metrics.inflight.Load())
}

func writeText(w http.ResponseWriter, code int, body string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	io.WriteString(w, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteTo(w)
}

// requestIDKey carries the request ID through handler contexts.
type requestIDKey struct{}

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID extracts the request ID assigned by Handler, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so SSE handlers can stream
// through the recorder; a non-flushing underlying writer makes it a no-op.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
