package server

import "container/list"

// responseCache is a bounded LRU cache from canonical request keys to
// serialized 200 response bodies. Because every scheduler in the repository
// is deterministic under a fixed seed, a response body is a pure function of
// the canonical request — so replaying cached bytes is indistinguishable from
// recomputing, and repeat submissions of an identical request are
// byte-identical by construction.
type responseCache struct {
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResponseCache returns a cache bounded to max entries; max <= 0 disables
// caching (Get always misses, Put is a no-op).
func newResponseCache(max int) *responseCache {
	return &responseCache{max: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached body for key and refreshes its recency. The caller
// must not modify the returned slice. Callers synchronize externally (the
// server guards the cache with its own mutex).
func (c *responseCache) get(key string) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least recently used entry when the
// cache is full. Storing an existing key refreshes it.
func (c *responseCache) put(key string, body []byte) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
}

// len returns the number of resident entries.
func (c *responseCache) len() int { return c.ll.Len() }
