package server

import "sync"

// governor is the global CPU token pool (DESIGN.md §12). Before the
// governor, every EMTS request fanned its EA out to GOMAXPROCS workers while
// the server ran up to GOMAXPROCS requests concurrently — quadratic goroutine
// pressure under load. The governor sizes the fleet's total evaluation
// parallelism to the machine instead: capacity tokens exist; each request
// acquires a grant sized max(1, tokens available) for the duration of its
// computation.
//
// The grant is non-blocking by design — a weighted semaphore that *waits* for
// tokens would add queueing latency on top of the admission queue and risk
// convoying. Instead, a lone request takes every core, and requests arriving
// while others compute degrade to sequential evaluation (the engine's
// workers=1 inline path). EMTS runs complete in milliseconds, so tokens turn
// over quickly and sustained concurrent load converges to ~one core per
// request — graceful degradation on time average. available goes negative
// under overdraft (every request is guaranteed at least one worker); the
// bounded server worker pool caps the overdraft at Config.Workers.
//
// Fairness policy: grants are sized at acquisition time and never rebalanced
// mid-run — results must be independent of timing, and ea results are
// worker-count-independent (fixed-index result writes), which is what makes
// the governor response-safe: any grant size yields bit-identical output.
type governor struct {
	mu        sync.Mutex
	capacity  int
	available int
}

func newGovernor(capacity int) *governor {
	if capacity < 1 {
		capacity = 1
	}
	return &governor{capacity: capacity, available: capacity}
}

// acquire grants worker tokens: all currently available ones, but always at
// least 1 and at most capacity. The returned release must be called exactly
// once when the computation ends.
func (g *governor) acquire() (tokens int, release func()) {
	g.mu.Lock()
	n := g.available
	if n < 1 {
		n = 1
	}
	if n > g.capacity {
		n = g.capacity
	}
	g.available -= n
	g.mu.Unlock()
	var once sync.Once
	return n, func() {
		once.Do(func() {
			g.mu.Lock()
			g.available += n
			g.mu.Unlock()
		})
	}
}

// Available samples the current token count (negative under overdraft); for
// the /metrics gauge.
func (g *governor) Available() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.available
}
