package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"emts/internal/dag"
	"emts/internal/intern"
	"emts/internal/platform"
)

// ScheduleRequest is the body of POST /v1/schedule. Graph is the PTG JSON
// file format (the structure produced by emts-daggen and dag.Graph's
// MarshalJSON); Cluster selects a platform preset or describes one inline.
type ScheduleRequest struct {
	// Graph is the PTG in its JSON file format.
	Graph json.RawMessage `json:"graph"`
	// Cluster selects the platform.
	Cluster ClusterSpec `json:"cluster"`
	// Model names the execution-time model (default "synthetic").
	Model string `json:"model,omitempty"`
	// Algorithm names the scheduler (default "emts5").
	Algorithm string `json:"algorithm,omitempty"`
	// Seed drives every stochastic choice; equal requests give equal
	// responses.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS optionally tightens the server's per-request deadline. It can
	// only lower the server limit, never raise it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Islands selects the island-model EA for EMTS algorithms: 0 or 1 is the
	// classic single population, N > 1 runs N coupled subpopulations (see
	// ea.Config.Islands). Bounded by the server's MaxIslands cap.
	Islands int `json:"islands,omitempty"`
	// MigrationInterval is the generation period between island migrations
	// (0 picks the default; ignored when Islands <= 1).
	MigrationInterval int `json:"migration_interval,omitempty"`
}

// ClusterSpec names a platform preset ("chti", "grelon") or describes a
// homogeneous cluster inline. Preset and the inline fields are mutually
// exclusive.
type ClusterSpec struct {
	Preset      string  `json:"preset,omitempty"`
	Name        string  `json:"name,omitempty"`
	Procs       int     `json:"procs,omitempty"`
	SpeedGFlops float64 `json:"speed_gflops,omitempty"`
}

// RequestError is a typed validation failure of a schedule request. The
// server maps it (and dag.DecodeError) to a 400 response naming the field.
type RequestError struct {
	// Field is the JSON path of the offending element.
	Field string
	// Msg describes the violation.
	Msg string
}

// Error implements error.
func (e *RequestError) Error() string {
	return fmt.Sprintf("server: invalid request: %s: %s", e.Field, e.Msg)
}

func requestErrorf(field, msg string, args ...interface{}) *RequestError {
	return &RequestError{Field: field, Msg: fmt.Sprintf(msg, args...)}
}

// parsedRequest is a fully validated schedule request: the decoded graph, the
// resolved cluster, normalized names, and the canonical cache key.
type parsedRequest struct {
	req     ScheduleRequest
	graph   *dag.Graph
	cluster platform.Cluster
	// model and algorithm are the lowercased names; existence is checked by
	// the simulator (its typed sentinels map to 400s like RequestErrors do).
	model     string
	algorithm string
	// key is the canonical cache key: a digest over the canonical graph
	// encoding, the resolved cluster, and the normalized run parameters.
	key string
	// graphKey is the canonical identity of the graph alone
	// (hex SHA-256 of its canonical encoding) — the table intern keys on it.
	graphKey string
	// graphInterned reports that the graph came out of the intern instead of
	// the decoder (the X-Emts-Interned header's graph component).
	graphInterned bool
}

// parseScheduleRequest decodes and validates an untrusted request body.
// maxTasks bounds the accepted graph size and maxIslands the requested island
// count (0 = unlimited for both). When graphs is non-nil, the graph is
// resolved through the intern: a repeat submission of the same bytes skips
// JSON decoding, graph construction, and the canonical re-encoding entirely.
// All rejections are typed (*RequestError or *dag.DecodeError) and identical
// with or without an intern.
func parseScheduleRequest(body []byte, maxTasks, maxIslands int, graphs *intern.Graphs) (*parsedRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req ScheduleRequest
	if err := dec.Decode(&req); err != nil {
		return nil, requestErrorf("body", "malformed JSON: %v", err)
	}
	// A second document after the first is a smuggling smell; reject it.
	if dec.More() {
		return nil, requestErrorf("body", "trailing data after request object")
	}
	if len(req.Graph) == 0 {
		return nil, requestErrorf("graph", "missing")
	}
	var (
		g        *dag.Graph
		canon    []byte
		graphKey string
		hit      bool
	)
	if graphs != nil {
		entry, wasInterned, err := graphs.Get(req.Graph)
		if err != nil {
			return nil, err // *dag.DecodeError for validation, fmt for malformed JSON
		}
		g, canon, graphKey, hit = entry.Graph, entry.Canon, entry.CanonKey, wasInterned
	} else {
		var err error
		g, err = dag.UnmarshalGraph(req.Graph)
		if err != nil {
			return nil, err
		}
		canon, err = json.Marshal(g)
		if err != nil {
			return nil, fmt.Errorf("server: canonicalizing request: %w", err)
		}
		sum := sha256.Sum256(canon)
		graphKey = hex.EncodeToString(sum[:])
	}
	if g.NumTasks() == 0 {
		return nil, requestErrorf("graph.tasks", "empty graph")
	}
	if maxTasks > 0 && g.NumTasks() > maxTasks {
		return nil, requestErrorf("graph.tasks", "%d tasks exceeds the admission limit of %d", g.NumTasks(), maxTasks)
	}
	cluster, err := req.Cluster.resolve()
	if err != nil {
		return nil, err
	}
	if req.TimeoutMS < 0 {
		return nil, requestErrorf("timeout_ms", "negative value %d", req.TimeoutMS)
	}
	if req.Islands < 0 {
		return nil, requestErrorf("islands", "negative value %d", req.Islands)
	}
	if maxIslands > 0 && req.Islands > maxIslands {
		return nil, requestErrorf("islands", "%d islands exceeds the admission limit of %d", req.Islands, maxIslands)
	}
	if req.MigrationInterval < 0 {
		return nil, requestErrorf("migration_interval", "negative value %d", req.MigrationInterval)
	}
	p := &parsedRequest{
		req:           req,
		graph:         g,
		cluster:       cluster,
		model:         strings.ToLower(req.Model),
		algorithm:     strings.ToLower(req.Algorithm),
		graphKey:      graphKey,
		graphInterned: hit,
	}
	if p.model == "" {
		p.model = "synthetic"
	}
	if p.algorithm == "" {
		p.algorithm = "emts5"
	}
	p.key = canonicalKey(canon, cluster, p.model, p.algorithm, req.Seed, req.Islands, req.MigrationInterval)
	return p, nil
}

// resolve maps the spec to a validated platform.Cluster.
func (cs ClusterSpec) resolve() (platform.Cluster, error) {
	if cs.Preset != "" {
		if cs.Name != "" || cs.Procs != 0 || cs.SpeedGFlops != 0 {
			return platform.Cluster{}, requestErrorf("cluster", "preset and inline fields are mutually exclusive")
		}
		switch strings.ToLower(cs.Preset) {
		case "chti":
			return platform.Chti(), nil
		case "grelon":
			return platform.Grelon(), nil
		}
		return platform.Cluster{}, requestErrorf("cluster.preset", "unknown preset %q (have chti, grelon)", cs.Preset)
	}
	name := cs.Name
	if name == "" {
		name = "cluster"
	}
	c, err := platform.New(name, cs.Procs, cs.SpeedGFlops)
	if err != nil {
		return platform.Cluster{}, requestErrorf("cluster", "%v", err)
	}
	return c, nil
}

// canonicalKey digests the semantic content of a request. canonGraph is the
// graph's canonical MarshalJSON encoding (deterministic task and edge order,
// cached by the intern), so two submissions that differ only in JSON
// whitespace, field order, or float spelling of the same value stream map to
// the same key. The digest layout is unchanged from the pre-intern code for
// single-population requests — the island parameters extend the digest ONLY
// when islands > 1 (islands <= 1 is the classic run regardless of the
// migration interval), so every pre-existing key stays byte-identical and the
// response cache keys identically whether interning is on or off.
func canonicalKey(canonGraph []byte, cluster platform.Cluster, model, algorithm string, seed int64, islands, migrationInterval int) string {
	h := sha256.New()
	h.Write(canonGraph)
	fmt.Fprintf(h, "\x00%s\x00%d\x00%g\x00%s\x00%s\x00%s",
		cluster.Name, cluster.Procs, cluster.SpeedGFlops, model, algorithm, strconv.FormatInt(seed, 10))
	if islands > 1 {
		fmt.Fprintf(h, "\x00islands\x00%d\x00%d", islands, migrationInterval)
	}
	return hex.EncodeToString(h.Sum(nil))
}
