package server

import (
	"encoding/json"
	"net/http"

	"emts/internal/platform"
	"emts/internal/schedule"
	"emts/internal/sim"
)

// ScheduleResponse is the body of a successful POST /v1/schedule. The
// structure deliberately excludes wall-clock fields (sim.Report.Elapsed):
// the body is a pure function of the request, which is what makes cached
// replays byte-identical to recomputation. Timing lives in /metrics and the
// request logs.
type ScheduleResponse struct {
	Algorithm   string           `json:"algorithm"`
	Model       string           `json:"model"`
	Graph       string           `json:"graph"`
	Tasks       int              `json:"tasks"`
	Cluster     platform.Cluster `json:"cluster"`
	Makespan    float64          `json:"makespan"`
	Utilization float64          `json:"utilization"`
	// EMTS-only diagnostics; zero for the one-shot heuristics.
	Evaluations int       `json:"evaluations,omitempty"`
	Rejections  int       `json:"rejections,omitempty"`
	History     []float64 `json:"history,omitempty"`
	// Generations counts the EA generations actually completed. For an
	// anytime answer (a cancelled async job) it is smaller than the
	// preset's generation budget.
	Generations int `json:"generations,omitempty"`
	// Islands is the island count for island-model EA runs; omitted for the
	// classic single population, so pre-island responses keep their bytes.
	Islands int `json:"islands,omitempty"`
	// Schedule is the fully validated placement.
	Schedule *schedule.Schedule `json:"schedule"`
}

// marshalResponse projects a simulator report onto the wire format.
func marshalResponse(rep *sim.Report) ([]byte, error) {
	resp := ScheduleResponse{
		Algorithm:   rep.Algorithm,
		Model:       rep.Model,
		Graph:       rep.Graph,
		Tasks:       len(rep.Schedule.Entries),
		Cluster:     rep.Cluster,
		Makespan:    rep.Makespan,
		Utilization: rep.Utilization(),
		Schedule:    rep.Schedule,
	}
	if rep.EMTS != nil {
		resp.Evaluations = rep.EMTS.Evaluations
		resp.Rejections = rep.EMTS.Rejections
		resp.History = rep.EMTS.History
		resp.Generations = rep.EMTS.Generations
		if rep.EMTS.Islands > 1 {
			resp.Islands = rep.EMTS.Islands
		}
	}
	b, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// errorResponse is the body of every non-200 JSON response.
type errorResponse struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

// errorBody serializes an error response; it cannot fail.
func errorBody(msg, field string) []byte {
	b, _ := json.Marshal(errorResponse{Error: msg, Field: field})
	return append(b, '\n')
}

func writeJSONError(w http.ResponseWriter, code int, msg, field string) {
	writeBody(w, code, errorBody(msg, field))
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error(), "")
		return
	}
	writeBody(w, code, append(b, '\n'))
}

func writeBody(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}
