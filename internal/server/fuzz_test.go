package server

import (
	"testing"

	"emts/internal/intern"
)

// FuzzDecodeScheduleRequest hammers the /v1/schedule request decoder: it must
// never panic, and whatever it accepts must be internally consistent (resolved
// cluster, canonical key, acyclic graph with in-range edges).
func FuzzDecodeScheduleRequest(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"graph":{"tasks":[{"flops":1}]},"cluster":{"preset":"chti"}}`,
		`{"graph":{"tasks":[{"flops":1,"alpha":0.5},{"flops":2}],"edges":[[0,1]]},"cluster":{"procs":4,"speed_gflops":2.5},"model":"amdahl","algorithm":"emts10","seed":7,"timeout_ms":100}`,
		`{"graph":{"tasks":[{"flops":1},{"flops":1}],"edges":[[0,1],[1,0]]},"cluster":{"preset":"chti"}}`,
		`{"graph":{"tasks":[],"edges":[]},"cluster":{"preset":"grelon"}}`,
		`{"graph":{"tasks":[{"flops":-1}]},"cluster":{"preset":"chti"}}`,
		`{"graph":{"tasks":[{"flops":1,"alpha":2}]},"cluster":{"preset":"chti"}}`,
		`{"graph":{"tasks":[{"flops":1}],"edges":[[0,0]]},"cluster":{"preset":"chti"}}`,
		`[1,2,3]`,
		`nonsense`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	graphs := intern.NewGraphs(16)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := parseScheduleRequest(data, 1000, 0, nil)
		// The interned path must accept and reject exactly the same inputs and
		// produce the same canonical key.
		pi, erri := parseScheduleRequest(data, 1000, 0, graphs)
		if (err == nil) != (erri == nil) {
			t.Fatalf("intern changed acceptance: plain err=%v, interned err=%v", err, erri)
		}
		if err != nil {
			return
		}
		if pi.key != p.key || pi.graphKey != p.graphKey {
			t.Fatalf("intern changed canonical keys: %s/%s vs %s/%s", p.key, p.graphKey, pi.key, pi.graphKey)
		}
		// Accepted requests must be fully resolved.
		if p.graph == nil || p.graph.NumTasks() == 0 {
			t.Fatal("accepted request with empty graph")
		}
		if p.cluster.Procs <= 0 || p.cluster.SpeedGFlops <= 0 {
			t.Fatalf("accepted request with unresolved cluster %+v", p.cluster)
		}
		if p.model == "" || p.algorithm == "" {
			t.Fatal("accepted request without model/algorithm defaults")
		}
		if len(p.key) != 64 {
			t.Fatalf("canonical key %q is not a sha256 hex digest", p.key)
		}
		n := p.graph.NumTasks()
		for _, e := range p.graph.Edges() {
			if e.Src < 0 || int(e.Src) >= n || e.Dst < 0 || int(e.Dst) >= n {
				t.Fatalf("edge %v out of range for %d tasks", e, n)
			}
		}
		if _, err := p.graph.TopologicalOrder(); err != nil {
			t.Fatalf("accepted cyclic graph: %v", err)
		}
	})
}
