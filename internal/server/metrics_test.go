package server

import (
	"bytes"
	"strings"
	"testing"
)

// TestMetricsRenderDeterministic: two scrapes of the same registry state must
// be byte-identical (schedlint's mapiterorder invariant, enforced end to end).
func TestMetricsRenderDeterministic(t *testing.T) {
	m := newMetrics()
	for _, code := range []int{200, 400, 429, 200} {
		m.countRequest(code)
	}
	m.countOutcome("emts5", "ok")
	m.countOutcome("cpa", "ok")
	m.countOutcome("emts5", "deadline")
	m.observeLatency("emts5", 0.012)
	m.observeLatency("cpa", 0.0004)
	m.cacheHits.Add(3)
	m.cacheMisses.Add(5)

	var a, b bytes.Buffer
	if _, err := m.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two scrapes of the same state differ")
	}

	page := a.String()
	for _, want := range []string{
		`emts_requests_total{code="200"} 2`,
		`emts_requests_total{code="400"} 1`,
		`emts_requests_total{code="429"} 1`,
		`emts_schedule_total{algorithm="cpa",outcome="ok"} 1`,
		`emts_schedule_total{algorithm="emts5",outcome="deadline"} 1`,
		`emts_schedule_total{algorithm="emts5",outcome="ok"} 1`,
		`emts_request_duration_seconds_bucket{algorithm="emts5",le="0.025"} 1`,
		`emts_request_duration_seconds_bucket{algorithm="emts5",le="+Inf"} 1`,
		`emts_request_duration_seconds_count{algorithm="cpa"} 1`,
		`emts_cache_hits_total 3`,
		`emts_cache_misses_total 5`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("missing %q", want)
		}
	}

	// Label blocks must be sorted: cpa precedes emts5.
	if strings.Index(page, `algorithm="cpa",outcome`) > strings.Index(page, `algorithm="emts5",outcome`) {
		t.Error("outcome series not sorted by algorithm")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &histogram{counts: make([]uint64, len(latencyBuckets))}
	h.observe(0.0005) // first bucket (le=0.001)
	h.observe(100)    // beyond the last bound: +Inf only
	if h.counts[0] != 1 {
		t.Fatalf("first bucket = %d, want 1", h.counts[0])
	}
	for i := 1; i < len(h.counts); i++ {
		if h.counts[i] != 0 {
			t.Fatalf("bucket %d = %d, want 0", i, h.counts[i])
		}
	}
	if h.total != 2 || h.sum != 100.0005 {
		t.Fatalf("total/sum = %d/%g", h.total, h.sum)
	}
}
