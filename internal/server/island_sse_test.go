// SSE contract for island-model jobs (DESIGN.md §17): a multi-island run
// streams one generation event per island per generation in (generation,
// island) order with a monotone aggregate best_makespan, while single-island
// streams keep the exact pre-island wire bytes (no "island" key at all).
package server

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"emts/internal/jobs"
)

// islandScheduleBody builds a request body with island parameters.
func islandScheduleBody(t *testing.T, seed int64, islands, interval int) []byte {
	t.Helper()
	b, err := json.Marshal(ScheduleRequest{
		Graph:             testGraphJSON(t),
		Cluster:           ClusterSpec{Preset: "chti"},
		Model:             "synthetic",
		Algorithm:         "emts5",
		Seed:              seed,
		Islands:           islands,
		MigrationInterval: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestJobIslandSSEOrderingDeterminism runs a 3-island job end to end and
// pins the stream shape: generations×islands generation events in
// (generation, island) order, each carrying its island index; the aggregate
// best_makespan non-increasing across the whole stream; the last event's
// best_makespan equal to the final schedule's makespan; and the response
// echoing the effective island count.
func TestJobIslandSSEOrderingDeterminism(t *testing.T) {
	const islands = 3
	_, ts := newTestServer(t, Config{Workers: 2, SSEKeepAlive: time.Hour})

	resp := postJob(t, ts.URL, islandScheduleBody(t, 42, islands, 2))
	env := decodeEnvelope(t, resp)
	final := waitTerminal(t, ts.URL, env.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("state %s, want done", final.State)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(final.Result, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Islands != islands {
		t.Fatalf("response islands = %d, want %d", sr.Islands, islands)
	}

	frames, _ := readSSEFrames(t, getSSE(t, ts.URL, env.ID, -1).Body)
	var evs []generationEvent
	for _, f := range frames {
		if f.event != "generation" {
			continue
		}
		var ev generationEvent
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("decoding generation event %q: %v", f.data, err)
		}
		evs = append(evs, ev)
	}
	if want := sr.Generations * islands; len(evs) != want {
		t.Fatalf("generation events %d, want generations×islands = %d", len(evs), want)
	}
	prev := evs[0].BestMakespan
	for i, ev := range evs {
		if ev.Island == nil {
			t.Fatalf("event %d: multi-island generation event without island index", i)
		}
		if wantGen, wantIsl := i/islands, i%islands; ev.Generation != wantGen || *ev.Island != wantIsl {
			t.Fatalf("event %d: (generation, island) = (%d, %d), want (%d, %d)",
				i, ev.Generation, *ev.Island, wantGen, wantIsl)
		}
		if ev.BestMakespan > prev {
			t.Fatalf("event %d: aggregate best_makespan worsened: %g after %g", i, ev.BestMakespan, prev)
		}
		prev = ev.BestMakespan
	}
	if last := evs[len(evs)-1].BestMakespan; last != sr.Makespan {
		t.Fatalf("last streamed best_makespan %g != final makespan %g", last, sr.Makespan)
	}
}

// TestJobIslandSingleStreamByteIdentity pins the wire-format compatibility
// half: a single-population job (islands omitted) must stream generation
// events without any "island" key — byte-identical to the pre-island event
// schema — and its response must omit the islands echo.
func TestJobIslandSingleStreamByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SSEKeepAlive: time.Hour})

	resp := postJob(t, ts.URL, scheduleBody(t, "emts5", 42))
	env := decodeEnvelope(t, resp)
	final := waitTerminal(t, ts.URL, env.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("state %s, want done", final.State)
	}
	if strings.Contains(string(final.Result), `"islands"`) {
		t.Fatalf("single-population response leaks an islands field: %s", final.Result)
	}
	frames, raw := readSSEFrames(t, getSSE(t, ts.URL, env.ID, -1).Body)
	if strings.Contains(raw, `"island"`) {
		t.Fatalf("single-population stream leaks an island field: %q", raw)
	}
	gens := 0
	for _, f := range frames {
		if f.event == "generation" {
			gens++
		}
	}
	if gens == 0 {
		t.Fatal("no generation events streamed")
	}
}

// TestJobIslandRequestValidation covers the admission checks for the island
// request fields: negatives and over-cap island counts are 400s naming the
// offending field.
func TestJobIslandRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxIslands: 4})
	cases := []struct {
		name    string
		islands int
		interv  int
		field   string
	}{
		{"negative islands", -1, 0, "islands"},
		{"over cap", 5, 0, "islands"},
		{"negative interval", 2, -1, "migration_interval"},
	}
	for _, tc := range cases {
		resp := post(t, ts.URL, islandScheduleBody(t, 1, tc.islands, tc.interv))
		body := readAll(t, resp)
		if resp.StatusCode != 400 {
			t.Fatalf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Field != tc.field {
			t.Fatalf("%s: error field %q, want %q", tc.name, er.Field, tc.field)
		}
	}
	// At the cap is admitted.
	resp := post(t, ts.URL, islandScheduleBody(t, 1, 4, 1))
	body := readAll(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("at-cap islands: status %d (%s)", resp.StatusCode, body)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Islands != 4 {
		t.Fatalf("at-cap islands echo = %d, want 4", sr.Islands)
	}
}
