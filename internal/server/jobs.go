package server

// The /v1/jobs API (DESIGN.md §16): asynchronous schedule runs with SSE
// progress streaming and anytime cancellation.
//
//	POST   /v1/jobs             submit (idempotent by canonical digest) → 202
//	GET    /v1/jobs/{id}        status envelope (state, events, result)
//	GET    /v1/jobs/{id}/result the raw final response, byte-identical to
//	                            the synchronous /v1/schedule answer
//	GET    /v1/jobs/{id}/events SSE per-generation progress stream
//	DELETE /v1/jobs/{id}        cancel; a mid-run cancel snapshots the EA's
//	                            incumbent as a "cancelled-with-result" answer
//
// Jobs execute on the same bounded worker pool as synchronous requests,
// under the same admission protocol: a full queue rolls the job back and
// answers 429. The job's context is detached from the submitting HTTP
// connection (a closed submit connection must not kill the run) but keeps
// the server/request deadline discipline.
//
// The async path never reads the response cache: every created job performs
// a real run so its generation-event stream always matches its result
// (idempotent resubmits are deduplicated by the job store instead). It still
// writes the cache on success — a completed job's body is the canonical
// response for its digest, byte-identical to the synchronous answer.

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"emts/internal/dag"
	"emts/internal/ea"
	"emts/internal/intern"
	"emts/internal/jobs"
)

// generationEvent is the payload of one SSE "generation" event, rendered
// exactly once at publish time (jobs.Event.Data) so replays are byte-stable.
// best_makespan is the incumbent fitness (ea.GenStats.BestEver): on anytime
// cancellation the returned schedule's makespan equals the last streamed
// value — the acceptance contract of the job API. For island-model runs it
// is the aggregate incumbent across ALL islands (the island coordinator
// rewrites BestEver at delivery), so the stream stays monotone even though
// events interleave islands. Island is a pointer so single-population
// streams omit the field and stay byte-identical to the pre-island wire
// format; multi-island runs emit one event per island per generation in
// (generation, island) order.
type generationEvent struct {
	Generation          int     `json:"generation"`
	Island              *int    `json:"island,omitempty"`
	BestMakespan        float64 `json:"best_makespan"`
	PoolBest            float64 `json:"pool_best"`
	PoolMean            float64 `json:"pool_mean"`
	Evaluations         int     `json:"evaluations"`
	CacheHits           int     `json:"cache_hits"`
	PrefilterRejections int     `json:"prefilter_rejections"`
	Rejected            int     `json:"rejected"`
}

// doneEvent is the payload of the terminal SSE "done" event.
type doneEvent struct {
	State jobs.State `json:"state"`
	Code  int        `json:"code"`
}

// jobEnvelope is the body of POST /v1/jobs and GET /v1/jobs/{id}. Result
// holds the final response object for done and cancelled-with-result jobs;
// Error holds the error object for failed/cancelled ones. Timestamps are
// deliberately absent: like /v1/schedule responses, the envelope is a pure
// function of the request and the job's progress (wall-clock observables
// live in /metrics).
type jobEnvelope struct {
	ID      string          `json:"id"`
	State   jobs.State      `json:"state"`
	Created bool            `json:"created,omitempty"`
	Events  int             `json:"events"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   json.RawMessage `json:"error,omitempty"`
}

// writeJobEnvelope renders a job snapshot. The stored body carries a
// trailing newline (writeBody convention); trim it for embedding — the
// byte-exact body is served by /result.
func writeJobEnvelope(w http.ResponseWriter, code int, snap jobs.Snapshot, created bool) {
	env := jobEnvelope{ID: snap.ID, State: snap.State, Created: created, Events: snap.Events}
	if snap.State.Terminal() && len(snap.Body) > 0 {
		raw := json.RawMessage(trimTrailingNewline(snap.Body))
		if snap.Code == http.StatusOK {
			env.Result = raw
		} else {
			env.Error = raw
		}
	}
	writeJSON(w, code, env)
}

func trimTrailingNewline(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		return b[:n-1]
	}
	return b
}

// handleJobSubmit is POST /v1/jobs: parse and validate exactly like
// /v1/schedule, dedup by canonical digest, admit to the worker queue under
// the same 429 discipline, and answer 202 with the job id.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readRequestBody(w, r, s.cfg.MaxRequestBytes)
	if err != nil {
		return // readRequestBody already answered
	}
	parsed, perr := parseScheduleRequest(body, s.maxTasks(), s.maxIslands(), s.graphs)
	if perr != nil {
		writeParseError(w, perr)
		return
	}

	// The job id leads with the digest of the *raw* graph bytes — the same
	// key route.RequestKey hashes for /v1/schedule — so the router can
	// affinity-route every later poll/SSE/cancel to this backend by parsing
	// it back out of the path. The canonical digest (parsed.key) follows as
	// the idempotency component.
	rawKey := intern.RawKey(parsed.req.Graph)
	id := hex.EncodeToString(rawKey[:]) + "-" + parsed.key

	// The run context is detached from the submitting connection (the job
	// outlives it) but keeps the sync path's deadline discipline: the
	// server cap, tightened by the request's timeout_ms.
	jctx, cancel := context.WithCancel(context.Background())
	if timeout := s.requestTimeout(parsed); timeout > 0 {
		jctx, cancel = context.WithTimeout(jctx, timeout)
	}

	jb, created, jerr := s.jobStore.GetOrCreate(id, parsed.key, cancel)
	if jerr != nil {
		cancel()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeJSONError(w, http.StatusTooManyRequests, "job store full", "")
		return
	}
	if !created {
		// Idempotent resubmit: same canonical digest, same job. The fresh
		// context is unused.
		cancel()
		writeJobEnvelope(w, http.StatusOK, jb.Snapshot(), false)
		return
	}

	wj := &job{
		ctx:     jctx,
		parsed:  parsed,
		result:  make(chan jobResult, 1),
		anytime: true,
		started: jb.Start,
		onGen: func(gs ea.GenStats) {
			ev := generationEvent{
				Generation:          gs.Generation,
				BestMakespan:        gs.BestEver,
				PoolBest:            gs.Best,
				PoolMean:            gs.Mean,
				Evaluations:         gs.Evaluations,
				CacheHits:           gs.CacheHits,
				PrefilterRejections: gs.PrefilterRejections,
				Rejected:            gs.Rejected,
			}
			if parsed.req.Islands > 1 {
				island := gs.Island
				ev.Island = &island
			}
			data, merr := json.Marshal(ev)
			if merr != nil {
				return // unreachable: plain struct of numbers
			}
			jb.Publish("generation", data)
		},
	}

	s.admission.RLock()
	if s.draining {
		s.admission.RUnlock()
		s.jobStore.Remove(id)
		cancel()
		writeJSONError(w, http.StatusServiceUnavailable, "server is shutting down", "")
		return
	}
	admitted := false
	//schedlint:allow lockscope -- send-vs-close protocol shared with handleSchedule: the non-blocking send must happen under the read lock so Shutdown can close the queue safely
	select {
	case s.queue <- wj:
		admitted = true
	default:
	}
	s.admission.RUnlock()
	if !admitted {
		s.jobStore.Remove(id)
		cancel()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeJSONError(w, http.StatusTooManyRequests, "admission queue full", "")
		return
	}

	go s.finalizeJob(jb, wj)

	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJobEnvelope(w, http.StatusAccepted, jb.Snapshot(), true)
}

// finalizeJob waits for the worker's verdict and records the job's terminal
// state: done, failed, cancelled, or — when the anytime path salvaged the
// EA's incumbent — cancelled-with-result. It also feeds the per-phase
// latency histograms and the anytime-cancel counter.
func (s *Server) finalizeJob(jb *jobs.Job, wj *job) {
	res := <-wj.result
	state := jobs.StateFailed
	switch {
	case res.outcome == "anytime":
		state = jobs.StateCancelledWithResult
		s.metrics.anytimeCancels.Add(1)
	case res.code == http.StatusOK:
		state = jobs.StateDone
	case res.outcome == "cancelled":
		state = jobs.StateCancelled
	}
	data, err := json.Marshal(doneEvent{State: state, Code: res.code})
	if err != nil {
		data = []byte(`{"state":"failed","code":500}`) // unreachable
	}
	jb.Finish(state, res.code, res.body, data)

	snap := jb.Snapshot()
	started := snap.Started
	if started.IsZero() {
		// Finalized without ever running (cancelled while queued): the whole
		// lifetime was queue time.
		started = snap.Finished
	}
	s.metrics.observeJobPhase("queued", started.Sub(snap.Created).Seconds())
	if !snap.Started.IsZero() {
		s.metrics.observeJobPhase("running", snap.Finished.Sub(snap.Started).Seconds())
	}
}

// jobFromPath resolves the {id} path value, answering 404 when absent.
func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	jb, ok := s.jobStore.Get(r.PathValue("id"))
	if !ok {
		writeJSONError(w, http.StatusNotFound, "unknown job", "id")
		return nil, false
	}
	return jb, true
}

// handleJobGet is GET /v1/jobs/{id}: the status/result envelope.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	writeJobEnvelope(w, http.StatusOK, jb.Snapshot(), false)
}

// handleJobResult is GET /v1/jobs/{id}/result: the terminal response,
// replayed verbatim — for done jobs byte-identical to the synchronous
// /v1/schedule answer for the same request.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	snap := jb.Snapshot()
	if !snap.State.Terminal() {
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusConflict, "job not finished (state "+string(snap.State)+")", "")
		return
	}
	writeBody(w, snap.Code, snap.Body)
}

// handleJobCancel is DELETE /v1/jobs/{id}: request cooperative cancellation
// and wait (bounded by the caller's own context) for the terminal state. The
// EA observes its context once per generation, so the wait is at most one
// generation; the answer then reports whether an incumbent was salvaged
// (cancelled-with-result) or not (cancelled). Cancelling a terminal job is a
// no-op that returns the existing outcome — NOT a purge, so a cancel that
// races the job's own completion never costs the client its result.
//
// "?purge=1" adds explicit release-intent: once the job is terminal (on
// entry or after the cancel lands) it is removed from the store, freeing its
// slot immediately instead of holding it until TTL expiry. The envelope
// still carries the final result, so cancel-and-purge is one round trip;
// later requests for a purged id get the honest 404. This is what keeps
// closed-loop consumers that fully drain each result from exhausting the
// bounded store.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	purge := r.URL.Query().Get("purge") == "1"
	finish := func(code int, snap jobs.Snapshot) {
		if purge && snap.State.Terminal() {
			s.jobStore.Remove(snap.ID)
		}
		writeJobEnvelope(w, code, snap, false)
	}
	if snap := jb.Snapshot(); snap.State.Terminal() {
		finish(http.StatusOK, snap)
		return
	}
	jb.Cancel()
	select {
	case <-jb.Done():
		finish(http.StatusOK, jb.Snapshot())
	case <-r.Context().Done():
		// The caller gave up before the generation boundary; cancellation
		// stays in flight (and an unfinished job is never purged).
		finish(http.StatusAccepted, jb.Snapshot())
	}
}

// handleJobEvents is GET /v1/jobs/{id}/events: the SSE progress stream.
// Events are replayed from the job's append-only log — a subscriber that
// attaches late (or resumes with Last-Event-ID) receives byte-identical
// frames, because each frame's data was rendered exactly once at publish
// time. Keep-alive comments flow every Config.SSEKeepAlive so idle streams
// survive proxies; the stream ends after the terminal "done" event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeJSONError(w, http.StatusInternalServerError, "streaming unsupported", "")
		return
	}
	after := 0
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		n, err := strconv.Atoi(lei)
		if err != nil || n < 0 {
			writeJSONError(w, http.StatusBadRequest, "malformed Last-Event-ID", "")
			return
		}
		after = n
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	// Belt-and-braces for buffering proxies; emts-router additionally
	// streams text/event-stream responses unbuffered by content type.
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	wake, unsubscribe := jb.Subscribe()
	defer unsubscribe()
	s.metrics.sseSubscribers.Add(1)
	defer s.metrics.sseSubscribers.Add(-1)

	keepalive := time.NewTicker(s.cfg.SSEKeepAlive)
	defer keepalive.Stop()

	for {
		evs := jb.EventsSince(after)
		for _, ev := range evs {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data)
			after = ev.Seq
		}
		if len(evs) > 0 {
			flusher.Flush()
			if evs[len(evs)-1].Type == "done" {
				return
			}
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		case <-keepalive.C:
			fmt.Fprint(w, ": keep-alive\n\n")
			flusher.Flush()
		}
	}
}

// readRequestBody reads a bounded request body, answering 413/400 itself on
// failure (shared by /v1/schedule and /v1/jobs).
func readRequestBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSONError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), "body")
			return nil, err
		}
		writeJSONError(w, http.StatusBadRequest, "reading body: "+err.Error(), "body")
		return nil, err
	}
	return body, nil
}

// writeParseError maps parseScheduleRequest failures onto 400 responses
// (shared by /v1/schedule and /v1/jobs).
func writeParseError(w http.ResponseWriter, err error) {
	var reqErr *RequestError
	var decErr *dag.DecodeError
	switch {
	case errors.As(err, &reqErr):
		writeJSONError(w, http.StatusBadRequest, reqErr.Msg, reqErr.Field)
	case errors.As(err, &decErr):
		writeJSONError(w, http.StatusBadRequest, decErr.Msg, "graph."+decErr.Field)
	default:
		writeJSONError(w, http.StatusBadRequest, err.Error(), "")
	}
}
