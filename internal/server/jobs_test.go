package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"emts/internal/ea"
	"emts/internal/jobs"
	"emts/internal/platform"
	"emts/internal/sim"

	"emts/internal/dag"
	"emts/internal/model"
)

// postJob submits a schedule request to the async API.
func postJob(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeEnvelope reads and decodes a job envelope body.
func decodeEnvelope(t *testing.T, resp *http.Response) jobEnvelope {
	t.Helper()
	b := readAll(t, resp)
	var env jobEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("decoding envelope: %v (%s)", err, b)
	}
	return env
}

// getEnvelope polls GET /v1/jobs/{id}.
func getEnvelope(t *testing.T, url, id string) (jobEnvelope, int) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		readAll(t, resp)
		return jobEnvelope{}, resp.StatusCode
	}
	return decodeEnvelope(t, resp), resp.StatusCode
}

// waitTerminal polls the job until it reaches a terminal state.
func waitTerminal(t *testing.T, url, id string) jobEnvelope {
	t.Helper()
	var env jobEnvelope
	waitFor(t, func() bool {
		var code int
		env, code = getEnvelope(t, url, id)
		if code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		return env.State.Terminal()
	})
	return env
}

// deleteJob issues DELETE /v1/jobs/{id}; query is "" or "?purge=1".
func deleteJob(t *testing.T, url, id, query string) (*http.Response, jobEnvelope) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/v1/jobs/"+id+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusNotFound {
		readAll(t, resp)
		return resp, jobEnvelope{}
	}
	return resp, decodeEnvelope(t, resp)
}

// sseFrame is one parsed SSE event frame.
type sseFrame struct {
	id    int
	event string
	data  string
}

// readSSEFrames parses an SSE stream up to and including the "done" frame,
// returning the frames and the raw bytes read (keep-alive comments
// included). Tests set SSEKeepAlive high so raw comparisons see frames only.
func readSSEFrames(t *testing.T, body io.Reader) ([]sseFrame, string) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var frames []sseFrame
	var raw strings.Builder
	var cur sseFrame
	for sc.Scan() {
		line := sc.Text()
		raw.WriteString(line)
		raw.WriteByte('\n')
		switch {
		case line == "":
			if cur.event != "" {
				frames = append(frames, cur)
				if cur.event == "done" {
					return frames, raw.String()
				}
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.Atoi(line[len("id: "):])
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		}
	}
	t.Fatalf("SSE stream ended without done event (read %q)", raw.String())
	return nil, ""
}

// getSSE opens the event stream, optionally resuming from lastEventID (-1
// means no header).
func getSSE(t *testing.T, url, id string, lastEventID int) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestJobLifecycleEndToEnd: submit → 202 with id, poll to done, and the
// /result body is byte-identical to the synchronous /v1/schedule answer for
// the same request (the core acceptance criterion of the async API).
func TestJobLifecycleEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, SSEKeepAlive: time.Hour})
	body := scheduleBody(t, "emts5", 42)

	resp := postJob(t, ts.URL, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Fatalf("Location = %q", loc)
	}
	env := decodeEnvelope(t, resp)
	if env.ID == "" || !env.Created {
		t.Fatalf("submit envelope: %+v", env)
	}

	final := waitTerminal(t, ts.URL, env.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("state %s, want done", final.State)
	}
	if len(final.Result) == 0 {
		t.Fatal("done envelope carries no result")
	}

	rresp, err := http.Get(ts.URL + "/v1/jobs/" + env.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	asyncBody := readAll(t, rresp)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", rresp.StatusCode, asyncBody)
	}

	sresp := post(t, ts.URL, body)
	syncBody := readAll(t, sresp)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("sync status %d: %s", sresp.StatusCode, syncBody)
	}
	if !bytes.Equal(asyncBody, syncBody) {
		t.Fatalf("async result differs from sync response:\nasync: %s\nsync:  %s", asyncBody, syncBody)
	}

	// The stream carries one generation event per completed generation.
	var sr ScheduleResponse
	if err := json.Unmarshal(asyncBody, &sr); err != nil {
		t.Fatal(err)
	}
	frames, _ := readSSEFrames(t, getSSE(t, ts.URL, env.ID, -1).Body)
	genFrames := 0
	for _, f := range frames {
		if f.event == "generation" {
			genFrames++
		}
	}
	if sr.Generations == 0 || genFrames != sr.Generations {
		t.Fatalf("generation frames %d != result generations %d", genFrames, sr.Generations)
	}
	if final.Events != len(frames) {
		t.Fatalf("envelope events %d != streamed frames %d", final.Events, len(frames))
	}
}

// TestJobSSEReplayByteStability: a live subscription (attached before the
// run produces anything) and two post-hoc replays must read byte-identical
// streams — events are rendered once at publish time.
func TestJobSSEReplayByteStability(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, SSEKeepAlive: time.Hour})
	started := make(chan string, 1)
	release := make(chan struct{})
	s.run = blockingRun(started, release)

	resp := postJob(t, ts.URL, scheduleBody(t, "emts5", 7))
	env := decodeEnvelope(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	<-started // worker holds the run; no events yet

	live := getSSE(t, ts.URL, env.ID, -1)
	if ct := live.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if xab := live.Header.Get("X-Accel-Buffering"); xab != "no" {
		t.Fatalf("X-Accel-Buffering = %q", xab)
	}
	close(release)
	_, liveRaw := readSSEFrames(t, live.Body)
	live.Body.Close()

	_, replay1 := readSSEFrames(t, getSSE(t, ts.URL, env.ID, -1).Body)
	_, replay2 := readSSEFrames(t, getSSE(t, ts.URL, env.ID, -1).Body)
	if liveRaw != replay1 || replay1 != replay2 {
		t.Fatalf("streams diverge:\nlive:    %q\nreplay1: %q\nreplay2: %q", liveRaw, replay1, replay2)
	}
}

// TestJobSSEResume: Last-Event-ID skips already-seen frames; the resumed
// stream is exactly the tail of the full one. Malformed cursors are 400.
func TestJobSSEResume(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SSEKeepAlive: time.Hour})
	resp := postJob(t, ts.URL, scheduleBody(t, "emts5", 8))
	env := decodeEnvelope(t, resp)
	final := waitTerminal(t, ts.URL, env.ID)

	full, fullRaw := readSSEFrames(t, getSSE(t, ts.URL, env.ID, -1).Body)
	if len(full) != final.Events {
		t.Fatalf("full stream frames %d != events %d", len(full), final.Events)
	}
	resumed, resumedRaw := readSSEFrames(t, getSSE(t, ts.URL, env.ID, full[0].id).Body)
	if len(resumed) != len(full)-1 || resumed[0].id != full[1].id {
		t.Fatalf("resume from %d: got %d frames starting at %d", full[0].id, len(resumed), resumed[0].id)
	}
	// The resumed bytes are a suffix of the full stream.
	if !strings.HasSuffix(fullRaw, resumedRaw) {
		t.Fatalf("resumed stream is not a byte-suffix of the full stream:\nfull:    %q\nresumed: %q", fullRaw, resumedRaw)
	}

	bad := getSSE(t, ts.URL, env.ID, -1)
	bad.Body.Close()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+env.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, r2)
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed Last-Event-ID: status %d, want 400", r2.StatusCode)
	}
}

// TestJobCancelWithIncumbent drives the anytime contract end to end with a
// real EA run: cancel after the first generation, get state
// cancelled-with-result, and the returned schedule's makespan equals the
// best_makespan of the last streamed generation event.
func TestJobCancelWithIncumbent(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, SSEKeepAlive: time.Hour})

	gen0 := make(chan struct{})
	proceed := make(chan struct{})
	ctxCh := make(chan context.Context, 1)
	var once sync.Once
	s.run = func(ctx context.Context, g *dag.Graph, cluster platform.Cluster, tab *model.Table, algorithm string, seed int64, opt sim.Options) (*sim.Report, error) {
		// Only the async path carries an observer; the test's final sync
		// request runs the stub too and must pass through untouched.
		if inner := opt.OnGeneration; inner != nil {
			ctxCh <- ctx
			opt.OnGeneration = func(gs ea.GenStats) {
				inner(gs)
				if gs.Generation == 0 {
					// Hold the run after its first generation event until the
					// test has delivered the cancel — fully deterministic.
					once.Do(func() { close(gen0) })
					<-proceed
				}
			}
		}
		return sim.RunTableOpts(ctx, g, cluster, tab, algorithm, seed, opt)
	}

	resp := postJob(t, ts.URL, scheduleBody(t, "emts10", 3))
	env := decodeEnvelope(t, resp)
	runCtx := <-ctxCh
	<-gen0

	cancelDone := make(chan jobEnvelope, 1)
	go func() {
		_, denv := deleteJob(t, ts.URL, env.ID, "")
		cancelDone <- denv
	}()
	// The DELETE has landed once the run context is cancelled; only then may
	// the EA proceed to its next generation boundary.
	waitFor(t, func() bool { return runCtx.Err() != nil })
	close(proceed)

	denv := <-cancelDone
	if denv.State != jobs.StateCancelledWithResult {
		t.Fatalf("cancel envelope state %s, want cancelled-with-result", denv.State)
	}
	if len(denv.Result) == 0 {
		t.Fatal("cancelled-with-result envelope carries no result")
	}

	frames, _ := readSSEFrames(t, getSSE(t, ts.URL, env.ID, -1).Body)
	var lastBest float64
	genFrames := 0
	for _, f := range frames {
		if f.event != "generation" {
			continue
		}
		genFrames++
		var ge struct {
			BestMakespan float64 `json:"best_makespan"`
		}
		if err := json.Unmarshal([]byte(f.data), &ge); err != nil {
			t.Fatal(err)
		}
		lastBest = ge.BestMakespan
	}
	if genFrames == 0 {
		t.Fatal("no generation events streamed")
	}

	rresp, err := http.Get(ts.URL + "/v1/jobs/" + env.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rbody := readAll(t, rresp)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", rresp.StatusCode, rbody)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(rbody, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Makespan != lastBest {
		t.Fatalf("anytime makespan %v != last streamed best_makespan %v", sr.Makespan, lastBest)
	}
	if sr.Generations != genFrames {
		t.Fatalf("anytime generations %d != streamed generation events %d", sr.Generations, genFrames)
	}
	if sr.Schedule == nil || len(sr.Schedule.Entries) == 0 {
		t.Fatal("anytime answer carries no schedule")
	}

	// The anytime partial must NOT poison the response cache: a synchronous
	// request for the same body runs fresh and completes all generations.
	sresp := post(t, ts.URL, scheduleBody(t, "emts10", 3))
	sbody := readAll(t, sresp)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("sync status %d: %s", sresp.StatusCode, sbody)
	}
	if sresp.Header.Get("X-Emts-Cache") == "hit" {
		t.Fatal("anytime partial was served from the response cache")
	}
	var full ScheduleResponse
	if err := json.Unmarshal(sbody, &full); err != nil {
		t.Fatal(err)
	}
	if full.Generations <= sr.Generations {
		t.Fatalf("full run generations %d not beyond the partial's %d", full.Generations, sr.Generations)
	}
}

// TestJobIdempotentResubmit: an equivalent request while the first job is
// still live dedups onto the same job (200, Created=false) instead of
// running twice.
func TestJobIdempotentResubmit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, SSEKeepAlive: time.Hour})
	started := make(chan string, 1)
	release := make(chan struct{})
	s.run = blockingRun(started, release)

	body := scheduleBody(t, "emts5", 11)
	r1 := postJob(t, ts.URL, body)
	env1 := decodeEnvelope(t, r1)
	if r1.StatusCode != http.StatusAccepted || !env1.Created {
		t.Fatalf("first submit: status %d, created %v", r1.StatusCode, env1.Created)
	}
	<-started

	r2 := postJob(t, ts.URL, body)
	env2 := decodeEnvelope(t, r2)
	if r2.StatusCode != http.StatusOK || env2.Created {
		t.Fatalf("resubmit: status %d, created %v, want 200/false", r2.StatusCode, env2.Created)
	}
	if env2.ID != env1.ID {
		t.Fatalf("resubmit id %s != original %s", env2.ID, env1.ID)
	}
	if n := s.jobStore.Len(); n != 1 {
		t.Fatalf("store holds %d jobs, want 1", n)
	}

	close(release)
	final := waitTerminal(t, ts.URL, env1.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("state %s, want done", final.State)
	}
}

// TestJobStoreFull: a new key beyond MaxJobs bounces with 429 + Retry-After,
// mirroring queue admission.
func TestJobStoreFull(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxJobs: 1, RetryAfter: 2 * time.Second, SSEKeepAlive: time.Hour})
	started := make(chan string, 1)
	release := make(chan struct{})
	s.run = blockingRun(started, release)
	defer close(release)

	r1 := postJob(t, ts.URL, scheduleBody(t, "emts5", 1))
	readAll(t, r1)
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d", r1.StatusCode)
	}
	<-started

	r2 := postJob(t, ts.URL, scheduleBody(t, "emts5", 2))
	b := readAll(t, r2)
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit status %d, want 429 (%s)", r2.StatusCode, b)
	}
	if ra := r2.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want 2", ra)
	}
}

// TestJobQueueFullRollsBack: when the worker queue refuses the job, the
// submission answers 429 and the store entry is rolled back — the same
// request can be resubmitted once capacity returns.
func TestJobQueueFullRollsBack(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: time.Second, SSEKeepAlive: time.Hour})
	started := make(chan string, 1)
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()
	s.run = blockingRun(started, release)

	r1 := postJob(t, ts.URL, scheduleBody(t, "emts5", 1))
	readAll(t, r1)
	<-started
	r2 := postJob(t, ts.URL, scheduleBody(t, "emts5", 2))
	readAll(t, r2)
	waitFor(t, func() bool { return len(s.queue) == 1 })
	if n := s.jobStore.Len(); n != 2 {
		t.Fatalf("store holds %d jobs, want 2", n)
	}

	r3 := postJob(t, ts.URL, scheduleBody(t, "emts5", 3))
	b := readAll(t, r3)
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status %d, want 429 (%s)", r3.StatusCode, b)
	}
	if n := s.jobStore.Len(); n != 2 {
		t.Fatalf("store holds %d jobs after rollback, want 2", n)
	}
}

// TestJobTTLExpiry: a finished job's result stays pollable until the TTL,
// then expires to 404, and a resubmit runs fresh.
func TestJobTTLExpiry(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, SSEKeepAlive: time.Hour})
	clk := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clk
	}
	s.jobStore.Close()
	s.jobStore = jobs.NewStore(jobs.Config{MaxJobs: 4, TTL: time.Minute, SweepEvery: time.Hour, Now: now})
	s.metrics.jobStates = s.jobStore.Counts

	body := scheduleBody(t, "emts5", 21)
	env := decodeEnvelope(t, postJob(t, ts.URL, body))
	waitTerminal(t, ts.URL, env.ID)

	mu.Lock()
	clk = clk.Add(2 * time.Minute)
	mu.Unlock()
	if _, code := getEnvelope(t, ts.URL, env.ID); code != http.StatusNotFound {
		t.Fatalf("expired job answered %d, want 404", code)
	}

	r := postJob(t, ts.URL, body)
	env2 := decodeEnvelope(t, r)
	if r.StatusCode != http.StatusAccepted || !env2.Created {
		t.Fatalf("resubmit after expiry: status %d created %v, want 202/true", r.StatusCode, env2.Created)
	}
}

// TestJobCancelPurge: a plain DELETE on a terminal job is a no-op returning
// the outcome; ?purge=1 releases the slot and later requests get 404.
func TestJobCancelPurge(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, SSEKeepAlive: time.Hour})
	env := decodeEnvelope(t, postJob(t, ts.URL, scheduleBody(t, "emts5", 31)))
	waitTerminal(t, ts.URL, env.ID)

	resp, denv := deleteJob(t, ts.URL, env.ID, "")
	if resp.StatusCode != http.StatusOK || denv.State != jobs.StateDone {
		t.Fatalf("plain DELETE: status %d state %s", resp.StatusCode, denv.State)
	}
	if _, code := getEnvelope(t, ts.URL, env.ID); code != http.StatusOK {
		t.Fatalf("job gone after non-purging DELETE (status %d)", code)
	}

	resp, denv = deleteJob(t, ts.URL, env.ID, "?purge=1")
	if resp.StatusCode != http.StatusOK || denv.State != jobs.StateDone {
		t.Fatalf("purge DELETE: status %d state %s", resp.StatusCode, denv.State)
	}
	if _, code := getEnvelope(t, ts.URL, env.ID); code != http.StatusNotFound {
		t.Fatalf("purged job answered %d, want 404", code)
	}
	if n := s.jobStore.Len(); n != 0 {
		t.Fatalf("store holds %d jobs after purge, want 0", n)
	}
}

// TestJobConcurrentSubscribers is the -race stress on one job: many SSE
// subscribers attach at different times while the job runs, and every one of
// them must read the exact same byte stream.
func TestJobConcurrentSubscribers(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, SSEKeepAlive: time.Hour})
	started := make(chan string, 1)
	release := make(chan struct{})
	s.run = blockingRun(started, release)

	env := decodeEnvelope(t, postJob(t, ts.URL, scheduleBody(t, "emts10", 41)))
	<-started

	const subscribers = 6
	streams := make([]string, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == subscribers/2 {
				// Half attach before the run produces events, half after it
				// is already finishing.
				close(release)
			}
			resp := getSSE(t, ts.URL, env.ID, -1)
			defer resp.Body.Close()
			_, raw := readSSEFrames(t, resp.Body)
			streams[i] = raw
		}(i)
	}
	wg.Wait()
	for i := 1; i < subscribers; i++ {
		if streams[i] != streams[0] {
			t.Fatalf("subscriber %d read a different stream:\n%q\nvs\n%q", i, streams[i], streams[0])
		}
	}
	if s.metrics.sseSubscribers.Load() != 0 {
		t.Fatalf("sse subscriber gauge = %d after streams closed", s.metrics.sseSubscribers.Load())
	}
}

// TestJobsAPIDisabled: MaxJobs < 0 removes the endpoints entirely.
func TestJobsAPIDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxJobs: -1})
	resp := postJob(t, ts.URL, scheduleBody(t, "emts5", 1))
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("jobs endpoint answered %d with MaxJobs<0, want 404", resp.StatusCode)
	}
}

// TestJobUnknownID: id-addressed endpoints 404 on unknown jobs.
func TestJobUnknownID(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
	resp, _ := deleteJob(t, ts.URL, "nope", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: status %d, want 404", resp.StatusCode)
	}
}

// TestJobResultBeforeTerminal: /result on a live job answers 409 with a
// Retry-After hint.
func TestJobResultBeforeTerminal(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, SSEKeepAlive: time.Hour})
	started := make(chan string, 1)
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()
	s.run = blockingRun(started, release)

	env := decodeEnvelope(t, postJob(t, ts.URL, scheduleBody(t, "emts5", 51)))
	<-started
	resp, err := http.Get(ts.URL + "/v1/jobs/" + env.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result on live job: status %d, want 409 (%s)", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("409 without Retry-After hint")
	}
	releaseOnce()
	waitTerminal(t, ts.URL, env.ID)
}
