package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"emts/internal/jobs"
)

// latencyBuckets are the upper bounds (seconds) of the request-duration
// histograms. The spread covers sub-millisecond heuristic runs (cpa on a tiny
// graph) up to multi-second EMTS10 optimizations of large PTGs.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// histogram is a fixed-bucket latency histogram in the Prometheus style:
// cumulative bucket counts, a sum, and a total count. Guarded by the owning
// metrics mutex.
type histogram struct {
	counts []uint64 // one per latencyBuckets entry; cumulative only at render
	sum    float64
	total  uint64
}

func (h *histogram) observe(v float64) {
	for i, ub := range latencyBuckets {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.total++
}

// metrics is the hand-rolled instrument registry of the service: counters,
// gauges, and per-algorithm latency histograms, rendered in Prometheus text
// exposition format by WriteTo. No external dependencies — the north-star
// constraint is a stdlib-only build.
type metrics struct {
	// inflight is the number of schedule computations currently executing on
	// a worker.
	inflight atomic.Int64
	// cacheHits/cacheMisses count /v1/schedule lookups against the response
	// cache.
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	// queueDepth and queueCapacity are sampled at scrape time.
	queueDepth    func() int
	queueCapacity int
	cacheEntries  func() int
	// Cross-request performance layer samplers (nil when the corresponding
	// feature is disabled; the series are then omitted).
	graphStats        func() (hits, misses uint64)
	tableStats        func() (hits, misses uint64)
	poolStats         func() (hits, misses uint64)
	governorAvailable func() int
	governorCapacity  int

	// Async job subsystem (DESIGN.md §16). jobStates samples the store's
	// per-state population at scrape time (nil when the job API is
	// disabled); sseSubscribers gauges live event streams; anytimeCancels
	// counts cancellations that salvaged an incumbent schedule.
	jobStates      func() map[jobs.State]int
	sseSubscribers atomic.Int64
	anytimeCancels atomic.Uint64

	mu sync.Mutex
	// requests counts finished HTTP requests by status code, across all
	// endpoints.
	requests map[int]uint64
	// outcomes counts schedule computations by algorithm and outcome
	// (ok, client_error, cancelled, deadline, error).
	outcomes map[outcomeKey]uint64
	// latency holds one histogram per algorithm, successful computations only.
	latency map[string]*histogram
	// jobPhase holds one histogram per job lifecycle phase ("queued",
	// "running"), fed by the job finalizer.
	jobPhase map[string]*histogram
}

type outcomeKey struct {
	algorithm string
	outcome   string
}

func newMetrics() *metrics {
	return &metrics{
		requests:      make(map[int]uint64),
		outcomes:      make(map[outcomeKey]uint64),
		latency:       make(map[string]*histogram),
		jobPhase:      make(map[string]*histogram),
		queueDepth:    func() int { return 0 },
		cacheEntries:  func() int { return 0 },
		queueCapacity: 0,
	}
}

func (m *metrics) countRequest(code int) {
	m.mu.Lock()
	m.requests[code]++
	m.mu.Unlock()
}

func (m *metrics) countOutcome(algorithm, outcome string) {
	m.mu.Lock()
	m.outcomes[outcomeKey{algorithm, outcome}]++
	m.mu.Unlock()
}

func (m *metrics) observeJobPhase(phase string, seconds float64) {
	m.mu.Lock()
	h := m.jobPhase[phase]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(latencyBuckets))}
		m.jobPhase[phase] = h
	}
	h.observe(seconds)
	m.mu.Unlock()
}

func (m *metrics) observeLatency(algorithm string, seconds float64) {
	m.mu.Lock()
	h := m.latency[algorithm]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(latencyBuckets))}
		m.latency[algorithm] = h
	}
	h.observe(seconds)
	m.mu.Unlock()
}

// WriteTo renders the registry in Prometheus text exposition format. Series
// are emitted in sorted label order, so two scrapes of the same state are
// byte-identical.
func (m *metrics) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(cw, "# HELP emts_requests_total Finished HTTP requests by status code.")
	fmt.Fprintln(cw, "# TYPE emts_requests_total counter")
	codes := make([]int, 0, len(m.requests))
	for c := range m.requests {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(cw, "emts_requests_total{code=%q} %d\n", strconv.Itoa(c), m.requests[c])
	}

	fmt.Fprintln(cw, "# HELP emts_schedule_total Schedule computations by algorithm and outcome.")
	fmt.Fprintln(cw, "# TYPE emts_schedule_total counter")
	oks := make([]outcomeKey, 0, len(m.outcomes))
	for k := range m.outcomes {
		oks = append(oks, k)
	}
	sort.Slice(oks, func(i, j int) bool {
		if oks[i].algorithm != oks[j].algorithm {
			return oks[i].algorithm < oks[j].algorithm
		}
		return oks[i].outcome < oks[j].outcome
	})
	for _, k := range oks {
		fmt.Fprintf(cw, "emts_schedule_total{algorithm=%q,outcome=%q} %d\n", k.algorithm, k.outcome, m.outcomes[k])
	}

	fmt.Fprintln(cw, "# HELP emts_request_duration_seconds Latency of successful schedule computations.")
	fmt.Fprintln(cw, "# TYPE emts_request_duration_seconds histogram")
	algos := make([]string, 0, len(m.latency))
	for a := range m.latency {
		algos = append(algos, a)
	}
	sort.Strings(algos)
	for _, a := range algos {
		h := m.latency[a]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(cw, "emts_request_duration_seconds_bucket{algorithm=%q,le=%q} %d\n",
				a, strconv.FormatFloat(ub, 'g', -1, 64), cum)
		}
		fmt.Fprintf(cw, "emts_request_duration_seconds_bucket{algorithm=%q,le=\"+Inf\"} %d\n", a, h.total)
		fmt.Fprintf(cw, "emts_request_duration_seconds_sum{algorithm=%q} %g\n", a, h.sum)
		fmt.Fprintf(cw, "emts_request_duration_seconds_count{algorithm=%q} %d\n", a, h.total)
	}

	fmt.Fprintln(cw, "# HELP emts_queue_depth Schedule requests waiting in the admission queue.")
	fmt.Fprintln(cw, "# TYPE emts_queue_depth gauge")
	fmt.Fprintf(cw, "emts_queue_depth %d\n", m.queueDepth())
	fmt.Fprintln(cw, "# HELP emts_queue_capacity Admission queue capacity.")
	fmt.Fprintln(cw, "# TYPE emts_queue_capacity gauge")
	fmt.Fprintf(cw, "emts_queue_capacity %d\n", m.queueCapacity)
	fmt.Fprintln(cw, "# HELP emts_inflight Schedule computations currently executing.")
	fmt.Fprintln(cw, "# TYPE emts_inflight gauge")
	fmt.Fprintf(cw, "emts_inflight %d\n", m.inflight.Load())

	fmt.Fprintln(cw, "# HELP emts_cache_hits_total Response-cache hits.")
	fmt.Fprintln(cw, "# TYPE emts_cache_hits_total counter")
	fmt.Fprintf(cw, "emts_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintln(cw, "# HELP emts_cache_misses_total Response-cache misses.")
	fmt.Fprintln(cw, "# TYPE emts_cache_misses_total counter")
	fmt.Fprintf(cw, "emts_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintln(cw, "# HELP emts_cache_entries Response-cache entries resident.")
	fmt.Fprintln(cw, "# TYPE emts_cache_entries gauge")
	fmt.Fprintf(cw, "emts_cache_entries %d\n", m.cacheEntries())

	writeHitMiss := func(name, help string, stats func() (uint64, uint64)) {
		hits, misses := stats()
		fmt.Fprintf(cw, "# HELP %s_hits_total %s hits.\n", name, help)
		fmt.Fprintf(cw, "# TYPE %s_hits_total counter\n", name)
		fmt.Fprintf(cw, "%s_hits_total %d\n", name, hits)
		fmt.Fprintf(cw, "# HELP %s_misses_total %s misses.\n", name, help)
		fmt.Fprintf(cw, "# TYPE %s_misses_total counter\n", name)
		fmt.Fprintf(cw, "%s_misses_total %d\n", name, misses)
	}
	if m.graphStats != nil {
		writeHitMiss("emts_intern_graph", "Graph-intern", m.graphStats)
	}
	if m.tableStats != nil {
		writeHitMiss("emts_intern_table", "Table-intern", m.tableStats)
	}
	if m.poolStats != nil {
		writeHitMiss("emts_mapper_pool", "Mapper-pool checkout", m.poolStats)
	}
	if m.governorAvailable != nil {
		fmt.Fprintln(cw, "# HELP emts_governor_tokens_available CPU governor tokens currently free (negative under overdraft).")
		fmt.Fprintln(cw, "# TYPE emts_governor_tokens_available gauge")
		fmt.Fprintf(cw, "emts_governor_tokens_available %d\n", m.governorAvailable())
		fmt.Fprintln(cw, "# HELP emts_governor_tokens_capacity CPU governor token capacity.")
		fmt.Fprintln(cw, "# TYPE emts_governor_tokens_capacity gauge")
		fmt.Fprintf(cw, "emts_governor_tokens_capacity %d\n", m.governorCapacity)
	}

	if m.jobStates != nil {
		counts := m.jobStates()
		states := make([]string, 0, len(counts))
		for st := range counts {
			states = append(states, string(st))
		}
		sort.Strings(states)
		fmt.Fprintln(cw, "# HELP emts_jobs_states Async jobs resident in the store, by lifecycle state.")
		fmt.Fprintln(cw, "# TYPE emts_jobs_states gauge")
		for _, st := range states {
			fmt.Fprintf(cw, "emts_jobs_states{state=%q} %d\n", st, counts[jobs.State(st)])
		}
		fmt.Fprintln(cw, "# HELP emts_jobs_sse_subscribers Live SSE progress-stream subscribers.")
		fmt.Fprintln(cw, "# TYPE emts_jobs_sse_subscribers gauge")
		fmt.Fprintf(cw, "emts_jobs_sse_subscribers %d\n", m.sseSubscribers.Load())
		fmt.Fprintln(cw, "# HELP emts_jobs_anytime_cancel_total Job cancellations that salvaged an incumbent schedule.")
		fmt.Fprintln(cw, "# TYPE emts_jobs_anytime_cancel_total counter")
		fmt.Fprintf(cw, "emts_jobs_anytime_cancel_total %d\n", m.anytimeCancels.Load())

		fmt.Fprintln(cw, "# HELP emts_jobs_phase_seconds Time async jobs spend per lifecycle phase.")
		fmt.Fprintln(cw, "# TYPE emts_jobs_phase_seconds histogram")
		phases := make([]string, 0, len(m.jobPhase))
		for p := range m.jobPhase {
			phases = append(phases, p)
		}
		sort.Strings(phases)
		for _, p := range phases {
			h := m.jobPhase[p]
			cum := uint64(0)
			for i, ub := range latencyBuckets {
				cum += h.counts[i]
				fmt.Fprintf(cw, "emts_jobs_phase_seconds_bucket{phase=%q,le=%q} %d\n",
					p, strconv.FormatFloat(ub, 'g', -1, 64), cum)
			}
			fmt.Fprintf(cw, "emts_jobs_phase_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n", p, h.total)
			fmt.Fprintf(cw, "emts_jobs_phase_seconds_sum{phase=%q} %g\n", p, h.sum)
			fmt.Fprintf(cw, "emts_jobs_phase_seconds_count{phase=%q} %d\n", p, h.total)
		}
	}

	return cw.n, cw.err
}

// countingWriter tracks bytes written and the first error, so WriteTo can
// satisfy io.WriterTo without threading errors through every Fprintf.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}
