package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"emts/internal/dag"
	"emts/internal/daggen"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/sim"
)

// testGraphJSON returns a small FFT PTG in the request wire format.
func testGraphJSON(t *testing.T) []byte {
	t.Helper()
	g, err := daggen.FFT(4, daggen.DefaultCosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// scheduleBody builds a request body around the test graph.
func scheduleBody(t *testing.T, algorithm string, seed int64) []byte {
	t.Helper()
	b, err := json.Marshal(ScheduleRequest{
		Graph:     testGraphJSON(t),
		Cluster:   ClusterSpec{Preset: "chti"},
		Model:     "synthetic",
		Algorithm: algorithm,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// newTestServer builds a server (and its httptest front end) and tears both
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func post(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestScheduleEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := post(t, ts.URL, scheduleBody(t, "emts5", 42))
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if sr.Makespan <= 0 || sr.Schedule == nil || sr.Algorithm != "emts5" {
		t.Fatalf("implausible response: %+v", sr)
	}

	// The served result must match a direct library run with the same seed.
	g, _ := daggen.FFT(4, daggen.DefaultCosts(), 1)
	rep, err := sim.Run(g, platform.Chti(), "synthetic", "emts5", 42)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Makespan != rep.Makespan {
		t.Fatalf("served makespan %g != direct run %g", sr.Makespan, rep.Makespan)
	}
}

func TestScheduleValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxTasks: 50})
	cases := []struct {
		name  string
		body  string
		field string
	}{
		{"malformed json", `{`, "body"},
		{"unknown request field", `{"graf":{}}`, "body"},
		{"missing graph", `{"cluster":{"preset":"chti"}}`, "graph"},
		{"cyclic graph", `{"graph":{"tasks":[{"flops":1},{"flops":1}],"edges":[[0,1],[1,0]]},"cluster":{"preset":"chti"}}`, "graph.edges"},
		{"duplicate edge", `{"graph":{"tasks":[{"flops":1},{"flops":1}],"edges":[[0,1],[0,1]]},"cluster":{"preset":"chti"}}`, "graph.edges[1]"},
		{"empty graph", `{"graph":{"tasks":[]},"cluster":{"preset":"chti"}}`, "graph.tasks"},
		{"unknown preset", `{"graph":{"tasks":[{"flops":1}]},"cluster":{"preset":"mars"}}`, "cluster.preset"},
		{"bad inline cluster", `{"graph":{"tasks":[{"flops":1}]},"cluster":{"procs":-3,"speed_gflops":1}}`, "cluster"},
		{"negative timeout", `{"graph":{"tasks":[{"flops":1}]},"cluster":{"preset":"chti"},"timeout_ms":-5}`, "timeout_ms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, ts.URL, []byte(tc.body))
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, body)
			}
			var er struct {
				Error string `json:"error"`
				Field string `json:"field"`
			}
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("non-JSON error body %q", body)
			}
			if er.Field != tc.field {
				t.Fatalf("error field %q, want %q (%s)", er.Field, tc.field, body)
			}
		})
	}
}

// TestScheduleUnknownNames routes bad algorithm/model names through the
// compute path and expects the typed sentinels to surface as 400s.
func TestScheduleUnknownNames(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, body := range []string{
		`{"graph":{"tasks":[{"flops":1}]},"cluster":{"preset":"chti"},"algorithm":"magic"}`,
		`{"graph":{"tasks":[{"flops":1}]},"cluster":{"preset":"chti"},"model":"wat"}`,
	} {
		resp := post(t, ts.URL, []byte(body))
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, b)
		}
	}
}

// TestCacheHitByteIdentity submits the same request twice and requires the
// replay to be byte-identical, flagged as a cache hit, and counted.
func TestCacheHitByteIdentity(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	body := scheduleBody(t, "emts5", 7)

	first := post(t, ts.URL, body)
	b1 := readAll(t, first)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first: status %d: %s", first.StatusCode, b1)
	}
	if got := first.Header.Get("X-Emts-Cache"); got != "miss" {
		t.Fatalf("first request cache header %q, want miss", got)
	}

	second := post(t, ts.URL, body)
	b2 := readAll(t, second)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second: status %d: %s", second.StatusCode, b2)
	}
	if got := second.Header.Get("X-Emts-Cache"); got != "hit" {
		t.Fatalf("second request cache header %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cached replay is not byte-identical")
	}
	if hits := s.metrics.cacheHits.Load(); hits != 1 {
		t.Fatalf("cacheHits = %d, want 1", hits)
	}

	// Whitespace and field order differences must still hit: the key is
	// computed over the canonical graph encoding.
	var loose map[string]interface{}
	if err := json.Unmarshal(body, &loose); err != nil {
		t.Fatal(err)
	}
	reordered, err := json.MarshalIndent(loose, "", "   ")
	if err != nil {
		t.Fatal(err)
	}
	third := post(t, ts.URL, reordered)
	b3 := readAll(t, third)
	if got := third.Header.Get("X-Emts-Cache"); got != "hit" {
		t.Fatalf("reordered request cache header %q, want hit (%s)", got, b3)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatal("reordered request replay is not byte-identical")
	}
}

// blockingRun returns a run stub that signals arrival and blocks until
// released or the request context ends.
func blockingRun(started chan<- string, release <-chan struct{}) runFunc {
	return func(ctx context.Context, g *dag.Graph, cluster platform.Cluster, tab *model.Table, algorithm string, seed int64, opt sim.Options) (*sim.Report, error) {
		select {
		case started <- algorithm:
		default:
		}
		select {
		case <-release:
			return sim.RunTableOpts(context.Background(), g, cluster, tab, algorithm, seed, opt)
		case <-ctx.Done():
			return nil, fmt.Errorf("stub: %w", ctx.Err())
		}
	}
}

// TestAdmissionOverflow fills the single worker and the depth-1 queue, then
// requires the next submission to bounce with 429 + Retry-After.
func TestAdmissionOverflow(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	started := make(chan string, 1)
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()
	s.run = blockingRun(started, release)

	// Distinct seeds: identical bodies would dedup through the cache once the
	// first completes, but here nothing completes until release.
	results := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			resp := post(t, ts.URL, scheduleBody(t, "cpa", seed))
			readAll(t, resp)
			results <- resp.StatusCode
		}(int64(i))
	}
	// Wait until one request occupies the worker and the other sits queued.
	<-started
	waitFor(t, func() bool { return len(s.queue) == 1 })

	resp := post(t, ts.URL, scheduleBody(t, "cpa", 99))
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want 2", ra)
	}

	releaseOnce()
	wg.Wait()
	close(results)
	for code := range results {
		if code != http.StatusOK {
			t.Fatalf("blocked request finished with %d, want 200", code)
		}
	}
}

// TestDeadlineCancellation runs a stub that only returns when its context
// ends: the request must come back 504 and the worker must be free for the
// next request.
func TestDeadlineCancellation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, RequestTimeout: 50 * time.Millisecond})
	release := make(chan struct{})
	s.run = blockingRun(make(chan string, 1), release)

	resp := post(t, ts.URL, scheduleBody(t, "emts10", 1))
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}

	// Release the stub: the worker observed the same context and must be free
	// again, so a follow-up request (stub now answers immediately) succeeds.
	close(release)
	waitFor(t, func() bool { return s.metrics.inflight.Load() == 0 })
	resp = post(t, ts.URL, scheduleBody(t, "cpa", 2))
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status %d, want 200 (%s)", resp.StatusCode, b)
	}
}

// TestRequestDeadlineCancelsEA drives a real EMTS10 run against a deadline
// far shorter than the optimization and requires the per-generation context
// check to abort it: the request fails fast with 504 and the outcome counter
// records the deadline.
func TestRequestDeadlineCancelsEA(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	g, err := daggen.FFT(32, daggen.DefaultCosts(), 1) // 192 tasks: EMTS10 takes well over 5ms
	if err != nil {
		t.Fatal(err)
	}
	graph, _ := json.Marshal(g)
	body, _ := json.Marshal(ScheduleRequest{
		Graph:     graph,
		Cluster:   ClusterSpec{Preset: "grelon"},
		Algorithm: "emts10",
		TimeoutMS: 5,
	})
	resp := post(t, ts.URL, body)
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, b)
	}
	// The EA must notice within one generation: wait for the worker to drain
	// and check the outcome label.
	waitFor(t, func() bool { return s.metrics.inflight.Load() == 0 })
	s.metrics.mu.Lock()
	n := s.metrics.outcomes[outcomeKey{"emts10", "deadline"}]
	s.metrics.mu.Unlock()
	if n != 1 {
		t.Fatalf("deadline outcome count = %d, want 1", n)
	}
}

// TestGracefulShutdownDrains verifies the drain contract: during shutdown
// readiness flips and new work bounces, while admitted work completes.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	started := make(chan string, 1)
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()
	s.run = blockingRun(started, release)

	codes := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			resp := post(t, ts.URL, scheduleBody(t, "mcpa", seed))
			readAll(t, resp)
			codes <- resp.StatusCode
		}(int64(i))
	}
	<-started
	waitFor(t, func() bool { return len(s.queue) == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool { return !s.ready.Load() })

	// Readiness reports draining, and new submissions bounce with 503.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", resp.StatusCode)
	}
	resp = post(t, ts.URL, scheduleBody(t, "mcpa", 9))
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admission during drain: %d, want 503", resp.StatusCode)
	}

	// Release the worker: both admitted requests must complete OK and
	// Shutdown must return.
	releaseOnce()
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("drained request finished with %d, want 200", code)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestReadyzJSONBody pins the routing-tier contract: /readyz keeps the
// 200/503 status codes and carries the JSON detail the router's health
// checker consumes.
func TestReadyzJSONBody(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("readyz Content-Type %q", ct)
	}
	var rb struct {
		Draining   *bool `json:"draining"`
		QueueDepth *int  `json:"queue_depth"`
		Inflight   *int  `json:"inflight"`
	}
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatalf("readyz body %q: %v", body, err)
	}
	if rb.Draining == nil || rb.QueueDepth == nil || rb.Inflight == nil {
		t.Fatalf("readyz body %q missing fields", body)
	}
	if *rb.Draining {
		t.Fatal("fresh server reports draining")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d, want 503", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &rb); err != nil || rb.Draining == nil || !*rb.Draining {
		t.Fatalf("drained readyz body %q (err %v)", body, err)
	}
}

// TestInstanceHeader pins that a configured instance ID reaches every
// response (the routing tier asserts correctness through it) and that an
// unconfigured server omits the header.
func TestInstanceHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, InstanceID: "backend-7"})
	for _, ep := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if got := resp.Header.Get("X-Emts-Instance"); got != "backend-7" {
			t.Fatalf("%s: X-Emts-Instance %q, want backend-7", ep, got)
		}
	}
	resp := post(t, ts.URL, scheduleBody(t, "cpa", 1))
	readAll(t, resp)
	if got := resp.Header.Get("X-Emts-Instance"); got != "backend-7" {
		t.Fatalf("schedule: X-Emts-Instance %q, want backend-7", got)
	}

	_, plain := newTestServer(t, Config{Workers: 1})
	resp2, err := http.Get(plain.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp2)
	if got := resp2.Header.Get("X-Emts-Instance"); got != "" {
		t.Fatalf("unconfigured server stamped X-Emts-Instance %q", got)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", ep, resp.StatusCode)
		}
	}

	// One real request, then the metrics page must carry the series the
	// acceptance criteria name.
	resp := post(t, ts.URL, scheduleBody(t, "cpa", 1))
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page := string(readAll(t, resp))
	for _, want := range []string{
		`emts_requests_total{code="200"}`,
		`emts_schedule_total{algorithm="cpa",outcome="ok"} 1`,
		`emts_request_duration_seconds_count{algorithm="cpa"} 1`,
		"emts_queue_depth 0",
		"emts_inflight 0",
		"emts_cache_misses_total 1",
		"emts_cache_entries 1",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, page)
		}
	}
}

func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if got := resp.Header.Get("X-Request-Id"); got != "caller-7" {
		t.Fatalf("X-Request-Id = %q, want caller-7", got)
	}
	// Without a caller-supplied ID the server assigns one.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("no X-Request-Id assigned")
	}
}

func TestStructuredLogs(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{Workers: 1, LogWriter: &buf})
	resp := post(t, ts.URL, scheduleBody(t, "cpa", 1))
	readAll(t, resp)
	waitFor(t, func() bool { return strings.Count(buf.String(), "\n") >= 1 })
	line := strings.SplitN(buf.String(), "\n", 2)[0]
	var rec map[string]interface{}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("log line is not JSON: %q", line)
	}
	for _, key := range []string{"ts", "level", "req", "method", "path", "code", "dur_ms"} {
		if _, ok := rec[key]; !ok {
			t.Fatalf("log line missing %q: %s", key, line)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for log capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
