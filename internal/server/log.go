package server

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// logger emits structured request logs as JSON lines. Field order is fixed by
// the accessLog struct, so log lines are grep- and jq-stable.
type logger struct {
	mu sync.Mutex
	w  io.Writer
}

// accessLog is one request log record.
type accessLog struct {
	TS        string  `json:"ts"`
	Level     string  `json:"level"`
	Req       string  `json:"req"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Code      int     `json:"code"`
	DurMS     float64 `json:"dur_ms"`
	Algorithm string  `json:"algorithm,omitempty"`
	Cache     string  `json:"cache,omitempty"`
	Err       string  `json:"err,omitempty"`
}

func (l *logger) log(rec accessLog) {
	if l == nil || l.w == nil {
		return
	}
	rec.TS = time.Now().UTC().Format(time.RFC3339Nano)
	rec.Level = "info"
	if rec.Code >= 500 {
		rec.Level = "error"
	} else if rec.Code >= 400 {
		rec.Level = "warn"
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	l.w.Write(b)
	l.mu.Unlock()
}
