// Work-stealing batch dispatch (DESIGN.md §17). The fixed contiguous-chunk
// dispatch of evalBatch assigns worker w exactly rows [w·n/W, (w+1)·n/W) —
// deterministic, but a worker whose rows happen to be cheap (prefilter
// rejections, delta rows) idles while a loaded peer still crunches. The
// stealing dispatch keeps the same initial partition but makes it advisory:
// each worker drains its own range from the front in grain-sized spans, and
// when it runs dry it claims spans from the back of its peers' ranges.
//
// Determinism argument: a claimed span [lo, hi) is evaluated by one
// BatchEvaluator call over the engine's batch scratch sub-slices at exactly
// those indices, and BatchMapper rows are evaluated independently of their
// batch-mates (listsched's per-row contract), so every row's outcome lands
// at its fixed index with the same bytes regardless of which worker claimed
// it, in what order, or in what span size. Stealing changes timing, never
// bytes. The one pre-existing timing-dependent value, firstErr's
// once-only capture, is unchanged from the chunked dispatch.

package ea

import (
	"sync"
	"sync/atomic"
)

// stealRange is one worker's row range [lo, hi), packed into a single
// atomic word (lo in the high 32 bits) so a claim is one CAS: the owner
// advances lo, thieves retreat hi. Ranges only ever shrink, so the packed
// word never repeats and the CAS is ABA-free. Padding keeps neighboring
// ranges off each other's cache line.
type stealRange struct {
	cur atomic.Uint64
	_   [56]byte
}

func packRange(lo, hi int) uint64 { return uint64(lo)<<32 | uint64(hi) }

// reset initializes the range to [lo, hi). Called serially before the
// workers start.
func (r *stealRange) reset(lo, hi int) { r.cur.Store(packRange(lo, hi)) }

// take claims up to grain rows: the owner takes from the front
// (fromFront), thieves from the back, so the two ends never contend on the
// same rows until the range is nearly empty — where the CAS arbitrates.
//
//schedlint:hotpath
func (r *stealRange) take(grain int, fromFront bool) (lo, hi int, ok bool) {
	for {
		cur := r.cur.Load()
		clo, chi := int(cur>>32), int(cur&0xFFFFFFFF)
		if clo >= chi {
			return 0, 0, false
		}
		k := grain
		if k > chi-clo {
			k = chi - clo
		}
		if fromFront {
			if r.cur.CompareAndSwap(cur, packRange(clo+k, chi)) {
				return clo, clo + k, true
			}
		} else {
			if r.cur.CompareAndSwap(cur, packRange(clo, chi-k)) {
				return chi - k, chi, true
			}
		}
	}
}

// stealGrain sizes the span claimed per take: small enough that a straggler
// leaves stealable work behind, large enough that each claim amortizes a
// BatchEvaluator call over several rows.
func stealGrain(n, workers int) int {
	g := n / (workers * 4)
	if g < 1 {
		g = 1
	}
	return g
}

// evalBatchStealing is the work-stealing counterpart of evalBatch's chunked
// fan-out: the rows of toEval are partitioned into the same per-worker
// ranges the chunked dispatch would use, but published as stealable deques.
// Evaluators are constructed serially before any goroutine starts, exactly
// like the chunked path.
//
//schedlint:hotpath
func (eng *evalEngine) evalBatchStealing(workers int, toEval []int, inds []Individual,
	rejectAbove float64, rejected, prefiltered *atomic.Int64, firstErr *atomic.Pointer[error]) {
	n := len(toEval)
	if cap(eng.ranges) < workers {
		//schedlint:allow hotescape -- amortized scratch growth: reallocates only when the worker count grows
		eng.ranges = make([]stealRange, workers)
	}
	ranges := eng.ranges[:workers]
	for w := 0; w < workers; w++ {
		eng.batchEvaluator(w)
		ranges[w].reset(w*n/workers, (w+1)*n/workers)
	}
	grain := stealGrain(n, workers)
	//schedlint:allow hotescape -- wg is captured by the per-worker closures; one heap move per generation, amortized over the batch
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//schedlint:allow hotalloc,hotescape -- one closure per worker per generation, amortized over the claimed spans' evaluations
		go func(w int, ev BatchEvaluator) {
			defer wg.Done()
			eng.stealWorker(w, ranges, grain, ev, toEval, inds, rejectAbove, rejected, prefiltered, firstErr)
		}(w, eng.perWBatch[w])
	}
	wg.Wait()
}

// stealWorker drains worker w's own range from the front, then sweeps the
// peers' ranges (starting at its right neighbor) stealing from the back
// until everything is claimed. One sweep suffices for completeness: ranges
// never grow, and the inner loop only leaves a victim once it is empty, so
// when the sweep finishes every range is empty and every row was claimed by
// exactly one CAS winner.
//
//schedlint:hotpath
func (eng *evalEngine) stealWorker(w int, ranges []stealRange, grain int, ev BatchEvaluator,
	toEval []int, inds []Individual, rejectAbove float64,
	rejected, prefiltered *atomic.Int64, firstErr *atomic.Pointer[error]) {
	workers := len(ranges)
	for {
		lo, hi, ok := ranges[w].take(grain, true)
		if !ok {
			break
		}
		eng.runBatchChunk(ev, toEval[lo:hi], eng.items[lo:hi], eng.fit[lo:hi], eng.batchErrs[lo:hi],
			inds, rejectAbove, rejected, prefiltered, firstErr)
	}
	for off := 1; off < workers; off++ {
		v := w + off
		if v >= workers {
			v -= workers
		}
		for {
			lo, hi, ok := ranges[v].take(grain, false)
			if !ok {
				break
			}
			eng.runBatchChunk(ev, toEval[lo:hi], eng.items[lo:hi], eng.fit[lo:hi], eng.batchErrs[lo:hi],
				inds, rejectAbove, rejected, prefiltered, firstErr)
		}
	}
}
