package ea

import (
	"reflect"
	"testing"
	"testing/quick"

	"emts/internal/schedule"
)

// TestCacheShardsBitIdentical: any shard count — including the degenerate
// single stripe — yields bit-identical runs. This is the determinism
// meta-test entry for the CacheShards switch.
func TestCacheShardsBitIdentical(t *testing.T) {
	const v, procs = 10, 6
	target := make(schedule.Allocation, v)
	for i := range target {
		target[i] = 1 + i%procs
	}
	f := func(seed int64, useRejection bool) bool {
		cfg := defaultConfig(seed)
		cfg.Generations = 6
		cfg.UseRejection = useRejection
		cfg.Workers = 4
		cfg.CacheShards = 1
		ref, err := Run(cfg, v, procs, nil, sphereFitness(target))
		if err != nil {
			return false
		}
		for _, shards := range []int{4, 64} {
			cfg.CacheShards = shards
			got, err := Run(cfg, v, procs, nil, sphereFitness(target))
			if err != nil {
				return false
			}
			if got.Best.Fitness != ref.Best.Fitness ||
				!reflect.DeepEqual(got.Best.Alloc, ref.Best.Alloc) ||
				!reflect.DeepEqual(got.History, ref.History) ||
				got.Evaluations != ref.Evaluations ||
				got.Rejections != ref.Rejections ||
				got.CacheHits != ref.CacheHits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheShardRounding: the stripe count is rounded up to a power of two
// and capped.
func TestCacheShardRounding(t *testing.T) {
	cases := []struct {
		in, want int
	}{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {100, 64}}
	for _, c := range cases {
		eng := newEvalEngine(Config{Workers: 2, CacheShards: c.in}, nil)
		if got := len(eng.shards); got != c.want {
			t.Errorf("CacheShards %d → %d stripes, want %d", c.in, got, c.want)
		}
	}
	eng := newEvalEngine(Config{Workers: 6}, nil) // default: sized to workers
	if got := len(eng.shards); got != 8 {
		t.Errorf("default stripes for 6 workers = %d, want 8", got)
	}
	if eng = newEvalEngine(Config{Workers: 2, DisableCache: true}, nil); len(eng.shards) != 0 {
		t.Error("DisableCache left shards allocated")
	}
}

// TestSequentialFastPathMatchesParallel: the Workers == 1 inline path (no
// goroutine, no channel) must produce the same results and counters as the
// fanned-out path.
func TestSequentialFastPathMatchesParallel(t *testing.T) {
	const v, procs = 10, 6
	target := make(schedule.Allocation, v)
	for i := range target {
		target[i] = 1 + i%procs
	}
	f := func(seed int64, useRejection bool) bool {
		cfg := defaultConfig(seed)
		cfg.Generations = 6
		cfg.UseRejection = useRejection
		cfg.Workers = 1
		seq, err := Run(cfg, v, procs, nil, sphereFitness(target))
		if err != nil {
			return false
		}
		cfg.Workers = 4
		par, err := Run(cfg, v, procs, nil, sphereFitness(target))
		if err != nil {
			return false
		}
		return seq.Best.Fitness == par.Best.Fitness &&
			reflect.DeepEqual(seq.Best.Alloc, par.Best.Alloc) &&
			reflect.DeepEqual(seq.History, par.History) &&
			seq.Evaluations == par.Evaluations &&
			seq.Rejections == par.Rejections &&
			seq.CacheHits == par.CacheHits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// benchShardContention hammers the memo cache from GOMAXPROCS goroutines —
// the access pattern of the worker insert tail plus the lookup pre-pass — at
// a given stripe count. Comparing shards=1 against the default shows what the
// single-map mutex costs.
func benchShardContention(b *testing.B, shards int) {
	eng := newEvalEngine(Config{Workers: 8, CacheShards: shards}, nil)
	const v, entries = 50, 1024
	allocs := make([]schedule.Allocation, entries)
	keys := make([]uint64, entries)
	for i := range allocs {
		a := make(schedule.Allocation, v)
		for j := range a {
			a[j] = 1 + (i+j)%16
		}
		allocs[i] = a
		keys[i] = hashAlloc(a)
		eng.insert(keys[i], a, float64(i))
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := i & (entries - 1)
			if _, ok := eng.lookup(keys[k], allocs[k]); !ok {
				b.Fatal("lookup miss on pre-inserted entry")
			}
			i++
		}
	})
}

func BenchmarkMemoCacheShards1(b *testing.B)  { benchShardContention(b, 1) }
func BenchmarkMemoCacheShards8(b *testing.B)  { benchShardContention(b, 8) }
func BenchmarkMemoCacheShards64(b *testing.B) { benchShardContention(b, 64) }
