package ea

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"emts/internal/schedule"
)

// sphereFitness is a simple separable fitness: distance of the allocation
// from a target vector. Its unique optimum is the target itself.
func sphereFitness(target schedule.Allocation) Evaluator {
	return func(a schedule.Allocation, rejectAbove float64) (float64, error) {
		sum := 0.0
		for i := range a {
			d := float64(a[i] - target[i])
			sum += d * d
		}
		if rejectAbove > 0 && sum > rejectAbove {
			return 0, ErrRejected
		}
		return sum, nil
	}
}

func defaultConfig(seed int64) Config {
	return Config{Mu: 5, Lambda: 25, Generations: 10, Fm: 0.33, Seed: seed}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Mu: 0, Lambda: 1, Generations: 1, Fm: 0.5},
		{Mu: 1, Lambda: 0, Generations: 1, Fm: 0.5},
		{Mu: 1, Lambda: 1, Generations: 0, Fm: 0.5},
		{Mu: 1, Lambda: 1, Generations: 1, Fm: 0},
		{Mu: 1, Lambda: 1, Generations: 1, Fm: 1.5},
		{Mu: 1, Lambda: 1, Generations: 1, Fm: 0.5, CrossoverProb: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if err := defaultConfig(1).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestMutationCountSchedule(t *testing.T) {
	// V=100, fm=0.33, U=5: first generation mutates 33 alleles.
	if got := MutationCount(0, 5, 0.33, 100); got != 33 {
		t.Fatalf("m(0) = %d, want 33", got)
	}
	// Counts must be non-increasing in u and always >= 1.
	prev := math.MaxInt32
	for u := 0; u < 5; u++ {
		m := MutationCount(u, 5, 0.33, 100)
		if m > prev || m < 1 {
			t.Fatalf("m(%d) = %d (prev %d)", u, m, prev)
		}
		prev = m
	}
	// Final generation still mutates at least one allele.
	if got := MutationCount(4, 5, 0.33, 3); got < 1 {
		t.Fatalf("m = %d, want >= 1", got)
	}
	// Never exceeds V.
	if got := MutationCount(0, 5, 1.0, 7); got > 7 {
		t.Fatalf("m = %d > V", got)
	}
}

func TestPaperMutatorDeltaProperties(t *testing.T) {
	pm := DefaultPaperMutator()
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	neg, pos := 0, 0
	for i := 0; i < n; i++ {
		d := pm.Delta(rng)
		if d == 0 {
			t.Fatal("Delta returned 0; |C| must be >= 1")
		}
		if d < 0 {
			neg++
		} else {
			pos++
		}
	}
	shrinkFrac := float64(neg) / n
	// a = 0.2: shrink with probability 20% (+- sampling noise).
	if shrinkFrac < 0.19 || shrinkFrac > 0.21 {
		t.Fatalf("shrink fraction = %g, want ~0.2", shrinkFrac)
	}
}

func TestPaperMutatorSmallChangesMoreLikely(t *testing.T) {
	pm := DefaultPaperMutator()
	rng := rand.New(rand.NewSource(2))
	counts := map[int]int{}
	for i := 0; i < 100000; i++ {
		d := pm.Delta(rng)
		if d > 0 {
			counts[d]++
		}
	}
	// P(C=1) > P(C=5) > P(C=12): folded normal is decreasing.
	if !(counts[1] > counts[5] && counts[5] > counts[12]) {
		t.Fatalf("magnitude histogram not decreasing: 1:%d 5:%d 12:%d",
			counts[1], counts[5], counts[12])
	}
}

func TestPaperMutatorMutatesExactlyMAlleles(t *testing.T) {
	pm := DefaultPaperMutator()
	f := func(seed int64, rawM uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const v, procs = 50, 64
		m := 1 + int(rawM)%v
		orig := make(schedule.Allocation, v)
		for i := range orig {
			orig[i] = 1 + rng.Intn(procs)
		}
		got := orig.Clone()
		pm.Mutate(rng, got, m, procs)
		changed := 0
		for i := range got {
			if got[i] != orig[i] {
				changed++
			}
			if got[i] < 1 || got[i] > procs {
				return false
			}
		}
		// Clamping can leave an allele unchanged (e.g. shrink at 1), so
		// changed <= m; it must never exceed m.
		return changed <= m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformMutatorBounds(t *testing.T) {
	um := UniformMutator{}
	rng := rand.New(rand.NewSource(3))
	a := schedule.Ones(20)
	um.Mutate(rng, a, 20, 7)
	for i, v := range a {
		if v < 1 || v > 7 {
			t.Fatalf("allele %d = %d out of range", i, v)
		}
	}
}

func TestSamplePositionsDistinct(t *testing.T) {
	f := func(seed int64, rawN, rawM uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(rawN)%40
		m := int(rawM) % 50
		pos := samplePositions(rng, n, m)
		if m > n && len(pos) != n {
			return false
		}
		if m <= n && m >= 0 && len(pos) != m {
			return false
		}
		seen := map[int]bool{}
		for _, p := range pos {
			if p < 0 || p >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRunConvergesTowardOptimum(t *testing.T) {
	const v, procs = 20, 32
	target := make(schedule.Allocation, v)
	for i := range target {
		target[i] = 1 + i%procs
	}
	fit := sphereFitness(target)
	start := schedule.Ones(v)
	startFit, _ := fit(start, 0)

	cfg := defaultConfig(11)
	cfg.Generations = 30
	res, err := Run(cfg, v, procs, []schedule.Allocation{start}, fit)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness >= startFit {
		t.Fatalf("no improvement: best %g vs start %g", res.Best.Fitness, startFit)
	}
	if res.Best.Fitness > startFit/2 {
		t.Fatalf("too little improvement: best %g vs start %g", res.Best.Fitness, startFit)
	}
}

func TestRunHistoryNonIncreasing(t *testing.T) {
	f := func(seed int64) bool {
		const v, procs = 15, 16
		target := make(schedule.Allocation, v)
		rng := rand.New(rand.NewSource(seed))
		for i := range target {
			target[i] = 1 + rng.Intn(procs)
		}
		cfg := defaultConfig(seed)
		cfg.Generations = 8
		res, err := Run(cfg, v, procs, nil, sphereFitness(target))
		if err != nil {
			return false
		}
		if len(res.History) != cfg.Generations+1 {
			return false
		}
		for i := 1; i < len(res.History); i++ {
			if res.History[i] > res.History[i-1] {
				return false // plus-selection must conserve the best
			}
		}
		return res.Best.Fitness == res.History[len(res.History)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDeterministicForSameSeed(t *testing.T) {
	const v, procs = 12, 8
	target := make(schedule.Allocation, v)
	for i := range target {
		target[i] = 1 + i%procs
	}
	cfg := defaultConfig(99)
	r1, err := Run(cfg, v, procs, nil, sphereFitness(target))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1 // sequential evaluation must not change the result
	r2, err := Run(cfg, v, procs, nil, sphereFitness(target))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Best.Fitness != r2.Best.Fitness || !reflect.DeepEqual(r1.Best.Alloc, r2.Best.Alloc) {
		t.Fatalf("parallel vs sequential diverged: %v/%g vs %v/%g",
			r1.Best.Alloc, r1.Best.Fitness, r2.Best.Alloc, r2.Best.Fitness)
	}
	if !reflect.DeepEqual(r1.History, r2.History) {
		t.Fatalf("histories differ: %v vs %v", r1.History, r2.History)
	}
}

func TestRunKeepsSeedIfUnbeatable(t *testing.T) {
	// Seed is the exact optimum: the EA must return it (plus-selection).
	const v, procs = 10, 4
	target := schedule.Ones(v)
	cfg := defaultConfig(5)
	res, err := Run(cfg, v, procs, []schedule.Allocation{target.Clone()}, sphereFitness(target))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness != 0 {
		t.Fatalf("lost the optimal seed: fitness %g", res.Best.Fitness)
	}
	if !reflect.DeepEqual(res.Best.Alloc, target) {
		t.Fatalf("best = %v, want %v", res.Best.Alloc, target)
	}
}

func TestRunWithRejection(t *testing.T) {
	// Start from random individuals: once a decent best exists, worse
	// offspring must be rejected against it (and counted).
	const v, procs = 16, 16
	target := schedule.Ones(v)
	cfg := defaultConfig(7)
	cfg.UseRejection = true
	res, err := Run(cfg, v, procs, nil, sphereFitness(target))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejections == 0 {
		t.Fatal("expected some rejections with a random start population")
	}
	if res.Rejections >= res.Evaluations {
		t.Fatalf("rejections %d >= evaluations %d", res.Rejections, res.Evaluations)
	}
}

func TestRunRejectionDoesNotChangeBest(t *testing.T) {
	f := func(seed int64) bool {
		const v, procs = 12, 10
		target := make(schedule.Allocation, v)
		rng := rand.New(rand.NewSource(seed))
		for i := range target {
			target[i] = 1 + rng.Intn(procs)
		}
		plain := defaultConfig(seed)
		rej := plain
		rej.UseRejection = true
		r1, err1 := Run(plain, v, procs, nil, sphereFitness(target))
		r2, err2 := Run(rej, v, procs, nil, sphereFitness(target))
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Best.Fitness == r2.Best.Fitness
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCrossoverStillConverges(t *testing.T) {
	const v, procs = 20, 16
	target := make(schedule.Allocation, v)
	for i := range target {
		target[i] = 1 + i%procs
	}
	cfg := defaultConfig(13)
	cfg.CrossoverProb = 0.5
	cfg.Generations = 20
	res, err := Run(cfg, v, procs, nil, sphereFitness(target))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatal("history increased with crossover enabled")
		}
	}
}

func TestRunPropagatesEvaluatorError(t *testing.T) {
	boom := errors.New("boom")
	fit := func(a schedule.Allocation, _ float64) (float64, error) { return 0, boom }
	_, err := Run(defaultConfig(1), 5, 4, nil, fit)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestRunInputValidation(t *testing.T) {
	fit := sphereFitness(schedule.Ones(5))
	if _, err := Run(defaultConfig(1), 0, 4, nil, fit); err == nil {
		t.Fatal("v=0 accepted")
	}
	if _, err := Run(defaultConfig(1), 5, 0, nil, fit); err == nil {
		t.Fatal("procs=0 accepted")
	}
	if _, err := Run(defaultConfig(1), 5, 4, []schedule.Allocation{schedule.Ones(3)}, fit); err == nil {
		t.Fatal("wrong-length seed accepted")
	}
	bad := defaultConfig(1)
	bad.Mu = 0
	if _, err := Run(bad, 5, 4, nil, fit); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunClampsOutOfRangeSeeds(t *testing.T) {
	// A seed with allocations above procs must be clamped, not rejected:
	// heuristic output for a bigger cluster should still be usable.
	seed := schedule.Allocation{100, 1, 1, 1, 1}
	fit := sphereFitness(schedule.Ones(5))
	res, err := Run(defaultConfig(3), 5, 4, []schedule.Allocation{seed}, fit)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Best.Alloc {
		if a < 1 || a > 4 {
			t.Fatalf("allele %d out of range", a)
		}
	}
}

func TestEvaluationsCounted(t *testing.T) {
	cfg := defaultConfig(21)
	cfg.Generations = 3
	res, err := Run(cfg, 8, 8, nil, sphereFitness(schedule.Ones(8)))
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Mu + cfg.Generations*cfg.Lambda // initial pool + offspring
	if res.Evaluations != want {
		t.Fatalf("Evaluations = %d, want %d", res.Evaluations, want)
	}
}

func TestSelectBestStableTies(t *testing.T) {
	pool := []Individual{
		{Alloc: schedule.Allocation{1}, Fitness: 2},
		{Alloc: schedule.Allocation{2}, Fitness: 1},
		{Alloc: schedule.Allocation{3}, Fitness: 1},
	}
	best := selectBest(pool, 2, 0)
	if best[0].Alloc[0] != 2 || best[1].Alloc[0] != 3 {
		t.Fatalf("selectBest order: %v", best)
	}
	// Mutating the selection must not touch the pool.
	best[0].Alloc[0] = 99
	if pool[1].Alloc[0] != 2 {
		t.Fatal("selectBest aliases pool")
	}
}
