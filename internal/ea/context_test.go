package ea

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"emts/internal/schedule"
)

func TestRunContextCancelledUpfront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, defaultConfig(1), 8, 8, nil, sphereFitness(schedule.Ones(8)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextStopsWithinOneGeneration cancels from the OnGeneration hook
// after generation 1 has been selected: the run must abort before generation 2
// starts, i.e. no further OnGeneration callbacks fire.
func TestRunContextStopsWithinOneGeneration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var gens []int
	cfg := defaultConfig(7)
	cfg.OnGeneration = func(gs GenStats) {
		gens = append(gens, gs.Generation)
		if gs.Generation == 1 {
			cancel()
		}
	}
	_, err := RunContext(ctx, cfg, 8, 8, nil, sphereFitness(schedule.Ones(8)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(gens) != 2 {
		t.Fatalf("generations run after cancellation: saw callbacks for %v, want [0 1]", gens)
	}
}

// TestRunContextPartialResultOnCancel asserts the anytime contract: a
// mid-run cancellation returns the incumbent alongside context.Canceled, and
// the partial result is exactly the prefix of the uncancelled run — same
// incumbent fitness as the last OnGeneration callback, one history entry per
// completed generation, Generations counting them.
func TestRunContextPartialResultOnCancel(t *testing.T) {
	fit := sphereFitness(schedule.Ones(8))
	ctx, cancel := context.WithCancel(context.Background())
	var last GenStats
	cfg := defaultConfig(11)
	cfg.OnGeneration = func(gs GenStats) {
		last = gs
		if gs.Generation == 1 {
			cancel()
		}
	}
	res, err := RunContext(ctx, cfg, 8, 8, nil, fit)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.Generations != 2 {
		t.Fatalf("Generations = %d, want 2", res.Generations)
	}
	if res.Best.Alloc == nil {
		t.Fatal("partial result has no incumbent allocation")
	}
	if res.Best.Fitness != last.BestEver {
		t.Fatalf("incumbent fitness %v != last observed BestEver %v", res.Best.Fitness, last.BestEver)
	}
	// History[0] is post-initialization, then one entry per generation.
	if len(res.History) != res.Generations+1 {
		t.Fatalf("len(History) = %d, want %d", len(res.History), res.Generations+1)
	}

	full, err := Run(defaultConfig(11), 8, 8, nil, fit)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.History, full.History[:len(res.History)]) {
		t.Fatalf("partial history %v is not a prefix of the full run's %v", res.History, full.History)
	}
}

// TestRunContextIsTransparent asserts the cancellation plumbing costs nothing
// in terms of results: a run under a live context is bit-identical to the
// same seed through the context-free entry point.
func TestRunContextIsTransparent(t *testing.T) {
	fit := sphereFitness(schedule.Ones(8))
	plain, err := Run(defaultConfig(3), 8, 8, nil, fit)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx, err := RunContext(ctx, defaultConfig(3), 8, 8, nil, fit)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Best, withCtx.Best) || !reflect.DeepEqual(plain.History, withCtx.History) {
		t.Fatal("RunContext result differs from Run with the same seed")
	}
}
