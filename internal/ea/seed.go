package ea

import "math/rand"

// Island RNG derivation (DESIGN.md §17). Every island of a run owns a private
// *rand.Rand; the streams are decorrelated by deriving each island's seed
// from the run seed with splitmix64, the standard seed-spreading finalizer
// (Steele et al., "Fast splittable pseudorandom number generators"). Island 0
// keeps the raw run seed so a single-island run draws exactly the sequence
// the pre-island code drew — the byte-identity anchor for the whole lattice.
//
// newIslandRNG is the only sanctioned constructor of RNGs in this package:
// the schedlint islandrng analyzer rejects any other math/rand construction
// in internal/ea, so a refactor cannot quietly reintroduce a shared or
// ad-hoc-seeded generator.

// splitmix64GoldenGamma is the Weyl-sequence increment of splitmix64: the
// golden ratio in 0.64 fixed point, chosen so consecutive states differ in
// about half their bits before mixing.
const splitmix64GoldenGamma = 0x9E3779B97F4A7C15

// splitmix64 applies the splitmix64 output mix to x: an invertible avalanche
// (two xor-shift-multiply rounds) under which single-bit input changes flip
// about half the output bits.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// islandSeed derives the RNG seed of island idx from the run seed. Island 0
// keeps the raw seed (single-island byte-identity); island idx > 0 gets the
// idx-th splitmix64 output, i.e. the mix of seed advanced idx golden-gamma
// steps. The derivation depends only on (seed, idx), never on the island
// count, worker count, or topology.
func islandSeed(seed int64, idx int) int64 {
	if idx == 0 {
		return seed
	}
	return int64(splitmix64(uint64(seed) + uint64(idx)*splitmix64GoldenGamma))
}

// newIslandRNG builds island idx's private generator. All math/rand
// construction in this package must flow through here (schedlint islandrng).
func newIslandRNG(seed int64, idx int) *rand.Rand {
	return rand.New(rand.NewSource(islandSeed(seed, idx)))
}
