// Island-model execution (DESIGN.md §17). An island is one self-contained
// (μ+λ) population: it owns its parents, its offspring arena, its RNG stream
// (seed.go), and its evaluation engine — including the engine's per-worker
// evaluator checkouts and sharded memo cache, so islands never contend on
// shared mutable state. A single-island run (Config.Islands <= 1) executes
// exactly the statement sequence the pre-island RunContext executed, against
// exactly the same RNG stream; the multi-island coordinator (runIslands)
// composes the same island steps with deterministic migration barriers.

package ea

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"emts/internal/schedule"
)

// Topology names for Config.Topology.
const (
	// TopologyRing connects the islands in a directed cycle: island i
	// receives migrants from island (i−1+N) mod N. The default.
	TopologyRing = "ring"
	// TopologyFull connects every island to every other: island i receives
	// the migrants of all N−1 peers.
	TopologyFull = "full"
)

// island is one population of a run, plus the scratch state its generation
// loop reuses. All fields are private to the island's goroutine between
// barriers; the coordinator only touches them while the island is parked.
type island struct {
	idx      int
	cfg      Config // private copy; Workers holds this island's budget
	v, procs int
	seeds    []schedule.Allocation // shared, read-only
	rng      *rand.Rand
	eng      *evalEngine
	res      *Result

	mut          Mutator
	pmut         PositionsMutator
	hasPositions bool
	initialSigma float64
	tau          float64

	// Generation-loop arenas, allocated once in init (see the aliasing-rule
	// comment there).
	pool       []Individual
	parents    []Individual
	offspring  []Individual
	arena      schedule.Allocation
	perm       []int
	lineageBuf []int
	m0         int

	// observe receives each generation's GenStats. The single-island path
	// wires Config.OnGeneration directly; the coordinator wires a buffering
	// closure and replays the buffer in deterministic order at each barrier.
	observe func(GenStats)

	// Multi-island bookkeeping, touched only at barriers.
	stats  []GenStats   // buffered per-generation stats, indexed by generation
	outbox []Individual // this island's migrants, cloned at the barrier
	err    error        // the island's failure, collected by the coordinator
}

// newIsland builds island idx of a run. cfg is the island's private copy:
// the coordinator pre-divides the worker budget, everything else is shared
// verbatim. The construction order (mutator, RNG, result, engine) mirrors
// the pre-island RunContext.
func newIsland(idx int, cfg Config, v, procs int, seeds []schedule.Allocation, fitness Evaluator) *island {
	mut := cfg.Mutator
	if mut == nil {
		mut = DefaultPaperMutator()
	}
	is := &island{idx: idx, cfg: cfg, v: v, procs: procs, seeds: seeds, mut: mut}
	is.rng = newIslandRNG(cfg.Seed, idx)
	is.res = &Result{}
	is.eng = newEvalEngine(cfg, fitness)
	is.pmut, is.hasPositions = mut.(PositionsMutator)
	is.observe = cfg.OnGeneration
	return is
}

// init seeds and evaluates the initial population, selects the first parent
// generation, and allocates the generation-loop arenas.
func (is *island) init() error {
	cfg := &is.cfg
	// Initial pool: seeds (clamped defensively) plus random fill.
	pool := make([]Individual, 0, max(len(is.seeds), cfg.Mu))
	for _, s := range is.seeds {
		if len(s) != is.v {
			return fmt.Errorf("ea: seed individual has %d alleles, want %d", len(s), is.v)
		}
		pool = append(pool, Individual{Alloc: s.Clone().Clamp(is.procs)})
	}
	for len(pool) < cfg.Mu {
		a := make(schedule.Allocation, is.v)
		for i := range a {
			a[i] = 1 + is.rng.Intn(is.procs)
		}
		pool = append(pool, Individual{Alloc: a})
	}
	if err := is.eng.evaluateAll(pool, 0, is.res); err != nil {
		return err
	}
	// The initial pool's vectors are all freshly allocated and private to
	// this island, so every entry qualifies for clone-free passthrough.
	is.parents = selectBest(pool, cfg.Mu, len(pool))
	is.res.Best = is.parents[0].Clone()
	is.res.History = append(is.res.History, is.res.Best.Fitness)

	// Self-adaptation bookkeeping.
	is.initialSigma = cfg.InitialSigma
	if is.initialSigma <= 0 {
		is.initialSigma = 5 // the paper's σ
	}
	if cfg.SelfAdaptive {
		for i := range is.parents {
			if is.parents[i].Sigma <= 0 {
				is.parents[i].Sigma = is.initialSigma
			}
		}
	}
	is.tau = 1 / math.Sqrt(2*float64(is.v))

	// Offspring arena: one backing array serves all λ child vectors and is
	// reused every generation, and one permutation buffer serves every
	// mutation call — offspring generation allocates nothing after this
	// point. The aliasing rule making this safe: anything that must outlive
	// the generation is copied out — selectBest clones arena-backed
	// survivors and the memo cache stores private copies (evalEngine.insert)
	// — so overwriting the arena next generation cannot corrupt survivors or
	// cached entries.
	is.offspring = make([]Individual, cfg.Lambda)
	is.arena = make(schedule.Allocation, cfg.Lambda*is.v)
	is.perm = make([]int, is.v)
	// lineageBuf holds each offspring's mutated-position list. MutationCount
	// is non-increasing in u, so the generation-0 count bounds every later
	// one and λ fixed-size segments suffice.
	is.m0 = MutationCount(0, cfg.Generations, cfg.Fm, is.v)
	is.lineageBuf = make([]int, cfg.Lambda*is.m0)
	is.pool = pool
	return nil
}

// step runs generation u: offspring generation, evaluation, selection,
// incumbent/history update, and observer delivery. The statement sequence —
// in particular every RNG draw — is the pre-island RunContext generation
// body verbatim.
func (is *island) step(u int) error {
	cfg := &is.cfg
	m := MutationCount(u, cfg.Generations, cfg.Fm, is.v)
	parents, offspring := is.parents, is.offspring
	for i := range offspring {
		parent := parents[is.rng.Intn(len(parents))]
		child := is.arena[i*is.v : (i+1)*is.v : (i+1)*is.v]
		copy(child, parent.Alloc)
		crossed := false
		if cfg.CrossoverProb > 0 && len(parents) > 1 && is.rng.Float64() < cfg.CrossoverProb {
			other := parents[is.rng.Intn(len(parents))].Alloc
			uniformCrossover(is.rng, child, other)
			crossed = true
		}
		sigma := 0.0
		var positions []int
		if cfg.SelfAdaptive {
			sigma = parent.Sigma
			if sigma <= 0 {
				sigma = is.initialSigma
			}
			sigma *= math.Exp(is.tau * is.rng.NormFloat64())
			if sigma < 0.3 {
				sigma = 0.3 // keep |C| >= 1 meaningful
			}
			if max := float64(is.procs); sigma > max {
				sigma = max
			}
			positions = PaperMutator{A: 0.2, Sigma1: sigma, Sigma2: sigma}.MutateInto(is.rng, child, m, is.procs, is.perm)
		} else if is.hasPositions {
			positions = is.pmut.MutateInto(is.rng, child, m, is.procs, is.perm)
		} else {
			is.mut.Mutate(is.rng, child, m, is.procs)
		}
		offspring[i] = Individual{Alloc: child, Sigma: sigma}
		// Record lineage for delta-aware evaluation: only for pure
		// mutations (crossover mixes two parents, so the touched-position
		// set is unknown) and only when the positions fit the per-child
		// segment. The parent vector is safe to reference: selected
		// parents are never mutated in place for the rest of the run.
		if positions != nil && !crossed && len(positions) <= is.m0 {
			lin := is.lineageBuf[i*is.m0 : i*is.m0+len(positions)]
			copy(lin, positions)
			offspring[i].parent = parent.Alloc
			offspring[i].mutated = lin
		}
	}
	bound := 0.0
	if cfg.UseRejection {
		bound = is.res.Best.Fitness
	}
	rejectedBefore := is.res.Rejections
	if err := is.eng.evaluateAll(offspring, bound, is.res); err != nil {
		return err
	}
	// Selection: plus-strategy pools parents with offspring; the
	// comma-strategy selects from the offspring alone. The leading
	// parents region is stable (clone-free passthrough); the offspring
	// region is arena-backed and must be cloned when selected.
	is.pool = is.pool[:0]
	stable := 0
	if cfg.Strategy == Plus {
		is.pool = append(is.pool, parents...)
		stable = len(parents)
	}
	is.pool = append(is.pool, offspring...)
	is.parents = selectBest(is.pool, cfg.Mu, stable)
	if is.parents[0].Fitness < is.res.Best.Fitness {
		is.res.Best = is.parents[0].Clone()
	}
	is.res.History = append(is.res.History, is.res.Best.Fitness)
	is.res.Generations = u + 1
	if is.observe != nil {
		gs := poolStats(u, is.pool, is.res.Best.Fitness, is.res.Rejections-rejectedBefore)
		gs.Island = is.idx
		gs.Evaluations = is.res.Evaluations
		gs.CacheHits = is.res.CacheHits
		gs.PrefilterRejections = is.res.PrefilterRejections
		is.observe(gs)
	}
	return nil
}

// runSpan runs generations [from, to). The multi-island epoch body; context
// is deliberately not consulted here — the coordinator observes it at the
// migration barriers only, so a cancelled multi-island run always stops at a
// barrier with every island at the same generation (the anytime contract's
// "result equals the last streamed aggregate" then holds exactly).
func (is *island) runSpan(from, to int) error {
	for u := from; u < to; u++ {
		if err := is.step(u); err != nil {
			return err
		}
	}
	return nil
}

// runIslands executes an Islands > 1 run: N independent islands advance in
// epochs of MigrationInterval generations between full barriers; at each
// barrier the coordinator replays buffered GenStats in (generation, island)
// order, observes ctx, and migrates the top MigrationCount individuals along
// the topology. Every cross-island exchange happens at a barrier with all
// island goroutines parked, so the run is a deterministic function of
// (Config, seeds) — worker counts, GOMAXPROCS, and goroutine interleaving
// change timing but never bytes.
func runIslands(ctx context.Context, cfg Config, v, procs int, seeds []schedule.Allocation, fitness Evaluator) (*Result, error) {
	n := cfg.Islands
	interval := cfg.MigrationInterval
	if interval <= 0 {
		interval = 1
	}
	count := cfg.MigrationCount
	if count <= 0 {
		count = 1
	}
	full := cfg.Topology == TopologyFull

	// Divide the worker budget: each island's engine gets an equal share
	// (floor, min 1) so N islands saturate the same core budget one island
	// would. Purely a timing decision — results are worker-count independent.
	totalW := cfg.Workers
	if totalW <= 0 {
		totalW = runtime.GOMAXPROCS(0)
	}
	perIslandW := totalW / n
	if perIslandW < 1 {
		perIslandW = 1
	}

	isls := make([]*island, n)
	for i := range isls {
		icfg := cfg
		icfg.Workers = perIslandW
		is := newIsland(i, icfg, v, procs, seeds, fitness)
		if cfg.OnGeneration != nil {
			is.observe = func(gs GenStats) { is.stats = append(is.stats, gs) }
		} else {
			is.observe = nil
		}
		isls[i] = is
	}

	// barrier runs one phase on every island concurrently and collects the
	// first failure in island order (deterministic, unlike a racing CAS).
	barrier := func(phase func(*island) error) error {
		var wg sync.WaitGroup
		for _, is := range isls {
			wg.Add(1)
			go func(is *island) {
				defer wg.Done()
				is.err = phase(is)
			}(is)
		}
		wg.Wait()
		for _, is := range isls {
			if is.err != nil {
				return is.err
			}
		}
		return nil
	}

	if err := barrier(func(is *island) error { return is.init() }); err != nil {
		return nil, err
	}

	// deliver replays the islands' buffered stats for generations [from, to)
	// in (generation, island) order, rewriting BestEver to the aggregate
	// running minimum across all islands — so an observer watching any
	// single stream of events sees best_makespan non-increasing, and the
	// last delivered BestEver equals the assembled Result.Best.Fitness.
	aggBest := math.Inf(1)
	deliver := func(from, to int) {
		if cfg.OnGeneration == nil {
			return
		}
		for u := from; u < to; u++ {
			for _, is := range isls {
				gs := is.stats[u]
				if gs.BestEver < aggBest {
					aggBest = gs.BestEver
				}
				gs.BestEver = aggBest
				cfg.OnGeneration(gs)
			}
		}
	}

	for g := 0; g < cfg.Generations; {
		end := g + interval
		if end > cfg.Generations {
			end = cfg.Generations
		}
		if err := barrier(func(is *island) error { return is.runSpan(g, end) }); err != nil {
			return nil, err
		}
		deliver(g, end)
		g = end
		if g < cfg.Generations {
			if err := ctx.Err(); err != nil {
				// Anytime contract at island granularity: every island has
				// completed exactly g generations and every completed
				// generation's stats were delivered, so the partial Result is
				// consistent with the observer stream.
				return assembleIslands(isls, g), fmt.Errorf("ea: run cancelled before generation %d: %w", g, err)
			}
			migrate(isls, count, full)
		}
	}
	return assembleIslands(isls, cfg.Generations), nil
}

// migrate exchanges the islands' top-count parents along the topology. Two
// phases: first every island clones its migrants into its outbox (so merges
// cannot observe a peer's post-merge parents), then every island merges its
// inbox. Migration consumes no RNG, so the per-island streams are
// independent of topology and migration parameters.
func migrate(isls []*island, count int, full bool) {
	for _, is := range isls {
		is.outbox = is.outbox[:0]
		// parents are rank-ordered by selectBest, so the top-count is a
		// prefix; Clone drops lineage, making migrants free-standing.
		for i := 0; i < count && i < len(is.parents); i++ {
			is.outbox = append(is.outbox, is.parents[i].Clone())
		}
	}
	n := len(isls)
	for i, is := range isls {
		if full {
			var inbox []Individual
			for j := 0; j < n; j++ {
				if j != i {
					inbox = append(inbox, isls[j].outbox...)
				}
			}
			is.mergeMigrants(inbox)
		} else {
			is.mergeMigrants(isls[(i+n-1)%n].outbox)
		}
	}
}

// mergeMigrants forms the island's next parent generation from its current
// parents plus the incoming migrants: rank-ordered by fitness, ties broken
// by the canonical placement bytes (and then by the stable sort, so an
// existing parent wins over a byte-identical migrant). Surviving parents
// pass through identity-stable — the delta evaluator's parent-keyed
// baselines stay warm — while surviving migrants are cloned, because under
// the full topology the same outbox clone lands in several inboxes.
func (is *island) mergeMigrants(inbox []Individual) {
	if len(inbox) == 0 {
		return
	}
	np := len(is.parents)
	cand := make([]Individual, 0, np+len(inbox))
	cand = append(cand, is.parents...)
	cand = append(cand, inbox...)
	idx := make([]int, len(cand))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return bestLess(cand[idx[a]], cand[idx[b]]) })
	mu := is.cfg.Mu
	if mu > len(cand) {
		mu = len(cand)
	}
	next := make([]Individual, mu)
	for i := range next {
		j := idx[i]
		if j < np {
			next[i] = cand[j]
		} else {
			next[i] = cand[j].Clone()
		}
	}
	is.parents = next
}

// assembleIslands folds N island results into one Result: counters are
// summed, History[g] is the best incumbent across islands after generation
// g, and Best is the global winner — fitness first, ties broken by the
// canonical placement bytes, then by island index (the iteration order) —
// so the assembled result is independent of which island finished first.
func assembleIslands(isls []*island, gens int) *Result {
	res := &Result{Generations: gens}
	res.History = make([]float64, gens+1)
	for g := range res.History {
		best := isls[0].res.History[g]
		for _, is := range isls[1:] {
			if h := is.res.History[g]; h < best {
				best = h
			}
		}
		res.History[g] = best
	}
	bestIdx := 0
	for i, is := range isls {
		res.Evaluations += is.res.Evaluations
		res.Rejections += is.res.Rejections
		res.PrefilterRejections += is.res.PrefilterRejections
		res.CacheHits += is.res.CacheHits
		if i > 0 && bestLess(is.res.Best, isls[bestIdx].res.Best) {
			bestIdx = i
		}
	}
	res.Best = isls[bestIdx].res.Best // already a private clone
	return res
}

// bestLess orders individuals by fitness, ties broken by the canonical
// placement bytes — the total order behind every cross-island decision
// (migration merges, final winner selection).
func bestLess(a, b Individual) bool {
	//schedlint:allow floateq -- deliberate exact tie-break: equal fitness must fall through to the byte order, and both values come from the same deterministic evaluator
	if a.Fitness != b.Fitness {
		return a.Fitness < b.Fitness
	}
	return allocLess(a.Alloc, b.Alloc)
}

// allocLess is the lexicographic order on allocation vectors.
func allocLess(a, b schedule.Allocation) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
