package ea

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"emts/internal/schedule"
)

// evalEngine drives all fitness evaluation of one Run: it owns the per-worker
// Evaluator instances (so arena-backed evaluators like listsched.Mapper are
// reused instead of reallocated on every call) and the fitness memoization
// cache.
//
// The cache is exact, not heuristic: plus-selection re-carries parents into
// the next generation's pool and the Eq. (1) mutation operator frequently
// regenerates an allocation that was already evaluated, so identical vectors
// recur often. Because Evaluators are pure functions of the allocation, a
// memoized fitness can stand in for a fresh call. Rejection is emulated
// exactly as well: an Evaluator honoring rejectAbove fails if and only if the
// true fitness exceeds the bound (see Mapper.MakespanBounded), so a cache hit
// with fitness f is treated as rejected precisely when f > rejectAbove.
// Results are therefore bit-identical with the cache on or off.
type evalEngine struct {
	fallback     Evaluator
	factory      func() Evaluator
	deltaFactory func() (Evaluator, DeltaEvaluator)
	workers      int
	perW         []workerEval
	cache        map[uint64][]memoEntry // nil when memoization is disabled
}

// workerEval is one worker's evaluator pair. delta is nil unless the run
// wired a DeltaEvaluatorFactory (and DisableDelta is off); when present it
// handles individuals that carry a lineage, the plain evaluator handles the
// rest.
type workerEval struct {
	eval  Evaluator
	delta DeltaEvaluator
}

// memoEntry resolves hash collisions by keeping the full vector. The alloc
// slice is a private copy made at insert time: offspring vectors are backed
// by a per-generation arena that is overwritten by the next generation, so
// retaining them by reference would corrupt the cache.
type memoEntry struct {
	alloc   schedule.Allocation
	fitness float64
}

func newEvalEngine(cfg Config, fitness Evaluator) *evalEngine {
	eng := &evalEngine{fallback: fitness, factory: cfg.EvaluatorFactory, workers: cfg.Workers}
	if cfg.DeltaEvaluatorFactory != nil {
		if cfg.DisableDelta {
			// Keep the factory's plain evaluator (it shares arenas with the
			// delta one) but never dispatch on lineage.
			eng.factory = func() Evaluator {
				ev, _ := cfg.DeltaEvaluatorFactory()
				return ev
			}
		} else {
			eng.deltaFactory = cfg.DeltaEvaluatorFactory
		}
	}
	if eng.workers <= 0 {
		eng.workers = runtime.GOMAXPROCS(0)
	}
	if !cfg.DisableCache {
		eng.cache = make(map[uint64][]memoEntry)
	}
	return eng
}

// evaluator returns the evaluator pair owned by worker w, constructing it on
// first use. Must be called before the worker goroutines start.
func (eng *evalEngine) evaluator(w int) workerEval {
	if eng.factory == nil && eng.deltaFactory == nil {
		return workerEval{eval: eng.fallback}
	}
	for len(eng.perW) <= w {
		if eng.deltaFactory != nil {
			ev, dev := eng.deltaFactory()
			eng.perW = append(eng.perW, workerEval{eval: ev, delta: dev})
		} else {
			eng.perW = append(eng.perW, workerEval{eval: eng.factory()})
		}
	}
	return eng.perW[w]
}

//schedlint:hotpath
func (eng *evalEngine) lookup(key uint64, a schedule.Allocation) (float64, bool) {
	for _, e := range eng.cache[key] {
		if allocsEqual(e.alloc, a) {
			return e.fitness, true
		}
	}
	return 0, false
}

//schedlint:hotpath
func (eng *evalEngine) insert(key uint64, a schedule.Allocation, f float64) {
	// Clone: a may be arena-backed and reused next generation; the cache
	// needs its own copy (one allocation per *fresh* evaluation only).
	eng.cache[key] = append(eng.cache[key], memoEntry{alloc: a.Clone(), fitness: f})
}

// hashAlloc is FNV-1a over the alleles, widened to uint64 per position.
//
//schedlint:hotpath
func hashAlloc(a schedule.Allocation) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range a {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

//schedlint:hotpath
func allocsEqual(a, b schedule.Allocation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// evaluateAll computes fitness for every individual, fanning out across a
// bounded worker pool. Results land at fixed indices, so the outcome is
// independent of goroutine interleaving. Rejected individuals get +Inf.
//
// With memoization enabled, each individual is first resolved against the
// cache and against duplicates earlier in the same batch; only unresolved
// representatives reach the workers. Evaluations counts every individual
// regardless of how its fitness was obtained (the EA's search budget is
// unchanged by caching); CacheHits counts the subset answered without calling
// an Evaluator.
//
//schedlint:hotpath
func (eng *evalEngine) evaluateAll(inds []Individual, rejectAbove float64, res *Result) error {
	n := len(inds)

	const (
		needsEval = -1 // dispatch to a worker
		resolved  = -2 // answered from the memo cache
		// >= 0: duplicate of the representative at that index
	)
	state := make([]int, n)
	errs := make([]error, n)
	keys := make([]uint64, n)
	toEval := make([]int, 0, n)

	var rejected atomic.Int64
	if eng.cache != nil {
		reps := make(map[uint64][]int, n)
		for i := range inds {
			key := hashAlloc(inds[i].Alloc)
			keys[i] = key
			if f, ok := eng.lookup(key, inds[i].Alloc); ok {
				res.CacheHits++
				if rejectAbove > 0 && f > rejectAbove {
					inds[i].Fitness = math.Inf(1)
					rejected.Add(1)
				} else {
					inds[i].Fitness = f
				}
				state[i] = resolved
				continue
			}
			dup := -1
			for _, j := range reps[key] {
				if allocsEqual(inds[j].Alloc, inds[i].Alloc) {
					dup = j
					break
				}
			}
			if dup >= 0 {
				state[i] = dup
				continue
			}
			reps[key] = append(reps[key], i)
			state[i] = needsEval
			toEval = append(toEval, i)
		}
	} else {
		for i := range inds {
			state[i] = needsEval
			toEval = append(toEval, i)
		}
	}

	// Parallel phase: only unresolved representatives, one Evaluator per
	// worker, disjoint writes per index. Shared bookkeeping is lock-free:
	// rejected is an atomic counter and the first error is captured
	// once-only by compare-and-swap.
	var firstErr atomic.Pointer[error]
	var prefiltered atomic.Int64
	if len(toEval) > 0 {
		workers := eng.workers
		if workers > len(toEval) {
			workers = len(toEval)
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			//schedlint:allow hotalloc -- one closure per worker per batch, amortized over the whole generation's evaluations
			go func(ev workerEval) {
				defer wg.Done()
				for i := range next {
					var f float64
					var err error
					if ev.delta != nil && inds[i].parent != nil {
						f, err = ev.delta(inds[i].Alloc, inds[i].parent, inds[i].mutated, rejectAbove)
					} else {
						f, err = ev.eval(inds[i].Alloc, rejectAbove)
					}
					switch {
					case err == nil:
						inds[i].Fitness = f
					case errors.Is(err, ErrRejected):
						inds[i].Fitness = math.Inf(1)
						errs[i] = err
						rejected.Add(1)
						if errors.Is(err, ErrRejectedPrefilter) {
							prefiltered.Add(1)
						}
					default:
						errs[i] = err
						e := err // confine the escape to the error path
						firstErr.CompareAndSwap(nil, &e)
					}
				}
			}(eng.evaluator(w))
		}
		for _, i := range toEval {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	// Resolution phase: duplicates inherit their representative's outcome,
	// and fresh successful evaluations enter the cache.
	for i := range inds {
		j := state[i]
		if j < 0 {
			continue
		}
		inds[i].Fitness = inds[j].Fitness
		errs[i] = errs[j]
		if errs[i] == nil || errors.Is(errs[i], ErrRejected) {
			res.CacheHits++
		}
		if errors.Is(errs[i], ErrRejected) {
			rejected.Add(1)
		}
	}
	if eng.cache != nil {
		for _, i := range toEval {
			if errs[i] == nil {
				eng.insert(keys[i], inds[i].Alloc, inds[i].Fitness)
			}
		}
	}

	res.Evaluations += n
	res.Rejections += int(rejected.Load())
	res.PrefilterRejections += int(prefiltered.Load())
	if p := firstErr.Load(); p != nil {
		return *p
	}
	return nil
}
