package ea

import (
	"errors"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"emts/internal/schedule"
)

// evalEngine drives all fitness evaluation of one Run: it owns the per-worker
// Evaluator instances (so arena-backed evaluators like listsched.Mapper are
// reused instead of reallocated on every call) and the fitness memoization
// cache.
//
// The cache is exact, not heuristic: plus-selection re-carries parents into
// the next generation's pool and the Eq. (1) mutation operator frequently
// regenerates an allocation that was already evaluated, so identical vectors
// recur often. Because Evaluators are pure functions of the allocation, a
// memoized fitness can stand in for a fresh call. Rejection is emulated
// exactly as well: an Evaluator honoring rejectAbove fails if and only if the
// true fitness exceeds the bound (see Mapper.MakespanBounded), so a cache hit
// with fitness f is treated as rejected precisely when f > rejectAbove.
// Results are therefore bit-identical with the cache on or off.
//
// The cache is striped into power-of-two locked shards (DESIGN.md §12):
// lookups run in the serial pre-pass, but fresh results are inserted by the
// worker goroutines as they finish, so with Workers > 1 a single map mutex
// would serialize the insert tail of every generation. Striping by the FNV
// key's low bits spreads those inserts across independent locks. Shard count
// never changes results: entries are found by full-vector comparison and the
// same (alloc, fitness) pairs land in the cache in any interleaving.
type evalEngine struct {
	fallback     Evaluator
	factory      func() Evaluator
	deltaFactory func() (Evaluator, DeltaEvaluator)
	workers      int
	perW         []workerEval
	shards       []cacheShard // empty when memoization is disabled
	shardMask    uint64

	// Batch dispatch (DESIGN.md §13): when batchFactory is non-nil, the
	// unresolved representatives of each generation are split into contiguous
	// chunks and each worker evaluates its chunk in one BatchEvaluator call
	// over structure-of-arrays planes instead of one channel round-trip per
	// individual. batchDelta gates whether lineage is forwarded into the
	// batch items (DisableDelta).
	batchFactory func() BatchEvaluator
	perWBatch    []BatchEvaluator
	batchDelta   bool
	// stealing selects the work-stealing batch dispatch (steal.go) over the
	// fixed contiguous chunks; ranges is its per-worker deque scratch,
	// reused across generations.
	stealing bool
	ranges   []stealRange

	// Per-batch scratch, sized on first use and reused across generations so
	// evaluateAll allocates nothing after warm-up (pooled evaluation state).
	state  []int
	errs   []error
	keys   []uint64
	toEval []int
	reps   map[uint64][]int
	// Batch-dispatch scratch: items/fit/batchErrs are indexed like toEval
	// and sliced disjointly per worker chunk, so chunk writes never overlap.
	items     []BatchItem
	fit       []float64
	batchErrs []error
}

// cacheShard is one stripe of the memo cache: a bucket map plus the arena
// backing its entries' allocation copies. The padding keeps shards on
// separate cache lines so concurrent inserts don't false-share.
type cacheShard struct {
	mu    sync.Mutex
	m     map[uint64][]memoEntry
	arena []int
	_     [24]byte
}

// arenaChunkAllocs sizes the shard arena growth: each new chunk holds this
// many allocation vectors. Entry copies are carved from the chunk, so a run
// with F fresh evaluations costs O(F/arenaChunkAllocs) allocations per shard
// instead of F individual clones.
const arenaChunkAllocs = 64

// maxCacheShards caps striping: beyond the core count extra shards only cost
// memory.
const maxCacheShards = 64

// workerEval is one worker's evaluator pair. delta is nil unless the run
// wired a DeltaEvaluatorFactory (and DisableDelta is off); when present it
// handles individuals that carry a lineage, the plain evaluator handles the
// rest.
type workerEval struct {
	eval  Evaluator
	delta DeltaEvaluator
}

// memoEntry resolves hash collisions by keeping the full vector. The alloc
// slice is a private copy carved from the shard arena at insert time:
// offspring vectors are backed by a per-generation arena that is overwritten
// by the next generation, so retaining them by reference would corrupt the
// cache.
type memoEntry struct {
	alloc   schedule.Allocation
	fitness float64
}

func newEvalEngine(cfg Config, fitness Evaluator) *evalEngine {
	eng := &evalEngine{fallback: fitness, factory: cfg.EvaluatorFactory, workers: cfg.Workers}
	if cfg.DeltaEvaluatorFactory != nil {
		if cfg.DisableDelta {
			// Keep the factory's plain evaluator (it shares arenas with the
			// delta one) but never dispatch on lineage.
			eng.factory = func() Evaluator {
				ev, _ := cfg.DeltaEvaluatorFactory()
				return ev
			}
		} else {
			eng.deltaFactory = cfg.DeltaEvaluatorFactory
		}
	}
	if cfg.BatchEvaluatorFactory != nil && !cfg.DisableBatch {
		eng.batchFactory = cfg.BatchEvaluatorFactory
		eng.batchDelta = !cfg.DisableDelta
		eng.stealing = !cfg.DisableWorkStealing
	}
	if eng.workers <= 0 {
		eng.workers = runtime.GOMAXPROCS(0)
	}
	if !cfg.DisableCache {
		n := cfg.CacheShards
		if n <= 0 {
			n = eng.workers
		}
		if n > maxCacheShards {
			n = maxCacheShards
		}
		// Round up to a power of two so shard selection is a mask of the FNV
		// key's low bits.
		if n&(n-1) != 0 {
			n = 1 << bits.Len(uint(n))
		}
		eng.shards = make([]cacheShard, n)
		eng.shardMask = uint64(n - 1)
		for i := range eng.shards {
			eng.shards[i].m = make(map[uint64][]memoEntry)
		}
	}
	if runtime.GOMAXPROCS(0) == 1 {
		// On a single-core host worker fan-out cannot overlap anything: the
		// goroutines and channel round-trips are pure overhead (the
		// BENCH_PR6 single-core caveat). Results are worker-count
		// independent, so clamping to the inline dispatch path changes
		// timing only. Applied after shard sizing so the cache keeps the
		// stripe count the configured worker count implies.
		eng.workers = 1
	}
	return eng
}

// cached reports whether memoization is on.
func (eng *evalEngine) cached() bool { return len(eng.shards) > 0 }

// shard selects the stripe for a key. FNV-1a mixes well in the low bits, so
// masking suffices.
//
//schedlint:hotpath
func (eng *evalEngine) shard(key uint64) *cacheShard {
	return &eng.shards[key&eng.shardMask]
}

// evaluator returns the evaluator pair owned by worker w, constructing it on
// first use. Must be called before the worker goroutines start.
func (eng *evalEngine) evaluator(w int) workerEval {
	if eng.factory == nil && eng.deltaFactory == nil {
		return workerEval{eval: eng.fallback}
	}
	for len(eng.perW) <= w {
		if eng.deltaFactory != nil {
			ev, dev := eng.deltaFactory()
			eng.perW = append(eng.perW, workerEval{eval: ev, delta: dev})
		} else {
			eng.perW = append(eng.perW, workerEval{eval: eng.factory()})
		}
	}
	return eng.perW[w]
}

//schedlint:hotpath
func (eng *evalEngine) lookup(key uint64, a schedule.Allocation) (float64, bool) {
	s := eng.shard(key)
	s.mu.Lock()
	for _, e := range s.m[key] {
		if allocsEqual(e.alloc, a) {
			s.mu.Unlock()
			return e.fitness, true
		}
	}
	s.mu.Unlock()
	return 0, false
}

// insert records a fresh evaluation. Safe for concurrent use: workers insert
// as they finish, each under its key's shard lock. The allocation is copied
// into the shard arena (offspring vectors are generation-scoped; see
// memoEntry).
//
//schedlint:hotpath
func (eng *evalEngine) insert(key uint64, a schedule.Allocation, f float64) {
	s := eng.shard(key)
	s.mu.Lock()
	n := len(a)
	if len(s.arena)+n > cap(s.arena) {
		chunk := arenaChunkAllocs * n
		if chunk < n {
			chunk = n
		}
		//schedlint:allow hotescape -- amortized arena chunk: one allocation per arenaChunkAllocs cache inserts
		s.arena = make([]int, 0, chunk)
	}
	off := len(s.arena)
	s.arena = s.arena[:off+n]
	cp := s.arena[off : off+n : off+n]
	copy(cp, a)
	s.m[key] = append(s.m[key], memoEntry{alloc: cp, fitness: f})
	s.mu.Unlock()
}

// hashAlloc is FNV-1a over the alleles, widened to uint64 per position.
//
//schedlint:hotpath
func hashAlloc(a schedule.Allocation) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range a {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

//schedlint:hotpath
func allocsEqual(a, b schedule.Allocation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// batchEvaluator returns the BatchEvaluator owned by worker w, constructing
// it on first use. Like evaluator, it must be called before the worker
// goroutines start.
func (eng *evalEngine) batchEvaluator(w int) BatchEvaluator {
	for len(eng.perWBatch) <= w {
		eng.perWBatch = append(eng.perWBatch, eng.batchFactory())
	}
	return eng.perWBatch[w]
}

// fileOutcome records one individual's evaluation outcome at its fixed
// index: fitness plus memo insert on success, +Inf on rejection, error
// capture otherwise. Shared by the scalar per-individual path (evalOne) and
// the batch chunk path (runBatchChunk), so the bookkeeping — and therefore
// every counter and the duplicate-resolution phase — is identical in all
// dispatch modes. The two returned flags let batch callers accumulate
// rejection counts chunk-locally instead of per individual.
//
//schedlint:hotpath
func (eng *evalEngine) fileOutcome(i int, inds []Individual, f float64, err error,
	firstErr *atomic.Pointer[error]) (wasRejected, wasPrefiltered bool) {
	switch {
	case err == nil:
		inds[i].Fitness = f
		if eng.cached() {
			eng.insert(eng.keys[i], inds[i].Alloc, f)
		}
	case errors.Is(err, ErrRejected):
		inds[i].Fitness = math.Inf(1)
		eng.errs[i] = err
		wasRejected = true
		wasPrefiltered = errors.Is(err, ErrRejectedPrefilter)
	default:
		eng.errs[i] = err
		//schedlint:allow hotescape -- the copy deliberately confines the heap move to this cold error branch
		e := err
		firstErr.CompareAndSwap(nil, &e)
	}
	return wasRejected, wasPrefiltered
}

// evalOne runs one individual through the worker's evaluator pair and files
// the outcome at its fixed index. Shared with the sequential fast path, so
// the bookkeeping is identical in both modes.
//
//schedlint:hotpath
func (eng *evalEngine) evalOne(ev workerEval, i int, inds []Individual, rejectAbove float64,
	rejected, prefiltered *atomic.Int64, firstErr *atomic.Pointer[error]) {
	var f float64
	var err error
	if ev.delta != nil && inds[i].parent != nil {
		f, err = ev.delta(inds[i].Alloc, inds[i].parent, inds[i].mutated, rejectAbove)
	} else {
		f, err = ev.eval(inds[i].Alloc, rejectAbove)
	}
	rej, pre := eng.fileOutcome(i, inds, f, err, firstErr)
	if rej {
		rejected.Add(1)
	}
	if pre {
		prefiltered.Add(1)
	}
}

// runBatchChunk evaluates one contiguous chunk of unresolved individuals
// through a worker-owned BatchEvaluator and files every outcome at its fixed
// index. idxs maps chunk positions back to individual indices; items, fit,
// and errs are the chunk's disjoint sub-slices of the engine's batch
// scratch. Rejection counts accumulate chunk-locally and land in the shared
// atomics with two adds per chunk instead of two per individual.
//
//schedlint:hotpath
func (eng *evalEngine) runBatchChunk(ev BatchEvaluator, idxs []int, items []BatchItem,
	fit []float64, errs []error, inds []Individual, rejectAbove float64,
	rejected, prefiltered *atomic.Int64, firstErr *atomic.Pointer[error]) {
	if err := ev(items, rejectAbove, fit, errs); err != nil {
		// Batch-level failure (evaluator construction): every individual of
		// the chunk inherits it, exactly as if a scalar evaluator had failed.
		for _, i := range idxs {
			eng.errs[i] = err
			//schedlint:allow hotescape -- the copy deliberately confines the heap move to this cold error branch
			e := err
			firstErr.CompareAndSwap(nil, &e)
		}
		return
	}
	rej, pre := 0, 0
	for k, i := range idxs {
		r, p := eng.fileOutcome(i, inds, fit[k], errs[k], firstErr)
		if r {
			rej++
		}
		if p {
			pre++
		}
	}
	rejected.Add(int64(rej))
	prefiltered.Add(int64(pre))
}

// evalBatch dispatches the unresolved representatives in toEval through the
// batch path: the batch scratch is filled with one BatchItem per individual
// (lineage included unless delta is disabled) and the rows are evaluated by
// worker-owned BatchEvaluators — via the work-stealing range deques of
// steal.go by default, or in fixed contiguous chunks of w*n/workers rows
// under DisableWorkStealing. Either way every row's outcome lands at its
// fixed index in the scratch planes, so the results and counters are
// deterministic; only the fixed-chunk path additionally pins *which* worker
// evaluates which row.
//
//schedlint:hotpath
func (eng *evalEngine) evalBatch(toEval []int, inds []Individual, rejectAbove float64,
	rejected, prefiltered *atomic.Int64, firstErr *atomic.Pointer[error]) {
	n := len(toEval)
	eng.items = growScratch(eng.items, n)
	eng.fit = growScratch(eng.fit, n)
	eng.batchErrs = growScratch(eng.batchErrs, n)
	for k, i := range toEval {
		it := BatchItem{Alloc: inds[i].Alloc}
		if eng.batchDelta && inds[i].parent != nil {
			it.Parent = inds[i].parent
			it.Mutated = inds[i].mutated
		}
		eng.items[k] = it
	}
	workers := eng.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		eng.runBatchChunk(eng.batchEvaluator(0), toEval, eng.items, eng.fit, eng.batchErrs,
			inds, rejectAbove, rejected, prefiltered, firstErr)
		return
	}
	if eng.stealing {
		eng.evalBatchStealing(workers, toEval, inds, rejectAbove, rejected, prefiltered, firstErr)
		return
	}
	// Construct all evaluators serially before the goroutines start
	// (batchEvaluator mutates perWBatch).
	for w := 0; w < workers; w++ {
		eng.batchEvaluator(w)
	}
	//schedlint:allow hotescape -- wg is captured by the per-worker closures; one heap move per generation, amortized over the batch
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		//schedlint:allow hotalloc,hotescape -- one closure per worker per generation, amortized over the chunk's evaluations
		go func(ev BatchEvaluator, lo, hi int) {
			defer wg.Done()
			eng.runBatchChunk(ev, toEval[lo:hi], eng.items[lo:hi], eng.fit[lo:hi], eng.batchErrs[lo:hi],
				inds, rejectAbove, rejected, prefiltered, firstErr)
		}(eng.perWBatch[w], lo, hi)
	}
	wg.Wait()
}

// batchScratch resizes the per-batch arrays for n individuals, reusing the
// previous generation's backing memory.
//
//schedlint:hotpath
func (eng *evalEngine) batchScratch(n int) {
	eng.state = growScratch(eng.state, n)
	eng.errs = growScratch(eng.errs, n)
	eng.keys = growScratch(eng.keys, n)
	if cap(eng.toEval) < n {
		//schedlint:allow hotescape -- amortized arena growth: reallocates only when the population outgrows the retained capacity
		eng.toEval = make([]int, 0, n)
	}
	eng.toEval = eng.toEval[:0]
	for i := 0; i < n; i++ {
		eng.errs[i] = nil
	}
	if eng.reps == nil {
		//schedlint:allow hotescape -- lazy one-time init: the map is built on the first batch and cleared, not reallocated, afterwards
		eng.reps = make(map[uint64][]int, n)
	} else {
		clear(eng.reps)
	}
}

// growScratch returns s with length n, reallocating only when the capacity
// is insufficient. Contents are unspecified; callers overwrite what they
// read.
func growScratch[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// evaluateAll computes fitness for every individual, fanning out across a
// bounded worker pool. Results land at fixed indices, so the outcome is
// independent of goroutine interleaving. Rejected individuals get +Inf.
//
// With memoization enabled, each individual is first resolved against the
// cache and against duplicates earlier in the same batch; only unresolved
// representatives reach the workers. Evaluations counts every individual
// regardless of how its fitness was obtained (the EA's search budget is
// unchanged by caching); CacheHits counts the subset answered without calling
// an Evaluator.
//
//schedlint:hotpath
func (eng *evalEngine) evaluateAll(inds []Individual, rejectAbove float64, res *Result) error {
	n := len(inds)

	const (
		needsEval = -1 // dispatch to a worker
		resolved  = -2 // answered from the memo cache
		// >= 0: duplicate of the representative at that index
	)
	eng.batchScratch(n)
	state := eng.state
	toEval := eng.toEval

	//schedlint:allow hotescape -- rejected is captured by the per-worker closures; one heap move per generation
	var rejected atomic.Int64
	if eng.cached() {
		for i := range inds {
			key := hashAlloc(inds[i].Alloc)
			eng.keys[i] = key
			if f, ok := eng.lookup(key, inds[i].Alloc); ok {
				res.CacheHits++
				if rejectAbove > 0 && f > rejectAbove {
					inds[i].Fitness = math.Inf(1)
					rejected.Add(1)
				} else {
					inds[i].Fitness = f
				}
				state[i] = resolved
				continue
			}
			dup := -1
			for _, j := range eng.reps[key] {
				if allocsEqual(inds[j].Alloc, inds[i].Alloc) {
					dup = j
					break
				}
			}
			if dup >= 0 {
				state[i] = dup
				continue
			}
			eng.reps[key] = append(eng.reps[key], i)
			state[i] = needsEval
			toEval = append(toEval, i)
		}
	} else {
		for i := range inds {
			state[i] = needsEval
			toEval = append(toEval, i)
		}
	}
	eng.toEval = toEval

	// Parallel phase: only unresolved representatives, one Evaluator per
	// worker, disjoint writes per index. Shared bookkeeping is lock-free
	// apart from the sharded cache inserts: rejected is an atomic counter and
	// the first error is captured once-only by compare-and-swap. With a
	// single worker the batch is evaluated inline — no goroutine, no channel
	// — which is the saturated-server regime once the CPU governor degrades
	// concurrent requests to one worker each.
	//schedlint:allow hotescape -- firstErr is captured by the per-worker closures; one heap move per generation
	var firstErr atomic.Pointer[error]
	//schedlint:allow hotescape -- prefiltered is captured by the per-worker closures; one heap move per generation
	var prefiltered atomic.Int64
	if len(toEval) > 0 && eng.batchFactory != nil {
		eng.evalBatch(toEval, inds, rejectAbove, &rejected, &prefiltered, &firstErr)
	} else if len(toEval) > 0 {
		workers := eng.workers
		if workers > len(toEval) {
			workers = len(toEval)
		}
		if workers == 1 {
			//schedlint:allow hotescape -- evaluator is per-worker setup, called once per batch; its lazy construction never inlines
			ev := eng.evaluator(0)
			for _, i := range toEval {
				eng.evalOne(ev, i, inds, rejectAbove, &rejected, &prefiltered, &firstErr)
			}
		} else {
			//schedlint:allow hotescape -- wg is captured by the per-worker closures; one heap move per generation
			var wg sync.WaitGroup
			next := make(chan int)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				//schedlint:allow hotalloc,hotescape -- one closure per worker per batch, amortized over the whole generation's evaluations
				go func(ev workerEval) {
					defer wg.Done()
					for i := range next {
						eng.evalOne(ev, i, inds, rejectAbove, &rejected, &prefiltered, &firstErr)
					}
				}(eng.evaluator(w))
			}
			for _, i := range toEval {
				next <- i
			}
			close(next)
			wg.Wait()
		}
	}

	// Resolution phase: duplicates inherit their representative's outcome.
	errs := eng.errs
	for i := range inds {
		j := state[i]
		if j < 0 {
			continue
		}
		inds[i].Fitness = inds[j].Fitness
		errs[i] = errs[j]
		if errs[i] == nil || errors.Is(errs[i], ErrRejected) {
			res.CacheHits++
		}
		if errors.Is(errs[i], ErrRejected) {
			rejected.Add(1)
		}
	}

	res.Evaluations += n
	res.Rejections += int(rejected.Load())
	res.PrefilterRejections += int(prefiltered.Load())
	if p := firstErr.Load(); p != nil {
		return *p
	}
	return nil
}
