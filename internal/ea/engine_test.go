package ea

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"

	"emts/internal/schedule"
)

// countingFitness wraps sphereFitness and counts how many times the evaluator
// is actually invoked (as opposed to answered from the memo cache).
func countingFitness(target schedule.Allocation, calls *atomic.Int64) Evaluator {
	inner := sphereFitness(target)
	return func(a schedule.Allocation, rejectAbove float64) (float64, error) {
		calls.Add(1)
		return inner(a, rejectAbove)
	}
}

// TestCacheReducesEvaluatorCalls: with memoization on, the evaluator runs
// fewer times than Result.Evaluations reports, and the difference is exactly
// CacheHits. With the cache off, every evaluation calls the evaluator.
func TestCacheReducesEvaluatorCalls(t *testing.T) {
	const v, procs = 8, 4
	target := schedule.Ones(v)

	var cached atomic.Int64
	cfg := defaultConfig(3)
	res, err := Run(cfg, v, procs, nil, countingFitness(target, &cached))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Fatal("expected cache hits: plus-selection re-carries parents every generation")
	}
	if got := int(cached.Load()); got+res.CacheHits != res.Evaluations {
		t.Fatalf("calls(%d) + CacheHits(%d) != Evaluations(%d)", got, res.CacheHits, res.Evaluations)
	}

	var plain atomic.Int64
	cfg.DisableCache = true
	res2, err := Run(cfg, v, procs, nil, countingFitness(target, &plain))
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHits != 0 {
		t.Fatalf("CacheHits = %d with the cache disabled", res2.CacheHits)
	}
	if got := int(plain.Load()); got != res2.Evaluations {
		t.Fatalf("calls(%d) != Evaluations(%d) with the cache disabled", got, res2.Evaluations)
	}
	if res.Evaluations != res2.Evaluations {
		t.Fatalf("Evaluations changed with caching: %d vs %d", res.Evaluations, res2.Evaluations)
	}
}

// TestCacheBitIdentical: for any seed, caching on vs off yields identical
// best individuals, histories, and counters — with and without rejection.
func TestCacheBitIdentical(t *testing.T) {
	const v, procs = 10, 6
	target := make(schedule.Allocation, v)
	for i := range target {
		target[i] = 1 + i%procs
	}
	f := func(seed int64, useRejection bool) bool {
		cfg := defaultConfig(seed)
		cfg.Generations = 6
		cfg.UseRejection = useRejection
		r1, err1 := Run(cfg, v, procs, nil, sphereFitness(target))
		cfg.DisableCache = true
		r2, err2 := Run(cfg, v, procs, nil, sphereFitness(target))
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Best.Fitness == r2.Best.Fitness &&
			reflect.DeepEqual(r1.Best.Alloc, r2.Best.Alloc) &&
			reflect.DeepEqual(r1.History, r2.History) &&
			r1.Evaluations == r2.Evaluations &&
			r1.Rejections == r2.Rejections
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEvaluatorFactoryUsedPerWorker: when a factory is configured, Run builds
// one evaluator per worker and never calls the fallback.
func TestEvaluatorFactoryUsedPerWorker(t *testing.T) {
	const v, procs = 8, 4
	target := schedule.Ones(v)

	var built, fallbackCalls atomic.Int64
	cfg := defaultConfig(11)
	cfg.Workers = 3
	cfg.EvaluatorFactory = func() Evaluator {
		built.Add(1)
		return sphereFitness(target)
	}
	fallback := func(a schedule.Allocation, rejectAbove float64) (float64, error) {
		fallbackCalls.Add(1)
		return sphereFitness(target)(a, rejectAbove)
	}
	res, err := Run(cfg, v, procs, nil, fallback)
	if err != nil {
		t.Fatal(err)
	}
	if fallbackCalls.Load() != 0 {
		t.Fatalf("fallback evaluator called %d times despite factory", fallbackCalls.Load())
	}
	if n := built.Load(); n == 0 || n > int64(cfg.Workers) {
		t.Fatalf("factory built %d evaluators, want 1..%d", n, cfg.Workers)
	}
	if math.IsInf(res.Best.Fitness, 1) {
		t.Fatalf("no valid best found: %g", res.Best.Fitness)
	}
}

// TestEngineDedupWithinBatch: a batch with repeated allocations evaluates each
// distinct vector once and copies the outcome to the duplicates.
func TestEngineDedupWithinBatch(t *testing.T) {
	target := schedule.Ones(4)
	var calls atomic.Int64
	eng := newEvalEngine(Config{Workers: 2}, countingFitness(target, &calls))

	a := schedule.Allocation{1, 2, 3, 4}
	b := schedule.Allocation{4, 3, 2, 1}
	inds := []Individual{
		{Alloc: a.Clone()}, {Alloc: b.Clone()},
		{Alloc: a.Clone()}, {Alloc: a.Clone()}, {Alloc: b.Clone()},
	}
	var res Result
	if err := eng.evaluateAll(inds, 0, &res); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("evaluator called %d times, want 2", calls.Load())
	}
	if res.Evaluations != 5 || res.CacheHits != 3 {
		t.Fatalf("Evaluations = %d, CacheHits = %d; want 5, 3", res.Evaluations, res.CacheHits)
	}
	if inds[0].Fitness != inds[2].Fitness || inds[0].Fitness != inds[3].Fitness {
		t.Fatal("duplicates did not inherit the representative's fitness")
	}
	// A second batch of the same vectors is fully memoized.
	inds2 := []Individual{{Alloc: a.Clone()}, {Alloc: b.Clone()}}
	if err := eng.evaluateAll(inds2, 0, &res); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("memo miss on second batch: %d calls", calls.Load())
	}
}

// TestEngineCacheEmulatesRejection: a memoized fitness above the bound is
// reported as rejected (+Inf, counted), matching a live bounded evaluation.
func TestEngineCacheEmulatesRejection(t *testing.T) {
	target := schedule.Ones(4)
	eng := newEvalEngine(Config{Workers: 1}, sphereFitness(target))

	far := schedule.Allocation{8, 8, 8, 8} // fitness 4*49 = 196
	inds := []Individual{{Alloc: far.Clone()}}
	var res Result
	if err := eng.evaluateAll(inds, 0, &res); err != nil { // unbounded: cached
		t.Fatal(err)
	}
	if inds[0].Fitness != 196 {
		t.Fatalf("fitness = %g, want 196", inds[0].Fitness)
	}
	inds2 := []Individual{{Alloc: far.Clone()}}
	if err := eng.evaluateAll(inds2, 100, &res); err != nil { // bound < 196
		t.Fatal(err)
	}
	if !math.IsInf(inds2[0].Fitness, 1) {
		t.Fatalf("cached hit above bound not rejected: fitness = %g", inds2[0].Fitness)
	}
	if res.Rejections != 1 || res.CacheHits != 1 {
		t.Fatalf("Rejections = %d, CacheHits = %d; want 1, 1", res.Rejections, res.CacheHits)
	}
}
