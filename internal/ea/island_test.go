// Island-model determinism tests (DESIGN.md §17). The test names all contain
// "Island" on purpose: the CI islands-race step runs
// `go test -race ./internal/ea/... -run Island` at GOMAXPROCS 1 and 8, so the
// epoch barriers, the work-stealing deques, and the buffered observer replay
// are exercised under the race detector in both dispatch regimes.
package ea

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"emts/internal/schedule"
)

// islandTarget is the sphere optimum used by the island tests: a non-uniform
// vector so distinct islands genuinely compete on the way down.
func islandTarget(v, procs int) schedule.Allocation {
	target := make(schedule.Allocation, v)
	for i := range target {
		target[i] = 1 + (i*7)%procs
	}
	return target
}

// islandFingerprint is the byte-comparable projection of a Result that the
// determinism lattice pins: the incumbent (fitness and exact placement
// bytes), the full history, and every evaluation counter.
type islandFingerprint struct {
	Fitness             float64
	Alloc               schedule.Allocation
	History             []float64
	Evaluations         int
	Rejections          int
	PrefilterRejections int
	CacheHits           int
	Generations         int
}

func fingerprintResult(r *Result) islandFingerprint {
	return islandFingerprint{
		Fitness:             r.Best.Fitness,
		Alloc:               r.Best.Alloc,
		History:             r.History,
		Evaluations:         r.Evaluations,
		Rejections:          r.Rejections,
		PrefilterRejections: r.PrefilterRejections,
		CacheHits:           r.CacheHits,
		Generations:         r.Generations,
	}
}

// TestIslandSeedDerivationIdentity pins the seed scheme the determinism
// argument rests on: island 0 keeps the raw request seed (single-island
// bit-identity with the pre-island engine), every other island gets a
// distinct splitmix64-derived seed, and the derivation is a pure function.
func TestIslandSeedDerivationIdentity(t *testing.T) {
	const seed = int64(0x5eed)
	if got := islandSeed(seed, 0); got != seed {
		t.Fatalf("islandSeed(seed, 0) = %#x, want the raw seed %#x", got, seed)
	}
	seen := map[int64]int{}
	for idx := 0; idx < 16; idx++ {
		s := islandSeed(seed, idx)
		if prev, dup := seen[s]; dup {
			t.Fatalf("islands %d and %d derived the same seed %#x", prev, idx, s)
		}
		seen[s] = idx
		if again := islandSeed(seed, idx); again != s {
			t.Fatalf("islandSeed(seed, %d) not a pure function: %#x then %#x", idx, s, again)
		}
	}
	// The derived streams must actually differ, not just the seeds.
	a, b := newIslandRNG(seed, 0), newIslandRNG(seed, 1)
	same := true
	for i := 0; i < 8; i++ {
		if a.Int63() != b.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("islands 0 and 1 drew identical streams for 8 draws")
	}
}

// TestIslandSingleIslandIdentity pins the compatibility half of the island
// contract: Islands 0 and 1 are the classic panmictic population, byte-
// identical to a run predating the island layer for every combination of
// DisableWorkStealing, worker count, and (ignored) migration parameters.
func TestIslandSingleIslandIdentity(t *testing.T) {
	const v, procs = 12, 6
	fitness := sphereFitness(islandTarget(v, procs))
	want, err := Run(defaultConfig(7), v, procs, nil, fitness)
	if err != nil {
		t.Fatal(err)
	}
	base := fingerprintResult(want)
	for _, islands := range []int{0, 1} {
		for _, steal := range []bool{false, true} {
			for _, workers := range []int{0, 1, 3} {
				cfg := defaultConfig(7)
				cfg.Islands = islands
				cfg.DisableWorkStealing = steal
				cfg.Workers = workers
				// Migration parameters are inert for a single population —
				// the serving tier's cache key relies on that.
				cfg.MigrationInterval = 3
				cfg.MigrationCount = 2
				cfg.Topology = TopologyFull
				got, err := Run(cfg, v, procs, nil, fitness)
				if err != nil {
					t.Fatal(err)
				}
				if fp := fingerprintResult(got); !reflect.DeepEqual(fp, base) {
					t.Errorf("islands=%d steal=%v workers=%d: diverged from the classic run (fitness %g vs %g, evals %d vs %d)",
						islands, !steal, workers, fp.Fitness, base.Fitness, fp.Evaluations, base.Evaluations)
				}
			}
		}
	}
}

// TestIslandMigrationLatticeDeterminism is the migration determinism property
// test: for each topology × island count, the run is a pure function of
// (Config, seed) — byte-identical results and identical Evaluations/CacheHits
// across GOMAXPROCS 1 and 8, work-stealing on and off, and any worker budget.
func TestIslandMigrationLatticeDeterminism(t *testing.T) {
	const v, procs = 12, 6
	fitness := sphereFitness(islandTarget(v, procs))
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, islands := range []int{2, 3, 4} {
		for _, topo := range []string{TopologyRing, TopologyFull} {
			var want islandFingerprint
			first := true
			for _, gmp := range []int{1, 8} {
				runtime.GOMAXPROCS(gmp)
				for _, steal := range []bool{false, true} {
					for _, workers := range []int{0, 1, 5} {
						cfg := defaultConfig(11)
						cfg.Islands = islands
						cfg.MigrationInterval = 2
						cfg.MigrationCount = 2
						cfg.Topology = topo
						cfg.DisableWorkStealing = steal
						cfg.Workers = workers
						res, err := Run(cfg, v, procs, nil, fitness)
						if err != nil {
							t.Fatal(err)
						}
						got := fingerprintResult(res)
						if first {
							want = got
							first = false
							for i := 1; i < len(got.History); i++ {
								if got.History[i] > got.History[i-1] {
									t.Fatalf("islands=%d topo=%s: aggregate history worsened at generation %d: %g after %g",
										islands, topo, i, got.History[i], got.History[i-1])
								}
							}
							continue
						}
						if !reflect.DeepEqual(got, want) {
							t.Errorf("islands=%d topo=%s gomaxprocs=%d steal=%v workers=%d: diverged (fitness %g vs %g, evals %d vs %d, hits %d vs %d)",
								islands, topo, gmp, !steal, workers,
								got.Fitness, want.Fitness, got.Evaluations, want.Evaluations, got.CacheHits, want.CacheHits)
						}
					}
				}
			}
		}
	}
}

// TestIslandObserverDeliveryDeterminism pins the coordinator's barrier
// replay: the stream arrives in (generation, island) order with exactly one
// event per island per generation, BestEver is rewritten to the aggregate
// running minimum (non-increasing, so an SSE consumer can render it as "the
// best so far"), the last delivered BestEver equals the assembled
// Result.Best.Fitness, and the whole stream is bit-identical across reruns.
func TestIslandObserverDeliveryDeterminism(t *testing.T) {
	const v, procs = 12, 6
	fitness := sphereFitness(islandTarget(v, procs))
	run := func() ([]GenStats, *Result) {
		var stats []GenStats
		cfg := defaultConfig(5)
		cfg.Islands = 3
		cfg.MigrationInterval = 2
		cfg.OnGeneration = func(gs GenStats) { stats = append(stats, gs) }
		res, err := Run(cfg, v, procs, nil, fitness)
		if err != nil {
			t.Fatal(err)
		}
		return stats, res
	}
	stats, res := run()
	cfg := defaultConfig(5)
	if want := cfg.Generations * 3; len(stats) != want {
		t.Fatalf("observer fired %d times, want generations×islands = %d", len(stats), want)
	}
	prev := stats[0].BestEver
	for i, gs := range stats {
		if wantGen, wantIsl := i/3, i%3; gs.Generation != wantGen || gs.Island != wantIsl {
			t.Fatalf("event %d: (generation, island) = (%d, %d), want (%d, %d)",
				i, gs.Generation, gs.Island, wantGen, wantIsl)
		}
		if gs.BestEver > prev {
			t.Fatalf("event %d: aggregate BestEver worsened: %g after %g", i, gs.BestEver, prev)
		}
		prev = gs.BestEver
	}
	if last := stats[len(stats)-1].BestEver; last != res.Best.Fitness {
		t.Fatalf("last delivered BestEver %g != Result.Best.Fitness %g", last, res.Best.Fitness)
	}
	again, res2 := run()
	if !reflect.DeepEqual(stats, again) {
		t.Fatal("observer stream not bit-identical across reruns")
	}
	if !reflect.DeepEqual(res.Best, res2.Best) {
		t.Fatal("result not bit-identical across reruns")
	}
}

// TestIslandCancelBarrierIdentity pins the anytime contract at island
// granularity: cancellation lands exactly at a migration barrier, so every
// island has completed the same number of generations, the partial Result is
// byte-consistent with the delivered stream, and the error wraps the
// context's cause.
func TestIslandCancelBarrierIdentity(t *testing.T) {
	const v, procs = 12, 6
	fitness := sphereFitness(islandTarget(v, procs))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stats []GenStats
	cfg := defaultConfig(9)
	cfg.Generations = 12
	cfg.Islands = 2
	cfg.MigrationInterval = 3
	cfg.OnGeneration = func(gs GenStats) {
		stats = append(stats, gs)
		if gs.Generation >= 4 {
			cancel() // takes effect at the next barrier
		}
	}
	res, err := RunContext(ctx, cfg, v, procs, nil, fitness)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a context.Canceled wrap", err)
	}
	if res == nil {
		t.Fatal("cancellation after initialization must return the partial result")
	}
	if res.Generations%cfg.MigrationInterval != 0 || res.Generations <= 0 || res.Generations >= cfg.Generations {
		t.Fatalf("Generations = %d, want a positive multiple of the %d-generation epoch short of %d",
			res.Generations, cfg.MigrationInterval, cfg.Generations)
	}
	if want := res.Generations + 1; len(res.History) != want {
		t.Fatalf("len(History) = %d, want %d", len(res.History), want)
	}
	if want := res.Generations * cfg.Islands; len(stats) != want {
		t.Fatalf("observer fired %d times, want %d (every completed generation delivered)", len(stats), want)
	}
	if last := stats[len(stats)-1].BestEver; last != res.Best.Fitness {
		t.Fatalf("last streamed BestEver %g != partial Result.Best.Fitness %g", last, res.Best.Fitness)
	}
}

// TestIslandConfigValidation covers the island-specific Validate arms.
func TestIslandConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Islands = -1 },
		func(c *Config) { c.MigrationInterval = -1 },
		func(c *Config) { c.MigrationCount = -1 },
		func(c *Config) { c.Topology = "torus" },
	}
	for i, mutate := range bad {
		cfg := defaultConfig(1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("island config %d accepted: %+v", i, cfg)
		}
	}
	for _, topo := range []string{"", TopologyRing, TopologyFull} {
		cfg := defaultConfig(1)
		cfg.Islands = 4
		cfg.Topology = topo
		if err := cfg.Validate(); err != nil {
			t.Errorf("topology %q rejected: %v", topo, err)
		}
	}
}

// TestIslandSearchBenefit is a smoke check that the island model actually
// searches: with enough islands and migration, the run matches or beats the
// single population on the same budget for at least one of a few seeds (a
// deterministic, non-flaky stand-in for the paper's quality claim).
func TestIslandSearchBenefit(t *testing.T) {
	const v, procs = 16, 8
	fitness := sphereFitness(islandTarget(v, procs))
	better := false
	for seed := int64(1); seed <= 3; seed++ {
		single, err := Run(defaultConfig(seed), v, procs, nil, fitness)
		if err != nil {
			t.Fatal(err)
		}
		cfg := defaultConfig(seed)
		cfg.Islands = 4
		cfg.MigrationInterval = 2
		multi, err := Run(cfg, v, procs, nil, fitness)
		if err != nil {
			t.Fatal(err)
		}
		if multi.Best.Fitness <= single.Best.Fitness {
			better = true
		}
		if multi.Evaluations <= single.Evaluations {
			t.Fatalf("seed %d: %d evaluations across 4 islands vs %d for one population — islands did not run independent searches",
				seed, multi.Evaluations, single.Evaluations)
		}
	}
	if !better {
		t.Error("4 islands never matched the single population across 3 seeds")
	}
}
