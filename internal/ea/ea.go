// Package ea provides the (μ+λ) evolution-strategy machinery of EMTS
// (Section III of the paper): the individual encoding, the adaptive
// mutation-count schedule, the asymmetric mutation operator of Eq. (1),
// plus-selection, and a deterministic parallel fitness-evaluation loop.
//
// The package is deliberately independent of graphs and schedules: an
// individual is an allocation vector and fitness is whatever the supplied
// Evaluator computes (for EMTS, the makespan produced by the list-scheduling
// mapping function). This keeps the evolutionary core reusable and testable
// in isolation.
package ea

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"emts/internal/schedule"
)

// Individual pairs an allocation vector (the encoding of Figure 2: position i
// holds s(v_i)) with its fitness, the makespan of the mapped schedule.
// Smaller fitness is better.
type Individual struct {
	Alloc   schedule.Allocation
	Fitness float64
	// Sigma is the individual's mutation step size when the run uses
	// self-adaptation (Config.SelfAdaptive); 0 otherwise.
	Sigma float64
}

// Clone returns a deep copy of the individual.
func (ind Individual) Clone() Individual {
	return Individual{Alloc: ind.Alloc.Clone(), Fitness: ind.Fitness, Sigma: ind.Sigma}
}

// Evaluator computes the fitness of an allocation. rejectAbove > 0 allows the
// evaluator to abort early (Section VI's rejection strategy) once it can
// prove the fitness exceeds the bound; it then returns ErrRejected and the
// individual is treated as infinitely unfit. Evaluators must be pure
// functions: they are called concurrently from multiple goroutines.
type Evaluator func(alloc schedule.Allocation, rejectAbove float64) (float64, error)

// ErrRejected is returned by an Evaluator that aborted due to rejectAbove.
// It mirrors listsched.ErrRejected without importing the package.
var ErrRejected = errors.New("ea: individual rejected by fitness bound")

// Mutator derives one offspring allocation change. Implementations mutate
// exactly the requested number of alleles (or all of them if the vector is
// shorter) and must keep every allele within [1, procs].
type Mutator interface {
	// Name identifies the operator in ablation reports.
	Name() string
	// Mutate modifies m distinct alleles of alloc in place.
	Mutate(rng *rand.Rand, alloc schedule.Allocation, m, procs int)
}

// PaperMutator is the mutation operator of Section III-D. The number of
// processors C added to or removed from an allocation is
//
//	C = +(⌊|X₂|⌋ + 1) with probability 1 − A (stretch), X₂ ~ N(0, σ₂)
//	C = −(⌊|X₁|⌋ + 1) with probability A     (shrink),  X₁ ~ N(0, σ₁)
//
// so |C| >= 1 always, small changes are more likely than large ones, and
// shrinking is less likely than stretching (A = 0.2 in the paper: "the number
// of processors allocated to a task decreases with a probability of 20%").
// The result is clamped to [1, procs]. See DESIGN.md item 4.2 for the sign
// convention relative to the paper's Eq. (1).
type PaperMutator struct {
	// A is the shrink probability (paper: 0.2).
	A float64
	// Sigma1 is the standard deviation of the shrink magnitude (paper: 5).
	Sigma1 float64
	// Sigma2 is the standard deviation of the stretch magnitude (paper: 5).
	Sigma2 float64
}

// DefaultPaperMutator returns the operator with the paper's parameters
// (a = 0.2, σ₁ = σ₂ = 5, as in Figure 3).
func DefaultPaperMutator() PaperMutator { return PaperMutator{A: 0.2, Sigma1: 5, Sigma2: 5} }

// Name implements Mutator.
func (PaperMutator) Name() string { return "paper-eq1" }

// Delta samples the allocation adjustment C of Eq. (1).
func (pm PaperMutator) Delta(rng *rand.Rand) int {
	if rng.Float64() < pm.A {
		return -(int(math.Floor(math.Abs(rng.NormFloat64()*pm.Sigma1))) + 1)
	}
	return int(math.Floor(math.Abs(rng.NormFloat64()*pm.Sigma2))) + 1
}

// Mutate implements Mutator: it adjusts m distinct random alleles by Delta,
// clamping each result into [1, procs].
func (pm PaperMutator) Mutate(rng *rand.Rand, alloc schedule.Allocation, m, procs int) {
	for _, i := range samplePositions(rng, len(alloc), m) {
		v := alloc[i] + pm.Delta(rng)
		if v < 1 {
			v = 1
		}
		if v > procs {
			v = procs
		}
		alloc[i] = v
	}
}

// UniformMutator resamples each selected allele uniformly from [1, procs].
// It is the "any uniform distribution could be applied" strawman of Section
// III-D, kept for the mutation-operator ablation (DESIGN.md experiment A1).
type UniformMutator struct{}

// Name implements Mutator.
func (UniformMutator) Name() string { return "uniform" }

// Mutate implements Mutator.
func (UniformMutator) Mutate(rng *rand.Rand, alloc schedule.Allocation, m, procs int) {
	for _, i := range samplePositions(rng, len(alloc), m) {
		alloc[i] = 1 + rng.Intn(procs)
	}
}

// samplePositions draws min(m, n) distinct indices from [0, n) via a partial
// Fisher-Yates shuffle.
func samplePositions(rng *rand.Rand, n, m int) []int {
	if m > n {
		m = n
	}
	if m <= 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < m; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:m]
}

// MutationCount implements the adaptive schedule of Section III-C: in
// generation u of U (0-based), m = (1 − u/U)·fm·V alleles are mutated, so
// exploration shrinks as the search converges. The count is clamped to at
// least 1 so every offspring differs from its parent (DESIGN.md item 4.3).
func MutationCount(u, generations int, fm float64, v int) int {
	if generations <= 0 {
		generations = 1
	}
	m := int(math.Round((1 - float64(u)/float64(generations)) * fm * float64(v)))
	if m < 1 {
		m = 1
	}
	if m > v {
		m = v
	}
	return m
}

// Strategy selects how the next parent generation is formed.
type Strategy int

const (
	// Plus is the (μ+λ) strategy of the paper: parents compete with their
	// offspring, so the best solution is always conserved and the population
	// never worsens (Section IV, citing Schwefel & Rudolph).
	Plus Strategy = iota
	// Comma is the (μ,λ) strategy: parents are discarded and the μ best
	// offspring survive. Requires Lambda >= Mu. The population may worsen,
	// which helps escaping local optima at the cost of monotonicity; the
	// overall best individual is still tracked across generations. Provided
	// for the strategy comparison the paper lists as future work
	// (Section VI).
	Comma
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == Comma {
		return "comma"
	}
	return "plus"
}

// GenStats summarizes one generation's selection pool for tracing.
type GenStats struct {
	// Generation is the 0-based index u.
	Generation int
	// Best, Mean, Worst summarize the finite fitness values of the pool the
	// new parents were selected from.
	Best, Mean, Worst float64
	// BestEver is the best fitness seen so far, including earlier
	// generations.
	BestEver float64
	// Rejected counts this generation's rejected offspring.
	Rejected int
}

// Config parametrizes one (μ+λ) evolution-strategy run.
type Config struct {
	// Mu is the number of parents kept each generation (paper: 5 or 10).
	Mu int
	// Lambda is the number of offspring per generation (paper: 25 or 100).
	Lambda int
	// Generations is U, the number of evolutionary steps (paper: 5 or 10).
	Generations int
	// Fm is the initial fraction of alleles mutated (paper: 0.33).
	Fm float64
	// Mutator generates offspring; nil means DefaultPaperMutator.
	Mutator Mutator
	// CrossoverProb, when positive, creates offspring by uniform crossover of
	// two distinct parents with this probability before mutation. The paper
	// argues for mutation-only (Section III-C); crossover exists for the
	// ablation study A4.
	CrossoverProb float64
	// UseRejection passes the best fitness found so far as rejectAbove to the
	// Evaluator, enabling the early-abort optimization of Section VI.
	UseRejection bool
	// Workers bounds the parallelism of fitness evaluation; 0 means
	// runtime.GOMAXPROCS(0). 1 forces sequential evaluation.
	Workers int
	// EvaluatorFactory, when non-nil, supplies one independent Evaluator per
	// worker goroutine instead of sharing the Evaluator passed to Run. This
	// lets arena-backed evaluators (listsched.Mapper) reuse their scratch
	// state lock-free: each worker owns its instance for the whole run, so a
	// (5+25)×5 EMTS run builds 𝑂(workers) arenas instead of ~130. Factory
	// products must obey the same purity contract as Evaluator.
	EvaluatorFactory func() Evaluator
	// DisableCache turns off fitness memoization and within-batch
	// deduplication. Results are bit-identical either way (the cache is
	// exact; see Result.CacheHits) — the switch exists for A/B measurement
	// and regression tests.
	DisableCache bool
	// Seed drives all stochastic choices; equal seeds give equal runs.
	Seed int64
	// Strategy selects plus- (default) or comma-selection.
	Strategy Strategy
	// SelfAdaptive enables per-individual mutation step sizes in the style
	// of contemporary evolution strategies (Schwefel & Rudolph, cited in
	// Section IV): each offspring inherits its parent's σ, perturbs it
	// log-normally (τ = 1/√(2V)), and mutates its alleles with the paper's
	// Eq. (1) operator at σ₁ = σ₂ = σ'. Overrides Mutator.
	SelfAdaptive bool
	// InitialSigma is the starting step size for self-adaptation
	// (default 5, the paper's σ).
	InitialSigma float64
	// OnGeneration, when non-nil, receives per-generation statistics after
	// selection. It is called from the Run goroutine, in order.
	OnGeneration func(GenStats)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Mu < 1 {
		return fmt.Errorf("ea: mu = %d, want >= 1", c.Mu)
	}
	if c.Lambda < 1 {
		return fmt.Errorf("ea: lambda = %d, want >= 1", c.Lambda)
	}
	if c.Generations < 1 {
		return fmt.Errorf("ea: generations = %d, want >= 1", c.Generations)
	}
	if c.Fm <= 0 || c.Fm > 1 {
		return fmt.Errorf("ea: fm = %g, want in ]0, 1]", c.Fm)
	}
	if c.CrossoverProb < 0 || c.CrossoverProb > 1 {
		return fmt.Errorf("ea: crossover probability %g outside [0,1]", c.CrossoverProb)
	}
	if c.Strategy == Comma && c.Lambda < c.Mu {
		return fmt.Errorf("ea: comma strategy needs lambda (%d) >= mu (%d)", c.Lambda, c.Mu)
	}
	return nil
}

// Result reports the outcome of a run.
type Result struct {
	// Best is the fittest individual ever evaluated.
	Best Individual
	// History holds the best fitness after initialization (History[0]) and
	// after each generation; it is non-increasing by plus-selection.
	History []float64
	// Evaluations counts fitness evaluations (including rejected ones). The
	// count is independent of memoization: an individual answered from the
	// fitness cache still counts, so the EA's evaluation budget reads the
	// same with the cache on or off.
	Evaluations int
	// Rejections counts evaluations aborted by the rejection bound.
	Rejections int
	// CacheHits counts the fitness evaluations answered without invoking an
	// Evaluator: memoized results from earlier generations plus duplicates
	// within one batch. Always 0 when Config.DisableCache is set.
	CacheHits int
}

// Run executes the (μ+λ) evolution strategy on allocations of length v for a
// platform with procs processors, starting from the given seed individuals
// (already-allocated vectors from heuristics such as MCPA and HCPA,
// Section III-B). Missing parents are filled with uniform random individuals;
// surplus seeds compete, and the best μ form the first parent generation.
//
// Because the paper uses a plus-strategy, the best solution is conserved: the
// population never worsens across generations (Section IV, citing Schwefel &
// Rudolph).
func Run(cfg Config, v, procs int, seeds []schedule.Allocation, fitness Evaluator) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if v < 1 {
		return nil, fmt.Errorf("ea: individual length %d, want >= 1", v)
	}
	if procs < 1 {
		return nil, fmt.Errorf("ea: procs = %d, want >= 1", procs)
	}
	mut := cfg.Mutator
	if mut == nil {
		mut = DefaultPaperMutator()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{}
	eng := newEvalEngine(cfg, fitness)

	// Initial pool: seeds (clamped defensively) plus random fill.
	pool := make([]Individual, 0, max(len(seeds), cfg.Mu))
	for _, s := range seeds {
		if len(s) != v {
			return nil, fmt.Errorf("ea: seed individual has %d alleles, want %d", len(s), v)
		}
		pool = append(pool, Individual{Alloc: s.Clone().Clamp(procs)})
	}
	for len(pool) < cfg.Mu {
		a := make(schedule.Allocation, v)
		for i := range a {
			a[i] = 1 + rng.Intn(procs)
		}
		pool = append(pool, Individual{Alloc: a})
	}
	if err := eng.evaluateAll(pool, 0, res); err != nil {
		return nil, err
	}
	parents := selectBest(pool, cfg.Mu)
	res.Best = parents[0].Clone()
	res.History = append(res.History, res.Best.Fitness)

	// Self-adaptation bookkeeping.
	initialSigma := cfg.InitialSigma
	if initialSigma <= 0 {
		initialSigma = 5 // the paper's σ
	}
	if cfg.SelfAdaptive {
		for i := range parents {
			if parents[i].Sigma <= 0 {
				parents[i].Sigma = initialSigma
			}
		}
	}
	tau := 1 / math.Sqrt(2*float64(v))

	offspring := make([]Individual, cfg.Lambda)
	for u := 0; u < cfg.Generations; u++ {
		m := MutationCount(u, cfg.Generations, cfg.Fm, v)
		for i := range offspring {
			parent := parents[rng.Intn(len(parents))]
			child := parent.Alloc.Clone()
			if cfg.CrossoverProb > 0 && len(parents) > 1 && rng.Float64() < cfg.CrossoverProb {
				other := parents[rng.Intn(len(parents))].Alloc
				uniformCrossover(rng, child, other)
			}
			sigma := 0.0
			if cfg.SelfAdaptive {
				sigma = parent.Sigma
				if sigma <= 0 {
					sigma = initialSigma
				}
				sigma *= math.Exp(tau * rng.NormFloat64())
				if sigma < 0.3 {
					sigma = 0.3 // keep |C| >= 1 meaningful
				}
				if max := float64(procs); sigma > max {
					sigma = max
				}
				PaperMutator{A: 0.2, Sigma1: sigma, Sigma2: sigma}.Mutate(rng, child, m, procs)
			} else {
				mut.Mutate(rng, child, m, procs)
			}
			offspring[i] = Individual{Alloc: child, Sigma: sigma}
		}
		bound := 0.0
		if cfg.UseRejection {
			bound = res.Best.Fitness
		}
		rejectedBefore := res.Rejections
		if err := eng.evaluateAll(offspring, bound, res); err != nil {
			return nil, err
		}
		// Selection: plus-strategy pools parents with offspring; the
		// comma-strategy selects from the offspring alone.
		pool = pool[:0]
		if cfg.Strategy == Plus {
			pool = append(pool, parents...)
		}
		pool = append(pool, offspring...)
		parents = selectBest(pool, cfg.Mu)
		if parents[0].Fitness < res.Best.Fitness {
			res.Best = parents[0].Clone()
		}
		res.History = append(res.History, res.Best.Fitness)
		if cfg.OnGeneration != nil {
			cfg.OnGeneration(poolStats(u, pool, res.Best.Fitness, res.Rejections-rejectedBefore))
		}
	}
	return res, nil
}

// poolStats summarizes the finite fitness values of a selection pool.
func poolStats(u int, pool []Individual, bestEver float64, rejected int) GenStats {
	gs := GenStats{Generation: u, BestEver: bestEver, Rejected: rejected}
	n := 0
	sum := 0.0
	for _, ind := range pool {
		if math.IsInf(ind.Fitness, 0) {
			continue
		}
		if n == 0 || ind.Fitness < gs.Best {
			gs.Best = ind.Fitness
		}
		if n == 0 || ind.Fitness > gs.Worst {
			gs.Worst = ind.Fitness
		}
		sum += ind.Fitness
		n++
	}
	if n > 0 {
		gs.Mean = sum / float64(n)
	}
	return gs
}

// uniformCrossover overwrites roughly half of child's alleles with other's.
func uniformCrossover(rng *rand.Rand, child, other schedule.Allocation) {
	for i := range child {
		if rng.Intn(2) == 0 {
			child[i] = other[i]
		}
	}
}

// selectBest returns the mu fittest individuals of pool (stable order, so
// earlier individuals win ties — parents persist over equal offspring).
func selectBest(pool []Individual, mu int) []Individual {
	sorted := make([]Individual, len(pool))
	copy(sorted, pool)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Fitness < sorted[j].Fitness })
	if mu > len(sorted) {
		mu = len(sorted)
	}
	out := make([]Individual, mu)
	for i := range out {
		out[i] = sorted[i].Clone()
	}
	return out
}
