// Package ea provides the (μ+λ) evolution-strategy machinery of EMTS
// (Section III of the paper): the individual encoding, the adaptive
// mutation-count schedule, the asymmetric mutation operator of Eq. (1),
// plus-selection, and a deterministic parallel fitness-evaluation loop.
//
// The package is deliberately independent of graphs and schedules: an
// individual is an allocation vector and fitness is whatever the supplied
// Evaluator computes (for EMTS, the makespan produced by the list-scheduling
// mapping function). This keeps the evolutionary core reusable and testable
// in isolation.
package ea

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"emts/internal/schedule"
)

// Individual pairs an allocation vector (the encoding of Figure 2: position i
// holds s(v_i)) with its fitness, the makespan of the mapped schedule.
// Smaller fitness is better.
type Individual struct {
	Alloc   schedule.Allocation
	Fitness float64
	// Sigma is the individual's mutation step size when the run uses
	// self-adaptation (Config.SelfAdaptive); 0 otherwise.
	Sigma float64

	// parent and mutated record the offspring's lineage for delta-aware
	// evaluation (DESIGN.md §10, Layer 3): parent is the parent's live
	// allocation vector and mutated lists the allele positions the mutation
	// operator touched, so Alloc[i] == parent[i] for every position not in
	// mutated. Both are nil for seeds, crossover offspring, and selected
	// parents (Clone and selectBest clear them). Run only sets them when the
	// parent vector is guaranteed to stay unmutated for the rest of the run.
	parent  schedule.Allocation
	mutated []int
}

// Clone returns a deep copy of the individual. Lineage is not carried over:
// a clone is a free-standing vector, not a delta against its parent.
func (ind Individual) Clone() Individual {
	return Individual{Alloc: ind.Alloc.Clone(), Fitness: ind.Fitness, Sigma: ind.Sigma}
}

// Evaluator computes the fitness of an allocation. rejectAbove > 0 allows the
// evaluator to abort early (Section VI's rejection strategy) once it can
// prove the fitness exceeds the bound; it then returns ErrRejected and the
// individual is treated as infinitely unfit. Evaluators must be pure
// functions: they are called concurrently from multiple goroutines.
type Evaluator func(alloc schedule.Allocation, rejectAbove float64) (float64, error)

// DeltaEvaluator is an Evaluator that additionally receives the offspring's
// lineage: the parent allocation it was mutated from and the positions that
// were mutated. Implementations may exploit the lineage to skip work (see
// listsched.Mapper.MakespanDelta) but must return bit-identical results to a
// lineage-free evaluation of alloc. parent may be nil (no usable lineage);
// implementations must then fall back to a full evaluation.
type DeltaEvaluator func(alloc, parent schedule.Allocation, mutated []int, rejectAbove float64) (float64, error)

// BatchItem is one individual of a batch evaluation: the allocation vector
// plus optional lineage for delta-aware evaluation. It mirrors
// listsched.BatchItem without importing the package, like the sentinel
// errors below.
type BatchItem struct {
	Alloc   schedule.Allocation
	Parent  schedule.Allocation
	Mutated []int
}

// BatchEvaluator evaluates a whole slice of individuals in one call, writing
// fitness[i] (on success) or errs[i] (ErrRejected / ErrRejectedPrefilter /
// other) for every i < len(items); errs entries must be overwritten (nil on
// success). The returned error reports a batch-level failure (e.g. the
// evaluator could not be constructed), in which case the per-item outputs
// are meaningless. Implementations must be bit-identical to evaluating each
// item through the scalar Evaluator/DeltaEvaluator pair; see
// listsched.BatchMapper. Like Evaluators, each instance is owned by a single
// worker goroutine.
type BatchEvaluator func(items []BatchItem, rejectAbove float64, fitness []float64, errs []error) error

// ErrRejected is returned by an Evaluator that aborted due to rejectAbove.
// It mirrors listsched.ErrRejected without importing the package.
var ErrRejected = errors.New("ea: individual rejected by fitness bound")

// ErrRejectedPrefilter is the ErrRejected variant for rejections decided by
// an O(V) lower-bound prefilter before the full fitness computation
// (listsched.ErrRejectedPrefilter, mirrored here without the import). It
// wraps ErrRejected; the engine counts it separately in
// Result.PrefilterRejections.
var ErrRejectedPrefilter = fmt.Errorf("%w (lower-bound prefilter)", ErrRejected)

// Mutator derives one offspring allocation change. Implementations mutate
// exactly the requested number of alleles (or all of them if the vector is
// shorter) and must keep every allele within [1, procs].
type Mutator interface {
	// Name identifies the operator in ablation reports.
	Name() string
	// Mutate modifies m distinct alleles of alloc in place.
	Mutate(rng *rand.Rand, alloc schedule.Allocation, m, procs int)
}

// PositionsMutator is an optional extension of Mutator for operators that can
// report which positions they touched and work from a caller-owned scratch
// buffer. Run uses it for two things: zero-allocation offspring generation
// (the permutation buffer is reused across all offspring of a run) and
// lineage threading to delta-aware evaluators. MutateInto must consume the
// RNG in exactly the same call sequence as Mutate, so switching between the
// two paths cannot change a seeded run.
type PositionsMutator interface {
	Mutator
	// MutateInto is Mutate using perm (grown if needed) as the position
	// scratch buffer. It returns the mutated positions; the returned slice
	// aliases perm and is only valid until the next call.
	MutateInto(rng *rand.Rand, alloc schedule.Allocation, m, procs int, perm []int) []int
}

// PaperMutator is the mutation operator of Section III-D. The number of
// processors C added to or removed from an allocation is
//
//	C = +(⌊|X₂|⌋ + 1) with probability 1 − A (stretch), X₂ ~ N(0, σ₂)
//	C = −(⌊|X₁|⌋ + 1) with probability A     (shrink),  X₁ ~ N(0, σ₁)
//
// so |C| >= 1 always, small changes are more likely than large ones, and
// shrinking is less likely than stretching (A = 0.2 in the paper: "the number
// of processors allocated to a task decreases with a probability of 20%").
// The result is clamped to [1, procs]. See DESIGN.md item 4.2 for the sign
// convention relative to the paper's Eq. (1).
type PaperMutator struct {
	// A is the shrink probability (paper: 0.2).
	A float64
	// Sigma1 is the standard deviation of the shrink magnitude (paper: 5).
	Sigma1 float64
	// Sigma2 is the standard deviation of the stretch magnitude (paper: 5).
	Sigma2 float64
}

// DefaultPaperMutator returns the operator with the paper's parameters
// (a = 0.2, σ₁ = σ₂ = 5, as in Figure 3).
func DefaultPaperMutator() PaperMutator { return PaperMutator{A: 0.2, Sigma1: 5, Sigma2: 5} }

// Name implements Mutator.
func (PaperMutator) Name() string { return "paper-eq1" }

// Delta samples the allocation adjustment C of Eq. (1).
func (pm PaperMutator) Delta(rng *rand.Rand) int {
	if rng.Float64() < pm.A {
		return -(int(math.Floor(math.Abs(rng.NormFloat64()*pm.Sigma1))) + 1)
	}
	return int(math.Floor(math.Abs(rng.NormFloat64()*pm.Sigma2))) + 1
}

// Mutate implements Mutator: it adjusts m distinct random alleles by Delta,
// clamping each result into [1, procs].
func (pm PaperMutator) Mutate(rng *rand.Rand, alloc schedule.Allocation, m, procs int) {
	pm.MutateInto(rng, alloc, m, procs, nil)
}

// MutateInto implements PositionsMutator.
func (pm PaperMutator) MutateInto(rng *rand.Rand, alloc schedule.Allocation, m, procs int, perm []int) []int {
	positions := samplePositionsInto(rng, len(alloc), m, perm)
	for _, i := range positions {
		v := alloc[i] + pm.Delta(rng)
		if v < 1 {
			v = 1
		}
		if v > procs {
			v = procs
		}
		alloc[i] = v
	}
	return positions
}

// UniformMutator resamples each selected allele uniformly from [1, procs].
// It is the "any uniform distribution could be applied" strawman of Section
// III-D, kept for the mutation-operator ablation (DESIGN.md experiment A1).
type UniformMutator struct{}

// Name implements Mutator.
func (UniformMutator) Name() string { return "uniform" }

// Mutate implements Mutator.
func (UniformMutator) Mutate(rng *rand.Rand, alloc schedule.Allocation, m, procs int) {
	UniformMutator{}.MutateInto(rng, alloc, m, procs, nil)
}

// MutateInto implements PositionsMutator.
func (UniformMutator) MutateInto(rng *rand.Rand, alloc schedule.Allocation, m, procs int, perm []int) []int {
	positions := samplePositionsInto(rng, len(alloc), m, perm)
	for _, i := range positions {
		alloc[i] = 1 + rng.Intn(procs)
	}
	return positions
}

// samplePositions draws min(m, n) distinct indices from [0, n) via a partial
// Fisher-Yates shuffle.
func samplePositions(rng *rand.Rand, n, m int) []int {
	return samplePositionsInto(rng, n, m, nil)
}

// samplePositionsInto is samplePositions writing into perm, which is grown if
// its capacity is below n and reused otherwise — the offspring loop of Run
// passes one buffer for the whole run, so mutation allocates nothing. The
// RNG consumption (m Intn calls) is identical regardless of the buffer.
func samplePositionsInto(rng *rand.Rand, n, m int, perm []int) []int {
	if m > n {
		m = n
	}
	if m <= 0 {
		return nil
	}
	if cap(perm) < n {
		perm = make([]int, n)
	}
	idx := perm[:n]
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < m; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:m]
}

// MutationCount implements the adaptive schedule of Section III-C: in
// generation u of U (0-based), m = (1 − u/U)·fm·V alleles are mutated, so
// exploration shrinks as the search converges. The count is clamped to at
// least 1 so every offspring differs from its parent (DESIGN.md item 4.3).
func MutationCount(u, generations int, fm float64, v int) int {
	if generations <= 0 {
		generations = 1
	}
	m := int(math.Round((1 - float64(u)/float64(generations)) * fm * float64(v)))
	if m < 1 {
		m = 1
	}
	if m > v {
		m = v
	}
	return m
}

// Strategy selects how the next parent generation is formed.
type Strategy int

const (
	// Plus is the (μ+λ) strategy of the paper: parents compete with their
	// offspring, so the best solution is always conserved and the population
	// never worsens (Section IV, citing Schwefel & Rudolph).
	Plus Strategy = iota
	// Comma is the (μ,λ) strategy: parents are discarded and the μ best
	// offspring survive. Requires Lambda >= Mu. The population may worsen,
	// which helps escaping local optima at the cost of monotonicity; the
	// overall best individual is still tracked across generations. Provided
	// for the strategy comparison the paper lists as future work
	// (Section VI).
	Comma
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == Comma {
		return "comma"
	}
	return "plus"
}

// GenStats summarizes one generation's selection pool for tracing.
type GenStats struct {
	// Generation is the 0-based index u.
	Generation int
	// Island is the 0-based index of the island that produced this
	// generation; always 0 for single-island runs. Multi-island runs deliver
	// one GenStats per island per generation, in (generation, island) order.
	Island int
	// Best, Mean, Worst summarize the finite fitness values of the pool the
	// new parents were selected from.
	Best, Mean, Worst float64
	// BestEver is the best fitness seen so far, including earlier
	// generations. For multi-island runs it is the aggregate minimum across
	// every island and every delivered generation, so the sequence of
	// BestEver values an observer sees is non-increasing and its last value
	// equals Result.Best.Fitness exactly.
	BestEver float64
	// Rejected counts this generation's rejected offspring.
	Rejected int
	// Evaluations, CacheHits, and PrefilterRejections are cumulative
	// snapshots of the run's counters (Result.Evaluations etc.) taken after
	// this generation's evaluation pass — observers (progress streams,
	// anytime dashboards) can report budget consumption without waiting for
	// the final Result.
	Evaluations         int
	CacheHits           int
	PrefilterRejections int
}

// Config parametrizes one (μ+λ) evolution-strategy run.
type Config struct {
	// Mu is the number of parents kept each generation (paper: 5 or 10).
	Mu int
	// Lambda is the number of offspring per generation (paper: 25 or 100).
	Lambda int
	// Generations is U, the number of evolutionary steps (paper: 5 or 10).
	Generations int
	// Fm is the initial fraction of alleles mutated (paper: 0.33).
	Fm float64
	// Mutator generates offspring; nil means DefaultPaperMutator.
	Mutator Mutator
	// CrossoverProb, when positive, creates offspring by uniform crossover of
	// two distinct parents with this probability before mutation. The paper
	// argues for mutation-only (Section III-C); crossover exists for the
	// ablation study A4.
	CrossoverProb float64
	// UseRejection passes the best fitness found so far as rejectAbove to the
	// Evaluator, enabling the early-abort optimization of Section VI.
	UseRejection bool
	// Workers bounds the parallelism of fitness evaluation; 0 means
	// runtime.GOMAXPROCS(0). 1 forces sequential evaluation.
	Workers int
	// EvaluatorFactory, when non-nil, supplies one independent Evaluator per
	// worker goroutine instead of sharing the Evaluator passed to Run. This
	// lets arena-backed evaluators (listsched.Mapper) reuse their scratch
	// state lock-free: each worker owns its instance for the whole run, so a
	// (5+25)×5 EMTS run builds 𝑂(workers) arenas instead of ~130. Factory
	// products must obey the same purity contract as Evaluator.
	EvaluatorFactory func() Evaluator
	// DeltaEvaluatorFactory, when non-nil, supplies one (plain, delta)
	// evaluator pair per worker goroutine and takes precedence over
	// EvaluatorFactory. The delta evaluator is used for offspring with a
	// recorded lineage (pure mutations of a live parent); the plain one for
	// everything else. Both must be backed by the same state so the delta
	// path sees the same arenas (see core.Run's wiring of
	// listsched.Mapper.MakespanDelta).
	DeltaEvaluatorFactory func() (Evaluator, DeltaEvaluator)
	// BatchEvaluatorFactory, when non-nil, supplies one BatchEvaluator per
	// worker goroutine; unresolved individuals are then dispatched to the
	// workers in contiguous chunks instead of one channel send per
	// individual, and each worker evaluates its chunk in a single call over
	// structure-of-arrays state (listsched.BatchMapper). The memoization and
	// deduplication pre-pass is unchanged: only cache misses reach a batch.
	// Results are bit-identical to the scalar factories, which remain wired
	// as the fallback for DisableBatch.
	BatchEvaluatorFactory func() BatchEvaluator
	// DisableBatch ignores BatchEvaluatorFactory, forcing per-individual
	// scalar dispatch. Results are bit-identical either way — the switch
	// exists for A/B measurement and regression tests, like DisableCache.
	DisableBatch bool
	// DisableWorkStealing forces the fixed contiguous-chunk batch dispatch
	// (each worker evaluates exactly rows [w·n/W, (w+1)·n/W)) instead of the
	// work-stealing range deques that let idle workers take rows from loaded
	// ones. Results are bit-identical either way — every row's outcome lands
	// at its fixed index regardless of which worker claimed it — so the
	// switch exists for A/B measurement and regression tests, like
	// DisableBatch.
	DisableWorkStealing bool
	// DisableDelta ignores DeltaEvaluatorFactory's delta evaluator and
	// lineage information, forcing full evaluations. Results are
	// bit-identical either way (the delta sweep is exact) — the switch
	// exists for A/B measurement and regression tests, like DisableCache.
	DisableDelta bool
	// DisableCache turns off fitness memoization and within-batch
	// deduplication. Results are bit-identical either way (the cache is
	// exact; see Result.CacheHits) — the switch exists for A/B measurement
	// and regression tests.
	DisableCache bool
	// CacheShards stripes the fitness memo cache into this many
	// independently locked shards (rounded up to a power of two, capped at
	// 64) so concurrent workers inserting fresh results stop serializing on
	// one map. 0 sizes the stripe count to Workers. Results are
	// bit-identical for any shard count: the cache is exact and entries are
	// located by full-vector comparison, so bucket order never matters.
	CacheShards int
	// Seed drives all stochastic choices; equal seeds give equal runs.
	Seed int64
	// Islands, when > 1, runs that many independent populations (the
	// coarse-grained island model, DESIGN.md §17), each with a private RNG
	// stream derived from Seed by splitmix64 (island 0 keeps the raw seed),
	// a private evaluation engine, and Mu parents of its own; the islands
	// exchange their best individuals every MigrationInterval generations.
	// 0 and 1 both mean the classic single panmictic population, which is
	// bit-identical to runs predating the island layer. Results for any
	// fixed Islands value are independent of Workers and GOMAXPROCS.
	Islands int
	// MigrationInterval is the number of generations between migrations for
	// Islands > 1; 0 defaults to 1 (migrate at every generation boundary).
	// The final generation is never followed by a migration.
	MigrationInterval int
	// MigrationCount is the number of top individuals each island emits per
	// migration (its rank-ordered parent prefix); 0 defaults to 1.
	MigrationCount int
	// Topology selects who receives whose migrants: TopologyRing (the
	// default, also "") or TopologyFull.
	Topology string
	// Strategy selects plus- (default) or comma-selection.
	Strategy Strategy
	// SelfAdaptive enables per-individual mutation step sizes in the style
	// of contemporary evolution strategies (Schwefel & Rudolph, cited in
	// Section IV): each offspring inherits its parent's σ, perturbs it
	// log-normally (τ = 1/√(2V)), and mutates its alleles with the paper's
	// Eq. (1) operator at σ₁ = σ₂ = σ'. Overrides Mutator.
	SelfAdaptive bool
	// InitialSigma is the starting step size for self-adaptation
	// (default 5, the paper's σ).
	InitialSigma float64
	// OnGeneration, when non-nil, receives per-generation statistics after
	// selection. It is called from the Run goroutine, in order.
	OnGeneration func(GenStats)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Mu < 1 {
		return fmt.Errorf("ea: mu = %d, want >= 1", c.Mu)
	}
	if c.Lambda < 1 {
		return fmt.Errorf("ea: lambda = %d, want >= 1", c.Lambda)
	}
	if c.Generations < 1 {
		return fmt.Errorf("ea: generations = %d, want >= 1", c.Generations)
	}
	if c.Fm <= 0 || c.Fm > 1 {
		return fmt.Errorf("ea: fm = %g, want in ]0, 1]", c.Fm)
	}
	if c.CrossoverProb < 0 || c.CrossoverProb > 1 {
		return fmt.Errorf("ea: crossover probability %g outside [0,1]", c.CrossoverProb)
	}
	if c.Strategy == Comma && c.Lambda < c.Mu {
		return fmt.Errorf("ea: comma strategy needs lambda (%d) >= mu (%d)", c.Lambda, c.Mu)
	}
	if c.Islands < 0 {
		return fmt.Errorf("ea: islands = %d, want >= 0", c.Islands)
	}
	if c.MigrationInterval < 0 {
		return fmt.Errorf("ea: migration interval = %d, want >= 0", c.MigrationInterval)
	}
	if c.MigrationCount < 0 {
		return fmt.Errorf("ea: migration count = %d, want >= 0", c.MigrationCount)
	}
	switch c.Topology {
	case "", TopologyRing, TopologyFull:
	default:
		return fmt.Errorf("ea: unknown topology %q (want %q or %q)", c.Topology, TopologyRing, TopologyFull)
	}
	return nil
}

// Result reports the outcome of a run.
type Result struct {
	// Best is the fittest individual ever evaluated.
	Best Individual
	// History holds the best fitness after initialization (History[0]) and
	// after each generation; it is non-increasing by plus-selection.
	History []float64
	// Evaluations counts fitness evaluations (including rejected ones). The
	// count is independent of memoization: an individual answered from the
	// fitness cache still counts, so the EA's evaluation budget reads the
	// same with the cache on or off.
	Evaluations int
	// Rejections counts evaluations aborted by the rejection bound.
	Rejections int
	// PrefilterRejections counts the subset of Rejections decided by an O(V)
	// lower-bound prefilter before the full fitness computation
	// (ErrRejectedPrefilter). Only actual evaluator calls are counted:
	// rejections replayed from the memo cache or batch deduplication are
	// not, so the counter measures map loops actually skipped.
	PrefilterRejections int
	// CacheHits counts the fitness evaluations answered without invoking an
	// Evaluator: memoized results from earlier generations plus duplicates
	// within one batch. Always 0 when Config.DisableCache is set.
	CacheHits int
	// Generations counts the generations actually completed. It equals
	// Config.Generations for a full run and may be smaller when the run was
	// cancelled mid-flight — Best then holds the incumbent at cancellation,
	// a valid anytime answer by plus-selection's incumbent monotonicity.
	Generations int
}

// Run executes the (μ+λ) evolution strategy on allocations of length v for a
// platform with procs processors, starting from the given seed individuals
// (already-allocated vectors from heuristics such as MCPA and HCPA,
// Section III-B). Missing parents are filled with uniform random individuals;
// surplus seeds compete, and the best μ form the first parent generation.
//
// Because the paper uses a plus-strategy, the best solution is conserved: the
// population never worsens across generations (Section IV, citing Schwefel &
// Rudolph).
func Run(cfg Config, v, procs int, seeds []schedule.Allocation, fitness Evaluator) (*Result, error) {
	return RunContext(context.Background(), cfg, v, procs, seeds, fitness)
}

// RunContext is Run with cooperative cancellation. ctx is observed at two
// points only — before the initial evaluation and once at the top of each
// generation (for Islands > 1: once at each migration barrier) — so
// cancellation adds zero cost to the hot fitness path and cannot perturb the
// RNG streams: a run that completes under a live context is bit-identical to
// the same seed under context.Background(). On cancellation the error wraps
// ctx's cause (context.Canceled or DeadlineExceeded), so errors.Is works. A
// cancellation after initialization returns the partial Result alongside the
// error: Best is the incumbent at cancellation (a valid answer by
// plus-selection — the population never worsens) and Result.Generations
// counts the generations actually completed (for Islands > 1, by every
// island — islands only stop at barriers). Only a cancellation before the
// initial evaluation returns a nil Result.
func RunContext(ctx context.Context, cfg Config, v, procs int, seeds []schedule.Allocation, fitness Evaluator) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("ea: run cancelled before initialization: %w", err)
	}
	if v < 1 {
		return nil, fmt.Errorf("ea: individual length %d, want >= 1", v)
	}
	if procs < 1 {
		return nil, fmt.Errorf("ea: procs = %d, want >= 1", procs)
	}
	if cfg.Islands > 1 {
		return runIslands(ctx, cfg, v, procs, seeds, fitness)
	}
	// Single panmictic population: one island executing the classic
	// generation loop, observer delivered inline from this goroutine.
	isl := newIsland(0, cfg, v, procs, seeds, fitness)
	if err := isl.init(); err != nil {
		return nil, err
	}
	for u := 0; u < cfg.Generations; u++ {
		if err := ctx.Err(); err != nil {
			// Anytime contract: the incumbent in res.Best is already a
			// private clone and History covers every completed generation, so
			// the partial Result is safe to hand out alongside the error.
			return isl.res, fmt.Errorf("ea: run cancelled before generation %d: %w", u, err)
		}
		if err := isl.step(u); err != nil {
			return nil, err
		}
	}
	return isl.res, nil
}

// poolStats summarizes the finite fitness values of a selection pool.
func poolStats(u int, pool []Individual, bestEver float64, rejected int) GenStats {
	gs := GenStats{Generation: u, BestEver: bestEver, Rejected: rejected}
	n := 0
	sum := 0.0
	for _, ind := range pool {
		if math.IsInf(ind.Fitness, 0) {
			continue
		}
		if n == 0 || ind.Fitness < gs.Best {
			gs.Best = ind.Fitness
		}
		if n == 0 || ind.Fitness > gs.Worst {
			gs.Worst = ind.Fitness
		}
		sum += ind.Fitness
		n++
	}
	if n > 0 {
		gs.Mean = sum / float64(n)
	}
	return gs
}

// uniformCrossover overwrites roughly half of child's alleles with other's.
func uniformCrossover(rng *rand.Rand, child, other schedule.Allocation) {
	for i := range child {
		if rng.Intn(2) == 0 {
			child[i] = other[i]
		}
	}
}

// selectBest returns the mu fittest individuals of pool (stable order, so
// earlier individuals win ties — parents persist over equal offspring).
//
// The first stable entries of pool are backed by vectors that stay live and
// unmutated for the rest of the run (previous parents, or the fresh initial
// pool); they are passed through without cloning, which both saves the copy
// and preserves vector identity across generations — the property the
// delta evaluator's parent-keyed baseline cache relies on
// (listsched.Mapper.MakespanDelta). Entries at index >= stable are
// arena-backed offspring and are cloned. Sorting indices instead of the
// individuals keeps the tie-breaking identical to a stable sort of the pool
// itself. Lineage fields are cleared either way: a parent is a free-standing
// vector from now on.
func selectBest(pool []Individual, mu, stable int) []Individual {
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return pool[idx[a]].Fitness < pool[idx[b]].Fitness })
	if mu > len(idx) {
		mu = len(idx)
	}
	out := make([]Individual, mu)
	for i := range out {
		j := idx[i]
		if j < stable {
			out[i] = pool[j]
			out[i].parent, out[i].mutated = nil, nil
		} else {
			out[i] = pool[j].Clone()
		}
	}
	return out
}
