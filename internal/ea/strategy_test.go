package ea

import (
	"math"
	"testing"

	"emts/internal/schedule"
)

func TestCommaStrategyValidation(t *testing.T) {
	c := Config{Mu: 10, Lambda: 5, Generations: 3, Fm: 0.3, Strategy: Comma}
	if err := c.Validate(); err == nil {
		t.Fatal("comma with lambda < mu accepted")
	}
	c.Lambda = 10
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyString(t *testing.T) {
	if Plus.String() != "plus" || Comma.String() != "comma" {
		t.Fatal("strategy names")
	}
}

func TestCommaStrategyStillTracksBestEver(t *testing.T) {
	const v, procs = 12, 8
	target := schedule.Ones(v)
	cfg := defaultConfig(31)
	cfg.Strategy = Comma
	cfg.Generations = 15
	// Seed with the exact optimum: comma-selection discards parents, so the
	// population may lose it, but Result.Best must keep it.
	res, err := Run(cfg, v, procs, []schedule.Allocation{target.Clone()}, sphereFitness(target))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness != 0 {
		t.Fatalf("best-ever lost under comma: %g", res.Best.Fitness)
	}
	// History is best-ever, hence still non-increasing.
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatal("best-ever history increased")
		}
	}
}

func TestCommaStrategyConverges(t *testing.T) {
	const v, procs = 16, 16
	target := make(schedule.Allocation, v)
	for i := range target {
		target[i] = 1 + i%procs
	}
	cfg := defaultConfig(17)
	cfg.Strategy = Comma
	cfg.Generations = 25
	res, err := Run(cfg, v, procs, nil, sphereFitness(target))
	if err != nil {
		t.Fatal(err)
	}
	if res.History[len(res.History)-1] >= res.History[0] {
		t.Fatal("comma strategy made no progress")
	}
}

func TestOnGenerationCallback(t *testing.T) {
	const v, procs = 10, 8
	target := schedule.Ones(v)
	cfg := defaultConfig(23)
	cfg.Generations = 4
	var stats []GenStats
	cfg.OnGeneration = func(gs GenStats) { stats = append(stats, gs) }
	res, err := Run(cfg, v, procs, nil, sphereFitness(target))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != cfg.Generations {
		t.Fatalf("%d callbacks, want %d", len(stats), cfg.Generations)
	}
	for i, gs := range stats {
		if gs.Generation != i {
			t.Fatalf("generation index %d at position %d", gs.Generation, i)
		}
		if gs.Best > gs.Mean || gs.Mean > gs.Worst {
			t.Fatalf("stats out of order: %+v", gs)
		}
		if gs.BestEver > gs.Best {
			t.Fatalf("best-ever %g worse than pool best %g", gs.BestEver, gs.Best)
		}
	}
	if stats[len(stats)-1].BestEver != res.Best.Fitness {
		t.Fatal("final BestEver != result best")
	}
}

func TestPoolStatsIgnoresInfiniteFitness(t *testing.T) {
	pool := []Individual{
		{Fitness: 3},
		{Fitness: math.Inf(1)},
		{Fitness: 1},
	}
	gs := poolStats(0, pool, 1, 1)
	if gs.Best != 1 || gs.Worst != 3 || gs.Mean != 2 {
		t.Fatalf("stats %+v", gs)
	}
	if gs.Rejected != 1 {
		t.Fatalf("rejected %d", gs.Rejected)
	}
}

func TestSelfAdaptiveConverges(t *testing.T) {
	const v, procs = 16, 16
	target := make(schedule.Allocation, v)
	for i := range target {
		target[i] = 1 + i%procs
	}
	cfg := defaultConfig(41)
	cfg.SelfAdaptive = true
	cfg.Generations = 25
	res, err := Run(cfg, v, procs, nil, sphereFitness(target))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness >= res.History[0] {
		t.Fatal("self-adaptive ES made no progress")
	}
	if res.Best.Sigma <= 0 {
		t.Fatalf("best individual carries no sigma: %+v", res.Best.Sigma)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatal("plus-selection violated under self-adaptation")
		}
	}
}

func TestSelfAdaptiveDeterministic(t *testing.T) {
	const v, procs = 10, 8
	target := schedule.Ones(v)
	cfg := defaultConfig(43)
	cfg.SelfAdaptive = true
	r1, err := Run(cfg, v, procs, nil, sphereFitness(target))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, v, procs, nil, sphereFitness(target))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Best.Fitness != r2.Best.Fitness || r1.Best.Sigma != r2.Best.Sigma {
		t.Fatal("self-adaptive run not deterministic")
	}
}

func TestSelfAdaptiveSigmaBounds(t *testing.T) {
	// Over many generations sigma must stay within [0.3, procs].
	const v, procs = 8, 12
	target := schedule.Ones(v)
	cfg := defaultConfig(47)
	cfg.SelfAdaptive = true
	cfg.InitialSigma = 1
	cfg.Generations = 40
	res, err := Run(cfg, v, procs, nil, sphereFitness(target))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Sigma < 0.3 || res.Best.Sigma > procs {
		t.Fatalf("sigma %g escaped bounds", res.Best.Sigma)
	}
}
