package route

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"emts/internal/daggen"
	"emts/internal/server"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// realBackend is one in-process emts-serve instance.
type realBackend struct {
	svc *server.Server
	ts  *httptest.Server
	b   Backend
}

// startBackends launches n real servers with instance IDs s0..s(n-1).
func startBackends(t *testing.T, n int, cfg server.Config) []realBackend {
	t.Helper()
	out := make([]realBackend, n)
	for i := range out {
		c := cfg
		c.InstanceID = fmt.Sprintf("s%d", i)
		if c.Workers == 0 {
			c.Workers = 1
		}
		svc := server.New(c)
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(ts.Close)
		out[i] = realBackend{svc: svc, ts: ts, b: Backend{ID: c.InstanceID, URL: ts.URL}}
	}
	return out
}

// scheduleBody builds one request body over a generated PTG.
func scheduleBody(t *testing.T, spec string, algo string, seed int64) []byte {
	t.Helper()
	g, err := generateGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(server.ScheduleRequest{
		Graph:     raw,
		Cluster:   server.ClusterSpec{Preset: "chti"},
		Algorithm: algo,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func generateGraph(spec string) (interface{ NumTasks() int }, error) {
	costs := daggen.DefaultCosts()
	switch spec {
	case "fft4":
		return daggen.FFT(4, costs, 1)
	case "fft8":
		return daggen.FFT(8, costs, 1)
	case "strassen":
		return daggen.Strassen(costs, 1)
	}
	return nil, fmt.Errorf("unknown spec %s", spec)
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestRouterByteIdentityAndAffinity is the correctness core: for a corpus of
// requests, the routed response must be byte-identical to what every backend
// answers directly, the serving backend must be the rendezvous choice for
// the graph digest, and repeats of a request must keep landing there (that
// stability is the affinity property).
func TestRouterByteIdentityAndAffinity(t *testing.T) {
	backends := startBackends(t, 3, server.Config{})
	var members []Backend
	for _, rb := range backends {
		members = append(members, rb.b)
	}
	router, err := New(Config{Backends: members, Health: HealthConfig{Interval: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Shutdown(context.Background())
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	var corpus [][]byte
	for _, spec := range []string{"fft4", "fft8", "strassen"} {
		for _, algo := range []string{"cpa", "mcpa"} {
			for seed := int64(1); seed <= 2; seed++ {
				corpus = append(corpus, scheduleBody(t, spec, algo, seed))
			}
		}
	}

	table := router.Table()
	for i, body := range corpus {
		key, err := RequestKey(body)
		if err != nil {
			t.Fatal(err)
		}
		wantBackend, _ := table.Pick(key[:], "")

		resp, routed := post(t, rts.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("corpus %d: routed status %d: %s", i, resp.StatusCode, routed)
		}
		if got := resp.Header.Get("X-Emts-Backend"); got != wantBackend.ID {
			t.Fatalf("corpus %d: served by %s, rendezvous choice is %s", i, got, wantBackend.ID)
		}
		if got := resp.Header.Get("X-Emts-Instance"); got != wantBackend.ID {
			t.Fatalf("corpus %d: instance header %s, want %s", i, got, wantBackend.ID)
		}

		// Byte identity against every backend served directly: the response
		// body is a pure function of the request, so N direct answers and the
		// routed one must all be equal.
		for _, rb := range backends {
			dresp, direct := post(t, rb.ts.URL, body)
			if dresp.StatusCode != http.StatusOK {
				t.Fatalf("corpus %d: direct status %d on %s", i, dresp.StatusCode, rb.b.ID)
			}
			if !bytes.Equal(routed, direct) {
				t.Fatalf("corpus %d: routed response differs from %s direct:\n%s\nvs\n%s", i, rb.b.ID, routed, direct)
			}
		}

		// Stability: the repeat goes to the same backend and replays its
		// response cache.
		resp2, _ := post(t, rts.URL, body)
		if got := resp2.Header.Get("X-Emts-Backend"); got != wantBackend.ID {
			t.Fatalf("corpus %d: repeat served by %s, want %s", i, got, wantBackend.ID)
		}
		if resp2.Header.Get("X-Emts-Cache") != "hit" {
			t.Fatalf("corpus %d: repeat missed the response cache", i)
		}
	}

	// Every backend the rendezvous table assigns at least one corpus key to
	// must show traffic — and no assertion above passed vacuously.
	owners := make(map[string]bool)
	for _, body := range corpus {
		key, _ := RequestKey(body)
		b, _ := table.Pick(key[:], "")
		owners[b.ID] = true
	}
	if len(owners) < 2 {
		t.Fatalf("corpus hashed onto %d backend(s); broaden it", len(owners))
	}
	metrics := scrape(t, rts.URL)
	for _, rb := range backends {
		if owners[rb.b.ID] && !strings.Contains(metrics, fmt.Sprintf("emts_router_ok_total{backend=%q}", rb.b.ID)) {
			t.Fatalf("backend %s owns corpus keys but served nothing:\n%s", rb.b.ID, metrics)
		}
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRouterEjectionLifecycle drives a backend through
// healthy → ejected → re-admitted via a stubbed probe and asserts the
// routing table, the counters, and the consecutive-failure thresholds.
func TestRouterEjectionLifecycle(t *testing.T) {
	var mu sync.Mutex
	down := map[string]bool{}
	setDown := func(id string, v bool) { mu.Lock(); down[id] = v; mu.Unlock() }

	members := []Backend{{ID: "a", URL: "http://a"}, {ID: "b", URL: "http://b"}, {ID: "c", URL: "http://c"}}
	router, err := New(Config{Backends: members, Health: HealthConfig{
		Interval:     2 * time.Millisecond,
		EjectAfter:   3,
		ReadmitAfter: 2,
		Probe: func(_ context.Context, b Backend) error {
			mu.Lock()
			defer mu.Unlock()
			if down[b.ID] {
				return ErrBackendDraining
			}
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Shutdown(context.Background())

	if router.Table().Len() != 3 {
		t.Fatalf("initial table %d, want 3 (backends start healthy)", router.Table().Len())
	}

	setDown("b", true)
	waitFor(t, "ejection of b", func() bool { return router.Table().Len() == 2 })
	if router.Healthy()["b"] {
		t.Fatal("b still marked healthy after ejection")
	}
	for _, bk := range router.Table().Backends() {
		if bk.ID == "b" {
			t.Fatal("ejected backend still in the table")
		}
	}

	setDown("b", false)
	waitFor(t, "re-admission of b", func() bool { return router.Table().Len() == 3 })
	ej, re, rb := router.Checker().Stats()
	if ej != 1 || re != 1 || rb != 2 {
		t.Fatalf("stats ejections=%d readmissions=%d rebalances=%d, want 1/1/2", ej, re, rb)
	}
}

// TestRouterRetryOnRefused kills the rendezvous choice for a key and asserts
// the request replays onto the next choice — before the health checker has
// had any chance to react.
func TestRouterRetryOnRefused(t *testing.T) {
	backends := startBackends(t, 2, server.Config{})
	members := []Backend{backends[0].b, backends[1].b}
	router, err := New(Config{Backends: members, Health: HealthConfig{Interval: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Shutdown(context.Background())
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	body := scheduleBody(t, "fft4", "cpa", 1)
	key, _ := RequestKey(body)
	first, _ := router.Table().Pick(key[:], "")
	second, _ := router.Table().Pick(key[:], first.ID)

	// Kill the first choice's listener: connections now refuse instantly.
	for _, rb := range backends {
		if rb.b.ID == first.ID {
			rb.ts.Close()
		}
	}

	resp, routed := post(t, rts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after retry: %s", resp.StatusCode, routed)
	}
	if got := resp.Header.Get("X-Emts-Backend"); got != second.ID {
		t.Fatalf("served by %s, want the next rendezvous choice %s", got, second.ID)
	}
	if !strings.Contains(scrape(t, rts.URL), "emts_router_retries_total 1") {
		t.Fatal("retry not counted")
	}
}

// TestRouterNoBackends pins the empty-table behavior: readyz 503 and
// schedule 503 with the sentinel message.
func TestRouterNoBackends(t *testing.T) {
	router, err := New(Config{Backends: []Backend{{ID: "a", URL: "http://a"}}, Health: HealthConfig{
		Interval:   2 * time.Millisecond,
		EjectAfter: 1,
		Probe:      func(context.Context, Backend) error { return errBackendStatus },
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Shutdown(context.Background())
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	waitFor(t, "ejection of the only backend", func() bool { return router.Table().Len() == 0 })

	resp, err := http.Get(rts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with empty table: %d, want 503", resp.StatusCode)
	}
	sresp, body := post(t, rts.URL, scheduleBody(t, "fft4", "cpa", 1))
	if sresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "no healthy backends") {
		t.Fatalf("schedule with empty table: %d %s", sresp.StatusCode, body)
	}
}

// TestRouterDrain asserts Shutdown flips readiness and completes.
func TestRouterDrain(t *testing.T) {
	backends := startBackends(t, 1, server.Config{})
	router, err := New(Config{Backends: []Backend{backends[0].b}, Health: HealthConfig{Interval: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := router.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	resp, err := http.Get(rts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d, want 503", resp.StatusCode)
	}
}

// TestRouterForwardsAlgorithms pins the round-robin forwarding of
// non-schedule endpoints.
func TestRouterForwardsAlgorithms(t *testing.T) {
	backends := startBackends(t, 2, server.Config{})
	router, err := New(Config{Backends: []Backend{backends[0].b, backends[1].b}, Health: HealthConfig{Interval: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Shutdown(context.Background())
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	resp, err := http.Get(rts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "algorithms") {
		t.Fatalf("algorithms via router: %d %s", resp.StatusCode, b)
	}
}
