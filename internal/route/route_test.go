package route

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"emts/internal/intern"
)

// testBackends builds n synthetic backends b0..b(n-1).
func testBackends(n int) []Backend {
	out := make([]Backend, n)
	for i := range out {
		out[i] = Backend{ID: fmt.Sprintf("b%d", i), URL: fmt.Sprintf("http://b%d", i)}
	}
	return out
}

// testKeys derives nk deterministic digests.
func testKeys(nk int) [][32]byte {
	keys := make([][32]byte, nk)
	for i := range keys {
		keys[i] = intern.RawKey([]byte(fmt.Sprintf("graph-%d", i)))
	}
	return keys
}

// TestPickOrderIndependence is the satellite property test: the rendezvous
// choice depends only on (key, backend ID) — never on the order the backend
// list was given in, and never on GOMAXPROCS or concurrent callers.
func TestPickOrderIndependence(t *testing.T) {
	backends := testBackends(7)
	keys := testKeys(500)

	ref, err := NewTable(backends)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(keys))
	for i, k := range keys {
		b, ok := ref.Pick(k[:], "")
		if !ok {
			t.Fatal("Pick found nothing on a 7-backend table")
		}
		want[i] = b.ID
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		shuffled := make([]Backend, len(backends))
		copy(shuffled, backends)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		tab, err := NewTable(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			if b, _ := tab.Pick(k[:], ""); b.ID != want[i] {
				t.Fatalf("trial %d key %d: pick %s after shuffle, want %s", trial, i, b.ID, want[i])
			}
		}
	}
}

// TestPickGOMAXPROCSIndependence exercises Pick from many goroutines at
// GOMAXPROCS 1 and 8 and asserts every caller sees the sequential answer:
// the table is immutable and the score is a pure function, so parallelism
// must be invisible.
func TestPickGOMAXPROCSIndependence(t *testing.T) {
	backends := testBackends(5)
	keys := testKeys(300)
	tab, err := NewTable(backends)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(keys))
	for i, k := range keys {
		b, _ := tab.Pick(k[:], "")
		want[i] = b.ID
	}

	for _, procs := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(procs)
		var wg sync.WaitGroup
		errs := make(chan string, 16)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, k := range keys {
					if b, _ := tab.Pick(k[:], ""); b.ID != want[i] {
						select {
						case errs <- fmt.Sprintf("GOMAXPROCS=%d key %d: %s != %s", procs, i, b.ID, want[i]):
						default:
						}
						return
					}
				}
			}()
		}
		wg.Wait()
		runtime.GOMAXPROCS(prev)
		close(errs)
		if msg, ok := <-errs; ok {
			t.Fatal(msg)
		}
	}
}

// TestMembershipStability asserts the rendezvous minimal-disruption
// property: removing a backend remaps exactly the keys it owned; adding one
// moves ~1/(N+1) of the keys, all of them onto the new member.
func TestMembershipStability(t *testing.T) {
	backends := testBackends(5)
	keys := testKeys(2000)
	full, err := NewTable(backends)
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]string, len(keys))
	for i, k := range keys {
		b, _ := full.Pick(k[:], "")
		owner[i] = b.ID
	}

	// Removal: only keys owned by the removed backend may move, and all of
	// them must (their owner is gone). Pick with exclude must agree with a
	// table built without the member — the retry path depends on this.
	for _, removed := range backends {
		var rest []Backend
		for _, b := range backends {
			if b.ID != removed.ID {
				rest = append(rest, b)
			}
		}
		sub, err := NewTable(rest)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			got, _ := sub.Pick(k[:], "")
			if owner[i] != removed.ID && got.ID != owner[i] {
				t.Fatalf("remove %s: key %d moved %s -> %s though its owner stayed", removed.ID, i, owner[i], got.ID)
			}
			if owner[i] == removed.ID && got.ID == removed.ID {
				t.Fatalf("remove %s: key %d still routed to the removed backend", removed.ID, i)
			}
			if excl, _ := full.Pick(k[:], removed.ID); excl.ID != got.ID {
				t.Fatalf("remove %s: Pick(exclude) %s disagrees with the shrunk table %s", removed.ID, excl.ID, got.ID)
			}
		}
	}

	// Addition: every moved key must land on the newcomer, and the moved
	// fraction must be near 1/(N+1) = 1/6 (binomial over 2000 keys; the
	// 10–24% window is ±6 sigma).
	grown, err := NewTable(append(testBackends(5), Backend{ID: "fresh", URL: "http://fresh"}))
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i, k := range keys {
		got, _ := grown.Pick(k[:], "")
		if got.ID != owner[i] {
			if got.ID != "fresh" {
				t.Fatalf("add fresh: key %d moved %s -> %s, not onto the new backend", i, owner[i], got.ID)
			}
			moved++
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.24 {
		t.Fatalf("add fresh: %.1f%% of keys moved, want ~16.7%%", 100*frac)
	}
}

// TestRankIsPermutation checks Rank returns every backend exactly once with
// Pick as its head, so retry order == rank order.
func TestRankIsPermutation(t *testing.T) {
	tab, err := NewTable(testBackends(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(50) {
		rank := tab.Rank(k[:])
		if len(rank) != 6 {
			t.Fatalf("rank length %d", len(rank))
		}
		seen := make(map[string]bool)
		for _, b := range rank {
			if seen[b.ID] {
				t.Fatalf("rank repeats %s", b.ID)
			}
			seen[b.ID] = true
		}
		head, _ := tab.Pick(k[:], "")
		if head.ID != rank[0].ID {
			t.Fatalf("Pick %s != Rank head %s", head.ID, rank[0].ID)
		}
		second, _ := tab.Pick(k[:], head.ID)
		if second.ID != rank[1].ID {
			t.Fatalf("Pick(exclude head) %s != Rank[1] %s", second.ID, rank[1].ID)
		}
	}
}

// TestNewTableRejectsDuplicates pins the identity rule.
func TestNewTableRejectsDuplicates(t *testing.T) {
	if _, err := NewTable([]Backend{{ID: "a"}, {ID: "a"}}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	tab, err := NewTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.Pick([]byte("k"), ""); ok {
		t.Fatal("empty table picked a backend")
	}
}

// TestRequestKey pins that the routing key is the graph intern's raw-bytes
// digest of the graph field — the affinity contract with internal/server.
func TestRequestKey(t *testing.T) {
	graph := []byte(`{"tasks":[{"id":"t1","work":1}]}`)
	body := append(append([]byte(`{"graph":`), graph...), []byte(`,"algorithm":"cpa","seed":7}`)...)
	key, err := RequestKey(body)
	if err != nil {
		t.Fatalf("RequestKey: %v", err)
	}
	if key != intern.RawKey(graph) {
		t.Fatal("routing key differs from intern.RawKey over the graph bytes")
	}
	// Same graph under different request parameters routes identically.
	body2 := append(append([]byte(`{"graph":`), graph...), []byte(`,"algorithm":"emts5","seed":8}`)...)
	key2, err := RequestKey(body2)
	if err != nil || key2 != key {
		t.Fatalf("same graph, different params: keys differ (%v)", err)
	}
	// No graph: deterministic whole-body fallback plus the sentinel.
	if _, err := RequestKey([]byte(`{"algorithm":"cpa"}`)); err != ErrNoGraph {
		t.Fatalf("no-graph error = %v, want ErrNoGraph", err)
	}
}

// TestJobKey pins the id-addressed affinity contract: the graph digest a
// submit was routed by is recoverable from every /v1/jobs/{id}[/...] path,
// so polls, SSE subscriptions, and cancels hash onto the same backend.
func TestJobKey(t *testing.T) {
	graph := []byte(`{"tasks":[{"id":"t1","work":1}]}`)
	body := append(append([]byte(`{"graph":`), graph...), []byte(`,"algorithm":"emts5","seed":7}`)...)
	want, err := RequestKey(body)
	if err != nil {
		t.Fatal(err)
	}
	id := hex.EncodeToString(want[:]) + "-" + "aabbccdd"
	for _, path := range []string{
		"/v1/jobs/" + id,
		"/v1/jobs/" + id + "/events",
		"/v1/jobs/" + id + "/result",
	} {
		key, ok := JobKey(path)
		if !ok {
			t.Fatalf("JobKey(%q) not ok", path)
		}
		if key != want {
			t.Fatalf("JobKey(%q) differs from the submit's RequestKey", path)
		}
	}

	// Malformed ids fall back to a deterministic whole-path digest: the same
	// path keeps hitting one backend (which owns the authoritative 404).
	for _, path := range []string{
		"/v1/jobs/short-id",
		"/v1/jobs/" + strings.Repeat("zz", 32) + "-x", // right length, not hex
		"/v1/schedule",
	} {
		k1, ok := JobKey(path)
		if ok {
			t.Fatalf("JobKey(%q) ok on malformed path", path)
		}
		k2, _ := JobKey(path)
		if k1 != k2 {
			t.Fatalf("JobKey(%q) not deterministic", path)
		}
	}
}
