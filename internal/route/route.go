// Package route is the horizontal scale-out tier of the scheduling service
// (DESIGN.md §15): rendezvous hashing of schedule requests onto a set of
// emts-serve backends, backend health tracking with ejection and
// re-admission, and a stateless reverse proxy (cmd/emts-router) built on
// both.
//
// # Why shard by content digest
//
// PR 5 made a single emts-serve process fast by making its caches
// content-addressed: the graph intern is keyed by the SHA-256 of the raw
// submitted graph bytes, and the table and response caches key off the
// canonical digest derived from it. Round-robin load balancing over N such
// processes duplicates every working set N times — each backend's bounded
// LRUs must hold *all* hot graphs, so the aggregate effective cache capacity
// stays at one backend's worth. Hashing each request's graph digest onto a
// stable backend instead partitions the key space: backend i only ever sees
// ~1/N of the graphs, its LRUs stay hot for exactly that range, and
// aggregate cache capacity scales with N. The router computes the digest
// with intern.RawKey — the very function the backend's graph intern uses —
// so the routing key and the cache key are the same bytes by construction.
//
// # Why rendezvous (highest-random-weight) hashing
//
// Rendezvous hashing scores every (key, backend) pair independently and
// picks the maximum, which gives the two properties the tier needs with no
// ring state at all: membership changes are minimal (removing a backend
// remaps only the keys it owned, ~1/N; adding one steals ~1/(N+1) from the
// others and nothing else moves), and the per-key preference order is a
// deterministic permutation of the backends — the retry path simply takes
// the next-highest score. Scores depend only on (key, backend ID), never on
// list order; ties break toward the lexicographically smaller ID so the
// choice is total.
package route

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"strings"

	"emts/internal/intern"
)

// Sentinel errors of the routing tier. The proxy hot path classifies every
// failure into one of these (sentinelerr discipline, DESIGN.md §14): no
// per-request error values are constructed while serving.
var (
	// ErrNoBackends means the healthy set is empty: every backend is ejected
	// or the router was started with none.
	ErrNoBackends = errors.New("route: no healthy backends")
	// ErrNoGraph means the request body carried no graph field to hash.
	ErrNoGraph = errors.New("route: request has no graph field")
)

// Backend is one emts-serve instance.
type Backend struct {
	// ID is the stable identity rendezvous scores hash over — the listen
	// address as given on the command line. Renaming a backend reshuffles
	// its key range; restarting it at the same address does not.
	ID string
	// URL is the base URL requests are forwarded to (scheme + host:port).
	URL string
}

// Table is an immutable rendezvous view of a backend set. The zero value is
// an empty table; build real ones with NewTable. Health transitions swap
// whole tables atomically (see Checker), so a request that captured a table
// keeps routing against that snapshot even while the membership changes —
// this is what makes rebalances graceful for in-flight work.
type Table struct {
	backends []Backend // sorted by ID, IDs unique
}

// NewTable builds a table over the given backends. The input slice is
// copied; order is irrelevant (scores are per-pair and the copy is sorted by
// ID). Duplicate IDs are an error: two backends with one identity would
// shadow each other's key range.
func NewTable(backends []Backend) (*Table, error) {
	t := &Table{backends: make([]Backend, len(backends))}
	copy(t.backends, backends)
	// Insertion sort by ID: the set is a handful of entries and this keeps
	// the package dependency-free on the hot structs.
	for i := 1; i < len(t.backends); i++ {
		for j := i; j > 0 && t.backends[j].ID < t.backends[j-1].ID; j-- {
			t.backends[j], t.backends[j-1] = t.backends[j-1], t.backends[j]
		}
	}
	for i := 1; i < len(t.backends); i++ {
		if t.backends[i].ID == t.backends[i-1].ID {
			return nil, errors.New("route: duplicate backend id " + t.backends[i].ID)
		}
	}
	return t, nil
}

// Len reports the number of backends in the table.
func (t *Table) Len() int { return len(t.backends) }

// Backends returns a copy of the member set in ID order.
func (t *Table) Backends() []Backend {
	out := make([]Backend, len(t.backends))
	copy(out, t.backends)
	return out
}

// FNV-1a 64-bit parameters (hash/fnv unrolled so the scoring loop stays
// call-free and inlinable under the hotescape budget).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fmix64 is the MurmurHash3 finalizer. Raw FNV-1a is not enough for
// rendezvous scoring: backend IDs that share a prefix ("b0".."b4") differ
// only in the last absorbed byte, so their scores land within ~|Δbyte|·prime
// of each other — the whole set behaves like ONE random draw, and a new
// backend with an independent score steals ~half the keys instead of
// ~1/(N+1) (caught by TestMembershipStability). Full avalanche on the final
// state makes any single-bit input difference flip every output bit with
// probability 1/2, restoring independent per-pair scores.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Pick returns the rendezvous choice for key among backends whose ID is not
// exclude. The first attempt passes exclude == ""; the retry-on-refused path
// passes the failed backend's ID and lands on the next-highest score — the
// same backend a table without the failed member would have chosen. The
// boolean is false when no eligible backend exists.
//
// Scores are FNV-1a over the key bytes followed by the backend ID bytes,
// passed through the fmix64 avalanche finalizer, so a pair's score is
// independent of every other backend and of list order; equal scores break
// toward the smaller ID.
//
//schedlint:hotpath
func (t *Table) Pick(key []byte, exclude string) (Backend, bool) {
	var (
		best      Backend
		bestScore uint64
		found     bool
	)
	// Key prefix hashed once, shared by every backend's score.
	h0 := uint64(fnvOffset64)
	for _, b := range key {
		h0 = (h0 ^ uint64(b)) * fnvPrime64
	}
	for i := range t.backends {
		b := &t.backends[i]
		if b.ID == exclude {
			continue
		}
		h := h0
		for j := 0; j < len(b.ID); j++ {
			h = (h ^ uint64(b.ID[j])) * fnvPrime64
		}
		h = fmix64(h)
		if !found || h > bestScore || (h == bestScore && b.ID < best.ID) {
			best, bestScore, found = *b, h, true
		}
	}
	return best, found
}

// Rank returns the full per-key preference order (cold path: tests and
// diagnostics; the proxy only ever needs the first one or two choices via
// Pick).
func (t *Table) Rank(key []byte) []Backend {
	out := make([]Backend, 0, len(t.backends))
	excluded := make(map[string]bool, len(t.backends))
	for len(out) < len(t.backends) {
		var best Backend
		var bestScore uint64
		found := false
		h0 := uint64(fnvOffset64)
		for _, b := range key {
			h0 = (h0 ^ uint64(b)) * fnvPrime64
		}
		for i := range t.backends {
			b := &t.backends[i]
			if excluded[b.ID] {
				continue
			}
			h := h0
			for j := 0; j < len(b.ID); j++ {
				h = (h ^ uint64(b.ID[j])) * fnvPrime64
			}
			h = fmix64(h)
			if !found || h > bestScore || (h == bestScore && b.ID < best.ID) {
				best, bestScore, found = *b, h, true
			}
		}
		excluded[best.ID] = true
		out = append(out, best)
	}
	return out
}

// graphEnvelope extracts only the graph member of a schedule request; every
// other field is left to the backend's full validation.
type graphEnvelope struct {
	Graph json.RawMessage `json:"graph"`
}

// RequestKey computes the routing key for a raw /v1/schedule body: the exact
// digest the backend's graph intern will look the graph up under
// (intern.RawKey over the graph field's raw bytes). A body with no graph
// field returns ErrNoGraph — the router then routes by the whole body so the
// chosen backend can produce the authoritative 400; validation stays
// single-sourced in internal/server.
func RequestKey(body []byte) ([32]byte, error) {
	var env graphEnvelope
	if err := json.Unmarshal(body, &env); err != nil || len(env.Graph) == 0 {
		return intern.RawKey(body), ErrNoGraph
	}
	return intern.RawKey(env.Graph), nil
}

// JobKey recovers the affinity key from a /v1/jobs/{id}[/...] path. Job ids
// lead with the hex digest of the raw graph bytes — the exact key RequestKey
// hashed when the submit was routed — so polls, SSE subscriptions, and
// cancels land on the backend that owns the job without the router keeping
// any state. A malformed path falls back to a digest of the whole path:
// still deterministic (equal paths keep hitting one backend, which owns the
// authoritative 404), reported by ok == false.
func JobKey(path string) (key [32]byte, ok bool) {
	const prefix = "/v1/jobs/"
	rest, found := strings.CutPrefix(path, prefix)
	if !found {
		return intern.RawKey([]byte(path)), false
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i] // strip /events, /result
	}
	if i := strings.IndexByte(rest, '-'); i >= 0 {
		rest = rest[:i] // keep the leading graph-digest segment
	}
	if len(rest) != 2*len(key) {
		return intern.RawKey([]byte(path)), false
	}
	if _, err := hex.Decode(key[:], []byte(rest)); err != nil {
		return intern.RawKey([]byte(path)), false
	}
	return key, true
}
