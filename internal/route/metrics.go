package route

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// proxyBuckets are the upper bounds (seconds) of the per-backend latency
// histograms — the same spread internal/server uses, so router-side and
// backend-side latency panels line up bucket for bucket.
var proxyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// backendMetrics aggregates one backend's proxied traffic. Guarded by the
// owning routerMetrics mutex.
type backendMetrics struct {
	codes map[int]uint64 // HTTP status of proxied responses (-1 = transport error)
	// latency histogram over successfully proxied requests (any status).
	counts []uint64
	sum    float64
	total  uint64
	// Affinity accounting, from the backend's response headers: how many 200s
	// replayed the response cache, and how many found their graph/table
	// already interned. High rates here are the whole point of digest routing.
	ok          uint64
	cacheHits   uint64
	internGraph uint64
	internTable uint64
}

// routerMetrics is the router's hand-rolled instrument registry, rendered in
// Prometheus text exposition format (stdlib-only, deterministic series
// order, like internal/server's).
type routerMetrics struct {
	mu       sync.Mutex
	backends map[string]*backendMetrics

	retries   atomic.Uint64 // connection-refused retries onto the next choice
	noBackend atomic.Uint64 // requests refused because the healthy set was empty

	// Sampled at scrape time.
	checker *Checker
}

func newRouterMetrics(checker *Checker) *routerMetrics {
	return &routerMetrics{backends: make(map[string]*backendMetrics), checker: checker}
}

// observe records one proxied request: the backend it landed on, the
// response status (-1 for transport errors), the latency, and the affinity
// headers of a 200.
func (m *routerMetrics) observe(backendID string, code int, seconds float64, cache, interned string) {
	m.mu.Lock()
	bm := m.backends[backendID]
	if bm == nil {
		bm = &backendMetrics{codes: make(map[int]uint64), counts: make([]uint64, len(proxyBuckets))}
		m.backends[backendID] = bm
	}
	bm.codes[code]++
	if code >= 0 {
		for i, ub := range proxyBuckets {
			if seconds <= ub {
				bm.counts[i]++
				break
			}
		}
		bm.sum += seconds
		bm.total++
	}
	if code == 200 {
		bm.ok++
		if cache == "hit" {
			bm.cacheHits++
		}
		switch interned {
		case "graph":
			bm.internGraph++
		case "table":
			bm.internTable++
		case "graph,table":
			bm.internGraph++
			bm.internTable++
		}
	}
	m.mu.Unlock()
}

// WriteTo renders the registry; two scrapes of the same state are
// byte-identical (sorted backend and code order).
func (m *routerMetrics) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	m.mu.Lock()
	defer m.mu.Unlock()

	ids := make([]string, 0, len(m.backends))
	for id := range m.backends {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	fmt.Fprintln(cw, "# HELP emts_router_requests_total Proxied requests by backend and status (-1 = transport error).")
	fmt.Fprintln(cw, "# TYPE emts_router_requests_total counter")
	for _, id := range ids {
		bm := m.backends[id]
		codes := make([]int, 0, len(bm.codes))
		for c := range bm.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(cw, "emts_router_requests_total{backend=%q,code=%q} %d\n", id, strconv.Itoa(c), bm.codes[c])
		}
	}

	fmt.Fprintln(cw, "# HELP emts_router_request_duration_seconds Latency of proxied requests by backend.")
	fmt.Fprintln(cw, "# TYPE emts_router_request_duration_seconds histogram")
	for _, id := range ids {
		bm := m.backends[id]
		cum := uint64(0)
		for i, ub := range proxyBuckets {
			cum += bm.counts[i]
			fmt.Fprintf(cw, "emts_router_request_duration_seconds_bucket{backend=%q,le=%q} %d\n",
				id, strconv.FormatFloat(ub, 'g', -1, 64), cum)
		}
		fmt.Fprintf(cw, "emts_router_request_duration_seconds_bucket{backend=%q,le=\"+Inf\"} %d\n", id, bm.total)
		fmt.Fprintf(cw, "emts_router_request_duration_seconds_sum{backend=%q} %g\n", id, bm.sum)
		fmt.Fprintf(cw, "emts_router_request_duration_seconds_count{backend=%q} %d\n", id, bm.total)
	}

	fmt.Fprintln(cw, "# HELP emts_router_affinity_cache_hits_total Proxied 200s served from the backend response cache.")
	fmt.Fprintln(cw, "# TYPE emts_router_affinity_cache_hits_total counter")
	for _, id := range ids {
		fmt.Fprintf(cw, "emts_router_affinity_cache_hits_total{backend=%q} %d\n", id, m.backends[id].cacheHits)
	}
	fmt.Fprintln(cw, "# HELP emts_router_affinity_interned_total Proxied 200s whose graph/table was already interned on the backend.")
	fmt.Fprintln(cw, "# TYPE emts_router_affinity_interned_total counter")
	for _, id := range ids {
		fmt.Fprintf(cw, "emts_router_affinity_interned_total{backend=%q,kind=\"graph\"} %d\n", id, m.backends[id].internGraph)
		fmt.Fprintf(cw, "emts_router_affinity_interned_total{backend=%q,kind=\"table\"} %d\n", id, m.backends[id].internTable)
	}
	fmt.Fprintln(cw, "# HELP emts_router_ok_total Proxied 200s by backend (denominator for the affinity rates).")
	fmt.Fprintln(cw, "# TYPE emts_router_ok_total counter")
	for _, id := range ids {
		fmt.Fprintf(cw, "emts_router_ok_total{backend=%q} %d\n", id, m.backends[id].ok)
	}

	fmt.Fprintln(cw, "# HELP emts_router_retries_total Connection-refused retries replayed onto the next rendezvous choice.")
	fmt.Fprintln(cw, "# TYPE emts_router_retries_total counter")
	fmt.Fprintf(cw, "emts_router_retries_total %d\n", m.retries.Load())
	fmt.Fprintln(cw, "# HELP emts_router_no_backend_total Requests refused because no backend was healthy.")
	fmt.Fprintln(cw, "# TYPE emts_router_no_backend_total counter")
	fmt.Fprintf(cw, "emts_router_no_backend_total %d\n", m.noBackend.Load())

	if m.checker != nil {
		ej, re, rb := m.checker.Stats()
		fmt.Fprintln(cw, "# HELP emts_router_ejections_total Backends ejected after consecutive failed health probes.")
		fmt.Fprintln(cw, "# TYPE emts_router_ejections_total counter")
		fmt.Fprintf(cw, "emts_router_ejections_total %d\n", ej)
		fmt.Fprintln(cw, "# HELP emts_router_readmissions_total Ejected backends re-admitted after consecutive probe successes.")
		fmt.Fprintln(cw, "# TYPE emts_router_readmissions_total counter")
		fmt.Fprintf(cw, "emts_router_readmissions_total %d\n", re)
		fmt.Fprintln(cw, "# HELP emts_router_rebalance_total Routing-table swaps (any membership transition).")
		fmt.Fprintln(cw, "# TYPE emts_router_rebalance_total counter")
		fmt.Fprintf(cw, "emts_router_rebalance_total %d\n", rb)

		healthy := m.checker.Healthy()
		hids := make([]string, 0, len(healthy))
		for id := range healthy {
			hids = append(hids, id)
		}
		sort.Strings(hids)
		fmt.Fprintln(cw, "# HELP emts_router_backend_healthy Backend health verdict (1 = in the routing table).")
		fmt.Fprintln(cw, "# TYPE emts_router_backend_healthy gauge")
		for _, id := range hids {
			v := 0
			if healthy[id] {
				v = 1
			}
			fmt.Fprintf(cw, "emts_router_backend_healthy{backend=%q} %d\n", id, v)
		}
	}

	return cw.n, cw.err
}

// countingWriter tracks bytes written and the first error (io.WriterTo
// shape, as in internal/server).
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}
