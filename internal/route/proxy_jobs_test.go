package route

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"emts/internal/server"
)

// jobEnvelope mirrors the server's job status body (client-side view).
type jobEnvelope struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// TestRouterJobsAffinity is the routed async-job lifecycle: the submit is
// routed by graph digest exactly like /v1/schedule, every id-addressed
// follow-up (poll, SSE subscribe, result, cancel) lands on the same backend,
// the SSE stream passes through unbuffered to completion, and the routed
// result is byte-identical to the owning backend's direct answer.
func TestRouterJobsAffinity(t *testing.T) {
	backends := startBackends(t, 3, server.Config{SSEKeepAlive: time.Hour})
	var members []Backend
	byID := make(map[string]realBackend)
	for _, rb := range backends {
		members = append(members, rb.b)
		byID[rb.b.ID] = rb
	}
	router, err := New(Config{Backends: members, Health: HealthConfig{Interval: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Shutdown(context.Background())
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()
	table := router.Table()

	for i, spec := range []string{"fft4", "fft8", "strassen"} {
		body := scheduleBody(t, spec, "emts5", int64(100+i))
		key, err := RequestKey(body)
		if err != nil {
			t.Fatal(err)
		}
		owner, _ := table.Pick(key[:], "")

		// Submit through the router: routed by the same digest as /v1/schedule.
		resp, err := http.Post(rts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		sb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: submit status %d: %s", spec, resp.StatusCode, sb)
		}
		if got := resp.Header.Get("X-Emts-Backend"); got != owner.ID {
			t.Fatalf("%s: submit served by %s, rendezvous choice is %s", spec, got, owner.ID)
		}
		if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
			t.Fatalf("%s: Location %q not forwarded", spec, loc)
		}
		var env jobEnvelope
		if err := json.Unmarshal(sb, &env); err != nil {
			t.Fatalf("%s: envelope: %v (%s)", spec, err, sb)
		}

		// The id embeds the routing key: every id-addressed path recovers it.
		jk, ok := JobKey("/v1/jobs/" + env.ID + "/events")
		if !ok || jk != key {
			t.Fatalf("%s: JobKey over the returned id diverges from the submit key (ok=%v)", spec, ok)
		}

		// SSE through the router: streamed to the terminal event.
		eresp, err := http.Get(rts.URL + "/v1/jobs/" + env.ID + "/events")
		if err != nil {
			t.Fatal(err)
		}
		if got := eresp.Header.Get("X-Emts-Backend"); got != owner.ID {
			t.Fatalf("%s: events served by %s, want %s", spec, got, owner.ID)
		}
		if ct := eresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
			t.Fatalf("%s: events Content-Type %q", spec, ct)
		}
		if xab := eresp.Header.Get("X-Accel-Buffering"); xab != "no" {
			t.Fatalf("%s: X-Accel-Buffering %q not forwarded", spec, xab)
		}
		sawDone := false
		sc := bufio.NewScanner(eresp.Body)
		for sc.Scan() {
			if sc.Text() == "event: done" {
				sawDone = true
			}
			if sawDone && sc.Text() == "" {
				break
			}
		}
		eresp.Body.Close()
		if !sawDone {
			t.Fatalf("%s: SSE stream through router ended without done event", spec)
		}

		// Poll and result through the router land on the owner; the routed
		// result matches the owner's direct bytes.
		presp, err := http.Get(rts.URL + "/v1/jobs/" + env.ID)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, presp.Body)
		presp.Body.Close()
		if got := presp.Header.Get("X-Emts-Backend"); presp.StatusCode != http.StatusOK || got != owner.ID {
			t.Fatalf("%s: poll status %d via %s, want 200 via %s", spec, presp.StatusCode, got, owner.ID)
		}

		rresp, err := http.Get(rts.URL + "/v1/jobs/" + env.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		routed, _ := io.ReadAll(rresp.Body)
		rresp.Body.Close()
		if rresp.StatusCode != http.StatusOK {
			t.Fatalf("%s: result status %d: %s", spec, rresp.StatusCode, routed)
		}
		dresp, err := http.Get(byID[owner.ID].ts.URL + "/v1/jobs/" + env.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		direct, _ := io.ReadAll(dresp.Body)
		dresp.Body.Close()
		if !bytes.Equal(routed, direct) {
			t.Fatalf("%s: routed result differs from the owner's direct answer", spec)
		}

		// Purge through the router, then the owner answers the 404 itself.
		dreq, _ := http.NewRequest(http.MethodDelete, rts.URL+"/v1/jobs/"+env.ID+"?purge=1", nil)
		delResp, err := http.DefaultClient.Do(dreq)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, delResp.Body)
		delResp.Body.Close()
		if delResp.StatusCode != http.StatusOK {
			t.Fatalf("%s: purge status %d", spec, delResp.StatusCode)
		}
		gresp, err := http.Get(rts.URL + "/v1/jobs/" + env.ID)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, gresp.Body)
		gresp.Body.Close()
		if gresp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: purged job answered %d via router, want 404", spec, gresp.StatusCode)
		}
		if got := gresp.Header.Get("X-Emts-Backend"); got != owner.ID {
			t.Fatalf("%s: 404 answered by %s, authoritative owner is %s", spec, got, owner.ID)
		}
	}
}

// TestRouterSSEOutlivesUpstreamTimeout pins the streaming client split: an
// SSE subscription must survive past the router's UpstreamTimeout (which
// bounds ordinary proxied requests) as long as the job is still running.
func TestRouterSSEOutlivesUpstreamTimeout(t *testing.T) {
	backends := startBackends(t, 1, server.Config{SSEKeepAlive: 50 * time.Millisecond})
	router, err := New(Config{
		Backends:        []Backend{backends[0].b},
		Health:          HealthConfig{Interval: time.Hour},
		UpstreamTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Shutdown(context.Background())
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	body := scheduleBody(t, "fft8", "emts10", 777)
	resp, err := http.Post(rts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, sb)
	}
	var env jobEnvelope
	if err := json.Unmarshal(sb, &env); err != nil {
		t.Fatal(err)
	}

	// A Last-Event-ID beyond the log's end makes the (finished) job's stream
	// emit nothing but keep-alive comments: an idle stream we can hold open
	// across several keep-alive periods, all beyond the 200ms upstream
	// timeout. A router that ran SSE through its ordinary timed client would
	// cut it at ~200ms.
	req, _ := http.NewRequest(http.MethodGet, rts.URL+"/v1/jobs/"+env.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "1000000")
	eresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", eresp.StatusCode)
	}
	deadline := time.Now().Add(600 * time.Millisecond) // 3x the upstream timeout
	sc := bufio.NewScanner(eresp.Body)
	keepalives := 0
	for time.Now().Before(deadline) && sc.Scan() {
		if strings.HasPrefix(sc.Text(), ":") {
			keepalives++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream died within the upstream-timeout window: %v (after %d keep-alives)", err, keepalives)
	}
	if keepalives < 2 {
		t.Fatalf("saw %d keep-alives across the window, want >= 2 (stream cut early?)", keepalives)
	}
}
