package route

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBackendDraining classifies a /readyz probe that answered but reported
// draining (503, or a 200 whose JSON body says draining — belt and braces:
// the status code is the contract, the body is detail).
var ErrBackendDraining = errors.New("route: backend draining")

// errBackendStatus classifies any other non-200 probe answer.
var errBackendStatus = errors.New("route: backend not ready")

// readyzBody is the JSON detail internal/server's /readyz emits
// ({"draining":bool,"queue_depth":n,"inflight":n}). Older backends answer
// plain text; the decoder failing is not a probe failure.
type readyzBody struct {
	Draining   bool `json:"draining"`
	QueueDepth int  `json:"queue_depth"`
	Inflight   int  `json:"inflight"`
}

// HealthConfig tunes the checker. Zero values get defaults from NewChecker.
type HealthConfig struct {
	// Interval between probe rounds (default 500ms).
	Interval time.Duration
	// Timeout per probe (default 2s).
	Timeout time.Duration
	// EjectAfter is the number of consecutive probe failures that ejects a
	// backend from the routing table (default 3).
	EjectAfter int
	// ReadmitAfter is the number of consecutive probe successes that
	// re-admits an ejected backend (default 2). Re-admission is deliberately
	// slower than a single success so a flapping backend cannot thrash the
	// table.
	ReadmitAfter int
	// Probe overrides the HTTP /readyz probe (tests). nil selects the real
	// one.
	Probe func(ctx context.Context, b Backend) error
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	return c
}

// backendHealth is one backend's consecutive-outcome state. Guarded by
// Checker.mu.
type backendHealth struct {
	backend Backend
	healthy bool
	fails   int // consecutive probe failures while healthy
	oks     int // consecutive probe successes while ejected
	lastErr error
}

// Checker probes every configured backend's /readyz on a fixed interval and
// maintains the healthy rendezvous Table. Backends start healthy (the router
// must route before the first probe round completes); EjectAfter consecutive
// failures eject one, ReadmitAfter consecutive successes re-admit it. Every
// transition swaps a freshly built Table in atomically and counts a
// rebalance — readers holding the old snapshot drain against it untouched.
type Checker struct {
	cfg    HealthConfig
	client *http.Client

	mu     sync.Mutex
	states []*backendHealth // fixed membership, ID order

	table atomic.Pointer[Table]

	ejections    atomic.Uint64
	readmissions atomic.Uint64
	rebalances   atomic.Uint64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewChecker builds a checker over the full (fixed) membership and starts
// its probe loop. Call Stop to end it.
func NewChecker(backends []Backend, cfg HealthConfig) (*Checker, error) {
	full, err := NewTable(backends)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	c := &Checker{
		cfg: cfg,
		client: &http.Client{
			Timeout: cfg.Timeout,
		},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if c.cfg.Probe == nil {
		c.cfg.Probe = c.probeHTTP
	}
	for _, b := range full.Backends() {
		c.states = append(c.states, &backendHealth{backend: b, healthy: true})
	}
	c.table.Store(full)
	go c.loop()
	return c, nil
}

// Table returns the current healthy snapshot. Never nil; may be empty.
func (c *Checker) Table() *Table {
	return c.table.Load()
}

// Stats reports lifetime transition counters.
func (c *Checker) Stats() (ejections, readmissions, rebalances uint64) {
	return c.ejections.Load(), c.readmissions.Load(), c.rebalances.Load()
}

// Healthy reports each backend's current verdict, in ID order.
func (c *Checker) Healthy() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool, len(c.states))
	for _, st := range c.states {
		out[st.backend.ID] = st.healthy
	}
	return out
}

// Stop ends the probe loop and waits for it to exit.
func (c *Checker) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// loop runs probe rounds until stopped.
func (c *Checker) loop() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.probeRound()
		}
	}
}

// probeRound probes every backend once (sequentially — the set is small and
// each probe is bounded by Timeout) and applies transitions.
func (c *Checker) probeRound() {
	// Snapshot the membership outside any lock: states is append-once at
	// construction, only the fields mutate (under mu, in record).
	for _, st := range c.states {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
		err := c.cfg.Probe(ctx, st.backend)
		cancel()
		c.record(st, err)
	}
}

// record applies one probe outcome to one backend's counters and rebuilds
// the healthy table on a transition. The probe itself already happened — the
// lock only covers counter updates and the table swap.
func (c *Checker) record(st *backendHealth, err error) {
	c.mu.Lock()
	changed := false
	st.lastErr = err
	if err != nil {
		st.oks = 0
		if st.healthy {
			st.fails++
			if st.fails >= c.cfg.EjectAfter {
				st.healthy = false
				st.fails = 0
				changed = true
				c.ejections.Add(1)
			}
		}
	} else {
		st.fails = 0
		if !st.healthy {
			st.oks++
			if st.oks >= c.cfg.ReadmitAfter {
				st.healthy = true
				st.oks = 0
				changed = true
				c.readmissions.Add(1)
			}
		}
	}
	var healthy []Backend
	if changed {
		for _, s := range c.states {
			if s.healthy {
				healthy = append(healthy, s.backend)
			}
		}
	}
	c.mu.Unlock()
	if changed {
		// Membership already sorted and unique; NewTable cannot fail.
		t, _ := NewTable(healthy)
		c.table.Store(t)
		c.rebalances.Add(1)
	}
}

// probeHTTP is the production probe: GET /readyz, expect 200, and treat an
// explicit draining flag in the JSON detail as not-ready even on 200.
func (c *Checker) probeHTTP(ctx context.Context, b Backend) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusServiceUnavailable {
			return ErrBackendDraining
		}
		return errBackendStatus
	}
	var rb readyzBody
	if err := json.Unmarshal(body, &rb); err == nil && rb.Draining {
		return ErrBackendDraining
	}
	return nil
}
