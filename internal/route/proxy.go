package route

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Config parametrizes a Router. Backends is required; everything else has
// defaults.
type Config struct {
	// Backends is the full membership (health decides the effective set).
	Backends []Backend
	// Health tunes the /readyz prober.
	Health HealthConfig
	// UpstreamTimeout bounds one proxied request (default 2m — above the
	// backend's own compute deadline, so the backend's 504 wins the race and
	// reaches the client with its taxonomy intact).
	UpstreamTimeout time.Duration
	// MaxRequestBytes bounds a schedule request body (default 8 MiB,
	// matching the backend's admission limit).
	MaxRequestBytes int64
	// MaxIdleConnsPerHost sizes the per-backend connection pool (default 32).
	// Keeping connections warm matters: every routed request to a backend
	// reuses the pool for that host, so the steady state is zero dials.
	MaxIdleConnsPerHost int
}

func (c Config) withDefaults() Config {
	if c.UpstreamTimeout <= 0 {
		c.UpstreamTimeout = 2 * time.Minute
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.MaxIdleConnsPerHost <= 0 {
		c.MaxIdleConnsPerHost = 32
	}
	return c
}

// Router is the stateless routing tier: an http.Handler that forwards
// /v1/schedule bodies to the rendezvous choice for their graph digest, and
// everything else to a round-robin healthy backend. Create with New, expose
// via Handler, stop with Shutdown.
type Router struct {
	cfg     Config
	checker *Checker
	client  *http.Client
	// sseClient shares the transport but has no overall timeout: an SSE
	// progress stream legitimately outlives UpstreamTimeout (keep-alive
	// comments keep it non-idle), and its lifetime is bounded by the
	// client's own connection via the request context instead.
	sseClient *http.Client
	metrics   *routerMetrics
	mux       *http.ServeMux

	inflight sync.WaitGroup
	draining atomic.Bool
	rr       atomic.Uint64
}

// New builds the router and starts its health checker.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	checker, err := NewChecker(cfg.Backends, cfg.Health)
	if err != nil {
		return nil, err
	}
	transport := &http.Transport{
		// The backend set is tiny and fixed, so cap the pool per host, not
		// globally, and keep idle connections around for the full keep-alive
		// window: the hot path must not redial.
		MaxIdleConns:        cfg.MaxIdleConnsPerHost * (len(cfg.Backends) + 1),
		MaxIdleConnsPerHost: cfg.MaxIdleConnsPerHost,
		IdleConnTimeout:     90 * time.Second,
		// No decompression or caching surprises between tiers.
		DisableCompression: true,
	}
	r := &Router{
		cfg:       cfg,
		checker:   checker,
		client:    &http.Client{Transport: transport, Timeout: cfg.UpstreamTimeout},
		sseClient: &http.Client{Transport: transport},
		metrics:   newRouterMetrics(checker),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", r.handleSchedule)
	// Job submissions route by the same graph-digest key as /v1/schedule;
	// the id-addressed endpoints (poll, result, SSE, cancel) recover that
	// key from the job id so they land on the owning backend.
	mux.HandleFunc("POST /v1/jobs", r.handleSchedule)
	mux.HandleFunc("/v1/jobs/", r.handleJob)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /readyz", r.handleReadyz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("/", r.handleForwardAny)
	r.mux = mux
	return r, nil
}

// Handler returns the router's HTTP surface.
func (r *Router) Handler() http.Handler { return r.mux }

// Table exposes the current healthy snapshot (diagnostics and tests).
func (r *Router) Table() *Table { return r.checker.Table() }

// Checker exposes the health checker (tests).
func (r *Router) Checker() *Checker { return r.checker }

// Shutdown drains the router: readiness flips to 503, the health checker
// stops, and in-flight proxied requests run to completion (bounded by ctx).
func (r *Router) Shutdown(ctx context.Context) error {
	r.draining.Store(true)
	r.checker.Stop()
	done := make(chan struct{})
	go func() {
		r.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		r.client.CloseIdleConnections()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("route: drain interrupted: %w", ctx.Err())
	}
}

// handleSchedule routes one schedule request by graph digest.
func (r *Router) handleSchedule(w http.ResponseWriter, req *http.Request) {
	r.inflight.Add(1)
	defer r.inflight.Done()

	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxRequestBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	// The routing key is the exact digest the backend's graph intern keys on
	// (intern.RawKey over the raw graph bytes). ErrNoGraph falls back to a
	// whole-body digest: still deterministic, and the chosen backend owns
	// the 400.
	key, _ := RequestKey(body)

	// One table snapshot per request: membership changes mid-flight never
	// split a request's pick/retry pair across two views.
	table := r.checker.Table()
	backend, ok := table.Pick(key[:], "")
	if !ok {
		r.metrics.noBackend.Add(1)
		writeError(w, http.StatusServiceUnavailable, ErrNoBackends.Error())
		return
	}

	resp, start, err := r.forward(req, backend, body)
	if err != nil && retriable(err) {
		// Connection refused: the process is gone right now, faster than the
		// prober can notice. Replay once onto the next rendezvous choice —
		// exactly the backend a table without the dead member would pick.
		if next, ok2 := table.Pick(key[:], backend.ID); ok2 {
			r.metrics.retries.Add(1)
			r.metrics.observe(backend.ID, -1, 0, "", "")
			backend = next
			resp, start, err = r.forward(req, backend, body)
		}
	}
	r.finish(w, backend, resp, start, err)
}

// handleJob affinity-routes the id-addressed job endpoints
// (GET/DELETE /v1/jobs/{id}, /result, /events) to the backend owning the
// job: the id's leading segment is the hex graph digest the submit was
// routed by, so JobKey reproduces the original rendezvous choice. SSE event
// streams go through the untimed client — their lifetime is the client
// connection, not UpstreamTimeout.
func (r *Router) handleJob(w http.ResponseWriter, req *http.Request) {
	r.inflight.Add(1)
	defer r.inflight.Done()

	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	key, _ := JobKey(req.URL.Path)
	table := r.checker.Table()
	backend, ok := table.Pick(key[:], "")
	if !ok {
		r.metrics.noBackend.Add(1)
		writeError(w, http.StatusServiceUnavailable, ErrNoBackends.Error())
		return
	}
	client := r.client
	if strings.HasSuffix(req.URL.Path, "/events") {
		client = r.sseClient
	}
	resp, start, err := r.forwardVia(client, req, backend, body)
	if err != nil && retriable(err) {
		// The owning backend is gone and its in-memory job store with it; the
		// next rendezvous choice answers the authoritative 404 (and owns any
		// resubmit of the same graph).
		if next, ok2 := table.Pick(key[:], backend.ID); ok2 {
			r.metrics.retries.Add(1)
			r.metrics.observe(backend.ID, -1, 0, "", "")
			backend = next
			resp, start, err = r.forwardVia(client, req, backend, body)
		}
	}
	r.finish(w, backend, resp, start, err)
}

// handleForwardAny proxies non-schedule traffic (e.g. GET /v1/algorithms) to
// a round-robin healthy backend: these answers are backend-independent.
func (r *Router) handleForwardAny(w http.ResponseWriter, req *http.Request) {
	r.inflight.Add(1)
	defer r.inflight.Done()

	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	table := r.checker.Table()
	n := table.Len()
	if n == 0 {
		r.metrics.noBackend.Add(1)
		writeError(w, http.StatusServiceUnavailable, ErrNoBackends.Error())
		return
	}
	backend := table.backends[int(r.rr.Add(1))%n]
	resp, start, err := r.forward(req, backend, body)
	if err != nil && retriable(err) && n > 1 {
		next := table.backends[int(r.rr.Add(1))%n]
		if next.ID != backend.ID {
			r.metrics.retries.Add(1)
			r.metrics.observe(backend.ID, -1, 0, "", "")
			backend = next
			resp, start, err = r.forward(req, backend, body)
		}
	}
	r.finish(w, backend, resp, start, err)
}

// forward sends one upstream request and returns the undrained response plus
// the instant the attempt started (for latency accounting in finish).
func (r *Router) forward(req *http.Request, b Backend, body []byte) (*http.Response, time.Time, error) {
	return r.forwardVia(r.client, req, b, body)
}

// forwardVia is forward through an explicit client (the SSE path uses the
// untimed one).
func (r *Router) forwardVia(client *http.Client, req *http.Request, b Backend, body []byte) (*http.Response, time.Time, error) {
	up, err := http.NewRequestWithContext(req.Context(), req.Method, b.URL+req.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, time.Time{}, err
	}
	copyHeader(up.Header, req.Header, "Content-Type")
	copyHeader(up.Header, req.Header, "Accept")
	copyHeader(up.Header, req.Header, "X-Request-Id")
	copyHeader(up.Header, req.Header, "Last-Event-ID")
	start := time.Now()
	resp, err := client.Do(up)
	return resp, start, err
}

// finish relays the upstream verdict to the client and records metrics.
func (r *Router) finish(w http.ResponseWriter, b Backend, resp *http.Response, start time.Time, err error) {
	if err != nil {
		r.metrics.observe(b.ID, -1, 0, "", "")
		if errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, "upstream deadline exceeded")
			return
		}
		writeError(w, http.StatusBadGateway, "upstream unreachable: "+b.ID)
		return
	}
	defer resp.Body.Close()
	h := w.Header()
	copyHeader(h, resp.Header, "Content-Type")
	copyHeader(h, resp.Header, "X-Emts-Cache")
	copyHeader(h, resp.Header, "X-Emts-Interned")
	copyHeader(h, resp.Header, "X-Emts-Instance")
	copyHeader(h, resp.Header, "X-Request-Id")
	copyHeader(h, resp.Header, "Retry-After")
	copyHeader(h, resp.Header, "Location")
	copyHeader(h, resp.Header, "X-Accel-Buffering")
	h.Set("X-Emts-Backend", b.ID)
	w.WriteHeader(resp.StatusCode)
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		// SSE must not buffer: relay each upstream chunk as it arrives and
		// flush immediately, so progress events and keep-alive comments reach
		// the client in real time instead of pooling in the proxy.
		streamCopy(w, resp.Body)
	} else {
		io.Copy(w, resp.Body)
	}
	r.metrics.observe(b.ID, resp.StatusCode, time.Since(start).Seconds(),
		resp.Header.Get("X-Emts-Cache"), resp.Header.Get("X-Emts-Interned"))
}

// streamCopy relays src to w flushing after every chunk (SSE pass-through).
func streamCopy(w http.ResponseWriter, src io.Reader) {
	f, _ := w.(http.Flusher)
	if f != nil {
		f.Flush() // release the headers before the first (possibly slow) event
	}
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleReadyz mirrors the backend contract: 200 while routable, 503 when
// draining or when the healthy set is empty, JSON detail either way.
func (r *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	healthy := r.checker.Table().Len()
	code := http.StatusOK
	if r.draining.Load() || healthy == 0 {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"draining\":%v,\"healthy_backends\":%d,\"backends\":%d}\n",
		r.draining.Load(), healthy, len(r.cfg.Backends))
}

func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.metrics.WriteTo(w)
}

// retriable reports whether a forward error is safe to replay on another
// backend: only connection refusals qualify (the request never reached a
// handler, so replaying cannot double-execute side effects; scheduling is
// idempotent anyway, but refusal keeps the rule conservative).
func retriable(err error) bool {
	if errors.Is(err, syscall.ECONNREFUSED) {
		return true
	}
	var opErr *net.OpError
	return errors.As(err, &opErr) && opErr.Op == "dial"
}

// copyHeader copies one header key when present.
func copyHeader(dst, src http.Header, key string) {
	if v := src.Get(key); v != "" {
		dst.Set(key, v)
	}
}

// writeError emits the router's JSON error shape (same field name as the
// backend's, so clients parse one format).
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	w.Write(append(b, '\n'))
}

// Healthy reports per-backend verdicts (used by cmd/emts-router logs).
func (r *Router) Healthy() map[string]bool { return r.checker.Healthy() }
