package daggen

import (
	"fmt"
	"math"
	"math/rand"

	"emts/internal/dag"
)

// RandomConfig describes a DAGGEN-style synthetic PTG (Section IV-C; see the
// DAGGEN program of Suter et al.). Four parameters define the shape:
//
//   - Width defines the maximum task parallelism: a level holds about
//     N^Width tasks, so a small value leads to a chain of tasks and large
//     values to fork-join graphs. The paper uses {0.2, 0.5, 0.8}.
//   - Regularity denotes the uniformity of the number of tasks per level:
//     at 1 every level has exactly the nominal width, at 0 level sizes vary
//     between 1 and twice the nominal width. The paper uses {0.2, 0.8}.
//   - Density changes the number of edges between two levels of the PTG:
//     each task draws between 1 and max(1, Density·width) parents.
//     The paper uses {0.2, 0.8}.
//   - Jump controls whether edges can span several precedence levels: a
//     task's parents come from the Jump+1 levels above it. Jump = 0 yields
//     layered PTGs (edges only between adjacent levels, similar per-level
//     costs); the paper's irregular PTGs use Jump ∈ {1, 2, 4}.
type RandomConfig struct {
	// N is the number of data-parallel tasks (paper: 20, 50, 100).
	N int
	// Width in ]0, 1] shapes the task parallelism.
	Width float64
	// Regularity in [0, 1] shapes the per-level size variation.
	Regularity float64
	// Density in ]0, 1] shapes the number of edges.
	Density float64
	// Jump >= 0 is the number of levels an edge may additionally span.
	Jump int
}

// Validate reports configuration errors.
func (c RandomConfig) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("daggen: N = %d, want >= 1", c.N)
	}
	if c.Width <= 0 || c.Width > 1 {
		return fmt.Errorf("daggen: width %g outside ]0, 1]", c.Width)
	}
	if c.Regularity < 0 || c.Regularity > 1 {
		return fmt.Errorf("daggen: regularity %g outside [0, 1]", c.Regularity)
	}
	if c.Density <= 0 || c.Density > 1 {
		return fmt.Errorf("daggen: density %g outside ]0, 1]", c.Density)
	}
	if c.Jump < 0 {
		return fmt.Errorf("daggen: jump %d, want >= 0", c.Jump)
	}
	return nil
}

// Layered reports whether the configuration generates layered PTGs
// (Jump == 0), which also selects the similar-costs-per-level assignment.
func (c RandomConfig) Layered() bool { return c.Jump == 0 }

// Random generates a synthetic PTG per cfg and assigns task complexities per
// cost. For layered configurations (Jump == 0) the cost assignment keeps the
// operation counts of tasks within one level similar, as the paper specifies;
// irregular PTGs have fully independent task costs.
func Random(cfg RandomConfig, cost CostConfig, seed int64) (*dag.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	shape, err := randomShape(cfg, rng)
	if err != nil {
		return nil, err
	}
	cost.SimilarPerLevel = cfg.Layered()
	return assignCosts(shape, cost, rng)
}

func randomShape(cfg RandomConfig, rng *rand.Rand) (*dag.Graph, error) {
	kind := "irregular"
	if cfg.Layered() {
		kind = "layered"
	}
	b := dag.NewBuilder(fmt.Sprintf("%s-n%d-w%g-r%g-d%g-j%d",
		kind, cfg.N, cfg.Width, cfg.Regularity, cfg.Density, cfg.Jump))

	// Nominal tasks per level: N^Width (DAGGEN's fat parameter semantics).
	nominal := int(math.Round(math.Pow(float64(cfg.N), cfg.Width)))
	if nominal < 1 {
		nominal = 1
	}
	if nominal > cfg.N {
		nominal = cfg.N
	}

	// Slice the N tasks into levels whose sizes vary around the nominal
	// width according to regularity: size ∈ [max(1, nominal·reg), nominal·(2−reg)].
	var levels [][]dag.TaskID
	remaining := cfg.N
	for remaining > 0 {
		lo := int(math.Ceil(float64(nominal) * cfg.Regularity))
		if lo < 1 {
			lo = 1
		}
		hi := int(math.Floor(float64(nominal) * (2 - cfg.Regularity)))
		if hi < lo {
			hi = lo
		}
		size := lo
		if hi > lo {
			size = lo + rng.Intn(hi-lo+1)
		}
		if size > remaining {
			size = remaining
		}
		level := make([]dag.TaskID, size)
		for i := range level {
			level[i] = b.AddTask(dag.Task{Name: fmt.Sprintf("t%d-%d", len(levels), i)})
		}
		levels = append(levels, level)
		remaining -= size
	}

	// Parents: every task below level 0 draws between 1 and
	// max(1, density·nominal) parents from the Jump+1 preceding levels.
	maxParents := int(math.Round(cfg.Density * float64(nominal)))
	if maxParents < 1 {
		maxParents = 1
	}
	for l := 1; l < len(levels); l++ {
		loLevel := l - 1 - cfg.Jump
		if loLevel < 0 {
			loLevel = 0
		}
		var candidates []dag.TaskID
		for k := loLevel; k < l; k++ {
			candidates = append(candidates, levels[k]...)
		}
		for _, v := range levels[l] {
			np := 1
			if maxParents > 1 {
				np = 1 + rng.Intn(maxParents)
			}
			if np > len(candidates) {
				np = len(candidates)
			}
			for _, pi := range rng.Perm(len(candidates))[:np] {
				b.AddEdge(candidates[pi], v)
			}
		}
	}
	return b.Build()
}
