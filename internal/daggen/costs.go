// Package daggen generates the parallel task graphs of Section IV-C of the
// paper: FFT graphs, Strassen matrix-multiplication graphs, and DAGGEN-style
// random graphs (layered and irregular), together with the randomized
// task-complexity assignment shared by all of them.
//
// All generators are deterministic functions of their explicit seed, so
// experiment instances are reproducible and can be shared across algorithms
// — the paper relies on this ("the random generator uses the same (random)
// seed for all experiments").
package daggen

import (
	"fmt"
	"math"
	"math/rand"

	"emts/internal/dag"
)

// CostConfig describes the task-complexity assignment of Section IV-C: each
// task operates on a dataset of d doubles; the number of FLOP follows one of
// three computational patterns
//
//	(1) a·d          (stencil computation)
//	(2) a·d·log₂ d   (sorting an array)
//	(3) d^(3/2)      (multiplication of √d × √d matrices)
//
// with the iteration factor a drawn uniformly from [2⁶, 2⁹] and the fraction
// of non-parallelizable code α drawn uniformly from [0, 0.25] ("very scalable
// tasks").
type CostConfig struct {
	// MinData and MaxData bound the dataset size in doubles. The paper fixes
	// MaxData = 125e6 (1 GB of 8-byte doubles per processor); the lower
	// bound is unspecified and defaults to 4e6 so no task is negligible.
	MinData, MaxData float64
	// MinIter and MaxIter bound the iteration factor a (paper: 2⁶ .. 2⁹).
	MinIter, MaxIter float64
	// MaxAlpha bounds the non-parallelizable fraction (paper: 0.25).
	MaxAlpha float64
	// SimilarPerLevel makes all tasks of one precedence level share the same
	// pattern and dataset size (with ±10% jitter), matching the paper's
	// layered PTGs where "the number of operations of tasks in one layer is
	// similar".
	SimilarPerLevel bool
}

// DefaultCosts returns the paper's cost parameters.
func DefaultCosts() CostConfig {
	return CostConfig{
		MinData:  4e6,
		MaxData:  125e6,
		MinIter:  64,  // 2^6
		MaxIter:  512, // 2^9
		MaxAlpha: 0.25,
	}
}

// Validate reports configuration errors.
func (c CostConfig) Validate() error {
	if c.MinData <= 0 || c.MaxData < c.MinData {
		return fmt.Errorf("daggen: data bounds [%g, %g] invalid", c.MinData, c.MaxData)
	}
	if c.MinIter <= 0 || c.MaxIter < c.MinIter {
		return fmt.Errorf("daggen: iteration bounds [%g, %g] invalid", c.MinIter, c.MaxIter)
	}
	if c.MaxAlpha < 0 || c.MaxAlpha > 1 {
		return fmt.Errorf("daggen: max alpha %g outside [0,1]", c.MaxAlpha)
	}
	return nil
}

// pattern identifies one of the three computational patterns.
type pattern int

const (
	patternStencil pattern = iota // a·d
	patternSort                   // a·d·log2(d)
	patternMatMul                 // d^(3/2)
)

// flops evaluates the pattern for dataset size d and iteration factor a.
func (p pattern) flops(d, a float64) float64 {
	switch p {
	case patternStencil:
		return a * d
	case patternSort:
		return a * d * math.Log2(d)
	default:
		return math.Pow(d, 1.5)
	}
}

// sample draws one task complexity.
func (c CostConfig) sample(rng *rand.Rand) (flops, alpha, data float64) {
	p := pattern(rng.Intn(3))
	data = c.MinData + rng.Float64()*(c.MaxData-c.MinData)
	a := c.MinIter + rng.Float64()*(c.MaxIter-c.MinIter)
	return p.flops(data, a), rng.Float64() * c.MaxAlpha, data
}

// assignCosts fills in Flops, Alpha, and Data for every task of a shape-only
// graph. When SimilarPerLevel is set, tasks of one precedence level share a
// pattern and base dataset size with ±10% jitter.
func assignCosts(shape *dag.Graph, c CostConfig, rng *rand.Rand) (*dag.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	b := dag.NewBuilder(shape.Name())
	if !c.SimilarPerLevel {
		for _, t := range shape.Tasks() {
			t.Flops, t.Alpha, t.Data = c.sample(rng)
			b.AddTask(t)
		}
	} else {
		level, byLevel := shape.PrecedenceLevels()
		type levelCost struct {
			p    pattern
			data float64
			a    float64
		}
		costs := make([]levelCost, len(byLevel))
		for l := range byLevel {
			costs[l] = levelCost{
				p:    pattern(rng.Intn(3)),
				data: c.MinData + rng.Float64()*(c.MaxData-c.MinData),
				a:    c.MinIter + rng.Float64()*(c.MaxIter-c.MinIter),
			}
		}
		for _, t := range shape.Tasks() {
			lc := costs[level[t.ID]]
			jitter := 0.9 + 0.2*rng.Float64()
			d := lc.data * jitter
			if d > c.MaxData {
				d = c.MaxData
			}
			if d < c.MinData {
				d = c.MinData
			}
			t.Flops = lc.p.flops(d, lc.a)
			t.Alpha = rng.Float64() * c.MaxAlpha
			t.Data = d
			b.AddTask(t)
		}
	}
	for _, e := range shape.Edges() {
		b.AddEdge(e.Src, e.Dst)
	}
	return b.Build()
}
