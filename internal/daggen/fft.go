package daggen

import (
	"fmt"
	"math/bits"
	"math/rand"

	"emts/internal/dag"
)

// FFT generates the parallel task graph of the Fast Fourier Transform for the
// given number of input points (a power of two), then assigns random task
// complexities per cost.
//
// The shape is the classical FFT task graph (Cormen et al.; also used by
// Topcuoglu et al. for HEFT): a binary tree of 2n−1 recursive-call tasks
// followed by log₂n layers of n butterfly tasks each, for (2n−1) + n·log₂n
// tasks in total. The paper's "FFT PTGs with 2, 4, 8, and 16 levels, which
// lead to 5, 15, 39, or 95 tasks respectively" matches exactly this count
// with n = 2, 4, 8, 16 input points.
func FFT(points int, cost CostConfig, seed int64) (*dag.Graph, error) {
	if points < 2 || points&(points-1) != 0 {
		return nil, fmt.Errorf("daggen: FFT size %d, want a power of two >= 2", points)
	}
	shape, err := fftShape(points)
	if err != nil {
		return nil, err
	}
	return assignCosts(shape, cost, rand.New(rand.NewSource(seed)))
}

// FFTTaskCount returns the number of tasks of the FFT PTG for the given
// number of input points: (2n−1) + n·log₂n.
func FFTTaskCount(points int) int {
	return 2*points - 1 + points*bits.TrailingZeros(uint(points))
}

func fftShape(n int) (*dag.Graph, error) {
	b := dag.NewBuilder(fmt.Sprintf("fft-%d", n))
	logN := bits.TrailingZeros(uint(n))

	// Recursive-call tree: a complete binary tree with levels 0..logN, level
	// d holding 2^d tasks. treeID(d, i) is the task for subproblem i at
	// recursion depth d.
	tree := make([][]dag.TaskID, logN+1)
	for d := 0; d <= logN; d++ {
		tree[d] = make([]dag.TaskID, 1<<d)
		for i := range tree[d] {
			tree[d][i] = b.AddTask(dag.Task{Name: fmt.Sprintf("call-%d-%d", d, i)})
		}
	}
	for d := 0; d < logN; d++ {
		for i, parent := range tree[d] {
			b.AddEdge(parent, tree[d+1][2*i])
			b.AddEdge(parent, tree[d+1][2*i+1])
		}
	}

	// Butterfly layers: logN levels of n tasks. bf(l, i) at level l (1-based)
	// depends on level l−1 tasks i and i XOR 2^(l−1); level 0 is the row of
	// tree leaves.
	prev := make([]dag.TaskID, n)
	// The leaves of the call tree are 2^logN = n tasks in order.
	copy(prev, tree[logN])
	for l := 1; l <= logN; l++ {
		cur := make([]dag.TaskID, n)
		for i := 0; i < n; i++ {
			cur[i] = b.AddTask(dag.Task{Name: fmt.Sprintf("butterfly-%d-%d", l, i)})
		}
		stride := 1 << (l - 1)
		for i := 0; i < n; i++ {
			b.AddEdge(prev[i], cur[i])
			b.AddEdge(prev[i^stride], cur[i])
		}
		prev = cur
	}
	return b.Build()
}
