package daggen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emts/internal/dag"
)

func TestFFTTaskCountsMatchPaper(t *testing.T) {
	// Section IV-C: "FFT PTGs with 2, 4, 8, and 16 levels, which lead to 5,
	// 15, 39, or 95 tasks respectively."
	want := map[int]int{2: 5, 4: 15, 8: 39, 16: 95}
	for points, tasks := range want {
		if got := FFTTaskCount(points); got != tasks {
			t.Errorf("FFTTaskCount(%d) = %d, want %d", points, got, tasks)
		}
		g, err := FFT(points, DefaultCosts(), 1)
		if err != nil {
			t.Fatalf("FFT(%d): %v", points, err)
		}
		if g.NumTasks() != tasks {
			t.Errorf("FFT(%d) has %d tasks, want %d", points, g.NumTasks(), tasks)
		}
	}
}

func TestFFTShape(t *testing.T) {
	g, err := FFT(8, DefaultCosts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Single source (the root call task), 8 sinks (last butterfly row).
	if n := len(g.Sources()); n != 1 {
		t.Fatalf("%d sources, want 1", n)
	}
	if n := len(g.Sinks()); n != 8 {
		t.Fatalf("%d sinks, want 8", n)
	}
	// Depth: log2(8)+1 tree levels + log2(8) butterfly levels = 7.
	if d := g.Depth(); d != 7 {
		t.Fatalf("depth %d, want 7", d)
	}
	// Max width is the butterfly width n = 8.
	if w := g.MaxWidth(); w != 8 {
		t.Fatalf("max width %d, want 8", w)
	}
	// Butterfly tasks have exactly 2 predecessors.
	for _, task := range g.Tasks() {
		if len(task.Name) > 9 && task.Name[:9] == "butterfly" {
			if n := len(g.Predecessors(task.ID)); n != 2 {
				t.Fatalf("butterfly task %s has %d preds", task.Name, n)
			}
		}
	}
}

func TestFFTRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		if _, err := FFT(n, DefaultCosts(), 1); err == nil {
			t.Errorf("FFT(%d) accepted", n)
		}
	}
}

func TestFFTSameSeedSameGraph(t *testing.T) {
	g1, _ := FFT(8, DefaultCosts(), 5)
	g2, _ := FFT(8, DefaultCosts(), 5)
	for i := 0; i < g1.NumTasks(); i++ {
		if g1.Task(dag.TaskID(i)).Flops != g2.Task(dag.TaskID(i)).Flops {
			t.Fatal("same seed produced different costs")
		}
	}
	g3, _ := FFT(8, DefaultCosts(), 6)
	same := true
	for i := 0; i < g1.NumTasks(); i++ {
		if g1.Task(dag.TaskID(i)).Flops != g3.Task(dag.TaskID(i)).Flops {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical costs")
	}
}

func TestStrassenShape(t *testing.T) {
	g, err := Strassen(DefaultCosts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != StrassenTaskCount {
		t.Fatalf("%d tasks, want %d", g.NumTasks(), StrassenTaskCount)
	}
	if n := len(g.Sources()); n != 1 {
		t.Fatalf("%d sources, want 1 (split)", n)
	}
	if n := len(g.Sinks()); n != 1 {
		t.Fatalf("%d sinks, want 1 (merge)", n)
	}
	// Layers: split / S / P / C / merge -> depth 5.
	if d := g.Depth(); d != 5 {
		t.Fatalf("depth %d, want 5", d)
	}
	_, byLevel := g.PrecedenceLevels()
	if len(byLevel[1]) != 10 {
		t.Fatalf("S layer has %d tasks, want 10", len(byLevel[1]))
	}
	if len(byLevel[2]) != 7 {
		t.Fatalf("P layer has %d tasks, want 7", len(byLevel[2]))
	}
	if len(byLevel[3]) != 4 {
		t.Fatalf("C layer has %d tasks, want 4", len(byLevel[3]))
	}
}

func TestStrassenProductDependencies(t *testing.T) {
	g, err := Strassen(DefaultCosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]dag.TaskID{}
	for _, task := range g.Tasks() {
		byName[task.Name] = task.ID
	}
	// C11 = P5 + P4 - P2 + P6: four predecessors.
	if n := len(g.Predecessors(byName["C11"])); n != 4 {
		t.Fatalf("C11 has %d preds, want 4", n)
	}
	// C12 = P1 + P2: two predecessors.
	if n := len(g.Predecessors(byName["C12"])); n != 2 {
		t.Fatalf("C12 has %d preds, want 2", n)
	}
	// P5 = S5·S6: exactly S5 and S6.
	preds := g.Predecessors(byName["P5"])
	if len(preds) != 2 {
		t.Fatalf("P5 has %d preds", len(preds))
	}
	seen := map[dag.TaskID]bool{byName["S5"]: false, byName["S6"]: false}
	for _, p := range preds {
		if _, ok := seen[p]; !ok {
			t.Fatalf("P5 depends on unexpected task %d", p)
		}
		seen[p] = true
	}
}

func TestCostConfigValidation(t *testing.T) {
	bad := []CostConfig{
		{MinData: 0, MaxData: 1, MinIter: 1, MaxIter: 2, MaxAlpha: 0.2},
		{MinData: 2, MaxData: 1, MinIter: 1, MaxIter: 2, MaxAlpha: 0.2},
		{MinData: 1, MaxData: 2, MinIter: 0, MaxIter: 2, MaxAlpha: 0.2},
		{MinData: 1, MaxData: 2, MinIter: 3, MaxIter: 2, MaxAlpha: 0.2},
		{MinData: 1, MaxData: 2, MinIter: 1, MaxIter: 2, MaxAlpha: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if err := DefaultCosts().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCostRangesRespected(t *testing.T) {
	cfg := DefaultCosts()
	g, err := FFT(16, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	maxFlops := cfg.MaxIter * cfg.MaxData * math.Log2(cfg.MaxData) // sort pattern bound
	if m := math.Pow(cfg.MaxData, 1.5); m > maxFlops {
		maxFlops = m
	}
	for _, task := range g.Tasks() {
		if task.Alpha < 0 || task.Alpha > cfg.MaxAlpha {
			t.Fatalf("alpha %g outside [0, %g]", task.Alpha, cfg.MaxAlpha)
		}
		if task.Data < cfg.MinData || task.Data > cfg.MaxData {
			t.Fatalf("data %g outside bounds", task.Data)
		}
		if task.Flops <= 0 || task.Flops > maxFlops {
			t.Fatalf("flops %g outside (0, %g]", task.Flops, maxFlops)
		}
	}
}

func TestRandomConfigValidation(t *testing.T) {
	ok := RandomConfig{N: 20, Width: 0.5, Regularity: 0.8, Density: 0.2, Jump: 1}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RandomConfig{
		{N: 0, Width: 0.5, Regularity: 0.5, Density: 0.5},
		{N: 10, Width: 0, Regularity: 0.5, Density: 0.5},
		{N: 10, Width: 1.5, Regularity: 0.5, Density: 0.5},
		{N: 10, Width: 0.5, Regularity: -1, Density: 0.5},
		{N: 10, Width: 0.5, Regularity: 0.5, Density: 0},
		{N: 10, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestRandomGeneratesRequestedTaskCount(t *testing.T) {
	for _, n := range []int{20, 50, 100} {
		for _, w := range []float64{0.2, 0.5, 0.8} {
			cfg := RandomConfig{N: n, Width: w, Regularity: 0.8, Density: 0.2}
			g, err := Random(cfg, DefaultCosts(), 11)
			if err != nil {
				t.Fatalf("Random(%+v): %v", cfg, err)
			}
			if g.NumTasks() != n {
				t.Fatalf("got %d tasks, want %d", g.NumTasks(), n)
			}
		}
	}
}

func TestRandomLayeredHasAdjacentEdgesOnly(t *testing.T) {
	cfg := RandomConfig{N: 100, Width: 0.5, Regularity: 0.8, Density: 0.8, Jump: 0}
	g, err := Random(cfg, DefaultCosts(), 13)
	if err != nil {
		t.Fatal(err)
	}
	level, _ := g.PrecedenceLevels()
	for _, e := range g.Edges() {
		if level[e.Dst]-level[e.Src] != 1 {
			t.Fatalf("layered PTG has edge spanning %d levels", level[e.Dst]-level[e.Src])
		}
	}
}

func TestRandomLayeredSimilarCostsPerLevel(t *testing.T) {
	cfg := RandomConfig{N: 100, Width: 0.8, Regularity: 0.8, Density: 0.5, Jump: 0}
	g, err := Random(cfg, DefaultCosts(), 17)
	if err != nil {
		t.Fatal(err)
	}
	_, byLevel := g.PrecedenceLevels()
	for l, tasks := range byLevel {
		if len(tasks) < 2 {
			continue
		}
		min, max := math.Inf(1), 0.0
		for _, v := range tasks {
			f := g.Task(v).Flops
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
		}
		// ±10% jitter around a shared base: worst case is the d^(3/2)
		// pattern with max/min <= (1.1/0.9)^1.5 ≈ 1.35.
		if max/min > 1.4 {
			t.Fatalf("level %d flops spread %g, want similar per-level costs", l, max/min)
		}
	}
}

func TestRandomIrregularSpansLevels(t *testing.T) {
	// With jump=4 and low regularity, some edge should span > 1 level. Try a
	// few seeds: the property is probabilistic per instance but near-certain
	// across seeds.
	cfg := RandomConfig{N: 100, Width: 0.5, Regularity: 0.2, Density: 0.8, Jump: 4}
	for seed := int64(0); seed < 10; seed++ {
		g, err := Random(cfg, DefaultCosts(), seed)
		if err != nil {
			t.Fatal(err)
		}
		level, _ := g.PrecedenceLevels()
		for _, e := range g.Edges() {
			if level[e.Dst]-level[e.Src] > 1 {
				return // found a spanning edge
			}
		}
	}
	t.Fatal("no spanning edge in 10 seeds with jump=4")
}

func TestRandomWidthShapesParallelism(t *testing.T) {
	narrowCfg := RandomConfig{N: 100, Width: 0.2, Regularity: 0.8, Density: 0.2}
	wideCfg := RandomConfig{N: 100, Width: 0.8, Regularity: 0.8, Density: 0.2}
	narrow, err := Random(narrowCfg, DefaultCosts(), 19)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Random(wideCfg, DefaultCosts(), 19)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.MaxWidth() >= wide.MaxWidth() {
		t.Fatalf("narrow width %d >= wide width %d", narrow.MaxWidth(), wide.MaxWidth())
	}
	if narrow.Depth() <= wide.Depth() {
		t.Fatalf("narrow depth %d <= wide depth %d", narrow.Depth(), wide.Depth())
	}
}

func TestRandomDensityShapesEdges(t *testing.T) {
	sparseCfg := RandomConfig{N: 100, Width: 0.5, Regularity: 0.8, Density: 0.2}
	denseCfg := RandomConfig{N: 100, Width: 0.5, Regularity: 0.8, Density: 0.8}
	totalSparse, totalDense := 0, 0
	for seed := int64(0); seed < 5; seed++ {
		s, err := Random(sparseCfg, DefaultCosts(), seed)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Random(denseCfg, DefaultCosts(), seed)
		if err != nil {
			t.Fatal(err)
		}
		totalSparse += s.NumEdges()
		totalDense += d.NumEdges()
	}
	if totalSparse >= totalDense {
		t.Fatalf("sparse edges %d >= dense edges %d", totalSparse, totalDense)
	}
}

func TestRandomEveryNonSourceHasParent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := RandomConfig{
			N:          5 + rng.Intn(100),
			Width:      0.2 + 0.6*rng.Float64(),
			Regularity: rng.Float64(),
			Density:    0.2 + 0.6*rng.Float64(),
			Jump:       rng.Intn(5),
		}
		g, err := Random(cfg, DefaultCosts(), seed)
		if err != nil {
			return false
		}
		if g.NumTasks() != cfg.N {
			return false
		}
		// Every task beyond generator level 0 has >= 1 predecessor; i.e. the
		// number of sources is at most the first level's size, which is at
		// most ceil(nominal*(2-reg)).
		nominal := math.Round(math.Pow(float64(cfg.N), cfg.Width))
		maxFirst := int(math.Ceil(nominal * (2 - cfg.Regularity)))
		if maxFirst < 1 {
			maxFirst = 1
		}
		return len(g.Sources()) <= maxFirst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperWorkloadCounts(t *testing.T) {
	// The paper's synthetic workload: width={0.2,0.5,0.8}, regularity={0.2,0.8},
	// density={0.2,0.8}, jump={0} layered and {1,2,4} irregular, n={20,50,100}.
	widths, regs, dens, sizes, jumps, seeds := 3, 2, 2, 3, 3, 3
	layered := widths * regs * dens * sizes * seeds
	irregular := layered * jumps
	if layered != 108 || irregular != 324 {
		t.Fatalf("combo count mismatch: %d layered, %d irregular", layered, irregular)
	}
}
