package daggen

import (
	"math/rand"

	"emts/internal/dag"
)

// Strassen generates the parallel task graph of one level of Strassen's
// matrix multiplication (Section IV-C; see Hall, Rosenberg & Venkataramani
// for the DAG family), then assigns random task complexities per cost.
//
// The shape is the regular, layered 23-task DAG of the algorithm
// C = A·B with the classical seven products:
//
//	split   — partition A and B into quadrants (source)
//	S1..S10 — the ten pre-addition tasks
//	          S1=B12−B22  S2=A11+A12  S3=A21+A22  S4=B21−B11  S5=A11+A22
//	          S6=B11+B22  S7=A12−A22  S8=B21+B22  S9=A11−A21  S10=B11+B12
//	P1..P7  — the seven recursive products
//	          P1=A11·S1  P2=S2·B22  P3=S3·B11  P4=A22·S4  P5=S5·S6
//	          P6=S7·S8   P7=S9·S10
//	C11..C22 — the four quadrant combinations
//	          C11=P5+P4−P2+P6  C12=P1+P2  C21=P3+P4  C22=P5+P1−P3−P7
//	merge   — assemble C (sink)
//
// Products that consume a raw quadrant (e.g. P1 needs A11) depend directly on
// split. Task complexities are drawn per Section IV-C, so two graphs from
// different seeds share the shape but differ in their cost structure, exactly
// like the paper's 100 Strassen instances.
func Strassen(cost CostConfig, seed int64) (*dag.Graph, error) {
	shape, err := strassenShape()
	if err != nil {
		return nil, err
	}
	return assignCosts(shape, cost, rand.New(rand.NewSource(seed)))
}

// StrassenTaskCount is the number of tasks of the Strassen PTG.
const StrassenTaskCount = 23

func strassenShape() (*dag.Graph, error) {
	b := dag.NewBuilder("strassen")
	split := b.AddTask(dag.Task{Name: "split"})

	s := make([]dag.TaskID, 11) // 1-based S1..S10
	for i := 1; i <= 10; i++ {
		s[i] = b.AddTask(dag.Task{Name: sName(i)})
		b.AddEdge(split, s[i])
	}

	p := make([]dag.TaskID, 8) // 1-based P1..P7
	for i := 1; i <= 7; i++ {
		p[i] = b.AddTask(dag.Task{Name: pName(i)})
	}
	// Product operand dependencies; raw quadrants come from split.
	b.AddEdge(split, p[1]) // A11
	b.AddEdge(s[1], p[1])
	b.AddEdge(s[2], p[2])
	b.AddEdge(split, p[2]) // B22
	b.AddEdge(s[3], p[3])
	b.AddEdge(split, p[3]) // B11
	b.AddEdge(split, p[4]) // A22
	b.AddEdge(s[4], p[4])
	b.AddEdge(s[5], p[5])
	b.AddEdge(s[6], p[5])
	b.AddEdge(s[7], p[6])
	b.AddEdge(s[8], p[6])
	b.AddEdge(s[9], p[7])
	b.AddEdge(s[10], p[7])

	c11 := b.AddTask(dag.Task{Name: "C11"})
	c12 := b.AddTask(dag.Task{Name: "C12"})
	c21 := b.AddTask(dag.Task{Name: "C21"})
	c22 := b.AddTask(dag.Task{Name: "C22"})
	for _, pi := range []int{5, 4, 2, 6} {
		b.AddEdge(p[pi], c11)
	}
	for _, pi := range []int{1, 2} {
		b.AddEdge(p[pi], c12)
	}
	for _, pi := range []int{3, 4} {
		b.AddEdge(p[pi], c21)
	}
	for _, pi := range []int{5, 1, 3, 7} {
		b.AddEdge(p[pi], c22)
	}

	merge := b.AddTask(dag.Task{Name: "merge"})
	for _, c := range []dag.TaskID{c11, c12, c21, c22} {
		b.AddEdge(c, merge)
	}
	return b.Build()
}

func sName(i int) string { return "S" + itoa(i) }

func pName(i int) string { return "P" + itoa(i) }

func itoa(i int) string {
	if i == 10 {
		return "10"
	}
	return string(rune('0' + i))
}
