// Package platform models the homogeneous clusters of Section II-A and IV-A:
// P identical processors interconnected by a network, each pair able to
// communicate, characterized by a per-processor computing speed in GFLOPS.
//
// The two Grid'5000 production clusters used in the paper's evaluation are
// provided as presets: Chti (Lille, 20 nodes at 4.3 GFLOPS) and Grelon
// (Nancy, 120 nodes at 3.1 GFLOPS), with peak performance as measured by the
// authors with HP-LinPACK/ACML.
package platform

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Cluster is a homogeneous cluster: Procs identical processors, each with
// SpeedGFlops * 1e9 floating point operations per second. Clusters are
// immutable value types.
type Cluster struct {
	// Name labels the cluster (e.g. "chti").
	Name string
	// Procs is P, the number of identical processors.
	Procs int
	// SpeedGFlops is the per-processor computing speed in GFLOPS.
	SpeedGFlops float64
}

// New returns a validated cluster.
func New(name string, procs int, speedGFlops float64) (Cluster, error) {
	c := Cluster{Name: name, Procs: procs, SpeedGFlops: speedGFlops}
	return c, c.Validate()
}

// Validate reports whether the cluster description is usable.
func (c Cluster) Validate() error {
	if c.Procs <= 0 {
		return fmt.Errorf("platform: cluster %q has %d processors, need >= 1", c.Name, c.Procs)
	}
	if c.SpeedGFlops <= 0 {
		return fmt.Errorf("platform: cluster %q has speed %g GFLOPS, need > 0", c.Name, c.SpeedGFlops)
	}
	return nil
}

// SpeedFlops returns the per-processor speed in FLOP/s.
func (c Cluster) SpeedFlops() float64 { return c.SpeedGFlops * 1e9 }

// SequentialTime returns the time to execute flops floating point operations
// on a single processor of this cluster.
func (c Cluster) SequentialTime(flops float64) float64 { return flops / c.SpeedFlops() }

// String implements fmt.Stringer.
func (c Cluster) String() string {
	return fmt.Sprintf("%s (%d procs x %.1f GFLOPS)", c.Name, c.Procs, c.SpeedGFlops)
}

// Chti returns the platform model of the Chti cluster in Lille:
// 20 computational nodes of 4.3 GFLOPS each (Section IV-A).
func Chti() Cluster { return Cluster{Name: "chti", Procs: 20, SpeedGFlops: 4.3} }

// Grelon returns the platform model of the Grelon cluster in Nancy:
// 120 computational nodes of 3.1 GFLOPS each (Section IV-A).
func Grelon() Cluster { return Cluster{Name: "grelon", Procs: 120, SpeedGFlops: 3.1} }

// Both returns the two evaluation platforms in paper order (Chti, Grelon).
func Both() []Cluster { return []Cluster{Chti(), Grelon()} }

// jsonCluster mirrors Cluster for the JSON platform file format.
type jsonCluster struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	SpeedGFlops float64 `json:"speed_gflops"`
}

// MarshalJSON encodes the cluster in the platform file format.
func (c Cluster) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonCluster{c.Name, c.Procs, c.SpeedGFlops})
}

// UnmarshalJSON decodes and validates a cluster from the platform file format.
func (c *Cluster) UnmarshalJSON(data []byte) error {
	var jc jsonCluster
	if err := json.Unmarshal(data, &jc); err != nil {
		return fmt.Errorf("platform: decoding cluster: %w", err)
	}
	*c = Cluster{Name: jc.Name, Procs: jc.Procs, SpeedGFlops: jc.SpeedGFlops}
	return c.Validate()
}

// Read parses a platform file. Two formats are accepted, detected by the first
// non-space byte:
//
//   - JSON: {"name": "chti", "procs": 20, "speed_gflops": 4.3}
//   - Text (one line, SimGrid-inspired): "name procs speed_gflops",
//     with '#' comments and blank lines ignored.
func Read(r io.Reader) (Cluster, error) {
	br := bufio.NewReader(r)
	first, err := peekNonSpace(br)
	if err != nil {
		return Cluster{}, fmt.Errorf("platform: empty platform file")
	}
	if first == '{' {
		var c Cluster
		if err := json.NewDecoder(br).Decode(&c); err != nil {
			return Cluster{}, fmt.Errorf("platform: decoding JSON platform: %w", err)
		}
		return c, c.Validate()
	}
	return readText(br)
}

func peekNonSpace(br *bufio.Reader) (byte, error) {
	for {
		b, err := br.Peek(1)
		if err != nil {
			return 0, err
		}
		if strings.ContainsRune(" \t\r\n", rune(b[0])) {
			if _, err := br.ReadByte(); err != nil {
				return 0, err
			}
			continue
		}
		return b[0], nil
	}
}

func readText(br *bufio.Reader) (Cluster, error) {
	sc := bufio.NewScanner(br)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return Cluster{}, fmt.Errorf("platform: want %q, got %q", "name procs speed_gflops", line)
		}
		procs, err := strconv.Atoi(fields[1])
		if err != nil {
			return Cluster{}, fmt.Errorf("platform: bad processor count %q: %w", fields[1], err)
		}
		speed, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return Cluster{}, fmt.Errorf("platform: bad speed %q: %w", fields[2], err)
		}
		c := Cluster{Name: fields[0], Procs: procs, SpeedGFlops: speed}
		return c, c.Validate()
	}
	if err := sc.Err(); err != nil {
		return Cluster{}, err
	}
	return Cluster{}, errors.New("platform: no cluster definition found")
}

// Write encodes the cluster as indented JSON.
func (c Cluster) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
