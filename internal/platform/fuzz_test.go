package platform

import (
	"strings"
	"testing"
)

// FuzzRead checks the platform reader never panics and only accepts valid
// clusters.
func FuzzRead(f *testing.F) {
	f.Add("chti 20 4.3\n")
	f.Add(`{"name":"x","procs":8,"speed_gflops":2.5}`)
	f.Add("# comment\n\n grelon 120 3.1")
	f.Add("a b c")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted invalid cluster %+v: %v", c, err)
		}
	})
}
