package platform

import (
	"bytes"
	"strings"
	"testing"
)

func TestPresetsMatchPaper(t *testing.T) {
	chti := Chti()
	if chti.Procs != 20 || chti.SpeedGFlops != 4.3 {
		t.Fatalf("Chti = %+v, want 20 procs at 4.3 GFLOPS", chti)
	}
	grelon := Grelon()
	if grelon.Procs != 120 || grelon.SpeedGFlops != 3.1 {
		t.Fatalf("Grelon = %+v, want 120 procs at 3.1 GFLOPS", grelon)
	}
	both := Both()
	if len(both) != 2 || both[0].Name != "chti" || both[1].Name != "grelon" {
		t.Fatalf("Both() = %v", both)
	}
}

func TestSequentialTime(t *testing.T) {
	c := Cluster{Name: "x", Procs: 1, SpeedGFlops: 2}
	// 4e9 FLOP on a 2 GFLOPS processor takes 2 seconds.
	if got := c.SequentialTime(4e9); got != 2 {
		t.Fatalf("SequentialTime = %g, want 2", got)
	}
}

func TestValidate(t *testing.T) {
	cases := []Cluster{
		{Name: "zero-procs", Procs: 0, SpeedGFlops: 1},
		{Name: "neg-procs", Procs: -3, SpeedGFlops: 1},
		{Name: "zero-speed", Procs: 4, SpeedGFlops: 0},
		{Name: "neg-speed", Procs: 4, SpeedGFlops: -1},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
	if _, err := New("ok", 8, 1.5); err != nil {
		t.Fatalf("New valid cluster: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := Chti()
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip: got %+v want %+v", got, c)
	}
}

func TestReadTextFormat(t *testing.T) {
	src := "# Grid'5000 Chti cluster\n\nchti 20 4.3\n"
	got, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got != Chti() {
		t.Fatalf("got %+v want %+v", got, Chti())
	}
}

func TestReadTextWithLeadingSpace(t *testing.T) {
	got, err := Read(strings.NewReader("   \n\t grelon 120 3.1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got != Grelon() {
		t.Fatalf("got %+v", got)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"",                  // empty
		"# only comments\n", // no definition
		"chti 20\n",         // missing field
		"chti twenty 4.3\n", // bad procs
		"chti 20 fast\n",    // bad speed
		"chti 0 4.3\n",      // invalid procs
		`{"name":"x","procs":0,"speed_gflops":1}`, // invalid JSON cluster
		`{"procs": "x"}`, // bad JSON types
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", src)
		}
	}
}

func TestStringer(t *testing.T) {
	s := Chti().String()
	if !strings.Contains(s, "chti") || !strings.Contains(s, "20") {
		t.Fatalf("String() = %q", s)
	}
}
