package listsched

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"emts/internal/daggen"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/schedule"
)

// batchOf derives a mixed batch from parent: the parent itself (no lineage),
// lineage offspring (children with their mutated positions recorded), plain
// offspring (same vectors, lineage stripped), and one duplicate row. This is
// the row mix the EA produces: full-sweep rows and delta rows interleaved.
func batchOf(rng *rand.Rand, parent schedule.Allocation, procs int) []BatchItem {
	items := []BatchItem{{Alloc: parent}}
	for j := 0; j < 3; j++ {
		child, mutated := mutateRandom(rng, parent, 1+rng.Intn(3), procs)
		items = append(items, BatchItem{Alloc: child, Parent: parent, Mutated: mutated})
	}
	for j := 0; j < 2; j++ {
		child, _ := mutateRandom(rng, parent, 1+rng.Intn(len(parent)), procs)
		items = append(items, BatchItem{Alloc: child})
	}
	items = append(items, items[1]) // duplicate row: same vector, same lineage
	return items
}

// checkBatchScalarIdentity evaluates items through EvalBatch and through the
// scalar Mapper under the same options and reports whether every row's
// (fitness, sentinel) outcome is bit-identical. Scalar dispatch mirrors the
// engine's: lineage rows go through MakespanDelta, the rest through
// MakespanOpts.
func checkBatchScalarIdentity(t testing.TB, bm *BatchMapper, m *Mapper, items []BatchItem, opt Options) bool {
	t.Helper()
	fit := make([]float64, len(items))
	errs := make([]error, len(items))
	bm.EvalBatch(items, opt, fit, errs)
	ok := true
	for i, it := range items {
		var want float64
		var wantErr error
		if it.Parent != nil {
			want, wantErr = m.MakespanDelta(it.Alloc, it.Parent, it.Mutated, opt)
		} else {
			want, wantErr = m.MakespanOpts(it.Alloc, opt)
		}
		if wantErr != nil || errs[i] != nil {
			// Sentinels must match exactly: the engine distinguishes
			// ErrRejectedPrefilter from ErrRejected when counting.
			if !errors.Is(errs[i], ErrRejected) || !errors.Is(wantErr, ErrRejected) ||
				errors.Is(errs[i], ErrRejectedPrefilter) != errors.Is(wantErr, ErrRejectedPrefilter) {
				t.Logf("row %d: batch err %v, scalar err %v (opt %+v)", i, errs[i], wantErr, opt)
				ok = false
			}
			continue
		}
		if fit[i] != want {
			t.Logf("row %d: batch fitness %g, scalar %g (opt %+v)", i, fit[i], want, opt)
			ok = false
		}
	}
	return ok
}

// TestBatchMatchesScalar is the tentpole property test: across random
// instances and mixed batches (full-sweep rows, delta rows, duplicates),
// EvalBatch must be bit-identical to per-row scalar evaluation — unbounded,
// across bounds straddling the makespan, and with the prefilter on and off.
func TestBatchMatchesScalar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, parent, tab := randomInstance(rng)
		m, err := NewMapper(g, tab)
		if err != nil {
			return false
		}
		bm, err := NewBatchMapper(g, tab)
		if err != nil {
			return false
		}
		full, err := m.Makespan(parent)
		if err != nil {
			return false
		}
		items := batchOf(rng, parent, tab.Procs())
		if !checkBatchScalarIdentity(t, bm, m, items, Options{}) {
			return false
		}
		for _, bound := range []float64{full * 0.5, full * 0.999, full, full * 1.0001, full * 2} {
			for _, noPre := range []bool{false, true} {
				if !checkBatchScalarIdentity(t, bm, m, items, Options{RejectAbove: bound, DisablePrefilter: noPre}) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// FuzzBatchScalarIdentity is the fuzz-smoke version of TestBatchMatchesScalar:
// the instance and batch derive from the fuzzed seed and the rejection bound
// from the fuzzed scale, so the corpus explores bound positions and batch
// mixes the fixed grid misses.
func FuzzBatchScalarIdentity(f *testing.F) {
	f.Add(int64(1), 0.5)
	f.Add(int64(7), 0.999)
	f.Add(int64(42), 1.0)
	f.Add(int64(99), 1.0001)
	f.Add(int64(-3), 2.0)
	f.Fuzz(func(t *testing.T, seed int64, scale float64) {
		if scale != scale || scale <= 0 || scale > 1e6 {
			return // NaN or useless bound; RejectAbove <= 0 disables rejection anyway
		}
		rng := rand.New(rand.NewSource(seed))
		g, parent, tab := randomInstance(rng)
		m, err := NewMapper(g, tab)
		if err != nil {
			t.Fatal(err)
		}
		bm, err := NewBatchMapper(g, tab)
		if err != nil {
			t.Fatal(err)
		}
		full, err := m.Makespan(parent)
		if err != nil {
			t.Fatal(err)
		}
		items := batchOf(rng, parent, tab.Procs())
		for _, opt := range []Options{
			{},
			{RejectAbove: full * scale},
			{RejectAbove: full * scale, DisablePrefilter: true},
		} {
			if !checkBatchScalarIdentity(t, bm, m, items, opt) {
				t.Fatalf("batch/scalar diverged: seed=%d scale=%g full=%g opt=%+v", seed, scale, full, opt)
			}
		}
	})
}

// TestBatchMapperRebind pins the pool reset protocol: a BatchMapper rebound
// to a second instance must produce the same results as a fresh one, and a
// Release/Rebind cycle on the same shape must not allocate once the planes
// are warm.
func TestBatchMapperRebind(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g1, parent1, tab1 := randomInstance(rng)
	g2, parent2, tab2 := randomInstance(rng)

	bm, err := NewBatchMapper(g1, tab1)
	if err != nil {
		t.Fatal(err)
	}
	items1 := batchOf(rng, parent1, tab1.Procs())
	fit := make([]float64, len(items1))
	errs := make([]error, len(items1))
	bm.EvalBatch(items1, Options{}, fit, errs)

	bm.Release()
	if tasks, procs := bm.Shape(); tasks != g1.NumTasks() || procs != tab1.Procs() {
		t.Fatalf("Shape after Release = (%d, %d), want (%d, %d)", tasks, procs, g1.NumTasks(), tab1.Procs())
	}
	if err := bm.Rebind(g2, tab2); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewBatchMapper(g2, tab2)
	if err != nil {
		t.Fatal(err)
	}
	items2 := batchOf(rng, parent2, tab2.Procs())
	gotFit := make([]float64, len(items2))
	gotErrs := make([]error, len(items2))
	wantFit := make([]float64, len(items2))
	wantErrs := make([]error, len(items2))
	bm.EvalBatch(items2, Options{}, gotFit, gotErrs)
	fresh.EvalBatch(items2, Options{}, wantFit, wantErrs)
	for i := range items2 {
		if gotFit[i] != wantFit[i] || (gotErrs[i] == nil) != (wantErrs[i] == nil) {
			t.Fatalf("row %d after rebind: fitness %g err %v, fresh mapper: %g err %v",
				i, gotFit[i], gotErrs[i], wantFit[i], wantErrs[i])
		}
	}
}

// TestBatchEvalZeroAllocs pins the batch hot path: once the planes and the
// parent baseline are warm, a full EvalBatch — delta rows, full-sweep rows,
// prefilter sweep, rejections, and all — performs zero heap allocations.
func TestBatchEvalZeroAllocs(t *testing.T) {
	g, err := daggen.Random(daggen.RandomConfig{
		N: 120, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 2,
	}, daggen.DefaultCosts(), 7)
	if err != nil {
		t.Fatal(err)
	}
	tab := model.MustTable(g, model.Synthetic{}, platform.Grelon())
	bm, err := NewBatchMapper(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	parent := make(schedule.Allocation, g.NumTasks())
	for i := range parent {
		parent[i] = 1 + i%tab.Procs()
	}
	rng := rand.New(rand.NewSource(3))
	items := batchOf(rng, parent, tab.Procs())
	fit := make([]float64, len(items))
	errs := make([]error, len(items))
	bm.EvalBatch(items, Options{}, fit, errs) // warm up: grows planes, builds the baseline
	full := fit[0]

	for _, opt := range []Options{{}, {RejectAbove: full}, {RejectAbove: full / 2}} {
		avg := testing.AllocsPerRun(100, func() {
			bm.EvalBatch(items, opt, fit, errs)
		})
		if avg != 0 {
			t.Fatalf("warm EvalBatch (opt %+v) allocates %.1f times per call, want 0", opt, avg)
		}
	}

	// The EA's dispatch slices one logical batch into sub-spans — per-worker
	// chunks, or finer work-stealing grains — and at GOMAXPROCS==1 runs them
	// inline on the caller goroutine with no channel round-trips, so the
	// sub-span calls ARE the single-core hot path and must stay
	// allocation-free too (the row-independence contract in EvalBatch's doc).
	half := len(items) / 2
	avg := testing.AllocsPerRun(100, func() {
		bm.EvalBatch(items[:half], Options{}, fit[:half], errs[:half])
		bm.EvalBatch(items[half:], Options{}, fit[half:], errs[half:])
	})
	if avg != 0 {
		t.Fatalf("warm sub-span EvalBatch pair allocates %.1f times per run, want 0", avg)
	}
	for r := range items {
		if errs[r] != nil {
			t.Fatalf("sub-span row %d failed: %v", r, errs[r])
		}
	}
	if fit[0] != full {
		t.Fatalf("sub-span evaluation diverged: row 0 = %g, want %g", fit[0], full)
	}
}

// TestBatchInvalidRows pins per-row error isolation: invalid allocations must
// fail their own row without disturbing neighbors.
func TestBatchInvalidRows(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g, parent, tab := randomInstance(rng)
	bm, err := NewBatchMapper(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMapper(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	bad := parent.Clone()
	bad[0] = tab.Procs() + 1 // out of range
	short := parent[:len(parent)-1]
	items := []BatchItem{{Alloc: parent}, {Alloc: bad}, {Alloc: short}, {Alloc: parent}}
	fit := make([]float64, len(items))
	errs := make([]error, len(items))
	bm.EvalBatch(items, Options{}, fit, errs)
	want, err := m.Makespan(parent)
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || fit[0] != want {
		t.Errorf("row 0: fitness %g err %v, want %g nil", fit[0], errs[0], want)
	}
	if errs[1] == nil || errors.Is(errs[1], ErrRejected) {
		t.Errorf("row 1 (out-of-range alloc): err %v, want a validation error", errs[1])
	}
	if errs[2] == nil || errors.Is(errs[2], ErrRejected) {
		t.Errorf("row 2 (short alloc): err %v, want a validation error", errs[2])
	}
	if errs[3] != nil || fit[3] != want {
		t.Errorf("row 3 after invalid rows: fitness %g err %v, want %g nil", fit[3], errs[3], want)
	}
}
