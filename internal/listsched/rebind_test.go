package listsched

import (
	"math/rand"
	"reflect"
	"testing"

	"emts/internal/daggen"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/schedule"
)

// TestMapperRebindMatchesFresh is the pool reset protocol's correctness
// contract: one Mapper rebound across a stream of unrelated instances must
// behave bit-for-bit like a fresh Mapper on each — including the delta path,
// whose cached baselines must not survive a Rebind.
func TestMapperRebindMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	reused := &Mapper{}
	for trial := 0; trial < 100; trial++ {
		g, alloc, tab := randomInstance(rng)
		fresh, err := NewMapper(g, tab)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			reused, err = NewMapper(g, tab)
		} else {
			err = reused.Rebind(g, tab)
		}
		if err != nil {
			t.Fatal(err)
		}

		wantSched, err := fresh.Map(alloc)
		if err != nil {
			t.Fatal(err)
		}
		gotSched, err := reused.Map(alloc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantSched, gotSched) {
			t.Fatalf("trial %d: rebound Mapper schedule differs from fresh", trial)
		}

		// Exercise the delta path so baselines and dirty flags carry state
		// into the next trial's Rebind; mutate a couple of positions.
		child := make(schedule.Allocation, len(alloc))
		copy(child, alloc)
		mutated := make([]int, 0, 2)
		for k := 0; k < 2 && k < len(child); k++ {
			p := rng.Intn(len(child))
			child[p] = 1 + rng.Intn(tab.Procs())
			mutated = append(mutated, p)
		}
		want, err := fresh.MakespanDelta(child, alloc, mutated, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := reused.MakespanDelta(child, alloc, mutated, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: rebound delta makespan = %g, fresh = %g", trial, got, want)
		}

		// Park the Mapper as the pool would between requests.
		reused.Release()
	}
}

// TestMapperRebindSameShapeZeroAllocs pins the pooling guarantee: rebinding a
// released Mapper to a same-shape (|V|, P) pair allocates nothing, so a warm
// pooled request pays zero setup allocations per worker.
func TestMapperRebindSameShapeZeroAllocs(t *testing.T) {
	cluster := platform.Grelon()
	mk := func(seed int64) (*model.Table, schedule.Allocation, *Mapper) {
		g, err := daggen.Random(daggen.RandomConfig{
			N: 120, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 2,
		}, daggen.DefaultCosts(), seed)
		if err != nil {
			t.Fatal(err)
		}
		tab := model.MustTable(g, model.Synthetic{}, cluster)
		alloc := schedule.Ones(g.NumTasks())
		for i := range alloc {
			alloc[i] = 1 + i%tab.Procs()
		}
		m, err := NewMapper(g, tab)
		if err != nil {
			t.Fatal(err)
		}
		return tab, alloc, m
	}
	tabA, allocA, m := mk(3)
	tabB, allocB, fresh := mk(4)
	graphA, graphB := m.g, fresh.g

	avg := testing.AllocsPerRun(50, func() {
		if err := m.Rebind(graphB, tabB); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Makespan(allocB); err != nil {
			t.Fatal(err)
		}
		m.Release()
		if err := m.Rebind(graphA, tabA); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Makespan(allocA); err != nil {
			t.Fatal(err)
		}
		m.Release()
	})
	if avg != 0 {
		t.Fatalf("same-shape Rebind cycle allocates %.1f times per run, want 0", avg)
	}
}

// TestMapperShapeAfterRelease: the pool files released Mappers by shape, so
// Shape must survive Release.
func TestMapperShapeAfterRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, _, tab := randomInstance(rng)
	m, err := NewMapper(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	m.Release()
	tasks, procs := m.Shape()
	if tasks != g.NumTasks() || procs != tab.Procs() {
		t.Fatalf("Shape after Release = (%d, %d), want (%d, %d)", tasks, procs, g.NumTasks(), tab.Procs())
	}
	// A released Mapper must come back to life on Rebind.
	if err := m.Rebind(g, tab); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Makespan(schedule.Ones(g.NumTasks())); err != nil {
		t.Fatal(err)
	}
}
