package listsched

import (
	"fmt"
	"sort"

	"emts/internal/dag"
	"emts/internal/model"
	"emts/internal/schedule"
)

// Mapper is a reusable evaluation engine for the mapping step: it owns every
// piece of per-call scratch state (bottom-level buffer, indegrees, ready
// heap, processor availability, entry records), so repeated calls reuse the
// same arenas instead of reallocating them. After the first call on a given
// (graph, table) pair, Makespan performs zero heap allocations, which is what
// makes the EA's fitness evaluation — the dominant cost of EMTS (Section VI)
// — cheap enough to scale to large populations.
//
// A Mapper is NOT safe for concurrent use: each worker goroutine must own its
// own instance (see ea.Config.EvaluatorFactory). Results are bit-identical to
// the package-level Map/Makespan functions, which are now thin wrappers that
// construct a throwaway Mapper.
type Mapper struct {
	g     *dag.Graph
	tab   *model.Table
	procs int

	// cur is the allocation of the call in flight; cost closes over it so
	// one closure allocation at construction serves every call.
	cur  schedule.Allocation
	cost dag.CostFunc

	bl        []float64
	indeg     []int
	readyTime []float64
	avail     []float64
	order     []int
	scratch   []int
	ready     blHeap
}

// NewMapper returns a Mapper for the given graph and execution-time table.
// It fails if the table does not cover exactly the graph's tasks.
func NewMapper(g *dag.Graph, tab *model.Table) (*Mapper, error) {
	if tab.NumTasks() != g.NumTasks() {
		return nil, fmt.Errorf("listsched: table covers %d tasks, graph has %d", tab.NumTasks(), g.NumTasks())
	}
	m := &Mapper{g: g, tab: tab, procs: tab.Procs()}
	m.cost = func(id dag.TaskID) float64 { return m.tab.Time(id, m.cur[id]) }
	n := g.NumTasks()
	m.bl = make([]float64, n)
	m.indeg = make([]int, n)
	m.readyTime = make([]float64, n)
	m.avail = make([]float64, m.procs)
	m.order = make([]int, m.procs)
	m.scratch = make([]int, m.procs)
	m.ready.items = make([]dag.TaskID, 0, n)
	return m, nil
}

// Makespan maps the allocation and returns only the resulting makespan — the
// fitness function F of Section III-A. No schedule object is materialized and
// no heap memory is allocated on the success path.
//
//schedlint:hotpath
func (m *Mapper) Makespan(alloc schedule.Allocation) (float64, error) {
	return m.mapLoop(alloc, Options{SkipProcSets: true}, nil)
}

// MakespanBounded is Makespan with the rejection strategy of Section VI: it
// fails with ErrRejected as soon as a dependence-only lower bound on the
// final makespan exceeds rejectAbove (when positive). Because that lower
// bound is exact at the task achieving the makespan, rejection fires if and
// only if the final makespan would exceed the bound.
//
//schedlint:hotpath
func (m *Mapper) MakespanBounded(alloc schedule.Allocation, rejectAbove float64) (float64, error) {
	return m.mapLoop(alloc, Options{SkipProcSets: true, RejectAbove: rejectAbove}, nil)
}

// Map builds the full schedule for the given allocation with default options.
func (m *Mapper) Map(alloc schedule.Allocation) (*schedule.Schedule, error) {
	return m.MapWithOptions(alloc, Options{})
}

// MapWithOptions builds the schedule for the given allocation. The returned
// schedule is freshly allocated and independent of the Mapper's scratch
// state.
func (m *Mapper) MapWithOptions(alloc schedule.Allocation, opt Options) (*schedule.Schedule, error) {
	entries := make([]schedule.Entry, m.g.NumTasks())
	if _, err := m.mapLoop(alloc, opt, entries); err != nil {
		return nil, err
	}
	return &schedule.Schedule{Graph: m.g.Name(), Procs: m.procs, Entries: entries}, nil
}

// mapLoop is the classical two-step mapping (complexity O(E + V log V + V·P),
// as quoted in Section III-E): tasks become ready when all predecessors are
// placed; among ready tasks the one with the largest bottom level runs next
// (ties broken by task ID); it is placed on the s(v) processors that become
// available earliest (ties broken by processor index — the "first processor
// set"), starting at the maximum of its data-ready time and the availability
// of the last of those processors.
//
// When entries is non-nil, one Entry per task is recorded there; otherwise
// only the makespan is tracked (the fitness path).
//
//schedlint:hotpath
func (m *Mapper) mapLoop(alloc schedule.Allocation, opt Options, entries []schedule.Entry) (float64, error) {
	g, tab := m.g, m.tab
	if err := alloc.Validate(g, m.procs); err != nil {
		return 0, err
	}

	m.cur = alloc
	bl := g.BottomLevelsInto(m.cost, m.bl)
	m.bl = bl
	m.cur = nil // cost is not consulted past this point; drop the reference

	n := g.NumTasks()
	indeg := m.indeg[:n]
	copy(indeg, g.Indegrees())
	readyTime := m.readyTime[:n]
	for i := range readyTime {
		readyTime[i] = 0
	}

	ready := &m.ready
	ready.bl = bl
	ready.items = ready.items[:0]
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready.push(dag.TaskID(i))
		}
	}

	avail := m.avail[:m.procs]
	for i := range avail {
		avail[i] = 0
	}
	// order holds processor indices sorted by (availability, index); it is
	// maintained incrementally: scheduling a task rewrites the first s
	// entries with one shared availability time, so a single merge pass
	// restores sortedness in O(P) instead of re-sorting.
	order := m.order[:m.procs]
	for i := range order {
		order[i] = i
	}
	scratch := m.scratch[:m.procs]
	placed := 0
	makespan := 0.0

	for ready.len() > 0 {
		v := ready.pop()
		s := alloc[v]

		// The s processors that become available earliest are the first s
		// entries of order; among equal availability times the
		// lowest-numbered processors win, which makes the mapping fully
		// deterministic ("the first processor set").
		chosen := order[:s]

		start := readyTime[v]
		if a := avail[chosen[s-1]]; a > start {
			start = a
		}
		if opt.RejectAbove > 0 && start+bl[v] > opt.RejectAbove {
			return 0, ErrRejected
		}
		end := start + tab.Time(v, s)
		if end > makespan {
			makespan = end
		}

		if entries != nil {
			e := schedule.Entry{Task: v, Start: start, End: end}
			if !opt.SkipProcSets {
				e.Procs = make([]int, s)
				copy(e.Procs, chosen)
				sort.Ints(e.Procs)
			}
			entries[v] = e
		}
		placed++

		for _, p := range chosen {
			avail[p] = end
		}
		// Restore order: the updated processors share avail == end, so sort
		// them by index among themselves and merge with the untouched,
		// still-sorted tail.
		sort.Ints(chosen)
		merged := scratch[:0]
		rest := order[s:]
		i, j := 0, 0
		for i < len(chosen) && j < len(rest) {
			a, r := chosen[i], rest[j]
			//schedlint:allow floateq -- exact tie-break: equal availability resolves by processor index, which is what makes "the first processor set" deterministic
			if avail[a] < avail[r] || (avail[a] == avail[r] && a < r) {
				merged = append(merged, a)
				i++
			} else {
				merged = append(merged, r)
				j++
			}
		}
		merged = append(merged, chosen[i:]...)
		merged = append(merged, rest[j:]...)
		copy(order, merged)

		for _, w := range g.Successors(v) {
			if end > readyTime[w] {
				readyTime[w] = end
			}
			indeg[w]--
			if indeg[w] == 0 {
				ready.push(w)
			}
		}
	}

	if placed != n {
		//schedlint:allow hotalloc -- cold error path: fires once per run on a cyclic graph, never on the fitness path
		return 0, fmt.Errorf("listsched: scheduled %d of %d tasks (cyclic graph?)", placed, n)
	}
	return makespan, nil
}

// blHeap is a max-heap of ready tasks ordered by bottom level (largest
// first), with task ID as the deterministic tie-break. It replaces the
// container/heap implementation: the interface-based heap boxes every TaskID
// pushed through `any`, which allocates for IDs >= 256 — unacceptable on the
// fitness path. Because (bottom level desc, ID asc) is a strict total order,
// the pop sequence of any correct heap is identical, so swapping the
// implementation preserves schedules bit for bit.
type blHeap struct {
	bl    []float64
	items []dag.TaskID
}

func (h *blHeap) len() int { return len(h.items) }

// before reports whether task a runs before task b: larger bottom level
// first, smaller ID on ties.
//
//schedlint:hotpath
func (h *blHeap) before(a, b dag.TaskID) bool {
	//schedlint:allow floateq -- exact tie-break: (bottom level desc, ID asc) must be a strict total order for the pop sequence to be schedule-preserving
	if h.bl[a] != h.bl[b] {
		return h.bl[a] > h.bl[b]
	}
	return a < b
}

//schedlint:hotpath
func (h *blHeap) push(v dag.TaskID) {
	h.items = append(h.items, v)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

//schedlint:hotpath
func (h *blHeap) pop() dag.TaskID {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && h.before(h.items[l], h.items[best]) {
			best = l
		}
		if r < last && h.before(h.items[r], h.items[best]) {
			best = r
		}
		if best == i {
			break
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
	return top
}
