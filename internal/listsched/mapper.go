package listsched

import (
	"fmt"

	"emts/internal/dag"
	"emts/internal/model"
	"emts/internal/schedule"
)

// mapState bundles the mutable scratch one map-loop execution consumes: the
// bottom levels driving the ready-heap priority, the consumable indegree and
// data-ready-time arrays, per-processor availability with its incrementally
// maintained (availability, index) order, and the ready heap itself. The
// scalar Mapper points one mapState at its arenas for the Mapper's lifetime;
// the BatchMapper assembles a mapState per individual whose per-task slices
// are rows of its structure-of-arrays planes (batch.go). Both feed the same
// runMapLoop, so the scalar and batch paths cannot drift apart.
type mapState struct {
	bl        []float64
	indeg     []int
	readyTime []float64
	avail     []float64
	order     []int
	scratch   []int
	mark      []bool
	ready     blHeap
}

// Mapper is a reusable evaluation engine for the mapping step: it owns every
// piece of per-call scratch state (bottom-level buffer, indegrees, ready
// heap, processor availability, entry records), so repeated calls reuse the
// same arenas instead of reallocating them. After the first call on a given
// (graph, table) pair, Makespan performs zero heap allocations, which is what
// makes the EA's fitness evaluation — the dominant cost of EMTS (Section VI)
// — cheap enough to scale to large populations.
//
// A Mapper is NOT safe for concurrent use: each worker goroutine must own its
// own instance (see ea.Config.EvaluatorFactory). Results are bit-identical to
// the package-level Map/Makespan functions, which are now thin wrappers that
// construct a throwaway Mapper.
type Mapper struct {
	g     *dag.Graph
	tab   *model.Table
	procs int

	// cur is the allocation of the call in flight; cost closes over it so
	// one closure allocation at construction serves every call.
	cur  schedule.Allocation
	cost dag.CostFunc

	st mapState

	// Delta-evaluation state (DESIGN.md §10, Layer 3). topoPos[v] is v's
	// index in the graph's topological order and topoOrder is its inverse.
	// MakespanDelta walks topoOrder backwards from the highest mutated
	// position, recomputing only tasks flagged dirty in inq, so every
	// successor's bottom level is final before a task is recomputed. A clean
	// task costs one flag load, which keeps the sweep no worse than the full
	// O(V+E) one even when most of the graph is affected. inq is cleared as
	// tasks are visited, so no O(V) reset is needed between calls.
	topoPos   []int32
	topoOrder []dag.TaskID
	inq       []bool

	// baselines is a small ring of parent bottom-level rows keyed by the
	// identity (&parent[0]) of the parent's allocation vector. Identity
	// keying is sound because the EA never mutates a parent vector after
	// selection, and holding the pointer keeps the backing array alive, so
	// an address is never reused while its entry is cached.
	baselines [baselineCap]blBaseline
	nextBase  int
}

// baselineCap bounds the baseline ring: parents per generation is μ (≤ 10
// for the paper's strategies), so 16 slots cover a full generation with room
// for the incumbent best.
const baselineCap = 16

// deltaMutatedDenom gates MakespanDelta: the delta sweep engages only when
// mutated positions number at most NumTasks/deltaMutatedDenom. Measured on
// the 100-task EMTS5 instance benchmark, the crossover between the delta and
// full sweeps sits near a quarter of the tasks mutated.
const deltaMutatedDenom = 4

type blBaseline struct {
	key *int
	bl  []float64
}

// NewMapper returns a Mapper for the given graph and execution-time table.
// It fails if the table does not cover exactly the graph's tasks.
func NewMapper(g *dag.Graph, tab *model.Table) (*Mapper, error) {
	m := &Mapper{}
	m.cost = func(id dag.TaskID) float64 { return m.tab.Time(id, m.cur[id]) }
	if err := m.bind(g, tab); err != nil {
		return nil, err
	}
	return m, nil
}

// Rebind points an existing Mapper at a new (graph, table) pair, reusing
// every arena whose capacity suffices — for a pair of the same shape (task
// count, processor count) it performs zero heap allocations. All cached state
// that depends on the previous pair (bottom-level baselines, delta dirty
// flags) is cleared, so results after a Rebind are bit-identical to those of
// a fresh NewMapper(g, tab). This is the pool reset protocol of DESIGN.md
// §12: evalpool checks Mappers out per request and rebinds them instead of
// reallocating ~10 arenas per worker per request.
//
//schedlint:hotpath
func (m *Mapper) Rebind(g *dag.Graph, tab *model.Table) error {
	return m.bind(g, tab)
}

// Release drops the graph, table, and baseline-key references so a Mapper
// parked in a pool does not pin request-scoped objects (interned graphs and
// tables must stay evictable, and baseline keys hold parent allocation
// vectors alive). Arenas are retained; a subsequent Rebind restores the
// Mapper to service.
//
//schedlint:hotpath
func (m *Mapper) Release() {
	m.g = nil
	m.tab = nil
	m.cur = nil
	m.st.ready.bl = nil
	for i := range m.baselines {
		m.baselines[i].key = nil
	}
}

// Shape reports the (task count, processor count) the Mapper's arenas are
// sized for. It remains valid after Release, which is what lets a pool file a
// released Mapper under its shape without holding the graph alive.
func (m *Mapper) Shape() (tasks, procs int) { return len(m.st.bl), m.procs }

// grow returns s resized to length n, reallocating only when the capacity is
// insufficient. Reused elements keep their old values; callers that need a
// cleared arena must reset it explicitly.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// bind sizes every arena for (g, tab) and resets all pair-dependent state.
// Shared by NewMapper (all capacities zero, so everything allocates) and
// Rebind (same-shape pairs reuse every arena).
//
//schedlint:hotpath
func (m *Mapper) bind(g *dag.Graph, tab *model.Table) error {
	if tab.NumTasks() != g.NumTasks() {
		//schedlint:allow hotalloc,sentinelerr,hotescape -- cold validation path: a shape mismatch is a caller bug, never the steady-state rebind
		return fmt.Errorf("listsched: table covers %d tasks, graph has %d", tab.NumTasks(), g.NumTasks())
	}
	order, err := g.TopologicalOrderInto(m.topoOrder)
	if err != nil {
		return err
	}
	m.g, m.tab, m.procs = g, tab, tab.Procs()
	n := g.NumTasks()
	m.st.bl = grow(m.st.bl, n)
	m.st.indeg = grow(m.st.indeg, n)
	m.st.readyTime = grow(m.st.readyTime, n)
	m.st.avail = grow(m.st.avail, m.procs)
	m.st.order = grow(m.st.order, m.procs)
	m.st.scratch = grow(m.st.scratch, m.procs)
	m.st.mark = grow(m.st.mark, m.procs)
	for i := range m.st.mark {
		m.st.mark[i] = false
	}
	if cap(m.st.ready.items) < n {
		//schedlint:allow hotescape -- amortized arena growth: reallocates only when the task count outgrows the retained capacity
		m.st.ready.items = make([]dag.TaskID, 0, n)
	}
	m.st.ready.items = m.st.ready.items[:0]
	m.st.ready.bl = nil
	m.topoOrder = order
	m.topoPos = grow(m.topoPos, n)
	for i, v := range order {
		m.topoPos[v] = int32(i)
	}
	m.inq = grow(m.inq, n)
	for i := range m.inq {
		m.inq[i] = false
	}
	// Baseline rows cache bottom levels of the previous pair; invalidate the
	// keys but keep the float rows for reuse by the next binding.
	for i := range m.baselines {
		m.baselines[i].key = nil
	}
	m.nextBase = 0
	m.cur = nil
	return nil
}

// Makespan maps the allocation and returns only the resulting makespan — the
// fitness function F of Section III-A. No schedule object is materialized and
// no heap memory is allocated on the success path.
//
//schedlint:hotpath
func (m *Mapper) Makespan(alloc schedule.Allocation) (float64, error) {
	return m.mapLoop(alloc, Options{SkipProcSets: true}, nil, nil)
}

// MakespanBounded is Makespan with the rejection strategy of Section VI: it
// fails with ErrRejected as soon as a dependence-only lower bound on the
// final makespan exceeds rejectAbove (when positive). Because that lower
// bound is exact at the task achieving the makespan, rejection fires if and
// only if the final makespan would exceed the bound.
//
//schedlint:hotpath
func (m *Mapper) MakespanBounded(alloc schedule.Allocation, rejectAbove float64) (float64, error) {
	return m.mapLoop(alloc, Options{SkipProcSets: true, RejectAbove: rejectAbove}, nil, nil)
}

// MakespanOpts is Makespan with full Options control (rejection bound,
// prefilter switch). SkipProcSets is implied: no schedule is materialized.
//
//schedlint:hotpath
func (m *Mapper) MakespanOpts(alloc schedule.Allocation, opt Options) (float64, error) {
	opt.SkipProcSets = true
	return m.mapLoop(alloc, opt, nil, nil)
}

// MakespanDelta is MakespanOpts for an offspring whose allocation differs
// from a known parent only at the given mutated positions. Instead of the
// full O(V+E) bottom-level sweep it copies the parent's cached bottom levels
// and recomputes only the mutated tasks and those of their ancestors whose
// value actually changes, in reverse-topological order with the exact same
// formula as dag.BottomLevelsInto — so the resulting array, and therefore
// the schedule, is bit-for-bit identical to a full evaluation (DESIGN.md
// §10, Layer 3).
//
// The caller contract: parent must be a live, never-again-mutated allocation
// vector (EA parents satisfy this), len(parent) == len(alloc), and alloc[i]
// == parent[i] for every i not listed in mutated. mutated may list positions
// whose new value equals the old one; those simply terminate propagation
// immediately. If parent is nil or the lineage is unusable, this falls back
// to MakespanOpts.
//
//schedlint:hotpath
func (m *Mapper) MakespanDelta(alloc, parent schedule.Allocation, mutated []int, opt Options) (float64, error) {
	opt.SkipProcSets = true
	n := m.g.NumTasks()
	if parent == nil || len(parent) != len(alloc) || len(alloc) != n || len(mutated) == 0 {
		return m.mapLoop(alloc, opt, nil, nil)
	}
	// The delta sweep only wins while the affected region is small: every
	// changed task also scans its predecessor list to flag ancestors, so once
	// a sizable fraction of tasks mutates the sweep costs more than the plain
	// linear one. Mutation counts decay over generations (Eq. 1), so early
	// broad steps fall through to the full sweep and later refinement steps
	// take the delta path. Both paths are bit-identical by construction.
	if len(mutated)*deltaMutatedDenom > n {
		return m.mapLoop(alloc, opt, nil, nil)
	}
	if err := alloc.Validate(m.g, m.procs); err != nil {
		return 0, err
	}
	base, err := m.baseline(parent)
	if err != nil {
		return 0, err
	}
	bl := m.st.bl[:n]
	copy(bl, base)

	m.cur = alloc
	deltaBottomLevels(m.g, m.tab, alloc, bl, m.topoOrder, m.topoPos, m.inq, mutated)
	m.cur = nil
	return m.run(alloc, opt, nil, nil)
}

// deltaBottomLevels recomputes the affected bottom levels of bl in place
// after the positions in mutated changed alloc: it flags the mutated tasks
// dirty, then walks the topological order backwards from the highest flagged
// position so successors are final before their predecessors, and stops
// propagating wherever the recomputed value is bitwise unchanged. pending
// counts outstanding dirty tasks (predecessors always sit at lower positions,
// so none can be missed) and lets the walk exit as soon as the last one is
// resolved. inq must be all-false on entry; it is restored to all-false on
// return. Shared by the scalar MakespanDelta and the batch lineage rows
// (BatchMapper), so both produce the exact same bits.
//
//schedlint:hotpath
func deltaBottomLevels(g *dag.Graph, tab *model.Table, alloc schedule.Allocation, bl []float64,
	topoOrder []dag.TaskID, topoPos []int32, inq []bool, mutated []int) {
	pending := 0
	maxPos := int32(-1)
	for _, p := range mutated {
		v := dag.TaskID(p)
		if !inq[v] {
			inq[v] = true
			pending++
			if topoPos[v] > maxPos {
				maxPos = topoPos[v]
			}
		}
	}
	for pos := maxPos; pos >= 0 && pending > 0; pos-- {
		v := topoOrder[pos]
		if !inq[v] {
			continue
		}
		inq[v] = false
		pending--
		maxSucc := 0.0
		for _, s := range g.Successors(v) {
			if bl[s] > maxSucc {
				maxSucc = bl[s]
			}
		}
		nb := tab.Time(v, alloc[v]) + maxSucc
		//schedlint:allow floateq -- bitwise change detection: propagation stops exactly when the recomputed value equals the stored one, which keeps the delta sweep bit-identical to a full sweep
		if nb == bl[v] {
			continue
		}
		bl[v] = nb
		for _, q := range g.Predecessors(v) {
			if !inq[q] {
				inq[q] = true
				pending++
			}
		}
	}
}

// baseline returns the cached bottom-level row for parent, computing and
// caching it on first sight. Rows are keyed by &parent[0]; see the field
// comment on Mapper.baselines for why pointer identity is sound.
//
//schedlint:hotpath
func (m *Mapper) baseline(parent schedule.Allocation) ([]float64, error) {
	key := &parent[0]
	for i := range m.baselines {
		if m.baselines[i].key == key {
			return m.baselines[i].bl, nil
		}
	}
	if err := parent.Validate(m.g, m.procs); err != nil {
		return nil, err
	}
	slot := &m.baselines[m.nextBase]
	m.nextBase = (m.nextBase + 1) % baselineCap
	m.cur = parent
	slot.bl = m.g.BottomLevelsInto(m.cost, slot.bl)
	m.cur = nil
	slot.key = key
	return slot.bl, nil
}

// Map builds the full schedule for the given allocation with default options.
func (m *Mapper) Map(alloc schedule.Allocation) (*schedule.Schedule, error) {
	return m.MapWithOptions(alloc, Options{})
}

// MapWithOptions builds the schedule for the given allocation. The returned
// schedule is freshly allocated and independent of the Mapper's scratch
// state: the entry array plus, unless SkipProcSets is set, one processor-ID
// arena shared by all entries' Procs slices (one allocation per Map instead
// of one per task).
func (m *Mapper) MapWithOptions(alloc schedule.Allocation, opt Options) (*schedule.Schedule, error) {
	if err := alloc.Validate(m.g, m.procs); err != nil {
		return nil, err
	}
	entries := make([]schedule.Entry, m.g.NumTasks())
	var procArena []int
	if !opt.SkipProcSets {
		procArena = make([]int, 0, alloc.TotalProcs())
	}
	if _, err := m.mapLoop(alloc, opt, entries, procArena); err != nil {
		return nil, err
	}
	return &schedule.Schedule{Graph: m.g.Name(), Procs: m.procs, Entries: entries}, nil
}

// mapLoop is the classical two-step mapping (complexity O(E + V log V + V·P),
// as quoted in Section III-E): tasks become ready when all predecessors are
// placed; among ready tasks the one with the largest bottom level runs next
// (ties broken by task ID); it is placed on the s(v) processors that become
// available earliest (ties broken by processor index — the "first processor
// set"), starting at the maximum of its data-ready time and the availability
// of the last of those processors.
//
// When entries is non-nil, one Entry per task is recorded there; otherwise
// only the makespan is tracked (the fitness path).
//
//schedlint:hotpath
func (m *Mapper) mapLoop(alloc schedule.Allocation, opt Options, entries []schedule.Entry, procArena []int) (float64, error) {
	g := m.g
	if err := alloc.Validate(g, m.procs); err != nil {
		return 0, err
	}

	m.cur = alloc
	bl := g.BottomLevelsInto(m.cost, m.st.bl)
	m.st.bl = bl
	m.cur = nil // cost is not consulted past this point; drop the reference

	return m.run(alloc, opt, entries, procArena)
}

// run is the map loop proper. It assumes alloc has been validated and m.st.bl
// holds the bottom levels for alloc (either from a full sweep or a delta
// update — both produce identical bits).
//
//schedlint:hotpath
func (m *Mapper) run(alloc schedule.Allocation, opt Options, entries []schedule.Entry, procArena []int) (float64, error) {
	return runMapLoop(m.g, m.tab, m.procs, alloc, &m.st, opt, entries, procArena)
}

// runMapLoop executes the map loop over the scratch bundled in st. It assumes
// alloc has been validated and st.bl holds the bottom levels for alloc. Both
// the scalar Mapper (st = its arenas) and the BatchMapper (st = one row of
// its SoA planes) call it, which is what keeps the two paths bit-identical
// by construction.
//
// When entries is non-nil, one Entry per task is recorded there. procArena,
// consulted only when processor sets are recorded, must have capacity for
// alloc.TotalProcs() entries; each task's Procs is carved from it, so a full
// Map costs one arena allocation instead of one per task.
//
//schedlint:hotpath
func runMapLoop(g *dag.Graph, tab *model.Table, procs int, alloc schedule.Allocation,
	st *mapState, opt Options, entries []schedule.Entry, procArena []int) (float64, error) {
	n := g.NumTasks()
	bl := st.bl[:n]

	if opt.RejectAbove > 0 && !opt.DisablePrefilter && prefilterReject(tab, procs, alloc, bl, opt.RejectAbove) {
		return 0, ErrRejectedPrefilter
	}
	indeg := st.indeg[:n]
	copy(indeg, g.Indegrees())
	readyTime := st.readyTime[:n]
	for i := range readyTime {
		readyTime[i] = 0
	}

	ready := &st.ready
	ready.bl = bl
	ready.items = ready.items[:0]
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready.push(dag.TaskID(i))
		}
	}

	avail := st.avail[:procs]
	for i := range avail {
		avail[i] = 0
	}
	// order holds processor indices sorted by (availability, index); it is
	// maintained incrementally: scheduling a task rewrites the first s
	// entries with one shared availability time, so a single merge pass
	// restores sortedness in O(P) instead of re-sorting.
	order := st.order[:procs]
	for i := range order {
		order[i] = i
	}
	scratch := st.scratch[:procs]
	mark := st.mark[:procs]
	recordProcs := entries != nil && !opt.SkipProcSets
	arenaUsed := 0
	placed := 0
	makespan := 0.0

	for ready.len() > 0 {
		v := ready.pop()
		s := alloc[v]

		// The s processors that become available earliest are the first s
		// entries of order; among equal availability times the
		// lowest-numbered processors win, which makes the mapping fully
		// deterministic ("the first processor set").
		chosen := order[:s]

		start := readyTime[v]
		if a := avail[chosen[s-1]]; a > start {
			start = a
		}
		if opt.RejectAbove > 0 && start+bl[v] > opt.RejectAbove {
			return 0, ErrRejected
		}
		end := start + tab.Time(v, s)
		if end > makespan {
			makespan = end
		}

		if entries != nil {
			entries[v] = schedule.Entry{Task: v, Start: start, End: end}
		}
		placed++

		for _, p := range chosen {
			avail[p] = end
			mark[p] = true
		}
		// The chosen processors, in ascending index order, fall out of the
		// mark-bitmap scan below for free; carve the entry's Procs from the
		// arena and fill it as the scan visits them — no sort, no per-task
		// allocation.
		var procsOut []int
		if recordProcs {
			procsOut = procArena[arenaUsed : arenaUsed+s : arenaUsed+s]
			arenaUsed += s
		}
		emitted := 0
		// Restore order: the updated processors all share avail == end, so
		// among themselves they order by index — which the mark bitmap
		// yields directly with an ascending scan, no sort — and one merge
		// pass with the untouched, still-sorted tail restores the invariant
		// in O(P).
		merged := scratch[:0]
		rest := order[s:]
		j, p, remaining := 0, 0, s
		for remaining > 0 && j < len(rest) {
			for !mark[p] {
				p++
			}
			r := rest[j]
			//schedlint:allow floateq -- exact tie-break: equal availability resolves by processor index, which is what makes "the first processor set" deterministic
			if avail[p] < avail[r] || (avail[p] == avail[r] && p < r) {
				merged = append(merged, p)
				mark[p] = false
				if recordProcs {
					procsOut[emitted] = p
					emitted++
				}
				p++
				remaining--
			} else {
				merged = append(merged, r)
				j++
			}
		}
		for remaining > 0 {
			for !mark[p] {
				p++
			}
			merged = append(merged, p)
			mark[p] = false
			if recordProcs {
				procsOut[emitted] = p
				emitted++
			}
			p++
			remaining--
		}
		merged = append(merged, rest[j:]...)
		copy(order, merged)
		if recordProcs {
			entries[v].Procs = procsOut
		}

		for _, w := range g.Successors(v) {
			if end > readyTime[w] {
				readyTime[w] = end
			}
			indeg[w]--
			if indeg[w] == 0 {
				ready.push(w)
			}
		}
	}

	if placed != n {
		return 0, errIncomplete
	}
	return makespan, nil
}

// areaSlack is the relative tolerance applied to the area lower bound. The
// bound Σ s(v)·T(v,s(v)) ≤ P·M holds exactly in real arithmetic, but the
// float sum accumulates rounding of order V·ε ≈ 1e-14 for V = 100; a slack
// of 1e-9 is orders of magnitude wider than that while still far below any
// meaningful makespan difference, so the comparison can only under-reject —
// never reject an allocation the map loop would have accepted. Admissibility
// is therefore preserved (DESIGN.md §10, Layer 1).
const areaSlack = 1e-9

// prefilterReject reports whether two O(V) admissible lower bounds on the
// makespan already exceed bound, in which case the in-loop rejection check
// is guaranteed to fire and the map loop can be skipped entirely:
//
//   - Critical-path bound: max_v bl(v). The first task popped by the map
//     loop is the source with the largest bottom level, started at time 0,
//     so its in-loop check start+bl = max bl fires iff this bound exceeds
//     the threshold — the prefilter is exact for this bound, no slack
//     needed.
//   - Area bound: Σ s(v)·T(v,s(v)) / P. All work must fit into P processors
//     within the makespan, so makespan ≥ area/P; compared with relative
//     slack areaSlack to absorb summation rounding (see above).
//
// Both are true lower bounds, so a prefilter rejection implies the in-loop
// check would have rejected as well: results with the prefilter on and off
// are bit-identical. The BatchMapper runs the same two bounds as a sweep
// over all rows of its bottom-level plane before mapping any of them
// (batch.go), with identical float semantics.
//
//schedlint:hotpath
func prefilterReject(tab *model.Table, procs int, alloc schedule.Allocation, bl []float64, bound float64) bool {
	maxBL := 0.0
	for _, b := range bl {
		if b > maxBL {
			maxBL = b
		}
	}
	if maxBL > bound {
		return true
	}
	area := 0.0
	for v, s := range alloc {
		area += float64(s) * tab.Time(dag.TaskID(v), s)
	}
	return area > bound*float64(procs)*(1+areaSlack)
}

// blHeap is a max-heap of ready tasks ordered by bottom level (largest
// first), with task ID as the deterministic tie-break. It replaces the
// container/heap implementation: the interface-based heap boxes every TaskID
// pushed through `any`, which allocates for IDs >= 256 — unacceptable on the
// fitness path. Because (bottom level desc, ID asc) is a strict total order,
// the pop sequence of any correct heap is identical, so swapping the
// implementation preserves schedules bit for bit.
type blHeap struct {
	bl    []float64
	items []dag.TaskID
}

func (h *blHeap) len() int { return len(h.items) }

// before reports whether task a runs before task b: larger bottom level
// first, smaller ID on ties.
//
//schedlint:hotpath
func (h *blHeap) before(a, b dag.TaskID) bool {
	//schedlint:allow floateq -- exact tie-break: (bottom level desc, ID asc) must be a strict total order for the pop sequence to be schedule-preserving
	if h.bl[a] != h.bl[b] {
		return h.bl[a] > h.bl[b]
	}
	return a < b
}

//schedlint:hotpath
func (h *blHeap) push(v dag.TaskID) {
	h.items = append(h.items, v)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

//schedlint:hotpath
func (h *blHeap) pop() dag.TaskID {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && h.before(h.items[l], h.items[best]) {
			best = l
		}
		if r < last && h.before(h.items[r], h.items[best]) {
			best = r
		}
		if best == i {
			break
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
	return top
}
