package listsched

import (
	"fmt"

	"emts/internal/dag"
	"emts/internal/model"
	"emts/internal/schedule"
)

// BatchItem is one individual of a batch evaluation: its allocation vector
// plus optional lineage for delta bottom levels. Parent, when non-nil, must
// be a live, never-again-mutated allocation vector that differs from Alloc
// only at the positions listed in Mutated (the contract of
// Mapper.MakespanDelta).
type BatchItem struct {
	Alloc   schedule.Allocation
	Parent  schedule.Allocation
	Mutated []int
}

// BatchMapper evaluates a whole generation of allocation vectors against one
// (graph, table) pair using a structure-of-arrays layout: allocation vectors
// and bottom levels live in contiguous row-major planes, one row per
// individual (ROADMAP item 5) — these are the two arrays phases 2–3 sweep
// across all rows at once. The remaining map-loop state (indegrees, data-ready
// times, ready-heap storage, per-processor availability) is fully
// re-initialized by every runMapLoop call and rows map strictly sequentially
// within one BatchMapper (parallelism is across per-worker instances), so one
// shared scratch row serves the whole batch instead of λ dead rows of plane.
// The batch lifecycle runs in phases, each a linear sweep over one or two
// planes:
//
//  1. ingest — validate every allocation and copy it into the alloc plane;
//  2. bottom levels — fill each row of the bl plane, either by the direct
//     reverse-topological sweep (same formula as dag.BottomLevelsInto, no
//     per-individual cost closure) or, for rows with lineage, by copying the
//     parent's baseline row and running the shared delta propagation;
//  3. prefilter — one sweep over the alloc and bl planes applies both
//     admissible lower bounds (prefilterReject) to every row before any
//     mapping work starts, so hopeless rows never touch the map loop;
//  4. mapping — each surviving row runs runMapLoop, the exact same code the
//     scalar Mapper executes, with its mapState pointed at the row's plane
//     slices.
//
// Phase 4 re-applying the in-loop rejection check (with the prefilter
// disabled — phase 3 already ran it) keeps the rejected/prefiltered outcome
// of every row identical to the scalar path's, sentinel for sentinel.
//
// Amortization relative to λ scalar evaluations: one Rebind binds the whole
// batch (the pool rebinds per checkout, not per individual), plane rows share
// cache lines across consecutive individuals, parent baselines are computed
// once per distinct parent for the whole batch, and the bl sweep indexes the
// table directly instead of calling through a closure.
//
// A BatchMapper is NOT safe for concurrent use: each worker goroutine owns
// its own instance and evaluates its chunk of the generation (see
// ea.Config.BatchEvaluatorFactory). Results are bit-identical to the scalar
// Mapper by construction — phases 2–4 run the same shared code paths
// (deltaBottomLevels, prefilterReject, runMapLoop) over the same float
// semantics.
type BatchMapper struct {
	g     *dag.Graph
	tab   *model.Table
	procs int
	tasks int

	// Row-major planes, one row of length tasks per individual.
	allocPlane []int
	blPlane    []float64

	// st is the mapState handed to runMapLoop; st.bl is repointed at the
	// current row before each phase-4 call. Everything else in st is per-map
	// scratch the loop re-initializes on entry, so one copy serves the whole
	// batch.
	st mapState

	// Delta state shared with the scalar path (see Mapper for invariants).
	topoOrder []dag.TaskID
	topoPos   []int32
	inq       []bool

	baselines [baselineCap]blBaseline
	nextBase  int
}

// NewBatchMapper returns a BatchMapper for the given graph and table. Planes
// are grown lazily by the first EvalBatch call, sized to its batch length.
func NewBatchMapper(g *dag.Graph, tab *model.Table) (*BatchMapper, error) {
	b := &BatchMapper{}
	if err := b.bind(g, tab); err != nil {
		return nil, err
	}
	return b, nil
}

// Rebind points an existing BatchMapper at a new (graph, table) pair, reusing
// every plane whose capacity suffices; for a pair of the same shape it
// performs zero heap allocations once the planes have grown to the working
// batch size. Pair-dependent cached state (baselines, delta flags) is
// cleared, mirroring Mapper.Rebind.
//
//schedlint:hotpath
func (b *BatchMapper) Rebind(g *dag.Graph, tab *model.Table) error {
	return b.bind(g, tab)
}

// Release drops the graph, table, and baseline-key references so a pooled
// BatchMapper does not pin request-scoped objects. Planes are retained for
// the next Rebind.
//
//schedlint:hotpath
func (b *BatchMapper) Release() {
	b.g = nil
	b.tab = nil
	b.st.ready.bl = nil
	for i := range b.baselines {
		b.baselines[i].key = nil
	}
}

// Shape reports the (task count, processor count) the planes are row-sized
// for. Valid after Release, so pools can file instances by shape.
func (b *BatchMapper) Shape() (tasks, procs int) { return b.tasks, b.procs }

//schedlint:hotpath
func (b *BatchMapper) bind(g *dag.Graph, tab *model.Table) error {
	if tab.NumTasks() != g.NumTasks() {
		//schedlint:allow hotalloc,sentinelerr,hotescape -- cold validation path: a shape mismatch is a caller bug, never the steady-state rebind
		return fmt.Errorf("listsched: table covers %d tasks, graph has %d", tab.NumTasks(), g.NumTasks())
	}
	order, err := g.TopologicalOrderInto(b.topoOrder)
	if err != nil {
		return err
	}
	n := g.NumTasks()
	if n != b.tasks || tab.Procs() != b.procs {
		// Shape change: row strides shift, so the planes' contents are
		// meaningless. Dropping their lengths (capacity kept) makes
		// ensureRows lay them out afresh.
		b.allocPlane = b.allocPlane[:0]
		b.blPlane = b.blPlane[:0]
	}
	b.g, b.tab, b.procs, b.tasks = g, tab, tab.Procs(), n
	b.topoOrder = order
	b.topoPos = grow(b.topoPos, n)
	for i, v := range order {
		b.topoPos[v] = int32(i)
	}
	b.inq = grow(b.inq, n)
	for i := range b.inq {
		b.inq[i] = false
	}
	b.st.indeg = grow(b.st.indeg, n)
	b.st.readyTime = grow(b.st.readyTime, n)
	b.st.avail = grow(b.st.avail, b.procs)
	b.st.order = grow(b.st.order, b.procs)
	b.st.scratch = grow(b.st.scratch, b.procs)
	b.st.mark = grow(b.st.mark, b.procs)
	for i := range b.st.mark {
		b.st.mark[i] = false
	}
	if cap(b.st.ready.items) < n {
		//schedlint:allow hotescape -- amortized arena growth: reallocates only when the task count outgrows the retained capacity
		b.st.ready.items = make([]dag.TaskID, 0, n)
	}
	b.st.ready.items = b.st.ready.items[:0]
	b.st.ready.bl = nil
	for i := range b.baselines {
		b.baselines[i].key = nil
	}
	b.nextBase = 0
	return nil
}

// ensureRows grows both planes to hold rows rows of the current shape.
// Existing capacity is reused; a warm BatchMapper evaluating batches of a
// stable size allocates nothing here.
func (b *BatchMapper) ensureRows(rows int) {
	nt := rows * b.tasks
	if cap(b.allocPlane) < nt {
		b.allocPlane = make([]int, nt)
		b.blPlane = make([]float64, nt)
	} else {
		b.allocPlane = b.allocPlane[:nt]
		b.blPlane = grow(b.blPlane, nt)
	}
}

// EvalBatch evaluates items[i] into fitness[i] or errs[i] for every i.
// Outcomes per row: errs[i] == nil and fitness[i] holds the makespan;
// errs[i] == ErrRejectedPrefilter (an admissible bound exceeded
// opt.RejectAbove before mapping); errs[i] == ErrRejected (the in-loop bound
// check fired); or another error (invalid allocation or lineage). fitness
// and errs must have at least len(items) entries; entries of errs are
// overwritten (nil on success).
//
// SkipProcSets is implied — no schedules are materialized; opt.RejectAbove
// and opt.DisablePrefilter behave exactly as on the scalar path.
//
// Rows are independent: every row's outcome is a pure function of its own
// item and opt, so evaluating a batch in sub-spans — EvalBatch over
// items[lo:hi] with the matching fitness/errs windows, as the EA's
// work-stealing dispatch does (DESIGN.md §17) — produces row for row the
// same bits as one call over the full span, and warm sub-span calls stay
// allocation-free (TestBatchEvalZeroAllocs).
//
//schedlint:hotpath
func (b *BatchMapper) EvalBatch(items []BatchItem, opt Options, fitness []float64, errs []error) {
	opt.SkipProcSets = true
	rows := len(items)
	if rows == 0 {
		return
	}
	b.ensureRows(rows)
	n := b.tasks

	// Phase 1: ingest. Validate and copy every allocation into its plane
	// row; the batch owns a stable snapshot even if callers reuse item
	// buffers, and the later sweeps read one contiguous plane.
	for r := range items {
		errs[r] = items[r].Alloc.Validate(b.g, b.procs)
		if errs[r] == nil {
			copy(b.allocPlane[r*n:(r+1)*n], items[r].Alloc)
		}
	}

	// Phase 2: bottom levels, one row per live individual. Lineage rows copy
	// the parent's baseline and run the shared delta propagation; the rest
	// take the direct reverse-topological sweep. Both fill the row with the
	// exact bits dag.BottomLevelsInto would produce.
	for r := range items {
		if errs[r] != nil {
			continue
		}
		alloc := schedule.Allocation(b.allocPlane[r*n : (r+1)*n])
		bl := b.blPlane[r*n : (r+1)*n]
		it := &items[r]
		if it.Parent != nil && len(it.Parent) == n && len(it.Mutated) > 0 &&
			len(it.Mutated)*deltaMutatedDenom <= n {
			base, err := b.baseline(it.Parent)
			if err != nil {
				errs[r] = err
				continue
			}
			copy(bl, base)
			deltaBottomLevels(b.g, b.tab, alloc, bl, b.topoOrder, b.topoPos, b.inq, it.Mutated)
		} else {
			bottomLevelsRow(b.g, b.tab, alloc, bl, b.topoOrder)
		}
	}

	// Phase 3: prefilter sweep. Both admissible bounds run over every live
	// row of the alloc and bl planes before any mapping starts — two linear
	// passes per row over contiguous memory, no heap or adjacency access.
	if opt.RejectAbove > 0 && !opt.DisablePrefilter {
		for r := range items {
			if errs[r] != nil {
				continue
			}
			alloc := schedule.Allocation(b.allocPlane[r*n : (r+1)*n])
			if prefilterReject(b.tab, b.procs, alloc, b.blPlane[r*n:(r+1)*n], opt.RejectAbove) {
				errs[r] = ErrRejectedPrefilter
			}
		}
	}

	// Phase 4: map the survivors. Each row's bl slice becomes the mapState's
	// bl for runMapLoop — the same loop the scalar path runs, so the
	// resulting makespans (and ErrRejected outcomes) are bit-identical. The
	// prefilter is disabled here because phase 3 already applied it to every
	// row; the in-loop RejectAbove check still runs, preserving the scalar
	// sentinel split between the two rejection layers.
	mapOpt := opt
	mapOpt.DisablePrefilter = true
	st := &b.st
	for r := range items {
		if errs[r] != nil {
			continue
		}
		st.bl = b.blPlane[r*n : (r+1)*n]
		alloc := schedule.Allocation(b.allocPlane[r*n : (r+1)*n])
		fitness[r], errs[r] = runMapLoop(b.g, b.tab, b.procs, alloc, st, mapOpt, nil, nil)
	}
}

// baseline returns the cached bottom-level row for parent, computing and
// caching it on first sight — the batch twin of Mapper.baseline, sharing the
// same ring semantics and pointer-identity keying.
//
//schedlint:hotpath
func (b *BatchMapper) baseline(parent schedule.Allocation) ([]float64, error) {
	key := &parent[0]
	for i := range b.baselines {
		if b.baselines[i].key == key {
			return b.baselines[i].bl, nil
		}
	}
	if err := parent.Validate(b.g, b.procs); err != nil {
		return nil, err
	}
	slot := &b.baselines[b.nextBase]
	b.nextBase = (b.nextBase + 1) % baselineCap
	slot.bl = grow(slot.bl, b.tasks)
	bottomLevelsRow(b.g, b.tab, parent, slot.bl, b.topoOrder)
	slot.key = key
	return slot.bl, nil
}

// bottomLevelsRow fills bl with the bottom levels of alloc by the same
// reverse-topological sweep as dag.BottomLevelsInto — same order, same
// float operation sequence (bl[v] = T(v, s(v)) + maxSucc), so the bits
// match — but with the execution time indexed straight out of the table
// instead of called through a per-individual cost closure.
//
//schedlint:hotpath
func bottomLevelsRow(g *dag.Graph, tab *model.Table, alloc schedule.Allocation, bl []float64, order []dag.TaskID) {
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		maxSucc := 0.0
		for _, s := range g.Successors(v) {
			if bl[s] > maxSucc {
				maxSucc = bl[s]
			}
		}
		bl[v] = tab.Time(v, alloc[v]) + maxSucc
	}
}
