// Package listsched implements the mapping step shared by every two-step
// scheduler in this repository, as described in Section III-A of the paper:
//
//	"In the list scheduling algorithm used by EMTS, the ready nodes are
//	 sorted by decreasing bottom level and each ready node v is mapped to the
//	 first processor set that contains s(v) available processors."
//
// The mapper takes a PTG, an allocation vector (the EA individual), and a
// precomputed execution-time table; it produces a complete schedule. This is
// also the fitness function of EMTS: the fitness of an allocation is the
// makespan of the schedule the mapper builds for it (smaller is better).
//
// The mapper additionally implements the rejection strategy sketched as
// future work in Section VI: when a bound is supplied, schedule construction
// aborts as soon as a lower bound on the final makespan exceeds it, so the
// evolutionary search can discard hopeless individuals without paying for the
// full mapping.
package listsched

import (
	"errors"
	"fmt"

	"emts/internal/dag"
	"emts/internal/model"
	"emts/internal/schedule"
)

// ErrRejected reports that mapping was aborted because the partial schedule
// provably could not beat Options.RejectAbove.
var ErrRejected = errors.New("listsched: schedule rejected by makespan bound")

// ErrRejectedPrefilter is the ErrRejected variant raised by the O(V)
// lower-bound prefilter that runs before the map loop (DESIGN.md §10). It
// wraps ErrRejected, so errors.Is(err, ErrRejected) matches both; callers
// that care which layer fired (counters, benchmarks) test for this sentinel
// specifically.
var ErrRejectedPrefilter = fmt.Errorf("%w (lower-bound prefilter)", ErrRejected)

// errIncomplete reports a map loop that drained its ready queue before
// placing every task. Graphs reach the mappers only after bind's topological
// validation, so this is a defensive invariant check, not a user-facing
// parse error — which is why it carries no counts: constructing a formatted
// error would put an allocation on the fitness path for a case that cannot
// occur there (see the sentinelerr analyzer, DESIGN.md §14).
var errIncomplete = errors.New("listsched: mapping incomplete: ready queue drained with tasks unplaced (cyclic graph?)")

// Options tunes the mapping step.
type Options struct {
	// RejectAbove, when positive, enables the rejection strategy of Section
	// VI: mapping fails with ErrRejected as soon as start(v) + bl(v) — a
	// dependence-only lower bound on the final makespan — exceeds the bound
	// for some task v.
	RejectAbove float64
	// SkipProcSets, when true, leaves each entry's processor ID list nil and
	// records only start/end times. The makespan is unaffected (processor
	// choice is by earliest availability, so only availability *times*
	// matter), but the resulting schedule will not pass Schedule.Validate.
	// Fitness evaluation uses this to avoid per-task allocations.
	SkipProcSets bool
	// DisablePrefilter skips the O(V) admissible lower-bound prefilter that
	// normally runs between the bottom-level sweep and the map loop when
	// RejectAbove is set. The prefilter is exact — it fires only when the
	// in-loop rejection check would also fire — so this switch exists purely
	// for A/B regression tests and benchmarks, like ea.Config.DisableCache.
	DisablePrefilter bool
}

// Cost adapts an execution-time table and an allocation into the dag.CostFunc
// used by graph analyses: cost(v) = T(v, alloc[v]).
func Cost(tab *model.Table, alloc schedule.Allocation) dag.CostFunc {
	return func(id dag.TaskID) float64 { return tab.Time(id, alloc[id]) }
}

// Map builds the schedule for the given allocation with default options.
//
// Map, Makespan, and MapWithOptions construct a throwaway Mapper per call;
// loops that map repeatedly against one (graph, table) pair should hold a
// Mapper and reuse its scratch arenas instead.
func Map(g *dag.Graph, tab *model.Table, alloc schedule.Allocation) (*schedule.Schedule, error) {
	return MapWithOptions(g, tab, alloc, Options{})
}

// Makespan maps the allocation and returns only the resulting makespan — the
// fitness function F of Section III-A.
func Makespan(g *dag.Graph, tab *model.Table, alloc schedule.Allocation) (float64, error) {
	m, err := NewMapper(g, tab)
	if err != nil {
		return 0, err
	}
	return m.Makespan(alloc)
}

// MapWithOptions builds the schedule for the given allocation. See
// Mapper.MapWithOptions for the algorithm.
func MapWithOptions(g *dag.Graph, tab *model.Table, alloc schedule.Allocation, opt Options) (*schedule.Schedule, error) {
	m, err := NewMapper(g, tab)
	if err != nil {
		return nil, err
	}
	return m.MapWithOptions(alloc, opt)
}
