// Package listsched implements the mapping step shared by every two-step
// scheduler in this repository, as described in Section III-A of the paper:
//
//	"In the list scheduling algorithm used by EMTS, the ready nodes are
//	 sorted by decreasing bottom level and each ready node v is mapped to the
//	 first processor set that contains s(v) available processors."
//
// The mapper takes a PTG, an allocation vector (the EA individual), and a
// precomputed execution-time table; it produces a complete schedule. This is
// also the fitness function of EMTS: the fitness of an allocation is the
// makespan of the schedule the mapper builds for it (smaller is better).
//
// The mapper additionally implements the rejection strategy sketched as
// future work in Section VI: when a bound is supplied, schedule construction
// aborts as soon as a lower bound on the final makespan exceeds it, so the
// evolutionary search can discard hopeless individuals without paying for the
// full mapping.
package listsched

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"emts/internal/dag"
	"emts/internal/model"
	"emts/internal/schedule"
)

// ErrRejected reports that mapping was aborted because the partial schedule
// provably could not beat Options.RejectAbove.
var ErrRejected = errors.New("listsched: schedule rejected by makespan bound")

// Options tunes the mapping step.
type Options struct {
	// RejectAbove, when positive, enables the rejection strategy of Section
	// VI: mapping fails with ErrRejected as soon as start(v) + bl(v) — a
	// dependence-only lower bound on the final makespan — exceeds the bound
	// for some task v.
	RejectAbove float64
	// SkipProcSets, when true, leaves each entry's processor ID list nil and
	// records only start/end times. The makespan is unaffected (processor
	// choice is by earliest availability, so only availability *times*
	// matter), but the resulting schedule will not pass Schedule.Validate.
	// Fitness evaluation uses this to avoid per-task allocations.
	SkipProcSets bool
}

// Cost adapts an execution-time table and an allocation into the dag.CostFunc
// used by graph analyses: cost(v) = T(v, alloc[v]).
func Cost(tab *model.Table, alloc schedule.Allocation) dag.CostFunc {
	return func(id dag.TaskID) float64 { return tab.Time(id, alloc[id]) }
}

// Map builds the schedule for the given allocation with default options.
func Map(g *dag.Graph, tab *model.Table, alloc schedule.Allocation) (*schedule.Schedule, error) {
	return MapWithOptions(g, tab, alloc, Options{})
}

// Makespan maps the allocation and returns only the resulting makespan — the
// fitness function F of Section III-A.
func Makespan(g *dag.Graph, tab *model.Table, alloc schedule.Allocation) (float64, error) {
	s, err := MapWithOptions(g, tab, alloc, Options{SkipProcSets: true})
	if err != nil {
		return 0, err
	}
	return s.Makespan(), nil
}

// MapWithOptions builds the schedule for the given allocation.
//
// The algorithm is the classical two-step mapping (complexity
// O(E + V log V + V·P), as quoted in Section III-E): tasks become ready when
// all predecessors are placed; among ready tasks the one with the largest
// bottom level runs next (ties broken by task ID); it is placed on the s(v)
// processors that become available earliest (ties broken by processor index —
// the "first processor set"), starting at the maximum of its data-ready time
// and the availability of the last of those processors.
func MapWithOptions(g *dag.Graph, tab *model.Table, alloc schedule.Allocation, opt Options) (*schedule.Schedule, error) {
	procs := tab.Procs()
	if err := alloc.Validate(g, procs); err != nil {
		return nil, err
	}
	if tab.NumTasks() != g.NumTasks() {
		return nil, fmt.Errorf("listsched: table covers %d tasks, graph has %d", tab.NumTasks(), g.NumTasks())
	}

	bl := g.BottomLevels(Cost(tab, alloc))

	n := g.NumTasks()
	indeg := make([]int, n)
	readyTime := make([]float64, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.Predecessors(dag.TaskID(i)))
	}

	ready := &taskQueue{bl: bl}
	heap.Init(ready)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			heap.Push(ready, dag.TaskID(i))
		}
	}

	avail := make([]float64, procs)
	// order holds processor indices sorted by (availability, index); it is
	// maintained incrementally: scheduling a task rewrites the first s
	// entries with one shared availability time, so a single merge pass
	// restores sortedness in O(P) instead of re-sorting.
	order := make([]int, procs)
	for i := range order {
		order[i] = i
	}
	scratch := make([]int, procs)
	sched := &schedule.Schedule{Graph: g.Name(), Procs: procs, Entries: make([]schedule.Entry, n)}
	placed := 0

	for ready.Len() > 0 {
		v := heap.Pop(ready).(dag.TaskID)
		s := alloc[v]

		// The s processors that become available earliest are the first s
		// entries of order; among equal availability times the
		// lowest-numbered processors win, which makes the mapping fully
		// deterministic ("the first processor set").
		chosen := order[:s]

		start := readyTime[v]
		if a := avail[chosen[s-1]]; a > start {
			start = a
		}
		if opt.RejectAbove > 0 && start+bl[v] > opt.RejectAbove {
			return nil, ErrRejected
		}
		end := start + tab.Time(v, s)

		e := schedule.Entry{Task: v, Start: start, End: end}
		if !opt.SkipProcSets {
			e.Procs = make([]int, s)
			copy(e.Procs, chosen)
			sort.Ints(e.Procs)
		}
		sched.Entries[v] = e
		placed++

		for _, p := range chosen {
			avail[p] = end
		}
		// Restore order: the updated processors share avail == end, so sort
		// them by index among themselves and merge with the untouched,
		// still-sorted tail.
		sort.Ints(chosen)
		merged := scratch[:0]
		rest := order[s:]
		i, j := 0, 0
		for i < len(chosen) && j < len(rest) {
			a, r := chosen[i], rest[j]
			if avail[a] < avail[r] || (avail[a] == avail[r] && a < r) {
				merged = append(merged, a)
				i++
			} else {
				merged = append(merged, r)
				j++
			}
		}
		merged = append(merged, chosen[i:]...)
		merged = append(merged, rest[j:]...)
		copy(order, merged)

		for _, w := range g.Successors(v) {
			if end > readyTime[w] {
				readyTime[w] = end
			}
			indeg[w]--
			if indeg[w] == 0 {
				heap.Push(ready, w)
			}
		}
	}

	if placed != n {
		return nil, fmt.Errorf("listsched: scheduled %d of %d tasks (cyclic graph?)", placed, n)
	}
	return sched, nil
}

// taskQueue is a max-heap of ready tasks ordered by bottom level (largest
// first), with task ID as the deterministic tie-break.
type taskQueue struct {
	bl    []float64
	items []dag.TaskID
}

func (q *taskQueue) Len() int { return len(q.items) }

func (q *taskQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if q.bl[a] != q.bl[b] {
		return q.bl[a] > q.bl[b]
	}
	return a < b
}

func (q *taskQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *taskQueue) Push(x any) { q.items = append(q.items, x.(dag.TaskID)) }

func (q *taskQueue) Pop() any {
	last := len(q.items) - 1
	v := q.items[last]
	q.items = q.items[:last]
	return v
}
