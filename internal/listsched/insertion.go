package listsched

import (
	"fmt"
	"sort"

	"emts/internal/dag"
	"emts/internal/model"
	"emts/internal/schedule"
)

// MapInsertion is an insertion-based variant of the mapping step: instead of
// placing each task after the chosen processors' last assignment (the
// end-of-availability rule of MapWithOptions), it searches the earliest time
// window — including gaps between already-placed tasks — where s(v)
// processors are simultaneously free for the task's full duration.
//
// Insertion produces schedules at least as good as the availability mapper on
// fragmented workloads, at a higher scheduling cost (O(V²·P) worst case
// versus O(E + V log V + V·P)). The paper's Section VI observes that the
// mapping function dominates EMTS's run time; this variant quantifies the
// other side of that trade-off (see BenchmarkAblationInsertionMapping).
//
// Task priorities and tie-breaks match MapWithOptions exactly, so the two
// mappers differ only in placement policy.
func MapInsertion(g *dag.Graph, tab *model.Table, alloc schedule.Allocation) (*schedule.Schedule, error) {
	procs := tab.Procs()
	if err := alloc.Validate(g, procs); err != nil {
		return nil, err
	}
	if tab.NumTasks() != g.NumTasks() {
		return nil, fmt.Errorf("listsched: table covers %d tasks, graph has %d", tab.NumTasks(), g.NumTasks())
	}

	bl := g.BottomLevels(Cost(tab, alloc))
	n := g.NumTasks()
	indeg := make([]int, n)
	copy(indeg, g.Indegrees())
	readyTime := make([]float64, n)
	ready := &blHeap{bl: bl}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready.push(dag.TaskID(i))
		}
	}

	busy := make([][]interval, procs) // per processor, sorted by start
	sched := &schedule.Schedule{Graph: g.Name(), Procs: procs, Entries: make([]schedule.Entry, n)}
	placed := 0

	for ready.len() > 0 {
		v := ready.pop()
		s := alloc[v]
		d := tab.Time(v, s)

		start, chosen := earliestSlot(busy, s, readyTime[v], d)
		end := start + d
		for _, p := range chosen {
			busy[p] = insertInterval(busy[p], interval{start, end})
		}
		e := schedule.Entry{Task: v, Start: start, End: end, Procs: chosen}
		sched.Entries[v] = e
		placed++

		for _, w := range g.Successors(v) {
			if end > readyTime[w] {
				readyTime[w] = end
			}
			indeg[w]--
			if indeg[w] == 0 {
				ready.push(w)
			}
		}
	}
	if placed != n {
		return nil, errIncomplete
	}
	return sched, nil
}

// interval is a half-open busy window [lo, hi).
type interval struct{ lo, hi float64 }

// insertInterval keeps the per-processor busy list sorted by start time.
func insertInterval(list []interval, iv interval) []interval {
	pos := sort.Search(len(list), func(i int) bool { return list[i].lo >= iv.lo })
	list = append(list, interval{})
	copy(list[pos+1:], list[pos:])
	list[pos] = iv
	return list
}

// freeDuring reports whether processor busy-list has no overlap with
// [t, t+d).
func freeDuring(list []interval, t, d float64) bool {
	end := t + d
	// First interval with lo < end could overlap; binary search for the
	// insertion point of end, then check the interval before it.
	pos := sort.Search(len(list), func(i int) bool { return list[i].lo >= end })
	if pos == 0 {
		return true
	}
	return list[pos-1].hi <= t
}

// earliestSlot finds the smallest t >= ready such that at least s processors
// are free during [t, t+d), returning t and the s lowest-numbered free
// processors. Candidate times are the ready time and every busy-interval end
// not before it: between consecutive candidates the set of free processors
// for a fixed window can only change at interval boundaries.
func earliestSlot(busy [][]interval, s int, ready, d float64) (float64, []int) {
	candidates := []float64{ready}
	for _, list := range busy {
		for _, iv := range list {
			if iv.hi >= ready {
				candidates = append(candidates, iv.hi)
			}
		}
	}
	sort.Float64s(candidates)
	chosen := make([]int, 0, s)
	for _, t := range candidates {
		if t < ready {
			continue
		}
		chosen = chosen[:0]
		for p := range busy {
			if freeDuring(busy[p], t, d) {
				chosen = append(chosen, p)
				if len(chosen) == s {
					return t, append([]int(nil), chosen...)
				}
			}
		}
	}
	// Unreachable: the last candidate is the global maximum busy end, where
	// every processor is free.
	panic("listsched: no feasible insertion slot")
}
