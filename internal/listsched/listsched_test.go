package listsched

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emts/internal/dag"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/schedule"
)

var testCluster = platform.Cluster{Name: "test", Procs: 4, SpeedGFlops: 1}

func buildGraph(t *testing.T, flops []float64, edges [][2]int) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("g")
	for _, f := range flops {
		b.AddTask(dag.Task{Flops: f, Alpha: 0})
	}
	for _, e := range edges {
		b.AddEdge(dag.TaskID(e[0]), dag.TaskID(e[1]))
	}
	return b.MustBuild()
}

func TestMapSingleTask(t *testing.T) {
	g := buildGraph(t, []float64{4e9}, nil)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	s, err := Map(g, tab, schedule.Allocation{2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g, tab); err != nil {
		t.Fatal(err)
	}
	// alpha = 0, 4 GFLOP on 2 procs of 1 GFLOPS: 2 s.
	if s.Makespan() != 2 {
		t.Fatalf("makespan = %g, want 2", s.Makespan())
	}
	if got := s.Entries[0].Procs; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("procs = %v, want [0 1] (first processor set)", got)
	}
}

func TestMapChainSequentializes(t *testing.T) {
	g := buildGraph(t, []float64{1e9, 2e9, 3e9}, [][2]int{{0, 1}, {1, 2}})
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	s, err := Map(g, tab, schedule.Ones(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g, tab); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 6 {
		t.Fatalf("makespan = %g, want 6", s.Makespan())
	}
	if s.Entries[1].Start != 1 || s.Entries[2].Start != 3 {
		t.Fatalf("starts: %g, %g", s.Entries[1].Start, s.Entries[2].Start)
	}
}

func TestMapIndependentTasksRunConcurrently(t *testing.T) {
	g := buildGraph(t, []float64{2e9, 2e9, 2e9, 2e9}, nil)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	s, err := Map(g, tab, schedule.Ones(4))
	if err != nil {
		t.Fatal(err)
	}
	// 4 unit tasks, 4 procs: all in parallel.
	if s.Makespan() != 2 {
		t.Fatalf("makespan = %g, want 2", s.Makespan())
	}
	for i, e := range s.Entries {
		if e.Start != 0 {
			t.Fatalf("task %d starts at %g", i, e.Start)
		}
	}
}

func TestMapSerializesWhenProcsShort(t *testing.T) {
	// 3 tasks needing 2 procs each on a 4-proc cluster: two waves.
	g := buildGraph(t, []float64{2e9, 2e9, 2e9}, nil)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	s, err := Map(g, tab, schedule.Allocation{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g, tab); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 2 {
		t.Fatalf("makespan = %g, want 2 (two at t=0, one at t=1)", s.Makespan())
	}
	starts := []float64{s.Entries[0].Start, s.Entries[1].Start, s.Entries[2].Start}
	atZero := 0
	for _, st := range starts {
		if st == 0 {
			atZero++
		}
	}
	if atZero != 2 {
		t.Fatalf("starts = %v, want exactly two at t=0", starts)
	}
}

func TestMapPriorityByBottomLevel(t *testing.T) {
	// Two independent chains; the longer chain's head must run first when
	// both compete for a single processor.
	g := buildGraph(t, []float64{1e9, 5e9, 1e9}, [][2]int{{1, 2}})
	one := platform.Cluster{Name: "uni", Procs: 1, SpeedGFlops: 1}
	tab := model.MustTable(g, model.Amdahl{}, one)
	s, err := Map(g, tab, schedule.Ones(3))
	if err != nil {
		t.Fatal(err)
	}
	// bl(task1) = 6 > bl(task0) = 1, so task 1 starts at 0.
	if s.Entries[1].Start != 0 {
		t.Fatalf("high-priority task starts at %g, want 0", s.Entries[1].Start)
	}
	if s.Makespan() != 7 {
		t.Fatalf("makespan = %g, want 7", s.Makespan())
	}
}

func TestMapBackfillingViaSmallAllocations(t *testing.T) {
	// One wide task (4 procs) and one small independent task. With the big
	// task having larger bl it goes first and occupies everything; the small
	// task follows. Shrinking the big task to 3 procs lets the small task
	// backfill on the free processor.
	g := buildGraph(t, []float64{8e9, 1e9}, nil)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)

	full, err := Map(g, tab, schedule.Allocation{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Entries[1].Start != 2 { // after the wide task ends
		t.Fatalf("no-backfill start = %g, want 2", full.Entries[1].Start)
	}

	shrunk, err := Map(g, tab, schedule.Allocation{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Entries[1].Start != 0 {
		t.Fatalf("backfilled start = %g, want 0", shrunk.Entries[1].Start)
	}
}

func TestMapRejectsBadAllocation(t *testing.T) {
	g := buildGraph(t, []float64{1e9}, nil)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	if _, err := Map(g, tab, schedule.Allocation{5}); err == nil {
		t.Fatal("allocation > P accepted")
	}
	if _, err := Map(g, tab, schedule.Allocation{0}); err == nil {
		t.Fatal("allocation 0 accepted")
	}
	if _, err := Map(g, tab, schedule.Allocation{1, 1}); err == nil {
		t.Fatal("wrong-length allocation accepted")
	}
}

func TestMapRejectsMismatchedTable(t *testing.T) {
	g := buildGraph(t, []float64{1e9, 1e9}, nil)
	small := buildGraph(t, []float64{1e9}, nil)
	tab := model.MustTable(small, model.Amdahl{}, testCluster)
	if _, err := Map(g, tab, schedule.Ones(2)); err == nil {
		t.Fatal("mismatched table accepted")
	}
}

func TestMakespanMatchesMap(t *testing.T) {
	g := buildGraph(t, []float64{3e9, 4e9, 5e9, 1e9}, [][2]int{{0, 2}, {1, 2}, {2, 3}})
	tab := model.MustTable(g, model.Synthetic{}, testCluster)
	alloc := schedule.Allocation{2, 1, 4, 1}
	s, err := Map(g, tab, alloc)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Makespan(g, tab, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if ms != s.Makespan() {
		t.Fatalf("Makespan fast path %g != full map %g", ms, s.Makespan())
	}
}

func TestRejectionStrategy(t *testing.T) {
	g := buildGraph(t, []float64{4e9, 4e9}, [][2]int{{0, 1}})
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	alloc := schedule.Ones(2)
	// True makespan is 8; a bound of 5 must reject, a bound of 9 must pass.
	if _, err := MapWithOptions(g, tab, alloc, Options{RejectAbove: 5}); !errors.Is(err, ErrRejected) {
		t.Fatalf("want ErrRejected, got %v", err)
	}
	s, err := MapWithOptions(g, tab, alloc, Options{RejectAbove: 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 8 {
		t.Fatalf("makespan = %g", s.Makespan())
	}
}

func TestRejectionNeverFiresAboveTrueMakespan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, alloc, tab := randomInstance(rng)
		ms, err := Makespan(g, tab, alloc)
		if err != nil {
			return false
		}
		_, err = MapWithOptions(g, tab, alloc, Options{RejectAbove: ms * 1.0001})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// randomInstance builds a random layered PTG, allocation, and table.
func randomInstance(rng *rand.Rand) (*dag.Graph, schedule.Allocation, *model.Table) {
	b := dag.NewBuilder("prop")
	n := 2 + rng.Intn(25)
	for i := 0; i < n; i++ {
		b.AddTask(dag.Task{Flops: 1e8 + rng.Float64()*5e9, Alpha: rng.Float64() / 4})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.25 {
				b.AddEdge(dag.TaskID(i), dag.TaskID(j))
			}
		}
	}
	g := b.MustBuild()
	cluster := platform.Cluster{Name: "p", Procs: 2 + rng.Intn(15), SpeedGFlops: 1 + rng.Float64()*4}
	var m model.Model = model.Amdahl{}
	if rng.Intn(2) == 0 {
		m = model.Synthetic{}
	}
	tab := model.MustTable(g, m, cluster)
	alloc := make(schedule.Allocation, n)
	for i := range alloc {
		alloc[i] = 1 + rng.Intn(cluster.Procs)
	}
	return g, alloc, tab
}

// TestMapPropertyProducesValidSchedules is the central safety net: for random
// graphs, allocations, models, and cluster sizes, the mapper must always emit
// a schedule that passes full validation and whose makespan equals at least
// the critical path under the chosen allocation.
func TestMapPropertyProducesValidSchedules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, alloc, tab := randomInstance(rng)
		s, err := Map(g, tab, alloc)
		if err != nil {
			return false
		}
		if err := s.Validate(g, tab); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		cp := g.CriticalPathLength(Cost(tab, alloc))
		return s.Makespan() >= cp-1e-9*cp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMapPropertySkipProcSetsSameMakespan checks the fitness fast path agrees
// with the full mapping for random instances.
func TestMapPropertySkipProcSetsSameMakespan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, alloc, tab := randomInstance(rng)
		full, err := Map(g, tab, alloc)
		if err != nil {
			return false
		}
		fast, err := MapWithOptions(g, tab, alloc, Options{SkipProcSets: true})
		if err != nil {
			return false
		}
		return math.Abs(full.Makespan()-fast.Makespan()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMapPropertyLowerBounds: makespan >= total work / P (area bound) and
// >= critical path (dependence bound).
func TestMapPropertyLowerBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, alloc, tab := randomInstance(rng)
		s, err := Map(g, tab, alloc)
		if err != nil {
			return false
		}
		area := 0.0
		for i := 0; i < g.NumTasks(); i++ {
			area += float64(alloc[i]) * tab.Time(dag.TaskID(i), alloc[i])
		}
		areaBound := area / float64(tab.Procs())
		ms := s.Makespan()
		return ms >= areaBound-1e-9*areaBound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
