package listsched

import (
	"math/rand"
	"testing"

	"emts/internal/daggen"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/schedule"
)

func microSetup(b *testing.B, m int) (*Mapper, schedule.Allocation, schedule.Allocation, []int, float64) {
	b.Helper()
	g, err := daggen.Random(daggen.RandomConfig{
		N: 100, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 2,
	}, daggen.DefaultCosts(), 7)
	if err != nil {
		b.Fatal(err)
	}
	tab := model.MustTable(g, model.Synthetic{}, platform.Grelon())
	mp, err := NewMapper(g, tab)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	parent := schedule.Ones(g.NumTasks())
	for i := range parent {
		parent[i] = 1 + rng.Intn(tab.Procs())
	}
	child, mutated := mutateRandom(rng, parent, m, tab.Procs())
	full, err := mp.Makespan(parent)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := mp.MakespanDelta(child, parent, mutated, Options{}); err != nil {
		b.Fatal(err)
	}
	return mp, parent, child, mutated, full
}

func BenchmarkMicroFullRejected(b *testing.B) {
	mp, _, child, _, full := microSetup(b, 7)
	opt := Options{RejectAbove: full * 0.5, DisablePrefilter: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp.MakespanOpts(child, opt)
	}
}

func BenchmarkMicroDeltaRejected(b *testing.B) {
	mp, parent, child, mutated, full := microSetup(b, 7)
	opt := Options{RejectAbove: full * 0.5, DisablePrefilter: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp.MakespanDelta(child, parent, mutated, opt)
	}
}

func BenchmarkMicroFullAccepted(b *testing.B) {
	mp, _, child, _, _ := microSetup(b, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mp.Makespan(child); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroDeltaAccepted(b *testing.B) {
	mp, parent, child, mutated, _ := microSetup(b, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mp.MakespanDelta(child, parent, mutated, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
