package listsched

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"emts/internal/dag"
	"emts/internal/daggen"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/schedule"
)

// TestMapperMatchesPackageFunctions: a reused Mapper must produce the same
// schedules and makespans as the one-shot package functions for a stream of
// random allocations against one instance — warm scratch state must never
// leak between calls.
func TestMapperMatchesPackageFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, _, tab := randomInstance(rng)
	m, err := NewMapper(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		alloc := make(schedule.Allocation, g.NumTasks())
		for i := range alloc {
			alloc[i] = 1 + rng.Intn(tab.Procs())
		}
		wantSched, err := Map(g, tab, alloc)
		if err != nil {
			t.Fatal(err)
		}
		gotSched, err := m.Map(alloc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantSched, gotSched) {
			t.Fatalf("trial %d: reused Mapper schedule differs from Map", trial)
		}
		gotMs, err := m.Makespan(alloc)
		if err != nil {
			t.Fatal(err)
		}
		if gotMs != wantSched.Makespan() {
			t.Fatalf("trial %d: Mapper.Makespan = %g, Map makespan = %g", trial, gotMs, wantSched.Makespan())
		}
	}
}

// TestMapperPropertyMatchesAcrossInstances repeats the equivalence check over
// random instances (graph shape, model, cluster size all vary).
func TestMapperPropertyMatchesAcrossInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, alloc, tab := randomInstance(rng)
		m, err := NewMapper(g, tab)
		if err != nil {
			return false
		}
		// Two calls: the second runs on warm arenas.
		for k := 0; k < 2; k++ {
			want, err := Makespan(g, tab, alloc)
			if err != nil {
				return false
			}
			got, err := m.Makespan(alloc)
			if err != nil {
				return false
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMapperBoundedMatchesOptions: MakespanBounded must agree with
// MapWithOptions{RejectAbove} on both the rejection decision and the value.
func TestMapperBoundedMatchesOptions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, alloc, tab := randomInstance(rng)
		m, err := NewMapper(g, tab)
		if err != nil {
			return false
		}
		full, err := Makespan(g, tab, alloc)
		if err != nil {
			return false
		}
		for _, bound := range []float64{full * 0.5, full * 0.999, full, full * 1.5} {
			want, wantErr := MapWithOptions(g, tab, alloc, Options{SkipProcSets: true, RejectAbove: bound})
			got, gotErr := m.MakespanBounded(alloc, bound)
			if errors.Is(wantErr, ErrRejected) != errors.Is(gotErr, ErrRejected) {
				return false
			}
			if wantErr == nil && (gotErr != nil || got != want.Makespan()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestMapperRejectionExact pins the property the fitness memoization cache
// relies on: with bound b, mapping is rejected if and only if the unbounded
// makespan exceeds b. This is what lets a cached fitness emulate a bounded
// re-evaluation exactly (ea.evalEngine).
func TestMapperRejectionExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, alloc, tab := randomInstance(rng)
		m, err := NewMapper(g, tab)
		if err != nil {
			return false
		}
		full, err := m.Makespan(alloc)
		if err != nil {
			return false
		}
		for i := 0; i < 8; i++ {
			bound := full * (0.5 + rng.Float64())
			_, err := m.MakespanBounded(alloc, bound)
			if (full > bound) != errors.Is(err, ErrRejected) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestMapperMakespanZeroAllocs pins the tentpole guarantee: a warm
// Mapper.Makespan call performs zero heap allocations.
func TestMapperMakespanZeroAllocs(t *testing.T) {
	g, err := daggen.Random(daggen.RandomConfig{
		N: 300, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 2,
	}, daggen.DefaultCosts(), 7)
	if err != nil {
		t.Fatal(err)
	}
	tab := model.MustTable(g, model.Synthetic{}, platform.Grelon())
	m, err := NewMapper(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	alloc := schedule.Ones(g.NumTasks())
	for i := range alloc {
		alloc[i] = 1 + i%tab.Procs()
	}
	if _, err := m.Makespan(alloc); err != nil { // warm up
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := m.Makespan(alloc); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm Mapper.Makespan allocates %.1f times per call, want 0", avg)
	}
	// The bounded (rejecting) variant must be allocation-free too: it is the
	// EA's inner loop when UseRejection is on. A bound below the makespan
	// exercises the early-abort path.
	full, err := m.Makespan(alloc)
	if err != nil {
		t.Fatal(err)
	}
	avg = testing.AllocsPerRun(100, func() {
		if _, err := m.MakespanBounded(alloc, full/2); !errors.Is(err, ErrRejected) {
			t.Fatalf("expected rejection, got %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm rejected MakespanBounded allocates %.1f times per call, want 0", avg)
	}
}

// benchMapperInstance is the 100-task irregular PTG of the root bench suite.
func benchMapperInstance(b *testing.B) (*dag.Graph, *model.Table, schedule.Allocation) {
	b.Helper()
	g, err := daggen.Random(daggen.RandomConfig{
		N: 100, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 2,
	}, daggen.DefaultCosts(), 7)
	if err != nil {
		b.Fatal(err)
	}
	tab := model.MustTable(g, model.Synthetic{}, platform.Grelon())
	alloc := schedule.Ones(g.NumTasks())
	for i := range alloc {
		alloc[i] = 1 + i%tab.Procs()
	}
	return g, tab, alloc
}

// BenchmarkMapperReuse measures one warm fitness evaluation on the reusable
// engine; BenchmarkMakespanOneShot below is the same work paying full
// per-call construction.
func BenchmarkMapperReuse(b *testing.B) {
	g, tab, alloc := benchMapperInstance(b)
	m, err := NewMapper(g, tab)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Makespan(alloc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMakespanOneShot is the control: identical instance and allocation
// through the one-shot package function.
func BenchmarkMakespanOneShot(b *testing.B) {
	g, tab, alloc := benchMapperInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Makespan(g, tab, alloc); err != nil {
			b.Fatal(err)
		}
	}
}
