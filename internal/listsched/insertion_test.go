package listsched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"emts/internal/dag"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/schedule"
)

func TestInsertionNotWorseOnMixedWidths(t *testing.T) {
	// A wide long task feeding a wide successor, plus a small independent
	// task: both mappers must produce valid schedules and insertion must not
	// lose to availability mapping.
	b := dag.NewBuilder("gap")
	a := b.AddTask(dag.Task{Flops: 40e9, Alpha: 0})     // long, 4 procs
	_ = b.AddTask(dag.Task{Flops: 2e9, Alpha: 0})       // short, independent
	bTask := b.AddTask(dag.Task{Flops: 30e9, Alpha: 0}) // child of the long task
	b.AddEdge(a, bTask)
	g := b.MustBuild()
	cluster := testCluster // 4 procs, 1 GFLOPS
	tab := model.MustTable(g, model.Amdahl{}, cluster)
	alloc := schedule.Allocation{4, 2, 4}
	avail, err := Map(g, tab, alloc)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := MapInsertion(g, tab, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Validate(g, tab); err != nil {
		t.Fatal(err)
	}
	if ins.Makespan() > avail.Makespan()+1e-9 {
		t.Fatalf("insertion %g worse than availability %g", ins.Makespan(), avail.Makespan())
	}
}

func TestInsertionExploitsHole(t *testing.T) {
	// A 2-processor hole scenario:
	//   T0: 2 procs [0,2) (source); T1: 1 proc [2,10) on proc 0;
	//   T2: 1 proc [2,3) on proc 1; T3: 2 procs, child of T2, must wait for
	//   proc 0 (t=10); T4: 1 proc, child of T2, ready at 3.
	// T3 outranks T4 by bottom level, so the availability mapper places T3
	// first and T4 lands after it; the insertion mapper slides T4 into proc
	// 1's idle window [3,10) instead.
	b := dag.NewBuilder("hole")
	t0 := b.AddTask(dag.Task{Flops: 2e9, Alpha: 0}) // [0,2) on both procs
	t1 := b.AddTask(dag.Task{Flops: 8e9, Alpha: 0}) // proc 0: [2,10)
	t2 := b.AddTask(dag.Task{Flops: 1e9, Alpha: 0}) // proc 1: [2,3)
	t3 := b.AddTask(dag.Task{Flops: 4e9, Alpha: 0}) // child of t2, 2 procs
	t4 := b.AddTask(dag.Task{Flops: 2e9, Alpha: 0}) // child of t2, 1 proc
	b.AddEdge(t0, t1)
	b.AddEdge(t0, t2)
	b.AddEdge(t2, t3)
	b.AddEdge(t2, t4)
	g := b.MustBuild()
	cluster := twoProc
	tab := model.MustTable(g, model.Amdahl{}, cluster)
	alloc := schedule.Allocation{2, 1, 1, 2, 1}
	// t3 needs both procs: earliest at 10 (t1 ends). That leaves proc 1 idle
	// [3,10): the availability mapper cannot put t4 (ready at 3, bl lower
	// than t3's) before t3 on proc 1 because proc 1's availability after t3
	// is 10+...; insertion slides t4 into the idle window [3,5).
	avail, err := Map(g, tab, alloc)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := MapInsertion(g, tab, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Validate(g, tab); err != nil {
		t.Fatal(err)
	}
	if ins.Entries[t4].Start >= avail.Entries[t4].Start {
		t.Fatalf("insertion did not exploit the hole: t4 at %g vs %g",
			ins.Entries[t4].Start, avail.Entries[t4].Start)
	}
	if ins.Makespan() > avail.Makespan()+1e-9 {
		t.Fatalf("insertion makespan %g worse than %g", ins.Makespan(), avail.Makespan())
	}
	_ = t1
	_ = t3
}

var twoProc = platform.Cluster{Name: "two", Procs: 2, SpeedGFlops: 1}

func TestInsertionPropertyValidSchedules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, alloc, tab := randomInstance(rng)
		s, err := MapInsertion(g, tab, alloc)
		if err != nil {
			return false
		}
		if err := s.Validate(g, tab); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		// Insertion never produces a worse makespan than availability
		// mapping on the same instance... not guaranteed in theory (greedy
		// interactions), so assert the weaker invariant: within 10%.
		availMS, err := Makespan(g, tab, alloc)
		if err != nil {
			return false
		}
		return s.Makespan() <= availMS*1.1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertionRejectsBadInput(t *testing.T) {
	g := buildGraph(t, []float64{1e9}, nil)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	if _, err := MapInsertion(g, tab, schedule.Allocation{0}); err == nil {
		t.Fatal("bad allocation accepted")
	}
	small := buildGraph(t, []float64{1e9, 1e9}, nil)
	smallTab := model.MustTable(small, model.Amdahl{}, testCluster)
	if _, err := MapInsertion(g, smallTab, schedule.Allocation{1}); err == nil {
		t.Fatal("mismatched table accepted")
	}
}
