package listsched

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"emts/internal/daggen"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/schedule"
)

// checkPrefilterExactness verifies the Layer-1 contract on one (instance,
// bound) pair: MakespanOpts must return the identical (value, error) outcome
// with the prefilter on and off. Returns false on violation.
func checkPrefilterExactness(m *Mapper, alloc schedule.Allocation, bound float64) bool {
	on, onErr := m.MakespanOpts(alloc, Options{RejectAbove: bound})
	off, offErr := m.MakespanOpts(alloc, Options{RejectAbove: bound, DisablePrefilter: true})
	if errors.Is(onErr, ErrRejected) != errors.Is(offErr, ErrRejected) {
		return false
	}
	if (onErr == nil) != (offErr == nil) {
		return false
	}
	return onErr != nil || on == off
}

// TestPrefilterExactness is the satellite property test: across random
// graphs, allocations, and bounds — including bounds straddling the true
// makespan — the admissible lower-bound prefilter must never change the
// (value, error) outcome of a bounded evaluation. This is the exactness
// guarantee the memo cache and the determinism meta-tests rely on.
func TestPrefilterExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, alloc, tab := randomInstance(rng)
		m, err := NewMapper(g, tab)
		if err != nil {
			return false
		}
		full, err := m.Makespan(alloc)
		if err != nil {
			return false
		}
		bounds := []float64{
			full * 0.25, full * 0.5, full * 0.999, full,
			full * 1.0001, full * 1.5, full * 4,
		}
		for i := 0; i < 6; i++ {
			bounds = append(bounds, full*(0.25+1.5*rng.Float64()))
		}
		for _, bound := range bounds {
			if !checkPrefilterExactness(m, alloc, bound) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzPrefilterExactness is the fuzz-smoke version of TestPrefilterExactness:
// the instance is derived from the fuzzed seed and the bound from the fuzzed
// scale, so the corpus explores bound positions the fixed grid above misses.
func FuzzPrefilterExactness(f *testing.F) {
	f.Add(int64(1), 0.5)
	f.Add(int64(7), 0.999)
	f.Add(int64(42), 1.0)
	f.Add(int64(99), 1.0001)
	f.Add(int64(-3), 2.0)
	f.Fuzz(func(t *testing.T, seed int64, scale float64) {
		if scale != scale || scale <= 0 || scale > 1e6 {
			return // NaN or useless bound; RejectAbove <= 0 disables rejection anyway
		}
		rng := rand.New(rand.NewSource(seed))
		g, alloc, tab := randomInstance(rng)
		m, err := NewMapper(g, tab)
		if err != nil {
			t.Fatal(err)
		}
		full, err := m.Makespan(alloc)
		if err != nil {
			t.Fatal(err)
		}
		if !checkPrefilterExactness(m, alloc, full*scale) {
			t.Fatalf("prefilter on/off diverged: seed=%d scale=%g full=%g", seed, scale, full)
		}
	})
}

// mutateRandom derives a child from parent by mutating up to k random
// positions, returning the child and the touched positions (possibly with
// values equal to the parent's — the delta sweep must tolerate no-op
// mutations).
func mutateRandom(rng *rand.Rand, parent schedule.Allocation, k, procs int) (schedule.Allocation, []int) {
	child := parent.Clone()
	var mutated []int
	for j := 0; j < k; j++ {
		p := rng.Intn(len(child))
		child[p] = 1 + rng.Intn(procs)
		mutated = append(mutated, p)
	}
	return child, mutated
}

// TestMakespanDeltaMatchesFull is the Layer-3 property test: for random
// instances, random parents, and random mutations (1 to V positions,
// including duplicate positions and no-op mutations), MakespanDelta must
// return the bit-identical (value, error) outcome of a full evaluation —
// unbounded and across bounds straddling the makespan, with and without the
// prefilter, and with the parent baseline both cold and warm.
func TestMakespanDeltaMatchesFull(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, parent, tab := randomInstance(rng)
		m, err := NewMapper(g, tab)
		if err != nil {
			return false
		}
		// Several offspring of the same parent: the first call builds the
		// parent baseline, later ones replay it from the ring.
		for trial := 0; trial < 6; trial++ {
			child, mutated := mutateRandom(rng, parent, 1+rng.Intn(len(parent)), tab.Procs())
			full, fullErr := m.MakespanOpts(child, Options{})
			if fullErr != nil {
				return false
			}
			got, gotErr := m.MakespanDelta(child, parent, mutated, Options{})
			if gotErr != nil || got != full {
				return false
			}
			for _, bound := range []float64{full * 0.5, full * 0.999, full, full * 1.5} {
				for _, noPre := range []bool{false, true} {
					opt := Options{RejectAbove: bound, DisablePrefilter: noPre}
					want, wantErr := m.MakespanOpts(child, opt)
					got, gotErr := m.MakespanDelta(child, parent, mutated, opt)
					if errors.Is(wantErr, ErrRejected) != errors.Is(gotErr, ErrRejected) {
						return false
					}
					if wantErr == nil && (gotErr != nil || got != want) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestMakespanDeltaZeroAllocs pins the Layer-3 hot path: once the parent
// baseline is cached, a delta evaluation performs zero heap allocations —
// accepted or rejected.
func TestMakespanDeltaZeroAllocs(t *testing.T) {
	g, err := daggen.Random(daggen.RandomConfig{
		N: 300, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 2,
	}, daggen.DefaultCosts(), 7)
	if err != nil {
		t.Fatal(err)
	}
	tab := model.MustTable(g, model.Synthetic{}, platform.Grelon())
	m, err := NewMapper(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	parent := schedule.Ones(g.NumTasks())
	for i := range parent {
		parent[i] = 1 + i%tab.Procs()
	}
	rng := rand.New(rand.NewSource(3))
	child, mutated := mutateRandom(rng, parent, 5, tab.Procs())
	full, err := m.MakespanDelta(child, parent, mutated, Options{}) // warm up: builds the baseline
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := m.MakespanDelta(child, parent, mutated, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm MakespanDelta allocates %.1f times per call, want 0", avg)
	}
	avg = testing.AllocsPerRun(100, func() {
		if _, err := m.MakespanDelta(child, parent, mutated, Options{RejectAbove: full / 2}); !errors.Is(err, ErrRejected) {
			t.Fatalf("expected rejection, got %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm rejected MakespanDelta allocates %.1f times per call, want 0", avg)
	}
}
