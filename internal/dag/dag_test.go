package dag

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds the four-task diamond 0 -> {1,2} -> 3 with unit-ish costs.
func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("diamond")
	for i := 0; i < 4; i++ {
		b.AddTask(Task{Name: "t", Flops: float64(i+1) * 1e9, Alpha: 0.1})
	}
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderAssignsDenseIDs(t *testing.T) {
	b := NewBuilder("x")
	id0 := b.AddTask(Task{Flops: 1})
	id1 := b.AddTask(Task{Flops: 2})
	if id0 != 0 || id1 != 1 {
		t.Fatalf("got IDs %d,%d want 0,1", id0, id1)
	}
	g := b.MustBuild()
	if g.Task(1).Flops != 2 {
		t.Fatalf("task 1 flops = %g", g.Task(1).Flops)
	}
}

func TestBuilderRejectsCycle(t *testing.T) {
	b := NewBuilder("cyc")
	b.AddTask(Task{Flops: 1})
	b.AddTask(Task{Flops: 1})
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder("self")
	b.AddTask(Task{Flops: 1})
	b.AddEdge(0, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected self-loop error")
	}
}

func TestBuilderRejectsBadEndpoints(t *testing.T) {
	b := NewBuilder("bad")
	b.AddTask(Task{Flops: 1})
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected endpoint error")
	}
}

func TestBuilderRejectsNegativeFlops(t *testing.T) {
	b := NewBuilder("neg")
	b.AddTask(Task{Flops: -1})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected negative-flops error")
	}
}

func TestBuilderRejectsBadAlpha(t *testing.T) {
	b := NewBuilder("alpha")
	b.AddTask(Task{Flops: 1, Alpha: 1.5})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected alpha error")
	}
}

func TestDuplicateEdgesIgnored(t *testing.T) {
	b := NewBuilder("dup")
	b.AddTask(Task{Flops: 1})
	b.AddTask(Task{Flops: 1})
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestTopologicalOrderDiamond(t *testing.T) {
	g := diamond(t)
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []TaskID{0, 1, 2, 3}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestSourcesAndSinks(t *testing.T) {
	g := diamond(t)
	if got := g.Sources(); !reflect.DeepEqual(got, []TaskID{0}) {
		t.Fatalf("Sources = %v", got)
	}
	if got := g.Sinks(); !reflect.DeepEqual(got, []TaskID{3}) {
		t.Fatalf("Sinks = %v", got)
	}
}

func TestPrecedenceLevels(t *testing.T) {
	g := diamond(t)
	level, byLevel := g.PrecedenceLevels()
	if !reflect.DeepEqual(level, []int{0, 1, 1, 2}) {
		t.Fatalf("levels = %v", level)
	}
	if len(byLevel) != 3 || len(byLevel[1]) != 2 {
		t.Fatalf("byLevel = %v", byLevel)
	}
}

func TestBottomLevels(t *testing.T) {
	g := diamond(t)
	unit := func(id TaskID) float64 { return 1 }
	bl := g.BottomLevels(unit)
	want := []float64{3, 2, 2, 1}
	if !reflect.DeepEqual(bl, want) {
		t.Fatalf("bl = %v, want %v", bl, want)
	}
}

func TestTopLevels(t *testing.T) {
	g := diamond(t)
	unit := func(id TaskID) float64 { return 1 }
	tl := g.TopLevels(unit)
	want := []float64{0, 1, 1, 2}
	if !reflect.DeepEqual(tl, want) {
		t.Fatalf("tl = %v, want %v", tl, want)
	}
}

func TestCriticalPath(t *testing.T) {
	g := diamond(t)
	// Cost of task i is i+1, so the heavier branch is through task 2.
	cost := func(id TaskID) float64 { return float64(id + 1) }
	path, length := g.CriticalPath(cost)
	if !reflect.DeepEqual(path, []TaskID{0, 2, 3}) {
		t.Fatalf("path = %v", path)
	}
	if length != 1+3+4 {
		t.Fatalf("length = %g, want 8", length)
	}
	if got := g.CriticalPathLength(cost); got != length {
		t.Fatalf("CriticalPathLength = %g, want %g", got, length)
	}
}

func TestTotalWork(t *testing.T) {
	g := diamond(t)
	cost := func(id TaskID) float64 { return 2 }
	if got := g.TotalWork(cost); got != 8 {
		t.Fatalf("TotalWork = %g, want 8", got)
	}
}

func TestWidthAndDepth(t *testing.T) {
	g := diamond(t)
	if g.MaxWidth() != 2 {
		t.Fatalf("MaxWidth = %d", g.MaxWidth())
	}
	if g.Depth() != 3 {
		t.Fatalf("Depth = %d", g.Depth())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumTasks() != g.NumTasks() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %d/%d vs %d/%d tasks/edges",
			g2.NumTasks(), g2.NumEdges(), g.NumTasks(), g.NumEdges())
	}
	for i := 0; i < g.NumTasks(); i++ {
		if g2.Task(TaskID(i)).Flops != g.Task(TaskID(i)).Flops {
			t.Fatalf("task %d flops changed", i)
		}
	}
	if !reflect.DeepEqual(g2.Edges(), g.Edges()) {
		t.Fatalf("edges changed: %v vs %v", g2.Edges(), g.Edges())
	}
}

func TestReadRejectsCyclicFile(t *testing.T) {
	src := `{"name":"c","tasks":[{"flops":1},{"flops":1}],"edges":[[0,1],[1,0]]}`
	if _, err := Read(strings.NewReader(src)); err == nil {
		t.Fatal("expected error for cyclic PTG file")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestDOTOutput(t *testing.T) {
	g := diamond(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", "n0 -> n1", "n2 -> n3"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// randomLayeredGraph builds a random layered DAG for property tests.
func randomLayeredGraph(rng *rand.Rand, maxTasks int) *Graph {
	b := NewBuilder("prop")
	n := 2 + rng.Intn(maxTasks-1)
	for i := 0; i < n; i++ {
		b.AddTask(Task{Flops: 1e9 * (1 + rng.Float64()), Alpha: rng.Float64() / 4})
	}
	// Edges only from lower to higher IDs: acyclic by construction.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				b.AddEdge(TaskID(i), TaskID(j))
			}
		}
	}
	return b.MustBuild()
}

func TestTopologicalOrderPropertyRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomLayeredGraph(rng, 30)
		order, err := g.TopologicalOrder()
		if err != nil {
			return false
		}
		pos := make([]int, g.NumTasks())
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e.Src] >= pos[e.Dst] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBottomLevelPropertyDominatesSuccessors(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomLayeredGraph(rng, 30)
		cost := func(id TaskID) float64 { return g.Task(id).Flops }
		bl := g.BottomLevels(cost)
		for i := 0; i < g.NumTasks(); i++ {
			v := TaskID(i)
			if bl[v] < cost(v) {
				return false
			}
			for _, s := range g.Successors(v) {
				if bl[v] < bl[s]+cost(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPathPropertyIsPathAndMatchesBL(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomLayeredGraph(rng, 30)
		cost := func(id TaskID) float64 { return g.Task(id).Flops }
		path, length := g.CriticalPath(cost)
		if len(path) == 0 {
			return false
		}
		sum := 0.0
		for i, v := range path {
			sum += cost(v)
			if i > 0 {
				// consecutive path elements must be connected
				found := false
				for _, s := range g.Successors(path[i-1]) {
					if s == v {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		eps := 1e-9 * length // relative tolerance: costs are ~1e9
		return sum <= length+eps && length <= g.CriticalPathLength(cost)+eps &&
			g.CriticalPathLength(cost) <= length+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrecedenceLevelPropertyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomLayeredGraph(rng, 30)
		level, byLevel := g.PrecedenceLevels()
		for _, e := range g.Edges() {
			if level[e.Src] >= level[e.Dst] {
				return false
			}
		}
		count := 0
		for _, l := range byLevel {
			count += len(l)
		}
		return count == g.NumTasks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
