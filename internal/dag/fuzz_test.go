package dag

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that arbitrary input to the JSON PTG reader either fails
// cleanly or produces a graph that satisfies the package invariants (valid
// topological order, consistent adjacency) and round-trips.
func FuzzRead(f *testing.F) {
	f.Add(`{"name":"g","tasks":[{"flops":1},{"flops":2}],"edges":[[0,1]]}`)
	f.Add(`{"tasks":[],"edges":[]}`)
	f.Add(`{"tasks":[{"flops":1}],"edges":[[0,0]]}`)
	f.Add(`not json at all`)
	f.Add(`{"tasks":[{"flops":-5}]}`)
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		order, err := g.TopologicalOrder()
		if err != nil {
			t.Fatalf("accepted graph has no topological order: %v", err)
		}
		if len(order) != g.NumTasks() {
			t.Fatalf("order covers %d of %d tasks", len(order), g.NumTasks())
		}
		for _, e := range g.Edges() {
			if e.Src == e.Dst {
				t.Fatal("accepted self-loop")
			}
		}
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.NumTasks() != g.NumTasks() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzReadDOT checks the DOT parser never panics and only accepts graphs
// that satisfy the invariants.
func FuzzReadDOT(f *testing.F) {
	f.Add(`digraph g { a [size="1e9"] b a -> b }`)
	f.Add(`digraph { a -> b -> c }`)
	f.Add(`strict digraph "x" { graph [k=v] n [size=1] }`)
	f.Add(`digraph { /* comment`)
	f.Add(`digraph { a [size="`)
	f.Add(`digraph { rankdir=TB; a -> a }`)
	f.Add("digraph { \"quo\\\"ted\" }")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadDOT(strings.NewReader(src))
		if err != nil {
			return
		}
		if _, err := g.TopologicalOrder(); err != nil {
			t.Fatalf("accepted graph has no topological order: %v", err)
		}
		for i := 0; i < g.NumTasks(); i++ {
			task := g.Task(TaskID(i))
			if task.ID != TaskID(i) {
				t.Fatal("non-dense IDs")
			}
		}
	})
}
