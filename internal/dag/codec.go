package dag

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// fileGraph is the on-disk JSON representation of a PTG, the format read by
// the simulator (Section IV: "the simulator reads the description of the
// PTG"). Edges reference tasks by index.
type fileGraph struct {
	Name  string     `json:"name"`
	Tasks []fileTask `json:"tasks"`
	Edges [][2]int   `json:"edges"`
}

type fileTask struct {
	Name  string  `json:"name,omitempty"`
	Flops float64 `json:"flops"`
	Alpha float64 `json:"alpha"`
	Data  float64 `json:"data,omitempty"`
}

// MarshalJSON encodes the graph in the PTG file format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	fg := fileGraph{Name: g.name, Tasks: make([]fileTask, len(g.tasks))}
	for i, t := range g.tasks {
		fg.Tasks[i] = fileTask{Name: t.Name, Flops: t.Flops, Alpha: t.Alpha, Data: t.Data}
	}
	for _, e := range g.Edges() {
		fg.Edges = append(fg.Edges, [2]int{int(e.Src), int(e.Dst)})
	}
	return json.Marshal(fg)
}

// Write encodes the graph as indented JSON to w.
func (g *Graph) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// Read decodes a PTG from its JSON file format and validates it.
func Read(r io.Reader) (*Graph, error) {
	var fg fileGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&fg); err != nil {
		return nil, fmt.Errorf("dag: decoding PTG: %w", err)
	}
	return fromFileGraph(fg)
}

// UnmarshalGraph decodes a PTG from JSON bytes and validates it.
func UnmarshalGraph(data []byte) (*Graph, error) {
	var fg fileGraph
	if err := json.Unmarshal(data, &fg); err != nil {
		return nil, fmt.Errorf("dag: decoding PTG: %w", err)
	}
	return fromFileGraph(fg)
}

func fromFileGraph(fg fileGraph) (*Graph, error) {
	b := NewBuilder(fg.Name)
	for _, t := range fg.Tasks {
		b.AddTask(Task{Name: t.Name, Flops: t.Flops, Alpha: t.Alpha, Data: t.Data})
	}
	for _, e := range fg.Edges {
		b.AddEdge(TaskID(e[0]), TaskID(e[1]))
	}
	return b.Build()
}

// DOT renders the graph in Graphviz DOT syntax. Node labels show the task name
// (or ID) and the cost in GFLOP.
func (g *Graph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", safeDOTName(g.name))
	sb.WriteString("  rankdir=TB;\n  node [shape=box];\n")
	for _, t := range g.tasks {
		label := t.Name
		if label == "" {
			label = fmt.Sprintf("v%d", t.ID)
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\\n%.2f GFLOP\"];\n", t.ID, label, t.Flops/1e9)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  n%d -> n%d;\n", e.Src, e.Dst)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func safeDOTName(name string) string {
	if name == "" {
		return "ptg"
	}
	return name
}
