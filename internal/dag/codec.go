package dag

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// DecodeError is a typed validation failure of untrusted PTG input. Field
// names the offending JSON element in path syntax (e.g. "tasks[3].flops" or
// "edges[7]"), so servers can turn the error into a precise 400 response.
// DecodeError wraps the underlying sentinel (e.g. ErrCycle) when one exists.
type DecodeError struct {
	// Field is the JSON path of the offending element.
	Field string
	// Msg describes the violation.
	Msg string
	// Err is the underlying error, if any (e.g. ErrCycle).
	Err error
}

// Error implements error.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("dag: invalid PTG: %s: %s", e.Field, e.Msg)
}

// Unwrap exposes the underlying sentinel to errors.Is.
func (e *DecodeError) Unwrap() error { return e.Err }

// decodeErrorf builds a DecodeError with a formatted field path.
func decodeErrorf(err error, field string, msg string, args ...interface{}) *DecodeError {
	return &DecodeError{Field: field, Msg: fmt.Sprintf(msg, args...), Err: err}
}

// fileGraph is the on-disk JSON representation of a PTG, the format read by
// the simulator (Section IV: "the simulator reads the description of the
// PTG"). Edges reference tasks by index.
type fileGraph struct {
	Name  string     `json:"name"`
	Tasks []fileTask `json:"tasks"`
	Edges [][2]int   `json:"edges"`
}

type fileTask struct {
	Name  string  `json:"name,omitempty"`
	Flops float64 `json:"flops"`
	Alpha float64 `json:"alpha"`
	Data  float64 `json:"data,omitempty"`
}

// MarshalJSON encodes the graph in the PTG file format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	fg := fileGraph{Name: g.name, Tasks: make([]fileTask, len(g.tasks))}
	for i, t := range g.tasks {
		fg.Tasks[i] = fileTask{Name: t.Name, Flops: t.Flops, Alpha: t.Alpha, Data: t.Data}
	}
	for _, e := range g.Edges() {
		fg.Edges = append(fg.Edges, [2]int{int(e.Src), int(e.Dst)})
	}
	return json.Marshal(fg)
}

// Write encodes the graph as indented JSON to w.
func (g *Graph) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// Read decodes a PTG from its JSON file format and validates it. The decoder
// treats its input as untrusted: cycles, out-of-range or duplicate edges, and
// non-finite task weights are rejected with a *DecodeError naming the
// offending field.
func Read(r io.Reader) (*Graph, error) {
	var fg fileGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&fg); err != nil {
		return nil, fmt.Errorf("dag: decoding PTG: %w", err)
	}
	return fromFileGraph(fg)
}

// UnmarshalGraph decodes a PTG from JSON bytes and validates it, with the
// same strict untrusted-input validation as Read.
func UnmarshalGraph(data []byte) (*Graph, error) {
	var fg fileGraph
	if err := json.Unmarshal(data, &fg); err != nil {
		return nil, fmt.Errorf("dag: decoding PTG: %w", err)
	}
	return fromFileGraph(fg)
}

// fromFileGraph validates the decoded file structure field by field before
// handing it to the Builder, so every rejection carries a JSON path. The
// Builder re-checks some of the invariants (defense in depth for programmatic
// construction), but its errors do not name file fields.
func fromFileGraph(fg fileGraph) (*Graph, error) {
	n := len(fg.Tasks)
	for i, t := range fg.Tasks {
		switch {
		case math.IsNaN(t.Flops) || math.IsInf(t.Flops, 0):
			return nil, decodeErrorf(nil, fmt.Sprintf("tasks[%d].flops", i), "non-finite value %g", t.Flops)
		case t.Flops < 0:
			return nil, decodeErrorf(nil, fmt.Sprintf("tasks[%d].flops", i), "negative value %g", t.Flops)
		case math.IsNaN(t.Alpha) || math.IsInf(t.Alpha, 0):
			return nil, decodeErrorf(nil, fmt.Sprintf("tasks[%d].alpha", i), "non-finite value %g", t.Alpha)
		case t.Alpha < 0 || t.Alpha > 1:
			return nil, decodeErrorf(nil, fmt.Sprintf("tasks[%d].alpha", i), "value %g outside [0,1]", t.Alpha)
		case math.IsNaN(t.Data) || math.IsInf(t.Data, 0):
			return nil, decodeErrorf(nil, fmt.Sprintf("tasks[%d].data", i), "non-finite value %g", t.Data)
		case t.Data < 0:
			return nil, decodeErrorf(nil, fmt.Sprintf("tasks[%d].data", i), "negative value %g", t.Data)
		}
	}
	seen := make(map[[2]int]bool, len(fg.Edges))
	for i, e := range fg.Edges {
		switch {
		case e[0] < 0 || e[0] >= n:
			return nil, decodeErrorf(nil, fmt.Sprintf("edges[%d]", i), "source %d out of range (have %d tasks)", e[0], n)
		case e[1] < 0 || e[1] >= n:
			return nil, decodeErrorf(nil, fmt.Sprintf("edges[%d]", i), "destination %d out of range (have %d tasks)", e[1], n)
		case e[0] == e[1]:
			return nil, decodeErrorf(nil, fmt.Sprintf("edges[%d]", i), "self-loop on task %d", e[0])
		case seen[e]:
			return nil, decodeErrorf(nil, fmt.Sprintf("edges[%d]", i), "duplicate edge (%d,%d)", e[0], e[1])
		}
		seen[e] = true
	}
	b := NewBuilder(fg.Name)
	for _, t := range fg.Tasks {
		b.AddTask(Task{Name: t.Name, Flops: t.Flops, Alpha: t.Alpha, Data: t.Data})
	}
	for _, e := range fg.Edges {
		b.AddEdge(TaskID(e[0]), TaskID(e[1]))
	}
	g, err := b.Build()
	if errors.Is(err, ErrCycle) {
		return nil, decodeErrorf(ErrCycle, "edges", "graph contains a cycle")
	}
	return g, err
}

// DOT renders the graph in Graphviz DOT syntax. Node labels show the task name
// (or ID) and the cost in GFLOP.
func (g *Graph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", safeDOTName(g.name))
	sb.WriteString("  rankdir=TB;\n  node [shape=box];\n")
	for _, t := range g.tasks {
		label := t.Name
		if label == "" {
			label = fmt.Sprintf("v%d", t.ID)
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\\n%.2f GFLOP\"];\n", t.ID, label, t.Flops/1e9)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  n%d -> n%d;\n", e.Src, e.Dst)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func safeDOTName(name string) string {
	if name == "" {
		return "ptg"
	}
	return name
}
