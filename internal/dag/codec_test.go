package dag

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestReadStrictValidation exercises the untrusted-input rejections of the
// JSON codec: every bad input must fail with a *DecodeError naming the
// offending field.
func TestReadStrictValidation(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		field string
	}{
		{"inf flops", `{"tasks":[{"flops":1e999}],"edges":[]}`, ""}, // json decode error, not DecodeError
		{"negative flops", `{"tasks":[{"flops":-1}],"edges":[]}`, "tasks[0].flops"},
		{"alpha above one", `{"tasks":[{"flops":1,"alpha":1.5}],"edges":[]}`, "tasks[0].alpha"},
		{"negative alpha", `{"tasks":[{"flops":1,"alpha":-0.1}],"edges":[]}`, "tasks[0].alpha"},
		{"negative data", `{"tasks":[{"flops":1,"data":-2}],"edges":[]}`, "tasks[0].data"},
		{"source out of range", `{"tasks":[{"flops":1}],"edges":[[5,0]]}`, "edges[0]"},
		{"destination out of range", `{"tasks":[{"flops":1}],"edges":[[0,-1]]}`, "edges[0]"},
		{"self-loop", `{"tasks":[{"flops":1}],"edges":[[0,0]]}`, "edges[0]"},
		{"duplicate edge", `{"tasks":[{"flops":1},{"flops":1}],"edges":[[0,1],[0,1]]}`, "edges[1]"},
		{"cycle", `{"tasks":[{"flops":1},{"flops":1}],"edges":[[0,1],[1,0]]}`, "edges"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("Read accepted %s", tc.src)
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				if tc.field == "" {
					return // plain JSON decode failures are not DecodeErrors
				}
				t.Fatalf("error %v is not a *DecodeError", err)
			}
			if tc.field != "" && de.Field != tc.field {
				t.Fatalf("DecodeError field = %q, want %q (err: %v)", de.Field, tc.field, err)
			}
		})
	}
}

// TestNonFiniteWeightsRejected reaches the non-finite checks directly:
// encoding/json cannot produce NaN or Inf from a document, but the validation
// layer guards programmatic fileGraph construction all the same.
func TestNonFiniteWeightsRejected(t *testing.T) {
	cases := []struct {
		name  string
		fg    fileGraph
		field string
	}{
		{"nan flops", fileGraph{Tasks: []fileTask{{Flops: math.NaN()}}}, "tasks[0].flops"},
		{"inf flops", fileGraph{Tasks: []fileTask{{Flops: math.Inf(1)}}}, "tasks[0].flops"},
		{"nan alpha", fileGraph{Tasks: []fileTask{{Flops: 1, Alpha: math.NaN()}}}, "tasks[0].alpha"},
		{"inf data", fileGraph{Tasks: []fileTask{{Flops: 1, Data: math.Inf(-1)}}}, "tasks[0].data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := fromFileGraph(tc.fg)
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error %v is not a *DecodeError", err)
			}
			if de.Field != tc.field {
				t.Fatalf("DecodeError field = %q, want %q", de.Field, tc.field)
			}
		})
	}
}

// TestReadCycleWrapsSentinel checks that the cycle rejection is reachable both
// as a typed DecodeError and as the package's ErrCycle sentinel.
func TestReadCycleWrapsSentinel(t *testing.T) {
	src := `{"tasks":[{"flops":1},{"flops":1},{"flops":1}],"edges":[[0,1],[1,2],[2,0]]}`
	_, err := Read(strings.NewReader(src))
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle error %v does not wrap ErrCycle", err)
	}
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("cycle error %v is not a *DecodeError", err)
	}
}

// TestReadAcceptsValidGraph guards against overzealous validation: a valid
// fork-join with names and data survives the strict decoder unchanged.
func TestReadAcceptsValidGraph(t *testing.T) {
	src := `{"name":"fj","tasks":[{"name":"a","flops":1e9,"alpha":0.1},{"flops":2e9,"alpha":0.5,"data":64},{"flops":3e9,"alpha":1}],"edges":[[0,1],[0,2]]}`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.NumTasks() != 3 || g.NumEdges() != 2 || g.Name() != "fj" {
		t.Fatalf("got %d tasks, %d edges, name %q", g.NumTasks(), g.NumEdges(), g.Name())
	}
}
