package dag

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDOT parses a Graphviz DOT digraph into a PTG. It understands the
// subset of DOT emitted by Suter's DAGGEN generator (the tool the paper used
// for its synthetic graphs, reference [24]) and by this package's DOT
// method:
//
//	digraph name {
//	  1 [size="1.5e9", alpha="0.12"]      // a task: cost attributes
//	  1 -> 2 [size="8388608"]             // a dependency (edge attrs ignored)
//	}
//
// Node attribute "size" is the task's computation cost in FLOP and "alpha"
// its non-parallelizable fraction; both default to 0 when absent (as for
// structural nodes in plain Graphviz files). "label"/"data" attributes are
// honored for the task name and dataset size. Edge attributes (communication
// volumes) are ignored: the paper's platform model does not charge
// communication, which must instead be folded into the execution-time model
// (Section III).
//
// Supported syntax: line ('//', '#') and block comments, quoted and bare
// identifiers, attribute lists in brackets with ',' or ';' or space
// separators, chained edges (a -> b -> c), and 'node'/'edge'/'graph' default
// statements (skipped). Subgraphs are not supported.
func ReadDOT(r io.Reader) (*Graph, error) {
	toks, err := tokenizeDOT(r)
	if err != nil {
		return nil, err
	}
	p := &dotParser{toks: toks}
	return p.parse()
}

// tokenizeDOT splits DOT input into tokens: identifiers/quoted strings and
// the punctuation {}[]=,;. The arrow "->" is one token.
func tokenizeDOT(r io.Reader) ([]string, error) {
	br := bufio.NewReader(r)
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for {
		c, _, err := br.ReadRune()
		if err == io.EOF {
			flush()
			return toks, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dag: reading DOT: %w", err)
		}
		switch {
		case c == '"':
			flush()
			var quoted strings.Builder
			for {
				q, _, err := br.ReadRune()
				if err != nil {
					return nil, fmt.Errorf("dag: unterminated string in DOT")
				}
				if q == '\\' {
					esc, _, err := br.ReadRune()
					if err != nil {
						return nil, fmt.Errorf("dag: unterminated escape in DOT")
					}
					quoted.WriteRune(esc)
					continue
				}
				if q == '"' {
					break
				}
				quoted.WriteRune(q)
			}
			// Mark quoted tokens so empty strings survive.
			toks = append(toks, "\x00"+quoted.String())
		case c == '/':
			next, _, err := br.ReadRune()
			if err != nil {
				return nil, fmt.Errorf("dag: stray '/' at end of DOT input")
			}
			switch next {
			case '/':
				flush()
				if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
					return nil, err
				}
			case '*':
				flush()
				prev := rune(0)
				for {
					cc, _, err := br.ReadRune()
					if err != nil {
						return nil, fmt.Errorf("dag: unterminated block comment in DOT")
					}
					if prev == '*' && cc == '/' {
						break
					}
					prev = cc
				}
			default:
				return nil, fmt.Errorf("dag: unexpected '/%c' in DOT", next)
			}
		case c == '#':
			flush()
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return nil, err
			}
		case c == '-':
			// Arrow or part of a bare number like -1 (numbers in DOT bare
			// identifiers may include '-' only at the start; daggen never
			// emits them, so treat '-' as arrow start only when followed by
			// '>').
			next, _, err := br.ReadRune()
			if err == nil && next == '>' {
				flush()
				toks = append(toks, "->")
				continue
			}
			if err == nil {
				if err := br.UnreadRune(); err != nil {
					return nil, err
				}
			}
			cur.WriteRune(c)
		case strings.ContainsRune("{}[]=,;", c):
			flush()
			toks = append(toks, string(c))
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			flush()
		default:
			cur.WriteRune(c)
		}
	}
}

type dotParser struct {
	toks []string
	pos  int
}

func (p *dotParser) peek() (string, bool) {
	if p.pos >= len(p.toks) {
		return "", false
	}
	return p.toks[p.pos], true
}

func (p *dotParser) next() (string, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *dotParser) expect(want string) error {
	t, ok := p.next()
	if !ok || t != want {
		return fmt.Errorf("dag: DOT parse error: want %q, got %q", want, t)
	}
	return nil
}

// unquote strips the quoted-token marker.
func unquote(t string) string { return strings.TrimPrefix(t, "\x00") }

func isPunct(t string) bool {
	switch t {
	case "{", "}", "[", "]", "=", ",", ";", "->":
		return true
	}
	return false
}

func (p *dotParser) parse() (*Graph, error) {
	t, ok := p.next()
	if !ok {
		return nil, fmt.Errorf("dag: empty DOT input")
	}
	if strings.EqualFold(unquote(t), "strict") {
		t, ok = p.next()
		if !ok {
			return nil, fmt.Errorf("dag: truncated DOT input")
		}
	}
	if !strings.EqualFold(unquote(t), "digraph") {
		return nil, fmt.Errorf("dag: DOT input is not a digraph (got %q)", unquote(t))
	}
	name := ""
	t, ok = p.next()
	if !ok {
		return nil, fmt.Errorf("dag: truncated DOT input")
	}
	if t != "{" {
		name = unquote(t)
		if err := p.expect("{"); err != nil {
			return nil, err
		}
	}

	type nodeInfo struct {
		id    TaskID
		attrs map[string]string
	}
	nodes := map[string]*nodeInfo{}
	var order []string
	type edgeInfo struct{ src, dst string }
	var edges []edgeInfo

	declare := func(nodeName string) *nodeInfo {
		if n, ok := nodes[nodeName]; ok {
			return n
		}
		n := &nodeInfo{id: TaskID(len(order)), attrs: map[string]string{}}
		nodes[nodeName] = n
		order = append(order, nodeName)
		return n
	}

	for {
		t, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("dag: DOT input missing closing '}'")
		}
		if t == "}" {
			break
		}
		if t == ";" {
			continue
		}
		raw := unquote(t)
		if isPunct(t) {
			return nil, fmt.Errorf("dag: unexpected %q in DOT body", t)
		}
		// Defaults statements: skip "graph/node/edge [..]".
		if low := strings.ToLower(raw); low == "graph" || low == "node" || low == "edge" {
			if nxt, ok := p.peek(); ok && nxt == "[" {
				if _, err := p.parseAttrs(); err != nil {
					return nil, err
				}
				continue
			}
		}
		if strings.EqualFold(raw, "subgraph") {
			return nil, fmt.Errorf("dag: DOT subgraphs are not supported")
		}
		// Bare graph attribute: "key = value" at statement level (e.g. the
		// "rankdir=TB;" this package's own DOT writer emits). Skipped.
		if nxt, ok := p.peek(); ok && nxt == "=" {
			p.pos++
			if val, ok := p.next(); !ok || (isPunct(val) && val != "->") {
				return nil, fmt.Errorf("dag: missing value for graph attribute %q", raw)
			}
			continue
		}

		// Node or edge chain starting at raw.
		cur := raw
		declared := declare(cur)
		chained := false
		for {
			nxt, ok := p.peek()
			if !ok {
				return nil, fmt.Errorf("dag: DOT input missing closing '}'")
			}
			if nxt == "->" {
				p.pos++
				dstTok, ok := p.next()
				if !ok || isPunct(dstTok) {
					return nil, fmt.Errorf("dag: dangling '->' in DOT")
				}
				dst := unquote(dstTok)
				declare(dst)
				edges = append(edges, edgeInfo{cur, dst})
				cur = dst
				chained = true
				continue
			}
			if nxt == "[" {
				attrs, err := p.parseAttrs()
				if err != nil {
					return nil, err
				}
				if !chained {
					for k, v := range attrs {
						declared.attrs[k] = v
					}
				}
				// Edge attributes (communication volumes) are ignored.
			}
			break
		}
	}

	b := NewBuilder(name)
	for _, nodeName := range order {
		n := nodes[nodeName]
		task := Task{Name: nodeName}
		if label, ok := n.attrs["label"]; ok {
			task.Name = label
		}
		if v, ok := n.attrs["size"]; ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("dag: node %s has bad size %q: %w", nodeName, v, err)
			}
			task.Flops = f
		}
		if v, ok := n.attrs["alpha"]; ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("dag: node %s has bad alpha %q: %w", nodeName, v, err)
			}
			task.Alpha = f
		}
		if v, ok := n.attrs["data"]; ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("dag: node %s has bad data %q: %w", nodeName, v, err)
			}
			task.Data = f
		}
		b.AddTask(task)
	}
	for _, e := range edges {
		b.AddEdge(nodes[e.src].id, nodes[e.dst].id)
	}
	return b.Build()
}

// parseAttrs consumes "[ key = value (,|;)? ... ]" and returns the map.
func (p *dotParser) parseAttrs() (map[string]string, error) {
	if err := p.expect("["); err != nil {
		return nil, err
	}
	attrs := map[string]string{}
	for {
		t, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("dag: unterminated attribute list in DOT")
		}
		if t == "]" {
			return attrs, nil
		}
		if t == "," || t == ";" {
			continue
		}
		key := strings.ToLower(unquote(t))
		if isPunct(t) {
			return nil, fmt.Errorf("dag: unexpected %q in DOT attribute list", t)
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		val, ok := p.next()
		if !ok || (isPunct(val) && val != "->") {
			return nil, fmt.Errorf("dag: missing value for DOT attribute %q", key)
		}
		attrs[key] = unquote(val)
	}
}
