package dag

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIndegreesMatchPredecessors(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomLayeredGraph(rng, 30)
		indeg := g.Indegrees()
		if len(indeg) != g.NumTasks() {
			return false
		}
		for i := 0; i < g.NumTasks(); i++ {
			if indeg[i] != len(g.Predecessors(TaskID(i))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTopologicalOrderReturnsCopy: callers may reorder the returned slice
// without corrupting the graph's cached order.
func TestTopologicalOrderReturnsCopy(t *testing.T) {
	g := diamond(t)
	first, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		first[i] = 0 // clobber the caller's copy
	}
	second, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first, second) {
		t.Fatal("TopologicalOrder returned the cached slice, not a copy")
	}
	pos := make([]int, g.NumTasks())
	for i, v := range second {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.Src] >= pos[e.Dst] {
			t.Fatalf("cached order violates edge %d->%d after caller mutation", e.Src, e.Dst)
		}
	}
}

// TestBottomLevelsIntoMatchesBottomLevels: the buffer-reusing variant must
// compute identical values and actually reuse a large-enough buffer.
func TestBottomLevelsIntoMatchesBottomLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var buf []float64
	for trial := 0; trial < 50; trial++ {
		g := randomLayeredGraph(rng, 30)
		cost := func(id TaskID) float64 { return g.Task(id).Flops }
		want := g.BottomLevels(cost)
		buf = g.BottomLevelsInto(cost, buf)
		if !reflect.DeepEqual(want, buf) {
			t.Fatalf("trial %d: BottomLevelsInto differs from BottomLevels", trial)
		}
	}
	// With a buffer at least as large as the graph, no reallocation happens.
	g := diamond(t)
	cost := func(id TaskID) float64 { return g.Task(id).Flops }
	big := make([]float64, 16)
	out := g.BottomLevelsInto(cost, big)
	if len(out) != g.NumTasks() {
		t.Fatalf("len(out) = %d, want %d", len(out), g.NumTasks())
	}
	if &out[0] != &big[0] {
		t.Fatal("BottomLevelsInto reallocated despite sufficient capacity")
	}
}
