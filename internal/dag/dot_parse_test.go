package dag

import (
	"strings"
	"testing"
)

func TestReadDOTDaggenStyle(t *testing.T) {
	src := `digraph G {
  // a daggen-style graph
  1 [size="1.5e9", alpha="0.12"]
  2 [size="2e9", alpha="0.05"]
  3 [size="3e9", alpha="0.2"]
  1 -> 2 [size="8388608"]
  1 -> 3 [size="8388608"]
  2 -> 3
}`
	g, err := ReadDOT(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 3 || g.NumEdges() != 3 {
		t.Fatalf("%d tasks, %d edges", g.NumTasks(), g.NumEdges())
	}
	if g.Task(0).Flops != 1.5e9 || g.Task(0).Alpha != 0.12 {
		t.Fatalf("task 0: %+v", g.Task(0))
	}
	if g.Task(2).Alpha != 0.2 {
		t.Fatalf("task 2: %+v", g.Task(2))
	}
	if got := g.Successors(0); len(got) != 2 {
		t.Fatalf("succ(0) = %v", got)
	}
}

func TestReadDOTChainedEdges(t *testing.T) {
	src := `digraph { a -> b -> c; b -> d }`
	g, err := ReadDOT(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 4 || g.NumEdges() != 3 {
		t.Fatalf("%d tasks, %d edges", g.NumTasks(), g.NumEdges())
	}
	// Insertion order: a=0, b=1, c=2, d=3.
	if g.Task(0).Name != "a" || g.Task(3).Name != "d" {
		t.Fatalf("names: %v, %v", g.Task(0).Name, g.Task(3).Name)
	}
}

func TestReadDOTCommentsAndDefaults(t *testing.T) {
	src := `strict digraph "my graph" {
  graph [rankdir=TB]
  node [shape=box]
  edge [color=red]
  /* block
     comment */
  # hash comment
  n1 [size=1e9, label="compute"]
  n2 [size=2e9]
  n1 -> n2
}`
	g, err := ReadDOT(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "my graph" {
		t.Fatalf("name %q", g.Name())
	}
	if g.Task(0).Name != "compute" {
		t.Fatalf("label not honored: %q", g.Task(0).Name)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("%d edges", g.NumEdges())
	}
}

func TestReadDOTRoundTripWithDOTWriter(t *testing.T) {
	b := NewBuilder("rt")
	b.AddTask(Task{Name: "a", Flops: 1e9})
	b.AddTask(Task{Name: "b", Flops: 2e9})
	b.AddEdge(0, 1)
	g := b.MustBuild()
	g2, err := ReadDOT(strings.NewReader(g.DOT()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumTasks() != 2 || g2.NumEdges() != 1 {
		t.Fatalf("round trip: %d tasks, %d edges", g2.NumTasks(), g2.NumEdges())
	}
}

func TestReadDOTErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              ``,
		"not a digraph":      `graph { a -- b }`,
		"missing brace":      `digraph { a -> b`,
		"dangling arrow":     `digraph { a -> }`,
		"unterminated quote": `digraph { a [label="x] }`,
		"bad size":           `digraph { a [size="lots"] }`,
		"bad alpha":          `digraph { a [alpha="x"] }`,
		"bad data":           `digraph { a [data="x"] }`,
		"cycle":              `digraph { a -> b b -> a }`,
		"subgraph":           `digraph { subgraph x { a } }`,
		"unterminated attrs": `digraph { a [size=1 }`,
		"attr without value": `digraph { a [size=] }`,
		"unterminated block": `digraph { /* comment }`,
	}
	for name, src := range cases {
		if _, err := ReadDOT(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadDOTSelfLoopRejected(t *testing.T) {
	if _, err := ReadDOT(strings.NewReader(`digraph { a -> a }`)); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestReadDOTQuotedNumericIDs(t *testing.T) {
	src := `digraph { "0" [size="5"] "1" [size="6"] "0" -> "1" }`
	g, err := ReadDOT(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Task(0).Flops != 5 || g.Task(1).Flops != 6 {
		t.Fatalf("tasks: %+v", g.Tasks())
	}
}
