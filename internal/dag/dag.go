// Package dag implements the parallel task graph (PTG) model of Hunold and
// Lepping, "Evolutionary Scheduling of Parallel Tasks Graphs onto Homogeneous
// Clusters" (CLUSTER 2011), Section II-A.
//
// A PTG is a directed acyclic graph G = (V, E). Nodes represent moldable
// parallel tasks; edges represent data or control dependencies. Each task
// carries a computational cost in floating-point operations (FLOP), the size
// of the dataset it operates on (in doubles), and the Amdahl fraction alpha of
// non-parallelizable code used by the execution-time models.
//
// Graphs are immutable once built: construct them with a Builder, which
// validates acyclicity and edge sanity at Build time. All analysis routines
// (topological order, precedence levels, bottom/top levels, critical path)
// operate on the immutable Graph and are safe for concurrent use.
package dag

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// TaskID identifies a task inside one Graph. IDs are dense: a graph with V
// tasks uses IDs 0..V-1, so a TaskID doubles as an index into per-task slices
// such as allocation vectors.
type TaskID int

// Task holds the static properties of one moldable task. The dynamic
// properties (processor allocation, start time) live in allocation vectors and
// schedules, not here.
type Task struct {
	// ID is the dense task identifier, equal to the task's index in the graph.
	ID TaskID
	// Name is an optional human-readable label (e.g. "butterfly-2-3").
	Name string
	// Flops is the computational cost of the task in floating-point
	// operations. The sequential execution time on a processor with speed
	// GFLOPS is Flops / (speed * 1e9).
	Flops float64
	// Alpha is the fraction of non-parallelizable code, 0 <= Alpha <= 1,
	// used by Amdahl-law based execution-time models (Section IV-B).
	Alpha float64
	// Data is the size of the dataset the task operates on, measured in
	// doubles (8 bytes). Only informative; cost generators derive Flops
	// from it (Section IV-C).
	Data float64
}

// Edge is a precedence constraint: Dst cannot start before Src has completed.
type Edge struct {
	Src, Dst TaskID
}

// Graph is an immutable parallel task graph. The zero value is an empty graph;
// use a Builder to create non-empty graphs.
//
// Adjacency is stored in compressed sparse row (CSR) form: one flat backing
// array per direction plus an offsets array, so the successor lists of all
// tasks are contiguous in memory. The fitness evaluation sweeps every
// adjacency list once per call (BottomLevelsInto plus the map loop), and a
// slice-of-slices layout costs one pointer chase and a potential cache miss
// per task; CSR turns the whole sweep into a linear scan of two arrays.
// Successors/Predecessors return subslices of the backing arrays, so the API
// is unchanged.
type Graph struct {
	name  string
	tasks []Task
	// succOff/predOff have NumTasks()+1 entries; the neighbors of task v in
	// direction d are dAdj[dOff[v]:dOff[v+1]], sorted by ID ascending.
	succOff []int32
	succAdj []TaskID
	predOff []int32
	predAdj []TaskID
	edges   int
	// topo and indeg are computed once at Build time and shared by every
	// analysis pass. Immutability makes this safe: the adjacency never
	// changes, so neither do the topological order nor the indegrees. Both
	// are on the fitness-evaluation hot path (millions of mapping calls per
	// experiment), which is why they are cached rather than recomputed.
	topo  []TaskID
	indeg []int
	// Precedence levels are likewise a pure function of the immutable
	// adjacency, but unlike topo they are only needed by the level-bounded
	// allocators — so they are computed lazily, once, on first use. On the
	// serving path one interned Graph instance answers every repeat request,
	// and memoizing here turns the per-request MCPA/Delta-CP seeding from
	// O(V) allocations into a pointer read.
	plOnce    sync.Once
	plLevel   []int
	plByLevel [][]TaskID
}

// buildCSR flattens a slice-of-slices adjacency into CSR form. Each segment
// is sorted ascending, preserving the deterministic neighbor order the
// slice-of-slices representation guaranteed.
func buildCSR(adj [][]TaskID) (off []int32, flat []TaskID) {
	off = make([]int32, len(adj)+1)
	total := 0
	for i, row := range adj {
		total += len(row)
		off[i+1] = int32(total)
	}
	flat = make([]TaskID, total)
	for i, row := range adj {
		seg := flat[off[i]:off[i+1]]
		copy(seg, row)
		sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
	}
	return off, flat
}

// Builder incrementally assembles a Graph. It is not safe for concurrent use.
type Builder struct {
	name  string
	tasks []Task
	succ  [][]TaskID
	pred  [][]TaskID
	seen  map[Edge]bool
	err   error
}

// NewBuilder returns a Builder for a graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, seen: make(map[Edge]bool)}
}

// AddTask appends a task and returns its ID. The ID recorded inside the task
// argument is overwritten with the assigned dense ID.
func (b *Builder) AddTask(t Task) TaskID {
	id := TaskID(len(b.tasks))
	t.ID = id
	if t.Flops < 0 {
		b.fail(fmt.Errorf("dag: task %d (%q) has negative flops %g", id, t.Name, t.Flops))
	}
	if t.Alpha < 0 || t.Alpha > 1 {
		b.fail(fmt.Errorf("dag: task %d (%q) has alpha %g outside [0,1]", id, t.Name, t.Alpha))
	}
	b.tasks = append(b.tasks, t)
	b.succ = append(b.succ, nil)
	b.pred = append(b.pred, nil)
	return id
}

// AddEdge records the precedence constraint src -> dst. Duplicate edges are
// ignored; self-loops and out-of-range endpoints are errors reported by Build.
func (b *Builder) AddEdge(src, dst TaskID) {
	if src < 0 || int(src) >= len(b.tasks) || dst < 0 || int(dst) >= len(b.tasks) {
		b.fail(fmt.Errorf("dag: edge (%d,%d) references unknown task (have %d tasks)", src, dst, len(b.tasks)))
		return
	}
	if src == dst {
		b.fail(fmt.Errorf("dag: self-loop on task %d", src))
		return
	}
	e := Edge{src, dst}
	if b.seen[e] {
		return
	}
	b.seen[e] = true
	b.succ[src] = append(b.succ[src], dst)
	b.pred[dst] = append(b.pred[dst], src)
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates the accumulated tasks and edges and returns the immutable
// Graph. It fails if any AddTask/AddEdge call was invalid or if the edge set
// contains a cycle.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{
		name:  b.name,
		tasks: append([]Task(nil), b.tasks...),
		edges: len(b.seen),
	}
	// buildCSR sorts each segment, giving deterministic adjacency order
	// regardless of insertion order.
	g.succOff, g.succAdj = buildCSR(b.succ)
	g.predOff, g.predAdj = buildCSR(b.pred)
	g.indeg = make([]int, len(g.tasks))
	for i := range g.tasks {
		g.indeg[i] = int(g.predOff[i+1] - g.predOff[i])
	}
	topo, err := g.computeTopo()
	if err != nil {
		return nil, err
	}
	g.topo = topo
	return g, nil
}

// MustBuild is Build for graphs known to be valid at compile time (tests,
// examples). It panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Name returns the graph's label.
func (g *Graph) Name() string { return g.name }

// NumTasks returns V, the number of tasks.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.edges }

// Task returns the task with the given ID. It panics on out-of-range IDs,
// consistent with slice indexing.
func (g *Graph) Task(id TaskID) Task { return g.tasks[id] }

// Tasks returns a copy of the task list in ID order.
func (g *Graph) Tasks() []Task { return append([]Task(nil), g.tasks...) }

// Successors returns the tasks that directly depend on id. The returned slice
// is a subslice of the graph's CSR backing array (full slice expression, so
// appends cannot clobber neighbors) and must not be modified.
//
//schedlint:hotpath
func (g *Graph) Successors(id TaskID) []TaskID {
	lo, hi := g.succOff[id], g.succOff[id+1]
	return g.succAdj[lo:hi:hi]
}

// Predecessors returns the direct dependencies of id. The returned slice is a
// subslice of the graph's CSR backing array and must not be modified.
//
//schedlint:hotpath
func (g *Graph) Predecessors(id TaskID) []TaskID {
	lo, hi := g.predOff[id], g.predOff[id+1]
	return g.predAdj[lo:hi:hi]
}

// Edges returns all edges in deterministic (src, dst) order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.edges)
	for src := range g.tasks {
		for _, dst := range g.Successors(TaskID(src)) {
			es = append(es, Edge{TaskID(src), dst})
		}
	}
	return es
}

// Sources returns the tasks without predecessors, in ID order.
func (g *Graph) Sources() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if g.predOff[i] == g.predOff[i+1] {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Sinks returns the tasks without successors, in ID order.
func (g *Graph) Sinks() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if g.succOff[i] == g.succOff[i+1] {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// ErrCycle reports that the edge set is not acyclic.
var ErrCycle = errors.New("dag: graph contains a cycle")

// TopologicalOrder returns the task IDs in a deterministic topological order
// (Kahn's algorithm with a min-ID tie-break), or ErrCycle. The order is
// computed once at Build time; this returns a fresh copy the caller may
// modify.
func (g *Graph) TopologicalOrder() ([]TaskID, error) {
	if g.topo != nil || len(g.tasks) == 0 {
		return append([]TaskID(nil), g.topo...), nil
	}
	return g.computeTopo()
}

// TopologicalOrderInto is TopologicalOrder writing into dst, which is grown
// only when its capacity is insufficient — the allocation-free variant used
// when a pooled Mapper is rebound to a new graph (DESIGN.md §12). The
// returned slice aliases dst (when it fit) and is the caller's to modify.
func (g *Graph) TopologicalOrderInto(dst []TaskID) ([]TaskID, error) {
	if g.topo == nil && len(g.tasks) > 0 {
		return g.computeTopo()
	}
	n := len(g.topo)
	if cap(dst) < n {
		dst = make([]TaskID, n)
	}
	dst = dst[:n]
	copy(dst, g.topo)
	return dst, nil
}

// topoOrder returns the cached topological order without copying. Internal
// analysis passes use it read-only; a Graph that passed Build always has it.
func (g *Graph) topoOrder() []TaskID {
	if g.topo == nil && len(g.tasks) > 0 {
		// Only reachable for graphs constructed without Build (not possible
		// outside this package); fall back to a fresh computation.
		topo, err := g.computeTopo()
		if err != nil {
			panic("dag: topoOrder on cyclic graph: " + err.Error())
		}
		return topo
	}
	return g.topo
}

// Indegrees returns the number of predecessors of every task, indexed by
// TaskID. The returned slice is shared and must not be modified; callers that
// consume indegrees (e.g. Kahn-style ready tracking) must copy it first.
func (g *Graph) Indegrees() []int { return g.indeg }

// computeTopo runs Kahn's algorithm from scratch.
func (g *Graph) computeTopo() ([]TaskID, error) {
	n := len(g.tasks)
	indeg := make([]int, n)
	for i := range g.tasks {
		indeg[i] = int(g.predOff[i+1] - g.predOff[i])
	}
	// Min-heap over task IDs keeps the order deterministic and stable.
	h := &idHeap{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			h.push(TaskID(i))
		}
	}
	order := make([]TaskID, 0, n)
	for h.len() > 0 {
		v := h.pop()
		order = append(order, v)
		for _, w := range g.Successors(v) {
			indeg[w]--
			if indeg[w] == 0 {
				h.push(w)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// PrecedenceLevels returns, for each task, its depth from the sources
// (sources have level 0; otherwise 1 + max over predecessors), together with
// the tasks grouped by level. This is the "precedence level" of Section III-B
// used by the Delta-critical heuristic and by MCPA's level bound.
//
// The result is computed once and cached (the graph is immutable); callers
// share the returned slices and must not modify them.
func (g *Graph) PrecedenceLevels() (level []int, byLevel [][]TaskID) {
	g.plOnce.Do(func() {
		order := g.topoOrder()
		lv := make([]int, len(g.tasks))
		maxLevel := 0
		for _, v := range order {
			l := 0
			for _, p := range g.Predecessors(v) {
				if lv[p]+1 > l {
					l = lv[p] + 1
				}
			}
			lv[v] = l
			if l > maxLevel {
				maxLevel = l
			}
		}
		byLv := make([][]TaskID, maxLevel+1)
		for i := range g.tasks {
			byLv[lv[i]] = append(byLv[lv[i]], TaskID(i))
		}
		g.plLevel, g.plByLevel = lv, byLv
	})
	return g.plLevel, g.plByLevel
}

// CostFunc maps a task to its (current) execution time. Analysis routines take
// a CostFunc so they work with any allocation and any execution-time model.
type CostFunc func(id TaskID) float64

// BottomLevels computes bl(v) = cost(v) + max over successors bl(succ) for
// every task: the length of the longest path from v to a sink including v's
// own execution time (footnote 1 of the paper).
func (g *Graph) BottomLevels(cost CostFunc) []float64 {
	return g.BottomLevelsInto(cost, nil)
}

// BottomLevelsInto is BottomLevels writing into dst, which is grown if its
// capacity is insufficient and reused otherwise. It performs no heap
// allocation when cap(dst) >= NumTasks(), which makes repeated bottom-level
// computations (one per fitness evaluation) allocation-free; see
// listsched.Mapper.
//
//schedlint:hotpath
func (g *Graph) BottomLevelsInto(cost CostFunc, dst []float64) []float64 {
	n := len(g.tasks)
	if cap(dst) < n {
		//schedlint:allow hotescape -- grow-on-demand: allocates only when the caller's buffer is too small, never on the steady state
		dst = make([]float64, n)
	}
	bl := dst[:n]
	//schedlint:allow hotescape -- topoOrder returns the order cached at Build time; the non-inlined call is one indirect load, no allocation
	order := g.topoOrder()
	// Walk the CSR arrays directly: the reverse-topological sweep touches
	// every successor list once, and indexing succAdj through succOff keeps
	// the whole pass on two contiguous arrays.
	off, adj := g.succOff, g.succAdj
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		maxSucc := 0.0
		for _, s := range adj[off[v]:off[v+1]] {
			if bl[s] > maxSucc {
				maxSucc = bl[s]
			}
		}
		bl[v] = cost(v) + maxSucc
	}
	return bl
}

// TopLevels computes tl(v) = max over predecessors (tl(pred) + cost(pred)),
// the earliest time v could start if processors were unlimited.
func (g *Graph) TopLevels(cost CostFunc) []float64 {
	order := g.topoOrder()
	tl := make([]float64, len(g.tasks))
	for _, v := range order {
		maxPred := 0.0
		for _, p := range g.Predecessors(v) {
			if t := tl[p] + cost(p); t > maxPred {
				maxPred = t
			}
		}
		tl[v] = maxPred
	}
	return tl
}

// CriticalPath returns one longest (by cost) source-to-sink path and its
// length. Ties break toward the smaller task ID, so the result is
// deterministic.
func (g *Graph) CriticalPath(cost CostFunc) (path []TaskID, length float64) {
	bl := g.BottomLevels(cost)
	// Entry task: source with the largest bottom level.
	cur := TaskID(-1)
	for _, s := range g.Sources() {
		if cur == -1 || bl[s] > bl[cur] {
			cur = s
		}
	}
	if cur == -1 {
		return nil, 0
	}
	length = bl[cur]
	for {
		path = append(path, cur)
		next := TaskID(-1)
		for _, s := range g.Successors(cur) {
			if next == -1 || bl[s] > bl[next] {
				next = s
			}
		}
		if next == -1 {
			return path, length
		}
		cur = next
	}
}

// CriticalPathLength returns the length of the critical path: max bottom level
// over all tasks.
func (g *Graph) CriticalPathLength(cost CostFunc) float64 {
	max := 0.0
	for _, b := range g.BottomLevels(cost) {
		if b > max {
			max = b
		}
	}
	return max
}

// TotalWork returns the sum of cost(v) over all tasks.
func (g *Graph) TotalWork(cost CostFunc) float64 {
	sum := 0.0
	for i := range g.tasks {
		sum += cost(TaskID(i))
	}
	return sum
}

// MaxWidth returns the largest number of tasks in any precedence level, an
// upper bound on task parallelism.
func (g *Graph) MaxWidth() int {
	_, byLevel := g.PrecedenceLevels()
	w := 0
	for _, l := range byLevel {
		if len(l) > w {
			w = len(l)
		}
	}
	return w
}

// Depth returns the number of precedence levels.
func (g *Graph) Depth() int {
	_, byLevel := g.PrecedenceLevels()
	return len(byLevel)
}

// idHeap is a minimal binary min-heap over TaskIDs; container/heap's interface
// indirection is unnecessary for this single use.
type idHeap struct{ a []TaskID }

func (h *idHeap) len() int { return len(h.a) }

func (h *idHeap) push(v TaskID) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.a[parent] <= h.a[i] {
			break
		}
		h.a[parent], h.a[i] = h.a[i], h.a[parent]
		i = parent
	}
}

func (h *idHeap) pop() TaskID {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l] < h.a[small] {
			small = l
		}
		if r < last && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
