package batch

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"emts/internal/daggen"
	"emts/internal/platform"
)

func makeJobs(t *testing.T, n int, arrivalGap float64) []Job {
	t.Helper()
	jobs := make([]Job, n)
	for i := range jobs {
		g, err := daggen.Strassen(daggen.DefaultCosts(), int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = Job{ID: i, Graph: g, Arrival: float64(i) * arrivalGap}
	}
	return jobs
}

func TestWholeClusterSerializesJobs(t *testing.T) {
	jobs := makeJobs(t, 3, 0)
	res, err := Simulate(jobs, Config{
		Cluster: platform.Chti(), ModelName: "amdahl", Algorithm: "mcpa",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Whole-cluster partitions cannot overlap: job i+1 starts at job i's end.
	for i := 1; i < len(res.Jobs); i++ {
		if res.Jobs[i].Start < res.Jobs[i-1].Finish-1e-9 {
			t.Fatalf("jobs overlap: job %d starts %g before %g", i, res.Jobs[i].Start, res.Jobs[i-1].Finish)
		}
	}
	if res.MeanWait <= 0 {
		t.Fatal("simultaneous arrivals must queue")
	}
}

func TestFractionPolicySharesCluster(t *testing.T) {
	jobs := makeJobs(t, 4, 0)
	whole, err := Simulate(jobs, Config{
		Cluster: platform.Grelon(), ModelName: "synthetic", Algorithm: "mcpa",
	})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Simulate(jobs, Config{
		Cluster: platform.Grelon(), ModelName: "synthetic", Algorithm: "mcpa",
		Policy: FixedFraction{Frac: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Four quarter-partitions run concurrently: queueing shrinks.
	if shared.MeanWait >= whole.MeanWait {
		t.Fatalf("space sharing did not reduce waiting: %g vs %g", shared.MeanWait, whole.MeanWait)
	}
}

func TestWidthMatchedPolicy(t *testing.T) {
	jobs := makeJobs(t, 2, 10)
	res, err := Simulate(jobs, Config{
		Cluster: platform.Grelon(), ModelName: "amdahl", Algorithm: "cpa",
		Policy: WidthMatched{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Strassen's max width is 10 tasks; granted partitions match it.
	for _, j := range res.Jobs {
		if j.Procs != 10 {
			t.Fatalf("job %d granted %d procs, want 10", j.ID, j.Procs)
		}
	}
}

func TestBackfillingStartsSmallJobsEarlier(t *testing.T) {
	// Job 0 huge partition, job 1 arrives later but needs few processors
	// while job 0 still queues behind job -1... construct: two jobs at t=0
	// with half partitions and one at t=0 needing the full cluster; strict
	// FCFS forces the last small job to wait for the big one's start.
	g1, err := daggen.Strassen(daggen.DefaultCosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := daggen.Strassen(daggen.DefaultCosts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := daggen.Strassen(daggen.DefaultCosts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{ID: 0, Graph: g1, Arrival: 0},
		{ID: 1, Graph: g2, Arrival: 0},
		{ID: 2, Graph: g3, Arrival: 0},
	}
	policy := perJobPolicy{0: 15, 1: 20, 2: 5} // job 1 needs the whole cluster
	strict, err := Simulate(jobs, Config{
		Cluster: platform.Chti(), ModelName: "amdahl", Algorithm: "mcpa", Policy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	backfill, err := Simulate(jobs, Config{
		Cluster: platform.Chti(), ModelName: "amdahl", Algorithm: "mcpa", Policy: policy,
		Backfill: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if backfill.Jobs[2].Start >= strict.Jobs[2].Start {
		t.Fatalf("backfilling did not help the small job: %g vs %g",
			backfill.Jobs[2].Start, strict.Jobs[2].Start)
	}
}

// perJobPolicy grants a fixed size per job ID (test helper).
type perJobPolicy map[int]int

func (perJobPolicy) Name() string { return "per-job" }

func (p perJobPolicy) Grant(j Job, c platform.Cluster) int { return p[j.ID] }

func TestEMTSImprovesTurnaroundOverMCPA(t *testing.T) {
	// The end-to-end claim: a better PTG scheduler shortens job durations
	// and hence turnaround in the batch setting.
	var jobs []Job
	for i := 0; i < 3; i++ {
		g, err := daggen.Random(daggen.RandomConfig{
			N: 50, Width: 0.5, Regularity: 0.2, Density: 0.5, Jump: 2,
		}, daggen.DefaultCosts(), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{ID: i, Graph: g, Arrival: 0})
	}
	mcpa, err := Simulate(jobs, Config{
		Cluster: platform.Grelon(), ModelName: "synthetic", Algorithm: "mcpa",
	})
	if err != nil {
		t.Fatal(err)
	}
	emts, err := Simulate(jobs, Config{
		Cluster: platform.Grelon(), ModelName: "synthetic", Algorithm: "emts5", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if emts.MeanTurnaround > mcpa.MeanTurnaround {
		t.Fatalf("EMTS turnaround %g worse than MCPA %g", emts.MeanTurnaround, mcpa.MeanTurnaround)
	}
	if out := emts.Format(); !strings.Contains(out, "turnaround") {
		t.Fatal("Format broken")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(nil, Config{Cluster: platform.Chti(), ModelName: "amdahl", Algorithm: "cpa"}); err == nil {
		t.Fatal("no jobs accepted")
	}
	jobs := makeJobs(t, 1, 0)
	if _, err := Simulate(jobs, Config{ModelName: "amdahl", Algorithm: "cpa"}); err == nil {
		t.Fatal("invalid cluster accepted")
	}
	bad := makeJobs(t, 1, 0)
	bad[0].Arrival = -1
	if _, err := Simulate(bad, Config{Cluster: platform.Chti(), ModelName: "amdahl", Algorithm: "cpa"}); err == nil {
		t.Fatal("negative arrival accepted")
	}
	if _, err := Simulate(jobs, Config{Cluster: platform.Chti(), ModelName: "nope", Algorithm: "cpa"}); err == nil {
		t.Fatal("bad model accepted")
	}
	broken := perJobPolicy{0: 0}
	if _, err := Simulate(jobs, Config{Cluster: platform.Chti(), ModelName: "amdahl", Algorithm: "cpa", Policy: broken}); err == nil {
		t.Fatal("zero-proc grant accepted")
	}
}

// naiveDispatch is the pre-optimization reference dispatcher: per-processor
// avail array, copied and fully sorted on every feasibility probe, index
// re-sort on every commit. dispatch must reproduce its Start/Finish/Wait
// bit for bit — the sorted-multiset formulation is an optimization, not a
// policy change.
func naiveDispatch(ordered []Job, results []JobResult, procs int, backfill bool) {
	avail := make([]float64, procs)
	feasibleStart := func(i int) float64 {
		sorted := append([]float64(nil), avail...)
		sort.Float64s(sorted)
		start := sorted[results[i].Procs-1]
		if a := ordered[i].Arrival; a > start {
			start = a
		}
		return start
	}
	commit := func(i int, start float64) {
		r := &results[i]
		r.Start = start
		r.Finish = start + r.Duration
		r.Wait = start - ordered[i].Arrival
		idx := make([]int, len(avail))
		for k := range idx {
			idx[k] = k
		}
		sort.SliceStable(idx, func(a, b int) bool { return avail[idx[a]] < avail[idx[b]] })
		for _, p := range idx[:r.Procs] {
			avail[p] = r.Finish
		}
	}
	if backfill {
		pending := make([]int, len(results))
		for i := range pending {
			pending[i] = i
		}
		for len(pending) > 0 {
			bestK := 0
			bestStart := feasibleStart(pending[0])
			for k := 1; k < len(pending); k++ {
				if s := feasibleStart(pending[k]); s < bestStart {
					bestK, bestStart = k, s
				}
			}
			commit(pending[bestK], bestStart)
			pending = append(pending[:bestK], pending[bestK+1:]...)
		}
	} else {
		prevStart := 0.0
		for i := range results {
			start := feasibleStart(i)
			if prevStart > start {
				start = prevStart
			}
			commit(i, start)
			prevStart = start
		}
	}
}

// randomDispatchInstance builds a synthetic pre-scheduled job set (Phase 1
// output) so the dispatchers can be exercised without running PTG schedulers.
func randomDispatchInstance(rng *rand.Rand, n, procs int) ([]Job, []JobResult) {
	ordered := make([]Job, n)
	results := make([]JobResult, n)
	arrival := 0.0
	for i := range ordered {
		arrival += rng.Float64() * 10
		ordered[i] = Job{ID: i, Arrival: arrival}
		results[i] = JobResult{
			ID:       i,
			Procs:    1 + rng.Intn(procs),
			Duration: 1 + rng.Float64()*100,
		}
	}
	return ordered, results
}

func TestDispatchMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		procs := 1 + rng.Intn(64)
		ordered, results := randomDispatchInstance(rng, n, procs)
		for _, backfill := range []bool{false, true} {
			got := append([]JobResult(nil), results...)
			want := append([]JobResult(nil), results...)
			dispatch(ordered, got, procs, backfill)
			naiveDispatch(ordered, want, procs, backfill)
			for i := range got {
				//schedlint:allow floateq -- dispatch is required to be bit-identical to the reference, not approximately equal
				if got[i].Start != want[i].Start || got[i].Finish != want[i].Finish || got[i].Wait != want[i].Wait {
					t.Logf("seed=%d backfill=%v job %d: got (%g,%g,%g) want (%g,%g,%g)",
						seed, backfill, i, got[i].Start, got[i].Finish, got[i].Wait,
						want[i].Start, want[i].Finish, want[i].Wait)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// benchmarkDispatch measures the packing phase alone on a synthetic queue —
// the regime the incremental availability order targets (many jobs, wide
// cluster, backfill probing every pending job per commit).
func benchmarkDispatch(b *testing.B, fn func([]Job, []JobResult, int, bool)) {
	const n, procs = 200, 512
	rng := rand.New(rand.NewSource(17))
	ordered, results := randomDispatchInstance(rng, n, procs)
	scratch := make([]JobResult, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, results)
		fn(ordered, scratch, procs, true)
	}
}

func BenchmarkBackfillDispatch(b *testing.B)      { benchmarkDispatch(b, dispatch) }
func BenchmarkBackfillDispatchNaive(b *testing.B) { benchmarkDispatch(b, naiveDispatch) }

func TestSimulatePropertyNoOversubscription(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		jobs := make([]Job, n)
		for i := range jobs {
			g, err := daggen.FFT(4, daggen.DefaultCosts(), seed+int64(i))
			if err != nil {
				return false
			}
			jobs[i] = Job{ID: i, Graph: g, Arrival: rng.Float64() * 50}
		}
		cfg := Config{
			Cluster:   platform.Chti(),
			ModelName: "amdahl",
			Algorithm: "cpa",
			Policy:    FixedFraction{Frac: 0.1 + rng.Float64()*0.9},
			Backfill:  rng.Intn(2) == 0,
		}
		res, err := Simulate(jobs, cfg)
		if err != nil {
			return false
		}
		// At any job start, total processors in use must fit the cluster:
		// sweep events.
		type ev struct {
			t     float64
			procs int
		}
		var evs []ev
		for _, j := range res.Jobs {
			if j.Start+1e-9 < 0 || j.Finish < j.Start {
				return false
			}
			evs = append(evs, ev{j.Start, j.Procs}, ev{j.Finish, -j.Procs})
		}
		// Sort by time, releases first.
		for i := 1; i < len(evs); i++ {
			for k := i; k > 0 && (evs[k].t < evs[k-1].t || (evs[k].t == evs[k-1].t && evs[k].procs < evs[k-1].procs)); k-- {
				evs[k], evs[k-1] = evs[k-1], evs[k]
			}
		}
		used := 0
		for _, e := range evs {
			used += e.procs
			if used > platform.Chti().Procs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
