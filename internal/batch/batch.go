// Package batch simulates the deployment scenario that motivates the paper's
// makespan objective (Section II-A):
//
//	"To execute a PTG on a cluster, the user first requests a time slot from
//	 the local job scheduler (e.g., PBS). After the application has been
//	 granted several processors, the PTG scheduler computes a schedule while
//	 trying to minimize the overall execution time of the job."
//
// A stream of PTG jobs arrives at a space-shared cluster. A partition policy
// decides how many processors each job is granted; the chosen PTG scheduling
// algorithm (MCPA, EMTS, ...) then determines the job's run time on that
// partition. The simulator packs the jobs onto the cluster (FCFS, optionally
// with conservative backfilling) and reports queueing and turnaround
// statistics — the end-to-end numbers a cluster operator would care about
// when choosing a PTG scheduler.
package batch

import (
	"fmt"
	"sort"
	"strings"

	"emts/internal/dag"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/sim"
	"emts/internal/stats"
)

// Job is one PTG submission.
type Job struct {
	// ID identifies the job in reports.
	ID int
	// Graph is the submitted PTG.
	Graph *dag.Graph
	// Arrival is the submission time in seconds.
	Arrival float64
}

// PartitionPolicy decides how many processors the batch scheduler grants a
// job on a given cluster.
type PartitionPolicy interface {
	// Name identifies the policy.
	Name() string
	// Grant returns the partition size in [1, cluster.Procs].
	Grant(job Job, cluster platform.Cluster) int
}

// WholeCluster grants every job all processors — the paper's own setting
// (one PTG, whole platform).
type WholeCluster struct{}

// Name implements PartitionPolicy.
func (WholeCluster) Name() string { return "whole-cluster" }

// Grant implements PartitionPolicy.
func (WholeCluster) Grant(_ Job, c platform.Cluster) int { return c.Procs }

// FixedFraction grants a fixed fraction of the cluster (at least one
// processor), enabling space sharing between jobs.
type FixedFraction struct {
	// Frac in ]0, 1] is the fraction of processors granted.
	Frac float64
}

// Name implements PartitionPolicy.
func (f FixedFraction) Name() string { return fmt.Sprintf("fraction-%g", f.Frac) }

// Grant implements PartitionPolicy.
func (f FixedFraction) Grant(_ Job, c platform.Cluster) int {
	p := int(f.Frac * float64(c.Procs))
	if p < 1 {
		p = 1
	}
	if p > c.Procs {
		p = c.Procs
	}
	return p
}

// WidthMatched grants each job as many processors as its PTG's maximum task
// parallelism (capped by the cluster), a simple application-aware policy.
type WidthMatched struct{}

// Name implements PartitionPolicy.
func (WidthMatched) Name() string { return "width-matched" }

// Grant implements PartitionPolicy.
func (WidthMatched) Grant(j Job, c platform.Cluster) int {
	w := j.Graph.MaxWidth()
	if w < 1 {
		w = 1
	}
	if w > c.Procs {
		w = c.Procs
	}
	return w
}

// Config drives one batch simulation.
type Config struct {
	// Cluster is the shared platform.
	Cluster platform.Cluster
	// ModelName selects the execution-time model (sim.ModelNames).
	ModelName string
	// Algorithm selects the PTG scheduler (sim.AlgorithmNames).
	Algorithm string
	// Policy decides partition sizes; nil means WholeCluster.
	Policy PartitionPolicy
	// Backfill enables out-of-order starts: a job may start before an
	// earlier arrival if enough processors are idle. False is strict FCFS.
	Backfill bool
	// Seed drives the PTG scheduler.
	Seed int64
}

// JobResult records the fate of one job.
type JobResult struct {
	ID int
	// Procs is the granted partition size.
	Procs int
	// Duration is the PTG schedule's makespan on the partition.
	Duration float64
	// Start and Finish are the job's slot on the shared cluster.
	Start, Finish float64
	// Wait is Start minus the job's arrival.
	Wait float64
}

// Turnaround is the job's total time in the system.
func (r JobResult) Turnaround() float64 { return r.Finish - r.Start + r.Wait }

// Result aggregates one simulation run.
type Result struct {
	Policy    string
	Algorithm string
	Jobs      []JobResult
	// MeanWait, MeanTurnaround, Makespan summarize the run; Utilization is
	// *allocated* processor-time (partition size x job duration) over
	// Makespan * P — how full the batch scheduler keeps the machine, not
	// how busy the processors are inside each PTG schedule (see
	// schedule.Profile for that).
	MeanWait       float64
	MeanTurnaround float64
	Makespan       float64
	Utilization    float64
}

// Simulate runs the batch scenario: every job's run time on its granted
// partition is computed with the configured PTG scheduling algorithm, then
// jobs are packed FCFS (optionally with backfilling) onto the cluster.
func Simulate(jobs []Job, cfg Config) (*Result, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("batch: no jobs")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	policy := cfg.Policy
	if policy == nil {
		policy = WholeCluster{}
	}

	// Phase 1: partition sizes and per-job durations (PTG scheduling on a
	// virtual sub-cluster of the granted size). The execution-time model
	// resolves once and tables are memoized per (graph, partition) — a stream
	// of repeated PTGs on a shared policy used to rebuild the same V×P table
	// for every job (the reuse sim.Compare already had).
	m, err := sim.ModelByName(cfg.ModelName)
	if err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	type tabKey struct {
		g    *dag.Graph
		part platform.Cluster
	}
	tabs := make(map[tabKey]*model.Table)
	ordered := append([]Job(nil), jobs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		//schedlint:allow floateq -- exact tie-break: (arrival, job ID) must be a strict total order so FCFS admission is deterministic
		if ordered[i].Arrival != ordered[j].Arrival {
			return ordered[i].Arrival < ordered[j].Arrival
		}
		return ordered[i].ID < ordered[j].ID
	})
	results := make([]JobResult, len(ordered))
	for i, job := range ordered {
		if job.Arrival < 0 {
			return nil, fmt.Errorf("batch: job %d has negative arrival %g", job.ID, job.Arrival)
		}
		procs := policy.Grant(job, cfg.Cluster)
		if procs < 1 || procs > cfg.Cluster.Procs {
			return nil, fmt.Errorf("batch: policy %s granted %d procs for job %d", policy.Name(), procs, job.ID)
		}
		part := platform.Cluster{
			Name:        fmt.Sprintf("%s-part%d", cfg.Cluster.Name, procs),
			Procs:       procs,
			SpeedGFlops: cfg.Cluster.SpeedGFlops,
		}
		key := tabKey{g: job.Graph, part: part}
		tab, ok := tabs[key]
		if !ok {
			tab, err = model.NewTable(job.Graph, m, part)
			if err != nil {
				return nil, fmt.Errorf("batch: job %d: %w", job.ID, err)
			}
			tabs[key] = tab
		}
		rep, err := sim.RunTable(job.Graph, part, tab, cfg.Algorithm, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("batch: job %d: %w", job.ID, err)
		}
		results[i] = JobResult{ID: job.ID, Procs: procs, Duration: rep.Makespan}
	}

	// Phase 2: pack partitions onto the cluster.
	dispatch(ordered, results, cfg.Cluster.Procs, cfg.Backfill)

	res := &Result{Policy: policy.Name(), Algorithm: cfg.Algorithm, Jobs: results}
	summarize(res, cfg.Cluster.Procs, results)
	return res, nil
}

// dispatch packs the pre-scheduled jobs onto procs processors, filling
// Start/Finish/Wait of results (parallel to ordered, which is sorted by
// (arrival, ID)). Strict FCFS dispatches in arrival order and a job never
// starts before an earlier-queued job; with backfill the dispatcher instead
// always commits the pending job that can start earliest (ties: earlier
// arrival, then ID), so small jobs slip past blocked wide ones.
//
// Jobs only ever occupy the k earliest-free processors and no output names a
// physical processor, so availability is kept as a sorted multiset of free
// times rather than a per-processor array. That makes a feasibility probe
// O(1) — avail[k-1] IS the time k processors are free — and a commit a
// single O(P) merge: the k displaced entries all become Finish, which is >=
// each of them, so sliding the smaller survivors left and filling the gap
// restores sorted order without re-sorting. The naive per-processor
// formulation re-sorted avail on every probe, costing O(n²·P log P) across a
// backfill run; this one is O(n² + n·P).
func dispatch(ordered []Job, results []JobResult, procs int, backfill bool) {
	avail := make([]float64, procs) // sorted ascending, always
	feasibleStart := func(i int) float64 {
		start := avail[results[i].Procs-1] // Procs earliest-free processors
		if a := ordered[i].Arrival; a > start {
			start = a
		}
		return start
	}
	commit := func(i int, start float64) {
		r := &results[i]
		r.Start = start
		r.Finish = start + r.Duration
		r.Wait = start - ordered[i].Arrival
		// Occupy the r.Procs earliest-free processors: drop avail[:k], merge
		// k copies of Finish into the sorted tail.
		k := r.Procs
		tail := avail[k:]
		m := sort.SearchFloat64s(tail, r.Finish)
		copy(avail, tail[:m])      // survivors below Finish slide left
		for j := m; j < m+k; j++ { // the k new entries, all equal
			avail[j] = r.Finish
		}
		// tail[m:] already occupies avail[m+k:] — untouched and in order.
	}
	if backfill {
		pending := make([]int, len(results))
		for i := range pending {
			pending[i] = i
		}
		for len(pending) > 0 {
			bestK := 0
			bestStart := feasibleStart(pending[0])
			for k := 1; k < len(pending); k++ {
				if s := feasibleStart(pending[k]); s < bestStart {
					bestK, bestStart = k, s
				}
			}
			commit(pending[bestK], bestStart)
			pending = append(pending[:bestK], pending[bestK+1:]...)
		}
	} else {
		prevStart := 0.0
		for i := range results {
			start := feasibleStart(i)
			if prevStart > start {
				start = prevStart
			}
			commit(i, start)
			prevStart = start
		}
	}
}

// summarize fills the aggregate fields of res from the dispatched jobs.
func summarize(res *Result, procs int, results []JobResult) {
	waits := make([]float64, len(results))
	turns := make([]float64, len(results))
	busy := 0.0
	for i, r := range results {
		waits[i] = r.Wait
		turns[i] = r.Turnaround()
		busy += r.Duration * float64(r.Procs)
		if r.Finish > res.Makespan {
			res.Makespan = r.Finish
		}
	}
	res.MeanWait = stats.Mean(waits)
	res.MeanTurnaround = stats.Mean(turns)
	if res.Makespan > 0 {
		res.Utilization = busy / (res.Makespan * float64(procs))
	}
}

// Format renders the aggregate report.
func (r *Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "batch run: %d jobs, policy %s, scheduler %s\n", len(r.Jobs), r.Policy, r.Algorithm)
	fmt.Fprintf(&sb, "  mean wait:       %10.2f s\n", r.MeanWait)
	fmt.Fprintf(&sb, "  mean turnaround: %10.2f s\n", r.MeanTurnaround)
	fmt.Fprintf(&sb, "  total makespan:  %10.2f s\n", r.Makespan)
	fmt.Fprintf(&sb, "  utilization:     %10.1f%%\n", 100*r.Utilization)
	return sb.String()
}
