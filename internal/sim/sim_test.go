package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"emts/internal/daggen"
	"emts/internal/platform"
)

func TestModelByName(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := ModelByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m == nil {
			t.Fatalf("%s: nil model", name)
		}
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
	// Aliases.
	if m, _ := ModelByName("model1"); m.Name() != "amdahl" {
		t.Fatal("model1 alias broken")
	}
	if m, _ := ModelByName("Model2"); m.Name() != "synthetic" {
		t.Fatal("model2 alias broken (case-insensitivity)")
	}
}

func TestRunAllAlgorithmsOnFFT(t *testing.T) {
	g, err := daggen.FFT(8, daggen.DefaultCosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range AlgorithmNames() {
		rep, err := Run(g, platform.Chti(), "synthetic", algo, 42)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if rep.Makespan <= 0 {
			t.Fatalf("%s: makespan %g", algo, rep.Makespan)
		}
		if rep.Schedule == nil {
			t.Fatalf("%s: nil schedule", algo)
		}
		if u := rep.Utilization(); u <= 0 || u > 1 {
			t.Fatalf("%s: utilization %g", algo, u)
		}
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	g, _ := daggen.FFT(2, daggen.DefaultCosts(), 1)
	if _, err := Run(g, platform.Chti(), "amdahl", "magic", 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Run(g, platform.Chti(), "wat", "cpa", 1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// TestRunTypedSentinels asserts the by-name entry points classify caller
// mistakes with the typed sentinels (the server maps these to 400s) while
// keeping the original message text.
func TestRunTypedSentinels(t *testing.T) {
	g, _ := daggen.FFT(2, daggen.DefaultCosts(), 1)

	_, err := Run(g, platform.Chti(), "synthetic", "magic", 1)
	if !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
	if !strings.Contains(err.Error(), `unknown algorithm "magic"`) {
		t.Fatalf("algorithm error lost its message: %v", err)
	}

	_, err = Run(g, platform.Chti(), "wat", "cpa", 1)
	if !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("err = %v, want ErrUnknownModel", err)
	}
	if !strings.Contains(err.Error(), `unknown model "wat"`) {
		t.Fatalf("model error lost its message: %v", err)
	}

	_, err = Run(g, platform.Cluster{Name: "broken", Procs: 0, SpeedGFlops: 1}, "synthetic", "cpa", 1)
	if !errors.Is(err, ErrBadCluster) {
		t.Fatalf("err = %v, want ErrBadCluster", err)
	}
}

// TestRunContextCancelled asserts the context-aware entry point refuses to
// start under a cancelled context, for heuristics and EMTS alike.
func TestRunContextCancelled(t *testing.T) {
	g, _ := daggen.FFT(2, daggen.DefaultCosts(), 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []string{"cpa", "emts5"} {
		if _, err := RunContext(ctx, g, platform.Chti(), "synthetic", algo, 1); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", algo, err)
		}
	}
}

func TestRunEMTSCarriesEAResult(t *testing.T) {
	g, _ := daggen.Strassen(daggen.DefaultCosts(), 3)
	rep, err := Run(g, platform.Chti(), "synthetic", "emts5", 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EMTS == nil {
		t.Fatal("EMTS details missing")
	}
	if len(rep.EMTS.History) != 6 {
		t.Fatalf("history length %d", len(rep.EMTS.History))
	}
	if rep.Makespan > rep.EMTS.BestSeedMakespan() {
		t.Fatal("EMTS worse than its seeds")
	}
	if rep.Elapsed <= 0 {
		t.Fatal("elapsed time not measured")
	}
}

func TestCompareSharesInstanceAndSorts(t *testing.T) {
	g, err := daggen.Random(daggen.RandomConfig{
		N: 30, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 1,
	}, daggen.DefaultCosts(), 5)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Compare(g, platform.Grelon(), "synthetic",
		[]string{"mcpa", "hcpa", "emts5"}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("%d reports", len(reports))
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].Makespan < reports[i-1].Makespan {
			t.Fatal("reports not sorted by makespan")
		}
	}
	// EMTS5 seeds from MCPA and HCPA, so it must rank first (ties allowed).
	if reports[0].Algorithm != "emts5" && reports[0].Makespan != reports[1].Makespan {
		t.Fatalf("EMTS5 not best: %s at %g", reports[0].Algorithm, reports[0].Makespan)
	}
}

func TestCompareUnknownAlgorithmNamesOffender(t *testing.T) {
	g, _ := daggen.FFT(2, daggen.DefaultCosts(), 1)
	_, err := Compare(g, platform.Chti(), "amdahl", []string{"cpa", "bogus"}, 1)
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err = %v, want mention of offender", err)
	}
}
