// Package sim is the simulator of Section IV: it ties platforms, PTGs,
// execution-time models, and scheduling algorithms together behind a uniform
// by-name interface, runs an algorithm on an instance, validates the
// resulting schedule, and reports the outcome. The CLI tools and the
// experiment harness are thin wrappers around this package.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"emts/internal/alloc"
	"emts/internal/core"
	"emts/internal/dag"
	"emts/internal/ea"
	"emts/internal/evalpool"
	"emts/internal/listsched"
	"emts/internal/model"
	"emts/internal/onestep"
	"emts/internal/platform"
	"emts/internal/schedule"
)

// Typed sentinels for the by-name entry points, so callers serving untrusted
// requests can distinguish client mistakes (bad names, bad platform → 400)
// from internal failures (→ 500). The error text produced by the entry points
// is unchanged: the sentinels are wrapped into the existing messages.
var (
	// ErrUnknownAlgorithm reports an algorithm name outside AlgorithmNames.
	ErrUnknownAlgorithm = errors.New("sim: unknown algorithm")
	// ErrUnknownModel reports a model name outside ModelNames.
	ErrUnknownModel = errors.New("sim: unknown model")
	// ErrBadCluster reports an invalid platform description.
	ErrBadCluster = errors.New("sim: bad cluster")
)

// ModelNames lists the execution-time models available by name.
func ModelNames() []string {
	return []string{"amdahl", "synthetic", "synthetic-literal", "synthetic-monotone", "downey"}
}

// ModelByName resolves an execution-time model. The Downey model uses
// A = 64, sigma = 0.5 unless parametrized programmatically.
func ModelByName(name string) (model.Model, error) {
	switch strings.ToLower(name) {
	case "amdahl", "model1":
		return model.Amdahl{}, nil
	case "synthetic", "model2":
		return model.Synthetic{}, nil
	case "synthetic-literal":
		return model.SyntheticLiteral{}, nil
	case "synthetic-monotone":
		return model.Monotone{Inner: model.Synthetic{}}, nil
	case "downey":
		return model.Downey{A: 64, Sigma: 0.5}, nil
	}
	return nil, fmt.Errorf("%w %q (have %s)", ErrUnknownModel, name, strings.Join(ModelNames(), ", "))
}

// AlgorithmNames lists the scheduling algorithms available by name: the
// two-step heuristics (allocator + list-scheduling mapper), the one-step
// earliest-finish-time scheduler, and the two EMTS presets.
func AlgorithmNames() []string {
	return []string{"one", "cpa", "hcpa", "mcpa", "mcpa2", "bicpa", "delta-cp", "eft", "emts5", "emts10"}
}

// Report is the outcome of running one algorithm on one instance.
type Report struct {
	// Algorithm, Model, Graph, Cluster identify the run.
	Algorithm string
	Model     string
	Graph     string
	Cluster   platform.Cluster
	// Schedule is the validated schedule.
	Schedule *schedule.Schedule
	// Makespan is the optimization objective, in seconds.
	Makespan float64
	// Elapsed is the wall-clock time the algorithm took (allocation +
	// mapping; for EMTS the whole evolutionary optimization).
	Elapsed time.Duration
	// EMTS is non-nil for evolutionary runs and carries the EA details.
	EMTS *core.Result
}

// Utilization is the fraction of processor time spent busy.
func (r *Report) Utilization() float64 { return r.Schedule.Utilization() }

// Run executes the named algorithm on graph g under the named model on the
// cluster, using seed for all stochastic choices, and validates the result.
func Run(g *dag.Graph, cluster platform.Cluster, modelName, algorithm string, seed int64) (*Report, error) {
	return RunContext(context.Background(), g, cluster, modelName, algorithm, seed)
}

// RunContext is Run with cooperative cancellation: EMTS runs observe ctx once
// per generation (see core.RunContext) and the fast heuristics check it once
// up front, so a cancelled request stops within one generation.
func RunContext(ctx context.Context, g *dag.Graph, cluster platform.Cluster, modelName, algorithm string, seed int64) (*Report, error) {
	m, err := ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	if err := cluster.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCluster, err)
	}
	tab, err := model.NewTable(g, m, cluster)
	if err != nil {
		return nil, err
	}
	return RunTableContext(ctx, g, cluster, tab, algorithm, seed)
}

// RunTable is Run for callers that already built the execution-time table
// (e.g. to amortize it across algorithms on the same instance).
func RunTable(g *dag.Graph, cluster platform.Cluster, tab *model.Table, algorithm string, seed int64) (*Report, error) {
	return RunTableContext(context.Background(), g, cluster, tab, algorithm, seed)
}

// Options tunes how a run executes: most fields affect only resource usage
// (parallelism, arena reuse, lock striping) and leave results bit-identical
// for any combination — the determinism meta-tests enforce this. The one
// exception is the island-model group (Islands, MigrationInterval,
// MigrationCount, Topology): islands change which search the EA performs, so
// each distinct setting is a distinct deterministic result — still
// independent of Workers and GOMAXPROCS, and Islands <= 1 is bit-identical
// to the historical behavior. The zero value is the historical behavior.
type Options struct {
	// Workers bounds EMTS fitness-evaluation parallelism (0 = GOMAXPROCS).
	// The server's CPU governor sets this per request so one lone request
	// fans out to all cores while concurrent requests degrade gracefully.
	Workers int
	// CacheShards stripes the EMTS fitness memo cache (see
	// ea.Config.CacheShards); 0 picks a default.
	CacheShards int
	// MapperPool, when non-nil, lends listsched.Mapper arenas to the run and
	// takes them back when it finishes (see core.Params.MapperPool).
	MapperPool *evalpool.Pool
	// Islands, MigrationInterval, MigrationCount, and Topology configure the
	// island-model EA for EMTS algorithms (ignored by the one-shot
	// heuristics); see core.Params and ea.Config. Islands <= 1 is the
	// classic single population.
	Islands           int
	MigrationInterval int
	MigrationCount    int
	Topology          string
	// OnGeneration, when non-nil, observes per-generation EA statistics for
	// EMTS algorithms (ignored by the one-shot heuristics). It is called
	// from the run's goroutine after each generation's selection — the same
	// once-per-generation point RunContext checks ctx — so observation adds
	// zero cost to the hot fitness path and cannot perturb results (the
	// observer-transparency meta-test enforces bit-identity on/off).
	OnGeneration func(ea.GenStats)
}

// RunTableContext is RunTable with cooperative cancellation.
func RunTableContext(ctx context.Context, g *dag.Graph, cluster platform.Cluster, tab *model.Table, algorithm string, seed int64) (*Report, error) {
	return RunTableOpts(ctx, g, cluster, tab, algorithm, seed, Options{})
}

// RunTableOpts is RunTableContext with execution Options — the entry point
// the serving path uses to plug in the shared Mapper pool and the CPU
// governor's per-request worker budget.
func RunTableOpts(ctx context.Context, g *dag.Graph, cluster platform.Cluster, tab *model.Table, algorithm string, seed int64, opt Options) (*Report, error) {
	rep := &Report{
		Algorithm: strings.ToLower(algorithm),
		Model:     tab.Name(),
		Graph:     g.Name(),
		Cluster:   cluster,
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: %s cancelled before start: %w", rep.Algorithm, err)
	}
	start := time.Now()
	switch rep.Algorithm {
	case "emts5", "emts10", "emts":
		params := core.EMTS5(seed)
		if rep.Algorithm == "emts10" {
			params = core.EMTS10(seed)
		}
		params.Workers = opt.Workers
		params.CacheShards = opt.CacheShards
		params.MapperPool = opt.MapperPool
		params.OnGeneration = opt.OnGeneration
		params.Islands = opt.Islands
		params.MigrationInterval = opt.MigrationInterval
		params.MigrationCount = opt.MigrationCount
		params.Topology = opt.Topology
		res, err := core.RunContext(ctx, g, tab, params)
		if err != nil {
			// Anytime contract (see core.RunContext): a mid-run cancellation
			// still yields the materialized incumbent. Validate and report it
			// exactly like a completed run, alongside the context error.
			if res == nil {
				return nil, err
			}
			rep.EMTS = res
			rep.Schedule = res.Schedule
			rep.Makespan = res.Makespan
			rep.Elapsed = time.Since(start)
			if verr := rep.Schedule.Validate(g, tab); verr != nil {
				return nil, fmt.Errorf("sim: %s produced an invalid schedule: %w", rep.Algorithm, verr)
			}
			return rep, err
		}
		rep.EMTS = res
		rep.Schedule = res.Schedule
		rep.Makespan = res.Makespan
	case "eft", "onestep":
		s, err := onestep.GreedyEFT{}.Schedule(g, tab)
		if err != nil {
			return nil, err
		}
		rep.Schedule = s
		rep.Makespan = s.Makespan()
	default:
		al, err := allocatorByName(rep.Algorithm, seed)
		if err != nil {
			return nil, err
		}
		a, err := al.Allocate(g, tab)
		if err != nil {
			return nil, err
		}
		s, err := listsched.Map(g, tab, a)
		if err != nil {
			return nil, err
		}
		rep.Schedule = s
		rep.Makespan = s.Makespan()
	}
	rep.Elapsed = time.Since(start)
	if err := rep.Schedule.Validate(g, tab); err != nil {
		return nil, fmt.Errorf("sim: %s produced an invalid schedule: %w", rep.Algorithm, err)
	}
	return rep, nil
}

func allocatorByName(name string, seed int64) (alloc.Allocator, error) {
	switch name {
	case "one":
		return alloc.OneEach{}, nil
	case "random":
		return alloc.Random{Seed: seed}, nil
	case "cpa":
		return alloc.CPA{}, nil
	case "hcpa":
		return alloc.HCPA{}, nil
	case "mcpa":
		return alloc.MCPA{}, nil
	case "mcpa2":
		return alloc.MCPA2{}, nil
	case "bicpa":
		return alloc.BiCPA{Theta: 0.5}, nil
	case "delta-cp", "deltacp":
		return alloc.DeltaCP{Delta: 0.9}, nil
	}
	return nil, fmt.Errorf("%w %q (have %s)",
		ErrUnknownAlgorithm, name, strings.Join(AlgorithmNames(), ", "))
}

// Compare runs several algorithms on the same instance (sharing one
// execution-time table and seed) and returns the reports sorted by makespan.
func Compare(g *dag.Graph, cluster platform.Cluster, modelName string, algorithms []string, seed int64) ([]*Report, error) {
	m, err := ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	tab, err := model.NewTable(g, m, cluster)
	if err != nil {
		return nil, err
	}
	reports := make([]*Report, 0, len(algorithms))
	for _, algo := range algorithms {
		r, err := RunTable(g, cluster, tab, algo, seed)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", algo, err)
		}
		reports = append(reports, r)
	}
	sort.SliceStable(reports, func(i, j int) bool { return reports[i].Makespan < reports[j].Makespan })
	return reports, nil
}
