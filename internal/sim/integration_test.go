package sim

import (
	"testing"

	"emts/internal/dag"
	"emts/internal/daggen"
	"emts/internal/platform"
)

// TestFullMatrix runs every algorithm under every model on both paper
// clusters for one small instance — the broadest integration sweep in the
// repository. Every combination must produce a schedule that passes full
// validation (RunTable validates internally).
func TestFullMatrix(t *testing.T) {
	g, err := daggen.FFT(4, daggen.DefaultCosts(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, cluster := range platform.Both() {
		for _, modelName := range ModelNames() {
			for _, algo := range AlgorithmNames() {
				rep, err := Run(g, cluster, modelName, algo, 3)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", cluster.Name, modelName, algo, err)
				}
				if rep.Makespan <= 0 {
					t.Fatalf("%s/%s/%s: makespan %g", cluster.Name, modelName, algo, rep.Makespan)
				}
			}
		}
	}
}

// TestRunDeterministicAcrossCalls: same inputs, same seed, same makespan —
// for every algorithm, including the stochastic ones.
func TestRunDeterministicAcrossCalls(t *testing.T) {
	g, err := daggen.Random(daggen.RandomConfig{
		N: 30, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 1,
	}, daggen.DefaultCosts(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range AlgorithmNames() {
		r1, err := Run(g, platform.Chti(), "synthetic", algo, 17)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(g, platform.Chti(), "synthetic", algo, 17)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Makespan != r2.Makespan {
			t.Fatalf("%s not deterministic: %g vs %g", algo, r1.Makespan, r2.Makespan)
		}
	}
}

// TestZeroCostTaskRejectedAtTableBoundary documents the contract: structural
// zero-FLOP tasks are rejected when the time table is built, with a clear
// error, instead of corrupting schedules downstream.
func TestZeroCostTaskRejectedAtTableBoundary(t *testing.T) {
	b := dag.NewBuilder("zero")
	b.AddTask(dag.Task{Name: "structural", Flops: 0})
	g := b.MustBuild()
	if _, err := Run(g, platform.Chti(), "amdahl", "cpa", 1); err == nil {
		t.Fatal("zero-cost task accepted")
	}
}

// TestEMTSDominatesItsSeedsAcrossModels: the plus-selection guarantee holds
// under every model.
func TestEMTSDominatesItsSeedsAcrossModels(t *testing.T) {
	g, err := daggen.Strassen(daggen.DefaultCosts(), 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, modelName := range ModelNames() {
		rep, err := Run(g, platform.Grelon(), modelName, "emts5", 4)
		if err != nil {
			t.Fatal(err)
		}
		if rep.EMTS == nil {
			t.Fatal("missing EMTS details")
		}
		if rep.Makespan > rep.EMTS.BestSeedMakespan() {
			t.Fatalf("%s: EMTS %g worse than best seed %g",
				modelName, rep.Makespan, rep.EMTS.BestSeedMakespan())
		}
	}
}
