package alloc

import (
	"math"

	"emts/internal/dag"
	"emts/internal/listsched"
	"emts/internal/model"
	"emts/internal/schedule"
)

// BiCPA implements the bi-criteria allocation of Desprez & Suter ("A
// Bi-criteria Algorithm for Scheduling Parallel Task Graphs on Clusters",
// CCGrid 2010), cited by the paper as related work that optimizes both the
// completion time of the PTG and the amount of resources used.
//
// The algorithm re-runs CPA's growth loop against a sweep of virtual cluster
// sizes q = 1..P: for size q, growth stops when T_CP <= area/q, so larger q
// yields more aggressive allocations. Because the threshold only tightens as
// q grows, the sweep is incremental — one pass of CPA growth generates every
// candidate allocation. Each candidate is then mapped with the list
// scheduler, and the final allocation minimizes the bi-criteria
// scalarization makespan^(1-Theta) * work^Theta, where work is the consumed
// processor-time (the resource criterion).
type BiCPA struct {
	// Theta in [0, 1) weighs resource usage against makespan; 0 selects the
	// pure-makespan candidate (default 0.5, an even tradeoff).
	Theta float64
	// Stride evaluates only every Stride-th cluster size (default 1). The
	// mapping of a candidate costs O(E + V log V + V·P); large platforms can
	// trade optimality for speed.
	Stride int
}

// Name implements Allocator.
func (BiCPA) Name() string { return "bicpa" }

// Candidate records one swept allocation for diagnostics and Pareto
// analysis.
type Candidate struct {
	// Q is the virtual cluster size that produced the allocation.
	Q int
	// Alloc is the candidate allocation.
	Alloc schedule.Allocation
	// Makespan is the mapped completion time.
	Makespan float64
	// Work is the consumed processor-time Σ s(v)·T(v, s(v)).
	Work float64
}

// Allocate implements Allocator.
func (b BiCPA) Allocate(g *dag.Graph, tab *model.Table) (schedule.Allocation, error) {
	cands, err := b.Sweep(g, tab)
	if err != nil {
		return nil, err
	}
	theta := b.Theta
	if theta < 0 || theta >= 1 {
		theta = 0.5
	}
	best := -1
	bestScore := math.Inf(1)
	for i, c := range cands {
		score := math.Pow(c.Makespan, 1-theta) * math.Pow(c.Work, theta)
		if score < bestScore {
			bestScore = score
			best = i
		}
	}
	return cands[best].Alloc, nil
}

// Sweep generates the full candidate series (deduplicated by allocation
// change) for q = 1..P. The first candidate is always the all-ones
// allocation (q = 1).
func (b BiCPA) Sweep(g *dag.Graph, tab *model.Table) ([]Candidate, error) {
	if err := checkInputs(g, tab); err != nil {
		return nil, err
	}
	stride := b.Stride
	if stride < 1 {
		stride = 1
	}
	procs := tab.Procs()
	s := schedule.Ones(g.NumTasks())
	cost := listsched.Cost(tab, s)

	area := 0.0
	for i := 0; i < g.NumTasks(); i++ {
		area += tab.Time(dag.TaskID(i), 1)
	}

	var cands []Candidate
	changedSinceLast := true // force the q=1 candidate
	for q := 1; q <= procs; q += stride {
		// Grow until T_CP <= area/q or no critical-path task benefits.
		for iter := 0; iter < g.NumTasks()*procs; iter++ {
			tcp := g.CriticalPathLength(cost)
			if tcp <= area/float64(q) {
				break
			}
			path, _ := g.CriticalPath(cost)
			best := dag.TaskID(-1)
			bestGain := 0.0
			for _, v := range path {
				sv := s[v]
				if sv >= procs {
					continue
				}
				gain := tab.Time(v, sv)/float64(sv) - tab.Time(v, sv+1)/float64(sv+1)
				if gain > bestGain {
					bestGain = gain
					best = v
				}
			}
			if best == -1 {
				break
			}
			area -= float64(s[best]) * tab.Time(best, s[best])
			s[best]++
			area += float64(s[best]) * tab.Time(best, s[best])
			changedSinceLast = true
		}
		if !changedSinceLast {
			continue // identical to the previous candidate; skip the mapping
		}
		alloc := s.Clone()
		ms, err := listsched.Makespan(g, tab, alloc)
		if err != nil {
			return nil, err
		}
		cands = append(cands, Candidate{Q: q, Alloc: alloc, Makespan: ms, Work: area})
		changedSinceLast = false
	}
	return cands, nil
}

// ParetoFront filters candidates to the (makespan, work) Pareto-optimal
// subset, ordered by increasing makespan.
func ParetoFront(cands []Candidate) []Candidate {
	var front []Candidate
	for _, c := range cands {
		dominated := false
		for _, o := range cands {
			if (o.Makespan < c.Makespan && o.Work <= c.Work) ||
				(o.Makespan <= c.Makespan && o.Work < c.Work) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	// Insertion sort by makespan: fronts are small.
	for i := 1; i < len(front); i++ {
		for j := i; j > 0 && front[j].Makespan < front[j-1].Makespan; j-- {
			front[j], front[j-1] = front[j-1], front[j]
		}
	}
	return front
}
