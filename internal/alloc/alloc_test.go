package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"emts/internal/dag"
	"emts/internal/listsched"
	"emts/internal/model"
	"emts/internal/platform"
)

var testCluster = platform.Cluster{Name: "test", Procs: 16, SpeedGFlops: 1}

func chain(t *testing.T, n int, flops float64) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("chain")
	for i := 0; i < n; i++ {
		b.AddTask(dag.Task{Flops: flops, Alpha: 0.05})
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(dag.TaskID(i), dag.TaskID(i+1))
	}
	return b.MustBuild()
}

// fork returns a graph: source -> n parallel tasks -> sink.
func fork(t *testing.T, n int, flops float64) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("fork")
	src := b.AddTask(dag.Task{Flops: flops / 10, Alpha: 0.05})
	var mids []dag.TaskID
	for i := 0; i < n; i++ {
		mids = append(mids, b.AddTask(dag.Task{Flops: flops, Alpha: 0.05}))
	}
	sink := b.AddTask(dag.Task{Flops: flops / 10, Alpha: 0.05})
	for _, m := range mids {
		b.AddEdge(src, m)
		b.AddEdge(m, sink)
	}
	return b.MustBuild()
}

func allAllocators() []Allocator {
	return []Allocator{
		OneEach{}, Random{Seed: 7}, CPA{}, HCPA{}, MCPA{}, MCPA2{}, DeltaCP{Delta: 0.9},
	}
}

func TestAllAllocatorsProduceValidAllocations(t *testing.T) {
	graphs := []*dag.Graph{chain(t, 8, 4e9), fork(t, 6, 4e9)}
	models := []model.Model{model.Amdahl{}, model.Synthetic{}}
	for _, g := range graphs {
		for _, m := range models {
			tab := model.MustTable(g, m, testCluster)
			for _, a := range allAllocators() {
				got, err := a.Allocate(g, tab)
				if err != nil {
					t.Fatalf("%s on %s/%s: %v", a.Name(), g.Name(), m.Name(), err)
				}
				if err := got.Validate(g, testCluster.Procs); err != nil {
					t.Fatalf("%s produced invalid allocation: %v", a.Name(), err)
				}
			}
		}
	}
}

func TestOneEach(t *testing.T) {
	g := chain(t, 5, 1e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	a, _ := OneEach{}.Allocate(g, tab)
	for i, s := range a {
		if s != 1 {
			t.Fatalf("task %d got %d procs", i, s)
		}
	}
}

func TestRandomIsSeededAndReproducible(t *testing.T) {
	g := fork(t, 10, 1e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	a1, _ := Random{Seed: 42}.Allocate(g, tab)
	a2, _ := Random{Seed: 42}.Allocate(g, tab)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different allocations")
		}
	}
	a3, _ := Random{Seed: 43}.Allocate(g, tab)
	same := true
	for i := range a1 {
		if a1[i] != a3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical allocations (suspicious)")
	}
}

func TestCPAGrowsChainAllocations(t *testing.T) {
	// A chain has no task parallelism: CPA should grow allocations well past 1
	// under Amdahl (T_A stays low while T_CP is the whole chain).
	g := chain(t, 6, 16e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	a, err := CPA{}.Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	grown := 0
	for _, s := range a {
		if s > 1 {
			grown++
		}
	}
	if grown == 0 {
		t.Fatalf("CPA left the whole chain at 1 processor: %v", a)
	}
}

func TestCPAStopCondition(t *testing.T) {
	// After CPA terminates under a monotone model, T_CP <= T_A must hold
	// (or no task can grow further).
	g := fork(t, 4, 8e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	a, err := CPA{}.Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	cost := listsched.Cost(tab, a)
	tcp := g.CriticalPathLength(cost)
	area := 0.0
	allMax := true
	for i := 0; i < g.NumTasks(); i++ {
		area += float64(a[i]) * tab.Time(dag.TaskID(i), a[i])
		if a[i] < testCluster.Procs {
			allMax = false
		}
	}
	ta := area / float64(testCluster.Procs)
	if tcp > ta*(1+1e-9) && !allMax {
		t.Fatalf("CPA stopped with T_CP=%g > T_A=%g and growable tasks: %v", tcp, ta, a)
	}
}

func TestCPASmallAllocationsUnderModel2(t *testing.T) {
	// Section V-B: under Model 2 the CPA-family procedures stop with small
	// allocations (often 4-8). Verify allocations stay well below P.
	g := fork(t, 4, 50e9)
	big := platform.Cluster{Name: "big", Procs: 120, SpeedGFlops: 3.1}
	tab := model.MustTable(g, model.Synthetic{}, big)
	a, err := CPA{}.Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	amdahlTab := model.MustTable(g, model.Amdahl{}, big)
	aAmdahl, err := CPA{}.Allocate(g, amdahlTab)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalProcs() >= aAmdahl.TotalProcs() {
		t.Fatalf("Model 2 allocations (%d total) not smaller than Model 1 (%d total)",
			a.TotalProcs(), aAmdahl.TotalProcs())
	}
}

func TestHCPAEqualsCPAOnHomogeneousCluster(t *testing.T) {
	g := fork(t, 5, 10e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	cpa, _ := CPA{}.Allocate(g, tab)
	hcpa, _ := HCPA{}.Allocate(g, tab)
	for i := range cpa {
		if cpa[i] != hcpa[i] {
			t.Fatalf("HCPA differs from CPA at task %d: %d vs %d", i, hcpa[i], cpa[i])
		}
	}
}

func TestHCPATranslatesReferenceAllocations(t *testing.T) {
	g := fork(t, 5, 10e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	// Reference processors twice as fast as the target: allocations double.
	h := HCPA{ReferenceSpeedGFlops: 2, ClusterSpeedGFlops: 1}
	ref, _ := CPA{}.Allocate(g, tab)
	got, _ := h.Allocate(g, tab)
	for i := range got {
		want := 2 * ref[i]
		if want > testCluster.Procs {
			want = testCluster.Procs
		}
		if got[i] != want {
			t.Fatalf("task %d: got %d, want %d (ref %d)", i, got[i], want, ref[i])
		}
	}
}

func TestMCPARespectsLevelBound(t *testing.T) {
	g := fork(t, 8, 10e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	a, err := MCPA{}.Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	_, byLevel := g.PrecedenceLevels()
	for l, tasks := range byLevel {
		sum := 0
		for _, v := range tasks {
			sum += a[v]
		}
		if sum > testCluster.Procs {
			t.Fatalf("level %d allocates %d > P=%d procs", l, sum, testCluster.Procs)
		}
	}
}

func TestMCPA2RespectsLevelBound(t *testing.T) {
	g := fork(t, 8, 10e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	a, err := MCPA2{}.Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	_, byLevel := g.PrecedenceLevels()
	for l, tasks := range byLevel {
		sum := 0
		for _, v := range tasks {
			sum += a[v]
		}
		if sum > testCluster.Procs {
			t.Fatalf("level %d allocates %d > P=%d procs", l, sum, testCluster.Procs)
		}
	}
}

func TestMCPAKeepsWideLevelsTaskParallel(t *testing.T) {
	// A fork wider than P: MCPA must keep every middle task at 1 processor.
	g := fork(t, testCluster.Procs+4, 10e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	a, err := MCPA{}.Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	_, byLevel := g.PrecedenceLevels()
	for _, v := range byLevel[1] {
		if a[v] != 1 {
			t.Fatalf("middle task %d got %d procs despite full level", v, a[v])
		}
	}
}

func TestDeltaCPSharesProcsAmongCriticalTasks(t *testing.T) {
	// Fork of 4 equal tasks: all are critical in their level, so each gets
	// P/4 processors; source and sink get all P (single critical task).
	g := fork(t, 4, 10e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	a, err := DeltaCP{Delta: 0.9}.Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	_, byLevel := g.PrecedenceLevels()
	for _, v := range byLevel[1] {
		if a[v] != testCluster.Procs/4 {
			t.Fatalf("middle task %d got %d procs, want %d", v, a[v], testCluster.Procs/4)
		}
	}
	src := byLevel[0][0]
	if a[src] != testCluster.Procs {
		t.Fatalf("source got %d procs, want all %d", a[src], testCluster.Procs)
	}
}

func TestDeltaCPDistinguishesNonCriticalTasks(t *testing.T) {
	// Two parallel tasks, one 10x heavier: with delta=0.9 only the heavy one
	// is critical and receives all processors; the light one keeps 1.
	b := dag.NewBuilder("unbalanced")
	heavy := b.AddTask(dag.Task{Flops: 100e9, Alpha: 0.05})
	light := b.AddTask(dag.Task{Flops: 1e9, Alpha: 0.05})
	g := b.MustBuild()
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	a, err := DeltaCP{Delta: 0.9}.Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if a[heavy] != testCluster.Procs {
		t.Fatalf("heavy task got %d, want %d", a[heavy], testCluster.Procs)
	}
	if a[light] != 1 {
		t.Fatalf("light task got %d, want 1", a[light])
	}
}

func TestDeltaCPRejectsBadDelta(t *testing.T) {
	g := chain(t, 2, 1e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	for _, d := range []float64{-0.1, 1.5} {
		if _, err := (DeltaCP{Delta: d}).Allocate(g, tab); err == nil {
			t.Fatalf("delta %g accepted", d)
		}
	}
}

func TestAllocatorsRejectMismatchedInputs(t *testing.T) {
	g := chain(t, 3, 1e9)
	small := chain(t, 2, 1e9)
	tab := model.MustTable(small, model.Amdahl{}, testCluster)
	for _, a := range allAllocators() {
		if _, ok := a.(Random); ok {
			continue // Random does not inspect the graph/table pairing
		}
		if _, ok := a.(OneEach); ok {
			continue
		}
		if _, err := a.Allocate(g, tab); err == nil {
			t.Errorf("%s accepted mismatched table", a.Name())
		}
	}
}

func TestAllocatorNames(t *testing.T) {
	want := map[string]bool{
		"one": true, "random": true, "cpa": true, "hcpa": true,
		"mcpa": true, "mcpa2": true, "delta-cp": true,
	}
	for _, a := range allAllocators() {
		if !want[a.Name()] {
			t.Errorf("unexpected allocator name %q", a.Name())
		}
	}
}

// Property: for random layered graphs, every allocator yields an allocation
// that the mapper turns into a schedule passing full validation.
func TestAllocatorsPropertyEndToEnd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := dag.NewBuilder("prop")
		n := 2 + rng.Intn(20)
		for i := 0; i < n; i++ {
			b.AddTask(dag.Task{Flops: 1e8 + rng.Float64()*2e10, Alpha: rng.Float64() / 4})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					b.AddEdge(dag.TaskID(i), dag.TaskID(j))
				}
			}
		}
		g := b.MustBuild()
		cluster := platform.Cluster{Name: "p", Procs: 2 + rng.Intn(30), SpeedGFlops: 1 + 4*rng.Float64()}
		var m model.Model = model.Amdahl{}
		if rng.Intn(2) == 0 {
			m = model.Synthetic{}
		}
		tab := model.MustTable(g, m, cluster)
		for _, a := range allAllocators() {
			alloc, err := a.Allocate(g, tab)
			if err != nil {
				t.Logf("%s: %v", a.Name(), err)
				return false
			}
			if err := alloc.Validate(g, cluster.Procs); err != nil {
				t.Logf("%s invalid alloc: %v", a.Name(), err)
				return false
			}
			s, err := listsched.Map(g, tab, alloc)
			if err != nil {
				t.Logf("%s map: %v", a.Name(), err)
				return false
			}
			if err := s.Validate(g, tab); err != nil {
				t.Logf("%s schedule: %v", a.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Sanity: on a single chain the allocators must not produce a worse makespan
// than the one-processor baseline under a monotone model.
func TestCPAFamilyBeatsOneEachOnChain(t *testing.T) {
	g := chain(t, 6, 16e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	base, err := OneEach{}.Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	baseMS, err := listsched.Makespan(g, tab, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Allocator{CPA{}, HCPA{}, MCPA{}, MCPA2{}} {
		al, err := a.Allocate(g, tab)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := listsched.Makespan(g, tab, al)
		if err != nil {
			t.Fatal(err)
		}
		if ms > baseMS {
			t.Errorf("%s makespan %g worse than one-each %g on a chain", a.Name(), ms, baseMS)
		}
	}
}
