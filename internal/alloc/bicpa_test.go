package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"emts/internal/dag"
	"emts/internal/listsched"
	"emts/internal/model"
	"emts/internal/platform"
)

func TestBiCPAProducesValidAllocation(t *testing.T) {
	g := fork(t, 6, 10e9)
	for _, m := range []model.Model{model.Amdahl{}, model.Synthetic{}} {
		tab := model.MustTable(g, m, testCluster)
		a, err := BiCPA{}.Allocate(g, tab)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if err := a.Validate(g, testCluster.Procs); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBiCPASweepIsIncremental(t *testing.T) {
	g := fork(t, 4, 20e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	cands, err := BiCPA{}.Sweep(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("only %d candidates", len(cands))
	}
	// First candidate is the all-ones allocation.
	for _, s := range cands[0].Alloc {
		if s != 1 {
			t.Fatalf("first candidate not all-ones: %v", cands[0].Alloc)
		}
	}
	// Allocations grow monotonically with q, and work grows with them.
	for i := 1; i < len(cands); i++ {
		if cands[i].Q <= cands[i-1].Q {
			t.Fatal("q not increasing")
		}
		for v := range cands[i].Alloc {
			if cands[i].Alloc[v] < cands[i-1].Alloc[v] {
				t.Fatal("allocation shrank across the sweep")
			}
		}
		if cands[i].Work < cands[i-1].Work {
			t.Fatal("work shrank across the sweep")
		}
	}
}

func TestBiCPAThetaZeroMinimizesMakespan(t *testing.T) {
	g := fork(t, 5, 15e9)
	tab := model.MustTable(g, model.Synthetic{}, testCluster)
	cands, err := BiCPA{}.Sweep(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	bestMS := cands[0].Makespan
	for _, c := range cands {
		if c.Makespan < bestMS {
			bestMS = c.Makespan
		}
	}
	a, err := BiCPA{Theta: 0}.Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := listsched.Makespan(g, tab, a)
	if err != nil {
		t.Fatal(err)
	}
	if ms != bestMS {
		t.Fatalf("theta=0 picked makespan %g, sweep best is %g", ms, bestMS)
	}
}

func TestBiCPATradeoffUsesLessWork(t *testing.T) {
	// With theta close to 1 the resource criterion dominates; the chosen
	// allocation must not use more work than the pure-makespan choice.
	g := fork(t, 6, 25e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	work := func(a []int) float64 {
		sum := 0.0
		for v, s := range a {
			sum += float64(s) * tab.Time(dag.TaskID(v), s)
		}
		return sum
	}
	fast, err := BiCPA{Theta: 0}.Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	frugal, err := BiCPA{Theta: 0.99}.Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if work(frugal) > work(fast) {
		t.Fatalf("theta=0.99 uses more work (%g) than theta=0 (%g)", work(frugal), work(fast))
	}
}

func TestBiCPAStride(t *testing.T) {
	g := fork(t, 4, 10e9)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	all, err := BiCPA{}.Sweep(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	strided, err := BiCPA{Stride: 4}.Sweep(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(strided) > len(all) {
		t.Fatalf("stride produced more candidates (%d) than full sweep (%d)", len(strided), len(all))
	}
	a, err := BiCPA{Stride: 4}.Allocate(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g, testCluster.Procs); err != nil {
		t.Fatal(err)
	}
}

func TestParetoFront(t *testing.T) {
	cands := []Candidate{
		{Q: 1, Makespan: 10, Work: 5},
		{Q: 2, Makespan: 8, Work: 7},
		{Q: 3, Makespan: 9, Work: 9}, // dominated by Q=2
		{Q: 4, Makespan: 6, Work: 12},
		{Q: 5, Makespan: 6, Work: 13}, // dominated by Q=4
	}
	front := ParetoFront(cands)
	if len(front) != 3 {
		t.Fatalf("front size %d: %+v", len(front), front)
	}
	for i := 1; i < len(front); i++ {
		if front[i].Makespan < front[i-1].Makespan {
			t.Fatal("front not sorted by makespan")
		}
	}
	for _, c := range front {
		if c.Q == 3 || c.Q == 5 {
			t.Fatal("dominated candidate survived")
		}
	}
}

func TestBiCPARejectsMismatchedInputs(t *testing.T) {
	g := chain(t, 3, 1e9)
	small := chain(t, 2, 1e9)
	tab := model.MustTable(small, model.Amdahl{}, testCluster)
	if _, err := (BiCPA{}).Allocate(g, tab); err == nil {
		t.Fatal("mismatched table accepted")
	}
}

func TestBiCPABeatsCPAOnMakespanProperty(t *testing.T) {
	// theta=0 BiCPA explores a superset of CPA's stopping points, so its
	// mapped makespan is never worse than CPA's.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := dag.NewBuilder("prop")
		n := 3 + rng.Intn(15)
		for i := 0; i < n; i++ {
			b.AddTask(dag.Task{Flops: 1e9 + rng.Float64()*2e10, Alpha: rng.Float64() / 4})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					b.AddEdge(dag.TaskID(i), dag.TaskID(j))
				}
			}
		}
		g := b.MustBuild()
		cluster := platform.Cluster{Name: "p", Procs: 2 + rng.Intn(20), SpeedGFlops: 1}
		tab := model.MustTable(g, model.Amdahl{}, cluster)
		cpaAlloc, err := CPA{}.Allocate(g, tab)
		if err != nil {
			return false
		}
		cpaMS, err := listsched.Makespan(g, tab, cpaAlloc)
		if err != nil {
			return false
		}
		biAlloc, err := BiCPA{Theta: 0}.Allocate(g, tab)
		if err != nil {
			return false
		}
		biMS, err := listsched.Makespan(g, tab, biAlloc)
		if err != nil {
			return false
		}
		return biMS <= cpaMS*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
